#pragma once

// Machine-readable bench output shared by every harness (the CI bench-smoke
// job collects these as BENCH_*.json artifacts and feeds the micro-bench
// files through tools/bench_gate.py for regression gating). Split out of
// bench_util.hpp so the micro benches can emit JSON without linking the
// full training stack.

#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rna::benchutil {

/// One labelled row of numeric results.
struct BenchRow {
  std::string label;
  std::map<std::string, double> values;
};

/// Writes `{"bench": <name>, "rows": [{"label": ..., <key>: <value>...}]}`.
inline void WriteBenchJson(const std::string& path, const std::string& bench,
                           const std::vector<BenchRow>& rows) {
  std::ofstream out(path);
  if (!out.good()) throw std::runtime_error("cannot open " + path);
  // Round-trip precision: absolute gates (e.g. exact wire-byte ceilings)
  // compare against these values, so default 6-digit formatting would
  // round a conforming 14680064 up past a 14680064.0 ceiling.
  out.precision(17);
  out << "{\"bench\":\"" << bench << "\",\"rows\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    out << (r ? ",\n" : "\n") << "{\"label\":\"" << rows[r].label << '"';
    for (const auto& [key, value] : rows[r].values) {
      out << ",\"" << key << "\":" << value;
    }
    out << "}";
  }
  out << "\n]}\n";
  if (!out.good()) throw std::runtime_error("failed writing " + path);
}

}  // namespace rna::benchutil
