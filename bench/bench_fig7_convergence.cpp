// Figure 7 — convergence curves (loss and accuracy vs wall time) for the
// LSTM workload under each synchronization approach, with dynamic
// heterogeneity injected. The paper's shape: AD-PSGD finishes earliest but
// at visibly lower accuracy; RNA reaches the Horovod-level loss in ~60% of
// Horovod's time; eager-SGD lands in between.

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

int main() {
  std::printf("=== Figure 7: convergence curve for LSTM "
              "(loss/accuracy vs time) ===\n");
  NamedScenario lstm = MakeLstmProxy();

  const struct {
    train::Protocol protocol;
    const char* name;
  } rows[] = {
      {train::Protocol::kHorovod, "horovod"},
      {train::Protocol::kEagerSgd, "eager-sgd"},
      {train::Protocol::kAdPsgd, "ad-psgd"},
      {train::Protocol::kRna, "rna"},
  };

  for (const auto& row : rows) {
    train::TrainerConfig config =
        BaseBenchConfig(row.protocol, lstm, /*world=*/4);
    // LSTM: no injected delay — the imbalance is inherent (§8.1).
    config.max_rounds = 1200;
    config.eval_period_s = 0.1;
    const train::TrainResult r = RunProtocol(row.protocol, lstm, config);

    std::printf("\n%s: reached_target=%s  time=%.2fs  rounds=%zu  "
                "final_loss=%.3f  final_acc=%.3f\n",
                row.name, r.reached_target ? "yes" : "no", r.wall_seconds,
                r.rounds, r.final_loss, r.final_accuracy);
    std::printf("  %8s %8s %8s %8s\n", "t(s)", "round", "loss", "acc");
    for (const auto& p : r.curve) {
      std::printf("  %8.2f %8zu %8.3f %8.3f\n", p.time, p.round, p.loss,
                  p.accuracy);
    }
    std::fflush(stdout);
  }
  return 0;
}
