// Table 4 — validation accuracy and executed iteration counts per approach,
// running each protocol to the same target loss (so iteration counts differ
// by throughput and statistical efficiency, as in the paper).
//
// Paper shapes: AD-PSGD converges in the fewest iterations but at the
// lowest validation accuracy; RNA executes the most rounds (cheap partial
// rounds) yet matches Horovod's accuracy to ~0.5 pt.

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr std::size_t kWorld = 6;

void RunModel(const char* label, const NamedScenario& scenario,
              std::size_t budget_rounds) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-10s %10s %10s %12s %10s\n", "approach", "rounds",
              "grads", "top-1 acc", "time(s)");
  const struct {
    train::Protocol protocol;
    const char* name;
  } rows[] = {
      {train::Protocol::kHorovod, "horovod"},
      {train::Protocol::kEagerSgd, "eager-sgd"},
      {train::Protocol::kAdPsgd, "ad-psgd"},
      {train::Protocol::kRna, "rna"},
  };
  for (const auto& row : rows) {
    train::TrainerConfig config =
        BaseBenchConfig(row.protocol, scenario, kWorld);
    config.delay_model = DynamicDelays(kWorld);
    config.max_rounds = budget_rounds;
    const train::TrainResult r = RunProtocol(row.protocol, scenario, config);
    std::printf("%-10s %10zu %10zu %11.1f%% %10.2f\n", row.name, r.rounds,
                r.gradients_applied, r.final_accuracy * 100.0,
                r.wall_seconds);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("=== Table 4: validation accuracy and iterations "
              "(run to target loss, %zu workers) ===\n", kWorld);
  NamedScenario resnet = MakeResnetProxy();
  NamedScenario vgg = MakeVggProxy();
  NamedScenario lstm = MakeLstmProxy();
  RunModel("ResNet50-proxy", resnet, 3000);
  RunModel("VGG16-proxy", vgg, 3000);
  RunModel("LSTM", lstm, 1500);
  std::printf("\nPaper reference (Table 4): RNA needs more iterations than "
              "Horovod but less time;\nAD-PSGD: fewest iterations, lowest "
              "accuracy (e.g. ResNet50 68.8%% vs Horovod 76.2%%).\n");
  return 0;
}
