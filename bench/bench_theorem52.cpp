// Theorem 5.2 (§5) empirical check: for a sufficiently large iteration
// budget K — concretely K ≳ 4BL(f(x₁)−f(x*))/σ² · (η+1)² — the convergence
// of asynchronous RNA training is *independent of the staleness bound η*,
// while for small K a larger η visibly hurts. The harness trains the same
// workload under RNA with η ∈ {1, 4, 16} at a small and a large round
// budget and reports the final training loss spread across η.

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

int main() {
  std::printf("=== Theorem 5.2: convergence becomes independent of the "
              "staleness bound η for large K ===\n");
  NamedScenario scenario = MakeResnetProxy();

  for (std::size_t rounds : {60u, 600u}) {
    std::printf("\nK = %zu rounds\n", rounds);
    std::printf("%-6s %14s %12s\n", "η", "final loss", "final acc");
    double lo = 1e9, hi = -1e9;
    for (std::size_t eta : {1u, 4u, 16u}) {
      train::TrainerConfig c =
          BaseBenchConfig(train::Protocol::kRna, scenario, 6);
      // No injected delay: compute outruns the collectives, so the backlog
      // actually reaches the staleness bound and η binds.
      c.target_loss = -1.0;
      c.max_rounds = rounds;
      c.staleness_bound = eta;
      // Average over a few seeds; single runs are noisy at small K.
      double loss = 0.0, acc = 0.0;
      constexpr int kRepeats = 3;
      for (int rep = 0; rep < kRepeats; ++rep) {
        c.seed = 1000 + 77 * rep;
        const auto r = RunProtocol(train::Protocol::kRna, scenario, c);
        loss += r.final_train_loss / kRepeats;
        acc += r.final_accuracy / kRepeats;
      }
      std::printf("%-6zu %14.4f %11.1f%%\n", eta, loss, acc * 100.0);
      lo = std::min(lo, loss);
      hi = std::max(hi, loss);
      std::fflush(stdout);
    }
    std::printf("relative loss spread across η: %.1f%% (expected to shrink "
                "as K grows)\n", 100.0 * (hi - lo) / lo);
  }
  return 0;
}
