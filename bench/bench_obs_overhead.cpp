// Observability overhead guard — enforces the subsystem's cost budget:
// with tracing *disabled* (no active obs::Session), the instrumentation
// left in the hot paths must add less than 2% to an integration-sized run.
//
// A direct A/B wall-clock comparison of two sub-second training runs is
// hopelessly noisy under real thread scheduling, so the guard measures the
// ingredients separately and projects:
//
//   1. per-op cost of a disabled ScopedTimer over the two bare clock reads
//      it replaces (the old Stopwatch pattern also read the clock twice, so
//      only the ActiveTrace() check + branch is *extra*), and the per-op
//      cost of a disabled CountMetric (one atomic load);
//   2. the number of span/metric operations S and M an integration-sized
//      RNA run actually performs (counted from an enabled run);
//   3. asserts S*extra_span + M*extra_metric < 2% of the baseline wall time.
//
// Exits non-zero on budget violation; CI runs this as a test.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "rna/common/clock.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr int kOps = 200000;

/// Per-op cost of two bare steady-clock reads — what the pre-obs Stopwatch
/// pattern paid per timed section.
double BareClockCost() {
  common::Seconds sink = 0.0;
  const common::Stopwatch watch;
  for (int i = 0; i < kOps; ++i) {
    const auto a = common::SteadyClock::now();
    const auto b = common::SteadyClock::now();
    sink += common::ToSeconds(b - a);
  }
  const double total = watch.Elapsed();
  if (sink < 0.0) std::printf("%f", sink);  // defeat dead-code elimination
  return total / kOps;
}

/// Per-op cost of a full disabled ScopedTimer lifecycle (ctor + Stop).
double DisabledTimerCost() {
  double sink = 0.0;
  const common::Stopwatch watch;
  for (int i = 0; i < kOps; ++i) {
    obs::ScopedTimer timer({}, obs::Category::kOther, "probe");
    sink += timer.Stop();
  }
  const double total = watch.Elapsed();
  if (sink < 0.0) std::printf("%f", sink);
  return total / kOps;
}

/// Per-op cost of a disabled CountMetric (no active registry).
double DisabledMetricCost() {
  const common::Stopwatch watch;
  for (int i = 0; i < kOps; ++i) {
    obs::CountMetric("probe.disabled");
  }
  return watch.Elapsed() / kOps;
}

train::TrainerConfig GuardConfig(const NamedScenario& scenario) {
  train::TrainerConfig config =
      BaseBenchConfig(train::Protocol::kRna, scenario, /*world=*/3);
  config.max_rounds = 60;
  config.target_loss = -1.0;
  config.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0015, std::vector<double>{0.0, 0.0005, 0.0030});
  return config;
}

}  // namespace

int main() {
  std::printf("=== Observability overhead guard (<2%% disabled-mode "
              "budget) ===\n");

  const double bare = BareClockCost();
  const double timer = DisabledTimerCost();
  const double extra_span = std::max(0.0, timer - bare);
  const double extra_metric = DisabledMetricCost();
  std::printf("per-op: bare clock pair %.1f ns, disabled ScopedTimer %.1f ns "
              "(extra %.1f ns), disabled CountMetric %.1f ns\n",
              bare * 1e9, timer * 1e9, extra_span * 1e9, extra_metric * 1e9);

  NamedScenario scenario = MakeResnetProxy();

  // Baseline: integration-sized run with observability disabled.
  const train::TrainResult baseline =
      RunProtocol(train::Protocol::kRna, scenario, GuardConfig(scenario));
  std::printf("baseline (no session): %.3f s wall, %zu rounds\n",
              baseline.wall_seconds, baseline.rounds);

  // Enabled run: count how many span/metric operations the same run emits.
  std::size_t spans = 0;
  double metric_ops = 0.0;
  {
    obs::Session session;
    (void)RunProtocol(train::Protocol::kRna, scenario, GuardConfig(scenario));
    spans = session.Trace().TotalRecorded() + session.Trace().TotalDropped();
    for (const obs::MetricsRegistry::Row& row : session.Metrics().Rows()) {
      if (row.kind == "stats") {
        metric_ops += static_cast<double>(row.count);  // one Observe each
      } else if (row.kind == "counter") {
        // Counter values double as op counts: every hot-path counter
        // increments by 1 except fabric.bytes, whose ops are paired 1:1
        // with fabric.messages, and the fabric.pool.* / fabric.wire.*
        // counters, which the fabric tracks with raw atomics and flushes as
        // one delta per counter at Fabric::Shutdown (so a bytes-sized value
        // is one CountMetric).
        if (row.name == "fabric.bytes") continue;
        if (row.name.rfind("fabric.pool.", 0) == 0 ||
            row.name.rfind("fabric.wire.", 0) == 0) {
          metric_ops += 1.0;
          continue;
        }
        metric_ops += row.value;
        if (row.name == "fabric.messages") metric_ops += row.value;
      } else {
        metric_ops += 1.0;  // gauges are set O(1) times per run
      }
    }
  }
  std::printf("instrumentation volume: %zu spans, ~%.0f metric ops\n", spans,
              metric_ops);

  const double projected =
      static_cast<double>(spans) * extra_span + metric_ops * extra_metric;
  const double budget = 0.02 * baseline.wall_seconds;
  const double pct = 100.0 * projected / baseline.wall_seconds;
  std::printf("projected disabled-mode overhead: %.3f ms (%.3f%% of "
              "baseline; budget 2%%)\n",
              projected * 1e3, pct);

  if (projected >= budget) {
    std::printf("FAIL: disabled-mode instrumentation overhead exceeds the "
                "2%% budget\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
