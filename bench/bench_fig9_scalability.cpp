// Figure 9 — throughput scaling for the Transformer as the number of
// processes grows (4 → 32), per approach, on the discrete-event cluster
// model with the paper's Transformer parameter count and sentence-length
// imbalance.
//
// Paper shapes: RNA and eager-SGD tie at 4 processes; at larger scale
// AD-PSGD and RNA pull ahead of Horovod and eager-SGD; at 32 processes
// AD-PSGD edges slightly past RNA on raw throughput (while RNA keeps better
// accuracy — Table 4 / §8.3's BLEU note).

#include <cstdio>

#include "rna/sim/protocols.hpp"

using namespace rna;

int main() {
  std::printf("=== Figure 9: Transformer throughput vs number of processes "
              "(DES, tokens/s proxy) ===\n");

  const sim::ModelSpec& transformer = sim::FindModel("transformer");
  // Sentence-length imbalance: long-tailed iteration times around the
  // calibrated base (batch of 4096 tokens).
  const sim::LongTailModel workload(transformer.base_iteration,
                                    transformer.base_iteration * 0.6,
                                    transformer.base_iteration * 0.15,
                                    transformer.base_iteration * 6.0);
  constexpr double kTokensPerIteration = 4096.0;

  std::printf("%-10s %12s %12s %12s %12s\n", "processes", "horovod",
              "eager-sgd", "ad-psgd", "rna");
  for (std::size_t world : {4u, 8u, 16u, 32u}) {
    sim::SimConfig config;
    config.world = world;
    config.rounds = 400;
    config.model_bytes = transformer.GradientBytes();
    config.comm.bandwidth = 12.5e9;  // EDR InfiniBand (testbed, Table 2)
    config.seed = 77;

    const auto bsp = sim::SimulateBsp(config, workload);
    const auto eager = sim::SimulateEagerMajority(config, workload);
    const auto adpsgd = sim::SimulateAdPsgd(config, workload);
    const auto rna = sim::SimulateRna(config, workload);

    auto tokens_per_s = [&](const sim::SimResult& r) {
      return r.GradientThroughput() * kTokensPerIteration;
    };
    std::printf("%-10zu %12.0f %12.0f %12.0f %12.0f\n", world,
                tokens_per_s(bsp), tokens_per_s(eager), tokens_per_s(adpsgd),
                tokens_per_s(rna));
  }
  std::printf("\nExpected shape: all scale with processes; RNA/AD-PSGD lead "
              "at 16-32 processes,\nHorovod trails (full barrier on a "
              "long-tailed workload).\n");
  return 0;
}
