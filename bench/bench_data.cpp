// Streaming data plane benchmarks. Rows emitted to BENCH_data.json by
// --json-out (the bench-smoke job gates them via tools/bench_gate.py):
//
//   stream_seq_uniform_sync       consumer throughput with prefetch off:
//                                 every batch is assembled inline on the
//                                 consumer thread (batches_per_s is
//                                 relative-gated).
//   stream_seq_uniform_prefetch   the same consumer work with a depth-4
//   stream_seq_bucketed_prefetch  prefetch queue: assembly overlaps the
//                                 consumer's compute, so throughput must
//                                 not regress (batches_per_s gated);
//                                 overlap_ratio_info reports the measured
//                                 prefetch/sync ratio (informational —
//                                 scheduler-dependent on a noisy box).
//   shard_view_w1000              1000 strided views over one 3000-sample
//                                 sequence dataset. sample_bytes_copied is
//                                 ceiling-gated at 0: views must alias the
//                                 dataset's tensors (pointer identity),
//                                 never copy them. index_bytes is the
//                                 entire per-worker footprint.
//   shard_view_overflow_w1000     the world > Size() regression: overflow
//                                 ranks fall back to the shared view
//                                 (fallback_workers floor-gated) with
//                                 still zero bytes copied.
//   fig2_bucketing                per-batch total sequence length CV with
//                                 uniform vs length-bucketed streaming.
//                                 Bucketing concentrates long sequences
//                                 into few batches, so the batch-to-batch
//                                 spread widens — the Figure 2(b) load
//                                 imbalance. The CV ratio is a pure
//                                 function of the seeds (floor-gated 2.0).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "rna/common/clock.hpp"
#include "rna/common/stats.hpp"
#include "rna/data/batch_generator.hpp"
#include "rna/data/generators.hpp"
#include "rna/data/shard_view.hpp"

using namespace rna;

namespace {

constexpr int kStreamBatches = 2000;

// Batches are sized so assembly costs tens of microseconds (≈ 320 KB of
// sample copies per batch): the regime where prefetch matters and where
// the per-batch queue hand-off (~1-3 µs) is noise rather than signal.
data::Dataset StreamDataset() {
  const data::LengthModel lengths{.mean = 160, .stddev = 60, .min_len = 32,
                                  .max_len = 400};
  return data::MakeSequenceDataset(512, 32, 4, lengths, 0.05, 41);
}

/// Burns roughly `seconds` of wall time in a tight arithmetic loop — the
/// stand-in for the consumer's per-batch compute (an actual model step).
double BusyWork(double seconds) {
  const common::Stopwatch watch;
  double acc = 0.0;
  while (watch.Elapsed() < seconds) {
    for (int i = 1; i <= 64; ++i) acc += 1.0 / static_cast<double>(i * i);
  }
  return acc;
}

/// Mean per-batch assembly cost of a synchronous generator — used to size
/// the consumer's emulated compute so assembly and compute are comparable
/// (the regime where prefetch overlap actually matters).
double MeanAssemblySeconds(const data::Dataset& ds) {
  data::BatchGenerator gen(
      data::ShardView::All(ds),
      {.batch_size = 16, .seed = 42, .prefetch_depth = 0});
  const common::Stopwatch watch;
  for (int b = 0; b < 400; ++b) (void)gen.Next();
  return watch.Elapsed() / 400.0;
}

void StreamRow(std::vector<benchutil::BenchRow>& rows, const std::string& label,
               const data::Dataset& ds, data::SamplingMode mode,
               std::size_t depth, double consume_s, double sync_batches_per_s) {
  data::BatchGenerator gen(data::ShardView::All(ds),
                           {.batch_size = 16,
                            .seed = 42,
                            .mode = mode,
                            .prefetch_depth = depth});
  double sink = 0.0;
  const common::Stopwatch watch;
  for (int b = 0; b < kStreamBatches; ++b) {
    nn::Batch batch = gen.Next();
    sink += BusyWork(consume_s) + static_cast<double>(batch.Size());
  }
  const double elapsed = watch.Elapsed();
  benchutil::BenchRow row;
  row.label = label;
  row.values["batches_per_s"] = kStreamBatches / elapsed;
  row.values["consume_us_per_batch"] = consume_s * 1e6;
  if (sync_batches_per_s > 0.0) {
    row.values["overlap_ratio_info"] =
        row.values["batches_per_s"] / sync_batches_per_s;
  }
  if (sink == 12345.0) std::printf("#");  // keep the work observable
  rows.push_back(row);
}

void StreamRows(std::vector<benchutil::BenchRow>& rows) {
  const data::Dataset ds = StreamDataset();
  const double consume_s = MeanAssemblySeconds(ds);
  StreamRow(rows, "stream_seq_uniform_sync", ds, data::SamplingMode::kUniform,
            /*depth=*/0, consume_s, 0.0);
  const double sync_rate = rows.back().values["batches_per_s"];
  StreamRow(rows, "stream_seq_uniform_prefetch", ds,
            data::SamplingMode::kUniform, /*depth=*/4, consume_s, sync_rate);
  StreamRow(rows, "stream_seq_bucketed_prefetch", ds,
            data::SamplingMode::kLengthBucketed, /*depth=*/4, consume_s,
            sync_rate);
}

/// Bytes of sample storage a view holds that are NOT aliases of the
/// dataset's own tensors. The zero-copy contract says this is exactly 0.
std::size_t SampleBytesCopied(const data::ShardView& view,
                              const data::Dataset& ds) {
  std::size_t copied = 0;
  for (std::size_t i = 0; i < view.Size(); ++i) {
    if (view.Sequence(i).Data() != ds.sequences[view.GlobalIndex(i)].Data()) {
      copied += view.Sequence(i).Size() * sizeof(float);
    }
  }
  return copied;
}

void ShardViewRow(std::vector<benchutil::BenchRow>& rows,
                  const std::string& label, std::size_t samples,
                  std::size_t world) {
  const data::LengthModel lengths{.mean = 24, .stddev = 10, .min_len = 4,
                                  .max_len = 80};
  const data::Dataset ds =
      data::MakeSequenceDataset(samples, 8, 4, lengths, 0.05, 43);
  std::size_t copied = 0, index_bytes = 0, fallbacks = 0;
  for (std::size_t r = 0; r < world; ++r) {
    const data::ShardView view = data::ShardView::Strided(ds, r, world);
    copied += SampleBytesCopied(view, ds);
    index_bytes += view.IndexBytes();
    fallbacks += view.SharedFallback();
  }
  benchutil::BenchRow row;
  row.label = label;
  row.values["sample_bytes_copied"] = static_cast<double>(copied);
  row.values["index_bytes"] = static_cast<double>(index_bytes);
  row.values["dataset_sample_bytes"] =
      static_cast<double>(data::DatasetSampleBytes(ds));
  row.values["fallback_workers"] = static_cast<double>(fallbacks);
  rows.push_back(row);
}

/// CV of per-batch total sequence length over one generator stream — the
/// deterministic proxy for Figure 2(b)'s batch-time spread (recurrent
/// compute is ~linear in length, see bench_fig2_imbalance).
double BatchLengthCv(const data::Dataset& ds, data::SamplingMode mode) {
  data::BatchGenerator gen(data::ShardView::All(ds),
                           {.batch_size = 16,
                            .seed = 44,
                            .mode = mode,
                            .prefetch_depth = 0});
  common::OnlineStats totals;
  for (int b = 0; b < 500; ++b) {
    double total = 0.0;
    for (const auto& seq : gen.Next().sequences) {
      total += static_cast<double>(seq.Rows());
    }
    totals.Add(total);
  }
  return totals.Stddev() / totals.Mean();
}

void Fig2BucketingRow(std::vector<benchutil::BenchRow>& rows) {
  const data::LengthModel lengths = data::VideoLengths(/*scale=*/1.0);
  const data::Dataset ds =
      data::MakeSequenceDataset(1024, 4, 4, lengths, 0.05, 45);
  const double cv_uniform = BatchLengthCv(ds, data::SamplingMode::kUniform);
  const double cv_bucketed =
      BatchLengthCv(ds, data::SamplingMode::kLengthBucketed);
  benchutil::BenchRow row;
  row.label = "fig2_bucketing";
  row.values["batch_len_cv_uniform"] = cv_uniform;
  row.values["batch_len_cv_bucketed"] = cv_bucketed;
  row.values["cv_ratio_bucketed_vs_uniform"] = cv_bucketed / cv_uniform;
  rows.push_back(row);
}

int Run(const std::string& json_out) {
  std::vector<benchutil::BenchRow> rows;
  StreamRows(rows);
  ShardViewRow(rows, "shard_view_w1000", /*samples=*/3000, /*world=*/1000);
  ShardViewRow(rows, "shard_view_overflow_w1000", /*samples=*/600,
               /*world=*/1000);
  Fig2BucketingRow(rows);
  if (!json_out.empty()) {
    benchutil::WriteBenchJson(json_out, "data", rows);
  }
  for (const auto& row : rows) {
    std::printf("%-28s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.6g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      std::fprintf(stderr, "usage: bench_data [--json-out PATH]\n");
      return 2;
    }
  }
  return Run(json_out);
}
