#pragma once

// Shared scaffolding for the experiment harnesses that regenerate the
// paper's tables and figures. Each paper workload maps to a scaled-down
// proxy (see DESIGN.md's substitution table): the *ratios* between compute
// time, injected heterogeneity, and model size mirror the paper's setup so
// the comparative shapes reproduce, while absolute magnitudes are shrunk to
// keep every bench in the seconds range.
//
// Heterogeneity scaling: the paper's testbed mixes K80 / 1080Ti / 2080Ti
// hardware (≈2–3× deterministic spread) and injects U(0,50) ms dynamic
// delays on ~0.5–1.2 s iterations. The proxies use ~1.5 ms synthetic
// "iterations" with the same relative spread.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/obs/export.hpp"
#include "rna/obs/session.hpp"
#include "rna/train/partial_engine.hpp"

namespace rna::benchutil {

struct NamedScenario {
  std::string name;
  data::Dataset train;
  data::Dataset val;
  train::ModelFactory factory;
  double target_loss = 0.5;
  double learning_rate = 0.15;
  std::size_t batch_size = 16;
  data::SamplingMode sampling = data::SamplingMode::kUniform;
  // GPU-compute emulation (see TrainerConfig): sleep ∝ sequence length.
  double sleep_per_step = 0.0;
  double sleep_per_step_sq = 0.0;
};

/// ResNet50 stand-in: a deep-ish MLP on Gaussian clusters (balanced
/// compute, moderate parameter count).
inline NamedScenario MakeResnetProxy(std::uint64_t seed = 1) {
  NamedScenario s;
  s.name = "resnet50";
  data::Dataset all = data::MakeGaussianClusters(4000, 16, 8, 0.7, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{16, 48, 48, 32, 8}, model_seed, "resnet50");
  };
  s.target_loss = 0.75;
  s.learning_rate = 0.1;
  return s;
}

/// VGG16 stand-in: a wide two-layer MLP — few compute steps per parameter,
/// i.e., communication-heavy, like VGG's 138 M parameters.
inline NamedScenario MakeVggProxy(std::uint64_t seed = 2) {
  NamedScenario s;
  s.name = "vgg16";
  data::Dataset all = data::MakeGaussianClusters(4000, 24, 6, 0.75, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{24, 512, 6}, model_seed, "vgg16");
  };
  s.target_loss = 0.75;
  s.learning_rate = 0.1;
  return s;
}

/// LSTM-on-UCF101 stand-in: a real LSTM on variable-length sequences whose
/// length distribution is the (scaled) Figure 2(a) video distribution, so
/// per-batch compute is genuinely long-tailed.
inline NamedScenario MakeLstmProxy(std::uint64_t seed = 3) {
  NamedScenario s;
  s.name = "lstm";
  // Lengths keep the Figure 2(a) shape (scaled 16×: mean ~11.6, max ~111);
  // the real LSTM provides exact gradients while per-batch "GPU time" is
  // emulated as sleep ∝ Σ lengths — recurrent compute is linear in length.
  const data::LengthModel lengths = data::VideoLengths(/*scale=*/16.0);
  data::Dataset all =
      data::MakeSequenceDataset(960, 6, 6, lengths, 1.2, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::LstmClassifier>(6, 16, 6, model_seed, 0.0);
  };
  s.target_loss = 0.75;
  s.learning_rate = 0.1;
  s.batch_size = 8;
  // Bucketed batching: batches of similar-length videos, so batch compute
  // follows the heavy-tailed length distribution (Figure 2(b)).
  s.sampling = data::SamplingMode::kLengthBucketed;
  s.sleep_per_step = 50e-6;
  return s;
}

/// Transformer-on-WMT17 stand-in: self-attention over variable-length
/// "sentences" (quadratic compute in length → inherent imbalance).
inline NamedScenario MakeTransformerProxy(std::uint64_t seed = 4) {
  NamedScenario s;
  s.name = "transformer";
  data::Dataset all =
      data::MakeSequenceDataset(960, 6, 6, data::SentenceLengths(), 0.25, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::AttentionClassifier>(6, 16, 6, model_seed);
  };
  s.target_loss = 1.0;
  s.learning_rate = 0.2;
  s.batch_size = 8;
  s.sampling = data::SamplingMode::kLengthBucketed;
  // WMT-style token-capped batching makes batch time ~linear in the bucket
  // length, emulated with a linear per-step sleep.
  s.sleep_per_step = 30e-6;
  return s;
}

/// The testbed's hardware mix (Table 2: K80 / 1080Ti / 2080Ti ≈ 3× spread)
/// plus the §8.1 dynamic random slowdown, scaled to the proxies'
/// millisecond iterations.
inline std::shared_ptr<const sim::IterationTimeModel> DynamicDelays(
    std::size_t world) {
  std::vector<double> tiers(world);
  for (std::size_t w = 0; w < world; ++w) {
    tiers[w] = 1.0 + static_cast<double>(w % 3);  // 1× / 2× / 3× machines
  }
  return std::make_shared<sim::TieredJitterModel>(0.001, std::move(tiers),
                                                  0.0, 0.001);
}

/// Mixed heterogeneity (§8.1): on top of the hardware mix, the second half
/// of the machines (group B) gets an extra deterministic slowdown — the
/// paper's +U(50,100) ms regime, same relative magnitude.
inline std::shared_ptr<const sim::IterationTimeModel> MixedDelays(
    std::size_t world) {
  std::vector<double> tiers(world);
  for (std::size_t w = 0; w < world; ++w) {
    tiers[w] = 1.0 + static_cast<double>(w % 3);
    if (w >= world / 2) tiers[w] += 3.0;  // group B: persistent stragglers
  }
  return std::make_shared<sim::TieredJitterModel>(0.001, std::move(tiers),
                                                  0.0, 0.001);
}

inline train::TrainerConfig BaseBenchConfig(train::Protocol protocol,
                                            const NamedScenario& scenario,
                                            std::size_t world = 4) {
  train::TrainerConfig c;
  c.protocol = protocol;
  c.world = world;
  c.batch_size = scenario.batch_size;
  c.sampling = scenario.sampling;
  c.sleep_per_step = scenario.sleep_per_step;
  c.sleep_per_step_sq = scenario.sleep_per_step_sq;
  // The host may be single-core: keep the monitor's evaluation footprint
  // small so it does not steal compute from the worker threads.
  c.eval_samples = 96;
  c.sgd.learning_rate = scenario.learning_rate;
  // Moderate momentum: high momentum (0.9) interacts badly with the very
  // high round rates of the partial collectives on these scaled-down
  // proxies (velocity accumulates across near-identical rounds); 0.5 is
  // stable for every protocol and is used uniformly for fairness.
  c.sgd.momentum = 0.5;
  c.max_rounds = 4000;
  c.target_loss = scenario.target_loss;
  c.patience = 0;
  c.eval_period_s = 0.02;
  c.seed = 1234;
  return c;
}

/// Runs a protocol on a scenario and returns the result (time-to-target is
/// result.wall_seconds when reached_target).
inline train::TrainResult RunProtocol(train::Protocol protocol,
                                      const NamedScenario& scenario,
                                      train::TrainerConfig config) {
  config.protocol = protocol;
  if (protocol == train::Protocol::kAdPsgd) {
    config.sgd.momentum = 0.0;  // gossip averaging uses plain SGD
  }
  return core::RunTraining(config, scenario.factory, scenario.train,
                           scenario.val);
}

/// Mean wall time over `repeats` independent runs (sub-second cells are
/// noisy under real thread scheduling; the paper's figures average full
/// training jobs).
inline double MeanTimeToTarget(train::Protocol protocol,
                               const NamedScenario& scenario,
                               train::TrainerConfig config,
                               std::size_t repeats = 3) {
  double total = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    config.seed = 1234 + 101 * rep;
    total += RunProtocol(protocol, scenario, config).wall_seconds;
  }
  return total / static_cast<double>(repeats);
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Machine-readable bench output: BenchRow and WriteBenchJson live in
// bench_json.hpp (included above) so JSON emission does not require the
// training stack. Trace export plumbing shared by the harnesses follows.

/// "out/trace.json" + "rna" → "out/trace-rna.json" — harnesses that run
/// several protocols against one --trace-out flag write one file per run.
inline std::string WithRunLabel(const std::string& path,
                                const std::string& label) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + "-" + label;
  }
  return path.substr(0, dot) + "-" + label + path.substr(dot);
}

}  // namespace rna::benchutil
