// Figure 2 — inherent load imbalance when training an LSTM on UCF101.
//
// (a) The video-length distribution: 13,320 videos, lengths 29–1776 frames,
//     mean 186, stddev 97.7. Regenerated from the calibrated clamped
//     log-normal model.
// (b) The per-batch training-time distribution (mean 1219 ms, stddev
//     760 ms, range 156 ms – 8 s over 2000 batches). Reproduced two ways:
//     the calibrated timing model at paper magnitudes, and *measured* wall
//     times of the real (scaled-down) LSTM on variable-length batches —
//     demonstrating that compute is genuinely proportional to sequence
//     length, not merely simulated.

#include <cstdio>

#include "rna/common/clock.hpp"
#include "rna/common/stats.hpp"
#include "rna/data/batch_generator.hpp"
#include "rna/data/generators.hpp"
#include "rna/data/shard_view.hpp"
#include "rna/nn/network.hpp"
#include "rna/sim/workload.hpp"

using namespace rna;

namespace {

void Fig2aVideoLengths() {
  std::printf("=== Figure 2(a): UCF101 video length distribution ===\n");
  const data::LengthModel model;  // paper calibration
  common::Rng rng(7);
  common::OnlineStats stats;
  common::Histogram hist(0, 800, 16);
  for (int i = 0; i < 13320; ++i) {
    const double len = static_cast<double>(model.Sample(rng));
    stats.Add(len);
    hist.Add(len);
  }
  std::printf("samples=13320  mean=%.1f (paper 186)  stddev=%.1f (paper 97.7)"
              "  min=%.0f (paper 29)  max=%.0f (paper <=1776)\n",
              stats.Mean(), stats.Stddev(), stats.Min(), stats.Max());
  std::printf("%s", hist.Render(48).c_str());
}

void Fig2bModelled() {
  std::printf("\n=== Figure 2(b): LSTM batch time distribution "
              "(calibrated model, paper magnitudes) ===\n");
  const auto model = sim::LongTailModel::LstmUcf101();
  common::Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(model.Sample(0, i, rng));
  const auto s = common::Summarize(samples);
  std::printf("batches=2000  mean=%.0f ms (paper 1219)  stddev=%.0f ms "
              "(paper 760)  min=%.0f ms (paper 156)  max=%.0f ms (paper 8000)\n",
              s.mean * 1e3, s.stddev * 1e3, s.min * 1e3, s.max * 1e3);
}

void Fig2bMeasured() {
  std::printf("\n=== Figure 2(b) companion: measured wall time of the real "
              "LSTM vs sequence length ===\n");
  const data::LengthModel lengths = data::VideoLengths(/*scale=*/8.0);
  data::Dataset ds = data::MakeSequenceDataset(256, 8, 4, lengths, 0.05, 9);
  nn::LstmClassifier net(8, 32, 4, 11, 0.0);

  // Measure per-batch forward+backward time and correlate with total
  // sequence length in the batch.
  common::OnlineStats times;
  double cov_acc = 0.0;
  common::OnlineStats len_stats;
  std::vector<std::pair<double, double>> points;  // (total length, seconds)
  common::Rng rng(10);
  for (int b = 0; b < 120; ++b) {
    std::vector<std::size_t> idx(8);
    for (auto& i : idx) i = rng.UniformInt(ds.Size());
    nn::Batch batch = ds.MakeBatch(idx);
    double total_len = 0;
    for (const auto& seq : batch.sequences) {
      total_len += static_cast<double>(seq.Rows());
    }
    const common::Stopwatch watch;
    net.ForwardBackward(batch);
    const double t = watch.Elapsed();
    points.emplace_back(total_len, t);
    times.Add(t);
    len_stats.Add(total_len);
  }
  for (const auto& [len, t] : points) {
    cov_acc += (len - len_stats.Mean()) * (t - times.Mean());
  }
  const double corr =
      cov_acc / (static_cast<double>(points.size()) *
                 std::max(1e-12, len_stats.Stddev() * times.Stddev()));
  std::printf("batches=120  mean=%.2f ms  stddev=%.2f ms  min=%.2f ms  "
              "max=%.2f ms\n",
              times.Mean() * 1e3, times.Stddev() * 1e3, times.Min() * 1e3,
              times.Max() * 1e3);
  std::printf("corr(batch total sequence length, batch time) = %.3f "
              "(recurrent compute is ~linear in length)\n", corr);
}

void Fig2bBucketing() {
  std::printf("\n=== Figure 2(b) with/without length bucketing (measured "
              "LSTM, streaming generator) ===\n");
  // Length-bucketed batching is what produces the paper's per-batch time
  // spread: each batch is all-short or all-long, so batch times track the
  // sample length distribution instead of averaging it away. Uniform
  // batches mix lengths and flatten the spread (by roughly 1/sqrt(B)).
  const data::LengthModel lengths = data::VideoLengths(/*scale=*/8.0);
  data::Dataset ds = data::MakeSequenceDataset(256, 8, 4, lengths, 0.05, 12);
  nn::LstmClassifier net(8, 32, 4, 13, 0.0);

  for (const auto mode :
       {data::SamplingMode::kUniform, data::SamplingMode::kLengthBucketed}) {
    data::BatchGenerator gen(data::ShardView::All(ds),
                             {.batch_size = 8,
                              .seed = 14,
                              .mode = mode,
                              .prefetch_depth = 2});
    common::OnlineStats times;
    for (int b = 0; b < 120; ++b) {
      nn::Batch batch = gen.Next();
      const common::Stopwatch watch;
      net.ForwardBackward(batch);
      times.Add(watch.Elapsed());
    }
    std::printf("%-9s batches=120  mean=%.2f ms  stddev=%.2f ms  "
                "min=%.2f ms  max=%.2f ms  cv=%.2f\n",
                mode == data::SamplingMode::kUniform ? "uniform" : "bucketed",
                times.Mean() * 1e3, times.Stddev() * 1e3, times.Min() * 1e3,
                times.Max() * 1e3, times.Stddev() / times.Mean());
  }
}

}  // namespace

int main() {
  Fig2aVideoLengths();
  Fig2bModelled();
  Fig2bMeasured();
  Fig2bBucketing();
  return 0;
}
