// Figure 10 / §8.4 — effect of the number of probe choices on the
// per-round response time: 100 simulated nodes with skewed task times
// (10–50 ms), 100 rounds per configuration. The paper's box plot reports
// p5/p25/median/p75/p95 per choice count; its headline: two choices cut the
// median response time >2.4× vs purely random selection, while additional
// probes stop helping (messaging overhead).

#include <cstdio>

#include "rna/common/stats.hpp"
#include "rna/sim/protocols.hpp"

using namespace rna;

int main() {
  std::printf("=== Figure 10: response time vs number of probe choices "
              "(100 nodes, 100 rounds) ===\n");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s\n", "choices", "p5(ms)",
              "p25(ms)", "med(ms)", "p75(ms)", "p95(ms)", "mean(ms)");

  const sim::LongTailModel tasks = sim::ProbeBenchmarkTasks();
  double median_q1 = 0.0, median_q2 = 0.0;
  for (std::size_t q : {1u, 2u, 3u, 4u, 5u, 6u}) {
    // Aggregate several seeds per configuration for stable box statistics.
    std::vector<double> responses;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto r = sim::ProbeResponseTimes(100, q, 100, tasks,
                                             /*probe_overhead=*/0.0012, seed);
      responses.insert(responses.end(), r.begin(), r.end());
    }
    const auto s = common::Summarize(responses);
    std::printf("%-8zu %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f\n", q, s.p5 * 1e3,
                s.p25 * 1e3, s.median * 1e3, s.p75 * 1e3, s.p95 * 1e3,
                s.mean * 1e3);
    if (q == 1) median_q1 = s.median;
    if (q == 2) median_q2 = s.median;
  }
  std::printf("\nmedian(1 choice)/median(2 choices) = %.2fx "
              "(paper reports ~2.4x, 28 ms -> 12 ms)\n",
              median_q1 / median_q2);
  return 0;
}
