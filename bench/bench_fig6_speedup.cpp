// Figure 6 — training speedup (time to target loss) over Horovod for
// ResNet50- and VGG16-proxies and the real LSTM workload, under dynamic
// heterogeneity and under mixed heterogeneity ("M" columns), including RNA
// with hierarchical synchronization ("H").
//
// Paper shapes to reproduce: RNA ≈1.4–1.7× over Horovod; eager-SGD between
// Horovod and RNA; under mixed heterogeneity flat RNA and eager-SGD degrade
// while RNA+H stays stable.

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr std::size_t kWorld = 6;

double TimeToTarget(train::Protocol protocol, const NamedScenario& scenario,
                    const std::shared_ptr<const sim::IterationTimeModel>& delays) {
  train::TrainerConfig config = BaseBenchConfig(protocol, scenario, kWorld);
  config.delay_model = delays;
  config.max_rounds = 3000;
  config.eval_period_s = 0.01;
  return MeanTimeToTarget(protocol, scenario, config, /*repeats=*/3);
}

void RunColumn(const char* column, const NamedScenario& scenario,
               const std::shared_ptr<const sim::IterationTimeModel>& delays,
               bool include_hierarchical) {
  const double horovod =
      TimeToTarget(train::Protocol::kHorovod, scenario, delays);
  std::printf("%-12s horovod=%.2fs", column, horovod);
  const struct {
    train::Protocol protocol;
    const char* name;
  } rows[] = {
      {train::Protocol::kEagerSgd, "eager-sgd"},
      {train::Protocol::kAdPsgd, "ad-psgd"},
      {train::Protocol::kRna, "rna"},
  };
  for (const auto& row : rows) {
    const double t = TimeToTarget(row.protocol, scenario, delays);
    std::printf("  %s=%.2fx", row.name, horovod / t);
  }
  if (include_hierarchical) {
    const double t =
        TimeToTarget(train::Protocol::kRnaHierarchical, scenario, delays);
    std::printf("  rna-h=%.2fx", horovod / t);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("=== Figure 6: training speedup over Horovod "
              "(time to target loss, %zu workers) ===\n", kWorld);
  std::printf("Speedups are Horovod time / approach time; >1 is faster.\n");
  PrintRule();

  NamedScenario resnet = MakeResnetProxy();
  NamedScenario vgg = MakeVggProxy();
  NamedScenario lstm = MakeLstmProxy();

  RunColumn("ResNet50", resnet, DynamicDelays(kWorld), true);
  RunColumn("ResNet50(M)", resnet, MixedDelays(kWorld), true);
  RunColumn("VGG16", vgg, DynamicDelays(kWorld), true);
  RunColumn("VGG16(M)", vgg, MixedDelays(kWorld), true);
  RunColumn("LSTM", lstm, nullptr, false);  // inherent imbalance only (§8.1)

  PrintRule();
  std::printf("Paper reference: RNA 1.7x/1.4x/1.6x (ResNet/VGG/LSTM); under "
              "mixed heterogeneity\nflat RNA drops (1.7->1.5) while RNA-H "
              "holds ~1.8x/1.4x.\n");
  return 0;
}
