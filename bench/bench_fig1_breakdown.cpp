// Figure 1 — training-time breakdown under BSP with injected slowdowns.
//
// Paper setup: 3 workers (RTX 2080 Ti), workers 2 and 3 slowed by 10 ms and
// 40 ms; ResNet-56 and VGG-16 on CIFAR-10; the figure decomposes each
// worker's iteration into computation vs waiting. Reproduced here with the
// calibrated per-model iteration times and the same injected skews on the
// discrete-event BSP model, plus the RNA comparison showing the waiting
// share collapsing.

#include <cstdio>

#include "rna/sim/protocols.hpp"

namespace {

using namespace rna;

void RunModel(const char* label, double base_iteration,
              std::size_t model_bytes) {
  sim::SimConfig config;
  config.world = 3;
  config.rounds = 500;
  config.model_bytes = model_bytes;
  config.comm.bandwidth = 12.5e9;  // EDR InfiniBand, as in the testbed
  config.seed = 42;

  const sim::DeterministicSkewModel skew(base_iteration,
                                         {0.0, 0.010, 0.040});

  const sim::SimResult bsp = sim::SimulateBsp(config, skew);
  std::printf("\n%s (base iteration %.0f ms, injected skew 0/10/40 ms)\n",
              label, base_iteration * 1e3);
  std::printf("%-10s %14s %14s %12s\n", "worker", "computation(s)",
              "waiting(s)", "wait share");
  for (std::size_t w = 0; w < config.world; ++w) {
    const auto& b = bsp.breakdown[w];
    std::printf("w%-9zu %14.2f %14.2f %11.1f%%\n", w + 1, b.compute, b.wait,
                100.0 * b.wait / (b.compute + b.wait));
  }
  std::printf("BSP total: %.2f s for %zu rounds (%.1f ms/round)\n",
              bsp.total_time, bsp.rounds, bsp.MeanRoundTime() * 1e3);

  const sim::SimResult rna = sim::SimulateRna(config, skew);
  std::printf("RNA total: %.2f s for %zu rounds (%.1f ms/round) — "
              "%.2fx faster\n",
              rna.total_time, rna.rounds, rna.MeanRoundTime() * 1e3,
              bsp.total_time / rna.total_time);
}

}  // namespace

int main() {
  std::printf("=== Figure 1: training time breakdown with system "
              "configurations (BSP) ===\n");
  std::printf("Paper observation: the fastest worker computes ~2x faster "
              "but waits for stragglers.\n");
  // ResNet-56 on CIFAR-10 is lighter than the ResNet50/ImageNet job of the
  // main evaluation; use a 100 ms base iteration and the VGG16 calibration
  // from the model catalog.
  RunModel("ResNet-56/CIFAR-10", 0.100, 3'400'000u * 4);
  RunModel("VGG-16/CIFAR-10", 0.160,
           static_cast<std::size_t>(rna::sim::FindModel("vgg16").parameters) * 4);
  return 0;
}
