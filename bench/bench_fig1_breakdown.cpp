// Figure 1 — training-time breakdown under BSP with injected slowdowns.
//
// Paper setup: 3 workers (RTX 2080 Ti), workers 2 and 3 slowed by 10 ms and
// 40 ms; ResNet-56 and VGG-16 on CIFAR-10; the figure decomposes each
// worker's iteration into computation vs waiting.
//
// Two views:
//  (1) the real threaded runtime under an rna::obs::Session — the
//      compute/wait/comm bars are derived from the recorded spans
//      (obs::WorkerAccounts), cross-checked against the runner's reported
//      WorkerTimeBreakdown, for BSP/Horovod vs RNA;
//  (2) the calibrated discrete-event model at paper magnitudes (companion).
//
// Flags: --json-out BENCH_fig1.json   machine-readable rows for CI
//        --trace-out fig1.trace.json  Perfetto-loadable trace per protocol

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "rna/common/flags.hpp"
#include "rna/sim/protocols.hpp"

namespace {

using namespace rna;
using namespace rna::benchutil;

/// Runs one protocol under a fresh obs session and reports the breakdown
/// derived from the trace. Returns the rows added to the JSON output.
void RunMeasured(train::Protocol protocol, const char* label,
                 const std::string& trace_out,
                 std::vector<BenchRow>& rows) {
  NamedScenario scenario = MakeResnetProxy();
  train::TrainerConfig config =
      BaseBenchConfig(protocol, scenario, /*world=*/3);
  config.max_rounds = 40;
  config.target_loss = -1.0;
  // The paper's 0/10/40 ms skews, scaled to the proxy's ~1.5 ms iteration.
  config.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0015, std::vector<double>{0.0, 0.00075, 0.0030});

  obs::Session session;
  const train::TrainResult r =
      RunProtocol(protocol, scenario, config);

  const auto tracks = session.Trace().Snapshot();
  const std::vector<obs::TimeAccount> accounts =
      obs::WorkerAccounts(tracks, config.world);

  std::printf("\n%s — per-worker breakdown derived from %llu spans\n", label,
              static_cast<unsigned long long>(session.Trace().TotalRecorded()));
  std::printf("%-8s %12s %12s %12s %12s\n", "worker", "compute(s)", "wait(s)",
              "comm(s)", "wait share");
  for (std::size_t w = 0; w < config.world; ++w) {
    const obs::TimeAccount& a = accounts[w];
    const double busy = a.compute + a.wait + a.comm;
    std::printf("w%-7zu %12.3f %12.3f %12.3f %11.1f%%\n", w + 1, a.compute,
                a.wait, a.comm, busy > 0.0 ? 100.0 * a.wait / busy : 0.0);
    BenchRow row;
    row.label = std::string(label) + "/worker" + std::to_string(w);
    row.values = {{"compute_s", a.compute},
                  {"wait_s", a.wait},
                  {"comm_s", a.comm},
                  {"spans", static_cast<double>(a.spans)}};
    rows.push_back(std::move(row));

    // The runner's own accounting must agree with the trace: both sides of
    // each number come from the same ScopedTimer measurements.
    const auto& b = r.breakdown[w];
    const double drift = std::abs(a.compute - b.compute) +
                         std::abs(a.wait - b.wait) +
                         std::abs(a.comm - b.comm);
    if (drift > 1e-6 * (1.0 + busy)) {
      std::printf("  WARNING: trace/breakdown drift %.3e s (reported "
                  "compute=%.3f wait=%.3f comm=%.3f)\n",
                  drift, b.compute, b.wait, b.comm);
    }
  }
  std::printf("total: %.2f s for %zu rounds (%.1f ms/round), mean "
              "contributors %.2f\n",
              r.wall_seconds, r.rounds, r.MeanRoundTime() * 1e3,
              r.MeanContributors());

  if (!trace_out.empty()) {
    const std::string path = WithRunLabel(trace_out, train::ProtocolName(protocol));
    session.ExportTrace(path);
    std::printf("trace written to %s\n", path.c_str());
  }
}

void RunModelled(const char* label, double base_iteration,
                 std::size_t model_bytes) {
  sim::SimConfig config;
  config.world = 3;
  config.rounds = 500;
  config.model_bytes = model_bytes;
  config.comm.bandwidth = 12.5e9;  // EDR InfiniBand, as in the testbed
  config.seed = 42;

  const sim::DeterministicSkewModel skew(base_iteration,
                                         {0.0, 0.010, 0.040});

  const sim::SimResult bsp = sim::SimulateBsp(config, skew);
  std::printf("\n%s (base iteration %.0f ms, injected skew 0/10/40 ms)\n",
              label, base_iteration * 1e3);
  std::printf("%-10s %14s %14s %12s\n", "worker", "computation(s)",
              "waiting(s)", "wait share");
  for (std::size_t w = 0; w < config.world; ++w) {
    const auto& b = bsp.breakdown[w];
    std::printf("w%-9zu %14.2f %14.2f %11.1f%%\n", w + 1, b.compute, b.wait,
                100.0 * b.wait / (b.compute + b.wait));
  }
  std::printf("BSP total: %.2f s for %zu rounds (%.1f ms/round)\n",
              bsp.total_time, bsp.rounds, bsp.MeanRoundTime() * 1e3);

  const sim::SimResult rna = sim::SimulateRna(config, skew);
  std::printf("RNA total: %.2f s for %zu rounds (%.1f ms/round) — "
              "%.2fx faster\n",
              rna.total_time, rna.rounds, rna.MeanRoundTime() * 1e3,
              bsp.total_time / rna.total_time);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");

  std::printf("=== Figure 1: training time breakdown with system "
              "configurations ===\n");
  std::printf("Paper observation: the fastest worker computes ~2x faster "
              "but waits for stragglers.\n");

  std::printf("\n--- Measured view: real runtime, breakdown from rna::obs "
              "traces ---\n");
  std::vector<rna::benchutil::BenchRow> rows;
  RunMeasured(rna::train::Protocol::kHorovod, "BSP/Horovod", trace_out, rows);
  RunMeasured(rna::train::Protocol::kRna, "RNA", trace_out, rows);

  std::printf("\n--- Companion: calibrated discrete-event model at paper "
              "magnitudes ---\n");
  // ResNet-56 on CIFAR-10 is lighter than the ResNet50/ImageNet job of the
  // main evaluation; use a 100 ms base iteration and the VGG16 calibration
  // from the model catalog.
  RunModelled("ResNet-56/CIFAR-10", 0.100, 3'400'000u * 4);
  RunModelled("VGG-16/CIFAR-10", 0.160,
              static_cast<std::size_t>(
                  rna::sim::FindModel("vgg16").parameters) * 4);

  if (!json_out.empty()) {
    rna::benchutil::WriteBenchJson(json_out, "fig1_breakdown", rows);
    std::printf("\nrows written to %s\n", json_out.c_str());
  }
  return 0;
}
