// google-benchmark microbenchmarks for the compute kernels underlying the
// training substrate: matmul variants, LSTM step cost vs sequence length
// (the physical basis of Figure 2's imbalance), attention cost vs length.

#include <benchmark/benchmark.h>

#include "rna/common/rng.hpp"
#include "rna/nn/attention.hpp"
#include "rna/nn/lstm.hpp"
#include "rna/tensor/ops.hpp"

using namespace rna;

namespace {

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  tensor::Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& x : a.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (auto& x : b.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (auto _ : state) {
    tensor::MatMul(a, b, c);
    benchmark::DoNotOptimize(c.Data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.0f), y(n, 2.0f);
  for (auto _ : state) {
    tensor::Axpy(0.5f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float) * 2));
}
BENCHMARK(BM_Axpy)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// LSTM forward+backward cost as a function of sequence length — linear,
/// which is exactly the inherent-imbalance mechanism of Figure 2(b).
void BM_LstmSequence(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  nn::LstmLayer lstm(8, 32, rng);
  tensor::Tensor x({len, 8});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  tensor::Tensor dh({1, 32});
  dh.Fill(0.01f);
  for (auto _ : state) {
    tensor::Tensor h = lstm.Forward(x);
    benchmark::DoNotOptimize(h.Data());
    tensor::Tensor dx = lstm.Backward(dh);
    benchmark::DoNotOptimize(dx.Data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_LstmSequence)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

/// Attention cost vs length — quadratic (the Transformer imbalance).
void BM_AttentionSequence(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  nn::AttentionBlock attention(8, 24, rng);
  tensor::Tensor x({len, 8});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  tensor::Tensor dy({len, 24});
  dy.Fill(0.01f);
  for (auto _ : state) {
    tensor::Tensor y = attention.Forward(x);
    benchmark::DoNotOptimize(y.Data());
    tensor::Tensor dx = attention.Backward(dy);
    benchmark::DoNotOptimize(dx.Data());
  }
}
BENCHMARK(BM_AttentionSequence)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
