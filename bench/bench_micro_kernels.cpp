// Microbenchmarks for the compute kernels underlying the training
// substrate: matmul variants, LSTM step cost vs sequence length (the
// physical basis of Figure 2's imbalance), attention cost vs length, and
// the vectorized data-plane kernels (rna/common/simd.hpp) against their
// scalar references.
//
// Two modes (same contract as bench_micro_fabric):
//   (default)            google-benchmark sweep.
//   --json-out <path>    pinned kernel workloads written as a
//                        BENCH_micro_kernels.json artifact for the CI
//                        bench-smoke regression gate (tools/bench_gate.py).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "rna/common/rng.hpp"
#include "rna/common/simd.hpp"
#include "rna/nn/attention.hpp"
#include "rna/nn/lstm.hpp"
#include "rna/tensor/ops.hpp"

using namespace rna;

namespace {

void BM_MatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  tensor::Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto& x : a.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (auto& x : b.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (auto _ : state) {
    tensor::MatMul(a, b, c);
    benchmark::DoNotOptimize(c.Data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_Axpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.0f), y(n, 2.0f);
  for (auto _ : state) {
    tensor::Axpy(0.5f, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float) * 2));
}
BENCHMARK(BM_Axpy)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

/// The data-plane kernels, vectorized (kAuto) vs scalar reference — the
/// range(1) flag selects the dispatch so the speedup is visible in one
/// sweep.
template <typename Kernel>
void RunKernelBench(benchmark::State& state, Kernel&& kernel) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dispatch = state.range(1) == 0 ? common::simd::Dispatch::kAuto
                                            : common::simd::Dispatch::kScalar;
  common::simd::SetDispatch(dispatch);
  std::vector<float> dst(n, 1.0f), src(n, 0.5f);
  for (auto _ : state) {
    kernel(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  common::simd::SetDispatch(common::simd::Dispatch::kAuto);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float) * 2));
}

void BM_SimdAddInto(benchmark::State& state) {
  RunKernelBench(state, [](std::span<float> d, std::span<const float> s) {
    common::simd::AddInto(d, s);
  });
}
BENCHMARK(BM_SimdAddInto)->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_SimdScaleInto(benchmark::State& state) {
  RunKernelBench(state, [](std::span<float> d, std::span<const float>) {
    common::simd::ScaleInto(d, 0.999f);
  });
}
BENCHMARK(BM_SimdScaleInto)->Args({1 << 16, 0})->Args({1 << 16, 1});

void BM_SimdWeightedAccumulate(benchmark::State& state) {
  RunKernelBench(state, [](std::span<float> d, std::span<const float> s) {
    common::simd::WeightedAccumulate(d, s, 0.25f);
  });
}
BENCHMARK(BM_SimdWeightedAccumulate)->Args({1 << 16, 0})->Args({1 << 16, 1});

/// LSTM forward+backward cost as a function of sequence length — linear,
/// which is exactly the inherent-imbalance mechanism of Figure 2(b).
void BM_LstmSequence(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  nn::LstmLayer lstm(8, 32, rng);
  tensor::Tensor x({len, 8});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  tensor::Tensor dh({1, 32});
  dh.Fill(0.01f);
  for (auto _ : state) {
    tensor::Tensor h = lstm.Forward(x);
    benchmark::DoNotOptimize(h.Data());
    tensor::Tensor dx = lstm.Backward(dh);
    benchmark::DoNotOptimize(dx.Data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_LstmSequence)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

/// Attention cost vs length — quadratic (the Transformer imbalance).
void BM_AttentionSequence(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  nn::AttentionBlock attention(8, 24, rng);
  tensor::Tensor x({len, 8});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  tensor::Tensor dy({len, 24});
  dy.Fill(0.01f);
  for (auto _ : state) {
    tensor::Tensor y = attention.Forward(x);
    benchmark::DoNotOptimize(y.Data());
    tensor::Tensor dx = attention.Backward(dy);
    benchmark::DoNotOptimize(dx.Data());
  }
}
BENCHMARK(BM_AttentionSequence)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------------
// --json-out mode

/// GB/s of one kernel at 1M floats under the given dispatch.
template <typename Kernel>
double MeasureKernelGbps(common::simd::Dispatch dispatch, Kernel&& kernel) {
  constexpr std::size_t kElems = 1u << 20;
  constexpr int kWarmup = 5;
  constexpr int kIters = 50;
  common::simd::SetDispatch(dispatch);
  std::vector<float> dst(kElems, 1.0f), src(kElems, 0.5f);
  for (int i = 0; i < kWarmup; ++i) kernel(dst, src);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) kernel(dst, src);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  common::simd::SetDispatch(common::simd::Dispatch::kAuto);
  // dst read + write + src read per element.
  return static_cast<double>(kElems) * sizeof(float) * 2 * kIters / secs /
         1e9;
}

template <typename Kernel>
benchutil::BenchRow KernelRow(const std::string& label, Kernel&& kernel) {
  benchutil::BenchRow row;
  row.label = label;
  const double wide =
      MeasureKernelGbps(common::simd::Dispatch::kAuto, kernel);
  const double narrow =
      MeasureKernelGbps(common::simd::Dispatch::kScalar, kernel);
  row.values["gbps_auto"] = wide;
  row.values["gbps_scalar"] = narrow;
  row.values["speedup"] = wide / narrow;
  return row;
}

int JsonMain(const std::string& path) {
  std::vector<benchutil::BenchRow> rows;
  rows.push_back(
      KernelRow("add_into_1m", [](std::span<float> d,
                                  std::span<const float> s) {
        common::simd::AddInto(d, s);
      }));
  rows.push_back(
      KernelRow("scale_into_1m", [](std::span<float> d,
                                    std::span<const float>) {
        common::simd::ScaleInto(d, 0.999f);
      }));
  rows.push_back(KernelRow(
      "weighted_accumulate_1m",
      [](std::span<float> d, std::span<const float> s) {
        common::simd::WeightedAccumulate(d, s, 1e-6f);
      }));
  rows.push_back(
      KernelRow("scaled_copy_1m", [](std::span<float> d,
                                     std::span<const float> s) {
        common::simd::ScaledCopy(d, s, 0.25f);
      }));
  benchutil::WriteBenchJson(path, "micro_kernels", rows);
  for (const auto& row : rows) {
    std::printf("%-24s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.4g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!json_out.empty()) return JsonMain(json_out);
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
