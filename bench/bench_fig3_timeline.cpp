// Figure 3 — blocking vs non-blocking AllReduce, made concrete on the real
// threaded runtime: three workers, one persistently slow. Under BSP every
// round includes all three workers (and waits for the slowest); under RNA
// rounds trigger early and the slow worker contributes null or catches up
// with accumulated gradients in a later round.
//
// The round timeline (start, duration, contributor count) is reconstructed
// from the rna::obs trace: RNA rounds come from the controller's "round"
// spans, BSP rounds from rank 0's "allreduce" spans (every barrier round
// includes all workers by construction).
//
// Flags: --json-out BENCH_fig3.json   machine-readable rows for CI
//        --trace-out fig3.trace.json  Perfetto-loadable trace per protocol

#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "rna/common/flags.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

struct RoundEvent {
  double start = 0.0;     ///< seconds since trace epoch
  double duration = 0.0;  ///< seconds
  double contributors = 0.0;
};

double ArgOr(const obs::Span& span, const char* key, double fallback) {
  for (int slot = 0; slot < 2; ++slot) {
    if (span.arg_keys[slot] != nullptr &&
        std::strcmp(span.arg_keys[slot], key) == 0) {
      return span.arg_vals[slot];
    }
  }
  return fallback;
}

/// Pulls the per-round events out of a trace snapshot. RNA publishes them on
/// the controller track; the BSP baseline has no controller, so rank 0's
/// allreduce spans stand in (contributors == world, by definition of BSP).
std::vector<RoundEvent> RoundsFromTrace(
    const std::vector<obs::TraceRecorder::TrackView>& tracks,
    std::size_t world) {
  std::vector<RoundEvent> rounds;
  auto collect = [&](const obs::TraceRecorder::TrackView& track,
                     const char* span_name, double default_contributors) {
    for (const obs::Span& span : track.spans) {
      if (std::strcmp(span.name, span_name) != 0) continue;
      RoundEvent ev;
      ev.start = span.start;
      ev.duration = span.duration;
      ev.contributors = ArgOr(span, "contributors", default_contributors);
      rounds.push_back(ev);
    }
  };
  for (const auto& track : tracks) {
    if (track.name == "controller") {
      collect(track, "round", 0.0);
      return rounds;
    }
  }
  for (const auto& track : tracks) {
    if (track.name == "worker0/sync") {
      collect(track, "allreduce", static_cast<double>(world));
    }
  }
  return rounds;
}

void Run(train::Protocol protocol, const char* label,
         const std::string& trace_out, std::vector<BenchRow>& rows) {
  NamedScenario scenario = MakeResnetProxy();
  train::TrainerConfig config = BaseBenchConfig(protocol, scenario, 3);
  config.max_rounds = 24;
  config.target_loss = -1.0;
  // Worker C (rank 2) is the straggler: 3 ms extra on a 1.5 ms base.
  config.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0015, std::vector<double>{0.0, 0.0005, 0.0030});

  obs::Session session;
  const train::TrainResult r = RunProtocol(protocol, scenario, config);
  const std::vector<RoundEvent> rounds =
      RoundsFromTrace(session.Trace().Snapshot(), config.world);

  std::printf("\n--- %s: %zu rounds in %.1f ms (%.2f ms/round) ---\n", label,
              r.rounds, r.wall_seconds * 1e3, r.MeanRoundTime() * 1e3);
  std::printf("timeline from trace (%zu round spans):\n", rounds.size());
  std::printf("%-7s %10s %10s %13s\n", "round", "start(ms)", "dur(ms)",
              "contributors");
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    std::printf("%-7zu %10.2f %10.2f %13.0f\n", i + 1, rounds[i].start * 1e3,
                rounds[i].duration * 1e3, rounds[i].contributors);
  }
  std::printf("mean contributors/round: %.2f of 3; gradients applied: %zu; "
              "overwritten by staleness bound: %zu\n",
              r.MeanContributors(), r.gradients_applied, r.gradients_dropped);
  std::printf("per-worker mini-batches computed:");
  for (const auto& b : r.breakdown) std::printf(" %zu", b.iterations);
  std::printf("\n");

  double mean_dur = 0.0, mean_contrib = 0.0;
  for (const RoundEvent& ev : rounds) {
    mean_dur += ev.duration;
    mean_contrib += ev.contributors;
  }
  if (!rounds.empty()) {
    mean_dur /= static_cast<double>(rounds.size());
    mean_contrib /= static_cast<double>(rounds.size());
  }
  BenchRow row;
  row.label = label;
  row.values = {{"rounds", static_cast<double>(rounds.size())},
                {"mean_round_s", mean_dur},
                {"mean_contributors", mean_contrib},
                {"wall_s", r.wall_seconds},
                {"gradients_dropped", static_cast<double>(r.gradients_dropped)}};
  rows.push_back(std::move(row));

  if (!trace_out.empty()) {
    const std::string path =
        WithRunLabel(trace_out, train::ProtocolName(protocol));
    session.ExportTrace(path);
    std::printf("trace written to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  const std::string json_out = flags.GetString("json-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");

  std::printf("=== Figure 3: blocking vs non-blocking AllReduce timeline "
              "(3 workers, rank 2 slowed) ===\n");
  std::vector<BenchRow> rows;
  Run(train::Protocol::kHorovod, "Blocking AllReduce (BSP / Horovod)",
      trace_out, rows);
  Run(train::Protocol::kRna, "Non-blocking AllReduce (RNA)", trace_out, rows);
  std::printf("\nExpected shape: BSP rounds always show 3/3 contributors but "
              "pace at the straggler;\nRNA rounds pace at the probed fast "
              "workers with <3 contributors on average.\n");
  if (!json_out.empty()) {
    WriteBenchJson(json_out, "fig3_timeline", rows);
    std::printf("rows written to %s\n", json_out.c_str());
  }
  return 0;
}
