// Figure 3 — blocking vs non-blocking AllReduce, made concrete on the real
// threaded runtime: three workers, one persistently slow. Under BSP every
// round includes all three workers (and waits for the slowest); under RNA
// rounds trigger early and the slow worker contributes null or catches up
// with accumulated gradients in a later round.

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

void Run(train::Protocol protocol, const char* label) {
  NamedScenario scenario = MakeResnetProxy();
  train::TrainerConfig config = BaseBenchConfig(protocol, scenario, 3);
  config.max_rounds = 24;
  config.target_loss = -1.0;
  // Worker C (rank 2) is the straggler: 3 ms extra on a 1.5 ms base.
  config.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0015, std::vector<double>{0.0, 0.0005, 0.0030});

  const train::TrainResult r = RunProtocol(protocol, scenario, config);
  std::printf("\n--- %s: %zu rounds in %.1f ms (%.2f ms/round) ---\n", label,
              r.rounds, r.wall_seconds * 1e3, r.MeanRoundTime() * 1e3);
  std::printf("round:contributors  ");
  for (std::size_t i = 0; i < r.round_contributors.size(); ++i) {
    std::printf("%zu:%zu ", i + 1, r.round_contributors[i]);
  }
  std::printf("\nmean contributors/round: %.2f of 3; gradients applied: %zu; "
              "overwritten by staleness bound: %zu\n",
              r.MeanContributors(), r.gradients_applied, r.gradients_dropped);
  std::printf("per-worker mini-batches computed:");
  for (const auto& b : r.breakdown) std::printf(" %zu", b.iterations);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 3: blocking vs non-blocking AllReduce timeline "
              "(3 workers, rank 2 slowed) ===\n");
  Run(train::Protocol::kHorovod, "Blocking AllReduce (BSP / Horovod)");
  Run(train::Protocol::kRna, "Non-blocking AllReduce (RNA)");
  std::printf("\nExpected shape: BSP rounds always show 3/3 contributors but "
              "pace at the straggler;\nRNA rounds pace at the probed fast "
              "workers with <3 contributors on average.\n");
  return 0;
}
