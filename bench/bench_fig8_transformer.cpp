// Figure 8 — Transformer throughput: per-iteration speedup and overall
// (time-to-target) speedup over Horovod, in a homogeneous environment
// (inherent sentence-length imbalance only) and a heterogeneous one
// (additional random slowdowns).
//
// Paper shapes: homogeneous — RNA ≈2.6× per-iteration / 2.2× overall,
// eager-SGD 1.9×/1.4×, AD-PSGD 1.4×/1.2×; heterogeneous — eager-SGD's
// per-iteration speedup collapses (1.9→1.3) while AD-PSGD and RNA stay
// stable (overall 1.6× and 2.3×).

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr std::size_t kWorld = 6;

struct Outcome {
  double per_iteration = 0.0;  // seconds per synchronization round
  double overall = 0.0;        // time to target loss
};

Outcome Run(train::Protocol protocol, const NamedScenario& scenario,
            const std::shared_ptr<const sim::IterationTimeModel>& delays) {
  Outcome mean;
  train::TrainerConfig config = BaseBenchConfig(protocol, scenario, kWorld);
  config.delay_model = delays;
  config.max_rounds = 3000;
  config.eval_period_s = 0.01;
  constexpr std::size_t kRepeats = 3;
  for (std::size_t rep = 0; rep < kRepeats; ++rep) {
    config.seed = 1234 + 101 * rep;
    const train::TrainResult r = RunProtocol(protocol, scenario, config);
    mean.per_iteration += r.MeanRoundTime() / kRepeats;
    mean.overall += r.wall_seconds / kRepeats;
  }
  return mean;
}

void RunEnvironment(const char* label,
                    const std::shared_ptr<const sim::IterationTimeModel>& delays) {
  NamedScenario scenario = MakeTransformerProxy();
  const Outcome horovod = Run(train::Protocol::kHorovod, scenario, delays);
  std::printf("\n--- %s (horovod: %.2f ms/iter, %.2f s overall) ---\n", label,
              horovod.per_iteration * 1e3, horovod.overall);
  std::printf("%-12s %18s %16s\n", "approach", "per-iter speedup",
              "overall speedup");
  const struct {
    train::Protocol protocol;
    const char* name;
  } rows[] = {
      {train::Protocol::kEagerSgd, "eager-sgd"},
      {train::Protocol::kAdPsgd, "ad-psgd"},
      {train::Protocol::kRna, "rna"},
  };
  for (const auto& row : rows) {
    const Outcome o = Run(row.protocol, scenario, delays);
    std::printf("%-12s %17.2fx %15.2fx\n", row.name,
                horovod.per_iteration / o.per_iteration,
                horovod.overall / o.overall);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 8: Transformer per-iteration and overall speedup "
              "over Horovod (%zu workers) ===\n", kWorld);
  // Homogeneous cluster: no injected delay — the imbalance is inherent in
  // the sentence-length distribution (quadratic attention compute).
  RunEnvironment("homogeneous (inherent imbalance only)", nullptr);
  RunEnvironment("heterogeneous (added dynamic slowdown)", DynamicDelays(kWorld));
  return 0;
}
