// Table 3 — final training accuracy per approach per workload, with the
// "(H)" columns denoting the mixed-heterogeneity cluster. Runs every
// protocol for a fixed round budget and reports the accuracy of the final
// model on the training distribution.
//
// Paper shapes: Horovod / eager-SGD / RNA land within ~1–2 points of each
// other; AD-PSGD trails by a wide margin (stale gossip averaging).

#include <cstdio>

#include "bench_util.hpp"
#include "rna/train/monitor.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr std::size_t kWorld = 6;

double FinalTrainAccuracy(train::Protocol protocol,
                          const NamedScenario& scenario,
                          const std::shared_ptr<const sim::IterationTimeModel>&
                              delays,
                          std::size_t rounds) {
  train::TrainerConfig config = BaseBenchConfig(protocol, scenario, kWorld);
  config.delay_model = delays;
  config.target_loss = -1.0;   // fixed budget, like the paper's fixed epochs
  config.max_rounds = rounds;
  const train::TrainResult r = RunProtocol(protocol, scenario, config);
  // Table 3 reports accuracy at training termination; evaluate the final
  // model on held-out data drawn from the training distribution.
  return r.final_accuracy;
}

}  // namespace

int main() {
  std::printf("=== Table 3: final training accuracy (%zu workers, fixed "
              "round budget) ===\n", kWorld);

  NamedScenario resnet = MakeResnetProxy();
  NamedScenario vgg = MakeVggProxy();
  NamedScenario lstm = MakeLstmProxy();

  struct Column {
    const char* name;
    NamedScenario* scenario;
    std::shared_ptr<const sim::IterationTimeModel> delays;
    std::size_t rounds;
  };
  Column columns[] = {
      {"ResNet", &resnet, DynamicDelays(kWorld), 700},
      {"ResNet(H)", &resnet, MixedDelays(kWorld), 700},
      {"VGG", &vgg, DynamicDelays(kWorld), 700},
      {"VGG(H)", &vgg, MixedDelays(kWorld), 700},
      {"LSTM", &lstm, nullptr, 500},  // inherent imbalance only
  };
  const struct {
    train::Protocol protocol;
    const char* name;
  } rows[] = {
      {train::Protocol::kHorovod, "horovod"},
      {train::Protocol::kEagerSgd, "eager-sgd"},
      {train::Protocol::kAdPsgd, "ad-psgd"},
      {train::Protocol::kRna, "rna"},
  };

  std::printf("%-10s", "approach");
  for (const auto& c : columns) std::printf(" %10s", c.name);
  std::printf("\n");
  for (const auto& row : rows) {
    std::printf("%-10s", row.name);
    for (const auto& c : columns) {
      const double acc = FinalTrainAccuracy(row.protocol, *c.scenario,
                                            c.delays, c.rounds);
      std::printf(" %9.1f%%", acc * 100.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (Table 3): Horovod 78/79/93.4/93.2/88.2, "
              "eager-SGD ~1pt lower,\nAD-PSGD 5-10pts lower, RNA within "
              "~1pt of Horovod.\n");
  return 0;
}
