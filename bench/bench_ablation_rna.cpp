// Ablations over RNA's design knobs (beyond the paper's reported sweeps):
//   * probe count q in the threaded runtime (complementing Fig. 10's DES)
//   * staleness bound η (how much cross-iteration buffering helps/hurts)
//   * local gradient combine policy (§3.3 weighted average vs §6 sum-like
//     mean vs latest-only)
//   * Linear-Scaling-Rule LR vs constant LR under partial participation
//   * trigger policy family: probe (RNA) vs majority (eager) vs solo vs full

#include <cstdio>

#include "bench_util.hpp"

using namespace rna;
using namespace rna::benchutil;

namespace {

constexpr std::size_t kWorld = 6;

train::TrainResult RunWith(const NamedScenario& scenario,
                           const train::TrainerConfig& config) {
  return core::RunTraining(config, scenario.factory, scenario.train,
                           scenario.val);
}

void AblateProbeChoices(const NamedScenario& scenario) {
  std::printf("\n--- probe choices q (threaded runtime) ---\n");
  std::printf("%-4s %14s %12s %14s\n", "q", "ms/round", "final acc",
              "contrib/round");
  for (std::size_t q : {1u, 2u, 3u, 6u}) {
    train::TrainerConfig c =
        BaseBenchConfig(train::Protocol::kRna, scenario, kWorld);
    c.delay_model = DynamicDelays(kWorld);
    c.target_loss = -1.0;
    c.max_rounds = 400;
    c.probe_choices = q;
    const auto r = RunWith(scenario, c);
    std::printf("%-4zu %14.2f %11.1f%% %14.2f\n", q,
                r.MeanRoundTime() * 1e3, r.final_accuracy * 100.0,
                r.MeanContributors());
    std::fflush(stdout);
  }
}

void AblateStaleness(const NamedScenario& scenario) {
  std::printf("\n--- staleness bound η ---\n");
  std::printf("%-4s %12s %12s %12s\n", "η", "final acc", "grads", "dropped");
  for (std::size_t bound : {1u, 2u, 4u, 8u}) {
    train::TrainerConfig c =
        BaseBenchConfig(train::Protocol::kRna, scenario, kWorld);
    c.delay_model = DynamicDelays(kWorld);
    c.target_loss = -1.0;
    c.max_rounds = 400;
    c.staleness_bound = bound;
    const auto r = RunWith(scenario, c);
    std::printf("%-4zu %11.1f%% %12zu %12zu\n", bound,
                r.final_accuracy * 100.0, r.gradients_applied,
                r.gradients_dropped);
    std::fflush(stdout);
  }
}

void AblateCombine(const NamedScenario& scenario) {
  std::printf("\n--- local combine policy ---\n");
  const struct {
    train::LocalCombine combine;
    const char* name;
  } rows[] = {{train::LocalCombine::kWeightedAverage, "weighted-avg"},
              {train::LocalCombine::kMean, "mean"},
              {train::LocalCombine::kLatest, "latest-only"}};
  std::printf("%-14s %12s %12s\n", "policy", "final acc", "final loss");
  for (const auto& row : rows) {
    train::TrainerConfig c =
        BaseBenchConfig(train::Protocol::kRna, scenario, kWorld);
    c.delay_model = DynamicDelays(kWorld);
    c.target_loss = -1.0;
    c.max_rounds = 400;
    c.combine = row.combine;
    const auto r = RunWith(scenario, c);
    std::printf("%-14s %11.1f%% %12.3f\n", row.name,
                r.final_accuracy * 100.0, r.final_loss);
    std::fflush(stdout);
  }
}

void AblateLrPolicy(const NamedScenario& scenario) {
  std::printf("\n--- learning-rate policy under partial participation ---\n");
  const struct {
    train::LrScalePolicy policy;
    const char* name;
  } rows[] = {{train::LrScalePolicy::kLinear, "linear-scaling"},
              {train::LrScalePolicy::kConstant, "constant"}};
  std::printf("%-16s %12s %12s\n", "policy", "final acc", "final loss");
  for (const auto& row : rows) {
    train::TrainerConfig c =
        BaseBenchConfig(train::Protocol::kRna, scenario, kWorld);
    c.delay_model = DynamicDelays(kWorld);
    c.target_loss = -1.0;
    c.max_rounds = 400;
    c.lr_policy = row.policy;
    const auto r = RunWith(scenario, c);
    std::printf("%-16s %11.1f%% %12.3f\n", row.name,
                r.final_accuracy * 100.0, r.final_loss);
    std::fflush(stdout);
  }
}

void AblateTriggerFamily(const NamedScenario& scenario) {
  std::printf("\n--- trigger policy family (same engine) ---\n");
  struct Row {
    const char* name;
    train::TriggerPolicyFactory factory;
  };
  const Row rows[] = {
      {"probe-2 (RNA)", [] { return core::MakeProbePolicy(2); }},
      {"majority(eager)", [] { return train::MakeMajorityPolicy(); }},
      {"solo", [] { return train::MakeSoloPolicy(); }},
      {"full (BSP-ish)", [] { return train::MakeFullPolicy(); }},
  };
  std::printf("%-16s %12s %12s %14s\n", "trigger", "ms/round", "final acc",
              "contrib/round");
  for (const auto& row : rows) {
    train::TrainerConfig c =
        BaseBenchConfig(train::Protocol::kRna, scenario, kWorld);
    c.delay_model = DynamicDelays(kWorld);
    c.target_loss = -1.0;
    c.max_rounds = 400;
    const auto r = train::RunPartialCollective(
        c, scenario.factory, scenario.train, scenario.val, row.factory);
    std::printf("%-16s %12.2f %11.1f%% %14.2f\n", row.name,
                r.MeanRoundTime() * 1e3, r.final_accuracy * 100.0,
                r.MeanContributors());
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("=== RNA design ablations (%zu workers, dynamic "
              "heterogeneity) ===\n", kWorld);
  NamedScenario scenario = MakeResnetProxy();
  AblateProbeChoices(scenario);
  AblateStaleness(scenario);
  AblateCombine(scenario);
  AblateLrPolicy(scenario);
  AblateTriggerFamily(scenario);
  return 0;
}
