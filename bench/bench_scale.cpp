// Scale-out sweep: hierarchical RNA under lockstep at world sizes 10 →
// 1000, with the sharded controller (per-group readiness boards), a
// 4-shard PS plane, and a bounded-fan-in PS tree. Rows emitted to
// BENCH_scale.json by --json-out (bench-smoke gates them via
// tools/bench_gate.py):
//
//   scale_w<N>          one lockstep rna-h run at world N. The gated
//                       figure is controller_msgs_flatness_vs_w10:
//                       controller messages (sent + handled) per worker
//                       per round, relative to the world=10 run. The
//                       count is deterministic under lockstep, and O(1)
//                       per-worker dispatch means the ratio stays flat
//                       (ceiling 2.0 at world=1000) instead of growing
//                       with the world. completed (rounds == max_rounds)
//                       is floor-gated: the 1000-worker run must
//                       actually finish.
//   scale_elastic_w100  the same configuration at world 100 with two
//                       scheduled joins and a leave mid-training;
//                       completed, workers_joined and workers_left are
//                       floor-gated.
//
// controller_us_per_worker_round (thread-CPU time in the controller's
// dispatch/handle sections) is informational only: on an oversubscribed
// CI box the kernel's futex-wake cost per message grows with the number
// of runnable threads (measured ~4x from 16 to 2048 threads on one
// core), which would drown the algorithmic signal. The message count
// carries the gate instead.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/nn/network.hpp"
#include "rna/sim/workload.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

using namespace rna;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr std::size_t kRounds = 6;

/// Four deterministic speed tiers (0 / 0.5 / 1 / 1.5 ms extra) so the
/// hierarchical engine forms real speed groups at every world size; the
/// size cap then splits each tier into groups of at most 32.
std::shared_ptr<sim::IterationTimeModel> TieredModel(std::size_t world) {
  std::vector<common::Seconds> extra(world);
  for (std::size_t w = 0; w < world; ++w) {
    extra[w] = static_cast<double>(w % 4) * 0.0005;
  }
  return std::make_shared<sim::DeterministicSkewModel>(0.0, std::move(extra));
}

train::TrainerConfig ScaleConfig(std::size_t world) {
  train::TrainerConfig config;
  config.protocol = train::Protocol::kRnaHierarchical;
  config.world = world;
  config.batch_size = 2;
  config.max_rounds = kRounds;
  config.lockstep = true;
  config.target_loss = -1.0;  // run every round, no early stop
  config.patience = 1000000;
  config.calibration_iters = 1;
  config.delay_model = TieredModel(world);
  config.max_group_size = 32;
  config.ps_shards = 4;
  config.ps_fan_in = 8;
  config.ps_sync_every = 2;
  return config;
}

struct ScalePoint {
  std::size_t world = 0;
  double us_per_worker_round = 0.0;
  double msgs_per_worker_round = 0.0;
};

void ScaleRows(std::vector<benchutil::BenchRow>& rows,
               const data::Dataset& train_data, const data::Dataset& val_data,
               const train::ModelFactory& factory) {
  constexpr std::size_t kWorlds[] = {10, 100, 500, 1000};
  std::vector<ScalePoint> points;
  for (const std::size_t world : kWorlds) {
    const train::TrainerConfig config = ScaleConfig(world);
    const auto t0 = std::chrono::steady_clock::now();
    const train::TrainResult result =
        core::RunTraining(config, factory, train_data, val_data);
    const double wall_s = SecondsSince(t0);

    const double worker_rounds =
        static_cast<double>(world) *
        static_cast<double>(result.rounds > 0 ? result.rounds : 1);
    ScalePoint p;
    p.world = world;
    p.us_per_worker_round =
        result.controller_busy_seconds * 1e6 / worker_rounds;
    p.msgs_per_worker_round =
        static_cast<double>(result.controller_messages) / worker_rounds;
    points.push_back(p);

    benchutil::BenchRow row;
    row.label = "scale_w" + std::to_string(world);
    row.values["controller_msgs_per_worker_round"] = p.msgs_per_worker_round;
    row.values["controller_msgs_flatness_vs_w10"] =
        points.front().msgs_per_worker_round > 0.0
            ? p.msgs_per_worker_round / points.front().msgs_per_worker_round
            : 0.0;
    row.values["controller_us_per_worker_round"] = p.us_per_worker_round;
    row.values["completed"] = result.rounds == kRounds ? 1.0 : 0.0;
    row.values["rounds"] = static_cast<double>(result.rounds);
    row.values["live_workers"] = static_cast<double>(result.live_workers);
    row.values["wall_s"] = wall_s;
    rows.push_back(row);
  }
}

void ElasticRow(std::vector<benchutil::BenchRow>& rows,
                const data::Dataset& train_data, const data::Dataset& val_data,
                const train::ModelFactory& factory) {
  train::TrainerConfig config = ScaleConfig(100);
  // Ranks 98 and 99 join after rounds 1 and 2; rank 0 bows out at round 4.
  config.elastic.push_back({.rank = 98, .join_at_round = 1});
  config.elastic.push_back({.rank = 99, .join_at_round = 2});
  config.elastic.push_back(
      {.rank = 0, .join_at_round = 0, .leave_at_round = 4});
  const auto t0 = std::chrono::steady_clock::now();
  const train::TrainResult result =
      core::RunTraining(config, factory, train_data, val_data);

  benchutil::BenchRow row;
  row.label = "scale_elastic_w100";
  row.values["completed"] = result.rounds == kRounds ? 1.0 : 0.0;
  row.values["workers_joined"] = static_cast<double>(result.workers_joined);
  row.values["workers_left"] = static_cast<double>(result.workers_left);
  row.values["rounds"] = static_cast<double>(result.rounds);
  row.values["live_workers"] = static_cast<double>(result.live_workers);
  row.values["wall_s"] = SecondsSince(t0);
  rows.push_back(row);
}

int Run(const std::string& json_out) {
  // 3000 samples keeps every shard non-empty at world=1000 (3 per worker).
  data::Dataset all = data::MakeGaussianClusters(3000, 6, 3, 0.3, 11);
  const auto [train_data, val_data] = all.SplitHoldout(0.2);
  const train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 12, 3}, seed);
  };

  std::vector<benchutil::BenchRow> rows;
  ScaleRows(rows, train_data, val_data, factory);
  ElasticRow(rows, train_data, val_data, factory);
  if (!json_out.empty()) {
    benchutil::WriteBenchJson(json_out, "scale", rows);
  }
  for (const auto& row : rows) {
    std::printf("%-24s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.6g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      std::fprintf(stderr, "usage: bench_scale [--json-out PATH]\n");
      return 2;
    }
  }
  return Run(json_out);
}
