// Collective-policy sweep: protocol × compression × schedule. Three row
// families, all emitted to BENCH_collective_policy.json by --json-out (the
// bench-smoke job gates them via tools/bench_gate.py):
//
//   comp_<level>_w8_256k   ring allreduce, world 8, 256k floats, one row
//                          per compression level. wire_bytes_per_round is
//                          a deterministic function of the codec (gated by
//                          absolute ceilings — the measured wire-byte
//                          reduction is a correctness claim, not a speed
//                          claim). time_per_round_s is informational:
//                          small-message rounds on the thread fabric are
//                          too scheduler-noisy to baseline-gate.
//   sched_<name>_w8_64k    one row per reduction schedule (ring, tree,
//                          stragglar), uncompressed.
//   train_<proto>_<level>  small lockstep training runs (horovod + rna ×
//                          every compression level): final_loss must beat
//                          the chance-level ceiling and reached_target
//                          (final_loss <= target) must hold — compression
//                          may trade wire bytes for noise, but it must not
//                          break convergence.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "rna/collectives/allreduce.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/net/fabric.hpp"
#include "rna/nn/network.hpp"

using namespace rna;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepResult {
  double time_per_round_s = 0.0;
  double raw_bytes_per_round = 0.0;
  double wire_bytes_per_round = 0.0;
};

/// Runs `iters` timed allreduce rounds (after `warmup`) and reports
/// throughput plus the per-round wire accounting from the fabric.
SweepResult RunPolicyRounds(std::size_t world, std::size_t elems,
                            collectives::Schedule schedule,
                            collectives::Compression compression,
                            double topk_fraction) {
  constexpr int kWarmup = 2;
  constexpr int kIters = 8;
  net::Fabric fabric(world);
  const auto group = collectives::Group::Full(world);
  std::vector<std::vector<float>> bufs(world,
                                       std::vector<float>(elems, 1.0f));
  std::vector<collectives::ErrorFeedback> feedback(world);
  auto run_round = [&](int round) {
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collectives::CollectiveOptions opts;
        opts.schedule = schedule;
        opts.compression = compression;
        opts.topk_fraction = topk_fraction;
        opts.feedback = &feedback[r];
        opts.tag_base = round * 1000;
        if (schedule == collectives::Schedule::kStragglar) {
          opts.straggler = world - 1;
        }
        collectives::Allreduce({fabric, group, r}, opts, bufs[r]);
        for (auto& x : bufs[r]) x = 1.0f;  // keep values bounded
      });
    }
    for (auto& t : threads) t.join();
  };

  for (int i = 0; i < kWarmup; ++i) run_round(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) run_round(kWarmup + i);
  const double secs = SecondsSince(t0);

  std::uint64_t raw = 0, wired = 0;
  for (const auto f : {net::wire::Format::kRaw, net::wire::Format::kFp16,
                       net::wire::Format::kInt8, net::wire::Format::kTopK}) {
    const auto stats = fabric.WireStatsFor(f);
    raw += stats.raw_bytes;
    wired += stats.wire_bytes;
  }
  const double rounds = kWarmup + kIters;
  SweepResult out;
  out.time_per_round_s = secs / kIters;
  out.raw_bytes_per_round = static_cast<double>(raw) / rounds;
  out.wire_bytes_per_round = static_cast<double>(wired) / rounds;
  return out;
}

const std::pair<collectives::Compression, const char*> kCompressions[] = {
    {collectives::Compression::kNone, "none"},
    {collectives::Compression::kFp16, "fp16"},
    {collectives::Compression::kInt8, "int8"},
    {collectives::Compression::kTopK, "topk"},
};

void CompressionRows(std::vector<benchutil::BenchRow>& rows) {
  constexpr std::size_t kWorld = 8;
  constexpr std::size_t kElems = 1u << 18;
  for (const auto& [compression, name] : kCompressions) {
    const SweepResult r =
        RunPolicyRounds(kWorld, kElems, collectives::Schedule::kRing,
                        compression, /*topk_fraction=*/0.05);
    benchutil::BenchRow row;
    row.label = std::string("comp_") + name + "_w8_256k";
    row.values["time_per_round_s"] = r.time_per_round_s;
    row.values["raw_bytes_per_round"] = r.raw_bytes_per_round;
    row.values["wire_bytes_per_round"] = r.wire_bytes_per_round;
    rows.push_back(row);
  }
}

void ScheduleRows(std::vector<benchutil::BenchRow>& rows) {
  constexpr std::size_t kWorld = 8;
  constexpr std::size_t kElems = 1u << 16;
  const std::pair<collectives::Schedule, const char*> schedules[] = {
      {collectives::Schedule::kRing, "ring"},
      {collectives::Schedule::kTree, "tree"},
      {collectives::Schedule::kStragglar, "stragglar"},
  };
  for (const auto& [schedule, name] : schedules) {
    const SweepResult r =
        RunPolicyRounds(kWorld, kElems, schedule,
                        collectives::Compression::kNone, 0.05);
    benchutil::BenchRow row;
    row.label = std::string("sched_") + name + "_w8_64k";
    row.values["time_per_round_s"] = r.time_per_round_s;
    row.values["wire_bytes_per_round"] = r.wire_bytes_per_round;
    rows.push_back(row);
  }
}

/// Lockstep time-to-loss runs: final_loss is a pure function of the seeds,
/// so reached_target (final_loss <= target) is machine-independent.
void TrainingRows(std::vector<benchutil::BenchRow>& rows) {
  constexpr double kTargetLoss = 0.95;  // chance level for 3 classes ≈ 1.10
  data::Dataset all = data::MakeGaussianClusters(300, 6, 3, 0.3, 11);
  const auto [train_data, val_data] = all.SplitHoldout(0.2);
  const train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 12, 3}, seed);
  };
  const std::pair<train::Protocol, const char*> protocols[] = {
      {train::Protocol::kHorovod, "horovod"},
      {train::Protocol::kRna, "rna"},
  };
  for (const auto& [protocol, proto_name] : protocols) {
    for (const auto& [compression, comp_name] : kCompressions) {
      train::TrainerConfig config;
      config.protocol = protocol;
      config.world = 3;
      config.batch_size = 8;
      config.max_rounds = 30;
      config.lockstep = true;
      config.target_loss = -1.0;  // run the full 30 rounds, no early stop
      config.patience = 1000000;
      config.compression = compression;
      config.topk_fraction = 0.25;
      const auto t0 = std::chrono::steady_clock::now();
      const train::TrainResult result =
          core::RunTraining(config, factory, train_data, val_data);
      benchutil::BenchRow row;
      row.label =
          std::string("train_") + proto_name + "_" + comp_name;
      row.values["final_loss"] = result.final_loss;
      row.values["reached_target"] =
          result.final_loss <= kTargetLoss ? 1.0 : 0.0;
      row.values["rounds"] = static_cast<double>(result.rounds);
      row.values["wall_s"] = SecondsSince(t0);
      rows.push_back(row);
    }
  }
}

int Run(const std::string& json_out) {
  std::vector<benchutil::BenchRow> rows;
  CompressionRows(rows);
  ScheduleRows(rows);
  TrainingRows(rows);
  if (!json_out.empty()) {
    benchutil::WriteBenchJson(json_out, "collective_policy", rows);
  }
  for (const auto& row : rows) {
    std::printf("%-24s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.6g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      std::fprintf(stderr, "usage: bench_collective_policy "
                           "[--json-out PATH]\n");
      return 2;
    }
  }
  return Run(json_out);
}
