// google-benchmark microbenchmarks for the communication substrate: fabric
// point-to-point latency, ring allreduce and partial allreduce cost across
// world sizes, and PS push/pull round trips.

#include <benchmark/benchmark.h>

#include <thread>

#include "rna/collectives/ring.hpp"
#include "rna/net/fabric.hpp"
#include "rna/ps/server.hpp"

using namespace rna;

namespace {

void BM_FabricPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  net::Fabric fabric(2);
  std::thread echo([&] {
    while (auto msg = fabric.Recv(1, 1)) {
      if (msg->meta.size() == 1 && msg->meta[0] < 0) break;
      net::Message reply;
      reply.tag = 2;
      reply.data = std::move(msg->data);
      fabric.Send(1, 0, std::move(reply));
    }
  });
  std::vector<float> payload(bytes / sizeof(float), 1.0f);
  for (auto _ : state) {
    net::Message msg;
    msg.tag = 1;
    msg.data = payload;
    fabric.Send(0, 1, std::move(msg));
    auto reply = fabric.Recv(0, 2);
    benchmark::DoNotOptimize(reply->data.data());
  }
  net::Message stop;
  stop.tag = 1;
  stop.meta = {-1};
  fabric.Send(0, 1, std::move(stop));
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
}
BENCHMARK(BM_FabricPingPong)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void RunAllreduceRounds(std::size_t world, std::size_t elements,
                        std::size_t rounds, bool partial) {
  net::Fabric fabric(world);
  const collectives::Group group = collectives::Group::Full(world);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(elements, 1.0f);
      for (std::size_t round = 0; round < rounds; ++round) {
        const int tag = 1000 + static_cast<int>(round % 2) * 4096;
        if (partial) {
          collectives::RingPartialAllreduce(fabric, group, r, data,
                                            /*contributes=*/r % 2 == 0, tag);
        } else {
          collectives::RingAllreduce(fabric, group, r, data, tag);
          for (auto& x : data) x = 1.0f;  // keep values bounded
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

void BM_RingAllreduce(benchmark::State& state) {
  const auto world = static_cast<std::size_t>(state.range(0));
  const auto elements = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    RunAllreduceRounds(world, elements, 8, /*partial=*/false);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_RingAllreduce)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_RingPartialAllreduce(benchmark::State& state) {
  const auto world = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RunAllreduceRounds(world, 1 << 14, 8, /*partial=*/true);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_RingPartialAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_PsPushPull(benchmark::State& state) {
  const auto elements = static_cast<std::size_t>(state.range(0));
  net::Fabric fabric(2);
  ps::ParameterServer server(fabric, 1,
                             std::vector<float>(elements, 0.0f));
  server.Start();
  ps::PsClient client(fabric, 0, 1);
  const std::vector<float> payload(elements, 1.0f);
  for (auto _ : state) {
    auto result = client.PushPull(payload, ps::ApplyMode::kAverage);
    benchmark::DoNotOptimize(result.data());
  }
  server.Stop();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements * sizeof(float)) *
                          2);
}
BENCHMARK(BM_PsPushPull)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
