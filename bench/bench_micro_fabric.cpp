// Microbenchmarks for the communication substrate: fabric point-to-point
// latency, ring allreduce and partial allreduce cost across world sizes,
// pipelined fused allreduce, and PS push/pull round trips.
//
// Two modes:
//   (default)            google-benchmark sweep (all BM_* below).
//   --json-out <path>    pinned baseline workloads only, written as a
//                        BENCH_micro_fabric.json artifact. CI's bench-smoke
//                        job compares it against bench/baselines/ via
//                        tools/bench_gate.py, so the row labels and value
//                        keys below are a stable contract.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/fusion.hpp"
#include "rna/net/fabric.hpp"
#include "rna/ps/server.hpp"

using namespace rna;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wait-forever receive in bounded slices (RecvFor with timeout 0 is a
/// try-receive, and an untimed Recv would hang the bench on shutdown).
std::optional<net::Message> BlockingRecv(net::Fabric& fabric, net::Rank at,
                                         int tag) {
  for (;;) {
    auto msg = fabric.RecvFor(at, tag, 0.05);
    if (msg.has_value() || fabric.IsClosed(at)) return msg;
  }
}

// ---------------------------------------------------------------------------
// google-benchmark sweep

void BM_FabricPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  net::Fabric fabric(2);
  std::thread echo([&] {
    for (;;) {
      auto msg = fabric.RecvFor(1, 1, 0.05);
      if (!msg.has_value()) {
        if (fabric.IsClosed(1)) break;
        continue;
      }
      if (msg->meta.size() == 1 && msg->meta[0] < 0) break;
      net::Message reply;
      reply.tag = 2;
      reply.data = std::move(msg->data);
      fabric.Send(1, 0, std::move(reply));
    }
  });
  std::vector<float> payload(bytes / sizeof(float), 1.0f);
  for (auto _ : state) {
    net::Message msg;
    msg.tag = 1;
    msg.data = fabric.Pool().Acquire(payload.size());
    std::copy(payload.begin(), payload.end(), msg.data.begin());
    fabric.Send(0, 1, std::move(msg));
    auto reply = BlockingRecv(fabric, 0, 2);
    benchmark::DoNotOptimize(reply->data.data());
    fabric.Pool().Recycle(std::move(reply->data));
  }
  net::Message stop;
  stop.tag = 1;
  stop.meta = {-1};
  fabric.Send(0, 1, std::move(stop));
  echo.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes) * 2);
}
BENCHMARK(BM_FabricPingPong)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void RunAllreduceRounds(std::size_t world, std::size_t elements,
                        std::size_t rounds, bool partial) {
  net::Fabric fabric(world);
  const collectives::Group group = collectives::Group::Full(world);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(elements, 1.0f);
      for (std::size_t round = 0; round < rounds; ++round) {
        collectives::CollectiveOptions opts;
        opts.tag_base = 1000 + static_cast<int>(round % 2) * 4096;
        if (partial) {
          collectives::PartialAllreduceFor({fabric, group, r}, opts, data,
                                           /*contributes=*/r % 2 == 0);
        } else {
          collectives::Allreduce({fabric, group, r}, opts, data);
          for (auto& x : data) x = 1.0f;  // keep values bounded
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

void BM_RingAllreduce(benchmark::State& state) {
  const auto world = static_cast<std::size_t>(state.range(0));
  const auto elements = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    RunAllreduceRounds(world, elements, 8, /*partial=*/false);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_RingAllreduce)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({8, 1 << 14})
    ->Args({4, 1 << 18});

void BM_RingPartialAllreduce(benchmark::State& state) {
  const auto world = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RunAllreduceRounds(world, 1 << 14, 8, /*partial=*/true);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_RingPartialAllreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_PsPushPull(benchmark::State& state) {
  const auto elements = static_cast<std::size_t>(state.range(0));
  net::Fabric fabric(2);
  ps::ParameterServer server(fabric, 1,
                             std::vector<float>(elements, 0.0f));
  server.Start();
  ps::PsClient client(fabric, 0, 1);
  const std::vector<float> payload(elements, 1.0f);
  for (auto _ : state) {
    auto result = client.PushPull(payload, ps::ApplyMode::kAverage);
    benchmark::DoNotOptimize(result.data());
  }
  server.Stop();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(elements * sizeof(float)) *
                          2);
}
BENCHMARK(BM_PsPushPull)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// ---------------------------------------------------------------------------
// --json-out mode: pinned workloads whose numbers are regression-gated.

/// Acceptance workload: ring allreduce, world 8, 1M floats. Also verifies
/// the allocation-free steady state — after warmup, every hop payload must
/// come from the pool (zero further misses).
benchutil::BenchRow RingBaselineRow() {
  constexpr std::size_t kWorld = 8;
  constexpr std::size_t kElems = 1u << 20;
  constexpr int kWarmup = 2;
  constexpr int kIters = 10;

  net::Fabric fabric(kWorld);
  const auto group = collectives::Group::Full(kWorld);
  std::vector<std::vector<float>> bufs(kWorld,
                                       std::vector<float>(kElems, 1.0f));
  auto run_round = [&](int round) {
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        collectives::CollectiveOptions opts;
        opts.tag_base = round * 1000;
        collectives::Allreduce({fabric, group, r}, opts, bufs[r]);
      });
    }
    for (auto& t : threads) t.join();
  };

  for (int i = 0; i < kWarmup; ++i) run_round(i);
  const auto warm = fabric.Pool().GetStats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) run_round(kWarmup + i);
  const double secs = SecondsSince(t0);
  const auto done = fabric.Pool().GetStats();

  benchutil::BenchRow row;
  row.label = "ring_allreduce_w8_1m";
  row.values["elems_per_s"] = static_cast<double>(kElems) * kIters / secs;
  row.values["pool_hit_rate"] = done.HitRate();
  row.values["pool_steady_misses"] =
      static_cast<double>(done.misses - warm.misses);
  return row;
}

benchutil::BenchRow FusedBaselineRow() {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kTensors = 16;
  constexpr std::size_t kTensorElems = 1u << 14;
  constexpr std::size_t kBucketElems = 1u << 16;
  constexpr int kWarmup = 2;
  constexpr int kIters = 10;

  net::Fabric fabric(kWorld);
  const auto group = collectives::Group::Full(kWorld);
  std::vector<collectives::TensorSpec> specs(kTensors);
  for (std::size_t t = 0; t < kTensors; ++t) {
    specs[t] = {"t" + std::to_string(t), kTensorElems};
  }
  const auto plan = collectives::FusionPlan::Build(specs, kBucketElems);
  const int stride = collectives::FusionTagStride(kWorld);
  const int tags_per_round = static_cast<int>(plan.BucketCount()) * stride;
  std::vector<std::vector<std::vector<float>>> data(kWorld);
  std::vector<std::vector<float*>> ptrs(kWorld);
  for (std::size_t r = 0; r < kWorld; ++r) {
    data[r].assign(kTensors, std::vector<float>(kTensorElems, 1.0f));
    for (auto& tensor : data[r]) ptrs[r].push_back(tensor.data());
  }
  auto run_round = [&](int round) {
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < kWorld; ++r) {
      threads.emplace_back([&, r] {
        collectives::CollectiveOptions opts;
        opts.tag_base = round * tags_per_round;
        collectives::FusedAllreduce({fabric, group, r}, opts, specs, ptrs[r],
                                    plan);
      });
    }
    for (auto& t : threads) t.join();
  };

  for (int i = 0; i < kWarmup; ++i) run_round(i);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) run_round(kWarmup + i);
  const double secs = SecondsSince(t0);

  benchutil::BenchRow row;
  row.label = "fused_allreduce_w4_16x16k";
  row.values["elems_per_s"] =
      static_cast<double>(kTensors * kTensorElems) * kIters / secs;
  return row;
}

benchutil::BenchRow PingPongBaselineRow() {
  constexpr std::size_t kElems = 1u << 14;  // 64 KiB payload
  constexpr int kWarmup = 50;
  constexpr int kIters = 500;

  net::Fabric fabric(2);
  std::thread echo([&] {
    for (;;) {
      auto msg = fabric.RecvFor(1, 1, 0.05);
      if (!msg.has_value()) {
        if (fabric.IsClosed(1)) break;
        continue;
      }
      if (msg->meta.size() == 1 && msg->meta[0] < 0) break;
      net::Message reply;
      reply.tag = 2;
      reply.data = std::move(msg->data);
      fabric.Send(1, 0, std::move(reply));
    }
  });
  const std::vector<float> payload(kElems, 1.0f);
  auto roundtrip = [&] {
    net::Message msg;
    msg.tag = 1;
    msg.data = fabric.Pool().Acquire(kElems);
    std::copy(payload.begin(), payload.end(), msg.data.begin());
    fabric.Send(0, 1, std::move(msg));
    auto reply = BlockingRecv(fabric, 0, 2);
    fabric.Pool().Recycle(std::move(reply->data));
  };
  for (int i = 0; i < kWarmup; ++i) roundtrip();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) roundtrip();
  const double secs = SecondsSince(t0);
  net::Message stop;
  stop.tag = 1;
  stop.meta = {-1};
  fabric.Send(0, 1, std::move(stop));
  echo.join();

  benchutil::BenchRow row;
  row.label = "pingpong_64k";
  row.values["roundtrips_per_s"] = kIters / secs;
  row.values["bytes_per_s"] =
      static_cast<double>(kElems) * sizeof(float) * 2 * kIters / secs;
  return row;
}

int JsonMain(const std::string& path) {
  std::vector<benchutil::BenchRow> rows;
  rows.push_back(RingBaselineRow());
  rows.push_back(FusedBaselineRow());
  rows.push_back(PingPongBaselineRow());
  benchutil::WriteBenchJson(path, "micro_fabric", rows);
  for (const auto& row : rows) {
    std::printf("%-24s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.4g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!json_out.empty()) return JsonMain(json_out);
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
