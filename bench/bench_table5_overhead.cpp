// Table 5 — the transmission (staging-copy) overhead of RNA: the GPU→CPU
// and CPU→GPU copies RNA pays to stage gradients for the CPU-side
// collective, as a percentage of iteration time.
//
// Two views: (1) the calibrated PCIe model at paper magnitudes (full
// parameter counts); (2) the *measured* cost of the staging copies in this
// repo's worker pipeline (CopyGradsTo / SetParamsFrom round trip), which
// plays the same architectural role.

#include <cstdio>
#include <memory>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/nn/network.hpp"
#include "rna/sim/comm_model.hpp"

using namespace rna;

namespace {

void ModelledView() {
  std::printf("=== Table 5: transmission cost of RNA "
              "(calibrated PCIe model, paper magnitudes) ===\n");
  std::printf("%-14s %14s %16s %14s %12s\n", "model", "params",
              "copy/iter (ms)", "iter (ms)", "overhead");
  const sim::CopyModel copy;
  const struct {
    const char* name;
    double paper_pct;
  } rows[] = {
      {"resnet50", 6.2}, {"lstm", 3.8}, {"vgg16", 23.0}, {"transformer", 18.0}};
  for (const auto& row : rows) {
    const sim::ModelSpec& spec = sim::FindModel(row.name);
    const double copy_s = copy.RoundTrip(spec.GradientBytes());
    const double pct = copy_s / spec.base_iteration * 100.0;
    std::printf("%-14s %14zu %16.1f %14.0f %10.1f%%  (paper %.1f%%)\n",
                spec.name.c_str(), spec.parameters, copy_s * 1e3,
                spec.base_iteration * 1e3, pct, row.paper_pct);
  }
}

void MeasuredView() {
  std::printf("\n=== Companion: measured staging-copy cost in this repo's "
              "pipeline ===\n");
  std::printf("(CopyGradsTo + SetParamsFrom per iteration, averaged over "
              "2000 reps)\n");
  struct Case {
    const char* name;
    std::unique_ptr<nn::Network> net;
  };
  Case cases[3];
  cases[0] = {"mlp-small",
              std::make_unique<nn::MlpClassifier>(
                  std::vector<std::size_t>{16, 48, 48, 32, 8}, 1)};
  cases[1] = {"mlp-wide", std::make_unique<nn::MlpClassifier>(
                              std::vector<std::size_t>{24, 512, 6}, 2)};
  cases[2] = {"lstm", std::make_unique<nn::LstmClassifier>(8, 24, 4, 3, 0.0)};

  for (auto& c : cases) {
    const std::size_t dim = c.net->ParamCount();
    std::vector<float> buffer(dim);
    const common::Stopwatch watch;
    for (int rep = 0; rep < 2000; ++rep) {
      c.net->CopyGradsTo(buffer);
      c.net->SetParamsFrom(buffer);
    }
    const double per_iter = watch.Elapsed() / 2000.0;
    std::printf("%-14s params=%-8zu staging copy=%8.2f us/iter\n", c.name,
                dim, per_iter * 1e6);
  }
  std::printf("\nThe copy cost scales with the parameter count and is "
              "independent of cluster size\n(it is local), matching the "
              "paper's observation.\n");
}

}  // namespace

int main() {
  ModelledView();
  MeasuredView();
  return 0;
}
