// Table 5 — the transmission (staging-copy) overhead of RNA: the GPU→CPU
// and CPU→GPU copies RNA pays to stage gradients for the CPU-side
// collective, as a percentage of iteration time.
//
// Two views: (1) the calibrated PCIe model at paper magnitudes (full
// parameter counts); (2) the *measured* cost of the staging copies in this
// repo's worker pipeline (CopyGradsTo / SetParamsFrom round trip), timed
// per repetition through rna::obs — each round trip is an
// ObserveMetric("staging.roundtrip_s/<case>") sample, and the table is read
// back from the metrics registry (mean/min/max over 2000 reps).
//
// Flags: --json-out BENCH_table5.json   machine-readable rows for CI

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rna/common/flags.hpp"
#include "rna/nn/network.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/session.hpp"
#include "rna/obs/trace.hpp"
#include "rna/sim/comm_model.hpp"

using namespace rna;

namespace {

void ModelledView(std::vector<benchutil::BenchRow>* rows) {
  std::printf("=== Table 5: transmission cost of RNA "
              "(calibrated PCIe model, paper magnitudes) ===\n");
  std::printf("%-14s %14s %16s %14s %12s\n", "model", "params",
              "copy/iter (ms)", "iter (ms)", "overhead");
  const sim::CopyModel copy;
  const struct {
    const char* name;
    double paper_pct;
  } specs[] = {
      {"resnet50", 6.2}, {"lstm", 3.8}, {"vgg16", 23.0}, {"transformer", 18.0}};
  for (const auto& row : specs) {
    const sim::ModelSpec& spec = sim::FindModel(row.name);
    const double copy_s = copy.RoundTrip(spec.GradientBytes());
    const double pct = copy_s / spec.base_iteration * 100.0;
    std::printf("%-14s %14zu %16.1f %14.0f %10.1f%%  (paper %.1f%%)\n",
                spec.name.c_str(), spec.parameters, copy_s * 1e3,
                spec.base_iteration * 1e3, pct, row.paper_pct);
    if (rows != nullptr) {
      rows->push_back({"modelled/" + spec.name,
                       {{"copy_per_iter_s", copy_s},
                        {"overhead_pct", pct},
                        {"paper_pct", row.paper_pct}}});
    }
  }
}

void MeasuredView(std::vector<benchutil::BenchRow>* rows) {
  std::printf("\n=== Companion: measured staging-copy cost in this repo's "
              "pipeline ===\n");
  std::printf("(CopyGradsTo + SetParamsFrom per iteration, each rep sampled "
              "via rna::obs, 2000 reps)\n");
  struct Case {
    const char* name;
    std::unique_ptr<nn::Network> net;
  };
  Case cases[3];
  cases[0] = {"mlp-small",
              std::make_unique<nn::MlpClassifier>(
                  std::vector<std::size_t>{16, 48, 48, 32, 8}, 1)};
  cases[1] = {"mlp-wide", std::make_unique<nn::MlpClassifier>(
                              std::vector<std::size_t>{24, 512, 6}, 2)};
  cases[2] = {"lstm", std::make_unique<nn::LstmClassifier>(8, 24, 4, 3, 0.0)};

  obs::Session session;
  for (auto& c : cases) {
    const std::size_t dim = c.net->ParamCount();
    std::vector<float> buffer(dim);
    const std::string metric = std::string("staging.roundtrip_s/") + c.name;
    for (int rep = 0; rep < 2000; ++rep) {
      obs::ScopedTimer timer({}, obs::Category::kOther, "staging_roundtrip");
      c.net->CopyGradsTo(buffer);
      c.net->SetParamsFrom(buffer);
      obs::ObserveMetric(metric, timer.Stop());
    }
    const common::OnlineStats stats = session.Metrics().StatsFor(metric);
    std::printf("%-14s params=%-8zu staging copy=%8.2f us/iter "
                "(min %.2f, max %.2f over %zu reps)\n",
                c.name, dim, stats.Mean() * 1e6, stats.Min() * 1e6,
                stats.Max() * 1e6, stats.Count());
    if (rows != nullptr) {
      rows->push_back({std::string("measured/") + c.name,
                       {{"params", static_cast<double>(dim)},
                        {"mean_roundtrip_s", stats.Mean()},
                        {"min_roundtrip_s", stats.Min()},
                        {"max_roundtrip_s", stats.Max()}}});
    }
  }
  std::printf("\nThe copy cost scales with the parameter count and is "
              "independent of cluster size\n(it is local), matching the "
              "paper's observation.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  const std::string json_out = flags.GetString("json-out", "");
  std::vector<benchutil::BenchRow> rows;
  ModelledView(json_out.empty() ? nullptr : &rows);
  MeasuredView(json_out.empty() ? nullptr : &rows);
  if (!json_out.empty()) {
    benchutil::WriteBenchJson(json_out, "table5_overhead", rows);
    std::printf("rows written to %s\n", json_out.c_str());
  }
  return 0;
}
