// Network-straggler ablation (beyond the paper, which studies *compute*
// stragglers): one worker's outgoing links get extra latency, injected
// through the fabric's delay model. Unlike a compute straggler, a slow
// *link* sits on the ring's critical path for every collective — partial
// participation cannot route around it — so RNA's advantage should shrink
// relative to the compute-straggler case. The paper's design targets
// computation imbalance (§1); this harness documents the boundary.

#include <cstdio>

#include "rna/collectives/allreduce.hpp"
#include "rna/common/stats.hpp"
#include "rna/net/fabric.hpp"

#include <thread>

using namespace rna;

namespace {

/// Measures mean wall time of `rounds` cooperative ring allreduce rounds
/// over `world` threads, with `link_delay` seconds added to every message
/// sent by worker 0.
double MeasureRingRounds(std::size_t world, std::size_t elements,
                         std::size_t rounds, double link_delay) {
  net::LatencyModel latency;
  if (link_delay > 0.0) {
    latency = [link_delay](net::Rank from, net::Rank, std::size_t) {
      return from == 0 ? link_delay : 0.0;
    };
  }
  net::Fabric fabric(world, latency);
  const collectives::Group group = collectives::Group::Full(world);
  const common::Stopwatch watch;
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float> data(elements, 1.0f);
      for (std::size_t round = 0; round < rounds; ++round) {
        collectives::CollectiveOptions opts;
        opts.tag_base = 1000 + static_cast<int>(round % 2) * 4096;
        collectives::Allreduce({fabric, group, r}, opts, data);
        for (auto& x : data) x = 1.0f;
      }
    });
  }
  for (auto& t : threads) t.join();
  return watch.Elapsed() / static_cast<double>(rounds);
}

}  // namespace

int main() {
  std::printf("=== Network-straggler ablation: one slow outgoing link on "
              "the ring ===\n");
  std::printf("%-16s %18s %22s\n", "link delay", "ring round (ms)",
              "delay amplification");
  const std::size_t world = 4;
  const std::size_t rounds = 30;
  const double base = MeasureRingRounds(world, 4096, rounds, 0.0);
  std::printf("%13.1f ms %18.2f %22s\n", 0.0, base * 1e3, "—");
  for (double delay_ms : {0.5, 1.0, 2.0}) {
    const double t =
        MeasureRingRounds(world, 4096, rounds, delay_ms * 1e-3);
    // How many times per round the slow link ends up on the critical path
    // (the dependency chain passes through worker 0's sends repeatedly,
    // partially pipelined).
    const double amplification = (t * 1e3 - base * 1e3) / delay_ms;
    std::printf("%13.1f ms %18.2f %21.1fx\n", delay_ms, t * 1e3,
                amplification);
  }
  std::printf(
      "\nA slow *link* sits on the ring's dependency chain roughly twice "
      "per round (partially\npipelined), for every collective — full or "
      "partial: null-gradient participation keeps\nthe communication "
      "graph, so RNA tolerates compute stragglers, not link stragglers\n"
      "(the hierarchical mode can isolate a slow network tier into its own "
      "ring).\n");
  return 0;
}
