// Microbenchmarks for the arena-allocated compute plane: blocked matmul
// kernels (vectorized vs scalar dispatch) and whole train-step throughput
// for every model family, with the steady-state heap-allocation count
// measured directly (this binary replaces global operator new/delete with
// counting versions, the same technique as tests/test_arena.cpp).
//
// Two modes (same contract as bench_micro_kernels):
//   (default)            google-benchmark sweep.
//   --json-out <path>    pinned workloads written as BENCH_micro_nn.json for
//                        the CI bench-smoke regression gate. The gate pins
//                        `steady_heap_allocs` to an absolute ceiling of ZERO
//                        (tools/bench_gate.py ABSOLUTE_CEILINGS) — a change
//                        that reintroduces per-step allocation fails CI even
//                        if throughput stays inside the regression tolerance.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "rna/common/rng.hpp"
#include "rna/common/simd.hpp"
#include "rna/nn/network.hpp"
#include "rna/nn/optimizer.hpp"
#include "rna/tensor/tensor.hpp"

namespace {

std::atomic<std::size_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace rna;

namespace {

// ------------------------------------------------------------ workloads

std::unique_ptr<nn::Network> MakeModel(const std::string& kind) {
  if (kind == "mlp") {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{64, 128, 10}, 7);
  }
  if (kind == "lstm") return std::make_unique<nn::LstmClassifier>(16, 32, 8, 7);
  if (kind == "deep-lstm") {
    return std::make_unique<nn::DeepLstmClassifier>(16, 24, 2, 8, 7);
  }
  if (kind == "transformer") {
    return std::make_unique<nn::TransformerClassifier>(16, 32, 4, 8, 7);
  }
  return std::make_unique<nn::AttentionClassifier>(16, 24, 8, 7);
}

nn::Batch MakeBatchFor(const std::string& kind) {
  common::Rng rng(21);
  nn::Batch b;
  if (kind == "mlp") {
    b.inputs = tensor::Tensor({32, 64});
    for (auto& x : b.inputs.Flat()) x = static_cast<float>(rng.Normal(0, 1));
    for (int i = 0; i < 32; ++i) {
      b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(10)));
    }
    return b;
  }
  for (int i = 0; i < 8; ++i) {
    const std::size_t len = 3 + rng.UniformInt(6);
    tensor::Tensor seq({len, 16});
    for (auto& x : seq.Flat()) x = static_cast<float>(rng.Normal(0, 1));
    b.sequences.push_back(std::move(seq));
    b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(8)));
  }
  return b;
}

/// One full training iteration on the flat staging-buffer path — the same
/// sequence every synchronization protocol drives per step.
struct TrainLoop {
  explicit TrainLoop(const std::string& kind)
      : net(MakeModel(kind)), batch(MakeBatchFor(kind)) {
    const std::size_t dim = net->ParamCount();
    params.resize(dim);
    grad.resize(dim);
    net->CopyParamsTo(params);
    opt = std::make_unique<nn::SgdMomentum>(dim, nn::SgdConfig{});
  }

  void Step() {
    net->SetParamsFrom(params);
    net->ForwardBackward(batch);
    net->CopyGradsTo(grad);
    opt->Step(params, grad);
  }

  std::unique_ptr<nn::Network> net;
  nn::Batch batch;
  std::vector<float> params, grad;
  std::unique_ptr<nn::SgdMomentum> opt;
};

const char* kModelKinds[] = {"mlp", "lstm", "deep-lstm", "transformer",
                             "attention"};

// ------------------------------------------- google-benchmark sweep mode

void BM_TrainStep(benchmark::State& state) {
  TrainLoop loop(kModelKinds[state.range(0)]);
  loop.Step();  // warm the arena to its high water
  for (auto _ : state) {
    loop.Step();
    benchmark::DoNotOptimize(loop.params.data());
  }
  state.SetLabel(kModelKinds[state.range(0)]);
}
BENCHMARK(BM_TrainStep)->DenseRange(0, 4);

void BM_BlockedMatMul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::simd::SetDispatch(state.range(1) == 0
                                ? common::simd::Dispatch::kAuto
                                : common::simd::Dispatch::kScalar);
  common::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.Normal(0, 1));
  for (auto& x : b) x = static_cast<float>(rng.Normal(0, 1));
  for (auto _ : state) {
    common::simd::MatMulNN(a.data(), b.data(), c.data(), n, n, n, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  common::simd::SetDispatch(common::simd::Dispatch::kAuto);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_BlockedMatMul)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({192, 0})
    ->Args({192, 1});

// ---------------------------------------------------------- json-out mode

/// FLOP/s of one matmul variant at m=k=n=`n` under the given dispatch.
template <typename Kernel>
double MeasureMatMulFlops(common::simd::Dispatch dispatch, std::size_t n,
                          Kernel&& kernel) {
  constexpr int kWarmup = 3;
  constexpr int kIters = 20;
  common::simd::SetDispatch(dispatch);
  common::Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (auto& x : a) x = static_cast<float>(rng.Normal(0, 1));
  for (auto& x : b) x = static_cast<float>(rng.Normal(0, 1));
  for (int i = 0; i < kWarmup; ++i) kernel(a.data(), b.data(), c.data(), n);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) kernel(a.data(), b.data(), c.data(), n);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  common::simd::SetDispatch(common::simd::Dispatch::kAuto);
  return 2.0 * static_cast<double>(n) * n * n * kIters / secs;
}

template <typename Kernel>
benchutil::BenchRow MatMulRow(const std::string& label, std::size_t n,
                              Kernel&& kernel) {
  benchutil::BenchRow row;
  row.label = label;
  const double wide =
      MeasureMatMulFlops(common::simd::Dispatch::kAuto, n, kernel);
  const double narrow =
      MeasureMatMulFlops(common::simd::Dispatch::kScalar, n, kernel);
  row.values["flops_auto_per_s"] = wide;
  row.values["flops_scalar_per_s"] = narrow;
  row.values["speedup"] = wide / narrow;
  return row;
}

benchutil::BenchRow TrainStepRow(const std::string& kind) {
  constexpr int kWarmup = 3;
  constexpr int kIters = 30;
  benchutil::BenchRow row;
  row.label = "train_step_" + kind;
  TrainLoop loop(kind);
  for (int i = 0; i < kWarmup; ++i) loop.Step();

  const std::size_t heap_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) loop.Step();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t heap_delta =
      g_heap_allocs.load(std::memory_order_relaxed) - heap_before;

  row.values["steps_per_s"] = kIters / secs;
  // Total heap allocations across all measured steps — the gate pins this
  // to an absolute ceiling of zero.
  row.values["steady_heap_allocs"] = static_cast<double>(heap_delta);
  row.values["arena_high_water_kb"] =
      static_cast<double>(loop.net->ComputeArena().Stats().short_high_water) /
      1024.0;
  return row;
}

int JsonMain(const std::string& path) {
  std::vector<benchutil::BenchRow> rows;
  const std::size_t n = 128;
  rows.push_back(MatMulRow("matmul_nn_128", n,
                           [](const float* a, const float* b, float* c,
                              std::size_t d) {
                             common::simd::MatMulNN(a, b, c, d, d, d, 1.0f,
                                                    0.0f);
                           }));
  rows.push_back(MatMulRow("matmul_nt_128", n,
                           [](const float* a, const float* b, float* c,
                              std::size_t d) {
                             common::simd::MatMulNT(a, b, c, d, d, d, 1.0f,
                                                    0.0f);
                           }));
  rows.push_back(MatMulRow("matmul_tn_128", n,
                           [](const float* a, const float* b, float* c,
                              std::size_t d) {
                             common::simd::MatMulTN(a, b, c, d, d, d, 1.0f,
                                                    0.0f);
                           }));
  for (const char* kind : kModelKinds) {
    rows.push_back(TrainStepRow(kind));
  }
  benchutil::WriteBenchJson(path, "micro_nn", rows);
  for (const auto& row : rows) {
    std::printf("%-24s", row.label.c_str());
    for (const auto& [key, value] : row.values) {
      std::printf("  %s=%.4g", key.c_str(), value);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!json_out.empty()) return JsonMain(json_out);
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
