// The power-of-two-choices initiator election in isolation (paper §3.2,
// §8.4): on a 100-node simulated cluster with skewed task durations, sweep
// the number of probes and print the response-time distribution — the
// textual version of Figure 10's box plot.

#include <cstdio>

#include "rna/common/stats.hpp"
#include "rna/sim/protocols.hpp"

int main() {
  using namespace rna;

  std::printf("100 nodes, heavy-tailed task durations (mean 30 ms), 100 "
              "rounds per configuration, 0.8 ms per probe RPC\n\n");
  const sim::LongTailModel tasks = sim::ProbeBenchmarkTasks();
  std::printf("%-8s %9s %9s %9s  %s\n", "choices", "p25(ms)", "med(ms)",
              "p75(ms)", "box");
  for (std::size_t q = 1; q <= 8; ++q) {
    const auto responses =
        sim::ProbeResponseTimes(100, q, 100, tasks, 0.0008, 21);
    const auto s = common::Summarize(responses);
    std::printf("%-8zu %9.1f %9.1f %9.1f  ", q, s.p25 * 1e3, s.median * 1e3,
                s.p75 * 1e3);
    const int bar = static_cast<int>(s.median * 1e3);
    for (int i = 0; i < bar && i < 60; ++i) std::putchar('#');
    std::putchar('\n');
  }
  std::printf("\nOne extra probe buys most of the improvement; additional "
              "probes mostly add RPC overhead\n— which is why RNA ships "
              "with q = 2.\n");
  return 0;
}
