// A command-line driver over the full library: pick a protocol, a workload,
// a cluster shape, and heterogeneity, and train — the "downstream user"
// entry point. Also demonstrates checkpointing.
//
//   rna_train_cli --protocol rna --workload mlp --world 6
//                 --rounds 500 --target-loss 0.6 --tiers 1,2,3
//                 --checkpoint /tmp/model.ckpt
//                 --trace-out /tmp/run.trace.json
//
// Protocols: horovod | eager | adpsgd | rna | rna-h | sgp | async-ps
// Workloads: mlp | lstm | deep-lstm | attention | transformer
//
// --trace-out writes a Chrome trace-event JSON (load it at
// https://ui.perfetto.dev); --metrics-out writes one JSON object per
// metric (counters, gauges, timer distributions).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "rna/common/flags.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/obs/session.hpp"
#include "rna/train/checkpoint.hpp"

using namespace rna;

namespace {

/// Parses an elastic schedule list: "4@3,7@10" means rank 4 at round 3 and
/// rank 7 at round 10.
std::vector<std::pair<std::size_t, std::size_t>> ParseRankAtRound(
    const std::string& csv) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto at = item.find('@');
    if (at == std::string::npos) {
      std::fprintf(stderr, "expected rank@round, got: %s\n", item.c_str());
      std::exit(1);
    }
    out.emplace_back(std::stoul(item.substr(0, at)),
                     std::stoul(item.substr(at + 1)));
  }
  return out;
}

std::vector<double> ParseTiers(const std::string& csv, std::size_t world) {
  std::vector<double> tiers;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) tiers.push_back(std::stod(item));
  if (tiers.empty()) tiers.push_back(1.0);
  // Cycle the tier list over the whole cluster.
  std::vector<double> out(world);
  for (std::size_t w = 0; w < world; ++w) out[w] = tiers[w % tiers.size()];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: rna_train_cli [--protocol P] [--workload W] [--world N]\n"
        "  [--rounds K] [--target-loss L] [--batch B] [--lr R]\n"
        "  [--momentum M] [--probes Q] [--staleness H] [--seed S]\n"
        "  [--tiers 1,2,3] [--jitter-ms J] [--checkpoint PATH]\n"
        "  [--schedule ring|tree|stragglar] [--compression "
        "none|fp16|int8|topk]\n"
        "  [--topk-fraction F] [--trace-out TRACE.json] "
        "[--metrics-out METRICS.jsonl]\n"
        "  [--ps-shards N] [--ps-fan-in F] [--max-group-size G]\n"
        "  [--join RANK@ROUND,...] [--leave RANK@ROUND,...]\n"
        "--join/--leave schedule elastic membership changes (they imply\n"
        "lockstep); --ps-shards stripes the parameter server over N\n"
        "endpoints, --ps-fan-in bounds the PS aggregation tree, and\n"
        "--max-group-size caps rna-h speed groups.\n");
    return 0;
  }

  const auto world = static_cast<std::size_t>(flags.GetInt("world", 4));
  const std::string workload = flags.GetString("workload", "mlp");

  // ---- data + model -------------------------------------------------------
  data::Dataset all;
  train::ModelFactory factory;
  train::TrainerConfig config;
  if (workload == "mlp") {
    all = data::MakeGaussianClusters(4000, 16, 8, 0.7,
                                     flags.GetInt("data-seed", 1));
    factory = [](std::uint64_t seed) {
      return std::make_unique<nn::MlpClassifier>(
          std::vector<std::size_t>{16, 48, 48, 32, 8}, seed);
    };
  } else if (workload == "lstm") {
    all = data::MakeSequenceDataset(960, 6, 6, data::VideoLengths(16.0), 1.2,
                                    flags.GetInt("data-seed", 1));
    factory = [](std::uint64_t seed) {
      return std::make_unique<nn::LstmClassifier>(6, 16, 6, seed, 0.0);
    };
    config.sampling = data::SamplingMode::kLengthBucketed;
    config.sleep_per_step = 50e-6;
    config.batch_size = 8;
  } else if (workload == "attention") {
    all = data::MakeSequenceDataset(960, 6, 6, data::SentenceLengths(), 1.2,
                                    flags.GetInt("data-seed", 1));
    factory = [](std::uint64_t seed) {
      return std::make_unique<nn::AttentionClassifier>(6, 16, 6, seed);
    };
    config.sampling = data::SamplingMode::kLengthBucketed;
    config.sleep_per_step = 30e-6;
    config.batch_size = 8;
  } else if (workload == "deep-lstm") {
    all = data::MakeSequenceDataset(960, 6, 6, data::VideoLengths(16.0), 1.2,
                                    flags.GetInt("data-seed", 1));
    factory = [](std::uint64_t seed) {
      return std::make_unique<nn::DeepLstmClassifier>(6, 16, 2, 6, seed);
    };
    config.sampling = data::SamplingMode::kLengthBucketed;
    config.sleep_per_step = 80e-6;  // two stacked recurrent layers
    config.batch_size = 8;
  } else if (workload == "transformer") {
    all = data::MakeSequenceDataset(960, 6, 6, data::SentenceLengths(), 1.2,
                                    flags.GetInt("data-seed", 1));
    factory = [](std::uint64_t seed) {
      return std::make_unique<nn::TransformerClassifier>(6, 16, 2, 6, seed);
    };
    config.sampling = data::SamplingMode::kLengthBucketed;
    config.sleep_per_step = 30e-6;
    config.batch_size = 8;
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 1;
  }
  auto [train_data, val_data] = all.SplitHoldout(0.2);

  // ---- config -------------------------------------------------------------
  const std::string protocol_name = flags.GetString("protocol", "rna");
  const std::optional<train::Protocol> protocol =
      train::ParseProtocol(protocol_name);
  if (!protocol.has_value()) {
    std::fprintf(stderr, "unknown protocol: %s\n", protocol_name.c_str());
    return 1;
  }
  config.protocol = *protocol;
  config.world = world;
  config.batch_size =
      static_cast<std::size_t>(flags.GetInt("batch", config.batch_size));
  config.max_rounds = static_cast<std::size_t>(flags.GetInt("rounds", 500));
  config.target_loss = flags.GetDouble("target-loss", -1.0);
  config.sgd.learning_rate = flags.GetDouble("lr", 0.1);
  config.sgd.momentum = flags.GetDouble("momentum", 0.5);
  config.probe_choices =
      static_cast<std::size_t>(flags.GetInt("probes", 2));
  config.staleness_bound =
      static_cast<std::size_t>(flags.GetInt("staleness", 4));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.eval_period_s = 0.02;

  // Sharded PS plane and hierarchical grouping (rna-h / async-ps).
  config.ps_shards = static_cast<std::size_t>(
      flags.GetInt("ps-shards", static_cast<int>(config.ps_shards)));
  config.ps_fan_in = static_cast<std::size_t>(
      flags.GetInt("ps-fan-in", static_cast<int>(config.ps_fan_in)));
  config.max_group_size = static_cast<std::size_t>(
      flags.GetInt("max-group-size", static_cast<int>(config.max_group_size)));

  // Elastic membership: joins and clean leaves on scheduled round
  // boundaries. A leave for a rank without a join entry departs from the
  // founding membership.
  const std::string join_csv = flags.GetString("join", "");
  const std::string leave_csv = flags.GetString("leave", "");
  for (const auto& [rank, round] : ParseRankAtRound(join_csv)) {
    config.elastic.push_back({.rank = rank, .join_at_round = round});
  }
  for (const auto& [rank, round] : ParseRankAtRound(leave_csv)) {
    const auto it = std::find_if(
        config.elastic.begin(), config.elastic.end(),
        [rank = rank](const train::ElasticSchedule& e) {
          return e.rank == rank;
        });
    if (it != config.elastic.end()) {
      it->leave_at_round = round;
    } else {
      config.elastic.push_back(
          {.rank = rank, .join_at_round = 0, .leave_at_round = round});
    }
  }
  if (!config.elastic.empty() && !config.lockstep) {
    std::printf("note: --join/--leave require lockstep; enabling it\n");
    config.lockstep = true;
  }

  // Collective policy: reduction schedule and wire compression.
  const std::string schedule_name = flags.GetString("schedule", "ring");
  const std::optional<collectives::Schedule> schedule =
      collectives::ParseSchedule(schedule_name);
  if (!schedule.has_value()) {
    std::fprintf(stderr, "unknown schedule: %s\n", schedule_name.c_str());
    return 1;
  }
  config.schedule = *schedule;
  const std::string compression_name =
      flags.GetString("compression", "none");
  const std::optional<collectives::Compression> compression =
      collectives::ParseCompression(compression_name);
  if (!compression.has_value()) {
    std::fprintf(stderr, "unknown compression: %s\n",
                 compression_name.c_str());
    return 1;
  }
  config.compression = *compression;
  config.topk_fraction =
      flags.GetDouble("topk-fraction", config.topk_fraction);

  const double jitter_ms = flags.GetDouble("jitter-ms", 1.0);
  if (flags.Has("tiers") || jitter_ms > 0.0) {
    config.delay_model = std::make_shared<sim::TieredJitterModel>(
        1e-3, ParseTiers(flags.GetString("tiers", "1"), world), 0.0,
        jitter_ms * 1e-3);
  }

  if (const std::string why = config.Validate(); !why.empty()) {
    std::fprintf(stderr, "invalid configuration: %s\n", why.c_str());
    return 1;
  }

  // ---- run ----------------------------------------------------------------
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  std::optional<obs::Session> session;
  if (!trace_out.empty() || !metrics_out.empty()) session.emplace();

  const train::TrainResult result =
      core::RunTraining(config, factory, train_data, val_data);

  if (session.has_value()) {
    if (!trace_out.empty()) {
      session->ExportTrace(trace_out);
      std::printf("trace written to %s (%llu spans)\n", trace_out.c_str(),
                  static_cast<unsigned long long>(
                      session->Trace().TotalRecorded()));
    }
    if (!metrics_out.empty()) {
      session->ExportMetrics(metrics_out);
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
  }

  std::printf("protocol=%s workload=%s world=%zu\n",
              train::ProtocolName(config.protocol), workload.c_str(), world);
  std::printf("rounds=%zu gradients=%zu wall=%.3fs (%.2f ms/round)\n",
              result.rounds, result.gradients_applied, result.wall_seconds,
              result.MeanRoundTime() * 1e3);
  std::printf("val loss=%.4f val acc=%.2f%% reached_target=%s\n",
              result.final_loss, result.final_accuracy * 100.0,
              result.reached_target ? "yes" : "no");
  if (!config.elastic.empty()) {
    std::printf("elastic: joined=%zu left=%zu live=%zu\n",
                result.workers_joined, result.workers_left,
                result.live_workers);
  }
  for (std::size_t w = 0; w < result.breakdown.size(); ++w) {
    const auto& b = result.breakdown[w];
    std::printf("  worker %zu: %zu batches, compute %.3fs, wait %.3fs, "
                "comm %.3fs\n",
                w, b.iterations, b.compute, b.wait, b.comm);
  }

  const std::string ckpt = flags.GetString("checkpoint", "");
  if (!ckpt.empty()) {
    train::SaveCheckpoint(ckpt, result.final_params, {}, result.rounds);
    const train::Checkpoint loaded = train::LoadCheckpoint(ckpt);
    std::printf("checkpoint written to %s (%zu params, round %llu)\n",
                ckpt.c_str(), loaded.params.size(),
                static_cast<unsigned long long>(loaded.round));
  }
  return 0;
}
