// Inherent load imbalance, end to end: train an LSTM sequence classifier on
// variable-length inputs whose length distribution mimics UCF101 video
// features (paper §2.3.1, Figure 2). No delays are injected — the straggler
// effect comes entirely from recurrent compute being proportional to
// sequence length. RNA's partial collective is compared with BSP.

#include <cstdio>
#include <memory>

#include "rna/common/stats.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"

int main() {
  using namespace rna;

  // Variable-length sequences: the Figure 2(a) video-length distribution,
  // scaled 16x down so CPU-only training stays fast.
  const data::LengthModel lengths = data::VideoLengths(/*scale=*/16.0);
  common::Rng rng(5);
  common::OnlineStats length_stats;
  for (int i = 0; i < 2000; ++i) {
    length_stats.Add(static_cast<double>(lengths.Sample(rng)));
  }
  std::printf("sequence lengths: mean=%.1f stddev=%.1f min=%.0f max=%.0f — "
              "a long right tail,\nso mini-batch compute time is unbalanced "
              "across workers.\n\n",
              length_stats.Mean(), length_stats.Stddev(), length_stats.Min(),
              length_stats.Max());

  data::Dataset all = data::MakeSequenceDataset(800, 6, 6, lengths, 1.2, 2);
  auto [train_data, val_data] = all.SplitHoldout(0.2);

  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::LstmClassifier>(6, 16, 6, seed, 0.0);
  };

  train::TrainerConfig config;
  config.world = 4;
  config.batch_size = 8;
  // Similar-length videos are batched together (standard bucketed
  // batching), so batch compute time follows the length distribution; the
  // per-step sleep emulates GPU-scale recurrent compute.
  config.sampling = data::SamplingMode::kLengthBucketed;
  config.sleep_per_step = 50e-6;
  config.sgd.learning_rate = 0.1;
  config.sgd.momentum = 0.5;
  config.target_loss = 0.8;
  config.max_rounds = 4000;
  config.eval_period_s = 0.01;
  config.eval_samples = 96;

  for (auto protocol : {train::Protocol::kHorovod, train::Protocol::kRna}) {
    config.protocol = protocol;
    const train::TrainResult result =
        core::RunTraining(config, factory, train_data, val_data);
    std::printf("%-8s time-to-loss %.2f: %6.2f s  (%.2f ms/round, "
                "%zu rounds, val acc %.1f%%)\n",
                train::ProtocolName(protocol), config.target_loss,
                result.wall_seconds, result.MeanRoundTime() * 1e3,
                result.rounds, result.final_accuracy * 100.0);
  }
  return 0;
}
