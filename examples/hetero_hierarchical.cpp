// Hierarchical synchronization on a deterministically heterogeneous
// cluster (paper §4): half the machines are consistently ~3x slower
// (think K80s next to 2080 Tis). The example shows
//   * the ζ>v grouping rule applied to calibrated iteration times,
//   * flat RNA vs hierarchical RNA (per-group rings + asynchronous PS
//     averaging) on that cluster.

#include <cstdio>
#include <memory>

#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"

int main() {
  using namespace rna;

  // Show the grouping rule on explicit iteration times first.
  const std::vector<double> measured = {0.0012, 0.0013, 0.0012,
                                        0.0036, 0.0038, 0.0035};
  const auto groups = core::ComputeSpeedGroups(measured);
  std::printf("calibrated iteration times (ms):");
  for (double t : measured) std::printf(" %.1f", t * 1e3);
  std::printf("\nzeta>v grouping:");
  for (auto g : groups) std::printf(" g%zu", g);
  std::printf("  (fast machines and slow machines end up in separate "
              "rings)\n\n");

  data::Dataset all = data::MakeGaussianClusters(4000, 12, 6, 0.7, 3);
  auto [train_data, val_data] = all.SplitHoldout(0.2);
  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{12, 48, 6}, seed);
  };

  train::TrainerConfig config;
  config.world = 6;
  config.batch_size = 16;
  config.sgd.learning_rate = 0.1;
  config.sgd.momentum = 0.5;
  config.target_loss = 0.8;
  config.max_rounds = 4000;
  config.eval_period_s = 0.01;
  config.eval_samples = 96;
  // Deterministic 3x tier difference plus mild jitter.
  config.delay_model = std::make_shared<sim::MixedGroupModel>(
      0.0012, 0.0005, 0.0020, 0.0028,
      std::vector<bool>{false, false, false, true, true, true});
  config.calibration_iters = 8;

  for (auto protocol :
       {train::Protocol::kHorovod, train::Protocol::kRna,
        train::Protocol::kRnaHierarchical}) {
    config.protocol = protocol;
    const train::TrainResult result =
        core::RunTraining(config, factory, train_data, val_data);
    std::printf("%-8s time-to-loss %.2f: %6.2f s  rounds=%4zu  "
                "val acc %.1f%%  contributors/round %.2f\n",
                train::ProtocolName(protocol), config.target_loss,
                result.wall_seconds, result.rounds,
                result.final_accuracy * 100.0, result.MeanContributors());
  }
  std::printf(
      "\nHierarchical RNA keeps each ring speed-homogeneous and merges group "
      "models through the PS\nasynchronously. On this scaled-down cluster "
      "flat RNA's cross-iteration buffering already\nabsorbs the "
      "deterministic slowdown, so the hierarchy mostly pays its PS overhead "
      "— its\nadvantage grows with the tier spread and the cluster size "
      "(see bench_fig6_speedup's (M)\ncolumns and EXPERIMENTS.md).\n");
  return 0;
}
