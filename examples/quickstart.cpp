// Quickstart: train a small classifier data-parallel with RNA
// (Randomized Non-blocking AllReduce) and compare against Horovod-style
// BSP on the same problem.
//
//   $ ./quickstart
//
// Walks through the three things a user of this library does:
//   1. get a dataset (here: synthetic Gaussian clusters),
//   2. provide a model factory (every worker builds an identical replica),
//   3. pick a protocol + config and call rna::core::RunTraining.

#include <cstdio>
#include <memory>

#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"

int main() {
  using namespace rna;

  // 1. Data: 2000 samples, 8 features, 4 classes; hold out 20% for
  //    validation. Each worker automatically trains on its own shard.
  data::Dataset all = data::MakeGaussianClusters(4000, 8, 6, 0.65, /*seed=*/1);
  auto [train_data, val_data] = all.SplitHoldout(0.2);

  // 2. Model: an MLP classifier. The factory is called once per worker with
  //    the same seed so replicas start identical.
  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{8, 32, 6}, seed);
  };

  // 3. Config: 4 workers, stop at validation loss 0.35. One worker is made
  //    a straggler (+2 ms per iteration) to show RNA's tolerance.
  train::TrainerConfig config;
  config.world = 4;
  config.batch_size = 16;
  config.sgd.learning_rate = 0.15;
  config.sgd.momentum = 0.9;
  config.target_loss = 0.55;
  config.max_rounds = 8000;
  config.eval_period_s = 0.005;
  config.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.001, std::vector<double>{0.0, 0.0, 0.0, 0.004});

  for (auto protocol : {train::Protocol::kHorovod, train::Protocol::kRna}) {
    config.protocol = protocol;
    const train::TrainResult result =
        core::RunTraining(config, factory, train_data, val_data);
    std::printf(
        "%-8s reached target: %-3s  time: %6.2f s  rounds: %4zu  "
        "val acc: %.1f%%  val loss: %.3f\n",
        train::ProtocolName(protocol), result.reached_target ? "yes" : "no",
        result.wall_seconds, result.rounds, result.final_accuracy * 100.0,
        result.final_loss);
  }
  std::printf("\nRNA reaches the same loss sooner: rounds trigger on probed "
              "fast workers instead of\nwaiting for the straggler, which "
              "contributes accumulated gradients when it catches up.\n");
  return 0;
}
