// Tests for the ring collectives: correctness of allreduce across world
// sizes and buffer sizes (including buffers smaller than the ring), the
// partial allreduce's contributor weighting, broadcast, and barrier. Every
// test launches real threads — the collectives are cooperative.

#include <gtest/gtest.h>

#include <thread>

#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/rng.hpp"

namespace rna::collectives {
namespace {

/// CollectiveOptions with just a tag base — ring schedule, no compression.
CollectiveOptions Opts(int tag_base) {
  CollectiveOptions o;
  o.tag_base = tag_base;
  return o;
}

/// Runs `body(rank)` on `world` threads and joins them.
void OnAllRanks(std::size_t world,
                const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] { body(r); });
  }
  for (auto& t : threads) t.join();
}

TEST(Group, FullAndIndexOf) {
  Group g = Group::Full(4);
  EXPECT_EQ(g.Size(), 4u);
  EXPECT_EQ(g.IndexOf(2), 2u);
  Group sub;
  sub.members = {5, 1, 3};
  EXPECT_EQ(sub.IndexOf(3), 2u);
  EXPECT_THROW(sub.IndexOf(7), std::logic_error);
}

TEST(RingAllreduce, SumsAcrossRanks) {
  const std::size_t world = 4, n = 64;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n));
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      data[r][i] = static_cast<float>(r * 100 + i);
    }
  }
  OnAllRanks(world, [&](std::size_t r) {
    Allreduce({fabric, group, r}, Opts(1000), data[r]);
  });
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      // Σ_w (w*100 + i) = 600 + 4i for world=4.
      EXPECT_FLOAT_EQ(data[r][i], 600.0f + 4.0f * static_cast<float>(i));
    }
  }
}

TEST(RingAllreduce, SingleRankIsNoOp) {
  net::Fabric fabric(1);
  const Group group = Group::Full(1);
  std::vector<float> data = {1.0f, 2.0f};
  Allreduce({fabric, group, 0}, Opts(1000), data);
  EXPECT_EQ(data[0], 1.0f);
}

TEST(RingAllreduce, IdenticalResultOnAllRanks) {
  const std::size_t world = 5, n = 37;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  common::Rng rng(3);
  std::vector<std::vector<float>> data(world, std::vector<float>(n));
  for (auto& v : data) {
    for (auto& x : v) x = static_cast<float>(rng.Normal(0, 1));
  }
  OnAllRanks(world, [&](std::size_t r) {
    Allreduce({fabric, group, r}, Opts(1000), data[r]);
  });
  for (std::size_t r = 1; r < world; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      // Bitwise identical — replicas must stay in lockstep.
      EXPECT_EQ(data[r][i], data[0][i]);
    }
  }
}

TEST(RingAllreduce, SubgroupOfFabric) {
  // A ring over a strict subset of endpoints (the hierarchical case).
  net::Fabric fabric(6);
  Group group;
  group.members = {1, 3, 5};
  std::vector<std::vector<float>> data(3, std::vector<float>(8, 1.0f));
  OnAllRanks(3, [&](std::size_t idx) {
    Allreduce({fabric, group, idx}, Opts(1000), data[idx]);
  });
  for (const auto& v : data) {
    for (float x : v) EXPECT_FLOAT_EQ(x, 3.0f);
  }
}

TEST(RingAllreduce, BackToBackRoundsWithParityTags) {
  const std::size_t world = 3, n = 16;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n, 1.0f));
  OnAllRanks(world, [&](std::size_t r) {
    for (std::size_t round = 0; round < 10; ++round) {
      Allreduce({fabric, group, r},
                Opts(1000 + static_cast<int>(round % 2) * 100), data[r]);
    }
  });
  // Each round multiplies every element by world: 3^10.
  for (float x : data[0]) EXPECT_FLOAT_EQ(x, std::pow(3.0f, 10.0f));
}

TEST(RingPartialAllreduce, AllContributeEqualsAverage) {
  const std::size_t world = 4, n = 32;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n));
  for (std::size_t r = 0; r < world; ++r) {
    std::fill(data[r].begin(), data[r].end(), static_cast<float>(r + 1));
  }
  std::vector<PartialResult> results(world);
  OnAllRanks(world, [&](std::size_t r) {
    results[r] =
        PartialAllreduceFor({fabric, group, r}, Opts(1000), data[r], true);
  });
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(results[r].contributors, 4u);
    for (float x : data[r]) EXPECT_FLOAT_EQ(x, 2.5f);  // mean of 1..4
  }
}

TEST(RingPartialAllreduce, PartialParticipationReweights) {
  const std::size_t world = 4, n = 16;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n));
  // Ranks 1 and 3 contribute 2.0 and 6.0; 0 and 2 are stragglers whose
  // buffers hold garbage that must be ignored (nulled).
  std::fill(data[1].begin(), data[1].end(), 2.0f);
  std::fill(data[3].begin(), data[3].end(), 6.0f);
  std::fill(data[0].begin(), data[0].end(), 999.0f);
  std::fill(data[2].begin(), data[2].end(), -999.0f);
  std::vector<PartialResult> results(world);
  OnAllRanks(world, [&](std::size_t r) {
    const bool contributes = (r == 1 || r == 3);
    results[r] =
        PartialAllreduceFor({fabric, group, r}, Opts(1000), data[r], contributes);
  });
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(results[r].contributors, 2u);
    // W = 1/Σw = 1/2 → (2+6)/2 = 4.
    for (float x : data[r]) EXPECT_FLOAT_EQ(x, 4.0f);
  }
}

TEST(RingPartialAllreduce, NobodyContributesYieldsZeros) {
  const std::size_t world = 3, n = 8;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n, 5.0f));
  std::vector<PartialResult> results(world);
  OnAllRanks(world, [&](std::size_t r) {
    results[r] =
        PartialAllreduceFor({fabric, group, r}, Opts(1000), data[r], false);
  });
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(results[r].contributors, 0u);
    for (float x : data[r]) EXPECT_FLOAT_EQ(x, 0.0f);
  }
}

TEST(Broadcast, RootValuePropagates) {
  const std::size_t world = 5, n = 12;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n, 0.0f));
  std::fill(data[2].begin(), data[2].end(), 7.5f);
  OnAllRanks(world, [&](std::size_t r) {
    Broadcast(fabric, group, r, 2, data[r], 500);
  });
  for (std::size_t r = 0; r < world; ++r) {
    for (float x : data[r]) EXPECT_FLOAT_EQ(x, 7.5f);
  }
}

TEST(Barrier, AllRanksPass) {
  const std::size_t world = 6;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::atomic<int> arrived{0};
  OnAllRanks(world, [&](std::size_t r) {
    arrived.fetch_add(1);
    Barrier(fabric, group, r, 700);
    // After the barrier everyone must have arrived.
    EXPECT_EQ(arrived.load(), static_cast<int>(world));
  });
}

// Property sweep: allreduce of all-ones equals `world` for a grid of
// world sizes × buffer sizes, including buffers smaller than the ring
// (empty chunks must still flow).
class AllreduceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllreduceSweep, OnesSumToWorld) {
  const auto [world_i, n_i] = GetParam();
  const auto world = static_cast<std::size_t>(world_i);
  const auto n = static_cast<std::size_t>(n_i);
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n, 1.0f));
  OnAllRanks(world, [&](std::size_t r) {
    Allreduce({fabric, group, r}, Opts(1000), data[r]);
  });
  for (std::size_t r = 0; r < world; ++r) {
    for (float x : data[r]) {
      ASSERT_FLOAT_EQ(x, static_cast<float>(world));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllreduceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8),
                       ::testing::Values(1, 2, 5, 64, 1001)));

}  // namespace
}  // namespace rna::collectives
