// Unit tests for the training-harness building blocks: WorkerContext
// (gradient computation, delay injection, calibration), the evaluation
// monitor's stopping logic, and the configuration plumbing.

#include <gtest/gtest.h>

#include <memory>

#include "rna/data/generators.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/worker.hpp"

namespace rna::train {
namespace {

ModelFactory MlpFactory() {
  return [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{4, 8, 2}, seed);
  };
}

TrainerConfig SmallConfig(std::size_t world = 2) {
  TrainerConfig c;
  c.world = world;
  c.batch_size = 4;
  c.seed = 5;
  return c;
}

TEST(WorkerContext, ProducesGradientsAndCountsIterations) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 1);
  const TrainerConfig config = SmallConfig();
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  const nn::BatchResult r = worker.ComputeGradient(params, grad);
  EXPECT_EQ(r.total, 4u);
  EXPECT_EQ(worker.Iterations(), 1u);
  double norm = 0;
  for (float g : grad) norm += static_cast<double>(g) * g;
  EXPECT_GT(norm, 0.0);
  EXPECT_GT(worker.Times().compute, 0.0);
}

TEST(WorkerContext, ShardsDifferAcrossRanks) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 2);
  const TrainerConfig config = SmallConfig(2);
  WorkerContext w0(0, config, MlpFactory(), ds);
  WorkerContext w1(1, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> g0(w0.Dim()), g1(w1.Dim());
  w0.ComputeGradient(params, g0);
  w1.ComputeGradient(params, g1);
  EXPECT_NE(g0, g1);  // different shards + different sampler seeds
}

TEST(WorkerContext, DelayInjectionAddsComputeTime) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 3);
  TrainerConfig config = SmallConfig(1);
  config.delay_model =
      std::make_shared<sim::DeterministicSkewModel>(0.02, std::vector<double>{0.0});
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  const common::Stopwatch watch;
  worker.ComputeGradient(params, grad);
  EXPECT_GE(watch.Elapsed(), 0.018);
}

TEST(WorkerContext, DelayScaleCompresses) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 3);
  TrainerConfig config = SmallConfig(1);
  config.delay_model =
      std::make_shared<sim::DeterministicSkewModel>(0.1, std::vector<double>{0.0});
  config.delay_scale = 0.05;  // 100 ms → 5 ms
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  const common::Stopwatch watch;
  worker.ComputeGradient(params, grad);
  const double t = watch.Elapsed();
  EXPECT_GE(t, 0.004);
  EXPECT_LT(t, 0.06);
}

TEST(WorkerContext, SequenceSleepScalesWithLength) {
  data::LengthModel lengths{.mean = 20, .stddev = 1, .min_len = 19,
                            .max_len = 21};
  data::Dataset ds = data::MakeSequenceDataset(32, 3, 2, lengths, 0.1, 4);
  TrainerConfig config = SmallConfig(1);
  config.batch_size = 4;
  config.sleep_per_step = 250e-6;  // ≈ 4 seq × 20 steps × 0.25 ms = 20 ms
  ModelFactory lstm = [](std::uint64_t seed) {
    return std::make_unique<nn::LstmClassifier>(3, 4, 2, seed, 0.0);
  };
  WorkerContext worker(0, config, lstm, ds);
  std::vector<float> params = InitialParams(config, lstm);
  std::vector<float> grad(worker.Dim());
  const common::Stopwatch watch;
  worker.ComputeGradient(params, grad);
  EXPECT_GE(watch.Elapsed(), 0.015);
}

TEST(WorkerContext, CalibrationDoesNotPolluteCounters) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 5);
  const TrainerConfig config = SmallConfig(1);
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  const common::Seconds t = worker.MeasureIterationTime(params, 4);
  EXPECT_GT(t, 0.0);
  EXPECT_EQ(worker.Iterations(), 0u);
  EXPECT_EQ(worker.Times().compute, 0.0);
}

TEST(InitialParams, MatchesFactorySeed) {
  const TrainerConfig config = SmallConfig();
  const std::vector<float> a = InitialParams(config, MlpFactory());
  const std::vector<float> b = InitialParams(config, MlpFactory());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(EvalMonitor, RaisesStopOnTargetLoss) {
  data::Dataset val = data::MakeGaussianClusters(64, 4, 2, 0.4, 6);
  TrainerConfig config = SmallConfig(1);
  config.target_loss = 100.0;  // any model beats this
  config.eval_period_s = 0.005;

  auto net = MlpFactory()(config.model_seed);
  std::vector<float> params(net->ParamCount());
  net->CopyParamsTo(params);

  ParamBoard board(params);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds{1};
  EvalMonitor monitor(config, MlpFactory(), val);
  monitor.Start(board, stop, rounds);
  board.Publish(params, 1);  // give the monitor something new to evaluate
  const common::Stopwatch watch;
  while (!stop.load() && watch.Elapsed() < 2.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.Finish();
  EXPECT_TRUE(stop.load());
  EXPECT_TRUE(monitor.ReachedTarget());
  ASSERT_FALSE(monitor.Curve().empty());
  EXPECT_EQ(monitor.Curve().back().round, 1u);
}

TEST(EvalMonitor, EarlyStopsAfterPatience) {
  data::Dataset val = data::MakeGaussianClusters(64, 4, 2, 0.4, 7);
  TrainerConfig config = SmallConfig(1);
  config.patience = 3;
  config.eval_period_s = 0.003;

  auto net = MlpFactory()(config.model_seed);
  std::vector<float> params(net->ParamCount());
  net->CopyParamsTo(params);

  ParamBoard board(params);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> rounds{0};
  EvalMonitor monitor(config, MlpFactory(), val);
  monitor.Start(board, stop, rounds);
  // Keep publishing the same parameters: loss never improves → patience.
  const common::Stopwatch watch;
  std::int64_t version = 0;
  while (!stop.load() && watch.Elapsed() < 3.0) {
    board.Publish(params, ++version);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.Finish();
  EXPECT_TRUE(monitor.EarlyStopped());
}

TEST(EvaluateDataset, CapsSampleCount) {
  data::Dataset ds = data::MakeGaussianClusters(100, 4, 2, 0.4, 8);
  auto net = MlpFactory()(1);
  std::vector<float> params(net->ParamCount());
  net->CopyParamsTo(params);
  const nn::BatchResult capped = EvaluateDataset(*net, params, ds, 10);
  EXPECT_EQ(capped.total, 10u);
  const nn::BatchResult full = EvaluateDataset(*net, params, ds);
  EXPECT_EQ(full.total, 100u);
}

TEST(WorkerContext, ArenaPinnedAfterWarmupWithZeroChunkGrowth) {
  // Variable-length sequences are the hard case: the warm-up pin must
  // cover the worst batch the sampler can emit, so later (shorter) batches
  // never grow the arena — and the worst batch itself fits exactly.
  data::LengthModel lengths{.mean = 12, .stddev = 6, .min_len = 4,
                            .max_len = 24};
  data::Dataset ds = data::MakeSequenceDataset(48, 3, 2, lengths, 0.1, 9);
  TrainerConfig config = SmallConfig(1);
  config.batch_size = 4;
  ModelFactory lstm = [](std::uint64_t seed) {
    return std::make_unique<nn::LstmClassifier>(3, 4, 2, seed, 0.0);
  };
  WorkerContext worker(0, config, lstm, ds);
  std::vector<float> params = InitialParams(config, lstm);
  std::vector<float> grad(worker.Dim());

  worker.ComputeGradient(params, grad);
  const tensor::Arena& arena = worker.Net().ComputeArena();
  EXPECT_TRUE(arena.ExactMode());
  const std::size_t chunks_after_warmup = arena.Stats().chunk_allocs;

  for (int i = 0; i < 8; ++i) worker.ComputeGradient(params, grad);
  EXPECT_EQ(arena.Stats().chunk_allocs, chunks_after_warmup);
  EXPECT_TRUE(arena.ExactMode());
}

TEST(WorkerContext, ArenaPinSkippedWhenArenaDisabled) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 10);
  const TrainerConfig config = SmallConfig(1);
  ModelFactory no_arena = [](std::uint64_t seed) {
    auto net = std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{4, 8, 2}, seed);
    net->EnableArena(false);
    return net;
  };
  WorkerContext worker(0, config, no_arena, ds);
  std::vector<float> params = InitialParams(config, no_arena);
  std::vector<float> grad(worker.Dim());
  worker.ComputeGradient(params, grad);
  EXPECT_FALSE(worker.Net().ComputeArena().ExactMode());
}

TEST(EvaluateDataset, RelaxesPinnedTrainingReplica) {
  // The terminal evaluation reuses a worker's pinned replica with far
  // larger batches; EvaluateDataset must leave exact mode first instead
  // of tripping the capacity contract.
  data::LengthModel lengths{.mean = 12, .stddev = 6, .min_len = 4,
                            .max_len = 24};
  data::Dataset ds = data::MakeSequenceDataset(64, 3, 2, lengths, 0.1, 11);
  TrainerConfig config = SmallConfig(1);
  config.batch_size = 4;
  ModelFactory lstm = [](std::uint64_t seed) {
    return std::make_unique<nn::LstmClassifier>(3, 4, 2, seed, 0.0);
  };
  WorkerContext worker(0, config, lstm, ds);
  std::vector<float> params = InitialParams(config, lstm);
  std::vector<float> grad(worker.Dim());
  worker.ComputeGradient(params, grad);
  ASSERT_TRUE(worker.Net().ComputeArena().ExactMode());
  const nn::BatchResult r = EvaluateDataset(worker.Net(), params, ds);
  EXPECT_EQ(r.total, 64u);
  EXPECT_FALSE(worker.Net().ComputeArena().ExactMode());
}

TEST(WorkerContext, SteadyStateConsumesPrefetchedBatches) {
  // The acceptance criterion for the streaming data plane: steady-state
  // steps pop pre-assembled batches off the generator's queue instead of
  // assembling inline on the compute path.
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 12);
  TrainerConfig config = SmallConfig(1);
  ASSERT_GT(config.prefetch_batches, 0u);
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  for (int i = 0; i < 6; ++i) worker.ComputeGradient(params, grad);
  EXPECT_EQ(worker.Generator().PrefetchedPops(), 6u);
  EXPECT_EQ(worker.Generator().SynchronousAssemblies(), 0u);
}

TEST(WorkerContext, SynchronousModeWhenPrefetchDisabled) {
  data::Dataset ds = data::MakeGaussianClusters(64, 4, 2, 0.4, 13);
  TrainerConfig config = SmallConfig(1);
  config.prefetch_batches = 0;
  WorkerContext worker(0, config, MlpFactory(), ds);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  for (int i = 0; i < 4; ++i) worker.ComputeGradient(params, grad);
  EXPECT_EQ(worker.Generator().PrefetchedPops(), 0u);
  EXPECT_EQ(worker.Generator().SynchronousAssemblies(), 4u);
}

TEST(WorkerContext, OverflowRankTrainsOnSharedShard) {
  // Regression: world > dataset size used to hand overflow ranks an empty
  // shard and abort in the sampler. They now train on the shared view.
  data::Dataset ds = data::MakeGaussianClusters(10, 4, 2, 0.4, 14);
  TrainerConfig config = SmallConfig(30);
  WorkerContext worker(25, config, MlpFactory(), ds);
  EXPECT_TRUE(worker.Shard().SharedFallback());
  EXPECT_EQ(worker.Shard().Size(), 10u);
  std::vector<float> params = InitialParams(config, MlpFactory());
  std::vector<float> grad(worker.Dim());
  const nn::BatchResult r = worker.ComputeGradient(params, grad);
  EXPECT_EQ(r.total, config.batch_size);
}

TEST(Config, ProtocolNamesAreStable) {
  EXPECT_STREQ(ProtocolName(Protocol::kHorovod), "horovod");
  EXPECT_STREQ(ProtocolName(Protocol::kRna), "rna");
  EXPECT_STREQ(ProtocolName(Protocol::kRnaHierarchical), "rna-h");
  EXPECT_STREQ(ProtocolName(Protocol::kSgp), "sgp");
  EXPECT_STREQ(ProtocolName(Protocol::kCentralizedPs), "async-ps");
}

}  // namespace
}  // namespace rna::train
