// Tests for synthetic dataset generators, sharding, splitting, sampling,
// zero-copy shard views, and the streaming batch generator.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#include "rna/common/stats.hpp"
#include "rna/data/batch_generator.hpp"
#include "rna/data/generators.hpp"
#include "rna/data/shard_view.hpp"

namespace rna::data {
namespace {

TEST(Generators, GaussianClustersShapeAndLabels) {
  Dataset ds = MakeGaussianClusters(100, 8, 4, 0.5, 1);
  EXPECT_EQ(ds.Size(), 100u);
  EXPECT_FALSE(ds.IsSequence());
  EXPECT_EQ(ds.inputs.Rows(), 100u);
  EXPECT_EQ(ds.inputs.Cols(), 8u);
  std::set<std::int32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(Generators, Deterministic) {
  Dataset a = MakeGaussianClusters(50, 4, 2, 0.5, 42);
  Dataset b = MakeGaussianClusters(50, 4, 2, 0.5, 42);
  for (std::size_t i = 0; i < a.inputs.Size(); ++i) {
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
  }
  Dataset c = MakeGaussianClusters(50, 4, 2, 0.5, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.inputs.Size() && !differs; ++i) {
    differs = a.inputs[i] != c.inputs[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, TwoSpiralsBalanced) {
  Dataset ds = MakeTwoSpirals(200, 2, 0.05, 2);
  std::size_t zeros = 0;
  for (auto label : ds.labels) zeros += label == 0;
  EXPECT_EQ(zeros, 100u);
}

TEST(Generators, SequenceDatasetLengthsVary) {
  LengthModel lengths{.mean = 20, .stddev = 10, .min_len = 4, .max_len = 80};
  Dataset ds = MakeSequenceDataset(100, 6, 3, lengths, 0.1, 3);
  EXPECT_TRUE(ds.IsSequence());
  std::set<std::size_t> seen;
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(seq.Rows(), 4u);
    EXPECT_LE(seq.Rows(), 80u);
    EXPECT_EQ(seq.Cols(), 6u);
    seen.insert(seq.Rows());
  }
  EXPECT_GT(seen.size(), 5u);  // genuinely variable lengths
}

TEST(LengthModel, MatchesConfiguredMoments) {
  // The Figure 2(a) distribution: mean 186, stddev 97.7, range [29, 1776].
  LengthModel m;  // defaults are the UCF101 calibration
  common::Rng rng(4);
  common::OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(m.Sample(rng)));
  }
  EXPECT_NEAR(stats.Mean(), 186.0, 6.0);
  EXPECT_NEAR(stats.Stddev(), 97.7, 8.0);
  EXPECT_GE(stats.Min(), 29.0);
  EXPECT_LE(stats.Max(), 1776.0);
}

TEST(LengthModel, ScaledPreservesShape) {
  LengthModel m = VideoLengths(8.0);
  common::Rng rng(5);
  common::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(m.Sample(rng)));
  }
  EXPECT_NEAR(stats.Mean(), 186.0 / 8.0, 2.0);
}

TEST(Dataset, ShardsAreDisjointAndCover) {
  Dataset ds = MakeGaussianClusters(103, 4, 2, 0.5, 6);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    Dataset shard = ds.Shard(r, 4);
    total += shard.Size();
    // Round-robin: shard r holds ds indices r, r+4, r+8, ...
    for (std::size_t i = 0; i < shard.Size(); ++i) {
      EXPECT_EQ(shard.labels[i], ds.labels[r + 4 * i]);
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(Dataset, ShardSequenceDataset) {
  LengthModel lengths{.mean = 10, .stddev = 4, .min_len = 2, .max_len = 30};
  Dataset ds = MakeSequenceDataset(20, 3, 2, lengths, 0.1, 7);
  Dataset shard = ds.Shard(1, 3);
  EXPECT_EQ(shard.Size(), 7u);  // indices 1,4,7,10,13,16,19
  EXPECT_EQ(shard.sequences[0].Rows(), ds.sequences[1].Rows());
}

TEST(Dataset, ShardValidation) {
  Dataset ds = MakeGaussianClusters(10, 2, 2, 0.5, 8);
  EXPECT_THROW(ds.Shard(3, 3), std::logic_error);
  EXPECT_THROW(ds.Shard(0, 0), std::logic_error);
}

TEST(Dataset, SplitHoldout) {
  Dataset ds = MakeGaussianClusters(100, 2, 2, 0.5, 9);
  auto [train, val] = ds.SplitHoldout(0.2);
  EXPECT_EQ(train.Size(), 80u);
  EXPECT_EQ(val.Size(), 20u);
  EXPECT_EQ(val.labels[0], ds.labels[80]);
}

TEST(Dataset, MakeBatchDense) {
  Dataset ds = MakeGaussianClusters(10, 3, 2, 0.5, 10);
  const std::size_t idx[] = {2, 7};
  nn::Batch b = ds.MakeBatch(idx);
  EXPECT_EQ(b.Size(), 2u);
  EXPECT_EQ(b.inputs.At(0, 0), ds.inputs.At(2, 0));
  EXPECT_EQ(b.inputs.At(1, 2), ds.inputs.At(7, 2));
  EXPECT_EQ(b.labels[1], ds.labels[7]);
}

TEST(BatchSampler, ProducesRequestedSize) {
  Dataset ds = MakeGaussianClusters(50, 4, 2, 0.5, 11);
  BatchSampler sampler(ds, 8, 12);
  for (int i = 0; i < 20; ++i) {
    nn::Batch b = sampler.Next();
    EXPECT_EQ(b.Size(), 8u);
    for (auto label : b.labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 2);
    }
  }
}

TEST(BatchSampler, DifferentSeedsDifferentBatches) {
  Dataset ds = MakeGaussianClusters(1000, 2, 2, 0.5, 13);
  BatchSampler a(ds, 16, 1), b(ds, 16, 2);
  const nn::Batch ba = a.Next(), bb = b.Next();
  bool differs = false;
  for (std::size_t i = 0; i < 16 && !differs; ++i) {
    differs = ba.inputs.At(i, 0) != bb.inputs.At(i, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(BatchSampler, LengthBucketedGroupsSimilarLengths) {
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 15);
  BatchSampler sampler(ds, 8, 16, SamplingMode::kLengthBucketed);
  // Within-batch length spread must be far below the dataset-wide spread.
  common::OnlineStats dataset_lengths;
  for (const auto& seq : ds.sequences) {
    dataset_lengths.Add(static_cast<double>(seq.Rows()));
  }
  double mean_batch_spread = 0.0;
  const int batches = 50;
  for (int b = 0; b < batches; ++b) {
    nn::Batch batch = sampler.Next();
    std::size_t lo = batch.sequences[0].Rows(), hi = lo;
    for (const auto& seq : batch.sequences) {
      lo = std::min(lo, seq.Rows());
      hi = std::max(hi, seq.Rows());
    }
    mean_batch_spread += static_cast<double>(hi - lo) / batches;
  }
  EXPECT_LT(mean_batch_spread, dataset_lengths.Stddev());
}

TEST(BatchSampler, BucketedBatchTimesFollowLengthDistribution) {
  // The point of bucketing: per-batch total length varies like the sample
  // length distribution (not averaged out as with uniform mixing).
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 16);
  auto batch_length_cv = [&](SamplingMode mode) {
    BatchSampler sampler(ds, 8, 17, mode);
    common::OnlineStats totals;
    for (int b = 0; b < 200; ++b) {
      nn::Batch batch = sampler.Next();
      double total = 0;
      for (const auto& seq : batch.sequences) {
        total += static_cast<double>(seq.Rows());
      }
      totals.Add(total);
    }
    return totals.Stddev() / totals.Mean();
  };
  EXPECT_GT(batch_length_cv(SamplingMode::kLengthBucketed),
            2.0 * batch_length_cv(SamplingMode::kUniform));
}

TEST(BatchSampler, BucketedFallsBackForDenseData) {
  Dataset ds = MakeGaussianClusters(50, 4, 2, 0.5, 18);
  BatchSampler sampler(ds, 8, 19, SamplingMode::kLengthBucketed);
  nn::Batch b = sampler.Next();  // must not crash; behaves as uniform
  EXPECT_EQ(b.Size(), 8u);
}

// --- Regression: the three data-plane bugs the 1000-worker worlds hit ----

TEST(Dataset, EmptyShardFallsBackToAllSamples) {
  // world > Size(): round-robin leaves overflow ranks nothing, and the
  // sampler used to abort on the empty shard. They now share all samples.
  Dataset ds = MakeGaussianClusters(10, 4, 2, 0.5, 21);
  Dataset shard = ds.Shard(50, 1000);
  ASSERT_EQ(shard.Size(), 10u);
  BatchSampler sampler(shard, 4, 22);  // must not throw
  EXPECT_EQ(sampler.Next().Size(), 4u);
  // In-range ranks keep their disjoint round-robin slice.
  EXPECT_EQ(ds.Shard(3, 10).Size(), 1u);
}

TEST(Dataset, SplitHoldoutNeverEmptyOnSmallDatasets) {
  // floor(10 * 0.05) = 0 used to produce an empty validation set that
  // crashed downstream eval; both sides must stay non-empty.
  Dataset ds = MakeGaussianClusters(10, 2, 2, 0.5, 23);
  auto [train, val] = ds.SplitHoldout(0.05);
  EXPECT_EQ(val.Size(), 1u);
  EXPECT_EQ(train.Size(), 9u);
  // The other edge: a fraction that floors to all samples keeps >= 1 for
  // training.
  auto [train2, val2] = ds.SplitHoldout(0.999);
  EXPECT_GE(train2.Size(), 1u);
  EXPECT_GE(val2.Size(), 1u);
  EXPECT_EQ(train2.Size() + val2.Size(), 10u);
}

TEST(BatchSampler, OversizedBucketedBatchWrapsInsteadOfLongestPadding) {
  // batch_size > Size(): the old std::min(start + i, n - 1) clamp padded
  // the batch with duplicates of the *longest* sequence (by_length_ is
  // ascending). Wrapping must visit every sample equally often.
  LengthModel lengths{.mean = 12, .stddev = 8, .min_len = 2, .max_len = 60};
  Dataset ds = MakeSequenceDataset(6, 3, 2, lengths, 0.1, 24);
  BatchSampler sampler(ds, 12, 25, SamplingMode::kLengthBucketed);
  nn::Batch batch = sampler.Next();
  ASSERT_EQ(batch.Size(), 12u);
  std::map<std::size_t, int> count_by_length;
  for (const auto& seq : batch.sequences) ++count_by_length[seq.Rows()];
  std::size_t max_len = 0;
  int samples_at_max = 0;
  for (const auto& seq : ds.sequences) max_len = std::max(max_len, seq.Rows());
  for (const auto& seq : ds.sequences) samples_at_max += seq.Rows() == max_len;
  int longest_count = 0;
  for (const auto& [len, count] : count_by_length) {
    if (len == max_len) longest_count = count;
  }
  // Every sample appears exactly batch_size / n = 2 times; the longest is
  // no longer over-represented (the clamp gave it 7 of 12 slots here).
  EXPECT_LE(longest_count, 2 * samples_at_max);
}

TEST(LengthModel, RejectsNonPositiveMeanAndNegativeStddev) {
  common::Rng rng(26);
  LengthModel zero_mean{.mean = 0.0, .stddev = 5.0};
  EXPECT_THROW(zero_mean.Sample(rng), std::logic_error);
  LengthModel negative_stddev{.mean = 10.0, .stddev = -1.0};
  EXPECT_THROW(negative_stddev.Sample(rng), std::logic_error);
}

// --- ShardView: zero-copy sharding ---------------------------------------

TEST(ShardView, StridedShardsAreDisjointAndCover) {
  Dataset ds = MakeGaussianClusters(103, 4, 2, 0.5, 27);
  std::size_t total = 0;
  std::set<std::size_t> seen;
  for (std::size_t r = 0; r < 4; ++r) {
    ShardView view = ShardView::Strided(ds, r, 4);
    EXPECT_FALSE(view.SharedFallback());
    total += view.Size();
    for (std::size_t i = 0; i < view.Size(); ++i) {
      EXPECT_EQ(view.GlobalIndex(i), r + 4 * i);
      seen.insert(view.GlobalIndex(i));
    }
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(seen.size(), 103u);
}

TEST(ShardView, SharesSequenceStorageInsteadOfCopying) {
  LengthModel lengths{.mean = 10, .stddev = 4, .min_len = 2, .max_len = 30};
  Dataset ds = MakeSequenceDataset(20, 3, 2, lengths, 0.1, 28);
  ShardView view = ShardView::Strided(ds, 1, 3);
  ASSERT_EQ(view.Size(), 7u);
  for (std::size_t i = 0; i < view.Size(); ++i) {
    // Pointer identity: the view's samples ARE the dataset's tensors.
    EXPECT_EQ(view.Sequence(i).Data(),
              ds.sequences[view.GlobalIndex(i)].Data());
  }
  // The per-worker footprint is the index list, far below the samples.
  EXPECT_LT(view.IndexBytes(), DatasetSampleBytes(ds) / 10);
}

TEST(ShardView, ThousandWorkerWorldDoesNotReplicateTheDataset) {
  // PR 9's 1000-worker worlds over Dataset::Shard copied the dataset
  // ×world. The views' combined extra footprint must stay below one
  // dataset's sample bytes.
  LengthModel lengths{.mean = 16, .stddev = 6, .min_len = 4, .max_len = 40};
  Dataset ds = MakeSequenceDataset(3000, 6, 3, lengths, 0.1, 29);
  const std::size_t sample_bytes = DatasetSampleBytes(ds);
  std::vector<ShardView> views;
  views.reserve(1000);
  std::size_t index_bytes = 0;
  for (std::size_t r = 0; r < 1000; ++r) {
    views.push_back(ShardView::Strided(ds, r, 1000));
    index_bytes += views.back().IndexBytes();
  }
  EXPECT_LT(index_bytes, sample_bytes / 10);
  // And every viewed sample still aliases the shared storage.
  EXPECT_EQ(views[500].Sequence(0).Data(),
            ds.sequences[views[500].GlobalIndex(0)].Data());
}

TEST(ShardView, EmptyStridedShardFallsBackToSharedSamples) {
  Dataset ds = MakeGaussianClusters(10, 4, 2, 0.5, 30);
  ShardView view = ShardView::Strided(ds, 800, 1000);
  EXPECT_TRUE(view.SharedFallback());
  EXPECT_EQ(view.Size(), 10u);
  ShardView in_range = ShardView::Strided(ds, 3, 5);
  EXPECT_FALSE(in_range.SharedFallback());
  EXPECT_EQ(in_range.Size(), 2u);
}

TEST(ShardView, MakeBatchRangeMatchesMakeBatch) {
  Dataset ds = MakeGaussianClusters(30, 3, 2, 0.5, 31);
  ShardView view = ShardView::All(ds);
  nn::Batch ranged = view.MakeBatchRange(10, 5);
  const std::size_t idx[] = {10, 11, 12, 13, 14};
  nn::Batch indexed = view.MakeBatch(idx);
  ASSERT_EQ(ranged.Size(), 5u);
  EXPECT_EQ(ranged.labels, indexed.labels);
  for (std::size_t i = 0; i < ranged.inputs.Size(); ++i) {
    EXPECT_EQ(ranged.inputs[i], indexed.inputs[i]);
  }
}

// --- BatchGenerator: streaming prefetch ----------------------------------

std::vector<nn::Batch> Collect(BatchGenerator& gen, int batches) {
  std::vector<nn::Batch> out;
  out.reserve(static_cast<std::size_t>(batches));
  for (int i = 0; i < batches; ++i) out.push_back(gen.Next());
  return out;
}

void ExpectIdenticalBatchStreams(const std::vector<nn::Batch>& a,
                                 const std::vector<nn::Batch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].labels, b[i].labels) << "batch " << i;
    ASSERT_EQ(a[i].sequences.size(), b[i].sequences.size());
    for (std::size_t s = 0; s < a[i].sequences.size(); ++s) {
      ASSERT_EQ(a[i].sequences[s].Rows(), b[i].sequences[s].Rows());
      for (std::size_t v = 0; v < a[i].sequences[s].Size(); ++v) {
        ASSERT_EQ(a[i].sequences[s][v], b[i].sequences[s][v]);
      }
    }
    ASSERT_EQ(a[i].inputs.Size(), b[i].inputs.Size());
    for (std::size_t v = 0; v < a[i].inputs.Size(); ++v) {
      ASSERT_EQ(a[i].inputs[v], b[i].inputs[v]);
    }
  }
}

TEST(BatchGenerator, PrefetchDoesNotPerturbTheBatchStream) {
  // The determinism contract: the emitted stream is bitwise-identical with
  // prefetching off (synchronous assembly) and on (background thread).
  LengthModel lengths{.mean = 15, .stddev = 8, .min_len = 2, .max_len = 50};
  Dataset ds = MakeSequenceDataset(60, 4, 2, lengths, 0.1, 32);
  for (SamplingMode mode :
       {SamplingMode::kUniform, SamplingMode::kLengthBucketed}) {
    BatchGeneratorOptions sync{.batch_size = 8, .seed = 33, .mode = mode,
                               .prefetch_depth = 0};
    BatchGeneratorOptions prefetch{.batch_size = 8, .seed = 33, .mode = mode,
                                   .prefetch_depth = 4};
    BatchGenerator a(ShardView::All(ds), sync);
    BatchGenerator b(ShardView::All(ds), prefetch);
    ExpectIdenticalBatchStreams(Collect(a, 30), Collect(b, 30));
    EXPECT_EQ(a.SynchronousAssemblies(), 30u);
    EXPECT_EQ(a.PrefetchedPops(), 0u);
    EXPECT_EQ(b.PrefetchedPops(), 30u);
    EXPECT_EQ(b.SynchronousAssemblies(), 0u);
  }
}

TEST(BatchGenerator, DensePrefetchStreamIsDeterministicToo) {
  Dataset ds = MakeGaussianClusters(50, 4, 2, 0.5, 34);
  BatchGeneratorOptions sync{.batch_size = 8, .seed = 35,
                             .prefetch_depth = 0};
  BatchGeneratorOptions prefetch{.batch_size = 8, .seed = 35,
                                 .prefetch_depth = 2};
  BatchGenerator a(ShardView::All(ds), sync);
  BatchGenerator b(ShardView::All(ds), prefetch);
  ExpectIdenticalBatchStreams(Collect(a, 20), Collect(b, 20));
}

TEST(BatchGenerator, BucketedBatchesGroupSimilarLengths) {
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 36);
  BatchGeneratorOptions opt{.batch_size = 8, .seed = 37,
                            .mode = SamplingMode::kLengthBucketed,
                            .prefetch_depth = 2};
  BatchGenerator gen(ShardView::All(ds), opt);
  common::OnlineStats dataset_lengths;
  for (const auto& seq : ds.sequences) {
    dataset_lengths.Add(static_cast<double>(seq.Rows()));
  }
  double mean_batch_spread = 0.0;
  const int batches = 50;
  for (int b = 0; b < batches; ++b) {
    nn::Batch batch = gen.Next();
    std::size_t lo = batch.sequences[0].Rows(), hi = lo;
    for (const auto& seq : batch.sequences) {
      lo = std::min(lo, seq.Rows());
      hi = std::max(hi, seq.Rows());
    }
    mean_batch_spread += static_cast<double>(hi - lo) / batches;
  }
  EXPECT_LT(mean_batch_spread, dataset_lengths.Stddev());
}

TEST(BatchGenerator, BucketedBatchTimesFollowLengthDistribution) {
  // The Fig. 2 property on the streaming path: per-batch total length must
  // vary like the sample length distribution, not average out.
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 38);
  auto batch_length_cv = [&](SamplingMode mode) {
    BatchGeneratorOptions opt{.batch_size = 8, .seed = 39, .mode = mode,
                              .prefetch_depth = 2};
    BatchGenerator gen(ShardView::All(ds), opt);
    common::OnlineStats totals;
    for (int b = 0; b < 200; ++b) {
      nn::Batch batch = gen.Next();
      double total = 0;
      for (const auto& seq : batch.sequences) {
        total += static_cast<double>(seq.Rows());
      }
      totals.Add(total);
    }
    return totals.Stddev() / totals.Mean();
  };
  EXPECT_GT(batch_length_cv(SamplingMode::kLengthBucketed),
            2.0 * batch_length_cv(SamplingMode::kUniform));
}

TEST(BatchGenerator, OversizedBatchDrawsUniformlyNotLongest) {
  // batch_size > view size: maxi-batch windows redraw uniformly, so no
  // sample — least of all the longest — dominates the emitted stream.
  LengthModel lengths{.mean = 12, .stddev = 8, .min_len = 2, .max_len = 60};
  Dataset ds = MakeSequenceDataset(6, 3, 2, lengths, 0.1, 40);
  BatchGeneratorOptions opt{.batch_size = 24, .seed = 41,
                            .mode = SamplingMode::kLengthBucketed,
                            .prefetch_depth = 0};
  BatchGenerator gen(ShardView::All(ds), opt);
  std::size_t max_len = 0;
  for (const auto& seq : ds.sequences) max_len = std::max(max_len, seq.Rows());
  std::size_t longest_count = 0, total = 0;
  for (int b = 0; b < 16; ++b) {
    nn::Batch batch = gen.Next();
    for (const auto& seq : batch.sequences) {
      ++total;
      longest_count += seq.Rows() == max_len;
    }
  }
  // Uniform draws give the longest sample ~1/6 of the slots (plus its
  // length-duplicates); the old clamp bias gave it over half.
  EXPECT_LT(static_cast<double>(longest_count),
            0.45 * static_cast<double>(total));
}

TEST(BatchGenerator, StopWhileProducerBlockedOnFullQueue) {
  Dataset ds = MakeGaussianClusters(40, 4, 2, 0.5, 42);
  BatchGeneratorOptions opt{.batch_size = 4, .seed = 43, .prefetch_depth = 1};
  auto gen = std::make_unique<BatchGenerator>(ShardView::All(ds), opt);
  // First Next() starts the producer; afterwards the producer assembles the
  // next batch and blocks pushing into the depth-1 queue.
  (void)gen->Next();
  gen.reset();  // Stop() must wake the blocked producer and join cleanly
}

TEST(BatchGenerator, DestructionWithoutConsumptionIsClean) {
  Dataset ds = MakeGaussianClusters(40, 4, 2, 0.5, 44);
  BatchGeneratorOptions opt{.batch_size = 4, .seed = 45, .prefetch_depth = 2};
  BatchGenerator gen(ShardView::All(ds), opt);
  // No Next() call: no producer thread was ever started.
}

TEST(BatchGenerator, RejectsEmptyViewAndZeroBatch) {
  Dataset ds = MakeGaussianClusters(10, 2, 2, 0.5, 46);
  Dataset empty;
  EXPECT_THROW(BatchGenerator(ShardView::All(empty), {.batch_size = 4}),
               std::logic_error);
  EXPECT_THROW(BatchGenerator(ShardView::All(ds), {.batch_size = 0}),
               std::logic_error);
}

TEST(Generators, SequenceClassesLearnableSignal) {
  // Mean per-class patterns should differ: crude separability check.
  LengthModel lengths{.mean = 20, .stddev = 5, .min_len = 10, .max_len = 40};
  Dataset ds = MakeSequenceDataset(60, 4, 2, lengths, 0.01, 14);
  double mean0 = 0, mean1 = 0;
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < ds.Size(); ++i) {
    const double m = ds.sequences[i].Sum() /
                     static_cast<double>(ds.sequences[i].Size());
    if (ds.labels[i] == 0) {
      mean0 += m;
      ++n0;
    } else {
      mean1 += m;
      ++n1;
    }
  }
  mean0 /= static_cast<double>(n0);
  mean1 /= static_cast<double>(n1);
  EXPECT_GT(std::abs(mean0 - mean1), 1e-3);
}

}  // namespace
}  // namespace rna::data
