// Tests for synthetic dataset generators, sharding, splitting, sampling.

#include <gtest/gtest.h>

#include <set>

#include "rna/common/stats.hpp"
#include "rna/data/generators.hpp"

namespace rna::data {
namespace {

TEST(Generators, GaussianClustersShapeAndLabels) {
  Dataset ds = MakeGaussianClusters(100, 8, 4, 0.5, 1);
  EXPECT_EQ(ds.Size(), 100u);
  EXPECT_FALSE(ds.IsSequence());
  EXPECT_EQ(ds.inputs.Rows(), 100u);
  EXPECT_EQ(ds.inputs.Cols(), 8u);
  std::set<std::int32_t> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(Generators, Deterministic) {
  Dataset a = MakeGaussianClusters(50, 4, 2, 0.5, 42);
  Dataset b = MakeGaussianClusters(50, 4, 2, 0.5, 42);
  for (std::size_t i = 0; i < a.inputs.Size(); ++i) {
    EXPECT_EQ(a.inputs[i], b.inputs[i]);
  }
  Dataset c = MakeGaussianClusters(50, 4, 2, 0.5, 43);
  bool differs = false;
  for (std::size_t i = 0; i < a.inputs.Size() && !differs; ++i) {
    differs = a.inputs[i] != c.inputs[i];
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, TwoSpiralsBalanced) {
  Dataset ds = MakeTwoSpirals(200, 2, 0.05, 2);
  std::size_t zeros = 0;
  for (auto label : ds.labels) zeros += label == 0;
  EXPECT_EQ(zeros, 100u);
}

TEST(Generators, SequenceDatasetLengthsVary) {
  LengthModel lengths{.mean = 20, .stddev = 10, .min_len = 4, .max_len = 80};
  Dataset ds = MakeSequenceDataset(100, 6, 3, lengths, 0.1, 3);
  EXPECT_TRUE(ds.IsSequence());
  std::set<std::size_t> seen;
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(seq.Rows(), 4u);
    EXPECT_LE(seq.Rows(), 80u);
    EXPECT_EQ(seq.Cols(), 6u);
    seen.insert(seq.Rows());
  }
  EXPECT_GT(seen.size(), 5u);  // genuinely variable lengths
}

TEST(LengthModel, MatchesConfiguredMoments) {
  // The Figure 2(a) distribution: mean 186, stddev 97.7, range [29, 1776].
  LengthModel m;  // defaults are the UCF101 calibration
  common::Rng rng(4);
  common::OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(m.Sample(rng)));
  }
  EXPECT_NEAR(stats.Mean(), 186.0, 6.0);
  EXPECT_NEAR(stats.Stddev(), 97.7, 8.0);
  EXPECT_GE(stats.Min(), 29.0);
  EXPECT_LE(stats.Max(), 1776.0);
}

TEST(LengthModel, ScaledPreservesShape) {
  LengthModel m = VideoLengths(8.0);
  common::Rng rng(5);
  common::OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(m.Sample(rng)));
  }
  EXPECT_NEAR(stats.Mean(), 186.0 / 8.0, 2.0);
}

TEST(Dataset, ShardsAreDisjointAndCover) {
  Dataset ds = MakeGaussianClusters(103, 4, 2, 0.5, 6);
  std::size_t total = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    Dataset shard = ds.Shard(r, 4);
    total += shard.Size();
    // Round-robin: shard r holds ds indices r, r+4, r+8, ...
    for (std::size_t i = 0; i < shard.Size(); ++i) {
      EXPECT_EQ(shard.labels[i], ds.labels[r + 4 * i]);
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(Dataset, ShardSequenceDataset) {
  LengthModel lengths{.mean = 10, .stddev = 4, .min_len = 2, .max_len = 30};
  Dataset ds = MakeSequenceDataset(20, 3, 2, lengths, 0.1, 7);
  Dataset shard = ds.Shard(1, 3);
  EXPECT_EQ(shard.Size(), 7u);  // indices 1,4,7,10,13,16,19
  EXPECT_EQ(shard.sequences[0].Rows(), ds.sequences[1].Rows());
}

TEST(Dataset, ShardValidation) {
  Dataset ds = MakeGaussianClusters(10, 2, 2, 0.5, 8);
  EXPECT_THROW(ds.Shard(3, 3), std::logic_error);
  EXPECT_THROW(ds.Shard(0, 0), std::logic_error);
}

TEST(Dataset, SplitHoldout) {
  Dataset ds = MakeGaussianClusters(100, 2, 2, 0.5, 9);
  auto [train, val] = ds.SplitHoldout(0.2);
  EXPECT_EQ(train.Size(), 80u);
  EXPECT_EQ(val.Size(), 20u);
  EXPECT_EQ(val.labels[0], ds.labels[80]);
}

TEST(Dataset, MakeBatchDense) {
  Dataset ds = MakeGaussianClusters(10, 3, 2, 0.5, 10);
  const std::size_t idx[] = {2, 7};
  nn::Batch b = ds.MakeBatch(idx);
  EXPECT_EQ(b.Size(), 2u);
  EXPECT_EQ(b.inputs.At(0, 0), ds.inputs.At(2, 0));
  EXPECT_EQ(b.inputs.At(1, 2), ds.inputs.At(7, 2));
  EXPECT_EQ(b.labels[1], ds.labels[7]);
}

TEST(BatchSampler, ProducesRequestedSize) {
  Dataset ds = MakeGaussianClusters(50, 4, 2, 0.5, 11);
  BatchSampler sampler(ds, 8, 12);
  for (int i = 0; i < 20; ++i) {
    nn::Batch b = sampler.Next();
    EXPECT_EQ(b.Size(), 8u);
    for (auto label : b.labels) {
      EXPECT_GE(label, 0);
      EXPECT_LT(label, 2);
    }
  }
}

TEST(BatchSampler, DifferentSeedsDifferentBatches) {
  Dataset ds = MakeGaussianClusters(1000, 2, 2, 0.5, 13);
  BatchSampler a(ds, 16, 1), b(ds, 16, 2);
  const nn::Batch ba = a.Next(), bb = b.Next();
  bool differs = false;
  for (std::size_t i = 0; i < 16 && !differs; ++i) {
    differs = ba.inputs.At(i, 0) != bb.inputs.At(i, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(BatchSampler, LengthBucketedGroupsSimilarLengths) {
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 15);
  BatchSampler sampler(ds, 8, 16, SamplingMode::kLengthBucketed);
  // Within-batch length spread must be far below the dataset-wide spread.
  common::OnlineStats dataset_lengths;
  for (const auto& seq : ds.sequences) {
    dataset_lengths.Add(static_cast<double>(seq.Rows()));
  }
  double mean_batch_spread = 0.0;
  const int batches = 50;
  for (int b = 0; b < batches; ++b) {
    nn::Batch batch = sampler.Next();
    std::size_t lo = batch.sequences[0].Rows(), hi = lo;
    for (const auto& seq : batch.sequences) {
      lo = std::min(lo, seq.Rows());
      hi = std::max(hi, seq.Rows());
    }
    mean_batch_spread += static_cast<double>(hi - lo) / batches;
  }
  EXPECT_LT(mean_batch_spread, dataset_lengths.Stddev());
}

TEST(BatchSampler, BucketedBatchTimesFollowLengthDistribution) {
  // The point of bucketing: per-batch total length varies like the sample
  // length distribution (not averaged out as with uniform mixing).
  LengthModel lengths{.mean = 30, .stddev = 25, .min_len = 2, .max_len = 200};
  Dataset ds = MakeSequenceDataset(400, 3, 2, lengths, 0.1, 16);
  auto batch_length_cv = [&](SamplingMode mode) {
    BatchSampler sampler(ds, 8, 17, mode);
    common::OnlineStats totals;
    for (int b = 0; b < 200; ++b) {
      nn::Batch batch = sampler.Next();
      double total = 0;
      for (const auto& seq : batch.sequences) {
        total += static_cast<double>(seq.Rows());
      }
      totals.Add(total);
    }
    return totals.Stddev() / totals.Mean();
  };
  EXPECT_GT(batch_length_cv(SamplingMode::kLengthBucketed),
            2.0 * batch_length_cv(SamplingMode::kUniform));
}

TEST(BatchSampler, BucketedFallsBackForDenseData) {
  Dataset ds = MakeGaussianClusters(50, 4, 2, 0.5, 18);
  BatchSampler sampler(ds, 8, 19, SamplingMode::kLengthBucketed);
  nn::Batch b = sampler.Next();  // must not crash; behaves as uniform
  EXPECT_EQ(b.Size(), 8u);
}

TEST(Generators, SequenceClassesLearnableSignal) {
  // Mean per-class patterns should differ: crude separability check.
  LengthModel lengths{.mean = 20, .stddev = 5, .min_len = 10, .max_len = 40};
  Dataset ds = MakeSequenceDataset(60, 4, 2, lengths, 0.01, 14);
  double mean0 = 0, mean1 = 0;
  std::size_t n0 = 0, n1 = 0;
  for (std::size_t i = 0; i < ds.Size(); ++i) {
    const double m = ds.sequences[i].Sum() /
                     static_cast<double>(ds.sequences[i].Size());
    if (ds.labels[i] == 0) {
      mean0 += m;
      ++n0;
    } else {
      mean1 += m;
      ++n1;
    }
  }
  mean0 /= static_cast<double>(n0);
  mean1 /= static_cast<double>(n1);
  EXPECT_GT(std::abs(mean0 - mean1), 1e-3);
}

}  // namespace
}  // namespace rna::data
