// Tests for the compressed collective policy layer:
//   - wire codec round-trips (raw bitwise; fp16/int8 within per-chunk
//     quantization bounds; top-k exact on kept values) across awkward sizes;
//   - the exact tail rides bit-for-bit through every lossy format;
//   - top-k selection order and tie-breaking are deterministic;
//   - error feedback makes the time-averaged lossy encoding unbiased;
//   - encoding is pool-allocation-free in steady state;
//   - Parse/Name round-trips for both policy enums;
//   - schedule × compression allreduces agree across ranks on awkward
//     sizes, and tree vs ring agree exactly on integer-valued floats.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "rna/collectives/allreduce.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/wire.hpp"

namespace rna {
namespace {

using collectives::Compression;
using collectives::Group;
using collectives::Schedule;
namespace wire = net::wire;

const std::size_t kSizes[] = {0, 1, 2, 3, 5, 7, 13, 31, 97, 1000};

std::vector<float> TestVector(std::size_t n, std::uint32_t salt) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<float>((i * 2654435761u + salt) % 1000);
    v[i] = (k - 500.0f) * 0.01f + 1e-4f * static_cast<float>(i % 11);
  }
  return v;
}

float MaxAbs(std::span<const float> v) {
  float m = 0.0f;
  for (const float x : v) m = std::max(m, std::fabs(x));
  return m;
}

::testing::AssertionResult BitwiseEqual(std::span<const float> a,
                                        std::span<const float> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Codec round-trips.

TEST(WireCodec, RawRoundTripIsBitwiseAndHeaderless) {
  net::BufferPool pool;
  for (const std::size_t n : kSizes) {
    const auto src = TestVector(n, 1);
    auto payload = wire::Encode(pool, wire::Format::kRaw, src, {}, 0, 0);
    EXPECT_EQ(payload.size(), n) << "kRaw must not frame";
    EXPECT_TRUE(BitwiseEqual(payload, src));
    std::vector<float> dst(n, -7.0f);
    wire::Decode(wire::Format::kRaw, payload, dst, wire::Fold::kAssign, 0);
    EXPECT_TRUE(BitwiseEqual(dst, src)) << "n=" << n;
    pool.Recycle(std::move(payload));
  }
}

TEST(WireCodec, Fp16RoundTripWithinHalfPrecisionBound) {
  net::BufferPool pool;
  for (const std::size_t n : kSizes) {
    const auto src = TestVector(n, 2);
    auto payload = wire::Encode(pool, wire::Format::kFp16, src, {}, 0, 0);
    EXPECT_EQ(payload.size(), wire::EncodedWords(wire::Format::kFp16, n, 0, 0));
    std::vector<float> dst(n, 0.0f);
    wire::Decode(wire::Format::kFp16, payload, dst, wire::Fold::kAssign, 0);
    // Error budget: half precision (11-bit significand) applied to values
    // normalized by the per-chunk scale.
    const float bound = MaxAbs(src) * (1.0f / 1024.0f) + 1e-6f;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(dst[i], src[i], bound) << "n=" << n << " i=" << i;
    }
    pool.Recycle(std::move(payload));
  }
}

TEST(WireCodec, Int8RoundTripWithinQuantizationStep)  {
  net::BufferPool pool;
  for (const std::size_t n : kSizes) {
    const auto src = TestVector(n, 3);
    auto payload = wire::Encode(pool, wire::Format::kInt8, src, {}, 0, 0);
    EXPECT_EQ(payload.size(), wire::EncodedWords(wire::Format::kInt8, n, 0, 0));
    std::vector<float> dst(n, 0.0f);
    wire::Decode(wire::Format::kInt8, payload, dst, wire::Fold::kAssign, 0);
    // One quantization step is scale = max|v|/127; rounding keeps every
    // element within half a step (plus float slack).
    const float bound = MaxAbs(src) / 127.0f * 0.51f + 1e-6f;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(dst[i], src[i], bound) << "n=" << n << " i=" << i;
    }
    pool.Recycle(std::move(payload));
  }
}

TEST(WireCodec, TopKKeepsExactValuesAndZeroesTheRest) {
  net::BufferPool pool;
  for (const std::size_t n : kSizes) {
    const auto src = TestVector(n, 4);
    const std::size_t k = wire::TopKCount(n, 0.3);
    auto payload = wire::Encode(pool, wire::Format::kTopK, src, {}, k, 0);
    EXPECT_EQ(payload.size(), wire::EncodedWords(wire::Format::kTopK, n, k, 0));
    std::vector<float> dst(n, -1.0f);
    wire::Decode(wire::Format::kTopK, payload, dst, wire::Fold::kAssign, 0);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dst[i] != 0.0f) {
        // Kept values are transported bit-exactly, not quantized.
        ASSERT_EQ(dst[i], src[i]) << "n=" << n << " i=" << i;
        ++kept;
      }
    }
    // Every selected slot carries a value; zeros of the input may collide
    // with dropped slots, so kept ≤ k with equality for nonzero inputs.
    EXPECT_LE(kept, k);
    if (n > 0) EXPECT_GT(k, 0u);
    pool.Recycle(std::move(payload));
  }
}

TEST(WireCodec, TopKFullFractionIsLossless) {
  net::BufferPool pool;
  const auto src = TestVector(97, 5);
  const std::size_t k = wire::TopKCount(src.size(), 1.0);
  EXPECT_EQ(k, src.size());
  auto payload = wire::Encode(pool, wire::Format::kTopK, src, {}, k, 0);
  std::vector<float> dst(src.size(), 0.0f);
  wire::Decode(wire::Format::kTopK, payload, dst, wire::Fold::kAssign, 0);
  EXPECT_TRUE(BitwiseEqual(dst, src));
  pool.Recycle(std::move(payload));
}

TEST(WireCodec, TopKSelectionBreaksTiesByLowestIndex) {
  net::BufferPool pool;
  const std::vector<float> src = {1.0f, -3.0f, 2.0f, 3.0f, -3.0f};
  auto payload = wire::Encode(pool, wire::Format::kTopK, src, {}, 2, 0);
  std::vector<float> dst(src.size(), 0.0f);
  wire::Decode(wire::Format::kTopK, payload, dst, wire::Fold::kAssign, 0);
  // |−3| = |3| = |−3| tie for the top-2: the two lowest indices win.
  const std::vector<float> expected = {0.0f, -3.0f, 0.0f, 3.0f, 0.0f};
  EXPECT_TRUE(BitwiseEqual(dst, expected));
  pool.Recycle(std::move(payload));
}

TEST(WireCodec, DecodeAddFoldsSparseAndDense) {
  net::BufferPool pool;
  const std::vector<float> src = {1.0f, -4.0f, 2.0f, 8.0f};
  std::vector<float> dst = {10.0f, 10.0f, 10.0f, 10.0f};
  auto payload = wire::Encode(pool, wire::Format::kTopK, src, {}, 2, 0);
  wire::Decode(wire::Format::kTopK, payload, dst, wire::Fold::kAdd, 0);
  // Top-2 by magnitude: −4 and 8 fold in; the rest stay untouched.
  const std::vector<float> expected = {10.0f, 6.0f, 10.0f, 18.0f};
  EXPECT_TRUE(BitwiseEqual(dst, expected));
  pool.Recycle(std::move(payload));
}

TEST(WireCodec, ExactTailRidesBitwiseThroughEveryFormat) {
  net::BufferPool pool;
  for (const auto f : {wire::Format::kFp16, wire::Format::kInt8,
                       wire::Format::kTopK}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{13}, std::size_t{97}}) {
      auto src = TestVector(n, 6);
      src.back() = 3.0f;  // a contributor-count-style exact payload
      const std::size_t k =
          f == wire::Format::kTopK ? wire::TopKCount(n - 1, 0.5) : 0;
      auto payload = wire::Encode(pool, f, src, {}, k, /*exact_tail=*/1);
      std::vector<float> dst(n, -1.0f);
      wire::Decode(f, payload, dst, wire::Fold::kAssign, /*exact_tail=*/1);
      std::uint32_t a, b;
      std::memcpy(&a, &dst.back(), sizeof(a));
      std::memcpy(&b, &src.back(), sizeof(b));
      EXPECT_EQ(a, b) << wire::FormatName(f) << " n=" << n;
      pool.Recycle(std::move(payload));
    }
  }
}

TEST(WireCodec, CompressedFramesAreSmaller) {
  // The point of the exercise: for realistically sized chunks the framed
  // formats beat raw by ~2× (fp16), ~4× (int8), ~1/fraction (top-k).
  const std::size_t n = 1 << 14;
  const std::size_t k = wire::TopKCount(n, 0.05);
  EXPECT_LE(wire::EncodedWords(wire::Format::kFp16, n, 0, 0), n / 2 + 4);
  EXPECT_LE(wire::EncodedWords(wire::Format::kInt8, n, 0, 0), n / 4 + 4);
  EXPECT_LE(wire::EncodedWords(wire::Format::kTopK, n, k, 0),
            2 * k + 4);
}

TEST(WireCodec, EncodeIsPoolAllocationFreeInSteadyState) {
  net::BufferPool pool;
  const auto src = TestVector(1000, 7);
  for (const auto f : {wire::Format::kRaw, wire::Format::kFp16,
                       wire::Format::kInt8, wire::Format::kTopK}) {
    const std::size_t k =
        f == wire::Format::kTopK ? wire::TopKCount(src.size(), 0.1) : 0;
    pool.Recycle(wire::Encode(pool, f, src, {}, k, 0));  // warmup
    const auto warm = pool.GetStats();
    for (int i = 0; i < 8; ++i) {
      pool.Recycle(wire::Encode(pool, f, src, {}, k, 0));
    }
    EXPECT_EQ(pool.GetStats().misses, warm.misses)
        << wire::FormatName(f) << " still allocating";
  }
}

// ---------------------------------------------------------------------------
// Error feedback.

TEST(ErrorFeedback, MakesLossyEncodingUnbiasedOverTime) {
  // The EF identity: Σ_t decode(encode(v + r_t)) = T·v − r_T, so with the
  // residual bounded the time-averaged transmitted value converges to v.
  net::BufferPool pool;
  for (const auto f : {wire::Format::kInt8, wire::Format::kTopK}) {
    const auto src = TestVector(31, 8);
    std::vector<float> residual(src.size(), 0.0f);
    std::vector<float> sum(src.size(), 0.0f);
    const int kRounds = 64;
    const std::size_t k =
        f == wire::Format::kTopK ? wire::TopKCount(src.size(), 0.2) : 0;
    for (int t = 0; t < kRounds; ++t) {
      auto payload = wire::Encode(pool, f, src, residual, k, 0);
      wire::Decode(f, payload, sum, wire::Fold::kAdd, 0);
      pool.Recycle(std::move(payload));
    }
    const float bound = MaxAbs(src) * 0.05f + 1e-3f;
    for (std::size_t i = 0; i < src.size(); ++i) {
      ASSERT_NEAR(sum[i] / static_cast<float>(kRounds), src[i], bound)
          << wire::FormatName(f) << " i=" << i;
    }
  }
}

TEST(ErrorFeedback, EnsureSizePreservesOnGrowthZeroesOnShrink) {
  collectives::ErrorFeedback feedback;
  feedback.EnsureSize(4);
  EXPECT_EQ(feedback.Size(), 4u);
  feedback.All()[2] = 0.5f;
  feedback.EnsureSize(8);  // growth keeps accumulated residuals
  EXPECT_EQ(feedback.Size(), 8u);
  EXPECT_EQ(feedback.All()[2], 0.5f);
  EXPECT_EQ(feedback.All()[7], 0.0f);
  feedback.EnsureSize(3);  // shrink = new model shape: residuals reset
  EXPECT_EQ(feedback.Size(), 3u);
  EXPECT_EQ(feedback.All()[2], 0.0f);
  feedback.EnsureSize(3);
  EXPECT_EQ(feedback.Size(), 3u);
}

// ---------------------------------------------------------------------------
// Policy enums.

TEST(PolicyEnums, CompressionParseNameRoundTrip) {
  for (const auto c : {Compression::kNone, Compression::kFp16,
                       Compression::kInt8, Compression::kTopK}) {
    const auto parsed = collectives::ParseCompression(
        collectives::CompressionName(c));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, c);
  }
  EXPECT_FALSE(collectives::ParseCompression("gzip").has_value());
}

TEST(PolicyEnums, ScheduleParseNameRoundTrip) {
  for (const auto s : {Schedule::kRing, Schedule::kTree,
                       Schedule::kStragglar}) {
    const auto parsed =
        collectives::ParseSchedule(collectives::ScheduleName(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(collectives::ParseSchedule("butterfly").has_value());
}

// ---------------------------------------------------------------------------
// End-to-end schedule × compression allreduces.

void OnAllRanks(std::size_t world,
                const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] { body(r); });
  }
  for (auto& t : threads) t.join();
}

TEST(ScheduleAllreduce, TreeMatchesRingExactlyOnIntegerValues) {
  // Small-integer sums are exact in float regardless of fold order, so
  // tree and ring must agree bitwise even though their hop graphs differ.
  for (const std::size_t world : {std::size_t{2}, std::size_t{3},
                                  std::size_t{4}, std::size_t{7}}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                                std::size_t{97}}) {
      std::vector<std::vector<float>> ring_data(world), tree_data(world);
      for (std::size_t r = 0; r < world; ++r) {
        ring_data[r].resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          ring_data[r][i] =
              static_cast<float>((r * 7 + i * 3) % 50) - 25.0f;
        }
        tree_data[r] = ring_data[r];
      }
      net::Fabric ring_fabric(world), tree_fabric(world);
      const Group group = Group::Full(world);
      OnAllRanks(world, [&](std::size_t r) {
        collectives::CollectiveOptions ring_opts;
        ring_opts.tag_base = 50;
        collectives::Allreduce({ring_fabric, group, r}, ring_opts,
                               ring_data[r]);
        collectives::CollectiveOptions tree_opts = ring_opts;
        tree_opts.schedule = Schedule::kTree;
        collectives::Allreduce({tree_fabric, group, r}, tree_opts,
                               tree_data[r]);
      });
      for (std::size_t r = 0; r < world; ++r) {
        EXPECT_TRUE(BitwiseEqual(tree_data[r], ring_data[r]))
            << "world=" << world << " n=" << n << " rank=" << r;
      }
    }
  }
}

TEST(ScheduleAllreduce, StragglarSumsCorrectlyForEveryStragglerPosition) {
  const std::size_t world = 4, n = 23;
  for (std::size_t straggler = 0; straggler < world; ++straggler) {
    net::Fabric fabric(world);
    const Group group = Group::Full(world);
    std::vector<std::vector<float>> data(world);
    for (std::size_t r = 0; r < world; ++r) {
      data[r].assign(n, static_cast<float>(r + 1));
    }
    OnAllRanks(world, [&](std::size_t r) {
      collectives::CollectiveOptions opts;
      opts.schedule = Schedule::kStragglar;
      opts.straggler = straggler;
      opts.tag_base = 80;
      collectives::Allreduce({fabric, group, r}, opts, data[r]);
    });
    for (std::size_t r = 0; r < world; ++r) {
      for (const float x : data[r]) {
        ASSERT_EQ(x, 10.0f) << "straggler=" << straggler << " rank=" << r;
      }
    }
  }
}

using ComboParam = std::tuple<Schedule, Compression>;

class ScheduleCompressionCombo
    : public ::testing::TestWithParam<ComboParam> {};

TEST_P(ScheduleCompressionCombo, AllRanksIdenticalAndNearExactOnAwkwardSizes) {
  const auto [schedule, compression] = GetParam();
  const std::size_t world = 4;
  for (const std::size_t n : {std::size_t{1}, std::size_t{3},
                              std::size_t{5}, std::size_t{97}}) {
    net::Fabric fabric(world);
    const Group group = Group::Full(world);
    std::vector<std::vector<float>> data(world);
    std::vector<float> expected(n, 0.0f);
    for (std::size_t r = 0; r < world; ++r) {
      data[r] = TestVector(n, static_cast<std::uint32_t>(9 + r));
      for (std::size_t i = 0; i < n; ++i) expected[i] += data[r][i];
    }
    std::vector<collectives::ErrorFeedback> feedback(world);
    OnAllRanks(world, [&](std::size_t r) {
      collectives::CollectiveOptions opts;
      opts.schedule = schedule;
      opts.compression = compression;
      opts.topk_fraction = 1.0;  // keep-all: sparsity loss out of the way
      opts.feedback = &feedback[r];
      opts.tag_base = 60;
      if (schedule == Schedule::kStragglar) opts.straggler = 2;
      collectives::Allreduce({fabric, group, r}, opts, data[r]);
    });
    // Compression tolerance scales with the chunk dynamic range; keep-all
    // top-k transports exact values.
    const float scale = MaxAbs(expected);
    const float tol = compression == Compression::kNone ||
                              compression == Compression::kTopK
                          ? 1e-5f
                          : scale * 0.05f + 1e-4f;
    for (std::size_t r = 0; r < world; ++r) {
      EXPECT_TRUE(BitwiseEqual(data[r], data[0]))
          << "ranks disagree, n=" << n;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(data[r][i], expected[i], tol)
            << "n=" << n << " rank=" << r << " i=" << i;
      }
    }
  }
}

std::string ComboName(const ::testing::TestParamInfo<ComboParam>& info) {
  const auto [schedule, compression] = info.param;
  return std::string(collectives::ScheduleName(schedule)) + "_" +
         collectives::CompressionName(compression);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleCompressionCombo,
    ::testing::Combine(::testing::Values(Schedule::kRing, Schedule::kTree,
                                         Schedule::kStragglar),
                       ::testing::Values(Compression::kNone,
                                         Compression::kFp16,
                                         Compression::kInt8,
                                         Compression::kTopK)),
    ComboName);

}  // namespace
}  // namespace rna
