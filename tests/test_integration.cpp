// End-to-end integration tests: every synchronization protocol trains a
// small MLP on separable synthetic data and must actually learn it. These
// exercise the full stack — fabric, collectives, stages, controller,
// parameter server, monitor — under real thread concurrency.

#include <gtest/gtest.h>

#include <memory>

#include "rna/baselines/baselines.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/partial_engine.hpp"

namespace rna {
namespace {

using core::RunTraining;
using train::ModelFactory;
using train::Protocol;
using train::TrainerConfig;
using train::TrainResult;

struct Scenario {
  data::Dataset train;
  data::Dataset val;
  ModelFactory factory;
};

Scenario MakeMlpScenario(std::uint64_t seed = 1) {
  Scenario s;
  data::Dataset all = data::MakeGaussianClusters(1200, 8, 4, 0.35, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{8, 24, 4}, model_seed);
  };
  return s;
}

TrainerConfig BaseConfig(Protocol protocol, std::size_t rounds = 120) {
  TrainerConfig c;
  c.protocol = protocol;
  c.world = 4;
  c.batch_size = 16;
  c.sgd.learning_rate = 0.15;
  c.sgd.momentum = 0.9;
  c.max_rounds = rounds;
  c.patience = 0;          // no early stop: deterministic round count
  c.eval_period_s = 0.01;
  c.seed = 99;
  return c;
}

void ExpectLearned(const TrainResult& r, double min_accuracy = 0.78) {
  EXPECT_GT(r.rounds, 0u);
  EXPECT_GT(r.gradients_applied, 0u);
  EXPECT_GT(r.final_accuracy, min_accuracy);
  EXPECT_LT(r.final_loss, 0.9);  // well below ln(4) ≈ 1.386
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(Integration, HorovodLearns) {
  Scenario s = MakeMlpScenario();
  const TrainResult r = RunTraining(BaseConfig(Protocol::kHorovod), s.factory,
                                    s.train, s.val);
  ExpectLearned(r);
  EXPECT_EQ(r.rounds, 120u);
  EXPECT_EQ(r.gradients_applied, 120u * 4);  // BSP: everyone, every round
  ASSERT_EQ(r.breakdown.size(), 4u);
  for (const auto& b : r.breakdown) {
    EXPECT_EQ(b.iterations, 120u);
    EXPECT_GT(b.compute, 0.0);
  }
}

TEST(Integration, RnaLearns) {
  Scenario s = MakeMlpScenario();
  const TrainResult r =
      RunTraining(BaseConfig(Protocol::kRna, 250), s.factory, s.train, s.val);
  ExpectLearned(r);
  EXPECT_EQ(r.rounds, 250u);
  EXPECT_GT(r.gradients_applied, 0u);
  ASSERT_EQ(r.breakdown.size(), 4u);
}

TEST(Integration, EagerSgdLearns) {
  // eager-SGD's diluted updates (÷N with stale/absent workers) learn more
  // slowly per round than RNA's re-weighted ones; give it a longer budget.
  Scenario s = MakeMlpScenario();
  const TrainResult r = RunTraining(BaseConfig(Protocol::kEagerSgd, 450),
                                    s.factory, s.train, s.val);
  ExpectLearned(r, 0.72);
}

TEST(Integration, AdPsgdLearns) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kAdPsgd, 300);
  c.sgd.learning_rate = 0.1;  // plain SGD (no momentum in gossip averaging)
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.7);
}

TEST(Integration, HierarchicalRnaLearns) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRnaHierarchical);
  // Two deterministic speed tiers (the slow tier 3× the fast one, matching
  // the paper's heterogeneity regime) so calibration forms two groups; both
  // groups keep making progress and the PS averages them.
  c.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.001, std::vector<double>{0.0, 0.0, 0.002, 0.002});
  c.calibration_iters = 4;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.75);
}

TEST(Integration, RnaStopsAtTargetLoss) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna, 100000);
  c.target_loss = 0.5;
  c.eval_period_s = 0.005;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.rounds, 100000u);
  EXPECT_LT(r.final_loss, 0.7);  // near the target at stop time
}

TEST(Integration, HorovodEarlyStopsOnPatience) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kHorovod, 100000);
  c.patience = 8;
  c.eval_period_s = 0.005;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  EXPECT_TRUE(r.early_stopped || r.reached_target);
  EXPECT_LT(r.rounds, 100000u);
}

TEST(Integration, RnaWithStragglersStillLearns) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna);
  // One worker consistently 5 ms slower: the partial collective must keep
  // the rest productive and convergence intact.
  c.max_rounds = 250;
  c.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0, std::vector<double>{0.005, 0.0, 0.0, 0.0});
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.72);
}

TEST(Integration, RnaFasterThanHorovodUnderStragglers) {
  // The headline claim, miniaturized: same round count, injected random
  // slowdowns — RNA's wall time per round must beat BSP's.
  Scenario s = MakeMlpScenario();
  auto delays = std::make_shared<sim::UniformSlowdownModel>(0.0, 0.0, 0.006);

  TrainerConfig bsp = BaseConfig(Protocol::kHorovod, 60);
  bsp.delay_model = delays;
  TrainerConfig rna = BaseConfig(Protocol::kRna, 60);
  rna.delay_model = delays;

  const TrainResult rb = RunTraining(bsp, s.factory, s.train, s.val);
  const TrainResult rr = RunTraining(rna, s.factory, s.train, s.val);
  EXPECT_LT(rr.MeanRoundTime(), rb.MeanRoundTime());
}

TEST(Integration, LrPolicyConstantAlsoConverges) {
  // Constant LR under partial participation is the fragile configuration
  // the Linear Scaling Rule exists to avoid (§3.3); with the full-strength
  // step applied every partial round it only converges with a gentler
  // optimizer, so this ablation uses reduced momentum.
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna);
  c.lr_policy = train::LrScalePolicy::kConstant;
  c.sgd.momentum = 0.5;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.75);
}

TEST(Integration, CombinePolicies) {
  Scenario s = MakeMlpScenario();
  for (auto combine : {train::LocalCombine::kWeightedAverage,
                       train::LocalCombine::kMean,
                       train::LocalCombine::kLatest}) {
    TrainerConfig c = BaseConfig(Protocol::kRna, 200);
    c.combine = combine;
    const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
    // Round composition under real thread timing is nondeterministic, and
    // kLatest deliberately discards buffered work, so the bar is modest;
    // all three combine policies must still learn.
    EXPECT_GT(r.final_accuracy, 0.6)
        << "combine policy " << static_cast<int>(combine);
    EXPECT_LT(r.final_loss, 1.1);
  }
}

TEST(Integration, SingleWorkerDegeneratesGracefully) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna, 150);
  c.world = 1;
  // RunTraining now validates probe_choices <= world instead of silently
  // capping; a single-worker run probes its only worker.
  c.probe_choices = 1;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.7);
}

TEST(Integration, SoloPolicyTrainsViaEngine) {
  // The solo collective is the most aggressive trigger — the paper notes it
  // can hurt convergence (§7.3), so this test only demands that the engine
  // runs it correctly and still learns with a gentle optimizer.
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna, 300);
  c.sgd.learning_rate = 0.05;
  c.sgd.momentum = 0.0;
  const TrainResult r = train::RunPartialCollective(
      c, s.factory, s.train, s.val, [] { return train::MakeSoloPolicy(); });
  EXPECT_EQ(r.rounds, 300u);
  EXPECT_GT(r.final_accuracy, 0.5);
  EXPECT_LT(r.final_loss, 1.3);
}

TEST(Integration, LrDecayScheduleFreezesTraining) {
  // Decaying the learning rate to zero after a handful of rounds must
  // freeze the model near its initial loss — a behavioural check that the
  // schedule fires identically on every worker.
  Scenario s = MakeMlpScenario();
  TrainerConfig frozen = BaseConfig(Protocol::kRna, 150);
  frozen.lr_decay_rounds = {1};
  frozen.lr_decay_factor = 0.0;
  const TrainResult rf = RunTraining(frozen, s.factory, s.train, s.val);

  TrainerConfig normal = BaseConfig(Protocol::kRna, 150);
  const TrainResult rn = RunTraining(normal, s.factory, s.train, s.val);

  EXPECT_GT(rf.final_loss, 1.0);        // barely moved from ln(4)≈1.386
  EXPECT_LT(rn.final_loss, 0.8);        // normal run learns
  EXPECT_GT(rf.final_loss, rn.final_loss + 0.3);
}

TEST(Integration, LrDecayScheduleOnHorovod) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kHorovod, 120);
  c.lr_decay_rounds = {1};
  c.lr_decay_factor = 0.0;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  EXPECT_GT(r.final_loss, 1.0);
}

TEST(Integration, SgpLearns) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kSgp, 400);
  c.sgd.learning_rate = 0.1;
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.7);
  // One push-sum exchange per worker per iteration; shutdown may clip the
  // last iteration of a worker whose peer exited first.
  EXPECT_GE(r.gradients_applied, 400u * 4 - 4);
  EXPECT_LE(r.gradients_applied, 400u * 4);
}

TEST(Integration, CentralizedPsLearns) {
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kCentralizedPs, 300);
  c.sgd.learning_rate = 0.3;  // plain async SGD, no momentum on the server
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ExpectLearned(r, 0.7);
}

TEST(Integration, FinalParamsMatchReportedAccuracy) {
  // The returned final_params must be the model the final metrics describe.
  Scenario s = MakeMlpScenario();
  TrainerConfig c = BaseConfig(Protocol::kRna, 100);
  const TrainResult r = RunTraining(c, s.factory, s.train, s.val);
  ASSERT_FALSE(r.final_params.empty());
  auto net = s.factory(c.model_seed);
  ASSERT_EQ(r.final_params.size(), net->ParamCount());
  const nn::BatchResult eval =
      train::EvaluateDataset(*net, r.final_params, s.val);
  EXPECT_NEAR(eval.loss, r.final_loss, 1e-6);
  EXPECT_NEAR(eval.Accuracy(), r.final_accuracy, 1e-9);
}

TEST(Integration, LstmSequenceWorkloadLearns) {
  // The inherent-load-imbalance workload end to end (scaled far down).
  data::LengthModel lengths{.mean = 12, .stddev = 6, .min_len = 4,
                            .max_len = 32};
  data::Dataset all = data::MakeSequenceDataset(360, 6, 3, lengths, 0.05, 3);
  auto [train_ds, val_ds] = all.SplitHoldout(0.2);
  ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::LstmClassifier>(6, 16, 3, seed, 0.0);
  };
  TrainerConfig c = BaseConfig(Protocol::kRna, 150);
  c.batch_size = 8;
  c.sgd.learning_rate = 0.3;
  const train::TrainResult r =
      RunTraining(c, factory, train_ds, val_ds);
  EXPECT_GT(r.final_accuracy, 0.6);
  EXPECT_LT(r.final_loss, 1.0);  // below ln(3) ≈ 1.099
}

}  // namespace
}  // namespace rna
