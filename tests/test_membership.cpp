// Property tests for the elastic-membership layer: the sharded
// ReadinessBoard against a naive reference model, the MembershipDirectory
// state machine (every rank in exactly one state, epochs monotonic), ring
// re-formation (single cycle over the active set after any join/leave
// schedule), the capped grouping rule, the bounded-fan-in PS tree, and the
// disjointness of the round-indexed tag ranges the analyzer's tag model
// assumes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "rna/common/rng.hpp"
#include "rna/core/rna.hpp"
#include "rna/ps/sharded.hpp"
#include "rna/train/membership.hpp"
#include "rna/train/sharding.hpp"
#include "rna/train/tags.hpp"

namespace rna::train {
namespace {

// ---------------------------------------------------------------- readiness

TEST(ReadinessBoard, StartsEmpty) {
  ReadinessBoard board(10);
  EXPECT_EQ(board.Size(), 10u);
  EXPECT_EQ(board.ReadyRanks(), 0u);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_EQ(board.Count(r), 0);
}

TEST(ReadinessBoard, AddAndClearMaintainAggregates) {
  ReadinessBoard board(130);  // spans three default shards
  board.Add(0, 1);
  board.Add(64, 2);
  board.Add(129, 1);
  EXPECT_EQ(board.ReadyRanks(), 3u);
  EXPECT_EQ(board.ReadyRanksInShard(0), 1u);
  EXPECT_EQ(board.ReadyRanksInShard(1), 1u);
  EXPECT_EQ(board.ReadyRanksInShard(2), 1u);
  board.Clear(64);
  EXPECT_EQ(board.Count(64), 0);
  EXPECT_EQ(board.ReadyRanks(), 2u);
  EXPECT_EQ(board.ReadyRanksInShard(1), 0u);
}

TEST(ReadinessBoard, NegativeCountsAreNotReady) {
  // A round report can decrement before the matching kReady lands.
  ReadinessBoard board(4);
  board.Add(2, -3);
  EXPECT_EQ(board.Count(2), -3);
  EXPECT_EQ(board.ReadyRanks(), 0u);
  board.Add(2, 3);  // the late notifications arrive: still not positive
  EXPECT_EQ(board.ReadyRanks(), 0u);
  board.Add(2, 1);
  EXPECT_EQ(board.ReadyRanks(), 1u);
}

// Property: after any random op sequence the board matches a naive
// per-rank recount, and the shard tallies sum to the global one.
class ReadinessFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ReadinessFuzz, MatchesNaiveReferenceModel) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t world = 1 + rng.UniformInt(300);
  const std::size_t shard_size = 1 + rng.UniformInt(70);
  ReadinessBoard board(world, shard_size);
  std::vector<std::int64_t> reference(world, 0);
  for (int op = 0; op < 2000; ++op) {
    const std::size_t rank = rng.UniformInt(world);
    if (rng.UniformInt(8) == 0) {
      board.Clear(rank);
      reference[rank] = 0;
    } else {
      const auto delta = static_cast<std::int64_t>(rng.UniformInt(5)) - 2;
      board.Add(rank, delta);
      reference[rank] += delta;
    }
  }
  std::size_t expect_ready = 0;
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(board.Count(r), reference[r]);
    if (reference[r] > 0) ++expect_ready;
  }
  EXPECT_EQ(board.ReadyRanks(), expect_ready);
  std::size_t shard_sum = 0;
  for (std::size_t s = 0; s < board.ShardCount(); ++s) {
    shard_sum += board.ReadyRanksInShard(s);
  }
  EXPECT_EQ(shard_sum, expect_ready);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadinessFuzz, ::testing::Range(1, 25));

// ---------------------------------------------------------- directory

std::vector<net::Rank> Ranks(std::size_t n) {
  std::vector<net::Rank> ranks(n);
  std::iota(ranks.begin(), ranks.end(), net::Rank{0});
  return ranks;
}

TEST(MembershipDirectory, FoundingMembersStartActive) {
  MembershipDirectory directory(Ranks(4), {});
  EXPECT_EQ(directory.ActiveCount(), 4u);
  EXPECT_EQ(directory.ActiveMembers(), Ranks(4));
  EXPECT_TRUE(directory.SyncingMembers().empty());
  EXPECT_EQ(directory.Epoch(), 0u);
}

TEST(MembershipDirectory, JoinGoesThroughSyncing) {
  std::vector<ElasticSchedule> schedule = {{.rank = 2, .join_at_round = 3}};
  MembershipDirectory directory(Ranks(4), schedule);
  EXPECT_EQ(directory.StateOf(2), MemberState::kPending);
  EXPECT_EQ(directory.ActiveCount(), 3u);

  auto delta = directory.BeginRound(2);
  EXPECT_TRUE(delta.joining.empty());
  delta = directory.BeginRound(3);
  ASSERT_EQ(delta.joining, (std::vector<net::Rank>{2}));
  EXPECT_EQ(directory.StateOf(2), MemberState::kSyncing);
  EXPECT_EQ(directory.SyncingMembers(), (std::vector<net::Rank>{2}));
  EXPECT_EQ(directory.ActiveCount(), 3u);  // not yet a ring member

  directory.OnSynced(2);
  EXPECT_EQ(directory.StateOf(2), MemberState::kActive);
  EXPECT_EQ(directory.ActiveCount(), 4u);
  EXPECT_EQ(directory.JoinedTotal(), 1u);
}

TEST(MembershipDirectory, LeaveAtScheduledRound) {
  std::vector<ElasticSchedule> schedule = {
      {.rank = 1, .join_at_round = 0, .leave_at_round = 5}};
  MembershipDirectory directory(Ranks(3), schedule);
  EXPECT_EQ(directory.ActiveCount(), 3u);
  auto delta = directory.BeginRound(5);
  ASSERT_EQ(delta.leaving, (std::vector<net::Rank>{1}));
  EXPECT_EQ(directory.StateOf(1), MemberState::kLeft);
  EXPECT_EQ(directory.ActiveMembers(), (std::vector<net::Rank>{0, 2}));
  EXPECT_EQ(directory.LeftTotal(), 1u);
  // Idempotent: the transition fires once.
  delta = directory.BeginRound(6);
  EXPECT_TRUE(delta.leaving.empty());
}

TEST(MembershipDirectory, DeathIsTerminal) {
  std::vector<ElasticSchedule> schedule = {{.rank = 0, .join_at_round = 2}};
  MembershipDirectory directory(Ranks(2), schedule);
  directory.BeginRound(2);
  directory.OnDead(0);  // dies while syncing
  EXPECT_EQ(directory.StateOf(0), MemberState::kDead);
  directory.OnSynced(0);  // a late sync ack cannot resurrect it
  EXPECT_EQ(directory.StateOf(0), MemberState::kDead);
  EXPECT_EQ(directory.JoinedTotal(), 0u);
  directory.OnDead(1);
  EXPECT_EQ(directory.ActiveCount(), 0u);
}

TEST(MembershipDirectory, IgnoresScheduleEntriesForOtherRanks) {
  // A hierarchical group controller shares the global schedule; entries
  // for ranks outside its group must not affect it.
  std::vector<ElasticSchedule> schedule = {{.rank = 9, .join_at_round = 1}};
  MembershipDirectory directory(Ranks(3), schedule);
  EXPECT_FALSE(directory.Manages(9));
  auto delta = directory.BeginRound(1);
  EXPECT_TRUE(delta.joining.empty());
  EXPECT_EQ(directory.ActiveCount(), 3u);
}

// Property: under a random join/leave/death schedule, every managed rank
// is always in exactly one state, the active set is consistent with the
// counters, epochs grow monotonically, and the re-formed ring (the active
// member list) is a single cycle covering every active rank exactly once.
class DirectoryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DirectoryFuzz, InvariantsHoldUnderRandomSchedules) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t world = 2 + rng.UniformInt(40);
  const std::size_t rounds = 30;
  std::vector<ElasticSchedule> schedule;
  for (std::size_t r = 0; r < world; ++r) {
    if (rng.UniformInt(3) == 0) {
      ElasticSchedule e;
      e.rank = r;
      e.join_at_round = 1 + rng.UniformInt(rounds - 2);
      if (rng.UniformInt(2) == 0) {
        e.leave_at_round = e.join_at_round + 1 + rng.UniformInt(rounds);
      }
      schedule.push_back(e);
    } else if (rng.UniformInt(4) == 0) {
      ElasticSchedule e;
      e.rank = r;
      e.leave_at_round = 1 + rng.UniformInt(rounds - 1);
      schedule.push_back(e);
    }
  }
  MembershipDirectory directory(Ranks(world), schedule);
  std::uint64_t last_epoch = directory.Epoch();
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto delta = directory.BeginRound(round);
    // Joiners sync with probability 2/3; sometimes a random rank dies.
    for (const net::Rank j : delta.joining) {
      EXPECT_EQ(directory.StateOf(j), MemberState::kSyncing);
    }
    for (const net::Rank j : directory.SyncingMembers()) {
      if (rng.UniformInt(3) != 0) directory.OnSynced(j);
    }
    if (rng.UniformInt(10) == 0) {
      directory.OnDead(static_cast<net::Rank>(rng.UniformInt(world)));
    }

    // Exactly one state per rank; tallies consistent.
    std::size_t active = 0;
    for (std::size_t r = 0; r < world; ++r) {
      const MemberState s = directory.StateOf(r);
      active += s == MemberState::kActive ? 1 : 0;
      EXPECT_EQ(directory.IsActive(r), s == MemberState::kActive);
      EXPECT_EQ(directory.IsSyncing(r), s == MemberState::kSyncing);
    }
    EXPECT_EQ(directory.ActiveCount(), active);

    // The re-formed ring: a single cycle over the active set, each rank
    // exactly once, successor relation consistent with the member order.
    const std::vector<net::Rank> ring = directory.ActiveMembers();
    EXPECT_EQ(ring.size(), active);
    const std::set<net::Rank> unique(ring.begin(), ring.end());
    EXPECT_EQ(unique.size(), ring.size());
    if (!ring.empty()) {
      std::set<net::Rank> visited;
      std::size_t at = 0;
      do {
        visited.insert(ring[at]);
        at = (at + 1) % ring.size();
      } while (at != 0);
      EXPECT_EQ(visited, unique);  // one cycle covers everyone
    }
    for (const net::Rank r : ring) {
      EXPECT_TRUE(directory.IsActive(r));
    }

    EXPECT_GE(directory.Epoch(), last_epoch);
    last_epoch = directory.Epoch();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryFuzz, ::testing::Range(1, 20));

// ----------------------------------------------------------- capped groups

TEST(CappedGrouping, ZeroCapMatchesUncapped) {
  const std::vector<double> times = {0.05, 0.05, 0.30, 0.30, 5.0};
  EXPECT_EQ(core::ComputeSpeedGroupsCapped(times, 0),
            core::ComputeSpeedGroups(times));
}

TEST(CappedGrouping, OversizedGroupIsSplitNearEvenly) {
  const std::vector<double> times(10, 0.1);  // one homogeneous group of 10
  const auto group_of = core::ComputeSpeedGroupsCapped(times, 4);
  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  EXPECT_EQ(num_groups, 3u);  // 10 over cap 4 → chunks of 4/3/3
  std::vector<std::size_t> sizes(num_groups, 0);
  for (std::size_t g : group_of) ++sizes[g];
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 4}));
}

class CappedGroupingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CappedGroupingFuzz, EveryWorkerInExactlyOneBoundedGroup) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.UniformInt(200);
  const std::size_t cap = 1 + rng.UniformInt(16);
  std::vector<double> times(n);
  for (auto& t : times) t = 1e-3 * std::pow(10.0, rng.Uniform(0.0, 2.0));
  const auto group_of = core::ComputeSpeedGroupsCapped(times, cap);
  ASSERT_EQ(group_of.size(), n);  // every worker has exactly one group id
  std::size_t num_groups = 0;
  for (std::size_t g : group_of) num_groups = std::max(num_groups, g + 1);
  std::vector<std::size_t> sizes(num_groups, 0);
  for (std::size_t g : group_of) ++sizes[g];
  for (std::size_t g = 0; g < num_groups; ++g) {
    EXPECT_GE(sizes[g], 1u) << "ids must be contiguous";
    EXPECT_LE(sizes[g], cap) << "group " << g << " exceeds the cap";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedGroupingFuzz, ::testing::Range(1, 20));

// ----------------------------------------------------------------- PS tree

TEST(PsTree, SmallWorldsDegenerateToSingleNode) {
  // fan_in < 2 (disabled) or num_groups <= fan_in: one root serves all.
  for (const std::size_t fan_in : {0u, 1u, 2u, 8u}) {
    const PsTree tree = BuildPsTree(2, fan_in);
    EXPECT_EQ(tree.nodes.size(), 1u);
    EXPECT_EQ(tree.leaf_of, (std::vector<std::size_t>{0, 0}));
  }
  EXPECT_EQ(BuildPsTree(100, 0).nodes.size(), 1u);
}

TEST(PsTree, ThreeLevelRecursionBeyondFanInSquared) {
  // 32 groups at fan-in 3: 11 leaves → 4 mid → 2 → 1 root = depth >= 3.
  const PsTree tree = BuildPsTree(32, 3);
  std::size_t max_depth = 0;
  for (const auto& node : tree.nodes) {
    max_depth = std::max(max_depth, node.depth);
  }
  EXPECT_GE(max_depth, 3u);
}

class PsTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PsTreeFuzz, BoundedFanInSingleRootParentsFirst) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t groups = 1 + rng.UniformInt(300);
  const std::size_t fan_in = 2 + rng.UniformInt(7);
  const PsTree tree = BuildPsTree(groups, fan_in);
  ASSERT_FALSE(tree.nodes.empty());
  ASSERT_EQ(tree.leaf_of.size(), groups);

  std::size_t roots = 0;
  std::vector<std::size_t> leaf_load(tree.nodes.size(), 0);
  for (std::size_t id = 0; id < tree.nodes.size(); ++id) {
    const PsTreeNode& node = tree.nodes[id];
    if (node.parent == id) {
      ++roots;
      EXPECT_EQ(node.depth, 0u);
    } else {
      EXPECT_LT(node.parent, id) << "parents must precede children";
      EXPECT_EQ(tree.nodes[node.parent].depth + 1, node.depth);
    }
    // Bounded fan-in: direct children + directly-served groups.
    EXPECT_LE(node.child_nodes.size() + node.leaf_groups.size(), fan_in);
    for (const std::size_t child : node.child_nodes) {
      EXPECT_EQ(tree.nodes[child].parent, id);
    }
  }
  EXPECT_EQ(roots, 1u);

  // Every group served by exactly one leaf, consistent with leaf_groups.
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t leaf = tree.leaf_of[g];
    ASSERT_LT(leaf, tree.nodes.size());
    const auto& served = tree.nodes[leaf].leaf_groups;
    EXPECT_NE(std::find(served.begin(), served.end(), g), served.end());
  }
  std::size_t served_total = 0;
  for (const auto& node : tree.nodes) {
    served_total += node.leaf_groups.size();
  }
  EXPECT_EQ(served_total, groups);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsTreeFuzz, ::testing::Range(1, 25));

// ------------------------------------------------------------------ shards

TEST(Sharding, RangesPartitionTheModel) {
  for (const std::size_t dim : {1u, 7u, 64u, 1000u}) {
    for (std::size_t shards = 1; shards <= std::min<std::size_t>(dim, 9);
         ++shards) {
      std::size_t covered = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t begin = ShardBegin(dim, shards, s);
        const std::size_t end = ShardEnd(dim, shards, s);
        EXPECT_EQ(begin, covered) << "ranges must be contiguous";
        EXPECT_GE(end, begin + dim / shards);
        EXPECT_LE(end - begin, dim / shards + 1);
        // The engine's slice bounds and the PS client's wire slicing must
        // agree exactly.
        EXPECT_EQ(begin, ps::ShardFirst(dim, shards, s));
        EXPECT_EQ(end, ps::ShardLast(dim, shards, s));
        covered = end;
      }
      EXPECT_EQ(covered, dim);
    }
  }
}

// -------------------------------------------------------------------- tags

TEST(Tags, RoundIndexedRangesStayDisjoint) {
  // The analyzer's tag model (tools/analyze/checks/tags.py) checks these
  // statically; this is the runtime mirror at the documented scale bounds.
  constexpr std::size_t kMaxWorld = 1024;
  constexpr std::size_t kMaxRounds = 100000;
  // Join-state tags live strictly below the group-cast range...
  EXPECT_LT(tags::JoinStateTag(kMaxRounds - 1), tags::kGroupCastBase);
  // ...group-cast below the ring base...
  EXPECT_LT(tags::GroupCastTag(kMaxRounds - 1), tags::kRingBase);
  // ...and consecutive rounds' ring ranges cannot overlap even at the
  // largest supported ring (2 * world - 2 in-flight chunk tags per round).
  EXPECT_LE(static_cast<std::size_t>(2 * kMaxWorld - 2),
            static_cast<std::size_t>(tags::kRingStride));
  EXPECT_LT(tags::RingTag(5) + 2 * static_cast<int>(kMaxWorld) - 2,
            tags::RingTag(6));
  // The fixed control tags sit below every round-indexed range.
  for (const int t : {tags::kReady, tags::kGo, tags::kRoundEnd, tags::kStep,
                      tags::kGoodbye, tags::kBarrier, tags::kAvgReq,
                      tags::kAvgRep, tags::kGroupRing}) {
    EXPECT_LT(t, tags::kJoinStateBase);
  }
}

}  // namespace
}  // namespace rna::train
