// Tests for the ps-lite-style parameter server: apply modes, push/pull
// round trips, versioning, concurrent clients, clean shutdown.

#include <gtest/gtest.h>

#include <thread>

#include "rna/net/fabric.hpp"
#include "rna/ps/server.hpp"

namespace rna::ps {
namespace {

TEST(ParameterServer, PullReturnsInitialState) {
  net::Fabric fabric(3);
  ParameterServer server(fabric, 2, {1.0f, 2.0f, 3.0f});
  server.Start();
  PsClient client(fabric, 0, 2);
  const auto state = client.Pull();
  EXPECT_EQ(state, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  server.Stop();
}

TEST(ParameterServer, PushAssignReplacesState) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f, 0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{5.0f, 6.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.Pull(), (std::vector<float>{5.0f, 6.0f}));
  server.Stop();
}

TEST(ParameterServer, PushAddDeltaAccumulates) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {1.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{2.0f}, ApplyMode::kAddDelta);
  client.Push(std::vector<float>{3.0f}, ApplyMode::kAddDelta);
  EXPECT_EQ(client.Pull(), (std::vector<float>{6.0f}));
  server.Stop();
}

TEST(ParameterServer, PushPullAveragesAtomically) {
  // The hierarchical path: group pushes its model, receives the running
  // average.
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  const auto first = client.PushPull(std::vector<float>{8.0f},
                                     ApplyMode::kAverage);
  EXPECT_EQ(first, (std::vector<float>{4.0f}));  // (0+8)/2
  const auto second = client.PushPull(std::vector<float>{4.0f},
                                      ApplyMode::kAverage);
  EXPECT_EQ(second, (std::vector<float>{4.0f}));  // (4+4)/2
  server.Stop();
}

TEST(ParameterServer, VersionIncrementsOnWrites) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Pull();
  EXPECT_EQ(client.LastVersion(), 0);
  client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.LastVersion(), 1);
  client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.LastVersion(), 2);
  server.Stop();
}

TEST(ParameterServer, MixedModesCompose) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {2.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{4.0f}, ApplyMode::kAverage);   // (2+4)/2 = 3
  client.Push(std::vector<float>{1.0f}, ApplyMode::kAddDelta);  // 4
  EXPECT_EQ(client.PushPull(std::vector<float>{0.0f}, ApplyMode::kAverage),
            (std::vector<float>{2.0f}));  // (4+0)/2
  server.Stop();
}

TEST(ParameterServer, ConcurrentClientsAllServed) {
  const std::size_t clients = 6;
  net::Fabric fabric(clients + 1);
  ParameterServer server(fabric, clients, std::vector<float>{0.0f});
  server.Start();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PsClient client(fabric, c, clients);
      for (int i = 0; i < 50; ++i) {
        client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAddDelta);
      }
    });
  }
  for (auto& t : threads) t.join();
  PsClient reader(fabric, 0, clients);
  EXPECT_EQ(reader.Pull()[0], 300.0f);  // 6 clients × 50 increments
  EXPECT_GE(server.RequestsServed(), 301u);
  server.Stop();
}

TEST(ParameterServer, SnapshotMatchesPull) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {1.5f, 2.5f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{1.0f, 1.0f}, ApplyMode::kAddDelta);
  const auto pulled = client.Pull();  // serializes behind the Push
  EXPECT_EQ(pulled, server.Snapshot());
  server.Stop();
}

TEST(ParameterServer, StopIsIdempotent) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  server.Stop();
  server.Stop();  // second stop is a no-op
}

TEST(ParameterServer, RestartAfterStop) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{3.0f}, ApplyMode::kAssign);
  server.Stop();
  server.Start();
  EXPECT_EQ(client.Pull(), (std::vector<float>{3.0f}));
  server.Stop();
}

}  // namespace
}  // namespace rna::ps
