// Tests for the ps-lite-style parameter server: apply modes, push/pull
// round trips, versioning, concurrent clients, clean shutdown — plus the
// scale-out layer: range-sharded servers behind ShardedPsClient and
// parent-folding in the recursive PS tree.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "rna/net/fabric.hpp"
#include "rna/ps/server.hpp"
#include "rna/ps/sharded.hpp"

namespace rna::ps {
namespace {

TEST(ParameterServer, PullReturnsInitialState) {
  net::Fabric fabric(3);
  ParameterServer server(fabric, 2, {1.0f, 2.0f, 3.0f});
  server.Start();
  PsClient client(fabric, 0, 2);
  const auto state = client.Pull();
  EXPECT_EQ(state, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  server.Stop();
}

TEST(ParameterServer, PushAssignReplacesState) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f, 0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{5.0f, 6.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.Pull(), (std::vector<float>{5.0f, 6.0f}));
  server.Stop();
}

TEST(ParameterServer, PushAddDeltaAccumulates) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {1.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{2.0f}, ApplyMode::kAddDelta);
  client.Push(std::vector<float>{3.0f}, ApplyMode::kAddDelta);
  EXPECT_EQ(client.Pull(), (std::vector<float>{6.0f}));
  server.Stop();
}

TEST(ParameterServer, PushPullAveragesAtomically) {
  // The hierarchical path: group pushes its model, receives the running
  // average.
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  const auto first = client.PushPull(std::vector<float>{8.0f},
                                     ApplyMode::kAverage);
  EXPECT_EQ(first, (std::vector<float>{4.0f}));  // (0+8)/2
  const auto second = client.PushPull(std::vector<float>{4.0f},
                                      ApplyMode::kAverage);
  EXPECT_EQ(second, (std::vector<float>{4.0f}));  // (4+4)/2
  server.Stop();
}

TEST(ParameterServer, VersionIncrementsOnWrites) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Pull();
  EXPECT_EQ(client.LastVersion(), 0);
  client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.LastVersion(), 1);
  client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.LastVersion(), 2);
  server.Stop();
}

TEST(ParameterServer, MixedModesCompose) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {2.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{4.0f}, ApplyMode::kAverage);   // (2+4)/2 = 3
  client.Push(std::vector<float>{1.0f}, ApplyMode::kAddDelta);  // 4
  EXPECT_EQ(client.PushPull(std::vector<float>{0.0f}, ApplyMode::kAverage),
            (std::vector<float>{2.0f}));  // (4+0)/2
  server.Stop();
}

TEST(ParameterServer, ConcurrentClientsAllServed) {
  const std::size_t clients = 6;
  net::Fabric fabric(clients + 1);
  ParameterServer server(fabric, clients, std::vector<float>{0.0f});
  server.Start();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PsClient client(fabric, c, clients);
      for (int i = 0; i < 50; ++i) {
        client.PushPull(std::vector<float>{1.0f}, ApplyMode::kAddDelta);
      }
    });
  }
  for (auto& t : threads) t.join();
  PsClient reader(fabric, 0, clients);
  EXPECT_EQ(reader.Pull()[0], 300.0f);  // 6 clients × 50 increments
  EXPECT_GE(server.RequestsServed(), 301u);
  server.Stop();
}

TEST(ParameterServer, SnapshotMatchesPull) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {1.5f, 2.5f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{1.0f, 1.0f}, ApplyMode::kAddDelta);
  const auto pulled = client.Pull();  // serializes behind the Push
  EXPECT_EQ(pulled, server.Snapshot());
  server.Stop();
}

TEST(ParameterServer, StopIsIdempotent) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  server.Stop();
  server.Stop();  // second stop is a no-op
}

TEST(ParameterServer, RestartAfterStop) {
  net::Fabric fabric(2);
  ParameterServer server(fabric, 1, {0.0f});
  server.Start();
  PsClient client(fabric, 0, 1);
  client.Push(std::vector<float>{3.0f}, ApplyMode::kAssign);
  server.Stop();
  server.Start();
  EXPECT_EQ(client.Pull(), (std::vector<float>{3.0f}));
  server.Stop();
}

// ------------------------------------------------------- sharded clients

TEST(ShardedPs, ShardRangesPartitionEveryDim) {
  for (const std::size_t dim : {1u, 5u, 64u, 999u}) {
    for (std::size_t shards = 1; shards <= std::min<std::size_t>(dim, 8);
         ++shards) {
      std::size_t covered = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(ShardFirst(dim, shards, s), covered);
        const std::size_t len = ShardLast(dim, shards, s) - covered;
        EXPECT_GE(len, dim / shards);
        EXPECT_LE(len, dim / shards + 1);
        covered += len;
      }
      EXPECT_EQ(covered, dim);
    }
  }
}

// Helper: a bank of range-sharded servers over `init`, started on
// endpoints [first, first + shards).
std::vector<std::unique_ptr<ParameterServer>> StartShardBank(
    net::Fabric& fabric, net::Rank first, const std::vector<float>& init,
    std::size_t shards) {
  std::vector<std::unique_ptr<ParameterServer>> servers;
  for (std::size_t s = 0; s < shards; ++s) {
    std::vector<float> slice(
        init.begin() + static_cast<std::ptrdiff_t>(
                           ShardFirst(init.size(), shards, s)),
        init.begin() + static_cast<std::ptrdiff_t>(
                           ShardLast(init.size(), shards, s)));
    servers.push_back(std::make_unique<ParameterServer>(
        fabric, first + s, std::move(slice)));
    servers.back()->Start();
  }
  return servers;
}

TEST(ShardedPs, SingleShardMatchesPlainClientExactly) {
  // S = 1 must stay byte-identical to PsClient on the wire: one server,
  // two clients, interleaved writes observe each other.
  net::Fabric fabric(3);
  ParameterServer server(fabric, 2, {1.0f, 2.0f});
  server.Start();
  ShardedPsClient sharded(fabric, 0, 2, 1, 2);
  PsClient plain(fabric, 1, 2);
  sharded.Push(std::vector<float>{1.0f, 1.0f}, ApplyMode::kAddDelta);
  EXPECT_EQ(plain.Pull(), (std::vector<float>{2.0f, 3.0f}));
  plain.Push(std::vector<float>{0.0f, 0.0f}, ApplyMode::kAverage);
  EXPECT_EQ(sharded.Pull(), (std::vector<float>{1.0f, 1.5f}));
  server.Stop();
}

TEST(ShardedPs, MultiShardPushPullMatchesSinglePs) {
  // Equivalence oracle: the same op sequence against a 4-shard bank and
  // one full-dim server must produce identical states throughout.
  constexpr std::size_t kDim = 10;  // 4 shards of sizes 3/3/2/2
  constexpr std::size_t kShards = 4;
  std::vector<float> init(kDim);
  for (std::size_t i = 0; i < kDim; ++i) init[i] = static_cast<float>(i);

  net::Fabric fabric(2 + kShards + 1);
  auto bank = StartShardBank(fabric, 2, init, kShards);
  ParameterServer reference(fabric, 2 + kShards, init);
  reference.Start();
  ShardedPsClient sharded(fabric, 0, 2, kShards, kDim);
  PsClient plain(fabric, 1, 2 + kShards);

  const ApplyMode modes[] = {ApplyMode::kAddDelta, ApplyMode::kAverage,
                             ApplyMode::kAssign, ApplyMode::kAverage};
  for (int op = 0; op < 4; ++op) {
    std::vector<float> payload(kDim);
    for (std::size_t i = 0; i < kDim; ++i) {
      payload[i] = static_cast<float>((op + 1) * 10 + i);
    }
    const auto a = sharded.PushPull(payload, modes[op]);
    const auto b = plain.PushPull(payload, modes[op]);
    ASSERT_EQ(a, b) << "op " << op;
  }
  EXPECT_EQ(sharded.Pull(), plain.Pull());
  for (auto& s : bank) s->Stop();
  reference.Stop();
}

TEST(ShardedPs, ConcurrentStripedClientsAllServed) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kDim = 7;
  net::Fabric fabric(kClients + kShards);
  auto bank =
      StartShardBank(fabric, kClients, std::vector<float>(kDim, 0.0f),
                     kShards);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ShardedPsClient client(fabric, c, kClients, kShards, kDim);
      for (int i = 0; i < 25; ++i) {
        client.PushPull(std::vector<float>(kDim, 1.0f),
                        ApplyMode::kAddDelta);
      }
    });
  }
  for (auto& t : threads) t.join();
  ShardedPsClient reader(fabric, 0, kClients, kShards, kDim);
  EXPECT_EQ(reader.Pull(), std::vector<float>(kDim, 100.0f));
  for (auto& s : bank) s->Stop();
}

// ---------------------------------------------------------- parent folds

TEST(ShardedPs, ParentSyncFoldsChildIntoParent) {
  // Two-node tree, one shard: the child averages its state into the root
  // after every applied payload (sync_every = 1), so a client pushing to
  // the child sees state that reflects the root's — cross-group averaging
  // through the tree instead of a shared endpoint.
  net::Fabric fabric(3);
  ParameterServer root(fabric, 1, {0.0f});
  root.Start();
  ParameterServer child(fabric, 2, {0.0f});
  child.ConfigureParent(1, /*sync_every=*/1);
  child.Start();

  PsClient client(fabric, 0, 2);
  // Child applies 8 -> state 8; the parent sync runs before the reply, so
  // the returned state is already root-averaged: (0+8)/2 = 4 at the root,
  // child adopts 4.
  const auto replied = client.PushPull(std::vector<float>{8.0f},
                                       ApplyMode::kAssign);
  EXPECT_EQ(replied, (std::vector<float>{4.0f}));
  EXPECT_EQ(root.Snapshot(), (std::vector<float>{4.0f}));
  EXPECT_EQ(child.Snapshot(), (std::vector<float>{4.0f}));
  child.Stop();  // children before parents
  root.Stop();
}

TEST(ShardedPs, ParentSyncHonorsSyncEvery) {
  net::Fabric fabric(3);
  ParameterServer root(fabric, 1, {0.0f});
  root.Start();
  ParameterServer child(fabric, 2, {0.0f});
  child.ConfigureParent(1, /*sync_every=*/2);
  child.Start();

  PsClient client(fabric, 0, 2);
  client.Push(std::vector<float>{6.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.Pull(), (std::vector<float>{6.0f}));
  EXPECT_EQ(root.Snapshot(), (std::vector<float>{0.0f}))
      << "first applied payload must not sync yet";
  // Second applied payload reaches the threshold: child (now 6) folds into
  // the root: root = (0+6)/2 = 3, child adopts 3.
  client.Push(std::vector<float>{6.0f}, ApplyMode::kAssign);
  EXPECT_EQ(client.Pull(), (std::vector<float>{3.0f}));
  EXPECT_EQ(root.Snapshot(), (std::vector<float>{3.0f}));
  child.Stop();
  root.Stop();
}

}  // namespace
}  // namespace rna::ps
