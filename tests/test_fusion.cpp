// Tests for tensor fusion: bucket planning properties and equivalence of
// the fused allreduce with per-tensor reduction.

#include <gtest/gtest.h>

#include <thread>

#include "rna/collectives/fusion.hpp"
#include "rna/common/rng.hpp"

namespace rna::collectives {
namespace {

std::vector<TensorSpec> Specs(std::initializer_list<std::size_t> sizes) {
  std::vector<TensorSpec> specs;
  std::size_t i = 0;
  for (std::size_t n : sizes) {
    specs.push_back({"t" + std::to_string(i++), n});
  }
  return specs;
}

TEST(FusionPlan, PacksGreedilyWithinLimit) {
  const auto specs = Specs({10, 20, 30, 40});
  const FusionPlan plan = FusionPlan::Build(specs, 60);
  // 10+20+30=60 fits; 40 starts a new bucket.
  ASSERT_EQ(plan.BucketCount(), 2u);
  EXPECT_EQ(plan.buckets[0].tensor_count, 3u);
  EXPECT_EQ(plan.buckets[0].elements, 60u);
  EXPECT_EQ(plan.buckets[1].first_tensor, 3u);
  EXPECT_EQ(plan.buckets[1].elements, 40u);
  EXPECT_EQ(plan.MaxBucketElements(), 60u);
}

TEST(FusionPlan, OversizedTensorGetsOwnBucket) {
  const auto specs = Specs({5, 1000, 5});
  const FusionPlan plan = FusionPlan::Build(specs, 100);
  ASSERT_EQ(plan.BucketCount(), 3u);
  EXPECT_EQ(plan.buckets[1].elements, 1000u);
}

TEST(FusionPlan, SingleBucketWhenEverythingFits) {
  const auto specs = Specs({1, 2, 3});
  const FusionPlan plan = FusionPlan::Build(specs, 1000);
  ASSERT_EQ(plan.BucketCount(), 1u);
  EXPECT_EQ(plan.buckets[0].tensor_count, 3u);
}

TEST(FusionPlan, EmptySpecList) {
  const FusionPlan plan = FusionPlan::Build({}, 100);
  EXPECT_EQ(plan.BucketCount(), 0u);
  EXPECT_EQ(plan.MaxBucketElements(), 0u);
}

TEST(FusionPlan, CoversEveryTensorExactlyOnce) {
  common::Rng rng(1);
  std::vector<TensorSpec> specs;
  for (int i = 0; i < 40; ++i) {
    specs.push_back({"t", 1 + rng.UniformInt(50)});
  }
  const FusionPlan plan = FusionPlan::Build(specs, 64);
  std::size_t covered = 0, elements = 0, expected_elements = 0;
  for (const auto& s : specs) expected_elements += s.elements;
  for (const auto& b : plan.buckets) {
    EXPECT_EQ(b.first_tensor, covered);  // contiguous, ordered
    covered += b.tensor_count;
    elements += b.elements;
  }
  EXPECT_EQ(covered, specs.size());
  EXPECT_EQ(elements, expected_elements);
}

class FusedAllreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusedAllreduceSweep, MatchesUnfusedSum) {
  const auto max_bucket = static_cast<std::size_t>(GetParam());
  const std::size_t world = 3;
  const auto specs = Specs({7, 13, 1, 29, 5});
  const FusionPlan plan = FusionPlan::Build(specs, max_bucket);

  // Per-rank tensor values; expectation = elementwise sum across ranks.
  common::Rng rng(42);
  std::vector<std::vector<std::vector<float>>> data(world);
  std::vector<std::vector<float>> expected;
  for (const auto& spec : specs) {
    expected.emplace_back(spec.elements, 0.0f);
  }
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t t = 0; t < specs.size(); ++t) {
      std::vector<float> values(specs[t].elements);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = static_cast<float>(rng.Normal(0, 1));
        expected[t][i] += values[i];
      }
      data[r].push_back(std::move(values));
    }
  }

  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      std::vector<float*> pointers;
      for (auto& tensor : data[r]) pointers.push_back(tensor.data());
      CollectiveOptions opts;
      opts.tag_base = 1000;
      FusedAllreduce({fabric, group, r}, opts, specs, pointers, plan);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t t = 0; t < specs.size(); ++t) {
      for (std::size_t i = 0; i < expected[t].size(); ++i) {
        ASSERT_NEAR(data[r][t][i], expected[t][i], 1e-4f)
            << "rank " << r << " tensor " << t << " index " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, FusedAllreduceSweep,
                         ::testing::Values(1, 8, 20, 64, 1000));

}  // namespace
}  // namespace rna::collectives
