// Tests for the redesigned training API surface: TrainerConfig::Validate,
// ParseProtocol/ProtocolName round-tripping, the RunTraining front door's
// rejection behaviour, the thin RunRna/RunHierarchicalRna wrappers, and the
// TrainResult summary helpers.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna {
namespace {

using train::ParseProtocol;
using train::Protocol;
using train::ProtocolName;
using train::TrainerConfig;
using train::TrainResult;

TrainerConfig ValidConfig(Protocol protocol = Protocol::kRna) {
  TrainerConfig c;
  c.protocol = protocol;
  c.world = 3;
  c.max_rounds = 10;
  return c;
}

TEST(Validate, AcceptsTheDefaultishConfig) {
  EXPECT_EQ(ValidConfig().Validate(), "");
  EXPECT_EQ(ValidConfig(Protocol::kHorovod).Validate(), "");
  EXPECT_EQ(ValidConfig(Protocol::kRnaHierarchical).Validate(), "");
}

TEST(Validate, RejectsEachBrokenField) {
  struct Case {
    const char* expect_substr;
    void (*mutate)(TrainerConfig&);
  };
  const Case cases[] = {
      {"world", [](TrainerConfig& c) { c.world = 0; }},
      {"batch_size", [](TrainerConfig& c) { c.batch_size = 0; }},
      {"max_rounds", [](TrainerConfig& c) { c.max_rounds = 0; }},
      {"probe_choices", [](TrainerConfig& c) { c.probe_choices = 0; }},
      {"probe_choices", [](TrainerConfig& c) { c.probe_choices = 9; }},
      {"staleness_bound", [](TrainerConfig& c) { c.staleness_bound = 0; }},
      {"eval_period_s", [](TrainerConfig& c) { c.eval_period_s = 0.0; }},
      {"eval_samples", [](TrainerConfig& c) { c.eval_samples = 0; }},
      {"lr_decay_factor", [](TrainerConfig& c) { c.lr_decay_factor = -1.0; }},
      {"delay_scale", [](TrainerConfig& c) { c.delay_scale = -0.5; }},
      {"sleep_per_step", [](TrainerConfig& c) { c.sleep_per_step = -1e-6; }},
      {"calibration_iters",
       [](TrainerConfig& c) {
         c.protocol = train::Protocol::kRnaHierarchical;
         c.calibration_iters = 0;
       }},
      {"at least two workers",
       [](TrainerConfig& c) {
         c.protocol = train::Protocol::kAdPsgd;
         c.world = 1;
         c.probe_choices = 1;
       }},
  };
  for (const Case& test_case : cases) {
    TrainerConfig c = ValidConfig();
    test_case.mutate(c);
    const std::string why = c.Validate();
    EXPECT_FALSE(why.empty()) << "expected rejection for "
                              << test_case.expect_substr;
    EXPECT_NE(why.find(test_case.expect_substr), std::string::npos) << why;
  }
}

TEST(Validate, AcceptsABenignFaultConfig) {
  TrainerConfig c = ValidConfig();
  c.fault.drop_prob = 0.1;
  c.fault.ps_drop_prob = 0.1;
  train::WorkerFaultSchedule s;
  s.rank = 1;
  s.crash_in_round = 5;
  c.fault.workers.push_back(s);
  EXPECT_EQ(c.Validate(), "");
}

TEST(Validate, RejectsEachBrokenFaultField) {
  struct Case {
    const char* expect_substr;
    void (*mutate)(TrainerConfig&);
  };
  const Case cases[] = {
      {"drop_prob", [](TrainerConfig& c) { c.fault.drop_prob = -0.1; }},
      {"drop_prob", [](TrainerConfig& c) { c.fault.drop_prob = 1.5; }},
      {"dup_prob", [](TrainerConfig& c) { c.fault.dup_prob = -1.0; }},
      {"delay_prob", [](TrainerConfig& c) { c.fault.delay_prob = 2.0; }},
      {"ps_drop_prob", [](TrainerConfig& c) { c.fault.ps_drop_prob = -0.2; }},
      {"delay_s", [](TrainerConfig& c) { c.fault.delay_s = -0.5; }},
      {"retry_budget",
       [](TrainerConfig& c) {
         c.fault.drop_prob = 0.1;  // make faults Enabled()
         c.fault.retry_budget = 0;
       }},
      {"timeouts",
       [](TrainerConfig& c) {
         c.fault.drop_prob = 0.1;
         c.fault.collective_timeout_s = 0.0;
       }},
      {"dead_after_misses",
       [](TrainerConfig& c) {
         c.fault.drop_prob = 0.1;
         c.fault.dead_after_misses = 0;
       }},
      {"outside the world",
       [](TrainerConfig& c) {
         train::WorkerFaultSchedule s;
         s.rank = 99;
         c.fault.workers.push_back(s);
       }},
      {"beyond max_rounds",
       [](TrainerConfig& c) {
         train::WorkerFaultSchedule s;
         s.crash_in_round = c.max_rounds;  // would never fire
         c.fault.workers.push_back(s);
       }},
      {"hang_for_s",
       [](TrainerConfig& c) {
         train::WorkerFaultSchedule s;
         s.hang_for_s = -1.0;
         c.fault.workers.push_back(s);
       }},
      {"flaky_prob",
       [](TrainerConfig& c) {
         train::WorkerFaultSchedule s;
         s.flaky_prob = 1.5;
         c.fault.workers.push_back(s);
       }},
      {"lossy fabric",
       [](TrainerConfig& c) {
         c.protocol = Protocol::kHorovod;
         c.fault.drop_prob = 0.1;  // untimed BSP collective would deadlock
       }},
      {"lossy fabric",
       [](TrainerConfig& c) {
         c.protocol = Protocol::kSgp;
         c.fault.ps_drop_prob = 0.1;
       }},
      {"cannot survive a crash",
       [](TrainerConfig& c) {
         c.protocol = Protocol::kHorovod;
         train::WorkerFaultSchedule s;
         s.crash_at_iteration = 2;
         c.fault.workers.push_back(s);
       }},
  };
  for (const Case& test_case : cases) {
    TrainerConfig c = ValidConfig();
    test_case.mutate(c);
    const std::string why = c.Validate();
    EXPECT_FALSE(why.empty()) << "expected rejection for "
                              << test_case.expect_substr;
    EXPECT_NE(why.find(test_case.expect_substr), std::string::npos) << why;
  }
}

TEST(Validate, DelayFaultsAreLegalEvenForLosslessProtocols) {
  // Horovod/SGP reject drop faults (their untimed collectives would
  // deadlock) but tolerate pure slowness: delay and hang/flaky faults pass.
  for (Protocol p : {Protocol::kHorovod, Protocol::kSgp}) {
    TrainerConfig c = ValidConfig(p);
    c.fault.delay_prob = 0.3;
    c.fault.delay_s = 0.01;
    train::WorkerFaultSchedule s;
    s.rank = 0;
    s.hang_at_iteration = 1;
    s.hang_for_s = 0.01;
    c.fault.workers.push_back(s);
    EXPECT_EQ(c.Validate(), "") << ProtocolName(p);
  }
}

TEST(Validate, ZeroDecayFactorFreezesTrainingAndIsLegal) {
  TrainerConfig c = ValidConfig();
  c.lr_decay_factor = 0.0;
  c.lr_decay_rounds = {1};
  EXPECT_EQ(c.Validate(), "");
}

TEST(ParseProtocolTest, RoundTripsEveryProtocolName) {
  const Protocol all[] = {
      Protocol::kHorovod, Protocol::kEagerSgd,        Protocol::kAdPsgd,
      Protocol::kRna,     Protocol::kRnaHierarchical, Protocol::kSgp,
      Protocol::kCentralizedPs,
  };
  for (Protocol p : all) {
    const auto parsed = ParseProtocol(ProtocolName(p));
    ASSERT_TRUE(parsed.has_value()) << ProtocolName(p);
    EXPECT_EQ(*parsed, p);
  }
}

TEST(ParseProtocolTest, AcceptsAliasesAndRejectsJunk) {
  EXPECT_EQ(ParseProtocol("eager"), Protocol::kEagerSgd);
  EXPECT_EQ(ParseProtocol("adpsgd"), Protocol::kAdPsgd);
  EXPECT_FALSE(ParseProtocol("").has_value());
  EXPECT_FALSE(ParseProtocol("RNA").has_value());  // names are exact
  EXPECT_FALSE(ParseProtocol("allreduce").has_value());
  EXPECT_FALSE(ParseProtocol("rna ").has_value());
}

TEST(TrainResultHelpers, EmptyResultYieldsZeroMeans) {
  TrainResult r;
  EXPECT_DOUBLE_EQ(r.MeanContributors(), 0.0);
  EXPECT_DOUBLE_EQ(r.MeanRoundTime(), 0.0);
}

TEST(TrainResultHelpers, MeansAverageOverRounds) {
  TrainResult r;
  r.rounds = 4;
  r.wall_seconds = 2.0;
  r.round_contributors = {3, 1, 2, 2};
  EXPECT_DOUBLE_EQ(r.MeanContributors(), 2.0);
  EXPECT_DOUBLE_EQ(r.MeanRoundTime(), 0.5);
}

TEST(TrainResultHelpers, ZeroRoundsWithWallTimeStaysFinite) {
  TrainResult r;
  r.wall_seconds = 1.5;
  EXPECT_DOUBLE_EQ(r.MeanRoundTime(), 0.0);  // no division by zero
}

struct Scenario {
  data::Dataset train;
  data::Dataset val;
  train::ModelFactory factory;
};

Scenario SmallScenario(std::uint64_t seed = 5) {
  Scenario s;
  data::Dataset all = data::MakeGaussianClusters(400, 8, 4, 0.35, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{8, 16, 4}, model_seed);
  };
  return s;
}

TEST(RunTraining, ThrowsInvalidArgumentWithTheValidateMessage) {
  Scenario s = SmallScenario();
  TrainerConfig c = ValidConfig();
  c.world = 0;
  try {
    (void)core::RunTraining(c, s.factory, s.train, s.val);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("world"), std::string::npos);
  }
}

TEST(RunTraining, WrappersPinTheProtocolField) {
  Scenario s = SmallScenario();
  TrainerConfig c = ValidConfig();
  c.max_rounds = 6;
  // Deliberately mislabeled: the wrapper must override the protocol field.
  c.protocol = Protocol::kHorovod;
  const TrainResult r = core::RunRna(c, s.factory, s.train, s.val);
  EXPECT_EQ(r.rounds, 6u);
  // RNA applies partial rounds: contributors per round never exceed world.
  ASSERT_EQ(r.round_contributors.size(), 6u);
  for (std::size_t count : r.round_contributors) {
    EXPECT_LE(count, c.world);
  }
}

}  // namespace
}  // namespace rna
