// Tests for the observability subsystem: trace recorder semantics (rings,
// wrap-around, stale handles), metrics registry, Chrome trace-event export
// round-trip, the WorkerAccounts figure query, and the end-to-end
// cross-check that a real training run's trace agrees with the engine's
// reported WorkerTimeBreakdown.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/net/fabric.hpp"
#include "rna/obs/export.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/session.hpp"
#include "rna/obs/trace.hpp"

namespace rna::obs {
namespace {

Span MakeSpan(const char* name, Category cat, double start, double dur) {
  Span s;
  s.name = name;
  s.category = cat;
  s.start = start;
  s.duration = dur;
  return s;
}

TEST(TraceRecorder, RecordsAndSnapshots) {
  TraceRecorder rec;
  TrackHandle track = rec.RegisterTrack("alpha");
  ASSERT_TRUE(track.Enabled());
  EXPECT_EQ(track.Recorder(), &rec);

  rec.Record(track, MakeSpan("a", Category::kCompute, 0.0, 1.0));
  rec.Record(track, MakeSpan("b", Category::kWait, 1.0, 0.5));

  const auto tracks = rec.Snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].name, "alpha");
  EXPECT_EQ(tracks[0].recorded, 2u);
  EXPECT_EQ(tracks[0].dropped, 0u);
  ASSERT_EQ(tracks[0].spans.size(), 2u);
  EXPECT_STREQ(tracks[0].spans[0].name, "a");
  EXPECT_STREQ(tracks[0].spans[1].name, "b");
  EXPECT_EQ(rec.TotalRecorded(), 2u);
  EXPECT_EQ(rec.TrackCount(), 1u);
}

TEST(TraceRecorder, ReRegisteringANameReturnsTheSameTrack) {
  TraceRecorder rec;
  TrackHandle first = rec.RegisterTrack("actor");
  rec.Record(first, MakeSpan("x", Category::kOther, 0.0, 1.0));
  TrackHandle second = rec.RegisterTrack("actor");
  rec.Record(second, MakeSpan("y", Category::kOther, 1.0, 1.0));

  const auto tracks = rec.Snapshot();
  ASSERT_EQ(tracks.size(), 1u);  // one logical track, not two
  EXPECT_EQ(tracks[0].recorded, 2u);
}

TEST(TraceRecorder, RingWrapDropsOldestSpans) {
  TraceRecorder rec(/*track_capacity=*/4);
  TrackHandle track = rec.RegisterTrack("small");
  for (int i = 0; i < 10; ++i) {
    rec.Record(track, MakeSpan("s", Category::kOther,
                               static_cast<double>(i), 1.0));
  }
  const auto tracks = rec.Snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].recorded, 10u);
  EXPECT_EQ(tracks[0].dropped, 6u);
  ASSERT_EQ(tracks[0].spans.size(), 4u);
  // The survivors are the newest four, oldest-first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(tracks[0].spans[i].start, 6.0 + i);
  }
  EXPECT_EQ(rec.TotalDropped(), 6u);
}

TEST(TraceRecorder, ConcurrentProducersOnSeparateTracks) {
  // One track per thread is the contract; TSan checks the ring accesses.
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kSpansEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      TrackHandle track = rec.RegisterTrack(WorkerTrack(t, "stress"));
      for (int i = 0; i < kSpansEach; ++i) {
        rec.Record(track, MakeSpan("op", Category::kCompute, i, 0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.TotalRecorded(), kThreads * kSpansEach);
  EXPECT_EQ(rec.TrackCount(), static_cast<std::size_t>(kThreads));
}

TEST(ScopedTimer, AccumulatesAndRecordsWhenActive) {
  TraceRecorder rec;
  SetActiveTrace(&rec);
  common::Seconds acc = 0.0;
  {
    TrackHandle track = RegisterTrack("timed");
    ScopedTimer timer(track, Category::kComm, "op", &acc);
    timer.SetArg("round", 3.0);
    common::SleepFor(0.002);
  }
  SetActiveTrace(nullptr);

  EXPECT_GT(acc, 0.0);
  const auto tracks = rec.Snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  ASSERT_EQ(tracks[0].spans.size(), 1u);
  const Span& span = tracks[0].spans[0];
  EXPECT_STREQ(span.name, "op");
  EXPECT_EQ(span.category, Category::kComm);
  EXPECT_DOUBLE_EQ(span.duration, acc);  // single timing source
  ASSERT_STREQ(span.arg_keys[0], "round");
  EXPECT_DOUBLE_EQ(span.arg_vals[0], 3.0);
}

TEST(ScopedTimer, DisabledHandleStillMeasures) {
  ASSERT_EQ(ActiveTrace(), nullptr);
  common::Seconds acc = 0.0;
  ScopedTimer timer({}, Category::kCompute, "noop", &acc);
  common::SleepFor(0.001);
  const common::Seconds elapsed = timer.Stop();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_DOUBLE_EQ(acc, elapsed);
  EXPECT_DOUBLE_EQ(timer.Stop(), elapsed);  // idempotent
  EXPECT_DOUBLE_EQ(acc, elapsed);           // no double accumulation
}

TEST(ScopedTimer, StaleHandleDoesNotRecordOntoNewRecorder) {
  // A handle from recorder A must not write once B is the active trace:
  // its spans would carry A's epoch and A's ring may be gone.
  auto a = std::make_unique<TraceRecorder>();
  SetActiveTrace(a.get());
  TrackHandle stale = RegisterTrack("from_a");
  TraceRecorder b;
  SetActiveTrace(&b);
  {
    ScopedTimer timer(stale, Category::kOther, "late");
  }
  SetActiveTrace(nullptr);
  EXPECT_EQ(a->TotalRecorded(), 0u);
  EXPECT_EQ(b.TotalRecorded(), 0u);
}

TEST(Metrics, CountersGaugesAndStats) {
  MetricsRegistry reg;
  reg.Add("hits");
  reg.Add("hits", 4);
  reg.Set("level", 0.75);
  reg.Set("level", 0.5);  // gauges keep the last value
  reg.Observe("lat", 1.0);
  reg.Observe("lat", 3.0);

  EXPECT_EQ(reg.CounterValue("hits"), 5);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("level"), 0.5);
  const common::OnlineStats stats = reg.StatsFor("lat");
  EXPECT_EQ(stats.Count(), 2u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);

  // Unknown names read as zero, not errors.
  EXPECT_EQ(reg.CounterValue("nope"), 0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("nope"), 0.0);
  EXPECT_EQ(reg.StatsFor("nope").Count(), 0u);

  const auto rows = reg.Rows();
  ASSERT_EQ(rows.size(), 3u);

  std::ostringstream jsonl;
  reg.ExportJsonl(jsonl);
  const std::string text = jsonl.str();
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);  // one JSON object per metric
  EXPECT_NE(text.find("\"hits\""), std::string::npos);
}

TEST(Metrics, FreeHelpersAreNoOpsWithoutRegistry) {
  ASSERT_EQ(ActiveMetrics(), nullptr);
  CountMetric("void");  // must not crash
  SetGauge("void", 1.0);
  ObserveMetric("void", 1.0);

  MetricsRegistry reg;
  SetActiveMetrics(&reg);
  CountMetric("live", 2);
  ObserveMetric("live.lat", 0.25);
  SetActiveMetrics(nullptr);
  EXPECT_EQ(reg.CounterValue("live"), 2);
  EXPECT_EQ(reg.StatsFor("live.lat").Count(), 1u);
}

TEST(ChromeExport, RoundTripPreservesSpansTracksAndArgs) {
  TraceRecorder rec;
  TrackHandle w0 = rec.RegisterTrack(WorkerTrack(0, "compute"));
  TrackHandle ctl = rec.RegisterTrack("controller");
  Span batch = MakeSpan("batch", Category::kCompute, 0.001, 0.002);
  batch.arg_keys[0] = "iter";
  batch.arg_vals[0] = 7.0;
  rec.Record(w0, batch);
  Span round = MakeSpan("round", Category::kRound, 0.0005, 0.004);
  round.arg_keys[0] = "round";
  round.arg_vals[0] = 1.0;
  round.arg_keys[1] = "contributors";
  round.arg_vals[1] = 3.0;
  rec.Record(ctl, round);

  std::stringstream io;
  ExportChromeTrace(rec, io);
  const ParsedTrace parsed = ParseChromeTrace(io);

  ASSERT_EQ(parsed.events.size(), 2u);
  ASSERT_EQ(parsed.track_names.size(), 2u);

  const TraceEvent* batch_ev = nullptr;
  const TraceEvent* round_ev = nullptr;
  for (const TraceEvent& ev : parsed.events) {
    if (ev.name == "batch") batch_ev = &ev;
    if (ev.name == "round") round_ev = &ev;
  }
  ASSERT_NE(batch_ev, nullptr);
  ASSERT_NE(round_ev, nullptr);

  EXPECT_EQ(batch_ev->ph, "X");
  EXPECT_EQ(batch_ev->cat, "compute");
  EXPECT_NEAR(batch_ev->ts, 1000.0, 1e-6);   // microseconds
  EXPECT_NEAR(batch_ev->dur, 2000.0, 1e-6);
  ASSERT_TRUE(batch_ev->args.count("iter"));
  EXPECT_DOUBLE_EQ(batch_ev->args.at("iter"), 7.0);
  EXPECT_EQ(parsed.track_names.at(batch_ev->tid), "worker0/compute");

  EXPECT_EQ(round_ev->cat, "round");
  EXPECT_DOUBLE_EQ(round_ev->args.at("round"), 1.0);
  EXPECT_DOUBLE_EQ(round_ev->args.at("contributors"), 3.0);
  EXPECT_EQ(parsed.track_names.at(round_ev->tid), "controller");
}

TEST(ChromeExport, ParserRejectsMalformedInput) {
  const char* bad[] = {
      "",                                   // empty
      "{\"traceEvents\": [",                // truncated
      "[1, 2, 3]",                          // not an object
      "{\"traceEvents\": {\"a\": 1}}",      // events not an array
      "{\"traceEvents\": [{\"ph\": }]}",    // bad value
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(ParseChromeTrace(in), std::runtime_error) << text;
  }
}

TEST(WorkerAccountsQuery, SumsOnlyBreakdownCategoriesPerRank) {
  TraceRecorder rec;
  TrackHandle compute = rec.RegisterTrack(WorkerTrack(1, "compute"));
  TrackHandle comm = rec.RegisterTrack(WorkerTrack(1, "comm"));
  TrackHandle ctl = rec.RegisterTrack("controller");
  rec.Record(compute, MakeSpan("batch", Category::kCompute, 0.0, 2.0));
  rec.Record(compute, MakeSpan("batch", Category::kCompute, 2.0, 1.0));
  rec.Record(comm, MakeSpan("wait_trigger", Category::kWait, 0.0, 0.5));
  rec.Record(comm, MakeSpan("partial_allreduce", Category::kComm, 0.5, 0.25));
  // Structural spans must not leak into the breakdown sums.
  rec.Record(comm, MakeSpan("round", Category::kRound, 0.0, 99.0));
  rec.Record(ctl, MakeSpan("round", Category::kRound, 0.0, 99.0));

  const auto accounts = WorkerAccounts(rec.Snapshot(), /*world=*/3);
  ASSERT_EQ(accounts.size(), 3u);
  EXPECT_DOUBLE_EQ(accounts[0].compute, 0.0);
  EXPECT_DOUBLE_EQ(accounts[1].compute, 3.0);  // both threads fold into rank 1
  EXPECT_DOUBLE_EQ(accounts[1].wait, 0.5);
  EXPECT_DOUBLE_EQ(accounts[1].comm, 0.25);
  EXPECT_EQ(accounts[1].spans, 4u);  // the kRound spans are not counted
  EXPECT_DOUBLE_EQ(accounts[2].compute, 0.0);
}

TEST(WorkerAccountsQuery, ParsedTraceMatchesLiveSnapshot) {
  TraceRecorder rec;
  TrackHandle t = rec.RegisterTrack(WorkerTrack(0, "compute"));
  rec.Record(t, MakeSpan("batch", Category::kCompute, 0.0, 0.125));
  rec.Record(t, MakeSpan("drain", Category::kComm, 0.125, 0.0625));

  const auto live = WorkerAccounts(rec.Snapshot(), 1);
  std::stringstream io;
  ExportChromeTrace(rec, io);
  const auto exported = WorkerAccounts(ParseChromeTrace(io), 1);

  ASSERT_EQ(exported.size(), 1u);
  EXPECT_NEAR(exported[0].compute, live[0].compute, 1e-9);
  EXPECT_NEAR(exported[0].comm, live[0].comm, 1e-9);
  EXPECT_EQ(exported[0].spans, live[0].spans);
}

TEST(FabricTracing, DelayedDeliveriesRecordInFlightSpansAndMetrics) {
  Session session;
  {
    net::Fabric fabric(
        2, [](net::Rank, net::Rank, std::size_t) { return 0.002; });
    net::Message msg;
    msg.tag = 7;
    msg.data = {1.0f, 2.0f};
    fabric.Send(0, 1, std::move(msg));
    ASSERT_TRUE(fabric.Recv(1, 7).has_value());
  }  // destructor joins the timer thread → the "fabric" track is quiescent

  const auto tracks = session.Trace().Snapshot();
  const TraceRecorder::TrackView* fabric_track = nullptr;
  for (const auto& track : tracks) {
    if (track.name == "fabric") fabric_track = &track;
  }
  ASSERT_NE(fabric_track, nullptr);
  ASSERT_EQ(fabric_track->spans.size(), 1u);
  const Span& span = fabric_track->spans[0];
  EXPECT_STREQ(span.name, "in_flight");
  EXPECT_EQ(span.category, Category::kComm);
  EXPECT_GE(span.duration, 0.002);  // at least the injected latency
  ASSERT_STREQ(span.arg_keys[0], "to");
  EXPECT_DOUBLE_EQ(span.arg_vals[0], 1.0);

  EXPECT_EQ(session.Metrics().CounterValue("fabric.messages"), 1);
  EXPECT_EQ(session.Metrics().CounterValue("fabric.delayed_messages"), 1);
  EXPECT_GT(session.Metrics().CounterValue("fabric.bytes"), 0);
  EXPECT_EQ(session.Metrics().StatsFor("fabric.injected_delay_s").Count(), 1u);
}

TEST(Session, InstallsAndUninstallsBothSides) {
  ASSERT_EQ(ActiveTrace(), nullptr);
  ASSERT_EQ(ActiveMetrics(), nullptr);
  {
    Session session;
    EXPECT_EQ(ActiveTrace(), &session.Trace());
    EXPECT_EQ(ActiveMetrics(), &session.Metrics());
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
  EXPECT_EQ(ActiveMetrics(), nullptr);
}

// The end-to-end contract: for a real training run, the per-worker
// compute/wait/comm derived purely from the trace must equal the engine's
// reported WorkerTimeBreakdown — both are fed by the same ScopedTimers.
TEST(Session, TraceAgreesWithReportedBreakdown) {
  data::Dataset all = data::MakeGaussianClusters(600, 8, 4, 0.35, 7);
  auto [train_set, val_set] = all.SplitHoldout(0.2);
  train::ModelFactory factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{8, 16, 4}, model_seed);
  };

  train::TrainerConfig config;
  config.protocol = train::Protocol::kRna;
  config.world = 3;
  config.max_rounds = 30;
  config.patience = 0;
  config.eval_period_s = 0.01;
  config.seed = 11;

  Session session;
  const train::TrainResult r =
      core::RunRna(config, factory, train_set, val_set);
  const auto accounts =
      WorkerAccounts(session.Trace().Snapshot(), config.world);

  EXPECT_GT(session.Trace().TotalRecorded(), 0u);
  ASSERT_EQ(r.breakdown.size(), config.world);
  ASSERT_EQ(accounts.size(), config.world);
  for (std::size_t w = 0; w < config.world; ++w) {
    EXPECT_GT(accounts[w].spans, 0u) << "rank " << w;
    EXPECT_NEAR(accounts[w].compute, r.breakdown[w].compute, 1e-9);
    EXPECT_NEAR(accounts[w].wait, r.breakdown[w].wait, 1e-9);
    EXPECT_NEAR(accounts[w].comm, r.breakdown[w].comm, 1e-9);
  }

  // Round metrics flow to the registry alongside the spans.
  EXPECT_EQ(session.Metrics().CounterValue("round.count"),
            static_cast<std::int64_t>(r.rounds));
  EXPECT_EQ(session.Metrics().StatsFor("round.contributors").Count(),
            r.rounds);
}

}  // namespace
}  // namespace rna::obs
