// Tests for the fault-injection layer: the FaultPlan's determinism contract
// (decisions are a pure function of seed + stream coordinates, never of
// thread timing), scripted sequence-window rules, first-match-wins rule
// shadowing, fabric-level injection behavior, the per-run FaultRuntime
// (crash / hang / flaky schedules), and the lockstep RoundRobinGate.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/ps/server.hpp"
#include "rna/train/config.hpp"
#include "rna/train/fault.hpp"

namespace rna {
namespace {

// --------------------------------------------------------------------------
// FaultPlan: the determinism contract.

TEST(FaultPlan, SameSeedSameDecisions) {
  const auto run = [](std::uint64_t seed) {
    net::FaultPlan plan(seed);
    net::FaultRule rule;
    rule.drop_prob = 0.3;
    rule.dup_prob = 0.2;
    rule.delay_prob = 0.1;
    rule.delay_s = 0.001;
    plan.AddRule(rule);
    std::vector<net::FaultDecision> out;
    for (int i = 0; i < 200; ++i) {
      out.push_back(plan.Decide(0, 1, 7));
      out.push_back(plan.Decide(1, 0, 7));
      out.push_back(plan.Decide(0, 1, 9));
    }
    return out;
  };
  const auto a = run(1234);
  const auto b = run(1234);
  const auto c = run(1235);
  ASSERT_EQ(a.size(), b.size());
  bool any_differs_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].drop, b[i].drop) << "decision " << i;
    EXPECT_EQ(a[i].duplicate, b[i].duplicate) << "decision " << i;
    EXPECT_EQ(a[i].extra_delay, b[i].extra_delay) << "decision " << i;
    any_differs_from_c |= a[i].drop != c[i].drop;
  }
  EXPECT_TRUE(any_differs_from_c) << "seed must actually matter";
}

TEST(FaultPlan, StreamsAreIndependent) {
  // Interleaving Decide calls across streams must not perturb any single
  // stream's decisions: each (from, to, tag) keeps its own sequence counter.
  net::FaultPlan solo(99);
  net::FaultPlan mixed(99);
  net::FaultRule rule;
  rule.drop_prob = 0.5;
  solo.AddRule(rule);
  mixed.AddRule(rule);
  std::vector<bool> solo_drops;
  for (int i = 0; i < 50; ++i) solo_drops.push_back(solo.Decide(0, 1, 3).drop);
  for (int i = 0; i < 50; ++i) {
    (void)mixed.Decide(2, 1, 3);  // noise on another stream
    EXPECT_EQ(mixed.Decide(0, 1, 3).drop, solo_drops[static_cast<std::size_t>(i)])
        << "decision " << i;
  }
}

TEST(FaultPlan, ScriptedSeqWindowHitsExactMessage) {
  // {seq_begin = 3, seq_end = 4, drop_prob = 1} drops exactly the 4th
  // message of the matched stream — the scripted-chaos primitive.
  net::FaultPlan plan(7);
  net::FaultRule rule;
  rule.from = 0;
  rule.to = 1;
  rule.tag_lo = 5;
  rule.tag_hi = 5;
  rule.seq_begin = 3;
  rule.seq_end = 4;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(plan.Decide(0, 1, 5).drop, i == 3) << "message " << i;
  }
  // Another stream with the same tag is untouched.
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(plan.Decide(1, 0, 5).drop);
}

TEST(FaultPlan, FirstMatchingRuleWins) {
  // A narrow always-deliver rule shadows a catch-all always-drop rule —
  // the mechanism BuildFaultPlan uses to give PS traffic its own drop rate.
  net::FaultPlan plan(7);
  net::FaultRule keep;
  keep.tag_lo = 100;
  keep.tag_hi = 100;
  plan.AddRule(keep);  // all probabilities zero: deliver
  net::FaultRule drop_all;
  drop_all.drop_prob = 1.0;
  plan.AddRule(drop_all);
  EXPECT_FALSE(plan.Decide(0, 1, 100).drop);
  EXPECT_TRUE(plan.Decide(0, 1, 101).drop);
}

TEST(FaultPlan, CountersTally) {
  net::FaultPlan plan(7);
  net::FaultRule rule;
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  for (int i = 0; i < 5; ++i) (void)plan.Decide(0, 1, 1);
  const net::FaultCounters totals = plan.Totals();
  EXPECT_EQ(totals.examined, 5u);
  EXPECT_EQ(totals.dropped, 5u);
  EXPECT_EQ(totals.duplicated, 0u);
}

// --------------------------------------------------------------------------
// Fabric-level injection.

TEST(FabricFault, DropRuleSwallowsMatchingTraffic) {
  net::Fabric fabric(2);
  auto plan = std::make_shared<net::FaultPlan>(11);
  net::FaultRule rule;
  rule.tag_lo = 5;
  rule.tag_hi = 5;
  rule.drop_prob = 1.0;
  plan->AddRule(rule);
  fabric.InstallFaultPlan(plan);
  net::Message doomed;
  doomed.tag = 5;
  fabric.Send(0, 1, std::move(doomed));
  net::Message fine;
  fine.tag = 6;
  fabric.Send(0, 1, std::move(fine));
  EXPECT_TRUE(fabric.RecvFor(1, 6, 1.0).has_value());
  EXPECT_FALSE(fabric.TryRecv(1, 5).has_value());
  EXPECT_EQ(plan->Totals().dropped, 1u);
  // Traffic stats still count the send: the sender paid for the bytes.
  EXPECT_EQ(fabric.StatsFor(0).messages_sent, 2u);
}

TEST(FabricFault, DuplicateRuleDeliversTwice) {
  net::Fabric fabric(2);
  auto plan = std::make_shared<net::FaultPlan>(11);
  net::FaultRule rule;
  rule.dup_prob = 1.0;
  plan->AddRule(rule);
  fabric.InstallFaultPlan(plan);
  net::Message m;
  m.tag = 3;
  m.meta = {42};
  fabric.Send(0, 1, std::move(m));
  auto first = fabric.RecvFor(1, 3, 1.0);
  auto second = fabric.RecvFor(1, 3, 1.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->meta[0], 42);
  EXPECT_EQ(second->meta[0], 42);
  EXPECT_EQ(plan->Totals().duplicated, 1u);
}

TEST(FabricFault, DelayRuleDefersDelivery) {
  // No latency model: the delay fault alone must spin up the timer thread.
  net::Fabric fabric(2);
  auto plan = std::make_shared<net::FaultPlan>(11);
  net::FaultRule rule;
  rule.delay_prob = 1.0;
  rule.delay_s = 0.03;
  plan->AddRule(rule);
  fabric.InstallFaultPlan(plan);
  net::Message m;
  m.tag = 1;
  const common::Stopwatch watch;
  fabric.Send(0, 1, std::move(m));
  EXPECT_FALSE(fabric.TryRecv(1, 1).has_value());  // still in flight
  auto msg = fabric.RecvFor(1, 1, 5.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(watch.Elapsed(), 0.025);
  EXPECT_EQ(plan->Totals().delayed, 1u);
}

// --------------------------------------------------------------------------
// BuildFaultPlan / EffectiveFaultSeed lowering.

TEST(BuildFaultPlan, NullWhenNoNetworkFault) {
  train::TrainerConfig config;
  EXPECT_EQ(train::BuildFaultPlan(config), nullptr);
  // Worker-schedule-only faults need no network plan either.
  config.fault.workers.push_back({});
  EXPECT_EQ(train::BuildFaultPlan(config), nullptr);
}

TEST(BuildFaultPlan, PsRuleShadowsCatchAll) {
  // ps_drop_prob = 1 with drop_prob = 0: PS tags are dropped, the rest of
  // the traffic — including tags adjacent to the PS range — is delivered.
  train::TrainerConfig config;
  config.fault.ps_drop_prob = 1.0;
  config.fault.delay_prob = 0.0;
  auto plan = train::BuildFaultPlan(config);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Decide(0, 1, ps::PsTags::kRequest).drop);
  EXPECT_TRUE(plan->Decide(0, 1, ps::PsTags::kReply).drop);
  EXPECT_FALSE(plan->Decide(0, 1, ps::PsTags::kRequest - 1).drop);
  EXPECT_FALSE(plan->Decide(0, 1, ps::PsTags::kReply + 1).drop);
}

TEST(EffectiveFaultSeed, DerivedFromTrainingSeedWhenUnset) {
  train::TrainerConfig a;
  a.seed = 42;
  train::TrainerConfig b = a;
  EXPECT_EQ(train::EffectiveFaultSeed(a), train::EffectiveFaultSeed(b));
  b.seed = 43;
  EXPECT_NE(train::EffectiveFaultSeed(a), train::EffectiveFaultSeed(b));
  b.fault.seed = 777;  // explicit fault seed wins over the derivation
  EXPECT_EQ(train::EffectiveFaultSeed(b), 777u);
}

// --------------------------------------------------------------------------
// FaultRuntime: worker schedules.

TEST(FaultRuntime, CrashAtIterationIsSticky) {
  train::TrainerConfig config;
  config.world = 2;
  train::WorkerFaultSchedule s;
  s.rank = 1;
  s.crash_at_iteration = 3;
  config.fault.workers.push_back(s);
  train::FaultRuntime faults(config);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(faults.BeforeIteration(1, i), train::IterationFate::kRun);
  }
  EXPECT_EQ(faults.BeforeIteration(1, 3), train::IterationFate::kCrash);
  // >= (not ==): once past the death iteration the rank may never run again.
  EXPECT_EQ(faults.BeforeIteration(1, 7), train::IterationFate::kCrash);
  // Rank 0 is unscheduled and unaffected.
  EXPECT_EQ(faults.BeforeIteration(0, 100), train::IterationFate::kRun);
}

TEST(FaultRuntime, KillIsPermanentAndCounted) {
  train::TrainerConfig config;
  config.world = 3;
  train::FaultRuntime faults(config);
  EXPECT_EQ(faults.LiveCount(), 3u);
  faults.Kill(1);
  faults.Kill(1);  // idempotent
  EXPECT_FALSE(faults.Alive(1));
  EXPECT_EQ(faults.LiveCount(), 2u);
  // A killed rank crashes at its next compute hook regardless of schedule.
  EXPECT_EQ(faults.BeforeIteration(1, 0), train::IterationFate::kCrash);
}

TEST(FaultRuntime, ShouldCrashInRoundFiresFromScheduledRound) {
  train::TrainerConfig config;
  config.world = 2;
  train::WorkerFaultSchedule s;
  s.rank = 0;
  s.crash_in_round = 2;
  config.fault.workers.push_back(s);
  train::FaultRuntime faults(config);
  EXPECT_FALSE(faults.ShouldCrashInRound(0, 1));
  EXPECT_TRUE(faults.ShouldCrashInRound(0, 2));
  EXPECT_TRUE(faults.ShouldCrashInRound(0, 5));  // >= until the kill lands
  faults.Kill(0);
  EXPECT_FALSE(faults.ShouldCrashInRound(0, 5));  // already dead
  EXPECT_FALSE(faults.ShouldCrashInRound(1, 2));  // unscheduled rank
}

TEST(FaultRuntime, FlakyWindowIsDeterministicPerSeed) {
  // The flaky coin flips come from a hash of (fault seed, rank, iteration),
  // so two runtimes with the same config agree on *which* iterations sleep.
  // Observe the decision through wall clock with a measurable delay.
  train::TrainerConfig config;
  config.world = 1;
  config.fault.seed = 31337;
  train::WorkerFaultSchedule s;
  s.rank = 0;
  s.flaky_from_iteration = 0;
  s.flaky_until_iteration = 12;
  s.flaky_prob = 0.5;
  s.flaky_delay_s = 0.02;
  config.fault.workers.push_back(s);
  const auto observe = [&config] {
    train::FaultRuntime faults(config);
    std::vector<bool> slept;
    for (std::size_t i = 0; i < 12; ++i) {
      const common::Stopwatch watch;
      EXPECT_EQ(faults.BeforeIteration(0, i), train::IterationFate::kRun);
      slept.push_back(watch.Elapsed() >= 0.01);
    }
    return slept;
  };
  EXPECT_EQ(observe(), observe());
}

// --------------------------------------------------------------------------
// RoundRobinGate: the lockstep pacer for controller-less protocols.

TEST(RoundRobinGate, EnforcesFixedGlobalOrder) {
  const std::size_t world = 3;
  const int iters = 5;
  train::RoundRobinGate gate(world);
  common::Mutex mu;
  std::vector<std::size_t> order;
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < iters; ++i) {
        if (!gate.AcquireTurn(w)) return;
        {
          common::MutexLock lock(mu);
          order.push_back(w);
        }
        gate.ReleaseTurn(w);
      }
      gate.Retire(w);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), world * iters);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i % world) << "slot " << i;
  }
}

TEST(RoundRobinGate, RetiredRankIsSkipped) {
  train::RoundRobinGate gate(3);
  gate.Retire(1);
  std::vector<std::size_t> order;
  std::thread t0([&] {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(gate.AcquireTurn(0));
      order.push_back(0);
      gate.ReleaseTurn(0);
    }
    gate.Retire(0);
  });
  std::thread t2([&] {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(gate.AcquireTurn(2));
      order.push_back(2);
      gate.ReleaseTurn(2);
    }
    gate.Retire(2);
  });
  t0.join();
  t2.join();
  const std::vector<std::size_t> expect = {0, 2, 0, 2};
  EXPECT_EQ(order, expect);
}

TEST(RoundRobinGate, AcquireTurnForTimesOutWhenTurnNeverComes) {
  train::RoundRobinGate gate(2);
  // Rank 0 holds the cursor and never releases: rank 1's timed acquire must
  // give up instead of stalling its report deadline.
  const common::Stopwatch watch;
  EXPECT_FALSE(gate.AcquireTurnFor(1, 0.02));
  EXPECT_GE(watch.Elapsed(), 0.015);
  // Retiring the blocker hands rank 1 the turn.
  gate.Retire(0);
  EXPECT_TRUE(gate.AcquireTurnFor(1, 1.0));
  gate.ReleaseTurn(1);
}

TEST(RoundRobinGate, ShutdownReleasesWaiters) {
  train::RoundRobinGate gate(2);
  std::thread waiter([&] { EXPECT_FALSE(gate.AcquireTurn(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  gate.Shutdown();
  waiter.join();
}

TEST(RoundRobinGate, RetireOfCurrentHolderAdvancesCursor) {
  // The "Retire after break" safety net: a rank that exits its loop while
  // holding the turn must not wedge the rotation. Double-retire is benign.
  train::RoundRobinGate gate(2);
  ASSERT_TRUE(gate.AcquireTurn(0));
  gate.Retire(0);  // still holding the turn
  gate.Retire(0);  // and the loop-exit path retires again
  EXPECT_TRUE(gate.AcquireTurnFor(1, 1.0));
  gate.ReleaseTurn(1);
}

}  // namespace
}  // namespace rna
