// Data-plane regression suite (see DESIGN.md "Data plane & memory"):
//   - the vectorized kernels in rna/common/simd.hpp are bitwise identical
//     to their scalar references, standalone and end-to-end through the
//     pooled ring / fused / partial collectives;
//   - empty chunks (world > data.size()) survive fault-injected fabrics and
//     tag purges;
//   - BarrierFor honours its whole-barrier deadline;
//   - the BufferPool really makes the steady state allocation-free (hit
//     counters), and its metrics reach the registry.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/fusion.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/simd.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"

namespace rna {
namespace {

using collectives::Group;

/// CollectiveOptions with just a tag base and optional per-hop deadline —
/// ring schedule, no compression (the pre-policy data path).
collectives::CollectiveOptions Opts(int tag_base,
                                    common::Seconds hop_timeout = 0.0) {
  collectives::CollectiveOptions o;
  o.tag_base = tag_base;
  o.hop_timeout = hop_timeout;
  return o;
}

/// Bitwise float comparison: NaNs and signed zeros must match exactly too.
::testing::AssertionResult BitwiseEqual(std::span<const float> a,
                                        std::span<const float> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " (0x" << std::hex << ba
             << ") vs " << b[i] << " (0x" << bb << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Deterministic awkward values: mixes magnitudes and signs so rounding
/// differences between kernel paths cannot hide.
std::vector<float> TestVector(std::size_t n, std::uint32_t salt) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<float>((i * 2654435761u + salt) % 1000);
    v[i] = (k - 500.0f) * 1.0009765625f + 1e-3f * static_cast<float>(i % 7);
  }
  return v;
}

/// Restores kAuto dispatch even when an assertion fails mid-test.
struct ScopedDispatch {
  explicit ScopedDispatch(common::simd::Dispatch d) {
    common::simd::SetDispatch(d);
  }
  ~ScopedDispatch() {
    common::simd::SetDispatch(common::simd::Dispatch::kAuto);
  }
};

const std::size_t kKernelSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64,
                                    100, 1027};

TEST(SimdKernels, AddIntoBitwiseMatchesScalar) {
  for (const std::size_t n : kKernelSizes) {
    std::vector<float> wide = TestVector(n, 1);
    std::vector<float> narrow = wide;
    const std::vector<float> src = TestVector(n, 2);
    common::simd::detail::AddInto(wide.data(), src.data(), n);
    common::simd::scalar::AddInto(narrow, src);
    EXPECT_TRUE(BitwiseEqual(wide, narrow)) << "n=" << n;
  }
}

TEST(SimdKernels, ScaleIntoBitwiseMatchesScalar) {
  for (const std::size_t n : kKernelSizes) {
    std::vector<float> wide = TestVector(n, 3);
    std::vector<float> narrow = wide;
    common::simd::detail::ScaleInto(wide.data(), 1.0f / 3.0f, n);
    common::simd::scalar::ScaleInto(narrow, 1.0f / 3.0f);
    EXPECT_TRUE(BitwiseEqual(wide, narrow)) << "n=" << n;
  }
}

TEST(SimdKernels, WeightedAccumulateBitwiseMatchesScalar) {
  for (const std::size_t n : kKernelSizes) {
    std::vector<float> wide = TestVector(n, 4);
    std::vector<float> narrow = wide;
    const std::vector<float> src = TestVector(n, 5);
    common::simd::detail::WeightedAccumulate(wide.data(), src.data(), 2.5f,
                                             n);
    common::simd::scalar::WeightedAccumulate(narrow, src, 2.5f);
    EXPECT_TRUE(BitwiseEqual(wide, narrow)) << "n=" << n;
  }
}

TEST(SimdKernels, ScaledCopyBitwiseMatchesScalar) {
  for (const std::size_t n : kKernelSizes) {
    std::vector<float> wide(n, -1.0f), narrow(n, -1.0f);
    const std::vector<float> src = TestVector(n, 6);
    common::simd::detail::ScaledCopy(wide.data(), src.data(), 1.0f / 7.0f,
                                     n);
    common::simd::scalar::ScaledCopy(narrow, src, 1.0f / 7.0f);
    EXPECT_TRUE(BitwiseEqual(wide, narrow)) << "n=" << n;
  }
}

TEST(SimdKernels, AverageIntoBitwiseMatchesScalar) {
  for (const std::size_t n : kKernelSizes) {
    std::vector<float> wide = TestVector(n, 7);
    std::vector<float> narrow = wide;
    const std::vector<float> src = TestVector(n, 8);
    common::simd::detail::AverageInto(wide.data(), src.data(), n);
    common::simd::scalar::AverageInto(narrow, src);
    EXPECT_TRUE(BitwiseEqual(wide, narrow)) << "n=" << n;
  }
}

TEST(SimdKernels, DispatchSwitchSelectsScalar) {
  ASSERT_EQ(common::simd::ActiveDispatch(), common::simd::Dispatch::kAuto);
  {
    ScopedDispatch scoped(common::simd::Dispatch::kScalar);
    EXPECT_EQ(common::simd::ActiveDispatch(),
              common::simd::Dispatch::kScalar);
  }
  EXPECT_EQ(common::simd::ActiveDispatch(), common::simd::Dispatch::kAuto);
}

// ---------------------------------------------------------------------------
// End-to-end bitwise equivalence through the collectives. The ring folds
// chunks in a fixed step order, so for a fixed world size the result is a
// deterministic function of the inputs — the vectorized and scalar runs
// must agree bit for bit.

std::vector<std::vector<float>> RunRing(std::size_t world, std::size_t n,
                                        common::simd::Dispatch dispatch) {
  ScopedDispatch scoped(dispatch);
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> bufs(world);
  for (std::size_t r = 0; r < world; ++r) {
    bufs[r] = TestVector(n, static_cast<std::uint32_t>(r + 1));
  }
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      collectives::Allreduce({fabric, group, r}, Opts(10), bufs[r]);
    });
  }
  for (auto& t : threads) t.join();
  return bufs;
}

TEST(DataPlaneEquivalence, RingAllreduceBitwiseAcrossSizes) {
  const std::size_t world = 4;
  // The issue's boundary sizes: empty, single element, world−1, world+1,
  // and a large non-multiple of both world and the SIMD lane width.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, world - 1,
                              world + 1, std::size_t{4096 + 5}}) {
    const auto wide = RunRing(world, n, common::simd::Dispatch::kAuto);
    const auto narrow = RunRing(world, n, common::simd::Dispatch::kScalar);
    for (std::size_t r = 0; r < world; ++r) {
      EXPECT_TRUE(BitwiseEqual(wide[r], narrow[r]))
          << "n=" << n << " rank=" << r;
      EXPECT_TRUE(BitwiseEqual(wide[r], wide[0]))
          << "ranks disagree, n=" << n;
    }
  }
}

std::vector<std::vector<float>> RunPartial(std::size_t world, std::size_t n,
                                           common::simd::Dispatch dispatch,
                                           std::size_t* contributors) {
  ScopedDispatch scoped(dispatch);
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> bufs(world);
  for (std::size_t r = 0; r < world; ++r) {
    bufs[r] = TestVector(n, static_cast<std::uint32_t>(100 + r));
  }
  std::vector<std::size_t> counts(world, 0);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      const auto result = collectives::PartialAllreduceFor(
          {fabric, group, r}, Opts(10), bufs[r],
          /*contributes=*/r % 2 == 0);
      counts[r] = result.contributors;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 1; r < world; ++r) EXPECT_EQ(counts[r], counts[0]);
  *contributors = counts[0];
  return bufs;
}

TEST(DataPlaneEquivalence, PartialAllreduceBitwiseAcrossSizes) {
  const std::size_t world = 4;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, world - 1,
                              world + 1, std::size_t{1024 + 3}}) {
    std::size_t wide_count = 0, narrow_count = 0;
    const auto wide =
        RunPartial(world, n, common::simd::Dispatch::kAuto, &wide_count);
    const auto narrow =
        RunPartial(world, n, common::simd::Dispatch::kScalar, &narrow_count);
    EXPECT_EQ(wide_count, 2u);  // ranks 0 and 2 contribute
    EXPECT_EQ(wide_count, narrow_count);
    for (std::size_t r = 0; r < world; ++r) {
      EXPECT_TRUE(BitwiseEqual(wide[r], narrow[r]))
          << "n=" << n << " rank=" << r;
    }
  }
}

/// Fused allreduce must be bitwise identical to ring-reducing each bucket's
/// concatenation — pipelining and pooled staging change nothing numerically.
TEST(DataPlaneEquivalence, FusedMatchesPerBucketRingBitwise) {
  const std::size_t world = 4;
  const std::vector<collectives::TensorSpec> specs = {
      {"a", 60}, {"b", 60}, {"c", 60}, {"d", 60}, {"e", 9}};
  const auto plan = collectives::FusionPlan::Build(specs, /*max=*/128);
  ASSERT_GE(plan.BucketCount(), 2u) << "need a multi-bucket pipeline";

  // Per-rank tensor inputs.
  std::vector<std::vector<std::vector<float>>> tensors(world);
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t t = 0; t < specs.size(); ++t) {
      tensors[r].push_back(TestVector(
          specs[t].elements, static_cast<std::uint32_t>(r * 31 + t)));
    }
  }

  // Fused run.
  auto fused = tensors;
  {
    net::Fabric fabric(world);
    const Group group = Group::Full(world);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float*> ptrs;
        for (auto& t : fused[r]) ptrs.push_back(t.data());
        collectives::FusedAllreduce({fabric, group, r}, Opts(100), specs,
                                    ptrs, plan);
      });
    }
    for (auto& t : threads) t.join();
  }

  // Reference: one plain ring per bucket over the concatenated bucket.
  for (const auto& bucket : plan.buckets) {
    net::Fabric fabric(world);
    const Group group = Group::Full(world);
    std::vector<std::vector<float>> concat(world);
    for (std::size_t r = 0; r < world; ++r) {
      for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
        const auto& src = tensors[r][bucket.first_tensor + t];
        concat[r].insert(concat[r].end(), src.begin(), src.end());
      }
    }
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collectives::Allreduce({fabric, group, r}, Opts(10), concat[r]);
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t r = 0; r < world; ++r) {
      std::size_t offset = 0;
      for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
        const auto& got = fused[r][bucket.first_tensor + t];
        EXPECT_TRUE(BitwiseEqual(
            got, std::span<const float>(concat[r].data() + offset,
                                        got.size())))
            << "rank " << r << " tensor " << bucket.first_tensor + t;
        offset += got.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// world > data.size(): the tail chunks are empty and their hops carry
// zero-length payloads. Those hops must be first-class citizens — fault
// drops/dups/delays and tag purges included.

TEST(EmptyChunks, RingCorrectWithWorldLargerThanData) {
  const std::size_t world = 8;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{3}, world - 1}) {
    net::Fabric fabric(world);
    const Group group = Group::Full(world);
    std::vector<std::vector<float>> bufs(
        world, std::vector<float>(n, 1.0f));
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        collectives::Allreduce({fabric, group, r}, Opts(10), bufs[r]);
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t r = 0; r < world; ++r) {
      for (const float x : bufs[r]) {
        EXPECT_EQ(x, static_cast<float>(world)) << "n=" << n;
      }
    }
  }
}

TEST(EmptyChunks, SurviveDropDupDelayAndPurge) {
  const std::size_t world = 4;
  const std::size_t n = 2;  // two non-empty chunks, two empty ones
  net::Fabric fabric(world);
  const Group group = Group::Full(world);

  // 30% drop + dup + delay across the first rounds' ring tags (the
  // zero-length hop payloads are matched like any other message); rounds
  // past the storm window are clean, so lockstep retries must converge.
  auto plan = std::make_shared<net::FaultPlan>(/*seed=*/7);
  net::FaultRule rule;
  rule.tag_lo = 0;
  rule.tag_hi = 4 * 64 - 1;  // first 4 rounds of a 64-tag stride
  rule.drop_prob = 0.3;
  rule.dup_prob = 0.2;
  rule.delay_prob = 0.2;
  rule.delay_s = 0.01;
  plan->AddRule(rule);
  fabric.InstallFaultPlan(plan);

  // Retries are coordinated with an in-process std::barrier: a collective
  // only completes when every member participates, so a rank must not quit
  // retrying while a peer still needs it (that was the pre-timed-ring
  // deadlock in thread form). A real protocol gets this from its
  // controller; the test uses the barrier plus a shared success count.
  constexpr int kMaxRounds = 16;
  std::barrier sync(static_cast<std::ptrdiff_t>(world));
  std::atomic<int> ok_count{0};
  std::atomic<int> done_round{-1};
  std::vector<std::vector<float>> bufs(world);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < kMaxRounds; ++round) {
        const int tag_base = round * 64;
        bufs[r].assign(n, 1.0f);
        const bool ok = collectives::AllreduceFor(
            {fabric, group, r}, Opts(tag_base, /*hop_timeout=*/0.25),
            bufs[r]);
        if (ok) {
          ok_count.fetch_add(1);
        } else {
          // Aborted: purge the round's tag range (zero-length payloads
          // included) so stragglers cannot leak into the next attempt.
          fabric.Purge(r, tag_base, tag_base + 63);
        }
        sync.arrive_and_wait();
        if (r == 0 && ok_count.exchange(0) == static_cast<int>(world)) {
          done_round.store(round);
        }
        sync.arrive_and_wait();
        if (done_round.load() >= 0) return;
      }
    });
  }
  for (auto& t : threads) t.join();

  // The storm ends by round 4, so some round completed on every rank
  // simultaneously — and that round's sum is exact everywhere.
  ASSERT_GE(done_round.load(), 0) << "no round ever completed on all ranks";
  for (std::size_t r = 0; r < world; ++r) {
    for (const float x : bufs[r]) {
      EXPECT_EQ(x, static_cast<float>(world));
    }
  }
}

// ---------------------------------------------------------------------------
// BarrierFor deadline semantics.

TEST(BarrierFor, CompletesWhenEveryoneArrives) {
  const std::size_t world = 4;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<int> ok(world, 0);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      ok[r] = collectives::BarrierFor(fabric, group, r, /*tag_base=*/5,
                                      /*timeout=*/5.0)
                  ? 1
                  : 0;
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < world; ++r) EXPECT_EQ(ok[r], 1);
}

TEST(BarrierFor, LeaderTimesOutOnMissingMember) {
  net::Fabric fabric(2);
  const Group group = Group::Full(2);
  // Member 1 never arrives; the leader must give up by the deadline.
  EXPECT_FALSE(
      collectives::BarrierFor(fabric, group, 0, /*tag_base=*/5, 0.2));
}

TEST(BarrierFor, FollowerTimesOutOnMissingRelease) {
  net::Fabric fabric(2);
  const Group group = Group::Full(2);
  // The leader never runs, so no release ever comes.
  EXPECT_FALSE(
      collectives::BarrierFor(fabric, group, 1, /*tag_base=*/5, 0.2));
}

// ---------------------------------------------------------------------------
// BufferPool behaviour and metrics.

TEST(BufferPool, SteadyStateRingIsAllocationFree) {
  const std::size_t world = 4;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  auto run_round = [&](int round) {
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < world; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(1024, 1.0f);
        collectives::Allreduce({fabric, group, r}, Opts(round * 16), data);
      });
    }
    for (auto& t : threads) t.join();
  };
  run_round(0);  // warmup populates the freelist
  const auto warm = fabric.Pool().GetStats();
  for (int round = 1; round < 5; ++round) run_round(round);
  const auto done = fabric.Pool().GetStats();
  EXPECT_EQ(done.misses, warm.misses)
      << "steady-state ring still allocating";
  EXPECT_GT(done.hits, warm.hits);
  EXPECT_GT(done.bytes_reused, warm.bytes_reused);
}

TEST(BufferPool, ZeroLengthAcquiresDoNotTouchThePool) {
  net::BufferPool pool;
  auto buffer = pool.Acquire(0);
  EXPECT_TRUE(buffer.empty());
  pool.Recycle(std::move(buffer));
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.recycled, 0u);
}

TEST(BufferPool, BoundedFreelistDiscardsOverflow) {
  net::BufferPool pool(/*max_buffers=*/2);
  for (int i = 0; i < 4; ++i) {
    pool.Recycle(std::vector<float>(8, 0.0f));
  }
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.recycled, 2u);
  EXPECT_EQ(stats.discarded, 2u);
}

TEST(BufferPool, ReusesRecycledCapacity) {
  net::BufferPool pool;
  pool.Recycle(std::vector<float>(64, 0.0f));
  auto buffer = pool.Acquire(32);  // fits in recycled capacity: a hit
  EXPECT_EQ(buffer.size(), 32u);
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.bytes_reused, 32u * sizeof(float));
}

TEST(BufferPool, PublishesMetricsOnShutdown) {
  obs::MetricsRegistry registry;
  obs::SetActiveMetrics(&registry);
  {
    net::Fabric fabric(2);
    const Group group = Group::Full(2);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(256, 1.0f);
        for (int round = 0; round < 3; ++round) {
          collectives::Allreduce({fabric, group, r}, Opts(round * 8),
                                 data);
        }
      });
    }
    for (auto& t : threads) t.join();
    fabric.Shutdown();
  }
  obs::SetActiveMetrics(nullptr);
  EXPECT_GT(registry.CounterValue("fabric.pool.hits"), 0);
  EXPECT_GT(registry.CounterValue("fabric.pool.bytes_reused"), 0);
  EXPECT_GT(registry.GaugeValue("fabric.pool.hit_rate"), 0.0);
}

// ---------------------------------------------------------------------------
// Per-format wire accounting: Compression::kNone must put exactly the raw
// payload bytes on the wire (no framing, no expansion — the pre-policy byte
// stream), and the counters must reach the metrics registry at Shutdown.

TEST(WireAccounting, RawRingAddsNoFramingOverhead) {
  const std::size_t world = 4, n = 1024;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  std::vector<std::vector<float>> bufs(world, std::vector<float>(n, 1.0f));
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      collectives::Allreduce({fabric, group, r}, Opts(10), bufs[r]);
    });
  }
  for (auto& t : threads) t.join();
  const auto raw = fabric.WireStatsFor(net::wire::Format::kRaw);
  // Each rank sends one chunk per reduce step and one per gather step:
  // 2(w−1) chunks of n/w floats, across all w ranks.
  EXPECT_EQ(raw.chunks, 2 * (world - 1) * world);
  EXPECT_EQ(raw.raw_bytes,
            2 * (world - 1) * world * (n / world) * sizeof(float));
  EXPECT_EQ(raw.wire_bytes, raw.raw_bytes) << "kNone must not frame";
  for (const auto f : {net::wire::Format::kFp16, net::wire::Format::kInt8,
                       net::wire::Format::kTopK}) {
    EXPECT_EQ(fabric.WireStatsFor(f).chunks, 0u);
  }
}

TEST(WireAccounting, CompressedRingShrinksWireBytes) {
  const std::size_t world = 4, n = 1024;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  collectives::CollectiveOptions opts = Opts(10);
  opts.compression = collectives::Compression::kFp16;
  std::vector<std::vector<float>> bufs(world, std::vector<float>(n, 1.0f));
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      collectives::Allreduce({fabric, group, r}, opts, bufs[r]);
    });
  }
  for (auto& t : threads) t.join();
  const auto fp16 = fabric.WireStatsFor(net::wire::Format::kFp16);
  EXPECT_EQ(fp16.chunks, 2 * (world - 1) * world);
  EXPECT_LT(fp16.wire_bytes, fp16.raw_bytes)
      << "fp16 frames must be smaller than the raw payload";
  EXPECT_EQ(fabric.WireStatsFor(net::wire::Format::kRaw).chunks, 0u);
}

TEST(WireAccounting, PublishesWireMetricsOnShutdown) {
  obs::MetricsRegistry registry;
  obs::SetActiveMetrics(&registry);
  {
    net::Fabric fabric(2);
    const Group group = Group::Full(2);
    collectives::CollectiveOptions lossy = Opts(64);
    lossy.compression = collectives::Compression::kInt8;
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        std::vector<float> data(256, 1.0f);
        collectives::Allreduce({fabric, group, r}, Opts(8), data);
        collectives::Allreduce({fabric, group, r}, lossy, data);
      });
    }
    for (auto& t : threads) t.join();
    fabric.Shutdown();
  }
  obs::SetActiveMetrics(nullptr);
  EXPECT_GT(registry.CounterValue("fabric.wire.raw.chunks"), 0);
  EXPECT_GT(registry.CounterValue("fabric.wire.int8.chunks"), 0);
  EXPECT_GT(registry.CounterValue("fabric.wire.int8.raw_bytes"),
            registry.CounterValue("fabric.wire.int8.wire_bytes"));
}

// ---------------------------------------------------------------------------
// Timed fused allreduce: hop deadlines propagate through every bucket.

TEST(FusedAllreduceFor, TimesOutWhenAMemberIsAbsent) {
  const std::size_t world = 3;
  net::Fabric fabric(world);
  const Group group = Group::Full(world);
  const std::vector<collectives::TensorSpec> specs = {{"a", 32}, {"b", 32}};
  const auto plan = collectives::FusionPlan::Build(specs, /*max=*/32);
  // Ranks 0 and 1 run the collective; rank 2 never shows up.
  std::vector<int> ok(2, 1);
  std::vector<std::vector<std::vector<float>>> data(2);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      data[r] = {std::vector<float>(32, 1.0f),
                 std::vector<float>(32, 2.0f)};
      std::vector<float*> ptrs = {data[r][0].data(), data[r][1].data()};
      ok[r] = collectives::FusedAllreduceFor(
                  {fabric, group, r}, Opts(0, /*hop_timeout=*/0.2), specs,
                  ptrs, plan)
                  ? 1
                  : 0;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok[0], 0);
  EXPECT_EQ(ok[1], 0);
  // The aborted call's contract: purge its whole tag range before reuse.
  const int span =
      static_cast<int>(plan.BucketCount()) * collectives::FusionTagStride(3);
  for (std::size_t r = 0; r < world; ++r) {
    fabric.Purge(r, 0, span - 1);
  }
}

}  // namespace
}  // namespace rna
