// Tests for the in-process fabric: tag-scoped delivery, blocking and timed
// receives, multi-tag receives, shutdown semantics, traffic accounting, and
// the latency-injection timer path.

#include <gtest/gtest.h>

#include <thread>

#include "rna/common/clock.hpp"
#include "rna/net/fabric.hpp"

namespace rna::net {
namespace {

Message Make(int tag, std::vector<float> data = {},
             std::vector<std::int64_t> meta = {}) {
  Message m;
  m.tag = tag;
  m.data = std::move(data);
  m.meta = std::move(meta);
  return m;
}

TEST(Fabric, PointToPointDelivery) {
  Fabric fabric(2);
  fabric.Send(0, 1, Make(5, {1.0f, 2.0f}, {42}));
  auto msg = fabric.Recv(1, 5);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->src, 0u);
  EXPECT_EQ(msg->tag, 5);
  EXPECT_EQ(msg->data[1], 2.0f);
  EXPECT_EQ(msg->meta[0], 42);
}

TEST(Fabric, TagScopedFifo) {
  Fabric fabric(2);
  fabric.Send(0, 1, Make(1, {1.0f}));
  fabric.Send(0, 1, Make(2, {2.0f}));
  fabric.Send(0, 1, Make(1, {3.0f}));
  // Tag 2 first despite arriving second; tag-1 messages keep FIFO order.
  EXPECT_EQ(fabric.Recv(1, 2)->data[0], 2.0f);
  EXPECT_EQ(fabric.Recv(1, 1)->data[0], 1.0f);
  EXPECT_EQ(fabric.Recv(1, 1)->data[0], 3.0f);
}

TEST(Fabric, RecvAnyPicksEarliestMatching) {
  Fabric fabric(2);
  fabric.Send(0, 1, Make(7, {7.0f}));
  fabric.Send(0, 1, Make(8, {8.0f}));
  const int tags[] = {8, 7};
  // The queue is scanned front-first, so the earlier message wins even
  // though its tag is listed second.
  auto msg = fabric.RecvAny(1, tags);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 7);
}

TEST(Fabric, TryRecvNonBlocking) {
  Fabric fabric(1);
  EXPECT_FALSE(fabric.TryRecv(0, 3).has_value());
  fabric.Send(0, 0, Make(3));
  EXPECT_TRUE(fabric.TryRecv(0, 3).has_value());
}

TEST(Fabric, RecvForTimesOut) {
  Fabric fabric(1);
  const common::Stopwatch watch;
  EXPECT_FALSE(fabric.RecvFor(0, 1, 0.02).has_value());
  EXPECT_GE(watch.Elapsed(), 0.015);
}

TEST(Fabric, RecvForReturnsEarlyOnArrival) {
  Fabric fabric(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    fabric.Send(0, 1, Make(9));
  });
  const common::Stopwatch watch;
  auto msg = fabric.RecvFor(1, 9, 5.0);
  EXPECT_TRUE(msg.has_value());
  EXPECT_LT(watch.Elapsed(), 1.0);
  sender.join();
}

TEST(Fabric, BlockingRecvCrossThread) {
  Fabric fabric(2);
  std::thread receiver([&] {
    auto msg = fabric.Recv(1, 4);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->data[0], 1.5f);
  });
  fabric.Send(0, 1, Make(4, {1.5f}));
  receiver.join();
}

TEST(Fabric, ShutdownWakesBlockedReceivers) {
  Fabric fabric(1);
  std::thread receiver([&] {
    EXPECT_FALSE(fabric.Recv(0, 1).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fabric.Shutdown();
  receiver.join();
}

TEST(Fabric, PendingCounts) {
  Fabric fabric(2);
  fabric.Send(0, 1, Make(1));
  fabric.Send(0, 1, Make(1));
  fabric.Send(0, 1, Make(2));
  // Pending is exposed on the mailbox via Recv-side behavior: consume and
  // verify counts through TryRecv.
  EXPECT_TRUE(fabric.TryRecv(1, 1).has_value());
  EXPECT_TRUE(fabric.TryRecv(1, 1).has_value());
  EXPECT_FALSE(fabric.TryRecv(1, 1).has_value());
  EXPECT_TRUE(fabric.TryRecv(1, 2).has_value());
}

TEST(Fabric, TrafficStatsAccumulate) {
  Fabric fabric(2);
  fabric.Send(0, 1, Make(1, {1.0f, 2.0f}, {3}));
  fabric.Send(0, 1, Make(1, {1.0f}));
  const TrafficStats s = fabric.StatsFor(0);
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.bytes_sent, 2 * sizeof(float) + sizeof(std::int64_t) +
                              sizeof(float));
  EXPECT_EQ(fabric.TotalStats().messages_sent, 2u);
  EXPECT_EQ(fabric.StatsFor(1).messages_sent, 0u);
}

TEST(Fabric, InvalidRankRejected) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.Send(0, 5, Make(1)), std::logic_error);
  EXPECT_THROW(fabric.Recv(9, 1), std::logic_error);
}

TEST(Fabric, LatencyModelDelaysDelivery) {
  Fabric fabric(2, [](Rank, Rank, std::size_t) { return 0.03; });
  const common::Stopwatch watch;
  fabric.Send(0, 1, Make(1));
  auto msg = fabric.Recv(1, 1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(watch.Elapsed(), 0.025);
}

TEST(Fabric, LatencyModelPreservesPerPairOrderWhenEqual) {
  // Constant latency cannot reorder messages between the same endpoints.
  Fabric fabric(2, [](Rank, Rank, std::size_t) { return 0.005; });
  for (int i = 0; i < 10; ++i) {
    fabric.Send(0, 1, Make(1, {static_cast<float>(i)}));
  }
  for (int i = 0; i < 10; ++i) {
    auto msg = fabric.Recv(1, 1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->data[0], static_cast<float>(i));
  }
}

TEST(Fabric, ZeroLatencyPathSkipsTimer) {
  Fabric fabric(2, [](Rank from, Rank, std::size_t) {
    return from == 0 ? 0.0 : 0.01;
  });
  fabric.Send(0, 1, Make(1));
  EXPECT_TRUE(fabric.TryRecv(1, 1).has_value());  // immediate
}

TEST(Fabric, PerSenderFifoUnderConcurrency) {
  // Several senders blast one receiver; within each sender's stream, the
  // sequence numbers must arrive in order (the property the ring's
  // parity-tag scheme relies on).
  const std::size_t senders = 4;
  const int per_sender = 500;
  Fabric fabric(senders + 1);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < per_sender; ++i) {
        fabric.Send(s, senders, Make(1, {}, {static_cast<std::int64_t>(i)}));
      }
    });
  }
  std::vector<std::int64_t> next(senders, 0);
  for (int received = 0; received < static_cast<int>(senders) * per_sender;
       ++received) {
    auto msg = fabric.Recv(senders, 1);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->meta[0], next[msg->src]) << "sender " << msg->src;
    ++next[msg->src];
  }
  for (auto& t : threads) t.join();
}

TEST(Fabric, ConcurrentBidirectionalExchange) {
  // Two endpoints exchanging in both directions simultaneously must not
  // lose or duplicate messages.
  Fabric fabric(2);
  const int n = 2000;
  auto pump = [&](Rank self, Rank peer) {
    std::int64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      fabric.Send(self, peer, Make(7, {}, {i}));
      auto msg = fabric.Recv(self, 7);
      if (!msg.has_value()) break;
      sum += msg->meta[0];
    }
    return sum;
  };
  std::int64_t sum1 = 0;
  std::thread t([&] { sum1 = pump(1, 0); });
  const std::int64_t sum0 = pump(0, 1);
  t.join();
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * (n - 1) / 2;
  EXPECT_EQ(sum0, expected);
  EXPECT_EQ(sum1, expected);
}

TEST(Mailbox, GetAnyHonorsClose) {
  Mailbox box;
  std::thread t([&] {
    const int tags[] = {1, 2};
    EXPECT_FALSE(box.GetAny(tags).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  box.Close();
  t.join();
}

TEST(Mailbox, PutAfterCloseRejected) {
  Mailbox box;
  box.Close();
  Message m;
  EXPECT_FALSE(box.Put(std::move(m)));
}

TEST(Mailbox, GetAnyForReturnsEarliestMatching) {
  Mailbox box;
  box.Put(Make(7, {7.0f}));
  box.Put(Make(8, {8.0f}));
  const int tags[] = {8, 7};
  // Front-of-queue wins, same as GetAny: arrival order, not tag-list order.
  auto msg = box.GetAnyFor(tags, 1.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 7);
}

TEST(Mailbox, GetAnyForTimesOutLeavingOtherTagsIntact) {
  Mailbox box;
  box.Put(Make(3));
  const int tags[] = {1, 2};
  const common::Stopwatch watch;
  EXPECT_FALSE(box.GetAnyFor(tags, 0.02).has_value());
  EXPECT_GE(watch.Elapsed(), 0.015);
  // The non-matching message was not consumed or reordered.
  EXPECT_EQ(box.Pending(3), 1u);
}

TEST(Mailbox, GetAnyForWakesOnArrival) {
  Mailbox box;
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.Put(Make(2));
  });
  const int tags[] = {1, 2};
  const common::Stopwatch watch;
  auto msg = box.GetAnyFor(tags, 5.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->tag, 2);
  EXPECT_LT(watch.Elapsed(), 1.0);
  sender.join();
}

TEST(Mailbox, GetAnyForHonorsCloseDuringWait) {
  // The controller's "probe reply OR goodbye with deadline" wait must not
  // outlive the fabric: close wakes it with nullopt before the deadline.
  Mailbox box;
  std::thread waiter([&] {
    const int tags[] = {1, 2};
    const common::Stopwatch watch;
    EXPECT_FALSE(box.GetAnyFor(tags, 10.0).has_value());
    EXPECT_LT(watch.Elapsed(), 5.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  box.Close();
  waiter.join();
}

TEST(Mailbox, GetForZeroTimeoutIsOnePopAttempt) {
  // Zero (and negative) timeouts degenerate to TryGet: no wait, so a poll
  // loop built on GetFor(…, 0) can never block.
  Mailbox box;
  const common::Stopwatch watch;
  EXPECT_FALSE(box.GetFor(1, 0.0).has_value());
  EXPECT_FALSE(box.GetFor(1, -1.0).has_value());
  EXPECT_LT(watch.Elapsed(), 0.01);
  box.Put(Make(1, {4.0f}));
  auto msg = box.GetFor(1, 0.0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data[0], 4.0f);
}

TEST(Mailbox, GetForZeroTimeoutAfterClose) {
  Mailbox box;
  box.Put(Make(1));
  box.Close();
  // Close drains nothing: queued messages stay readable, then nullopt.
  EXPECT_TRUE(box.GetFor(1, 0.0).has_value());
  EXPECT_FALSE(box.GetFor(1, 0.0).has_value());
}

TEST(Mailbox, PurgeTagRangeRemovesOnlyRange) {
  Mailbox box;
  box.Put(Make(10));
  box.Put(Make(11));
  box.Put(Make(12));
  box.Put(Make(20));
  EXPECT_EQ(box.PurgeTagRange(10, 11), 2u);
  EXPECT_EQ(box.Pending(10), 0u);
  EXPECT_EQ(box.Pending(12), 1u);
  EXPECT_EQ(box.Pending(20), 1u);
}

}  // namespace
}  // namespace rna::net
