// Tests for binary checkpointing and the command-line flag parser.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rna/common/flags.hpp"
#include "rna/train/checkpoint.hpp"

namespace rna {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Checkpoint, RoundTrip) {
  const std::string path = TempPath("ckpt_roundtrip.bin");
  const std::vector<float> params = {1.0f, -2.5f, 3.25f};
  const std::vector<float> velocity = {0.1f, 0.2f, 0.3f};
  train::SaveCheckpoint(path, params, velocity, 77);
  const train::Checkpoint loaded = train::LoadCheckpoint(path);
  EXPECT_EQ(loaded.params, params);
  EXPECT_EQ(loaded.velocity, velocity);
  EXPECT_EQ(loaded.round, 77u);
  std::remove(path.c_str());
}

TEST(Checkpoint, NoVelocity) {
  const std::string path = TempPath("ckpt_novel.bin");
  train::SaveCheckpoint(path, std::vector<float>{4.0f}, {}, 3);
  const train::Checkpoint loaded = train::LoadCheckpoint(path);
  EXPECT_EQ(loaded.params.size(), 1u);
  EXPECT_TRUE(loaded.velocity.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, OverwriteIsAtomic) {
  const std::string path = TempPath("ckpt_overwrite.bin");
  train::SaveCheckpoint(path, std::vector<float>{1.0f}, {}, 1);
  train::SaveCheckpoint(path, std::vector<float>{2.0f, 3.0f}, {}, 2);
  const train::Checkpoint loaded = train::LoadCheckpoint(path);
  EXPECT_EQ(loaded.params.size(), 2u);
  EXPECT_EQ(loaded.round, 2u);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(train::LoadCheckpoint(TempPath("nope.bin")),
               std::runtime_error);
}

TEST(Checkpoint, BadMagicThrows) {
  const std::string path = TempPath("ckpt_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint at all, padding padding padding";
  }
  EXPECT_THROW(train::LoadCheckpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedPayloadThrows) {
  const std::string path = TempPath("ckpt_trunc.bin");
  train::SaveCheckpoint(path, std::vector<float>(64, 1.0f), {}, 1);
  // Chop off the tail of the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() - 32));
  }
  EXPECT_THROW(train::LoadCheckpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedVelocity) {
  EXPECT_THROW(train::SaveCheckpoint(TempPath("ckpt_bad.bin"),
                                     std::vector<float>{1.0f, 2.0f},
                                     std::vector<float>{1.0f}, 0),
               std::logic_error);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=3",   "--beta", "7",
                        "--gamma",   "--delta=0.5", "pos1",   "--name",
                        "hello",     "pos2"};
  common::Flags flags(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("delta", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  ASSERT_EQ(flags.Positional().size(), 2u);
  EXPECT_EQ(flags.Positional()[0], "pos1");
  EXPECT_EQ(flags.Positional()[1], "pos2");
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  common::Flags flags(1, argv);
  EXPECT_FALSE(flags.Has("anything"));
  EXPECT_EQ(flags.GetInt("n", 42), 42);
  EXPECT_EQ(flags.GetString("s", "x"), "x");
  EXPECT_FALSE(flags.GetBool("b", false));
}

TEST(Flags, BadNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  common::Flags flags(2, argv);
  EXPECT_THROW(flags.GetInt("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.GetDouble("n", 0), std::invalid_argument);
}

}  // namespace
}  // namespace rna
