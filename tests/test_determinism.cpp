// Seed-determinism property: under TrainerConfig::lockstep (with early
// stopping disabled), every protocol's TrainResult is a pure function of the
// config and seeds — run the same config twice and the final parameters
// match byte for byte. This is the precondition the chaos suite's
// replay-from-logged-seed guarantee rests on.
//
// What lockstep buys per protocol:
//   * horovod       — BSP is already deterministic; lockstep is a no-op
//   * rna / eager   — controller paces compute with one kStep token per
//                     round, so membership and staleness are schedule-free
//   * rna-h         — plus nominal (delay-model-sampled) calibration instead
//                     of wall-clock measurement
//   * ad-psgd /
//     async-ps      — RoundRobinGate serializes iterations into rank order
//   * sgp           — iteration-unique push tags replace parity tags, fixing
//                     the (receiver, iteration) pairing
// Wall-clock-derived fields (wall_seconds, curve, breakdown) are exempt;
// everything the optimizer touched must match exactly.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/nn/network.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna {
namespace {

using train::Protocol;
using train::ProtocolName;
using train::TrainerConfig;
using train::TrainResult;

struct Scenario {
  data::Dataset train;
  data::Dataset val;
  train::ModelFactory factory;
};

Scenario SmallScenario(std::uint64_t seed = 11) {
  Scenario s;
  data::Dataset all = data::MakeGaussianClusters(300, 6, 3, 0.3, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 12, 3}, model_seed);
  };
  return s;
}

TrainerConfig LockstepConfig(Protocol protocol) {
  TrainerConfig c;
  c.protocol = protocol;
  c.world = 3;
  c.max_rounds = 6;
  c.batch_size = 8;
  c.lockstep = true;
  // Disable every early-stop path: stopping decisions depend on wall-clock
  // eval timing, which is exactly what lockstep cannot control.
  c.target_loss = -1.0;
  c.patience = 1000000;
  c.calibration_iters = 2;
  c.ps_sync_every = 2;
  return c;
}

void ExpectIdenticalRunsAcross(const TrainerConfig& config_a,
                               const TrainerConfig& config_b) {
  Scenario s = SmallScenario();
  const TrainResult a = core::RunTraining(config_a, s.factory, s.train, s.val);
  const TrainResult b = core::RunTraining(config_b, s.factory, s.train, s.val);

  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    // Bitwise: EXPECT_EQ on floats, not near — the whole point.
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.gradients_applied, b.gradients_applied);
  EXPECT_EQ(a.round_contributors, b.round_contributors);
  EXPECT_EQ(a.live_workers, b.live_workers);
  EXPECT_EQ(a.workers_joined, b.workers_joined);
  EXPECT_EQ(a.workers_left, b.workers_left);
}

void ExpectIdenticalRunsWith(const TrainerConfig& config) {
  ExpectIdenticalRunsAcross(config, config);
}

void ExpectIdenticalRuns(Protocol protocol) {
  SCOPED_TRACE(ProtocolName(protocol));
  ExpectIdenticalRunsWith(LockstepConfig(protocol));
}

TEST(LockstepDeterminism, Horovod) { ExpectIdenticalRuns(Protocol::kHorovod); }

TEST(LockstepDeterminism, EagerSgd) {
  ExpectIdenticalRuns(Protocol::kEagerSgd);
}

TEST(LockstepDeterminism, AdPsgd) { ExpectIdenticalRuns(Protocol::kAdPsgd); }

TEST(LockstepDeterminism, Rna) { ExpectIdenticalRuns(Protocol::kRna); }

TEST(LockstepDeterminism, RnaHierarchical) {
  ExpectIdenticalRuns(Protocol::kRnaHierarchical);
}

TEST(LockstepDeterminism, Sgp) { ExpectIdenticalRuns(Protocol::kSgp); }

TEST(LockstepDeterminism, CentralizedPs) {
  ExpectIdenticalRuns(Protocol::kCentralizedPs);
}

// Every reduction schedule × wire compression combo must preserve the
// lockstep-determinism property: the collective policy changes the wire
// format and the hop graph, never the schedule-freedom of the run.
using PolicyParam =
    std::tuple<collectives::Schedule, collectives::Compression>;

class PolicyDeterminism : public ::testing::TestWithParam<PolicyParam> {};

TEST_P(PolicyDeterminism, IdenticalRunsUnderRna) {
  const auto [schedule, compression] = GetParam();
  TrainerConfig config = LockstepConfig(Protocol::kRna);
  config.schedule = schedule;
  config.compression = compression;
  config.topk_fraction = 0.25;
  ExpectIdenticalRunsWith(config);
}

std::string PolicyName(const ::testing::TestParamInfo<PolicyParam>& info) {
  const auto [schedule, compression] = info.param;
  return std::string(collectives::ScheduleName(schedule)) + "_" +
         collectives::CompressionName(compression);
}

INSTANTIATE_TEST_SUITE_P(
    ScheduleByCompression, PolicyDeterminism,
    ::testing::Combine(
        ::testing::Values(collectives::Schedule::kRing,
                          collectives::Schedule::kTree,
                          collectives::Schedule::kStragglar),
        ::testing::Values(collectives::Compression::kNone,
                          collectives::Compression::kFp16,
                          collectives::Compression::kInt8,
                          collectives::Compression::kTopK)),
    PolicyName);

// Elastic membership must preserve the property: a scheduled join (with
// its leader state transfer) and a scheduled leave land on deterministic
// round boundaries, so two runs of the same churn schedule are bitwise
// identical for every protocol that supports elasticity.
TrainerConfig ElasticConfig(Protocol protocol) {
  TrainerConfig c = LockstepConfig(protocol);
  c.world = 4;
  c.max_rounds = 8;
  c.elastic.push_back({.rank = 3, .join_at_round = 2});
  c.elastic.push_back({.rank = 1, .join_at_round = 0, .leave_at_round = 5});
  return c;
}

TEST(ElasticDeterminism, Rna) {
  ExpectIdenticalRunsWith(ElasticConfig(Protocol::kRna));
}

TEST(ElasticDeterminism, EagerSgd) {
  ExpectIdenticalRunsWith(ElasticConfig(Protocol::kEagerSgd));
}

TEST(ElasticDeterminism, RnaHierarchicalWithShardedPsTree) {
  TrainerConfig c = ElasticConfig(Protocol::kRnaHierarchical);
  c.ps_shards = 3;
  c.ps_fan_in = 2;
  c.max_group_size = 2;  // force several groups even when speeds match
  ExpectIdenticalRunsWith(c);
}

TEST(ElasticDeterminism, CentralizedPs) {
  TrainerConfig c = ElasticConfig(Protocol::kCentralizedPs);
  c.ps_shards = 2;
  ExpectIdenticalRunsWith(c);
}

// Protocols without an elastic path must reject the schedule up front with
// a deterministic diagnostic — not accept it and silently ignore it.
TEST(ElasticDeterminism, UnsupportedProtocolsRejectSchedules) {
  for (const Protocol p :
       {Protocol::kHorovod, Protocol::kSgp, Protocol::kAdPsgd}) {
    SCOPED_TRACE(ProtocolName(p));
    const TrainerConfig c = ElasticConfig(p);
    EXPECT_NE(c.Validate().find("cannot change membership mid-training"),
              std::string::npos);
  }
}

TEST(ElasticDeterminism, RejectedWithoutLockstep) {
  TrainerConfig c = ElasticConfig(Protocol::kRna);
  c.lockstep = false;
  EXPECT_NE(c.Validate().find("requires lockstep"), std::string::npos);
}

// The streaming data plane's contract: each generator's batch stream is a
// pure function of its seed, so the prefetch depth — 0 (synchronous),
// shallow, or deep — must not move a single bit of the trained result.
TEST(LockstepDeterminism, PrefetchDepthInvariant) {
  for (const Protocol p : {Protocol::kRna, Protocol::kHorovod}) {
    SCOPED_TRACE(ProtocolName(p));
    TrainerConfig synchronous = LockstepConfig(p);
    synchronous.prefetch_batches = 0;
    TrainerConfig prefetched = LockstepConfig(p);
    prefetched.prefetch_batches = 3;
    ExpectIdenticalRunsAcross(synchronous, prefetched);
  }
}

TEST(LockstepDeterminism, DifferentSeedsActuallyDiverge) {
  // Sanity check that the property above is not vacuous (e.g. a runner
  // ignoring its inputs would pass every identity test).
  Scenario s = SmallScenario();
  TrainerConfig config = LockstepConfig(Protocol::kRna);
  const TrainResult a = core::RunTraining(config, s.factory, s.train, s.val);
  config.seed = 4242;
  config.model_seed = 4243;
  const TrainResult b = core::RunTraining(config, s.factory, s.train, s.val);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    any_diff |= a.final_params[i] != b.final_params[i];
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace rna
