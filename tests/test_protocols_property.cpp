// Property sweeps across every synchronization protocol and several world
// sizes: each must actually learn the same separable task, and the result
// structure must satisfy the invariants the benches rely on. Runs the full
// threaded stack per case, so budgets are kept small.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "rna/collectives/allreduce.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/generators.hpp"
#include "rna/net/fabric.hpp"

namespace rna {
namespace {

using core::RunTraining;
using train::Protocol;
using train::TrainerConfig;
using train::TrainResult;

struct Case {
  Protocol protocol;
  std::size_t world;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = train::ProtocolName(info.param.protocol);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_w" + std::to_string(info.param.world);
}

class ProtocolSweep : public ::testing::TestWithParam<Case> {};

TEST_P(ProtocolSweep, LearnsAndReportsConsistently) {
  const Case param = GetParam();
  data::Dataset all = data::MakeGaussianClusters(1200, 8, 4, 0.35, 11);
  auto [train_data, val_data] = all.SplitHoldout(0.2);
  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{8, 24, 4}, seed);
  };

  TrainerConfig config;
  config.protocol = param.protocol;
  config.world = param.world;
  config.batch_size = 16;
  config.sgd.learning_rate =
      param.protocol == Protocol::kCentralizedPs ? 0.3 : 0.12;
  config.sgd.momentum = 0.5;
  // Asynchronous/diluted protocols learn less per round; budget accordingly
  // (eager-SGD's fixed-denominator averaging is the weakest per round).
  config.max_rounds = param.protocol == Protocol::kHorovod   ? 150
                      : param.protocol == Protocol::kEagerSgd ? 700
                                                              : 350;
  config.patience = 0;
  config.eval_period_s = 0.01;
  config.seed = 7;

  const TrainResult r = RunTraining(config, factory, train_data, val_data);

  // Learned something real.
  // Thresholds are deliberately loose: thread-timing nondeterminism moves
  // per-run accuracy by several points; random guessing would be 0.25.
  EXPECT_GT(r.final_accuracy, 0.55) << "protocol did not learn";
  EXPECT_LT(r.final_loss, 1.15);

  // Structural invariants.
  EXPECT_GT(r.rounds, 0u);
  EXPECT_LE(r.rounds, config.max_rounds);
  EXPECT_GT(r.gradients_applied, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  ASSERT_EQ(r.breakdown.size(), param.world);
  std::size_t computed = 0;
  for (const auto& b : r.breakdown) {
    EXPECT_GT(b.iterations, 0u);
    EXPECT_GE(b.compute, 0.0);
    computed += b.iterations;
  }
  // Nobody can apply more mini-batches than were computed.
  EXPECT_LE(r.gradients_applied, computed);
  // The returned model matches the reported metrics in dimension.
  auto net = factory(config.model_seed);
  EXPECT_EQ(r.final_params.size(), net->ParamCount());
  // Partial-collective protocols report per-round participation.
  if (param.protocol == Protocol::kRna ||
      param.protocol == Protocol::kEagerSgd ||
      param.protocol == Protocol::kHorovod) {
    ASSERT_EQ(r.round_contributors.size(), r.rounds);
    for (std::size_t c : r.round_contributors) {
      EXPECT_LE(c, param.world);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolSweep,
    ::testing::Values(Case{Protocol::kHorovod, 2},
                      Case{Protocol::kHorovod, 5},
                      Case{Protocol::kEagerSgd, 2},
                      Case{Protocol::kEagerSgd, 5},
                      Case{Protocol::kAdPsgd, 2},
                      Case{Protocol::kAdPsgd, 5},
                      Case{Protocol::kRna, 2}, Case{Protocol::kRna, 5},
                      Case{Protocol::kRnaHierarchical, 2},
                      Case{Protocol::kRnaHierarchical, 5},
                      Case{Protocol::kSgp, 2}, Case{Protocol::kSgp, 5},
                      Case{Protocol::kCentralizedPs, 2},
                      Case{Protocol::kCentralizedPs, 5}),
    CaseName);

// Fuzz the partial allreduce against a scalar reference across random
// contributor masks.
class PartialMaskFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PartialMaskFuzz, MatchesReference) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t world = 2 + rng.UniformInt(5);
  const std::size_t n = 1 + rng.UniformInt(40);
  std::vector<bool> contributes(world);
  std::vector<std::vector<float>> data(world, std::vector<float>(n));
  std::vector<float> expected(n, 0.0f);
  std::size_t count = 0;
  for (std::size_t w = 0; w < world; ++w) {
    contributes[w] = rng.Bernoulli(0.6);
    for (auto& x : data[w]) x = static_cast<float>(rng.Normal(0, 1));
    if (contributes[w]) {
      ++count;
      for (std::size_t i = 0; i < n; ++i) expected[i] += data[w][i];
    }
  }
  if (count > 0) {
    for (auto& e : expected) e /= static_cast<float>(count);
  }

  net::Fabric fabric(world);
  const collectives::Group group = collectives::Group::Full(world);
  std::vector<collectives::PartialResult> results(world);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < world; ++w) {
    threads.emplace_back([&, w] {
      collectives::CollectiveOptions opts;
      opts.tag_base = 1000;
      results[w] = collectives::PartialAllreduceFor(
          {fabric, group, w}, opts, data[w], contributes[w]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t w = 0; w < world; ++w) {
    EXPECT_EQ(results[w].contributors, count);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[w][i], expected[i], 1e-4f)
          << "world=" << world << " w=" << w << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialMaskFuzz, ::testing::Range(1, 25));

}  // namespace
}  // namespace rna
