// TSan-targeted race-stress tests. Each test hammers one lock-protected
// layer — BlockingQueue, the net fabric, the parameter server, the gradient
// stage/param board, and a miniature partial-collective run — with as much
// thread interleaving as the scenario allows, then checks conservation
// invariants (nothing lost, nothing duplicated). Under the `tsan` preset
// (cmake --preset tsan) ThreadSanitizer additionally proves the
// interleavings are race-free; under plain builds these still catch
// lost-wakeup and lost-item bugs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "rna/common/queue.hpp"
#include "rna/core/rna.hpp"
#include "rna/data/batch_generator.hpp"
#include "rna/data/generators.hpp"
#include "rna/data/shard_view.hpp"
#include "rna/net/fabric.hpp"
#include "rna/nn/network.hpp"
#include "rna/nn/optimizer.hpp"
#include "rna/ps/server.hpp"
#include "rna/train/partial_engine.hpp"
#include "rna/train/stage.hpp"

namespace rna {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// BlockingQueue

TEST(RaceStress, QueueMpmcPushPopClose) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;

  common::BlockingQueue<int> q;
  std::atomic<long long> accepted_sum{0};
  std::atomic<long long> popped_sum{0};
  std::atomic<int> accepted{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (q.Push(value)) {
          accepted.fetch_add(1);
          accepted_sum.fetch_add(value);
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = q.Pop()) {
        popped.fetch_add(1);
        popped_sum.fetch_add(*item);
      }
    });
  }
  // Noisy observers: Size/Empty/Closed from outside both roles.
  std::atomic<bool> observing{true};
  std::thread observer([&] {
    while (observing.load()) {
      (void)q.Size();
      (void)q.Empty();
      (void)q.Closed();
    }
  });

  // Close mid-stream: producers racing Close must either get the item in
  // (then a consumer pops it) or see the push rejected — never both.
  std::this_thread::sleep_for(5ms);
  q.Close();
  for (auto& t : threads) t.join();
  observing.store(false);
  observer.join();

  EXPECT_EQ(accepted.load(), popped.load());
  EXPECT_EQ(accepted_sum.load(), popped_sum.load());
  EXPECT_TRUE(q.Empty());
  EXPECT_TRUE(q.Closed());
}

TEST(RaceStress, QueueTimedPopsUnderChurn) {
  common::BlockingQueue<int> q;
  std::atomic<int> got{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        auto item = q.PopFor(2ms);
        if (item.has_value()) {
          got.fetch_add(1);
        } else if (q.Closed()) {
          // nullopt + closed can still race one last delivery; drain.
          while (q.TryPop()) got.fetch_add(1);
          return;
        }
      }
    });
  }
  constexpr int kItems = 3000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(got.load(), kItems);
}

// ---------------------------------------------------------------------------
// Streaming batch generators. Many generators share one immutable dataset
// through zero-copy shard views while each runs its own prefetch thread;
// consumers pop concurrently from different threads. The conservation
// invariant is per-generator determinism: every consumer must see exactly
// the stream a synchronous same-seed generator produces, no matter how the
// producer threads interleave on the shared storage. The final third of the
// generators is destroyed while its producer is blocked mid-Push, stressing
// the Stop()/Close() handshake under TSan.

TEST(RaceStress, ConcurrentBatchGenerators) {
  constexpr std::size_t kGenerators = 8;
  constexpr int kBatches = 40;

  data::LengthModel lengths{.mean = 12, .stddev = 6, .min_len = 2,
                            .max_len = 40};
  const data::Dataset ds =
      data::MakeSequenceDataset(64, 4, 3, lengths, 0.1, 31);

  // Reference streams from synchronous generators (no threads involved).
  std::vector<std::vector<std::int32_t>> expected_labels(kGenerators);
  for (std::size_t g = 0; g < kGenerators; ++g) {
    data::BatchGeneratorOptions opt{
        .batch_size = 4,
        .seed = 100 + g,
        .mode = g % 2 ? data::SamplingMode::kLengthBucketed
                      : data::SamplingMode::kUniform,
        .prefetch_depth = 0};
    data::BatchGenerator gen(data::ShardView::Strided(ds, g, kGenerators),
                             opt);
    for (int b = 0; b < kBatches; ++b) {
      for (std::int32_t label : gen.Next().labels) {
        expected_labels[g].push_back(label);
      }
    }
  }

  std::vector<std::unique_ptr<data::BatchGenerator>> generators;
  for (std::size_t g = 0; g < kGenerators; ++g) {
    data::BatchGeneratorOptions opt{
        .batch_size = 4,
        .seed = 100 + g,
        .mode = g % 2 ? data::SamplingMode::kLengthBucketed
                      : data::SamplingMode::kUniform,
        .prefetch_depth = 2};
    generators.push_back(std::make_unique<data::BatchGenerator>(
        data::ShardView::Strided(ds, g, kGenerators), opt));
  }

  std::vector<std::vector<std::int32_t>> got_labels(kGenerators);
  std::vector<std::thread> consumers;
  for (std::size_t g = 0; g < kGenerators; ++g) {
    consumers.emplace_back([&, g] {
      // The last generators consume only part of their stream; destruction
      // below then races their producers mid-assembly.
      const int batches = g >= kGenerators - 3 ? kBatches / 4 : kBatches;
      for (int b = 0; b < batches; ++b) {
        for (std::int32_t label : generators[g]->Next().labels) {
          got_labels[g].push_back(label);
        }
      }
    });
  }
  for (auto& t : consumers) t.join();
  generators.clear();  // Stop() joins every producer, blocked or not

  for (std::size_t g = 0; g < kGenerators; ++g) {
    ASSERT_EQ(got_labels[g],
              std::vector<std::int32_t>(
                  expected_labels[g].begin(),
                  expected_labels[g].begin() +
                      static_cast<std::ptrdiff_t>(got_labels[g].size())))
        << "generator " << g << " diverged from its synchronous twin";
  }
}

// ---------------------------------------------------------------------------
// Net fabric

TEST(RaceStress, FabricAllToAllUnderLatencyChurn) {
  constexpr std::size_t kWorld = 4;
  constexpr int kPerPeer = 200;
  constexpr int kTag = 7;

  // Deterministic latency keyed off the route: every endpoint exercises
  // both the immediate path and the timer-thread path concurrently.
  net::Fabric fabric(kWorld, [](net::Rank from, net::Rank to, std::size_t) {
    return ((from * 7 + to * 3) % 4) * 0.0002;
  });

  std::vector<std::thread> peers;
  std::atomic<int> received{0};
  for (std::size_t r = 0; r < kWorld; ++r) {
    peers.emplace_back([&, r] {
      const int to_send = kPerPeer * static_cast<int>(kWorld - 1);
      const int expected = kPerPeer * static_cast<int>(kWorld - 1);
      int got = 0;
      int sent = 0;
      // Round-robin over peers (so every rank receives exactly `expected`
      // messages), interleaving sends with timed/try receives to churn the
      // mailbox from both sides at once.
      while (sent < to_send || got < expected) {
        if (sent < to_send) {
          auto to = static_cast<net::Rank>(sent % (kWorld - 1));
          if (to >= r) ++to;
          net::Message msg;
          msg.tag = kTag;
          msg.meta = {static_cast<std::int64_t>(sent)};
          fabric.Send(r, to, std::move(msg));
          ++sent;
        }
        if (auto msg = fabric.TryRecv(r, kTag)) ++got;
        if (got < expected) {
          if (auto msg = fabric.RecvFor(r, kTag, 0.001)) ++got;
        }
        (void)fabric.StatsFor(r);
      }
      received.fetch_add(got);
    });
  }
  for (auto& t : peers) t.join();

  // Sends are per-rank deterministic, so everything must be delivered even
  // though routing raced the timer thread.
  EXPECT_EQ(received.load(),
            static_cast<int>(kWorld * (kWorld - 1) * kPerPeer));
  const net::TrafficStats total = fabric.TotalStats();
  EXPECT_EQ(total.messages_sent, kWorld * (kWorld - 1) * kPerPeer);
  fabric.Shutdown();
  EXPECT_FALSE(fabric.Recv(0, kTag).has_value());
}

TEST(RaceStress, FabricShutdownWakesBlockedReceivers) {
  net::Fabric fabric(3);
  std::vector<std::thread> blocked;
  std::atomic<int> woke{0};
  for (net::Rank r = 0; r < 3; ++r) {
    blocked.emplace_back([&, r] {
      const int tags[] = {1, 2};
      EXPECT_FALSE(fabric.RecvAny(r, tags).has_value());
      woke.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(2ms);
  fabric.Shutdown();
  for (auto& t : blocked) t.join();
  EXPECT_EQ(woke.load(), 3);
}

// ---------------------------------------------------------------------------
// Parameter server

TEST(RaceStress, PsConcurrentPushPull) {
  constexpr std::size_t kDim = 64;
  constexpr std::size_t kClients = 4;
  constexpr int kPushesPerClient = 100;

  net::Fabric fabric(kClients + 1);
  const net::Rank server_rank = kClients;
  ps::ParameterServer server(fabric, server_rank,
                             std::vector<float>(kDim, 0.0f));
  server.Start();

  // Every push adds 1.0 to every element under the server's state lock, so
  // any concurrently pulled state must be constant-valued — a direct probe
  // of request atomicity.
  std::vector<std::thread> clients;
  std::atomic<int> atomicity_violations{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ps::PsClient client(fabric, static_cast<net::Rank>(c), server_rank);
      const std::vector<float> ones(kDim, 1.0f);
      for (int i = 0; i < kPushesPerClient; ++i) {
        std::vector<float> state;
        if (i % 3 == 0) {
          state = client.PushPull(ones, ps::ApplyMode::kAddDelta);
        } else {
          client.Push(ones, ps::ApplyMode::kAddDelta);
          state = client.Pull();
        }
        for (std::size_t d = 1; d < state.size(); ++d) {
          if (state[d] != state[0]) {
            atomicity_violations.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(atomicity_violations.load(), 0);
  const std::vector<float> final_state = server.Snapshot();
  ASSERT_EQ(final_state.size(), kDim);
  for (float v : final_state) {
    EXPECT_EQ(v, static_cast<float>(kClients * kPushesPerClient));
  }
}

// ---------------------------------------------------------------------------
// Gradient stage + param board

TEST(RaceStress, StageWriteDrainAndBoardPublishRead) {
  constexpr std::size_t kDim = 32;
  constexpr int kWrites = 4000;

  train::GradientStage stage(kDim, /*staleness_bound=*/3,
                             train::LocalCombine::kMean);
  train::ParamBoard board(std::vector<float>(kDim, 0.0f));
  std::atomic<bool> writer_done{false};
  std::atomic<long long> drained_count{0};

  std::thread writer([&] {  // the compute-thread role
    std::vector<float> grad(kDim, 1.0f);
    for (int i = 0; i < kWrites; ++i) stage.Write(grad, i);
    writer_done.store(true);
  });
  std::thread drainer([&] {  // the comm-thread role
    std::vector<float> params(kDim, 0.0f);
    std::int64_t version = 0;
    for (;;) {
      const bool done = writer_done.load();
      if (auto d = stage.Drain()) {
        drained_count.fetch_add(static_cast<long long>(d->count));
        board.Publish(params, ++version);
      } else if (done) {
        return;
      }
    }
  });
  std::vector<std::thread> readers;  // compute + monitor ReadOp role
  std::atomic<bool> reading{true};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<float> snap;
      std::int64_t seen = 0;
      while (reading.load()) {
        seen = board.ReadIfNewer(seen, &snap);
        (void)stage.HasGradient();
        (void)stage.BufferedCount();
      }
    });
  }

  writer.join();
  drainer.join();
  reading.store(false);
  for (auto& t : readers) t.join();

  // Bounded staleness: every write is either drained or counted dropped.
  EXPECT_EQ(drained_count.load() + static_cast<long long>(stage.Dropped()),
            kWrites);
  EXPECT_FALSE(stage.HasGradient());
}

// ---------------------------------------------------------------------------
// Miniature partial-collective run: comm/compute/controller/monitor threads
// with the most aggressive interleaving the engine supports (solo trigger,
// tight staleness bound, near-continuous monitor evals).

TEST(RaceStress, PartialEngineMaxInterleaving) {
  data::Dataset all = data::MakeGaussianClusters(240, 6, 3, 0.4, 11);
  auto [train_data, val_data] = all.SplitHoldout(0.25);
  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 10, 3}, seed);
  };

  train::TrainerConfig config;
  config.world = 4;
  config.batch_size = 8;
  config.max_rounds = 40;
  config.staleness_bound = 2;
  config.patience = 0;
  config.eval_period_s = 0.0005;  // monitor hammers the param board
  config.seed = 123;

  const train::TrainResult result = train::RunPartialCollective(
      config, factory, train_data, val_data, train::MakeSoloPolicy);

  EXPECT_EQ(result.rounds, 40u);
  EXPECT_GT(result.gradients_applied, 0u);
  EXPECT_EQ(result.round_contributors.size(), result.rounds);
  for (std::size_t contributors : result.round_contributors) {
    EXPECT_LE(contributors, config.world);
  }
  EXPECT_FALSE(result.final_params.empty());
}

// ---------------------------------------------------------------------------
// Two whole training worlds in one process. Every run owns its Fabric (and
// that Fabric's BufferPool), its own observability accumulators, and its own
// membership state, so two engines running concurrently must not perturb
// each other at all. The probe is bitwise: a lockstep run is a pure function
// of its config, so the run executed alongside a different, churning world
// must equal the same run executed alone — any cross-fabric buffer reuse,
// shared counter, or leaked membership would break the equality (and TSan
// flags the race itself under the tsan preset).

TEST(RaceStress, TwoConcurrentWorldsStayIsolated) {
  data::Dataset all = data::MakeGaussianClusters(240, 6, 3, 0.4, 21);
  auto [train_data, val_data] = all.SplitHoldout(0.25);
  train::ModelFactory factory = [](std::uint64_t seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 10, 3}, seed);
  };

  train::TrainerConfig probe;
  probe.world = 3;
  probe.batch_size = 8;
  probe.max_rounds = 8;
  probe.lockstep = true;
  probe.target_loss = -1.0;
  probe.patience = 1000000;
  probe.seed = 51;
  probe.model_seed = 52;

  // The neighbor world churns: elastic join + leave, different seeds, and a
  // sharded PS stack stressing its own fabric's buffer pool.
  train::TrainerConfig noisy = probe;
  noisy.protocol = train::Protocol::kCentralizedPs;
  noisy.world = 4;
  noisy.max_rounds = 20;
  noisy.ps_shards = 3;
  noisy.seed = 77;
  noisy.model_seed = 78;
  noisy.elastic.push_back({.rank = 3, .join_at_round = 2});
  noisy.elastic.push_back({.rank = 1, .join_at_round = 0, .leave_at_round = 9});

  const train::TrainResult solo = train::RunPartialCollective(
      probe, factory, train_data, val_data, train::MakeMajorityPolicy);

  train::TrainResult concurrent;
  train::TrainResult neighbor;
  std::thread probe_thread([&] {
    concurrent = train::RunPartialCollective(
        probe, factory, train_data, val_data, train::MakeMajorityPolicy);
  });
  std::thread noisy_thread([&] {
    neighbor = core::RunTraining(noisy, factory, train_data, val_data);
  });
  probe_thread.join();
  noisy_thread.join();

  ASSERT_EQ(concurrent.final_params.size(), solo.final_params.size());
  for (std::size_t i = 0; i < solo.final_params.size(); ++i) {
    ASSERT_EQ(concurrent.final_params[i], solo.final_params[i])
        << "param " << i << " perturbed by the neighboring world";
  }
  EXPECT_EQ(concurrent.rounds, solo.rounds);
  EXPECT_EQ(concurrent.round_contributors, solo.round_contributors);
  EXPECT_EQ(concurrent.gradients_applied, solo.gradients_applied);
  // The neighbor's own run stayed healthy too.
  EXPECT_EQ(neighbor.workers_joined, 1u);
  EXPECT_EQ(neighbor.workers_left, 1u);
  for (float p : neighbor.final_params) ASSERT_TRUE(std::isfinite(p));
}

// ---------------------------------------------------------------------------
// Compute arenas. Each Network owns its own arena and activates it through a
// thread_local current-arena pointer, so N workers training concurrently on
// one process must never share scratch. Same-seed replicas stepping the same
// batch must then produce IDENTICAL loss sequences on every thread — any
// cross-thread scratch aliasing (or a data race TSan would flag) breaks the
// bitwise agreement.

TEST(RaceStress, ConcurrentArenaTrainingIsIsolated) {
  constexpr int kThreads = 8;
  constexpr int kIters = 6;
  constexpr std::uint64_t kSeed = 17;

  // Build the shared batch once, outside the arena scopes.
  nn::Batch batch;
  {
    common::Rng rng(kSeed);
    for (int i = 0; i < 5; ++i) {
      const std::size_t len = 3 + rng.UniformInt(5);
      tensor::Tensor seq({len, 6});
      for (auto& x : seq.Flat()) x = static_cast<float>(rng.Normal(0, 1));
      batch.sequences.push_back(std::move(seq));
      batch.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(3)));
    }
  }

  std::vector<std::vector<double>> losses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Same-seed replica per thread; dropout off so loss streams depend
      // only on params + batch, not per-net Rng draw interleaving.
      nn::LstmClassifier net(6, 12, 3, kSeed, /*dropout_rate=*/0.0);
      const std::size_t dim = net.ParamCount();
      std::vector<float> params(dim), grad(dim);
      net.CopyParamsTo(params);
      nn::SgdMomentum opt(dim, {.learning_rate = 0.05, .momentum = 0.9});
      for (int i = 0; i < kIters; ++i) {
        net.SetParamsFrom(params);
        losses[t].push_back(net.ForwardBackward(batch).loss);
        net.CopyGradsTo(grad);
        opt.Step(params, grad);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(losses[t], losses[0])
        << "thread " << t << " diverged from thread 0 — arena scratch leaked "
        << "across threads";
  }
}

}  // namespace
}  // namespace rna
