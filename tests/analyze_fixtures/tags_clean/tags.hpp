// Must-pass tag header: the production layout — distinct control tags,
// a barrier family parity-striped by round, group-cast rounds below the
// ring range, and a ring stride wide enough for world <= 2048.
#include <cstddef>

namespace rna::train::tags {

inline constexpr int kReady = 100;
inline constexpr int kGo = 103;
inline constexpr int kRoundEnd = 105;
inline constexpr int kStep = 107;
inline constexpr int kGoodbye = 108;
inline constexpr int kBarrier = 300;
inline constexpr int kAvgReq = 400;
inline constexpr int kAvgRep = 401;
inline constexpr int kGroupRing = 500;
inline constexpr int kGroupCastBase = 1 << 21;
inline constexpr int kRingBase = 1 << 22;
inline constexpr int kRingStride = 4096;

inline constexpr int BarrierTag(std::size_t round) {
  return kBarrier + static_cast<int>(round % 2) * 8;
}

inline constexpr int GroupCastTag(std::size_t round) {
  return kGroupCastBase + static_cast<int>(round % 1024);
}

inline constexpr int RingTag(std::size_t round) {
  return kRingBase + static_cast<int>(round % 100000) * kRingStride;
}

inline int FusionTagStride(std::size_t world) {
  return static_cast<int>(2 * world + 2);
}

}  // namespace rna::train::tags
