// Must-pass fixture for tag-discipline: every tag expression references a
// named tag or family function, and receives plumb a caller-provided base.
//
// expect-clean: tag-discipline
#include "tags.hpp"

namespace rna {
namespace net {

struct Message {
  int tag = 0;
};

class Fabric {
 public:
  int RecvFor(int src, int tag, double timeout) {
    return timeout > 0.0 ? src + tag : -1;
  }
};

}  // namespace net

namespace baselines {

inline net::Message MakeGo(std::size_t round) {
  net::Message msg;
  msg.tag = train::tags::RingTag(round);
  return msg;
}

inline int DrainControl(net::Fabric& fabric, int tag_base) {
  int got = fabric.RecvFor(0, train::tags::kGo, 0.05);
  got += fabric.RecvFor(0, tag_base + 1, 0.05);
  return got;
}

}  // namespace baselines
}  // namespace rna
