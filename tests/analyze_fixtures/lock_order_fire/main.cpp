// Must-fire fixture for lock-order: two methods of the same class acquire
// the same pair of member mutexes in opposite orders (an AB/BA deadlock),
// and a second class nests two instances of one lock array without an
// ordering justification.
//
// expect-fire: lock-order

namespace rna {
namespace common {

class Mutex {
 public:
  int v = 0;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(&m) {}

 private:
  Mutex* m_;
};

}  // namespace common

namespace fix {

class Pair {
 public:
  void Forward() {
    common::MutexLock a(a_mu_);
    common::MutexLock b(b_mu_);
  }
  void Backward() {
    common::MutexLock b(b_mu_);
    common::MutexLock a(a_mu_);
  }

 private:
  common::Mutex a_mu_;
  common::Mutex b_mu_;
};

class Shards {
 public:
  void Swap(int i, int j) {
    common::MutexLock li(mu_[i]);
    common::MutexLock lj(mu_[j]);
  }

 private:
  common::Mutex mu_[4];
};

}  // namespace fix
}  // namespace rna
