// Must-pass fixture for lock-order: every nesting follows one global
// order (a before b), and the index-ordered array nesting carries the
// analyze:allow(lock-order) justification.
//
// expect-clean: lock-order

namespace rna {
namespace common {

class Mutex {
 public:
  int v = 0;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(&m) {}

 private:
  Mutex* m_;
};

}  // namespace common

namespace fix {

class Pair {
 public:
  void Forward() {
    common::MutexLock a(a_mu_);
    common::MutexLock b(b_mu_);
  }
  void ReadBoth() {
    common::MutexLock a(a_mu_);
    common::MutexLock b(b_mu_);
  }

 private:
  common::Mutex a_mu_;
  common::Mutex b_mu_;
};

class Shards {
 public:
  void Swap(int i, int j) {
    const int lo = i < j ? i : j;
    const int hi = i < j ? j : i;
    common::MutexLock li(mu_[lo]);
    common::MutexLock lj(mu_[hi]);  // analyze:allow(lock-order) by index
  }

 private:
  common::Mutex mu_[4];
};

}  // namespace fix
}  // namespace rna
