// Must-fire fixture for timed-recv: a protocol entry point reaches an
// untimed Mailbox::Get through a wrapper in between — exactly the shape
// the retired untimed-recv regex could not see (the receive is not on any
// line of the entry function).
//
// expect-fire: timed-recv

namespace rna {
namespace net {

class Mailbox {
 public:
  int Get(int tag) { return tag; }
  int GetFor(int tag, double timeout) {
    return timeout > 0.0 ? tag : -1;
  }
};

}  // namespace net

namespace baselines {

inline int DrainOne(net::Mailbox& box) { return box.Get(3); }

inline int RunFixture(net::Mailbox& box) { return DrainOne(box); }

}  // namespace baselines
}  // namespace rna
