// Must-fire fixture for no-heap-reachable: a helper two frames below a
// hot-path entry allocates from the general heap. Mirrors the production
// qualified names so the real config.py entry patterns apply unchanged.
//
// expect-fire: no-heap-reachable

namespace rna {
namespace nn {

class Buf {
 public:
  void push_back(float v) { last_ = v; }

 private:
  float last_ = 0.0f;
};

inline float* Scratch(int n) {
  Buf buf;
  buf.push_back(1.0f);
  return new float[static_cast<unsigned>(n)];
}

inline float StepKernel(int n) {
  float* s = Scratch(n);
  float acc = s[0];
  delete[] s;
  return acc;
}

class FixtureNet {
 public:
  float ForwardBackward(int n) { return StepKernel(n); }
};

}  // namespace nn
}  // namespace rna
