// Must-pass fixture for no-heap-reachable: the hot path routes every
// allocation through the sanctioned arena boundary (rna::tensor::Arena is
// a HEAP_BOUNDARY pattern — allocation inside it is by-design, and the
// traversal does not descend past it).
//
// expect-clean: no-heap-reachable

namespace rna {
namespace tensor {

class Arena {
 public:
  float* Allocate(int n) { return new float[static_cast<unsigned>(n)]; }
};

}  // namespace tensor

namespace nn {

inline float Accumulate(const float* s, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += s[i];
  return acc;
}

class FixtureNet {
 public:
  float ForwardBackward(int n) {
    float* s = arena_.Allocate(n);
    return Accumulate(s, n);
  }

 private:
  tensor::Arena arena_;
};

}  // namespace nn
}  // namespace rna
