// Must-pass fixture for timed-recv: the protocol uses the deadline
// variant, and the one deliberate wait-forever receive carries the
// analyze:allow(timed-recv) justification the check honours.
//
// expect-clean: timed-recv

namespace rna {
namespace net {

class Mailbox {
 public:
  int Get(int tag) { return tag; }
  int GetFor(int tag, double timeout) {
    return timeout > 0.0 ? tag : -1;
  }
};

}  // namespace net

namespace baselines {

inline int RunFixture(net::Mailbox& box, bool lossless) {
  if (lossless) {
    // Lossless fast path: shutdown wakes the wait.
    return box.Get(3);  // analyze:allow(timed-recv)
  }
  return box.GetFor(3, 0.05);
}

}  // namespace baselines
}  // namespace rna
