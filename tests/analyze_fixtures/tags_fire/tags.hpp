// Must-fire tag header: two control tags collide, and the ring stride is
// far too narrow to keep a realistic world's ring tags round-unique.
#include <cstddef>

namespace rna::train::tags {

inline constexpr int kReady = 100;
inline constexpr int kGo = 100;  // collides with kReady

inline constexpr int kGroupCastBase = 1 << 21;
inline constexpr int kRingBase = 1 << 22;
inline constexpr int kRingStride = 8;  // supports world <= 4

inline constexpr int GroupCastTag(std::size_t round) {
  return kGroupCastBase + static_cast<int>(round);
}

inline constexpr int RingTag(std::size_t round) {
  return kRingBase + static_cast<int>(round) * kRingStride;
}

}  // namespace rna::train::tags
