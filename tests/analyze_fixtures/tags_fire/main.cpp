// Must-fire fixture for tag-discipline: besides the header collisions, a
// protocol function stamps a raw numeric tag no family accounts for.
//
// expect-fire: tag-discipline
#include "tags.hpp"

namespace rna {
namespace net {

struct Message {
  int tag = 0;
};

}  // namespace net

namespace baselines {

inline net::Message MakeProbe() {
  net::Message msg;
  msg.tag = 12345;  // unaccounted ad-hoc tag
  return msg;
}

}  // namespace baselines
}  // namespace rna
