// Tests for the discrete-event engine, workload models, communication cost
// models, and the protocol timing simulators — including the qualitative
// properties the paper's figures rest on (RNA beats BSP under stragglers,
// two probes beat one, etc.).

#include <gtest/gtest.h>

#include <cmath>

#include "rna/common/stats.hpp"
#include "rna/sim/comm_model.hpp"
#include "rna/sim/engine.hpp"
#include "rna/sim/protocols.hpp"
#include "rna/sim/workload.hpp"

namespace rna::sim {
namespace {

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(3.0, [&] { order.push_back(3); });
  engine.Schedule(1.0, [&] { order.push_back(1); });
  engine.Schedule(2.0, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.Now(), 3.0);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  engine.Schedule(1.0, [&] { order.push_back(1); });
  engine.Schedule(1.0, [&] { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) engine.Schedule(1.0, chain);
  };
  engine.Schedule(1.0, chain);
  engine.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(engine.Now(), 5.0);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  engine.Schedule(1.0, [&] { ++fired; });
  engine.Schedule(10.0, [&] { ++fired; });
  engine.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.Now(), 5.0);
  EXPECT_EQ(engine.PendingEvents(), 1u);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.Schedule(1.0, [] {});
  engine.Run();
  EXPECT_THROW(engine.ScheduleAt(0.5, [] {}), std::logic_error);
}

TEST(Workload, UniformSlowdownWithinBounds) {
  UniformSlowdownModel model(0.1, 0.0, 0.05);
  common::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const Seconds t = model.Sample(0, i, rng);
    EXPECT_GE(t, 0.1);
    EXPECT_LT(t, 0.15);
  }
}

TEST(Workload, DeterministicSkewIsExact) {
  DeterministicSkewModel model(0.1, {0.0, 0.010, 0.040});
  common::Rng rng(2);
  EXPECT_DOUBLE_EQ(model.Sample(0, 0, rng), 0.1);
  EXPECT_DOUBLE_EQ(model.Sample(1, 5, rng), 0.110);
  EXPECT_DOUBLE_EQ(model.Sample(2, 9, rng), 0.140);
  EXPECT_THROW(model.Sample(3, 0, rng), std::logic_error);
}

TEST(Workload, MixedGroupSlowSetIsSlower) {
  MixedGroupModel model(0.1, 0.05, 0.05, 0.10,
                        {false, false, true, true});
  common::Rng rng(3);
  common::OnlineStats fast, slow;
  for (int i = 0; i < 5000; ++i) {
    fast.Add(model.Sample(0, i, rng));
    slow.Add(model.Sample(2, i, rng));
  }
  EXPECT_NEAR(fast.Mean(), 0.125, 0.005);
  EXPECT_NEAR(slow.Mean(), 0.2, 0.005);
}

TEST(Workload, TieredJitterModel) {
  TieredJitterModel model(0.01, {1.0, 2.0, 3.0}, 0.0, 0.002);
  common::Rng rng(9);
  common::OnlineStats w0, w2;
  for (int i = 0; i < 3000; ++i) {
    const Seconds t0 = model.Sample(0, i, rng);
    const Seconds t2 = model.Sample(2, i, rng);
    EXPECT_GE(t0, 0.01);
    EXPECT_LT(t0, 0.012);
    EXPECT_GE(t2, 0.03);
    EXPECT_LT(t2, 0.032);
    w0.Add(t0);
    w2.Add(t2);
  }
  EXPECT_NEAR(w2.Mean() / w0.Mean(), 31.0 / 11.0, 0.05);
  EXPECT_THROW(model.Sample(3, 0, rng), std::logic_error);
}

TEST(Workload, LongTailMatchesFigure2) {
  const LongTailModel model = LongTailModel::LstmUcf101();
  common::Rng rng(4);
  common::OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(model.Sample(0, i, rng));
  EXPECT_NEAR(stats.Mean(), 1.219, 0.05);
  EXPECT_NEAR(stats.Stddev(), 0.760, 0.06);
  EXPECT_GE(stats.Min(), 0.156);
  EXPECT_LE(stats.Max(), 8.0);
}

TEST(CommModel, RingAllreduceFormula) {
  CommModel comm{.alpha = 1e-5, .bandwidth = 1e9};
  // 2(N−1)(α + S/(N·B))
  const Seconds t = comm.RingAllreduce(4, 4'000'000);
  EXPECT_NEAR(t, 2.0 * 3.0 * (1e-5 + 1e6 / 1e9), 1e-12);
  EXPECT_DOUBLE_EQ(comm.RingAllreduce(1, 1000), 0.0);
}

TEST(CommModel, PointToPointAndBroadcast) {
  CommModel comm{.alpha = 1e-4, .bandwidth = 1e9};
  EXPECT_NEAR(comm.PointToPoint(1'000'000), 1e-4 + 1e-3, 1e-12);
  EXPECT_NEAR(comm.Broadcast(5, 1'000'000), 4e-4 + 1e-3, 1e-12);
  EXPECT_NEAR(comm.PushPull(1'000'000), 2 * (1e-4 + 1e-3), 1e-12);
}

TEST(CopyModel, Table5Calibration) {
  // LSTM: 34,663,525 params, two PCIe copies at 6 GB/s over a 1.219 s
  // iteration ≈ 3.8% (Table 5).
  const CopyModel copy;
  const ModelSpec& lstm = FindModel("lstm");
  const double pct =
      copy.RoundTrip(lstm.GradientBytes()) / lstm.base_iteration * 100.0;
  EXPECT_NEAR(pct, 3.8, 0.5);
}

TEST(PaperModels, ParameterCountsFromPaper) {
  EXPECT_EQ(FindModel("resnet50").parameters, 25'559'081u);
  EXPECT_EQ(FindModel("lstm").parameters, 34'663'525u);
  EXPECT_EQ(FindModel("transformer").parameters, 61'362'176u);
  EXPECT_THROW(FindModel("alexnet"), std::logic_error);
}

SimConfig SmallConfig(std::size_t world = 4) {
  SimConfig c;
  c.world = world;
  c.rounds = 200;
  c.model_bytes = 10u << 20;
  c.seed = 7;
  return c;
}

TEST(SimulateBsp, WaitEqualsSlowestMinusOwn) {
  const SimConfig config = SmallConfig(3);
  DeterministicSkewModel model(0.1, {0.0, 0.01, 0.04});
  const SimResult r = SimulateBsp(config, model);
  EXPECT_EQ(r.rounds, 200u);
  EXPECT_EQ(r.gradients_applied, 600u);
  // Worker 0 waits (0.04 per round), worker 2 never waits.
  EXPECT_NEAR(r.breakdown[0].wait, 0.04 * 200, 1e-9);
  EXPECT_NEAR(r.breakdown[2].wait, 0.0, 1e-9);
  EXPECT_NEAR(r.breakdown[1].compute, 0.11 * 200, 1e-9);
}

TEST(SimulateRna, FasterThanBspUnderStragglers) {
  const SimConfig config = SmallConfig(8);
  UniformSlowdownModel model(0.1, 0.0, 0.05);
  const SimResult bsp = SimulateBsp(config, model);
  const SimResult rna = SimulateRna(config, model);
  EXPECT_LT(rna.total_time, bsp.total_time);
  EXPECT_GT(rna.GradientThroughput(), bsp.GradientThroughput());
}

TEST(SimulateRna, GradientAccounting) {
  const SimConfig config = SmallConfig(4);
  UniformSlowdownModel model(0.05, 0.0, 0.02);
  RnaSimOptions options;
  options.staleness_bound = 4;
  const SimResult r = SimulateRna(config, model, options);
  EXPECT_EQ(r.rounds, config.rounds);
  EXPECT_GT(r.gradients_applied, 0u);
  // Per round, a worker can contribute at most `staleness_bound` buffered
  // gradients.
  EXPECT_LE(r.gradients_applied,
            config.rounds * config.world * options.staleness_bound);
}

TEST(SimulateEager, BetweenBspAndRnaUnderSkew) {
  SimConfig config = SmallConfig(8);
  config.rounds = 400;
  // Heavy per-iteration randomness: RNA (min of 2) should trigger earlier
  // than the majority rule on average.
  UniformSlowdownModel model(0.05, 0.0, 0.10);
  const SimResult bsp = SimulateBsp(config, model);
  const SimResult eager = SimulateEagerMajority(config, model);
  const SimResult rna = SimulateRna(config, model);
  EXPECT_LT(eager.total_time, bsp.total_time);
  EXPECT_LT(rna.total_time, bsp.total_time);
}

TEST(SimulateAdPsgd, CompletesTargetIterations) {
  const SimConfig config = SmallConfig(4);
  UniformSlowdownModel model(0.05, 0.0, 0.02);
  const SimResult r = SimulateAdPsgd(config, model);
  EXPECT_EQ(r.gradients_applied, config.rounds * config.world);
  EXPECT_GT(r.total_time, 0.0);
}

TEST(SimulateHierarchical, CoversAllWorkers) {
  SimConfig config = SmallConfig(6);
  MixedGroupModel model(0.05, 0.02, 0.05, 0.10,
                        {false, false, false, true, true, true});
  HierarchicalSimOptions options;
  options.group_of = {0, 0, 0, 1, 1, 1};
  const SimResult r = SimulateHierarchicalRna(config, model, options);
  EXPECT_GT(r.gradients_applied, 0u);
  for (const auto& b : r.breakdown) {
    EXPECT_GT(b.comm, 0.0);
  }
}

TEST(SimulateHierarchical, GroupingRemovesProbeContamination) {
  // Under mixed heterogeneity a flat ring's probes regularly land on the
  // deterministically slow machines, inflating the round time; a
  // speed-homogeneous fast group triggers at its own pace. (The accuracy
  // side of the hierarchical argument is measured by the threaded runtime
  // in bench_fig6_speedup, not by this timing model.)
  SimConfig mixed_config = SmallConfig(8);
  mixed_config.rounds = 400;
  std::vector<bool> slow = {false, false, false, false,
                            true,  true,  true,  true};
  MixedGroupModel mixed(0.05, 0.05, 0.05, 0.10, slow);
  const SimResult flat = SimulateRna(mixed_config, mixed);

  SimConfig fast_config = SmallConfig(4);
  fast_config.rounds = 400;
  UniformSlowdownModel fast_only(0.05, 0.0, 0.05);
  const SimResult grouped_fast = SimulateRna(fast_config, fast_only);

  EXPECT_GT(flat.MeanRoundTime(), grouped_fast.MeanRoundTime());
}

TEST(ProbeResponse, TwoChoicesBeatOne) {
  const LongTailModel tasks = ProbeBenchmarkTasks();
  const auto one = ProbeResponseTimes(100, 1, 500, tasks, 0.0, 11);
  const auto two = ProbeResponseTimes(100, 2, 500, tasks, 0.0, 11);
  const double med1 = common::Percentile(one, 50);
  const double med2 = common::Percentile(two, 50);
  EXPECT_LT(med2, med1);
  EXPECT_GT(med1 / med2, 1.8);  // the paper reports ≈2.4×
}

TEST(ProbeResponse, OversamplingOverheadHurtsEventually) {
  // With per-probe messaging overhead, many probes stop helping.
  const LongTailModel tasks = ProbeBenchmarkTasks();
  const auto q2 = ProbeResponseTimes(100, 2, 300, tasks, 0.004, 13);
  const auto q32 = ProbeResponseTimes(100, 32, 300, tasks, 0.004, 13);
  EXPECT_LT(common::Percentile(q2, 50), common::Percentile(q32, 50));
}

TEST(ProbeResponse, UniformTasksAlsoImprove) {
  const UniformSlowdownModel tasks(0.0, 0.010, 0.050);
  const auto one = ProbeResponseTimes(100, 1, 500, tasks, 0.0, 17);
  const auto two = ProbeResponseTimes(100, 2, 500, tasks, 0.0, 17);
  EXPECT_LT(common::Percentile(two, 50), common::Percentile(one, 50));
}

TEST(ProbeResponse, Deterministic) {
  const LongTailModel tasks = ProbeBenchmarkTasks();
  const auto a = ProbeResponseTimes(50, 2, 100, tasks, 0.0, 5);
  const auto b = ProbeResponseTimes(50, 2, 100, tasks, 0.0, 5);
  EXPECT_EQ(a, b);
}

// Protocol-timing properties over a grid of world sizes: RNA's mean round
// time never exceeds BSP's on the same straggler workload, and adding
// workers never makes a BSP round faster (E[max] is monotone).
class TimingSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimingSweep, RnaRoundsAreNeverSlowerThanBsp) {
  const auto world = static_cast<std::size_t>(GetParam());
  SimConfig config;
  config.world = world;
  config.rounds = 300;
  config.model_bytes = 1u << 20;
  config.seed = 100 + world;
  UniformSlowdownModel model(0.05, 0.0, 0.05);
  const SimResult bsp = SimulateBsp(config, model);
  const SimResult rna = SimulateRna(config, model);
  EXPECT_LE(rna.MeanRoundTime(), bsp.MeanRoundTime() * 1.02);
}

TEST_P(TimingSweep, BspRoundTimeMonotoneInWorld) {
  const auto world = static_cast<std::size_t>(GetParam());
  UniformSlowdownModel model(0.05, 0.0, 0.05);
  SimConfig small;
  small.world = world;
  small.rounds = 400;
  small.model_bytes = 0;  // isolate the barrier effect from comm cost
  small.seed = 9;
  SimConfig big = small;
  big.world = world * 2;
  const SimResult a = SimulateBsp(small, model);
  const SimResult b = SimulateBsp(big, model);
  EXPECT_GE(b.MeanRoundTime(), a.MeanRoundTime() * 0.98);
}

INSTANTIATE_TEST_SUITE_P(Worlds, TimingSweep, ::testing::Values(2, 4, 8, 16));

TEST(Queueing, WaitGrowsLikeOneOverOneMinusRho) {
  // §3.1 cites the 1/(1−ρ) expected-wait law for a loaded queueing system.
  // Validate on an M/M/1 queue simulated with the event engine: the mean
  // wait (sojourn) at ρ=0.8 must be ≈4–5× the wait at ρ=0.4, tracking
  // W = 1/(μ−λ) = (1/μ)·1/(1−ρ).
  auto mean_sojourn = [](double rho) {
    const double mu = 100.0;          // service rate (jobs/s)
    const double lambda = rho * mu;   // arrival rate
    Engine engine;
    common::Rng rng(31);
    double server_free = 0.0;
    double total_wait = 0.0;
    const int jobs = 20000;
    double arrival = 0.0;
    for (int j = 0; j < jobs; ++j) {
      arrival += rng.Exponential(lambda);
      const double start = std::max(arrival, server_free);
      const double service = rng.Exponential(mu);
      server_free = start + service;
      total_wait += server_free - arrival;  // sojourn time
    }
    return total_wait / jobs;
  };
  const double w40 = mean_sojourn(0.4);
  const double w80 = mean_sojourn(0.8);
  // Theory: (1/(1−0.8)) / (1/(1−0.4)) = 3.0 in sojourn ratio.
  EXPECT_NEAR(w80 / w40, 3.0, 0.6);
}

TEST(Simulators, DeterministicUnderSeed) {
  const SimConfig config = SmallConfig(6);
  UniformSlowdownModel model(0.05, 0.0, 0.03);
  const SimResult a = SimulateRna(config, model);
  const SimResult b = SimulateRna(config, model);
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.gradients_applied, b.gradients_applied);
}

}  // namespace
}  // namespace rna::sim
