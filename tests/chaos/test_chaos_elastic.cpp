// Elastic-membership chaos scenarios: scheduled joins and leaves injected
// mid-training, asserting the controller re-forms the ring without a
// restart, a departing (even elected) rank never terminates the session,
// joiners adopt the leader's replica before contributing, and churn storms
// still converge — with oracle-exact contributor traces under lockstep.
//
// Scenario seeds fold in RNA_CHAOS_SEED exactly like test_chaos.cpp, so the
// CI matrix replays every schedule across release and TSan presets.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "chaos_util.hpp"
#include "rna/core/rna.hpp"
#include "rna/sim/workload.hpp"
#include "rna/train/config.hpp"
#include "rna/train/membership.hpp"
#include "rna/train/metrics.hpp"

namespace rna::chaos {
namespace {

using train::ElasticSchedule;
using train::MembershipDirectory;
using train::Protocol;
using train::TrainerConfig;
using train::TrainResult;
using train::WorkerFaultSchedule;

// Shadow-model oracle: replay the elastic schedule through the same
// MembershipDirectory state machine the controller owns. Under lockstep a
// clean round's contributor count equals the active member count at the
// round boundary (leaves applied, joiners still syncing), and a joiner that
// receives the leader's state during round r is active from round r + 1.
std::vector<std::size_t> ExpectedContributors(
    std::size_t world, const std::vector<ElasticSchedule>& schedule,
    std::size_t rounds) {
  std::vector<net::Rank> ranks(world);
  for (std::size_t r = 0; r < world; ++r) ranks[r] = r;
  MembershipDirectory directory(ranks, schedule);
  std::vector<std::size_t> expected(rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    directory.BeginRound(round);
    expected[round] = directory.ActiveCount();
    for (const net::Rank j : directory.SyncingMembers()) {
      directory.OnSynced(j);  // the lossless transfer lands the same round
    }
  }
  return expected;
}

// A worker joins mid-training: pending until its scheduled round, syncing
// (leader ships params + optimizer state) for exactly one round, then a
// full ring member. The contributor trace is oracle-exact and the run
// keeps converging with the grown ring.
TEST(ChaosElastic, JoinMidTrainingGrowsTheRing) {
  constexpr std::size_t kWorld = 5;
  constexpr std::size_t kRounds = 10;
  constexpr std::size_t kJoinRound = 3;
  Scenario s = SmallScenario(31);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;  // elastic schedules require the deterministic pacer
  c.elastic.push_back({.rank = 4, .join_at_round = kJoinRound});

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.workers_joined, 1u);
  EXPECT_EQ(r.workers_left, 0u);
  EXPECT_EQ(r.live_workers, kWorld);
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  const auto expected = ExpectedContributors(kWorld, c.elastic, kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    // 4 members before and during the sync round, 5 from the next one.
    EXPECT_EQ(r.round_contributors[round], expected[round])
        << "round " << round;
  }
  EXPECT_EQ(r.round_contributors.back(), kWorld);
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Regression lock — the departing rank is the one the election machinery
// favors (rank 0: first probed, round leader, result reporter). Pre-elastic
// code treated any worker exit as session end (global_stop), so the whole
// run died with it. A scheduled leave must instead shrink the ring and let
// every remaining round run to completion.
TEST(ChaosElastic, LeaveElectedInitiatorDoesNotEndTheRun) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kLeaveRound = 4;
  Scenario s = SmallScenario(32);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;
  c.elastic.push_back(
      {.rank = 0, .join_at_round = 0, .leave_at_round = kLeaveRound});

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds) << "a leaver must never stop the session";
  EXPECT_EQ(r.workers_left, 1u);
  EXPECT_EQ(r.live_workers, kWorld);  // a leave is not a death
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t expect = round < kLeaveRound ? kWorld : kWorld - 1;
    EXPECT_EQ(r.round_contributors[round], expect) << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Churn storm: five joins and five leaves spread over twenty rounds — the
// entire founding membership rotates out while the replacements rotate in.
// The contributor trace must follow the shadow model exactly and the final
// (fully replaced) ring must still have learned the task.
TEST(ChaosElastic, ChurnStormFiveJoinsFiveLeaves) {
  constexpr std::size_t kWorld = 10;
  constexpr std::size_t kRounds = 20;
  Scenario s = SmallScenario(33);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;
  // Founders {0..4}; ranks 5..9 join two rounds apart; founders then leave
  // one round apart (rounds 12..16), churning membership to {5..9}.
  for (std::size_t i = 0; i < 5; ++i) {
    c.elastic.push_back({.rank = 5 + i, .join_at_round = 2 + 2 * i});
    c.elastic.push_back(
        {.rank = i, .join_at_round = 0, .leave_at_round = 12 + i});
  }

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.workers_joined, 5u);
  EXPECT_EQ(r.workers_left, 5u);
  EXPECT_EQ(r.live_workers, kWorld);
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  const auto expected = ExpectedContributors(kWorld, c.elastic, kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    EXPECT_EQ(r.round_contributors[round], expected[round])
        << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Elasticity and fault tolerance composed: a rank joins, then a founding
// member fail-stop crashes mid-round. The crash round aborts (broken ring),
// every other round matches the shadow model with the dead rank removed.
TEST(ChaosElastic, JoinThenCrashMidRound) {
  constexpr std::size_t kWorld = 5;
  constexpr std::size_t kRounds = 10;
  constexpr std::size_t kJoinRound = 2;
  constexpr std::size_t kCrashRound = 4;
  Scenario s = SmallScenario(34);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;
  c.elastic.push_back({.rank = 4, .join_at_round = kJoinRound});
  WorkerFaultSchedule w;
  w.rank = 1;
  w.crash_in_round = kCrashRound;
  c.fault.workers.push_back(w);

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.workers_joined, 1u);
  EXPECT_EQ(r.live_workers, kWorld - 1);
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    // 4 founders; joiner syncs in round 2, contributes from round 3; the
    // rank-1 crash aborts round 4 and removes it from every later ring.
    const std::size_t expect = round < kJoinRound + 1 ? 4
                               : round < kCrashRound  ? 5
                               : round == kCrashRound ? 0
                                                      : 4;
    EXPECT_EQ(r.round_contributors[round], expect) << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Elastic membership inside the hierarchical engine: a join and a leave in
// different speed groups, with the sharded PS tree underneath. Each group
// controller owns its own directory; the recorded trace follows rank 0's
// group, which gains its joiner on schedule.
TEST(ChaosElastic, HierarchicalJoinAndLeave) {
  constexpr std::size_t kWorld = 6;
  constexpr std::size_t kRounds = 10;
  constexpr std::size_t kJoinRound = 3;
  constexpr std::size_t kLeaveRound = 5;
  Scenario s = SmallScenario(35);
  TrainerConfig c = ChaosConfig(Protocol::kRnaHierarchical, kWorld, kRounds);
  c.lockstep = true;  // grouping from the delay model, not wall clock
  c.calibration_iters = 2;
  c.ps_sync_every = 2;
  c.ps_shards = 2;
  c.ps_fan_in = 2;
  // Two clean tiers -> groups {0, 1, 2} fast and {3, 4, 5} slow.
  c.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0005, std::vector<common::Seconds>{0.0, 0.0, 0.0, 0.02, 0.02, 0.02});
  c.delay_scale = 1.0;
  c.elastic.push_back({.rank = 2, .join_at_round = kJoinRound});
  c.elastic.push_back(
      {.rank = 4, .join_at_round = 0, .leave_at_round = kLeaveRound});

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.workers_joined, 1u);  // summed across group directories
  EXPECT_EQ(r.workers_left, 1u);
  EXPECT_EQ(r.live_workers, kWorld);
  // The trace follows rank 0's (fast) group: two founders, rank 2 syncing
  // in its join round, three members afterwards; the slow group's leave
  // never shows up here.
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t expect = round <= kJoinRound ? 2 : 3;
    EXPECT_EQ(r.round_contributors[round], expect) << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// The acceptance property from the issue: a run whose membership churns
// must converge to the same evaluation target as the fixed-membership run
// it started from — elasticity costs rounds of contribution, not the model.
TEST(ChaosElastic, ElasticConvergesToFixedMembershipTarget) {
  constexpr std::size_t kRounds = 12;
  Scenario s = SmallScenario(36);

  TrainerConfig fixed = ChaosConfig(Protocol::kRna, 4, kRounds);
  fixed.lockstep = true;
  const TrainResult a = core::RunTraining(fixed, s.factory, s.train, s.val);

  TrainerConfig elastic = ChaosConfig(Protocol::kRna, 5, kRounds);
  elastic.lockstep = true;
  elastic.elastic.push_back({.rank = 4, .join_at_round = 3});
  elastic.elastic.push_back(
      {.rank = 1, .join_at_round = 0, .leave_at_round = 7});
  const TrainResult b = core::RunTraining(elastic, s.factory, s.train, s.val);

  EXPECT_LT(a.final_loss, kChanceLoss);
  EXPECT_LT(b.final_loss, kChanceLoss) << "churn must not break convergence";
  EXPECT_EQ(b.workers_joined, 1u);
  EXPECT_EQ(b.workers_left, 1u);
  for (float p : b.final_params) ASSERT_TRUE(std::isfinite(p));
}

}  // namespace
}  // namespace rna::chaos
