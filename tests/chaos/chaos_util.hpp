#pragma once

// Shared scaffolding for the chaos scenarios: a small classification
// workload, a base TrainerConfig with chaos-friendly (short) recovery
// timeouts, and the RNA_CHAOS_SEED environment hook that lets CI run the
// whole suite across a seed matrix. Every scenario logs its effective seed
// so a failure can be replayed exactly:
//
//   RNA_CHAOS_SEED=<logged seed> ctest --preset release -R chaos

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "rna/data/generators.hpp"
#include "rna/nn/network.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna::chaos {

struct Scenario {
  data::Dataset train;
  data::Dataset val;
  train::ModelFactory factory;
};

inline Scenario SmallScenario(std::uint64_t seed) {
  Scenario s;
  data::Dataset all = data::MakeGaussianClusters(300, 6, 3, 0.3, seed);
  std::tie(s.train, s.val) = all.SplitHoldout(0.2);
  s.factory = [](std::uint64_t model_seed) {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{6, 12, 3}, model_seed);
  };
  return s;
}

/// Seed offset for the CI matrix; 0 when RNA_CHAOS_SEED is unset.
inline std::uint64_t MatrixSeed() {
  const char* env = std::getenv("RNA_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

/// Base config every scenario starts from: short recovery timeouts so a
/// deadlock-turned-timeout fails fast, early stopping off so round counts
/// are oracle-checkable, and the matrix seed folded into both RNG seeds.
/// The effective seeds are logged for replay.
inline train::TrainerConfig ChaosConfig(train::Protocol protocol,
                                        std::size_t world,
                                        std::size_t max_rounds) {
  train::TrainerConfig c;
  c.protocol = protocol;
  c.world = world;
  c.max_rounds = max_rounds;
  c.batch_size = 8;
  c.target_loss = -1.0;
  c.patience = 1000000;  // stopping is the scenario's call, not the monitor's
  c.fault.retry_budget = 5;
  c.fault.retry_timeout_s = 0.02;
  c.fault.collective_timeout_s = 0.25;
  c.fault.probe_timeout_s = 0.1;
  c.fault.dead_after_misses = 2;
  const std::uint64_t matrix = MatrixSeed();
  c.seed = 42 + matrix * 1000003;
  c.model_seed = 7 + matrix * 999331;
  std::printf("[ CHAOS    ] seed=%llu model_seed=%llu (RNA_CHAOS_SEED=%llu)\n",
              static_cast<unsigned long long>(c.seed),
              static_cast<unsigned long long>(c.model_seed),
              static_cast<unsigned long long>(matrix));
  return c;
}

/// Random-chance cross-entropy for the 3-class workload is ln(3) ≈ 1.0986;
/// anything meaningfully below it proves the surviving workers kept
/// learning through the injected faults.
inline constexpr double kChanceLoss = 1.0986;

}  // namespace rna::chaos
