// Chaos scenarios: end-to-end training runs under injected crashes, drops,
// and hangs, asserting the protocol layer degrades the way the paper
// prescribes (absent workers contribute null gradients, the partial
// collective re-weights by the surviving contributor count, training
// terminates and keeps learning) instead of deadlocking or dying.
//
// Several scenarios are regression locks: the comment above each names the
// exact failure mode the pre-fault-injection code exhibited when the same
// fault was injected by hand.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "chaos_util.hpp"
#include "rna/collectives/fusion.hpp"
#include "rna/core/rna.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/sim/workload.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"

namespace rna::chaos {
namespace {

using train::Protocol;
using train::TrainerConfig;
using train::TrainResult;
using train::WorkerFaultSchedule;

// Regression lock — crash one worker mid-round. Pre-PR, the ring collective
// used untimed Mailbox::Get: a member that received the Go and died before
// sending its first chunk left both ring neighbors blocked forever inside
// Recv (deadlock; the run never terminated). The timed ring
// (RingPartialAllreduce hop deadline) plus the controller's kGoodbye
// handling turn that into one aborted round followed by re-formed
// membership.
TEST(Chaos, CrashWorkerMidRound) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kCrashRound = 3;
  Scenario s = SmallScenario(11);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;  // makes the contributor trace oracle-exact
  WorkerFaultSchedule w;
  w.rank = 2;
  w.crash_in_round = kCrashRound;
  c.fault.workers.push_back(w);

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.live_workers, kWorld - 1);
  // Oracle: full membership before the crash; the crash round itself aborts
  // (the ring is broken mid-collective, survivors time out and skip the
  // step); every later round runs the re-formed (N-1)-member ring.
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t expect = round < kCrashRound ? kWorld
                               : round == kCrashRound ? 0
                                                      : kWorld - 1;
    EXPECT_EQ(r.round_contributors[round], expect) << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// A worker that dies between collectives (compute-path fail-stop) says
// kGoodbye before the next round's membership forms, so no round aborts:
// the contributor count steps from N straight to N-1 and the survivors'
// re-weighted (W = 1/Σw, LR ∝ m/N) updates keep converging.
TEST(Chaos, CrashBetweenRoundsContributorOracle) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kCrashIter = 3;
  Scenario s = SmallScenario(12);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.lockstep = true;  // one compute token per round: iteration k <=> round k
  WorkerFaultSchedule w;
  w.rank = 1;
  w.crash_at_iteration = kCrashIter;
  c.fault.workers.push_back(w);

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  EXPECT_EQ(r.live_workers, kWorld - 1);
  ASSERT_EQ(r.round_contributors.size(), kRounds);
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t expect = round < kCrashIter ? kWorld : kWorld - 1;
    EXPECT_EQ(r.round_contributors[round], expect) << "round " << round;
  }
  EXPECT_LT(r.final_loss, kChanceLoss);
}

// Regression lock — drop 10% of parameter-server traffic. Pre-PR, PsClient
// sent the request once and blocked in an untimed Recv for the reply: the
// first dropped message (either direction) hung that worker forever. The
// at-least-once retry loop (exponential backoff, bounded budget) rides
// through a 10% loss rate essentially always.
TEST(Chaos, DropTenPercentOfPsTraffic) {
  constexpr std::size_t kWorld = 4;
  Scenario s = SmallScenario(13);
  TrainerConfig c = ChaosConfig(Protocol::kCentralizedPs, kWorld, 12);
  c.fault.ps_drop_prob = 0.10;

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.live_workers, kWorld);
  EXPECT_GT(r.gradients_applied, 0u);
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Hang the worker the controller just probed (the would-be initiator of the
// round). A hang is slowness, not death: the paper's rule is that a
// probed-and-silent worker is treated as absent for *this* round (its
// contribution becomes the null gradient) — it must NOT be declared dead,
// and once the hang clears it rejoins at full strength.
TEST(Chaos, HangElectedInitiatorIsAbsentNotDead) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 8;
  Scenario s = SmallScenario(14);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  // Free-running: the hang must interact with the real probe/election
  // machinery, not the lockstep pacer.
  WorkerFaultSchedule w;
  w.rank = 0;  // the first rank probed in round 0's election
  w.hang_at_iteration = 1;
  w.hang_for_s = 0.5;  // >> probe_timeout_s: forces re-election paths
  c.fault.workers.push_back(w);

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.rounds, kRounds);
  // The hung worker was slow, never silent at round end: still alive.
  EXPECT_EQ(r.live_workers, kWorld);
  EXPECT_LT(r.final_loss, kChanceLoss);
}

// Kill every member of one hierarchical speed group mid-run. The surviving
// group's RNA ring and its async PS averaging must keep going; the dead
// group's controller retires from the PS rotation instead of wedging it.
TEST(Chaos, KillWholeHierarchicalGroup) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kCrashRound = 3;
  Scenario s = SmallScenario(15);
  TrainerConfig c = ChaosConfig(Protocol::kRnaHierarchical, kWorld, kRounds);
  c.lockstep = true;  // grouping comes from the delay model, not wall clock
  c.calibration_iters = 2;
  c.ps_sync_every = 2;
  // Two clean speed tiers -> two groups: {0, 1} fast, {2, 3} slow.
  c.delay_model = std::make_shared<sim::DeterministicSkewModel>(
      0.0005, std::vector<common::Seconds>{0.0, 0.0, 0.02, 0.02});
  c.delay_scale = 1.0;
  for (std::size_t rank : {std::size_t{2}, std::size_t{3}}) {
    WorkerFaultSchedule w;
    w.rank = rank;
    w.crash_in_round = kCrashRound;
    c.fault.workers.push_back(w);
  }

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.live_workers, kWorld - 2);
  // The recorded trace follows rank 0's (surviving) group: its two members
  // never miss a round.
  ASSERT_EQ(r.round_contributors.size(), r.rounds);
  for (std::size_t round = 0; round < r.rounds; ++round) {
    EXPECT_EQ(r.round_contributors[round], 2u) << "round " << round;
  }
  EXPECT_GE(r.rounds, kRounds);
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// The replay guarantee the suite is named for: a chaos run (lockstep +
// scripted crash) is byte-for-byte reproducible from its seed — same final
// parameters, same contributor trace, same death toll.
TEST(Chaos, DeterministicReplayOfACrashRun) {
  constexpr std::size_t kWorld = 4;
  Scenario s = SmallScenario(16);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, 8);
  c.lockstep = true;
  WorkerFaultSchedule w;
  w.rank = 3;
  w.crash_in_round = 2;
  c.fault.workers.push_back(w);

  const TrainResult a = core::RunTraining(c, s.factory, s.train, s.val);
  const TrainResult b = core::RunTraining(c, s.factory, s.train, s.val);

  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.round_contributors, b.round_contributors);
  EXPECT_EQ(a.live_workers, b.live_workers);
  EXPECT_EQ(a.gradients_applied, b.gradients_applied);
}

// Probabilistic storm: 10% of *all* fabric traffic dropped (controller
// RPCs, ring chunks, everything). Individual rounds may abort — that is the
// designed degradation — but the run must terminate with every worker
// alive-or-accounted-for and finite parameters. This is the scenario that
// exercises every timeout path at once.
TEST(Chaos, FabricDropStormTerminates) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kRounds = 6;
  Scenario s = SmallScenario(17);
  TrainerConfig c = ChaosConfig(Protocol::kRna, kWorld, kRounds);
  c.fault.drop_prob = 0.10;
  c.fault.collective_timeout_s = 0.1;  // storms abort fast, not accurately

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_GT(r.rounds, 0u);
  ASSERT_EQ(r.round_contributors.size(), r.rounds);
  for (std::size_t count : r.round_contributors) EXPECT_LE(count, kWorld);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// Gossip under fire: AD-PSGD with one peer crashing mid-run. Survivors must
// discover the death (timeout -> local suspicion), degrade to local SGD for
// iterations whose drawn peer is dead, and the final consensus average must
// span survivors only.
TEST(Chaos, AdPsgdSurvivesPeerCrash) {
  constexpr std::size_t kWorld = 4;
  Scenario s = SmallScenario(18);
  TrainerConfig c = ChaosConfig(Protocol::kAdPsgd, kWorld, 12);
  c.lockstep = true;
  WorkerFaultSchedule w;
  w.rank = 2;
  w.crash_at_iteration = 4;
  c.fault.workers.push_back(w);

  const TrainResult r = core::RunTraining(c, s.factory, s.train, s.val);

  EXPECT_EQ(r.live_workers, kWorld - 1);
  EXPECT_GT(r.gradients_applied, 0u);
  EXPECT_LT(r.final_loss, kChanceLoss);
  for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
}

// The pipelined fused data plane under fire: 10% of all fabric traffic
// dropped while every rank drives the timed FusedAllreduceFor. An aborted
// attempt leaves several buckets' rings half-flown (the pipeline launches
// bucket k+1's first hop before bucket k drains), so the regression this
// locks is twofold: (1) no hop ever blocks past its deadline — the run
// terminates; (2) purging the aborted call's whole tag range really clears
// the in-flight pipeline, so a retry on fresh tags is never satisfied by a
// stale hop and a fully-completed round is exact on every rank.
TEST(Chaos, FusedAllreduceRidesOutDropStorm) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kTensorElems = 96;
  constexpr int kMaxAttempts = 64;
  net::Fabric fabric(kWorld);
  const auto group = collectives::Group::Full(kWorld);
  const std::vector<collectives::TensorSpec> specs = {
      {"grad.a", kTensorElems}, {"grad.b", kTensorElems},
      {"grad.c", kTensorElems}, {"grad.d", kTensorElems}};
  const auto plan =
      collectives::FusionPlan::Build(specs, /*max_bucket_elements=*/128);
  ASSERT_GE(plan.BucketCount(), 2u) << "pipeline needs several buckets";
  const int round_span = static_cast<int>(plan.BucketCount()) *
                         collectives::FusionTagStride(kWorld);

  const std::uint64_t seed = 23 + MatrixSeed();
  std::printf("[ CHAOS    ] fused-drop seed=%llu\n",
              static_cast<unsigned long long>(seed));
  auto fault_plan = std::make_shared<net::FaultPlan>(seed);
  net::FaultRule drop;
  drop.drop_prob = 0.10;
  // Confine the storm to the first attempts' tag range: a fused round moves
  // ~48 messages, so under an endless 10% drop an attempt where *every*
  // rank completes is a 0.9^48 lottery. The storm window still hammers the
  // purge/retry path; the clean tail guarantees convergence.
  drop.tag_lo = 0;
  drop.tag_hi = 4 * round_span - 1;
  fault_plan->AddRule(drop);
  fabric.InstallFaultPlan(fault_plan);

  // Lockstep retries via an in-process std::barrier: a collective needs all
  // members, so no rank may stop retrying while a peer still failed (a drop
  // is observed only by its receiver — ranks CAN disagree on whether an
  // attempt succeeded). Real protocols get this from their controller.
  std::barrier sync(static_cast<std::ptrdiff_t>(kWorld));
  std::atomic<int> ok_count{0};
  std::atomic<int> done_attempt{-1};
  std::vector<std::vector<std::vector<float>>> tensors(kWorld);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < kWorld; ++r) {
    threads.emplace_back([&, r] {
      for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        const int tag_base = attempt * round_span;
        tensors[r].assign(specs.size(),
                          std::vector<float>(kTensorElems,
                                             static_cast<float>(r + 1)));
        std::vector<float*> ptrs;
        for (auto& t : tensors[r]) ptrs.push_back(t.data());
        collectives::CollectiveOptions opts;
        opts.tag_base = tag_base;
        opts.hop_timeout = 0.25;
        const bool ok = collectives::FusedAllreduceFor({fabric, group, r},
                                                       opts, specs, ptrs,
                                                       plan);
        if (ok) {
          ok_count.fetch_add(1);
        } else {
          // Aborted mid-pipeline: purge the whole attempt's tag range so no
          // stale half-flown hop can satisfy a later round's receive.
          fabric.Purge(r, tag_base, tag_base + round_span - 1);
        }
        sync.arrive_and_wait();
        if (r == 0 && ok_count.exchange(0) == static_cast<int>(kWorld)) {
          done_attempt.store(attempt);
        }
        sync.arrive_and_wait();
        if (done_attempt.load() >= 0) return;
      }
    });
  }
  for (auto& t : threads) t.join();

  // (1) Termination: some attempt completed on every rank within budget —
  // no hop blocked past its deadline and purge really cleared the pipeline.
  ASSERT_GE(done_attempt.load(), 0) << "no attempt completed on all ranks";
  // (2) Consistency: the agreed attempt's sum is exact (1+2+3+4 per
  // element) on every rank — a stale-hop corruption would break this.
  for (std::size_t r = 0; r < kWorld; ++r) {
    for (const auto& tensor : tensors[r]) {
      for (const float x : tensor) ASSERT_EQ(x, 10.0f) << "rank " << r;
    }
  }
}

// The compressed data plane under the same fire: int8-quantized fused
// allreduce with per-rank error-feedback residuals riding out a 10% drop
// storm. Beyond the uncompressed scenario's termination/purge guarantees,
// this locks (1) aborted attempts leave the residual buffers finite and
// bounded — a retry after a half-flown lossy pipeline must not compound
// garbage into later rounds — and (2) the completed attempt's result is
// bitwise identical on every rank (the verbatim-forward contract) and
// within quantization tolerance of the exact sum.
TEST(Chaos, CompressedFusedAllreduceKeepsResidualsThroughDropStorm) {
  constexpr std::size_t kWorld = 4;
  constexpr std::size_t kTensorElems = 96;
  constexpr int kMaxAttempts = 64;
  net::Fabric fabric(kWorld);
  const auto group = collectives::Group::Full(kWorld);
  const std::vector<collectives::TensorSpec> specs = {
      {"grad.a", kTensorElems}, {"grad.b", kTensorElems},
      {"grad.c", kTensorElems}, {"grad.d", kTensorElems}};
  const auto plan =
      collectives::FusionPlan::Build(specs, /*max_bucket_elements=*/128);
  ASSERT_GE(plan.BucketCount(), 2u) << "pipeline needs several buckets";
  const int round_span = static_cast<int>(plan.BucketCount()) *
                         collectives::FusionTagStride(kWorld);

  const std::uint64_t seed = 29 + MatrixSeed();
  std::printf("[ CHAOS    ] compressed-fused-drop seed=%llu\n",
              static_cast<unsigned long long>(seed));
  auto fault_plan = std::make_shared<net::FaultPlan>(seed);
  net::FaultRule drop;
  drop.drop_prob = 0.10;
  drop.tag_lo = 0;
  drop.tag_hi = 4 * round_span - 1;
  fault_plan->AddRule(drop);
  fabric.InstallFaultPlan(fault_plan);

  constexpr std::size_t kTotalElems = 4 * kTensorElems;
  std::barrier sync(static_cast<std::ptrdiff_t>(kWorld));
  std::atomic<int> ok_count{0};
  std::atomic<int> done_attempt{-1};
  std::vector<std::vector<std::vector<float>>> tensors(kWorld);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < kWorld; ++r) {
    threads.emplace_back([&, r] {
      // One residual buffer across all attempts: aborts must not wreck it.
      collectives::ErrorFeedback feedback;
      feedback.EnsureSize(kTotalElems);
      for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        collectives::CollectiveOptions opts;
        opts.compression = collectives::Compression::kInt8;
        opts.feedback = &feedback;
        opts.tag_base = attempt * round_span;
        opts.hop_timeout = 0.25;
        tensors[r].assign(specs.size(),
                          std::vector<float>(kTensorElems,
                                             static_cast<float>(r + 1)));
        std::vector<float*> ptrs;
        for (auto& t : tensors[r]) ptrs.push_back(t.data());
        const bool ok = collectives::FusedAllreduceFor({fabric, group, r},
                                                       opts, specs, ptrs,
                                                       plan);
        if (ok) {
          ok_count.fetch_add(1);
        } else {
          fabric.Purge(r, opts.tag_base, opts.tag_base + round_span - 1);
        }
        // Residuals stay finite and within one quantization step of zero
        // regardless of where the abort cut the pipeline.
        ASSERT_EQ(feedback.Size(), kTotalElems);
        for (const float res : feedback.All()) {
          ASSERT_TRUE(std::isfinite(res));
          ASSERT_LE(std::fabs(res), 1.0f);
        }
        sync.arrive_and_wait();
        if (r == 0 && ok_count.exchange(0) == static_cast<int>(kWorld)) {
          done_attempt.store(attempt);
        }
        sync.arrive_and_wait();
        if (done_attempt.load() >= 0) return;
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_GE(done_attempt.load(), 0) << "no attempt completed on all ranks";
  for (std::size_t r = 0; r < kWorld; ++r) {
    for (std::size_t t = 0; t < specs.size(); ++t) {
      for (std::size_t i = 0; i < kTensorElems; ++i) {
        // Quantization tolerance around the exact sum 1+2+3+4…
        ASSERT_NEAR(tensors[r][t][i], 10.0f, 0.5f)
            << "rank " << r << " tensor " << t;
        // …and bitwise agreement across ranks: every rank decodes the
        // same owner-encoded frames (verbatim gather forwarding).
        ASSERT_EQ(tensors[r][t][i], tensors[0][t][i])
            << "rank " << r << " diverged from rank 0";
      }
    }
  }
}

}  // namespace
}  // namespace rna::chaos
