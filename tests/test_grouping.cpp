// Tests for the recursive ζ>v speed-grouping rule (§4) and the probe
// trigger policy.

#include <gtest/gtest.h>

#include <set>

#include "rna/core/rna.hpp"

namespace rna::core {
namespace {

std::size_t NumGroups(const std::vector<std::size_t>& group_of) {
  return std::set<std::size_t>(group_of.begin(), group_of.end()).size();
}

// Policies consume the controller's sharded readiness aggregate; these
// tests build one from a plain count vector.
train::ReadinessBoard Board(const std::vector<std::int64_t>& counts) {
  train::ReadinessBoard board(counts.size());
  for (std::size_t r = 0; r < counts.size(); ++r) {
    board.Add(r, counts[r]);
  }
  return board;
}

TEST(Grouping, HomogeneousStaysTogether) {
  // ζ = 0.02 ≤ v ≈ 0.11 → one group.
  const auto g = ComputeSpeedGroups({0.10, 0.11, 0.12, 0.10});
  EXPECT_EQ(NumGroups(g), 1u);
}

TEST(Grouping, BimodalSplitsInTwo) {
  // Fast ≈ 0.05, slow ≈ 0.30: ζ = 0.25 > v ≈ 0.175 → split; each half is
  // then homogeneous.
  const auto g = ComputeSpeedGroups({0.05, 0.05, 0.30, 0.30});
  EXPECT_EQ(NumGroups(g), 2u);
  EXPECT_EQ(g[0], g[1]);
  EXPECT_EQ(g[2], g[3]);
  EXPECT_NE(g[0], g[2]);
}

TEST(Grouping, SingleWorker) {
  const auto g = ComputeSpeedGroups({0.5});
  EXPECT_EQ(g, (std::vector<std::size_t>{0}));
}

TEST(Grouping, RecursiveSplitOnThreeTiers) {
  // Three well-separated tiers should produce at least two groups, and the
  // extreme tiers must never share one.
  const auto g =
      ComputeSpeedGroups({0.01, 0.012, 0.2, 0.21, 3.0, 3.1});
  EXPECT_GE(NumGroups(g), 2u);
  EXPECT_NE(g[0], g[4]);
  EXPECT_EQ(g[0], g[1]);
  EXPECT_EQ(g[4], g[5]);
}

TEST(Grouping, GroupIdsAreContiguous) {
  const auto g = ComputeSpeedGroups({0.05, 0.30, 0.05, 0.30, 5.0});
  const std::size_t n = NumGroups(g);
  for (auto id : g) EXPECT_LT(id, n);
}

TEST(Grouping, EmptyInputThrows) {
  EXPECT_THROW(ComputeSpeedGroups({}), std::logic_error);
}

// Property: the recursion terminates exactly when ζ ≤ v inside a group, so
// every produced group must satisfy it (or be a singleton).
class GroupingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GroupingFuzz, EveryGroupSatisfiesZetaLeqV) {
  common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.UniformInt(30);
  std::vector<double> times(n);
  for (auto& t : times) {
    // Log-uniform over ~2.5 decades: exercises wide deterministic spreads.
    t = 1e-3 * std::pow(10.0, rng.Uniform(0.0, 2.5));
  }
  const auto group_of = ComputeSpeedGroups(times);
  ASSERT_EQ(group_of.size(), n);
  const std::size_t groups = NumGroups(group_of);
  for (std::size_t g = 0; g < groups; ++g) {
    double lo = 1e300, hi = -1e300, sum = 0.0;
    std::size_t count = 0;
    for (std::size_t w = 0; w < n; ++w) {
      if (group_of[w] != g) continue;
      lo = std::min(lo, times[w]);
      hi = std::max(hi, times[w]);
      sum += times[w];
      ++count;
    }
    ASSERT_GE(count, 1u);  // ids contiguous, no empty groups
    if (count > 1) {
      const double mean = sum / static_cast<double>(count);
      EXPECT_LE(hi - lo, mean + 1e-12)
          << "group " << g << " violates its own termination condition";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingFuzz, ::testing::Range(1, 30));

TEST(ProbePolicy, TriggersOnlyWhenProbedWorkerReady) {
  auto policy = MakeProbePolicy(2);
  common::Rng rng(1);
  policy->BeginRound(4, rng);
  // Find the probed set by testing singleton readiness.
  std::size_t probed = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    std::vector<std::int64_t> ready(4, 0);
    ready[w] = 1;
    probed += policy->ShouldTrigger(Board(ready)) ? 1 : 0;
  }
  EXPECT_EQ(probed, 2u);  // exactly q workers can trigger
}

TEST(ProbePolicy, NeverTriggersOnEmptyReadySet) {
  auto policy = MakeProbePolicy(3);
  common::Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    policy->BeginRound(8, rng);
    EXPECT_FALSE(policy->ShouldTrigger(Board(std::vector<std::int64_t>(8, 0))));
  }
}

TEST(ProbePolicy, ChoicesCappedAtWorld) {
  auto policy = MakeProbePolicy(10);
  common::Rng rng(3);
  policy->BeginRound(2, rng);  // must not throw
  EXPECT_TRUE(policy->ShouldTrigger(Board({1, 0})));
}

TEST(ProbePolicy, ResamplesEachRound) {
  auto policy = MakeProbePolicy(1);
  common::Rng rng(4);
  std::set<std::size_t> chosen;
  for (int round = 0; round < 64; ++round) {
    policy->BeginRound(8, rng);
    for (std::size_t w = 0; w < 8; ++w) {
      std::vector<std::int64_t> ready(8, 0);
      ready[w] = 1;
      if (policy->ShouldTrigger(Board(ready))) chosen.insert(w);
    }
  }
  EXPECT_GT(chosen.size(), 4u);  // randomized election rotates initiators
}

TEST(TriggerPolicies, MajorityRule) {
  auto policy = train::MakeMajorityPolicy();
  common::Rng rng(5);
  policy->BeginRound(5, rng);  // majority = 3
  EXPECT_FALSE(policy->ShouldTrigger(Board({1, 1, 0, 0, 0})));
  EXPECT_TRUE(policy->ShouldTrigger(Board({1, 1, 2, 0, 0})));
}

TEST(TriggerPolicies, SoloRule) {
  auto policy = train::MakeSoloPolicy();
  common::Rng rng(6);
  policy->BeginRound(4, rng);
  EXPECT_FALSE(policy->ShouldTrigger(Board({0, 0, 0, 0})));
  EXPECT_TRUE(policy->ShouldTrigger(Board({0, 0, 0, 1})));
}

TEST(TriggerPolicies, FullRule) {
  auto policy = train::MakeFullPolicy();
  common::Rng rng(7);
  policy->BeginRound(3, rng);
  EXPECT_FALSE(policy->ShouldTrigger(Board({1, 1, 0})));
  EXPECT_TRUE(policy->ShouldTrigger(Board({1, 1, 1})));
}

}  // namespace
}  // namespace rna::core
