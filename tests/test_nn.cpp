// Unit and property tests for the from-scratch NN library. The core
// correctness instrument is the central-difference gradient check: for each
// model family, analytic backprop gradients must match numeric gradients of
// the loss at randomly sampled parameter coordinates.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>

#include "rna/common/rng.hpp"
#include "rna/common/simd.hpp"
#include "rna/data/generators.hpp"
#include "rna/nn/layer.hpp"
#include "rna/nn/loss.hpp"
#include "rna/nn/network.hpp"
#include "rna/nn/optimizer.hpp"

namespace rna::nn {
namespace {

using tensor::Tensor;

Batch DenseBatch(std::size_t n, std::size_t dim, std::size_t classes,
                 std::uint64_t seed) {
  common::Rng rng(seed);
  Batch b;
  b.inputs = Tensor({n, dim});
  for (auto& x : b.inputs.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (std::size_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(classes)));
  }
  return b;
}

Batch SequenceBatch(std::size_t n, std::size_t dim, std::size_t classes,
                    std::uint64_t seed) {
  common::Rng rng(seed);
  Batch b;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 3 + rng.UniformInt(5);
    Tensor seq({len, dim});
    for (auto& x : seq.Flat()) x = static_cast<float>(rng.Normal(0, 1));
    b.sequences.push_back(std::move(seq));
    b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(classes)));
  }
  return b;
}

/// Central-difference gradient check at `probes` random coordinates.
void CheckGradients(Network& net, const Batch& batch, std::size_t probes,
                    std::uint64_t seed) {
  const std::size_t dim = net.ParamCount();
  std::vector<float> params(dim), grad(dim);
  net.CopyParamsTo(params);
  net.SetParamsFrom(params);
  net.ForwardBackward(batch);
  net.CopyGradsTo(grad);

  common::Rng rng(seed);
  const float eps = 5e-3f;
  std::size_t outliers = 0;
  for (std::size_t probe = 0; probe < probes; ++probe) {
    const std::size_t i = rng.UniformInt(dim);
    const float saved = params[i];
    params[i] = saved + eps;
    net.SetParamsFrom(params);
    const double lp = net.Evaluate(batch).loss;
    params[i] = saved - eps;
    net.SetParamsFrom(params);
    const double lm = net.Evaluate(batch).loss;
    params[i] = saved;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double analytic = grad[i];
    const double tol = 1e-2 + 5e-2 * std::max(std::abs(analytic),
                                              std::abs(numeric));
    // A perturbation can cross a ReLU kink, where the one-sided derivative
    // legitimately disagrees with backprop; tolerate a few such probes.
    if (std::abs(analytic - numeric) > tol) ++outliers;
  }
  EXPECT_LE(outliers, probes / 20 + 1)
      << "too many analytic/numeric gradient mismatches";
}

TEST(Dense, ForwardKnownValues) {
  common::Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite weights with known values.
  auto params = layer.Params();
  (*params[0]).At(0, 0) = 1.0f;
  (*params[0]).At(0, 1) = 2.0f;
  (*params[0]).At(1, 0) = 3.0f;
  (*params[0]).At(1, 1) = 4.0f;
  (*params[1])[0] = 0.5f;
  (*params[1])[1] = -0.5f;
  Tensor x({1, 2}, {1.0f, 1.0f});
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 4.5f);   // 1+3+0.5
  EXPECT_FLOAT_EQ(y[1], 5.5f);   // 2+4-0.5
}

TEST(Dense, BackwardShapes) {
  common::Rng rng(2);
  Dense layer(3, 5, rng);
  Tensor x({4, 3});
  layer.Forward(x);
  Tensor dy({4, 5});
  Tensor dx = layer.Backward(dy);
  EXPECT_EQ(dx.Rows(), 4u);
  EXPECT_EQ(dx.Cols(), 3u);
}

TEST(Activations, ReluMasksNegatives) {
  Relu relu;
  Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.Forward(x);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor dy({1, 4}, {1.0f, 1.0f, 1.0f, 1.0f});
  Tensor dx = relu.Backward(dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(Activations, SigmoidRange) {
  Sigmoid sig;
  Tensor x({1, 3}, {-10.0f, 0.0f, 10.0f});
  Tensor y = sig.Forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-4f);
  EXPECT_FLOAT_EQ(y[1], 0.5f);
  EXPECT_NEAR(y[2], 1.0f, 1e-4f);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout drop(0.5, 1);
  drop.SetTraining(false);
  Tensor x({1, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor y = drop.Forward(x);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainModePreservesExpectation) {
  Dropout drop(0.3, 2);
  Tensor x({1, 1}, {1.0f});
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += drop.Forward(x)[0];
  EXPECT_NEAR(sum / trials, 1.0, 0.03);  // inverted dropout keeps E[y]=x
}

TEST(Loss, SoftmaxCrossEntropyKnownValue) {
  // Uniform logits over 4 classes → loss = ln 4.
  Tensor logits({2, 4});
  LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
  // Gradient rows sum to zero (softmax minus one-hot).
  for (std::size_t i = 0; i < 2; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 4; ++j) s += r.dlogits.At(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, PerfectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, {100.0f, 0.0f, 0.0f});
  LossResult r = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(r.loss, 1e-4);
  EXPECT_EQ(r.correct, 1u);
}

TEST(Loss, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(SoftmaxCrossEntropy(logits, {5}), std::logic_error);
}

TEST(GradCheck, Mlp) {
  MlpClassifier net({6, 16, 8, 3}, 11);
  Batch batch = DenseBatch(5, 6, 3, 21);
  CheckGradients(net, batch, 60, 31);
}

TEST(GradCheck, Lstm) {
  LstmClassifier net(4, 8, 3, 12, /*dropout_rate=*/0.0);
  Batch batch = SequenceBatch(3, 4, 3, 22);
  CheckGradients(net, batch, 60, 32);
}

TEST(GradCheck, Attention) {
  AttentionClassifier net(4, 6, 3, 13);
  Batch batch = SequenceBatch(3, 4, 3, 23);
  CheckGradients(net, batch, 60, 33);
}

TEST(GradCheck, DeepLstm) {
  DeepLstmClassifier net(4, 6, 2, 3, 14);
  Batch batch = SequenceBatch(3, 4, 3, 24);
  CheckGradients(net, batch, 60, 34);
}

TEST(GradCheck, Transformer) {
  TransformerClassifier net(4, 8, 2, 3, 15);
  Batch batch = SequenceBatch(3, 4, 3, 25);
  CheckGradients(net, batch, 80, 35);
}

TEST(LayerNormUnit, NormalizesRows) {
  LayerNorm norm(4);
  Tensor x({2, 4}, {1.0f, 2.0f, 3.0f, 4.0f, 10.0f, 10.0f, 10.0f, 10.0f});
  Tensor y = norm.Forward(x);
  // Row 0: zero mean, unit variance under the default γ=1, β=0.
  double mean = 0, var = 0;
  for (std::size_t i = 0; i < 4; ++i) mean += y.At(0, i);
  mean /= 4;
  for (std::size_t i = 0; i < 4; ++i) {
    var += (y.At(0, i) - mean) * (y.At(0, i) - mean);
  }
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var / 4, 1.0, 1e-3);
  // Row 1 is constant → normalized to ~0 (epsilon guards the division).
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y.At(1, i), 0.0, 1e-3);
}

TEST(LayerNormUnit, GainBiasApplied) {
  LayerNorm norm(2);
  (*norm.Params()[0])[0] = 2.0f;  // γ₀
  (*norm.Params()[1])[1] = 5.0f;  // β₁
  Tensor x({1, 2}, {-1.0f, 1.0f});
  Tensor y = norm.Forward(x);
  EXPECT_NEAR(y[0], -2.0f, 1e-3);  // normalized −1 scaled by γ=2
  EXPECT_NEAR(y[1], 6.0f, 1e-3);   // normalized +1 plus β=5
}

TEST(MultiHead, OutputConcatenatesHeads) {
  common::Rng rng(3);
  MultiHeadAttention mha(4, 3, 2, rng);
  EXPECT_EQ(mha.OutDim(), 6u);
  Tensor x({5, 4});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  Tensor y = mha.Forward(x);
  EXPECT_EQ(y.Rows(), 5u);
  EXPECT_EQ(y.Cols(), 6u);
  EXPECT_EQ(mha.Params().size(), 6u);  // Wq/Wk/Wv per head
}

TEST(StackedLstm, SequenceApiMatchesFinalState) {
  common::Rng rng(4);
  LstmLayer lstm(3, 5, rng);
  Tensor x({7, 3});
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  Tensor h_final = lstm.Forward(x);
  Tensor h_all = lstm.ForwardSequence(x);
  ASSERT_EQ(h_all.Rows(), 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(h_all.At(6, i), h_final[i]);
  }
}

TEST(Adam, StepsTowardMinimum) {
  // Minimize f(x) = (x − 3)², gradient 2(x − 3).
  Adam opt(1, {.learning_rate = 0.1});
  std::vector<float> x = {0.0f};
  for (int i = 0; i < 400; ++i) {
    const std::vector<float> grad = {2.0f * (x[0] - 3.0f)};
    opt.Step(x, grad);
  }
  EXPECT_NEAR(x[0], 3.0f, 0.05f);
  EXPECT_EQ(opt.StepsTaken(), 400u);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction the very first Adam step ≈ lr·sign(g).
  Adam opt(1, {.learning_rate = 0.01});
  std::vector<float> x = {0.0f};
  opt.Step(x, std::vector<float>{5.0f});
  EXPECT_NEAR(x[0], -0.01f, 1e-4f);
}

TEST(Adam, LrScaleApplies) {
  Adam opt(1, {.learning_rate = 0.01});
  std::vector<float> x = {0.0f};
  opt.Step(x, std::vector<float>{5.0f}, 0.5);
  EXPECT_NEAR(x[0], -0.005f, 1e-4f);
}

TEST(Network, ParamRoundTrip) {
  MlpClassifier net({4, 8, 2}, 5);
  const std::size_t dim = net.ParamCount();
  EXPECT_EQ(dim, 4u * 8 + 8 + 8 * 2 + 2);
  std::vector<float> params(dim);
  net.CopyParamsTo(params);
  std::vector<float> modified = params;
  for (auto& p : modified) p += 1.0f;
  net.SetParamsFrom(modified);
  std::vector<float> readback(dim);
  net.CopyParamsTo(readback);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_FLOAT_EQ(readback[i], params[i] + 1.0f);
  }
}

TEST(Network, SameSeedSameParams) {
  MlpClassifier a({5, 7, 2}, 99), b({5, 7, 2}, 99);
  std::vector<float> pa(a.ParamCount()), pb(b.ParamCount());
  a.CopyParamsTo(pa);
  b.CopyParamsTo(pb);
  EXPECT_EQ(pa, pb);
}

TEST(Network, LstmParamCount) {
  LstmClassifier net(8, 16, 4, 1);
  // Wx: 8×64, Wh: 16×64, b: 64, head W: 16×4, head b: 4.
  EXPECT_EQ(net.ParamCount(), 8u * 64 + 16 * 64 + 64 + 16 * 4 + 4);
}

TEST(Network, TrainingReducesLoss) {
  // A few plain-SGD steps on a separable problem must reduce the loss.
  data::Dataset ds = data::MakeGaussianClusters(256, 8, 3, 0.3, 77);
  MlpClassifier net({8, 32, 3}, 7);
  const std::size_t dim = net.ParamCount();
  std::vector<float> params(dim), grad(dim);
  net.CopyParamsTo(params);
  SgdMomentum opt(dim, {.learning_rate = 0.2, .momentum = 0.9});

  std::vector<std::size_t> all(ds.Size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  Batch batch = ds.MakeBatch(all);

  net.SetParamsFrom(params);
  const double initial = net.Evaluate(batch).loss;
  for (int step = 0; step < 60; ++step) {
    net.SetParamsFrom(params);
    net.ForwardBackward(batch);
    net.CopyGradsTo(grad);
    opt.Step(params, grad);
  }
  net.SetParamsFrom(params);
  const auto after = net.Evaluate(batch);
  EXPECT_LT(after.loss, initial * 0.5);
  EXPECT_GT(after.Accuracy(), 0.8);
}

TEST(Optimizer, PlainSgdStep) {
  SgdMomentum opt(2, {.learning_rate = 0.1, .momentum = 0.0});
  std::vector<float> params = {1.0f, 2.0f};
  const std::vector<float> grad = {1.0f, -1.0f};
  opt.Step(params, grad);
  EXPECT_FLOAT_EQ(params[0], 0.9f);
  EXPECT_FLOAT_EQ(params[1], 2.1f);
}

TEST(Optimizer, MomentumAccumulates) {
  SgdMomentum opt(1, {.learning_rate = 1.0, .momentum = 0.5});
  std::vector<float> params = {0.0f};
  const std::vector<float> grad = {1.0f};
  opt.Step(params, grad);  // v=1, p=-1
  EXPECT_FLOAT_EQ(params[0], -1.0f);
  opt.Step(params, grad);  // v=1.5, p=-2.5
  EXPECT_FLOAT_EQ(params[0], -2.5f);
}

TEST(Optimizer, LrScaleShrinksStep) {
  SgdMomentum opt(1, {.learning_rate = 1.0, .momentum = 0.0});
  std::vector<float> params = {0.0f};
  const std::vector<float> grad = {1.0f};
  opt.Step(params, grad, 0.25);
  EXPECT_FLOAT_EQ(params[0], -0.25f);
}

TEST(Optimizer, WeightDecayPullsTowardZero) {
  SgdMomentum opt(1, {.learning_rate = 0.1, .momentum = 0.0,
                      .weight_decay = 1.0});
  std::vector<float> params = {10.0f};
  const std::vector<float> grad = {0.0f};
  opt.Step(params, grad);
  EXPECT_FLOAT_EQ(params[0], 9.0f);
}

// Gradient-check sweep over MLP architectures.
class MlpGradSweep : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradSweep, GradientsMatch) {
  const int hidden = GetParam();
  MlpClassifier net({4, static_cast<std::size_t>(hidden), 2},
                    1000 + hidden);
  Batch batch = DenseBatch(4, 4, 2, 2000 + hidden);
  CheckGradients(net, batch, 30, 3000 + hidden);
}

INSTANTIATE_TEST_SUITE_P(Hidden, MlpGradSweep, ::testing::Values(1, 4, 16, 33));

// ---------------------------------------------------------------------------
// Arena/SIMD equivalence: the arena-allocated compute plane with the blocked
// vectorized kernels must produce BITWISE-identical training trajectories to
// the naive pre-arena path (heap temporaries + scalar kernels). This is the
// contract that makes the arena a pure memory optimization and the matmul
// blocking a pure speed optimization — neither may perturb training.

class ScopedDispatch {
 public:
  explicit ScopedDispatch(common::simd::Dispatch d)
      : saved_(common::simd::ActiveDispatch()) {
    common::simd::SetDispatch(d);
  }
  ~ScopedDispatch() { common::simd::SetDispatch(saved_); }

 private:
  common::simd::Dispatch saved_;
};

std::unique_ptr<Network> EquivModel(const std::string& kind) {
  if (kind == "mlp") {
    return std::make_unique<MlpClassifier>(std::vector<std::size_t>{9, 17, 4},
                                           7);
  }
  // Dropout stays ON for the LSTM: both paths must consume identical Rng
  // streams, so mask draws are part of the equivalence contract.
  if (kind == "lstm") return std::make_unique<LstmClassifier>(5, 13, 4, 7);
  if (kind == "deep-lstm") {
    return std::make_unique<DeepLstmClassifier>(5, 11, 2, 4, 7);
  }
  if (kind == "transformer") {
    return std::make_unique<TransformerClassifier>(5, 16, 2, 4, 7);
  }
  return std::make_unique<AttentionClassifier>(5, 11, 4, 7);
}

Batch EquivBatch(const std::string& kind) {
  return kind == "mlp" ? DenseBatch(7, 9, 4, 41) : SequenceBatch(5, 5, 4, 41);
}

struct TrainTrace {
  std::vector<double> losses;
  std::vector<float> grads;
  std::vector<float> params;
};

TrainTrace RunTrainTrace(const std::string& kind, bool arena,
                         common::simd::Dispatch dispatch, int iters) {
  ScopedDispatch guard(dispatch);
  auto net = EquivModel(kind);
  net->EnableArena(arena);
  const Batch batch = EquivBatch(kind);

  const std::size_t dim = net->ParamCount();
  TrainTrace trace;
  trace.params.resize(dim);
  trace.grads.resize(dim);
  net->CopyParamsTo(trace.params);
  SgdMomentum opt(dim, {.learning_rate = 0.05, .momentum = 0.9});
  for (int i = 0; i < iters; ++i) {
    net->SetParamsFrom(trace.params);
    trace.losses.push_back(net->ForwardBackward(batch).loss);
    net->CopyGradsTo(trace.grads);
    opt.Step(trace.params, trace.grads);
  }
  return trace;
}

void ExpectBitwiseEqual(std::span<const float> a, std::span<const float> b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ba, bb;
    std::memcpy(&ba, &a[i], sizeof(ba));
    std::memcpy(&bb, &b[i], sizeof(bb));
    if (ba != bb) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u) << what << ": " << mismatches << "/" << a.size()
                            << " floats differ bitwise";
}

class ArenaEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ArenaEquivalence, BitwiseIdenticalToNaivePath) {
  const int kIters = 4;
  const TrainTrace fast =
      RunTrainTrace(GetParam(), /*arena=*/true, common::simd::Dispatch::kAuto,
                    kIters);
  const TrainTrace naive =
      RunTrainTrace(GetParam(), /*arena=*/false,
                    common::simd::Dispatch::kScalar, kIters);
  ASSERT_EQ(fast.losses.size(), naive.losses.size());
  for (int i = 0; i < kIters; ++i) {
    EXPECT_EQ(fast.losses[i], naive.losses[i])
        << "loss diverged at iteration " << i;
  }
  ExpectBitwiseEqual(fast.grads, naive.grads, "final gradients");
  ExpectBitwiseEqual(fast.params, naive.params, "final parameters");
}

// The two switches are independent; flipping only one must also be exact.
TEST_P(ArenaEquivalence, ArenaAloneIsExact) {
  const TrainTrace on = RunTrainTrace(GetParam(), /*arena=*/true,
                                      common::simd::Dispatch::kScalar, 3);
  const TrainTrace off = RunTrainTrace(GetParam(), /*arena=*/false,
                                       common::simd::Dispatch::kScalar, 3);
  EXPECT_EQ(on.losses, off.losses);
  ExpectBitwiseEqual(on.params, off.params, "final parameters");
}

TEST_P(ArenaEquivalence, VectorizedKernelsAloneAreExact) {
  const TrainTrace vec = RunTrainTrace(GetParam(), /*arena=*/true,
                                       common::simd::Dispatch::kAuto, 3);
  const TrainTrace sca = RunTrainTrace(GetParam(), /*arena=*/true,
                                       common::simd::Dispatch::kScalar, 3);
  EXPECT_EQ(vec.losses, sca.losses);
  ExpectBitwiseEqual(vec.params, sca.params, "final parameters");
}

INSTANTIATE_TEST_SUITE_P(Models, ArenaEquivalence,
                         ::testing::Values("mlp", "lstm", "deep-lstm",
                                           "transformer", "attention"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rna::nn
