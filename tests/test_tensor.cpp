// Unit tests for rna::tensor — tensor container semantics and the matmul /
// elementwise kernels backpropagation depends on, checked against naive
// reference implementations on random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "rna/common/rng.hpp"
#include "rna/common/simd.hpp"
#include "rna/tensor/ops.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::tensor {
namespace {

Tensor RandomTensor(std::size_t r, std::size_t c, common::Rng& rng) {
  Tensor t({r, c});
  for (auto& x : t.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  return t;
}

// Naive O(mnk) reference matmul.
Tensor RefMatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.Rows(), b.Cols()});
  for (std::size_t i = 0; i < a.Rows(); ++i) {
    for (std::size_t j = 0; j < b.Cols(); ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < a.Cols(); ++k) {
        acc += double(a.At(i, k)) * b.At(k, j);
      }
      c.At(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  Tensor t({a.Cols(), a.Rows()});
  for (std::size_t i = 0; i < a.Rows(); ++i) {
    for (std::size_t j = 0; j < a.Cols(); ++j) t.At(j, i) = a.At(i, j);
  }
  return t;
}

void ExpectNear(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  for (std::size_t i = 0; i < a.Size(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.Size(), 12u);
  for (auto x : t.Flat()) EXPECT_EQ(x, 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.Rank(), 3u);
  EXPECT_EQ(t.Rows(), 2u);
  EXPECT_EQ(t.Cols(), 12u);  // trailing dims collapse
  Tensor v({5});
  EXPECT_EQ(v.Rows(), 1u);
  EXPECT_EQ(v.Cols(), 5u);
}

TEST(Tensor, AtIndexing) {
  Tensor t({2, 3});
  t.At(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_THROW(t.At(2, 0), std::logic_error);
  EXPECT_THROW(t.At(0, 3), std::logic_error);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), std::logic_error);
}

TEST(Tensor, ReshapePreservesCount) {
  Tensor t({2, 6});
  t.Reshape({3, 4});
  EXPECT_EQ(t.Rows(), 3u);
  EXPECT_THROW(t.Reshape({5, 5}), std::logic_error);
}

TEST(Tensor, SumAndNorm) {
  Tensor t({1, 3}, {1.0f, -2.0f, 3.0f});
  EXPECT_DOUBLE_EQ(t.Sum(), 2.0);
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 14.0);
}

TEST(Ops, MatMulMatchesReference) {
  common::Rng rng(1);
  for (auto [m, k, n] : {std::tuple<int, int, int>{1, 1, 1},
                         {3, 4, 5},
                         {7, 2, 9},
                         {16, 16, 16}}) {
    Tensor a = RandomTensor(m, k, rng);
    Tensor b = RandomTensor(k, n, rng);
    Tensor c({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
    MatMul(a, b, c);
    ExpectNear(c, RefMatMul(a, b));
  }
}

TEST(Ops, MatMulAlphaBeta) {
  common::Rng rng(2);
  Tensor a = RandomTensor(3, 4, rng);
  Tensor b = RandomTensor(4, 2, rng);
  Tensor c = RandomTensor(3, 2, rng);
  Tensor expected = c;
  Tensor ab = RefMatMul(a, b);
  for (std::size_t i = 0; i < expected.Size(); ++i) {
    expected[i] = 2.0f * ab[i] + 0.5f * expected[i];
  }
  MatMul(a, b, c, 2.0f, 0.5f);
  ExpectNear(c, expected);
}

TEST(Ops, MatMulNTMatchesTransposedReference) {
  common::Rng rng(3);
  Tensor a = RandomTensor(5, 7, rng);
  Tensor b = RandomTensor(4, 7, rng);  // stored n×k
  Tensor c({5, 4});
  MatMulNT(a, b, c);
  ExpectNear(c, RefMatMul(a, Transpose(b)));
}

TEST(Ops, MatMulTNMatchesTransposedReference) {
  common::Rng rng(4);
  Tensor a = RandomTensor(7, 5, rng);  // stored k×m
  Tensor b = RandomTensor(7, 3, rng);
  Tensor c({5, 3});
  MatMulTN(a, b, c);
  ExpectNear(c, RefMatMul(Transpose(a), b));
}

TEST(Ops, MatMulTNAccumulates) {
  common::Rng rng(5);
  Tensor a = RandomTensor(4, 3, rng);
  Tensor b = RandomTensor(4, 2, rng);
  Tensor c = RandomTensor(3, 2, rng);
  Tensor expected = RefMatMul(Transpose(a), b);
  for (std::size_t i = 0; i < expected.Size(); ++i) expected[i] += c[i];
  MatMulTN(a, b, c, 1.0f, 1.0f);
  ExpectNear(c, expected);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 5}), c({2, 5});
  EXPECT_THROW(MatMul(a, b, c), std::logic_error);
}

TEST(Ops, AxpyScaleDot) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> y = {10, 20, 30};
  Axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[2], 36.0f);
  Scale(y, 0.5f);
  EXPECT_EQ(y[0], 6.0f);
  EXPECT_DOUBLE_EQ(Dot(x, x), 14.0);
}

TEST(Ops, AddAndHadamard) {
  std::vector<float> a = {1, 2}, b = {3, 4}, out(2);
  Add(a, b, out);
  EXPECT_EQ(out[1], 6.0f);
  Hadamard(a, b, out);
  EXPECT_EQ(out[1], 8.0f);
}

TEST(Ops, AddRowBroadcastAndSumRows) {
  Tensor m({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<float> row = {10, 20, 30};
  AddRowBroadcast(m, row);
  EXPECT_EQ(m.At(0, 0), 11.0f);
  EXPECT_EQ(m.At(1, 2), 36.0f);
  std::vector<float> sums(3);
  SumRows(m, sums);
  EXPECT_EQ(sums[0], 11.0f + 14.0f);
  EXPECT_EQ(sums[2], 33.0f + 36.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  common::Rng rng(6);
  Tensor t = RandomTensor(5, 8, rng);
  SoftmaxRows(t);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      sum += t.At(i, j);
      EXPECT_GE(t.At(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxNumericallyStable) {
  Tensor t({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  SoftmaxRows(t);
  EXPECT_FALSE(std::isnan(t[0]));
  EXPECT_GT(t[2], t[1]);
  EXPECT_GT(t[1], t[0]);
  EXPECT_NEAR(t[0] + t[1] + t[2], 1.0f, 1e-5f);
}

// Property sweep: MatMul agrees with the reference over a grid of shapes.
class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, AgreesWithReference) {
  auto [m, k, n] = GetParam();
  common::Rng rng(100 + m * 31 + k * 7 + n);
  Tensor a = RandomTensor(m, k, rng);
  Tensor b = RandomTensor(k, n, rng);
  Tensor c({static_cast<std::size_t>(m), static_cast<std::size_t>(n)});
  MatMul(a, b, c);
  ExpectNear(c, RefMatMul(a, b));
}

INSTANTIATE_TEST_SUITE_P(Grid, MatMulShapes,
                         ::testing::Combine(::testing::Values(1, 2, 5, 17),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(1, 4, 13)));

// ---------------------------------------------------------------------------
// Blocked/vectorized kernel contract: for every transpose variant, dispatch
// kAuto must be BITWISE identical to the scalar reference — not merely close.
// The sweep leans on awkward shapes: 1×1, primes (never a multiple of the
// vector width or block size), k=0 (empty reduction), tall/skinny and
// short/fat extremes, and dims straddling the kBlockK=64 / kBlockN=128
// blocking boundaries.

class ScopedScalarDispatch {
 public:
  ScopedScalarDispatch() : saved_(common::simd::ActiveDispatch()) {
    common::simd::SetDispatch(common::simd::Dispatch::kScalar);
  }
  ~ScopedScalarDispatch() { common::simd::SetDispatch(saved_); }

 private:
  common::simd::Dispatch saved_;
};

void ExpectBitwise(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (std::size_t i = 0; i < a.Size(); ++i) {
    const float fa = a[i];
    const float fb = b[i];
    std::uint32_t ba, bb;
    std::memcpy(&ba, &fa, sizeof(ba));
    std::memcpy(&bb, &fb, sizeof(bb));
    ASSERT_EQ(ba, bb) << "bitwise mismatch at flat index " << i << ": " << fa
                      << " vs " << fb;
  }
}

struct MatMulCase {
  std::size_t m, k, n;
  float alpha, beta;
};

class MatMulBitwise : public ::testing::TestWithParam<MatMulCase> {};

TEST_P(MatMulBitwise, VectorizedMatchesScalarBitwise) {
  const auto [m, k, n, alpha, beta] = GetParam();
  common::Rng rng(7 + m * 131 + k * 17 + n * 3);
  Tensor a = RandomTensor(m, k, rng);
  Tensor b = RandomTensor(k, n, rng);
  Tensor at = Transpose(a);  // k×m operand for the TN variant
  Tensor bt = Transpose(b);  // n×k operand for the NT variant
  // Non-trivial beta needs non-trivial initial C, shared by both paths.
  Tensor c_init = RandomTensor(m, n, rng);

  struct Variant {
    const char* name;
    void (*run)(const Tensor&, const Tensor&, Tensor&, float, float);
    const Tensor* lhs;
    const Tensor* rhs;
  };
  const Variant variants[] = {
      {"NN", [](const Tensor& x, const Tensor& y, Tensor& c, float al,
                float be) { MatMul(x, y, c, al, be); },
       &a, &b},
      {"NT", [](const Tensor& x, const Tensor& y, Tensor& c, float al,
                float be) { MatMulNT(x, y, c, al, be); },
       &a, &bt},
      {"TN", [](const Tensor& x, const Tensor& y, Tensor& c, float al,
                float be) { MatMulTN(x, y, c, al, be); },
       &at, &b},
  };
  for (const auto& v : variants) {
    SCOPED_TRACE(v.name);
    Tensor c_auto = c_init;
    Tensor c_scalar = c_init;
    v.run(*v.lhs, *v.rhs, c_auto, alpha, beta);
    {
      ScopedScalarDispatch scalar;
      v.run(*v.lhs, *v.rhs, c_scalar, alpha, beta);
    }
    ExpectBitwise(c_auto, c_scalar);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardShapes, MatMulBitwise,
    ::testing::Values(
        MatMulCase{1, 1, 1, 1.0f, 0.0f},       // degenerate
        MatMulCase{1, 1, 1, -2.5f, 0.75f},     // degenerate + alpha/beta
        MatMulCase{3, 0, 5, 1.0f, 0.0f},       // k=0: pure beta pass
        MatMulCase{3, 0, 5, 1.0f, 0.5f},       // k=0 with beta scaling
        MatMulCase{7, 11, 13, 1.0f, 0.0f},     // all primes
        MatMulCase{7, 11, 13, 0.5f, 1.0f},     // primes, accumulate mode
        MatMulCase{2, 63, 129, 1.0f, 0.0f},    // straddles both block edges
        MatMulCase{2, 64, 128, 1.0f, 0.0f},    // exactly on block edges
        MatMulCase{2, 65, 127, 1.0f, 0.0f},    // just past / just short
        MatMulCase{97, 3, 2, 1.0f, 0.0f},      // tall and skinny
        MatMulCase{2, 3, 97, 1.0f, 0.0f},      // short and fat
        MatMulCase{5, 8, 8, 1.0f, -1.0f},      // vector-width aligned, β<0
        MatMulCase{16, 67, 31, 2.0f, 0.25f},   // k past one block, odd n
        MatMulCase{1, 200, 1, 1.0f, 0.0f}));   // dot-product shaped

// Zeros must take the same skip path in both dispatches (the wide NN/TN
// kernels skip av==0 rows; the scalar references must skip identically).
TEST(MatMulBitwiseZeros, SparseInputsMatchBitwise) {
  common::Rng rng(99);
  Tensor a = RandomTensor(9, 33, rng);
  for (std::size_t i = 0; i < a.Size(); i += 3) a.Flat()[i] = 0.0f;
  Tensor b = RandomTensor(33, 21, rng);
  Tensor c_auto({9, 21});
  Tensor c_scalar({9, 21});
  MatMul(a, b, c_auto);
  {
    ScopedScalarDispatch scalar;
    MatMul(a, b, c_scalar);
  }
  ExpectBitwise(c_auto, c_scalar);
}

}  // namespace
}  // namespace rna::tensor
