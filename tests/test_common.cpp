// Unit tests for rna::common — RNG determinism and distribution sanity,
// online statistics (including cross-thread merge), percentile summaries,
// histograms, the log sink under concurrency, blocking queue.

#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/log.hpp"
#include "rna/common/queue.hpp"
#include "rna/common/rng.hpp"
#include "rna/common/stats.hpp"

namespace rna::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(3.0, 9.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Uniform());
  EXPECT_NEAR(s.Mean(), 0.5, 0.01);
  EXPECT_NEAR(s.Stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(s.Mean(), 2.0, 0.05);
  EXPECT_NEAR(s.Stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Exponential(4.0));
  EXPECT_NEAR(s.Mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  rng.Shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 5);
    ASSERT_EQ(sample.size(), 5u);
    std::set<std::size_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), 5u);
    for (auto idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementCappedAtN) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  // Every index should be picked roughly equally often as the first probe.
  Rng rng(43);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.SampleWithoutReplacement(10, 1)[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.Count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 6.2);
  EXPECT_NEAR(s.Variance(), 29.76, 1e-9);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 16.0);
  EXPECT_NEAR(s.Sum(), 31.0, 1e-9);
}

TEST(OnlineStats, MergeEqualsCombined) {
  OnlineStats a, b, all;
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(0, 1);
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 15.0);  // interpolated
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(Percentile, RejectsOutOfRange) {
  EXPECT_THROW(Percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(Percentile({1.0}, 101), std::invalid_argument);
}

TEST(Summarize, OrderedFields) {
  Rng rng(53);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.Uniform());
  const auto s = Summarize(xs);
  EXPECT_EQ(s.count, 10000u);
  EXPECT_LE(s.min, s.p5);
  EXPECT_LE(s.p5, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_NEAR(s.median, 0.5, 0.02);
  EXPECT_NEAR(s.p5, 0.05, 0.02);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-100.0);  // clamps into bin 0
  h.Add(0.5);
  h.Add(9.9);
  h.Add(100.0);  // clamps into last bin
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(4), 2u);
  EXPECT_DOUBLE_EQ(h.BinLo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHi(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueue, CloseWakesConsumersAndDrains) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));           // rejected after close
  EXPECT_EQ(q.Pop().value(), 7);     // pending item still delivered
  EXPECT_FALSE(q.Pop().has_value()); // drained + closed
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const Stopwatch watch;
  EXPECT_FALSE(q.PopFor(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(watch.Elapsed(), 0.015);
}

TEST(BlockingQueue, PopForWakesWhenClosedAndDrainedDuringWait) {
  BlockingQueue<int> q;
  const Stopwatch watch;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  // The consumer is parked inside the wait when Close() lands on an empty
  // queue; it must return std::nullopt immediately, not ride out the
  // 10-second timeout.
  EXPECT_FALSE(q.PopFor(std::chrono::seconds(10)).has_value());
  EXPECT_LT(watch.Elapsed(), 5.0);
  closer.join();
}

TEST(BlockingQueue, PopForDeliversItemThatArrivesDuringWait) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(42);
  });
  EXPECT_EQ(q.PopFor(std::chrono::seconds(10)).value(), 42);
  producer.join();
}

TEST(BlockingQueue, EmptyAndSizeTrackContents) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.Size(), 2u);
  q.TryPop();
  q.TryPop();
  EXPECT_TRUE(q.Empty());
}

TEST(BlockingQueue, CrossThreadHandoff) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.Push(i);
    q.Close();
  });
  int count = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, count++);
  }
  EXPECT_EQ(count, 100);
  producer.join();
}

TEST(BlockingQueue, BoundedTryPushRefusesWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full, not closed
  q.TryPop();
  EXPECT_TRUE(q.TryPush(3));  // space again
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed
}

TEST(BlockingQueue, BoundedPushBlocksUntilPopped) {
  BlockingQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    second_accepted.store(q.Push(2));  // blocks while item 1 sits unpopped
  });
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingQueue, CloseWakesBlockedBoundedProducer) {
  BlockingQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result.store(q.Push(2));  // blocks on the full queue
  });
  q.Close();  // must wake the producer, which gives up
  producer.join();
  EXPECT_FALSE(push_result.load());
  EXPECT_EQ(q.Pop(), 1);  // pending item still drains after close
  EXPECT_EQ(q.Pop(), std::nullopt);
}

// The paper's benches accumulate per-thread OnlineStats and Merge them on
// the main thread — the supported concurrent-use pattern. Verify the merge
// of concurrently filled accumulators matches a single-threaded pass.
TEST(OnlineStats, PerThreadAccumulateThenMergeMatchesSerial) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<OnlineStats> partial(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int i = 0; i < kPerThread; ++i) partial[t].Add(rng.Normal(3.0, 2.0));
    });
  }
  for (auto& th : threads) th.join();

  OnlineStats merged;
  for (const auto& p : partial) merged.Merge(p);

  OnlineStats serial;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(900 + t);
    for (int i = 0; i < kPerThread; ++i) serial.Add(rng.Normal(3.0, 2.0));
  }
  EXPECT_EQ(merged.Count(), serial.Count());
  EXPECT_NEAR(merged.Mean(), serial.Mean(), 1e-9);
  EXPECT_NEAR(merged.Variance(), serial.Variance(), 1e-7);
  EXPECT_EQ(merged.Min(), serial.Min());
  EXPECT_EQ(merged.Max(), serial.Max());
}

// The log sink serializes whole lines onto stderr under its mutex:
// concurrent writers may interleave lines but never characters.
TEST(Log, ConcurrentWritersNeverInterleaveWithinALine) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;

  std::ostringstream captured;
  const LogLevel old_level = GetLogLevel();
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  SetLogLevel(LogLevel::kInfo);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        Info() << "t" << t << "-m" << i << "-x";
        Debug() << "suppressed " << i;  // below threshold: discarded
      }
    });
  }
  for (auto& th : writers) th.join();

  SetLogLevel(old_level);
  std::cerr.rdbuf(old_buf);

  std::istringstream lines(captured.str());
  std::string line;
  int info_lines = 0;
  const std::regex pattern(R"(\[INFO\] t\d+-m\d+-x)");
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, pattern)) << "mangled line: " << line;
    ++info_lines;
  }
  EXPECT_EQ(info_lines, kThreads * kPerThread);
}

TEST(Log, LevelChangesAreVisibleAcrossThreads) {
  const LogLevel old_level = GetLogLevel();
  std::thread setter([] { SetLogLevel(LogLevel::kError); });
  setter.join();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old_level);
}

TEST(Clock, StopwatchMeasuresSleep) {
  const Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const Seconds t = watch.Elapsed();
  EXPECT_GE(t, 0.025);
  EXPECT_LT(t, 0.5);
}

TEST(Clock, SecondsRoundTrip) {
  EXPECT_NEAR(ToSeconds(FromSeconds(1.5)), 1.5, 1e-9);
}

}  // namespace
}  // namespace rna::common
