// Verification layer for the arena-allocated compute plane.
//
// Three suites:
//   ArenaInvariants — bump-allocator properties: alignment, O(1) reset and
//     storage reuse, high-water tracking, grow-on-demand stats, ReserveExact
//     consolidation and exact-mode OOM rejection, scope nesting.
//   TensorArena — Tensor storage routing and move/copy semantics against
//     arena-backed storage (fresh-copy rule, stale-destination reuse,
//     double-release safety) — run under ASan via the asan-ubsan preset.
//   SteadyState — the PR's headline gate: after warm-up, a full training
//     iteration (SetParamsFrom → ForwardBackward → CopyGradsTo → optimizer
//     step) performs ZERO heap allocations for every model family. This
//     binary replaces global operator new/delete with counting versions
//     (stronger than the pool-stats counters test_dataplane.cpp uses: it
//     sees every allocation in the process, not just pooled ones).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "rna/common/rng.hpp"
#include "rna/nn/network.hpp"
#include "rna/nn/optimizer.hpp"
#include "rna/tensor/arena.hpp"
#include "rna/tensor/tensor.hpp"

// ---------------------------------------------------------------------------
// Counting global allocator. Every operator new form (array / aligned /
// sized) funnels through one atomic counter; malloc keeps ASan interposition
// working when this binary is built under the sanitizer presets.

namespace {

std::atomic<std::size_t> g_heap_allocs{0};

std::size_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded ? padded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rna {
namespace {

using nn::Batch;
using nn::Network;
using tensor::Arena;
using tensor::Lifetime;
using tensor::Tensor;

// ------------------------------------------------------------- invariants

TEST(ArenaInvariants, AlignmentAndStats) {
  Arena arena;
  float* a = arena.Allocate(3);
  float* b = arena.Allocate(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % Arena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % Arena::kAlignment, 0u);
  EXPECT_NE(a, b);
  const auto& stats = arena.Stats();
  EXPECT_EQ(stats.short_allocs, 2u);
  EXPECT_EQ(stats.short_in_use, 2 * Arena::kAlignment);
  EXPECT_EQ(stats.short_high_water, 2 * Arena::kAlignment);
  EXPECT_EQ(stats.chunk_allocs, 1u);  // both fit in the first chunk
  EXPECT_EQ(arena.Allocate(0), nullptr);
  EXPECT_EQ(arena.Stats().short_allocs, 2u);  // zero-size is not an alloc
}

TEST(ArenaInvariants, ResetReusesStorage) {
  Arena arena;
  float* first = arena.Allocate(128);
  arena.ResetScratch();
  EXPECT_EQ(arena.Stats().short_in_use, 0u);
  EXPECT_EQ(arena.Stats().resets, 1u);
  // The bump pointer rewinds: an identical allocation pattern lands on the
  // identical address, with no new chunk.
  float* again = arena.Allocate(128);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.Stats().chunk_allocs, 1u);
}

TEST(ArenaInvariants, GrowsOnDemandAndTracksHighWater) {
  Arena arena;
  const std::size_t chunk_elems = Arena::kMinChunkBytes / sizeof(float);
  arena.Allocate(chunk_elems);  // fills chunk 0 exactly
  arena.Allocate(chunk_elems);  // must grow
  EXPECT_EQ(arena.Stats().chunk_allocs, 2u);
  EXPECT_EQ(arena.Stats().short_high_water, 2 * Arena::kMinChunkBytes);
  arena.ResetScratch();
  EXPECT_EQ(arena.Stats().short_high_water, 2 * Arena::kMinChunkBytes)
      << "high water survives resets";
  // Steady state: the same pattern refills the existing chunks.
  arena.Allocate(chunk_elems);
  arena.Allocate(chunk_elems);
  EXPECT_EQ(arena.Stats().chunk_allocs, 2u);
}

TEST(ArenaInvariants, LongLifetimeSurvivesReset) {
  Arena arena;
  float* longterm = arena.Allocate(16, Lifetime::kLong);
  longterm[0] = 42.0f;
  arena.Allocate(16, Lifetime::kShort);
  arena.ResetScratch();
  EXPECT_EQ(longterm[0], 42.0f);
  EXPECT_EQ(arena.Stats().long_in_use, Arena::kAlignment);
  // Long allocations are never rewound, so a new one extends the region.
  float* next = arena.Allocate(16, Lifetime::kLong);
  EXPECT_NE(next, longterm);
}

TEST(ArenaInvariants, ReserveExactConsolidatesAndRejectsOverflow) {
  Arena arena;
  // Capacity planning: one grow-mode pass, reset, pin at the high water.
  const std::size_t chunk_elems = Arena::kMinChunkBytes / sizeof(float);
  arena.Allocate(chunk_elems);
  arena.Allocate(chunk_elems);  // forces a second chunk
  arena.ResetScratch();
  arena.ReserveExact();
  EXPECT_TRUE(arena.ExactMode());
  EXPECT_EQ(arena.Stats().reserved_bytes, 2 * Arena::kMinChunkBytes)
      << "short region consolidated to exactly the high water";
  // The planned workload fits in the single consolidated chunk...
  const auto chunks = arena.Stats().chunk_allocs;
  arena.Allocate(chunk_elems);
  arena.Allocate(chunk_elems);
  EXPECT_EQ(arena.Stats().chunk_allocs, chunks);
  // ...and anything beyond the plan is rejected, not silently grown.
  EXPECT_THROW(arena.Allocate(1), std::bad_alloc);
  arena.ResetScratch();
  EXPECT_NO_THROW(arena.Allocate(chunk_elems));
}

TEST(ArenaInvariants, ReserveExactZeroRejectsEverything) {
  Arena arena;
  arena.ReserveExact(0);
  EXPECT_THROW(arena.Allocate(1), std::bad_alloc);
}

TEST(ArenaInvariants, ScopesNestAndRestore) {
  EXPECT_EQ(Arena::Current(), nullptr);
  Arena outer_arena;
  Arena inner_arena;
  {
    Arena::Scope outer(outer_arena);
    EXPECT_EQ(Arena::Current(), &outer_arena);
    {
      Arena::Scope inner(inner_arena);
      EXPECT_EQ(Arena::Current(), &inner_arena);
    }
    EXPECT_EQ(Arena::Current(), &outer_arena);
  }
  EXPECT_EQ(Arena::Current(), nullptr);
}

TEST(ArenaInvariants, StepScopeResetsOnExit) {
  Arena arena;
  {
    Arena::StepScope step(arena);
    arena.Allocate(64);
    EXPECT_GT(arena.Stats().short_in_use, 0u);
  }
  EXPECT_EQ(arena.Stats().short_in_use, 0u);
  EXPECT_EQ(arena.Stats().resets, 1u);
}

// --------------------------------------------------- tensor/arena semantics

TEST(TensorArena, StorageRouting) {
  Tensor heap_backed({2, 3});
  EXPECT_FALSE(heap_backed.ArenaBacked());
  Arena arena;
  {
    Arena::Scope scope(arena);
    Tensor arena_backed({2, 3});
    EXPECT_TRUE(arena_backed.ArenaBacked());
    EXPECT_EQ(arena_backed.Size(), 6u);
    for (float x : arena_backed.Flat()) EXPECT_EQ(x, 0.0f);
  }
}

TEST(TensorArena, CopyUnderArenaTakesFreshStorage) {
  Arena arena;
  Arena::Scope scope(arena);
  Tensor a({4});
  a.Fill(3.0f);
  Tensor b = a;  // copy-construct
  EXPECT_NE(a.Data(), b.Data());
  Tensor c({4});
  const float* c_before = c.Data();
  c = a;  // copy-assign: also fresh storage, never in-place, under an arena
  EXPECT_NE(c.Data(), c_before);
  EXPECT_NE(c.Data(), a.Data());
  EXPECT_EQ(c[3], 3.0f);
}

TEST(TensorArena, HeapCopyAssignReusesMatchingStorage) {
  Tensor a({8});
  a.Fill(1.0f);
  Tensor b({8});
  const float* b_storage = b.Data();
  b = a;
  EXPECT_EQ(b.Data(), b_storage) << "same-size heap copy reuses in place";
  Tensor c({4});
  c = a;  // size change reallocates
  EXPECT_EQ(c.Size(), 8u);
  EXPECT_EQ(c[7], 1.0f);
}

// A destination holding storage from before a ResetScratch must NOT write
// through its stale pointer on reassignment — the bump region may already
// back another live tensor. This is the dangling-storage case; ASan-clean
// by construction because arena chunks stay owned, so the test instead pins
// the no-aliasing rule directly.
TEST(TensorArena, StaleDestinationNeverAliasesLiveTensor) {
  Arena arena;
  Tensor stale;
  {
    Arena::StepScope step(arena);
    stale = Tensor({16});
    stale.Fill(7.0f);
  }  // reset: stale's storage returns to the bump pool
  Arena::StepScope step(arena);
  Tensor live({16});  // reuses the same bump storage
  live.Fill(1.0f);
  Tensor source({16});
  source.Fill(2.0f);
  stale = source;  // must take fresh storage, not scribble over `live`
  EXPECT_NE(stale.Data(), live.Data());
  for (float x : live.Flat()) EXPECT_EQ(x, 1.0f);
  for (float x : stale.Flat()) EXPECT_EQ(x, 2.0f);
}

TEST(TensorArena, MoveStealsAndEmptiesSource) {
  Arena arena;
  Arena::Scope scope(arena);
  Tensor a({3, 3});
  a.Fill(5.0f);
  const float* storage = a.Data();
  Tensor b = std::move(a);
  EXPECT_EQ(b.Data(), storage);
  EXPECT_TRUE(a.Empty());  // NOLINT(bugprone-use-after-move): contract test
  EXPECT_EQ(a.Data(), nullptr);
  Tensor c;
  c = std::move(b);
  EXPECT_EQ(c.Data(), storage);
  EXPECT_TRUE(b.Empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c[8], 5.0f);
}

// Double-release: destroying (or reassigning) two tensors that at some
// point shared a moved-from relationship must not free storage twice. The
// heap case is what ASan would catch; the arena case additionally checks
// destruction after the arena itself died.
TEST(TensorArena, NoDoubleReleaseAfterMove) {
  {
    Tensor a({32});
    Tensor b = std::move(a);
    a = Tensor({8});  // moved-from tensor is reusable
    EXPECT_EQ(a.Size(), 8u);
  }  // both destruct: exactly one owner per storage block
  auto arena = std::make_unique<Arena>();
  Tensor survivor;
  {
    Arena::Scope scope(*arena);
    Tensor tmp({64});
    survivor = std::move(tmp);
  }
  arena.reset();  // arena dies before the tensor
  EXPECT_EQ(survivor.Size(), 64u);
  // survivor's dtor runs after the arena is gone — must not touch the
  // (freed) chunk. Destruction happens at scope exit; reaching the end of
  // the test without ASan complaining is the assertion.
  SUCCEED();
}

TEST(TensorArena, ExplicitLongLifetimeTensor) {
  Arena arena;
  Tensor longterm;
  {
    Arena::StepScope step(arena);
    longterm = Tensor({10}, Lifetime::kLong);
    longterm.Fill(9.0f);
  }
  // The storage is long-lived, so it survives the step reset intact.
  for (float x : longterm.Flat()) EXPECT_EQ(x, 9.0f);
  EXPECT_GT(arena.Stats().long_in_use, 0u);
}

// ----------------------------------------------------------- steady state

Batch DenseBatch(std::size_t n, std::size_t dim, std::size_t classes,
                 std::uint64_t seed) {
  common::Rng rng(seed);
  Batch b;
  b.inputs = Tensor({n, dim});
  for (auto& x : b.inputs.Flat()) x = static_cast<float>(rng.Normal(0, 1));
  for (std::size_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(classes)));
  }
  return b;
}

Batch SequenceBatch(std::size_t n, std::size_t dim, std::size_t classes,
                    std::uint64_t seed) {
  common::Rng rng(seed);
  Batch b;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t len = 3 + rng.UniformInt(5);
    Tensor seq({len, dim});
    for (auto& x : seq.Flat()) x = static_cast<float>(rng.Normal(0, 1));
    b.sequences.push_back(std::move(seq));
    b.labels.push_back(static_cast<std::int32_t>(rng.UniformInt(classes)));
  }
  return b;
}

std::unique_ptr<Network> MakeModel(const std::string& kind) {
  if (kind == "mlp") {
    return std::make_unique<nn::MlpClassifier>(
        std::vector<std::size_t>{16, 32, 4}, 7);
  }
  if (kind == "lstm") return std::make_unique<nn::LstmClassifier>(8, 16, 4, 7);
  if (kind == "deep-lstm") {
    return std::make_unique<nn::DeepLstmClassifier>(8, 12, 2, 4, 7);
  }
  if (kind == "transformer") {
    return std::make_unique<nn::TransformerClassifier>(8, 16, 2, 4, 7);
  }
  return std::make_unique<nn::AttentionClassifier>(8, 12, 4, 7);
}

Batch MakeBatchFor(const std::string& kind) {
  return kind == "mlp" ? DenseBatch(8, 16, 4, 21) : SequenceBatch(6, 8, 4, 21);
}

class SteadyState : public ::testing::TestWithParam<const char*> {};

// The headline gate: after warm-up reaches the arena high-water mark, full
// training iterations allocate nothing from the heap and grow no chunks.
TEST_P(SteadyState, TrainingIterationIsAllocationFree) {
  auto net = MakeModel(GetParam());
  const Batch batch = MakeBatchFor(GetParam());
  ASSERT_TRUE(net->ArenaEnabled());

  const std::size_t dim = net->ParamCount();
  std::vector<float> params(dim), grad(dim);
  net->CopyParamsTo(params);
  nn::SgdMomentum opt(dim, {});

  auto iteration = [&] {
    net->SetParamsFrom(params);
    net->ForwardBackward(batch);
    net->CopyGradsTo(grad);
    opt.Step(params, grad);
  };
  // Warm-up: first iteration grows arena chunks and builds the memoized
  // param/grad lists; the second proves the pattern is stable.
  iteration();
  iteration();

  const std::size_t chunks_before = net->ComputeArena().Stats().chunk_allocs;
  const std::size_t resets_before = net->ComputeArena().Stats().resets;
  const std::size_t heap_before = HeapAllocs();
  for (int i = 0; i < 5; ++i) iteration();
  const std::size_t heap_delta = HeapAllocs() - heap_before;
  const auto& stats = net->ComputeArena().Stats();

  EXPECT_EQ(heap_delta, 0u) << "steady-state iteration hit the heap";
  EXPECT_EQ(stats.chunk_allocs, chunks_before) << "arena grew past warm-up";
  EXPECT_EQ(stats.resets, resets_before + 5) << "one scratch reset per step";
  EXPECT_GT(stats.short_high_water, 0u);
}

// Evaluation (forward-only) is likewise allocation-free.
TEST_P(SteadyState, EvaluateIsAllocationFree) {
  auto net = MakeModel(GetParam());
  const Batch batch = MakeBatchFor(GetParam());
  net->Evaluate(batch);
  net->Evaluate(batch);
  const std::size_t heap_before = HeapAllocs();
  for (int i = 0; i < 3; ++i) net->Evaluate(batch);
  EXPECT_EQ(HeapAllocs() - heap_before, 0u);
}

// ReserveExact capacity planning holds for a real model: pin the arena at
// the warm-up high water; further steps run inside the plan, and the OOM
// rejection fires only for out-of-plan shapes.
TEST_P(SteadyState, ReserveExactPlansModelCapacity) {
  auto net = MakeModel(GetParam());
  const Batch batch = MakeBatchFor(GetParam());
  net->ForwardBackward(batch);  // reach the high water in grow mode
  net->ComputeArena().ReserveExact();
  EXPECT_NO_THROW(net->ForwardBackward(batch));
  EXPECT_NO_THROW(net->Evaluate(batch));
  if (GetParam() != std::string("mlp")) {
    // A much larger batch exceeds the planned capacity: the arena must
    // reject it rather than silently grow.
    const Batch oversized = SequenceBatch(64, 8, 4, 22);
    EXPECT_THROW(net->ForwardBackward(oversized), std::bad_alloc);
    // The step scope still reset scratch during unwind; planned-size work
    // keeps running afterwards.
    EXPECT_NO_THROW(net->ForwardBackward(batch));
  }
}

// Arena-off is the naive path: per-op temporaries come from the heap again.
// This pins EnableArena(false) as a real fallback (the equivalence suite in
// test_nn.cpp relies on it being genuinely pre-arena behaviour).
TEST_P(SteadyState, DisabledArenaFallsBackToHeap) {
  auto net = MakeModel(GetParam());
  net->EnableArena(false);
  const Batch batch = MakeBatchFor(GetParam());
  net->ForwardBackward(batch);
  net->ForwardBackward(batch);
  const std::size_t heap_before = HeapAllocs();
  net->ForwardBackward(batch);
  EXPECT_GT(HeapAllocs() - heap_before, 0u);
  EXPECT_EQ(net->ComputeArena().Stats().short_allocs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, SteadyState,
                         ::testing::Values("mlp", "lstm", "deep-lstm",
                                           "transformer", "attention"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rna
