// Tests for the cross-iteration gradient stage (WriteOp/ReadOp analogue)
// and the versioned parameter board.

#include <gtest/gtest.h>

#include <thread>

#include "rna/train/stage.hpp"

namespace rna::train {
namespace {

std::vector<float> Vec(std::initializer_list<float> values) { return values; }

TEST(GradientStage, EmptyDrainsNothing) {
  GradientStage stage(3, 4, LocalCombine::kWeightedAverage);
  EXPECT_FALSE(stage.HasGradient());
  EXPECT_FALSE(stage.Drain().has_value());
}

TEST(GradientStage, SingleGradientPassesThrough) {
  GradientStage stage(3, 4, LocalCombine::kWeightedAverage);
  stage.Write(Vec({1.0f, 2.0f, 3.0f}), 7);
  auto drained = stage.Drain();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->count, 1u);
  EXPECT_EQ(drained->newest, 7);
  EXPECT_EQ(drained->oldest, 7);
  EXPECT_EQ(drained->grad, Vec({1.0f, 2.0f, 3.0f}));
  EXPECT_FALSE(stage.HasGradient());  // drain empties the buffer
}

TEST(GradientStage, WeightedAverageOfTwo) {
  // §3.3: weights are (t − oldest + 1) → iterations 5 and 6 get 1 and 2.
  GradientStage stage(2, 4, LocalCombine::kWeightedAverage);
  stage.Write(Vec({3.0f, 0.0f}), 5);
  stage.Write(Vec({9.0f, 3.0f}), 6);
  auto drained = stage.Drain();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->count, 2u);
  // (1·3 + 2·9)/3 = 7; (1·0 + 2·3)/3 = 2.
  EXPECT_FLOAT_EQ(drained->grad[0], 7.0f);
  EXPECT_FLOAT_EQ(drained->grad[1], 2.0f);
}

TEST(GradientStage, WeightedAverageSkewsToRecency) {
  GradientStage stage(1, 8, LocalCombine::kWeightedAverage);
  stage.Write(Vec({0.0f}), 1);
  stage.Write(Vec({0.0f}), 2);
  stage.Write(Vec({10.0f}), 3);
  auto drained = stage.Drain();
  // (1·0 + 2·0 + 3·10)/6 = 5 — above the plain mean of 10/3.
  EXPECT_FLOAT_EQ(drained->grad[0], 5.0f);
}

TEST(GradientStage, MeanCombineIsUniform) {
  GradientStage stage(1, 8, LocalCombine::kMean);
  stage.Write(Vec({0.0f}), 1);
  stage.Write(Vec({10.0f}), 5);
  auto drained = stage.Drain();
  EXPECT_FLOAT_EQ(drained->grad[0], 5.0f);
}

TEST(GradientStage, LatestCombineKeepsNewest) {
  GradientStage stage(1, 8, LocalCombine::kLatest);
  stage.Write(Vec({1.0f}), 1);
  stage.Write(Vec({2.0f}), 2);
  stage.Write(Vec({3.0f}), 3);
  auto drained = stage.Drain();
  EXPECT_FLOAT_EQ(drained->grad[0], 3.0f);
  // count reports *removed* entries (readiness accounting); the two
  // discarded older gradients register as dropped.
  EXPECT_EQ(drained->count, 3u);
  EXPECT_EQ(stage.Dropped(), 2u);
}

TEST(GradientStage, BoundedStalenessOverwritesOldest) {
  GradientStage stage(1, 2, LocalCombine::kMean);
  stage.Write(Vec({1.0f}), 1);
  stage.Write(Vec({2.0f}), 2);
  stage.Write(Vec({3.0f}), 3);  // evicts iteration 1
  EXPECT_EQ(stage.Dropped(), 1u);
  auto drained = stage.Drain();
  EXPECT_EQ(drained->count, 2u);
  EXPECT_EQ(drained->oldest, 2);
  EXPECT_EQ(drained->newest, 3);
  EXPECT_FLOAT_EQ(drained->grad[0], 2.5f);
}

TEST(GradientStage, BufferedCountTracksWrites) {
  GradientStage stage(1, 3, LocalCombine::kMean);
  EXPECT_EQ(stage.BufferedCount(), 0u);
  stage.Write(Vec({1.0f}), 1);
  stage.Write(Vec({1.0f}), 2);
  EXPECT_EQ(stage.BufferedCount(), 2u);
  stage.Drain();
  EXPECT_EQ(stage.BufferedCount(), 0u);
}

TEST(GradientStage, DimensionMismatchThrows) {
  GradientStage stage(3, 2, LocalCombine::kMean);
  EXPECT_THROW(stage.Write(Vec({1.0f}), 0), std::logic_error);
}

TEST(GradientStage, ConcurrentWriteDrainIsSafe) {
  GradientStage stage(4, 4, LocalCombine::kWeightedAverage);
  std::atomic<bool> done{false};
  std::size_t drained_total = 0;
  std::thread drainer([&] {
    while (!done.load()) {
      if (auto d = stage.Drain()) drained_total += d->count;
    }
    while (auto d = stage.Drain()) drained_total += d->count;
  });
  const std::vector<float> g(4, 1.0f);
  for (int i = 0; i < 10000; ++i) stage.Write(g, i);
  done.store(true);
  drainer.join();
  EXPECT_EQ(drained_total + stage.Dropped(), 10000u);
}

TEST(GradientStage, FuzzAgainstReferenceModel) {
  // Random single-threaded op sequence checked against a simple reference
  // deque with the same bounded-staleness semantics.
  common::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t bound = 1 + rng.UniformInt(5);
    GradientStage stage(1, bound, LocalCombine::kMean);
    std::deque<std::pair<float, std::int64_t>> reference;
    std::size_t ref_dropped = 0;
    std::int64_t iteration = 0;
    for (int op = 0; op < 200; ++op) {
      if (rng.Bernoulli(0.7)) {
        const auto value = static_cast<float>(rng.Normal(0, 1));
        stage.Write(std::vector<float>{value}, iteration);
        if (reference.size() == bound) {
          reference.pop_front();
          ++ref_dropped;
        }
        reference.emplace_back(value, iteration);
        ++iteration;
      } else {
        auto drained = stage.Drain();
        if (reference.empty()) {
          ASSERT_FALSE(drained.has_value());
        } else {
          ASSERT_TRUE(drained.has_value());
          ASSERT_EQ(drained->count, reference.size());
          EXPECT_EQ(drained->oldest, reference.front().second);
          EXPECT_EQ(drained->newest, reference.back().second);
          double mean = 0;
          for (const auto& [v, it] : reference) mean += v;
          mean /= static_cast<double>(reference.size());
          EXPECT_NEAR(drained->grad[0], mean, 1e-5);
          reference.clear();
        }
      }
      ASSERT_EQ(stage.BufferedCount(), reference.size());
      ASSERT_EQ(stage.Dropped(), ref_dropped);
    }
  }
}

TEST(ParamBoard, PublishAndRead) {
  ParamBoard board(Vec({1.0f, 2.0f}));
  std::vector<float> out;
  EXPECT_EQ(board.ReadIfNewer(-1, &out), 0);
  EXPECT_EQ(out, Vec({1.0f, 2.0f}));

  board.Publish(Vec({3.0f, 4.0f}), 5);
  EXPECT_EQ(board.ReadIfNewer(0, &out), 5);
  EXPECT_EQ(out, Vec({3.0f, 4.0f}));
}

TEST(ParamBoard, ReadIfNewerSkipsStale) {
  ParamBoard board(Vec({1.0f}));
  board.Publish(Vec({2.0f}), 3);
  std::vector<float> out = Vec({99.0f});
  EXPECT_EQ(board.ReadIfNewer(3, &out), 3);
  EXPECT_EQ(out[0], 99.0f);  // untouched: nothing newer than version 3
}

TEST(ParamBoard, StalePublishIgnored) {
  ParamBoard board(Vec({1.0f}));
  board.Publish(Vec({5.0f}), 10);
  board.Publish(Vec({2.0f}), 4);  // older version, must not regress
  std::int64_t version = 0;
  EXPECT_EQ(board.Snapshot(&version), Vec({5.0f}));
  EXPECT_EQ(version, 10);
}

TEST(ParamBoard, DimensionMismatchThrows) {
  ParamBoard board(Vec({1.0f, 2.0f}));
  EXPECT_THROW(board.Publish(Vec({1.0f}), 1), std::logic_error);
}

}  // namespace
}  // namespace rna::train
