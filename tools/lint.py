#!/usr/bin/env python3
"""Concurrency-correctness lint for the RNA tree.

Registered as the `lint` ctest test (with `lint_selftest` as its regression
test). Enforces the repo's threading discipline, which Clang's
-Wthread-safety cannot check by itself:

  raw-random        rand()/srand() and std:: engines are banned everywhere
                    except rna/common/rng.hpp: experiments must be seedable
                    and reproducible across standard libraries.
  thread-detach     detached threads outlive the state they capture; every
                    thread in the project is joined.
  volatile-sync     volatile is not a synchronization primitive; use
                    std::atomic or a Mutex.
  raw-sleep         sleeping in library code hides latent races and makes
                    shutdown unresponsive; wait on a CondVar. The single
                    sanctioned sleep is common::SleepFor (clock.hpp), used
                    to model real time (straggler injection). Tests and
                    benches may sleep.
  raw-mutex         std::mutex and friends are invisible to Clang's
                    capability analysis; library code must use
                    rna::common::Mutex / MutexLock / CondVar (mutex.hpp).
  unguarded-mutex   every Mutex member must have at least one member
                    annotated RNA_GUARDED_BY / RNA_PT_GUARDED_BY on it, so
                    the capability analysis actually covers the class.
  raw-stopwatch     protocol runners must time themselves through rna::obs
                    (ScopedTimer feeds both WorkerTimeBreakdown and the
                    trace, so figures and breakdowns cannot diverge);
                    ad-hoc common::Stopwatch in runner code reintroduces a
                    second, unexported timing source. Applies to src/core,
                    src/train, src/baselines, src/ps; the obs module,
                    clock.hpp, tests and benches are exempt.

Two former regex rules are RETIRED: the whole-program analyzer
(tools/analyze) subsumes them with call-graph checks that see through
wrapper functions, something a per-line regex never could:

  untimed-recv      -> tools/analyze check `timed-recv`
  nn-raw-alloc      -> tools/analyze check `no-heap-reachable`

The lint still knows their names: a stale `lint:allow(<retired rule>)`
comment is itself a finding that names the owning checker (migrate the
comment to `analyze:allow(...)` at the real site, or delete it).

Suppress a finding with `// lint:allow(<rule>)` on the offending line.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}
SCAN_DIRS = ("src", "tests", "bench", "examples")

RNG_HEADER = "src/common/include/rna/common/rng.hpp"
CLOCK_HEADER = "src/common/include/rna/common/clock.hpp"
MUTEX_HEADER = "src/common/include/rna/common/mutex.hpp"

ALLOW_RE = re.compile(r"lint:allow\((?P<rules>[\w,\s-]+)\)")


def strip_comments_and_strings(text):
    """Blanks out comments, string literals, and char literals, preserving
    line structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_allows(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group("rules").split(",")}
    return rule in allowed


class Rule:
    def __init__(self, name, pattern, message, applies):
        self.name = name
        self.pattern = re.compile(pattern)
        self.message = message
        self.applies = applies  # relpath (posix str) -> bool


def in_library(relpath):
    return relpath.startswith("src/")


RULES = [
    Rule(
        "raw-random",
        r"\b(?:std::)?s?rand\s*\(|std::random_device|std::mt19937"
        r"|std::minstd_rand|std::default_random_engine|std::ranlux",
        "unseeded/non-reproducible randomness; use rna::common::Rng "
        "(rna/common/rng.hpp)",
        lambda p: p != RNG_HEADER,
    ),
    Rule(
        "thread-detach",
        r"\.detach\s*\(\s*\)",
        "detached threads are banned; join every thread",
        lambda p: True,
    ),
    Rule(
        "volatile-sync",
        r"\bvolatile\b",
        "volatile is not a synchronization primitive; use std::atomic or "
        "a guarded member",
        lambda p: True,
    ),
    Rule(
        "raw-sleep",
        r"this_thread::sleep_for|this_thread::sleep_until|\busleep\s*\(",
        "no sleeping in library code; wait on rna::common::CondVar, or use "
        "common::SleepFor for modelled delays",
        lambda p: in_library(p) and p != CLOCK_HEADER,
    ),
    Rule(
        "raw-mutex",
        r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
        r"|std::condition_variable\b|std::condition_variable_any\b"
        r"|std::scoped_lock\b|std::lock_guard\b|std::unique_lock\b"
        r"|std::shared_lock\b",
        "raw std synchronization types escape -Wthread-safety; use "
        "rna::common::Mutex / MutexLock / CondVar (rna/common/mutex.hpp)",
        lambda p: in_library(p) and p != MUTEX_HEADER,
    ),
    Rule(
        "raw-stopwatch",
        r"\bStopwatch\b",
        "runner code must time through rna::obs::ScopedTimer (rna/obs/"
        "trace.hpp) so every measurement lands in the trace; "
        "common::Stopwatch is a second, unexported timing source",
        lambda p: p.startswith(("src/core/", "src/train/", "src/baselines/",
                                "src/ps/")),
    ),
]

# Rules the call-graph analyzer took over. Keys are the old lint names;
# values name the owning tools/analyze check. A surviving
# `lint:allow(<retired>)` comment is dead weight — the regex it silenced is
# gone — so the lint flags it and points at the new owner.
RETIRED_RULES = {
    "untimed-recv": "tools/analyze check 'timed-recv'",
    "nn-raw-alloc": "tools/analyze check 'no-heap-reachable'",
}


def check_retired_suppressions(relpath, raw_lines, findings):
    for i, raw in enumerate(raw_lines):
        m = ALLOW_RE.search(raw)
        if not m:
            continue
        named = {r.strip() for r in m.group("rules").split(",")}
        for rule in sorted(named & RETIRED_RULES.keys()):
            findings.append(
                (relpath, i + 1, "retired-rule",
                 f"lint rule '{rule}' was retired; it is now enforced by "
                 f"{RETIRED_RULES[rule]} — move the justification to an "
                 "analyze:allow(...) comment or delete this suppression"))


MUTEX_MEMBER_RE = re.compile(
    r"\b(?:common::)?Mutex\s+(?P<name>\w+_)\s*;")


def check_unguarded_mutexes(relpath, code, raw_lines, findings):
    """Rule unguarded-mutex: a Mutex member with no RNA_GUARDED_BY coverage
    in the same file means the capability analysis protects nothing."""
    if not in_library(relpath) or relpath == MUTEX_HEADER:
        return
    for m in MUTEX_MEMBER_RE.finditer(code):
        name = m.group("name")
        guard_re = re.compile(
            r"RNA_(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)")
        if guard_re.search(code):
            continue
        line_no = code.count("\n", 0, m.start()) + 1
        if line_allows(raw_lines[line_no - 1], "unguarded-mutex"):
            continue
        findings.append(
            (relpath, line_no, "unguarded-mutex",
             f"Mutex member '{name}' has no RNA_GUARDED_BY(...) coverage "
             "in this file; annotate the state it protects"))


def lint_text(relpath, text):
    findings = []
    code = strip_comments_and_strings(text)
    raw_lines = text.split("\n")
    code_lines = code.split("\n")
    for rule in RULES:
        if not rule.applies(relpath):
            continue
        for i, line in enumerate(code_lines):
            if rule.pattern.search(line):
                if i < len(raw_lines) and line_allows(raw_lines[i], rule.name):
                    continue
                findings.append((relpath, i + 1, rule.name, rule.message))
    check_unguarded_mutexes(relpath, code, raw_lines, findings)
    check_retired_suppressions(relpath, raw_lines, findings)
    return findings


def lint_tree(root):
    findings = []
    scanned = 0
    for top in SCAN_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES or not path.is_file():
                continue
            relpath = path.relative_to(root).as_posix()
            scanned += 1
            findings.extend(lint_text(relpath, path.read_text(errors="replace")))
    return findings, scanned


# ---------------------------------------------------------------------------
# Self-test: regression coverage proving each rule still fires on a minimal
# banned snippet and stays quiet on idiomatic code.

SELFTEST_CASES = [
    ("raw-random", "src/x.cpp", "int r = rand();\n"),
    ("raw-random", "src/x.cpp", "std::mt19937 gen;\n"),
    ("thread-detach", "src/x.cpp", "worker.detach();\n"),
    ("thread-detach", "tests/t.cpp", "std::thread(f).detach();\n"),
    ("volatile-sync", "src/x.cpp", "volatile bool done = false;\n"),
    ("raw-sleep", "src/x.cpp",
     "std::this_thread::sleep_for(std::chrono::seconds(1));\n"),
    ("raw-mutex", "src/x.cpp", "std::mutex mu_;\n"),
    ("raw-mutex", "src/x.cpp", "std::scoped_lock lock(mu_);\n"),
    ("unguarded-mutex", "src/x.hpp",
     "class C { mutable common::Mutex mu_; int x; };\n"),
    ("raw-stopwatch", "src/train/engine.cpp",
     "const common::Stopwatch watch;\n"),
    ("raw-stopwatch", "src/baselines/b.cpp", "Stopwatch w; use(w);\n"),
    # Suppressions referencing retired rules are themselves findings that
    # point at the tools/analyze check which now owns the invariant.
    ("retired-rule", "src/core/engine.cpp",
     "go = fabric.Recv(w, kGo);  // lint:allow(untimed-recv)\n"),
    ("retired-rule", "src/nn/norm.cpp",
     "inv_std_.resize(rows);  // lint:allow(nn-raw-alloc)\n"),
]

SELFTEST_CLEAN = [
    # Banned tokens inside comments and strings are not code.
    ("src/x.cpp", '// rand() in a comment\nconst char* s = "rand()";\n'),
    # Tests may sleep.
    ("tests/t.cpp", "std::this_thread::sleep_for(1ms);\n"),
    # The annotated-mutex idiom.
    ("src/x.hpp",
     "class C {\n mutable common::Mutex mu_;\n"
     " int x_ RNA_GUARDED_BY(mu_);\n};\n"),
    # Explicit suppression.
    ("src/x.cpp", "std::mutex legacy_mu;  // lint:allow(raw-mutex)\n"),
    # The sanctioned sleep location.
    (CLOCK_HEADER, "std::this_thread::sleep_for(FromSeconds(s));\n"),
    # The Rng header may reference std engines (e.g. in docs comparisons).
    (RNG_HEADER, "// unlike std::mt19937 ...\nstd::mt19937 compat;\n"),
    # Stopwatch stays legal outside runner code: benches, tests, and the
    # obs/common layers (ScopedTimer is built on the same clock).
    ("bench/bench_x.cpp", "const common::Stopwatch watch;\n"),
    ("tests/t.cpp", "common::Stopwatch watch;\n"),
    ("src/common/include/rna/common/clock.hpp", "class Stopwatch {};\n"),
    ("src/obs/trace.cpp", "// replaces the Stopwatch pattern\n"),
    # Receive-deadline and hot-path allocation discipline moved to
    # tools/analyze; the lint no longer fires on any of these, and the
    # analyzer's own fixtures (tests/analyze_fixtures/) cover them.
    ("src/core/engine.cpp", "auto m = fabric.Recv(w, 5);\n"),
    ("src/nn/lstm.cpp", "float* z = new float[4 * h];\n"),
    # A suppression that migrated to the analyzer's comment form is not a
    # stale lint suppression.
    ("src/core/engine.cpp",
     "go = fabric.Recv(w, kGo);  // analyze:allow(timed-recv)\n"),
    # Live-rule suppressions are still honoured, not flagged as retired.
    ("src/x.cpp", "std::mutex legacy2;  // lint:allow(raw-mutex)\n"),
    ("src/data/sampler.cpp", "indices.resize(batch_size);\n"),
]


def self_test():
    failures = []
    for rule, path, snippet in SELFTEST_CASES:
        hits = [f for f in lint_text(path, snippet) if f[2] == rule]
        if not hits:
            failures.append(f"rule '{rule}' did not fire on {path!r}: "
                            f"{snippet.strip()!r}")
    for path, snippet in SELFTEST_CLEAN:
        hits = lint_text(path, snippet)
        if hits:
            failures.append(f"clean snippet {snippet.strip()!r} flagged: {hits}")
    if failures:
        print("lint self-test FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"lint self-test OK ({len(SELFTEST_CASES)} firing cases, "
          f"{len(SELFTEST_CLEAN)} clean cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root to scan")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint's own regression tests")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint: error: root {root} is not a directory", file=sys.stderr)
        return 2
    for rule, owner in sorted(RETIRED_RULES.items()):
        print(f"lint: note: rule '{rule}' is retired — now enforced by "
              f"{owner}")
    findings, scanned = lint_tree(root)
    if scanned == 0:
        print(f"lint: error: no C++ sources found under {root} "
              "(wrong --root?)", file=sys.stderr)
        return 2
    for relpath, line, rule, message in findings:
        print(f"{relpath}:{line}: [{rule}] {message}")
    if findings:
        print(f"\nlint: {len(findings)} finding(s) in {scanned} files")
        return 1
    print(f"lint: OK ({scanned} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
