#!/usr/bin/env python3
"""Bench regression gate for the BENCH_micro_*.json artifacts.

Compares a freshly measured bench JSON (written by `bench_micro_fabric
--json-out` / `bench_micro_kernels --json-out`) against the committed
baseline in bench/baselines/, and fails when a throughput metric regressed
by more than --max-regression (default 20%).

Rules:
  * Only higher-is-better keys are gated (throughput-style suffixes:
    *_per_s, gbps_*, speedup, *hit_rate). Other keys are informational.
  * A row present in the baseline but missing from the current run is an
    error (a silently dropped workload is not a pass).
  * New rows/keys in the current run are allowed (the baseline is updated
    by committing the new artifact, not by editing this script).
  * Keys listed in ABSOLUTE_FLOORS are additionally checked against a
    machine-independent floor — ratios like the pool hit rate must hold on
    any host, so they are gated even when the baseline machine was slower.

Exit status: 0 clean, 1 regression(s), 2 usage/IO error.
"""

import argparse
import json
import sys
from pathlib import Path

GATED_SUFFIXES = ("_per_s", "hit_rate", "speedup")
GATED_PREFIXES = ("gbps_",)

# label -> key -> floor value (checked as current >= floor, no tolerance).
ABSOLUTE_FLOORS = {
    "ring_allreduce_w8_1m": {
        # Steady-state collectives must be allocation-free: every hop buffer
        # comes from the pool once it is warm.
        "pool_hit_rate": 0.9,
    },
    # Lossy wire compression must not break convergence: every lockstep
    # protocol x compression run in bench_collective_policy has to end at or
    # below its loss target (reached_target is 1.0/0.0 and, being a pure
    # function of the seeds under lockstep, machine-independent).
    **{f"train_{proto}_{comp}": {"reached_target": 1.0}
       for proto in ("horovod", "rna")
       for comp in ("none", "fp16", "int8", "topk")},
    # The 1000-worker lockstep run and the elastic churn run (bench_scale)
    # must actually finish every scheduled round, and the elastic run must
    # complete its scheduled joins and leave.
    "scale_w1000": {"completed": 1.0},
    "scale_elastic_w100": {
        "completed": 1.0,
        "workers_joined": 2.0,
        "workers_left": 1.0,
    },
    # Streaming data plane (bench_data): length-bucketed batching must keep
    # widening the per-batch total-length spread vs uniform sampling — the
    # Figure 2(b) load imbalance the paper's whole mitigation targets. The
    # CV ratio is a pure function of the seeds, so it is machine-independent.
    "fig2_bucketing": {"cv_ratio_bucketed_vs_uniform": 2.0},
    # world > Size(): every overflow rank must fall back to the shared view
    # (400 of the 1000 ranks in this configuration) instead of crashing or
    # silently training on nothing.
    "shard_view_overflow_w1000": {"fallback_workers": 400.0},
}

# Lower-is-better keys gated as current <= ceiling.
ABSOLUTE_CEILINGS = {
    "ring_allreduce_w8_1m": {
        "pool_steady_misses": 0.0,
    },
    # Steady-state training iterations run entirely out of the compute arena
    # (bench_micro_nn measures with counting operator new/delete): any heap
    # allocation after warm-up is a regression regardless of throughput.
    **{f"train_step_{kind}": {"steady_heap_allocs": 0.0}
       for kind in ("mlp", "lstm", "deep-lstm", "transformer", "attention")},
    # Wire bytes per round are a deterministic function of the codec (world
    # 8, 256k floats, 2*(w-1)*w chunks per round), so these hold each
    # compression level to its exact frame budget: raw adds zero framing
    # overhead, fp16 halves the payload, int8 quarters it, and top-k at 5%
    # ships ~1/10th. Any header growth or framing leak trips the gate.
    "comp_none_w8_256k": {"wire_bytes_per_round": 14680064.0},
    "comp_fp16_w8_256k": {"wire_bytes_per_round": 7341376.0},
    "comp_int8_w8_256k": {"wire_bytes_per_round": 3671360.0},
    "comp_topk_w8_256k": {"wire_bytes_per_round": 1469888.0},
    # Zero-copy sharding (bench_data): a shard view must alias the dataset's
    # sample tensors, never copy them — at world=1000 a single copied view
    # would replicate the dataset ×1000 (the bug this ceiling pins out).
    "shard_view_w1000": {"sample_bytes_copied": 0.0},
    "shard_view_overflow_w1000": {"sample_bytes_copied": 0.0},
    # Scale-out flatness (bench_scale): controller messages per worker per
    # round at world=1000 relative to world=10. The count is a property of
    # the dispatch protocol (not of the machine), so growth past 2x means a
    # controller started doing per-world work per worker — the O(1) claim
    # the sharded controller exists for.
    "scale_w1000": {"controller_msgs_flatness_vs_w10": 2.0},
}


def is_gated(key):
    return key.endswith(GATED_SUFFIXES) or key.startswith(GATED_PREFIXES)


def load_rows(path):
    data = json.loads(Path(path).read_text())
    rows = {}
    for row in data.get("rows", []):
        label = row.get("label")
        rows[label] = {k: v for k, v in row.items() if k != "label"}
    return data.get("bench", "?"), rows


def compare(baseline_path, current_path, max_regression):
    problems = []
    bench_name, base_rows = load_rows(baseline_path)
    _, cur_rows = load_rows(current_path)
    checked = 0

    for label, base_values in sorted(base_rows.items()):
        if label not in cur_rows:
            problems.append(f"{bench_name}/{label}: row missing from current run")
            continue
        cur_values = cur_rows[label]
        for key, base in sorted(base_values.items()):
            if not is_gated(key) or key not in cur_values:
                continue
            cur = cur_values[key]
            checked += 1
            if base > 0 and cur < base * (1.0 - max_regression):
                problems.append(
                    f"{bench_name}/{label}/{key}: {cur:.4g} is "
                    f"{(1.0 - cur / base) * 100.0:.1f}% below baseline "
                    f"{base:.4g} (tolerance {max_regression * 100.0:.0f}%)")

    for label, floors in ABSOLUTE_FLOORS.items():
        if label not in cur_rows:
            continue
        for key, floor in floors.items():
            if key not in cur_rows[label]:
                problems.append(f"{bench_name}/{label}: missing floor key {key}")
                continue
            checked += 1
            if cur_rows[label][key] < floor:
                problems.append(
                    f"{bench_name}/{label}/{key}: {cur_rows[label][key]:.4g} "
                    f"below required floor {floor:.4g}")
    for label, ceilings in ABSOLUTE_CEILINGS.items():
        if label not in cur_rows:
            continue
        for key, ceiling in ceilings.items():
            if key not in cur_rows[label]:
                problems.append(
                    f"{bench_name}/{label}: missing ceiling key {key}")
                continue
            checked += 1
            if cur_rows[label][key] > ceiling:
                problems.append(
                    f"{bench_name}/{label}/{key}: {cur_rows[label][key]:.4g} "
                    f"above allowed ceiling {ceiling:.4g}")
    return bench_name, checked, problems


# ---------------------------------------------------------------------------
# Self-test

BASE_SAMPLE = {
    "bench": "micro_test",
    "rows": [
        {"label": "ring_allreduce_w8_1m", "elems_per_s": 1e8,
         "pool_hit_rate": 0.99, "pool_steady_misses": 0.0},
        {"label": "pingpong", "roundtrips_per_s": 5000.0, "note_count": 3.0},
        {"label": "train_step_mlp", "steps_per_s": 3000.0,
         "steady_heap_allocs": 0.0},
        {"label": "comp_int8_w8_256k", "time_per_round_s": 0.02,
         "wire_bytes_per_round": 3671360.0},
        {"label": "train_rna_int8", "final_loss": 0.03,
         "reached_target": 1.0},
        {"label": "scale_w1000", "completed": 1.0,
         "controller_msgs_flatness_vs_w10": 1.2},
        {"label": "scale_elastic_w100", "completed": 1.0,
         "workers_joined": 2.0, "workers_left": 1.0},
        {"label": "shard_view_w1000", "sample_bytes_copied": 0.0,
         "index_bytes": 32000.0},
        {"label": "fig2_bucketing", "batch_len_cv_uniform": 0.14,
         "batch_len_cv_bucketed": 0.49,
         "cv_ratio_bucketed_vs_uniform": 3.6},
    ],
}


def self_test():
    import copy
    import tempfile

    failures = []

    def run(mutate, expect_problems):
        cur = copy.deepcopy(BASE_SAMPLE)
        mutate(cur)
        with tempfile.TemporaryDirectory() as tmp:
            bp = Path(tmp) / "base.json"
            cp = Path(tmp) / "cur.json"
            bp.write_text(json.dumps(BASE_SAMPLE))
            cp.write_text(json.dumps(cur))
            _, _, problems = compare(bp, cp, 0.20)
        ok = bool(problems) == expect_problems
        if not ok:
            failures.append(
                f"expected problems={expect_problems}, got: {problems}")

    # Identical run passes.
    run(lambda c: None, expect_problems=False)
    # 10% dip is within the 20% tolerance.
    run(lambda c: c["rows"][0].__setitem__("elems_per_s", 0.9e8),
        expect_problems=False)
    # 30% dip fails.
    run(lambda c: c["rows"][0].__setitem__("elems_per_s", 0.7e8),
        expect_problems=True)
    # Non-gated keys never fail.
    run(lambda c: c["rows"][1].__setitem__("note_count", 0.0),
        expect_problems=False)
    # A dropped row fails.
    run(lambda c: c["rows"].pop(1), expect_problems=True)
    # Hit-rate floor is absolute: 0.5 fails even though baseline-relative
    # tolerance would allow it against a 0.99 baseline at 60% tolerance.
    run(lambda c: c["rows"][0].__setitem__("pool_hit_rate", 0.5),
        expect_problems=True)
    # Steady-state misses must stay at zero.
    run(lambda c: c["rows"][0].__setitem__("pool_steady_misses", 4.0),
        expect_problems=True)
    # An improvement passes.
    run(lambda c: c["rows"][0].__setitem__("elems_per_s", 2e8),
        expect_problems=False)
    # A single steady-state heap allocation in a train step fails, even
    # though the relative gate would never notice a count of 1.0.
    run(lambda c: c["rows"][2].__setitem__("steady_heap_allocs", 1.0),
        expect_problems=True)
    # Dropping the allocation counter from the row fails (the ceiling key
    # is required, not optional).
    run(lambda c: c["rows"][2].pop("steady_heap_allocs"),
        expect_problems=True)
    # A single extra wire byte per round breaks the compression ceiling —
    # the frame budget is exact, not throughput-relative.
    run(lambda c: c["rows"][3].__setitem__("wire_bytes_per_round", 3671361.0),
        expect_problems=True)
    # A lossy-compression run that misses its loss target fails outright.
    run(lambda c: c["rows"][4].__setitem__("reached_target", 0.0),
        expect_problems=True)
    # Controller messages per worker-round growing past 2x of the world=10
    # run means per-world dispatch crept into the controller.
    run(lambda c: c["rows"][5].__setitem__(
            "controller_msgs_flatness_vs_w10", 2.5),
        expect_problems=True)
    # Flatness below the ceiling passes: the ratio is exactly 1.0 under
    # lockstep today, but the ceiling leaves room for protocol changes
    # that legitimately add a bounded per-round message or two.
    run(lambda c: c["rows"][5].__setitem__(
            "controller_msgs_flatness_vs_w10", 1.4),
        expect_problems=False)
    # A 1000-worker run that stops short of its scheduled rounds fails.
    run(lambda c: c["rows"][5].__setitem__("completed", 0.0),
        expect_problems=True)
    # An elastic run that loses a scheduled join fails its floor.
    run(lambda c: c["rows"][6].__setitem__("workers_joined", 1.0),
        expect_problems=True)
    # A single byte of shard-sample copying at world=1000 breaks the
    # zero-copy ceiling (one copied view replicates the dataset ×world).
    run(lambda c: c["rows"][7].__setitem__("sample_bytes_copied", 768.0),
        expect_problems=True)
    # Index bytes are informational: per-worker bookkeeping may grow
    # without tripping any gate.
    run(lambda c: c["rows"][7].__setitem__("index_bytes", 64000.0),
        expect_problems=False)
    # Bucketed batching collapsing toward uniform's spread (ratio < 2)
    # means batches stopped tracking the length distribution — the Fig. 2
    # imbalance the data plane must reproduce.
    run(lambda c: c["rows"][8].__setitem__(
            "cv_ratio_bucketed_vs_uniform", 1.3),
        expect_problems=True)
    # The ratio floor is absolute, not baseline-relative: 2.5 passes even
    # though it is >20% below the 3.6 baseline.
    run(lambda c: c["rows"][8].__setitem__(
            "cv_ratio_bucketed_vs_uniform", 2.5),
        expect_problems=False)

    if failures:
        print("bench_gate self-test FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_gate self-test OK (20 cases)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", type=Path,
                        help="freshly measured BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional throughput drop "
                             "(default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own regression tests")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required")
    for p in (args.baseline, args.current):
        if not p.is_file():
            print(f"bench_gate: error: {p} not found", file=sys.stderr)
            return 2

    bench_name, checked, problems = compare(args.baseline, args.current,
                                            args.max_regression)
    for p in problems:
        print(f"bench_gate: {p}")
    if problems:
        print(f"bench_gate: FAILED ({len(problems)} problem(s), "
              f"{checked} metrics checked)")
        return 1
    print(f"bench_gate: OK ({bench_name}: {checked} metrics within "
          f"{args.max_regression * 100.0:.0f}% of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
