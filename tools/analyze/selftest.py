"""Fixture-driven self-test: must-fire and must-pass cases per check.

Each directory under tests/analyze_fixtures/ is a miniature analysis
root. Any file in it may declare expectations:

    // expect-fire: <check>      at least one <check> finding must fire
    // expect-clean: <check>     zero <check> findings may fire

The fixtures mimic the production qualified names (rna::nn::...,
rna::net::Mailbox, ...) so the very same config.py entry/boundary/sink
patterns are exercised — a fixture passing is evidence the real-tree run
means what it says. The self-test runs under ctest (analyze_selftest) and
in the CI static-analysis job, pinned to the textual frontend so the gate
is deterministic; when libclang is importable the suite runs a second
time against the cindex frontend as a cross-check.
"""

import re
from pathlib import Path

from . import frontend
from .checks import CHECKS

_EXPECT_RE = re.compile(r"//\s*expect-(fire|clean):\s*([\w-]+)")


def _expectations(fixture_dir):
    fire, clean = set(), set()
    for p in sorted(Path(fixture_dir).rglob("*")):
        if p.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        for kind, check in _EXPECT_RE.findall(
                p.read_text(errors="replace")):
            (fire if kind == "fire" else clean).add(check)
    return fire, clean


def run_fixture(fixture_dir, frontend_name="textual"):
    """-> list of error strings (empty = pass)."""
    fixture_dir = Path(fixture_dir)
    fire, clean = _expectations(fixture_dir)
    if not fire and not clean:
        return [f"{fixture_dir.name}: no expect-fire/expect-clean "
                "annotations found"]
    unknown = (fire | clean) - set(CHECKS)
    if unknown:
        return [f"{fixture_dir.name}: unknown checks {sorted(unknown)}"]
    files = frontend.collect_sources(fixture_dir, subdirs=())
    program, used = frontend.build_program(
        fixture_dir, files, frontend=frontend_name)
    from .callgraph import CallGraph
    graph = CallGraph(program)
    counts = {name: 0 for name in CHECKS}
    rendered = []
    for name, check in CHECKS.items():
        found = check(program, graph, root=fixture_dir)
        counts[name] = len(found)
        rendered.extend(f.render() for f in found)
    errors = []
    for check in sorted(fire):
        if counts[check] == 0:
            errors.append(
                f"{fixture_dir.name}: expected {check} to fire, got 0 "
                f"findings (frontend={used}); all findings: "
                + ("; ".join(rendered) or "<none>"))
    for check in sorted(clean):
        if counts[check] != 0:
            hits = [r for r in rendered if f"[{check}]" in r]
            errors.append(
                f"{fixture_dir.name}: expected {check} clean, got "
                f"{counts[check]} findings (frontend={used}): "
                + "; ".join(hits))
    return errors


def run_all(fixtures_root, frontend_name="textual", out=print):
    fixtures_root = Path(fixtures_root)
    dirs = sorted(d for d in fixtures_root.iterdir() if d.is_dir())
    if not dirs:
        out(f"analyze selftest: no fixtures under {fixtures_root}")
        return 1
    failures = 0
    for d in dirs:
        errors = run_fixture(d, frontend_name=frontend_name)
        if errors:
            failures += 1
            for e in errors:
                out(f"FAIL {e}")
        else:
            out(f"ok   {d.name}")
    if failures:
        out(f"analyze selftest: {failures}/{len(dirs)} fixtures failed "
            f"(frontend={frontend_name})")
        return 1
    out(f"analyze selftest: {len(dirs)} fixtures passed "
        f"(frontend={frontend_name})")
    return 0
