"""Suppression baseline: a committed list of finding keys to tolerate.

The policy (DESIGN.md) is that the baseline stays empty — real findings
get fixed, deliberate exceptions get an `analyze:allow(<check>)` comment
at the site where the justification belongs. The baseline exists for the
bootstrap window when a new check lands with pre-existing violations:
`--update-baseline` snapshots them so the gate can turn on immediately
while the fixes land as their own commits.

Format: one finding key per line; `#` comments and blank lines ignored.
Keys are location-stable (file + qualified function + site detail, no
line numbers) so unrelated edits don't invalidate them.
"""

from pathlib import Path


def load(path):
    p = Path(path)
    if not p.is_file():
        return set()
    keys = set()
    for raw in p.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keys.add(line)
    return keys


def apply(findings, baseline_keys):
    """-> (active, suppressed, stale_keys)."""
    active, suppressed = [], []
    hit = set()
    for f in findings:
        if f.key in baseline_keys:
            suppressed.append(f)
            hit.add(f.key)
        else:
            active.append(f)
    stale = sorted(baseline_keys - hit)
    return active, suppressed, stale


def write(path, findings, header=None):
    lines = []
    if header:
        lines.extend(f"# {h}" for h in header)
    lines.extend(sorted({f.key for f in findings}))
    Path(path).write_text("\n".join(lines) + "\n" if lines else "")
