"""The analyzer's IR: what both frontends must produce.

Everything downstream (callgraph.py, checks/) consumes only these types, so
the cindex and textual frontends are interchangeable. Sites carry their
source location plus the raw line text so `analyze:allow(<check>)`
suppressions can be honoured uniformly.
"""

from dataclasses import dataclass, field


@dataclass
class CallSite:
    name: str            # last path component, e.g. "RecvFor"
    chain: tuple         # qualified chain as written, e.g. ("tags", "RingTag")
    is_member: bool      # preceded by `.` / `->` (receiver call)
    receiver: str        # best-effort receiver text ("" when unknown)
    line: int
    held_locks: tuple    # lock ids held at the call site (textual frontend)


@dataclass
class AllocSite:
    kind: str            # "new" | "malloc" | "container" | "smart"
    detail: str          # e.g. "new float[]", ".resize(", "std::vector<...>("
    line: int


@dataclass
class LockAcq:
    lock_id: str         # normalized lock identity (see textual_frontend)
    expr: str            # lock expression as written
    line: int
    held_locks: tuple    # lock ids already held when this one is acquired


@dataclass
class TagSite:
    role: str            # "send" (msg.tag = ...) | "recv" (tag argument)
    expr: str            # tag expression as written (normalized whitespace)
    line: int


@dataclass
class FunctionDef:
    qname: str           # fully qualified, e.g. "rna::net::Mailbox::Get"
    name: str            # last component
    cls: str             # enclosing class qualified name ("" for free fns)
    file: str            # repo-relative posix path
    line: int
    calls: list = field(default_factory=list)      # [CallSite]
    allocs: list = field(default_factory=list)     # [AllocSite]
    locks: list = field(default_factory=list)      # [LockAcq]
    tags: list = field(default_factory=list)       # [TagSite]


@dataclass
class ProgramIR:
    functions: dict = field(default_factory=dict)  # qname#n -> FunctionDef
    files: list = field(default_factory=list)      # repo-relative paths seen
    frontend: str = ""                             # "textual" | "cindex"

    def add(self, fn):
        # Overloads / template specialisations share a qname; keep each
        # definition under a unique key, the checks iterate over values.
        key = fn.qname
        n = 0
        while key in self.functions:
            n += 1
            key = f"{fn.qname}#{n}"
        self.functions[key] = fn
        return key

    def by_name(self):
        """name -> [FunctionDef] index for call resolution."""
        index = {}
        for fn in self.functions.values():
            index.setdefault(fn.name, []).append(fn)
        return index


@dataclass(frozen=True)
class Finding:
    check: str
    file: str
    line: int
    message: str
    key: str  # stable identity for the suppression baseline

    def render(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"
