"""Call graph construction and reachability over the analyzer IR.

Resolution is name-based and deliberately over-approximate (soundness over
precision — a missed edge hides a bug, a spurious edge costs an allow
comment): a call links to every definition whose qualified name matches the
written chain as a suffix. One precision refinement: an unqualified,
receiver-less call from a method prefers same-class definitions, so
`Run(batch)` inside `LstmClassifier::ForwardBackward` resolves to
`LstmClassifier::Run` rather than every `Run` in the program.
"""


def _chain_matches(fn, chain):
    """Does `fn.qname` end with the written chain (ignoring namespace
    aliases like `collectives::` for `rna::collectives::`)?"""
    parts = fn.qname.split("::")
    chain = [c for c in chain if c]  # drop empty segments
    if len(chain) > len(parts):
        return False
    return parts[-len(chain):] == list(chain)


class CallGraph:
    def __init__(self, program):
        self.program = program
        self.by_name = program.by_name()
        self._edges = {}  # id(fn) -> [(callee FunctionDef, CallSite)]

    def callees(self, fn):
        cached = self._edges.get(id(fn))
        if cached is not None:
            return cached
        out = []
        for call in fn.calls:
            for callee in self.resolve(fn, call):
                out.append((callee, call))
        self._edges[id(fn)] = out
        return out

    def resolve(self, caller, call):
        candidates = self.by_name.get(call.name, [])
        if not candidates:
            return []
        matches = [c for c in candidates if _chain_matches(c, call.chain)]
        if not matches:
            return []
        if len(call.chain) == 1 and not call.is_member and caller.cls:
            same_class = [m for m in matches if m.cls == caller.cls]
            if same_class:
                return same_class
        return matches

    def reachable(self, entries, stop=None):
        """BFS from entry FunctionDefs; `stop(fn)` prunes traversal *into*
        a function (it is still reported as reachable)."""
        seen = {}
        work = list(entries)
        for fn in work:
            seen[id(fn)] = fn
        while work:
            fn = work.pop()
            if stop is not None and stop(fn):
                continue
            for callee, _site in self.callees(fn):
                if id(callee) not in seen:
                    seen[id(callee)] = callee
                    work.append(callee)
        return list(seen.values())

    def find_path(self, entries, target, stop=None):
        """One call path entry→…→target as [(FunctionDef, line)] for
        diagnostics; None if unreachable."""
        parent = {}
        work = list(entries)
        seen = {id(fn) for fn in work}
        while work:
            fn = work.pop(0)
            if fn is target:
                path = []
                cur = fn
                while cur is not None:
                    prev = parent.get(id(cur))
                    path.append((cur, prev[1].line if prev else cur.line))
                    cur = prev[0] if prev else None
                path.reverse()
                return path
            if stop is not None and stop(fn) and fn not in entries:
                continue
            for callee, site in self.callees(fn):
                if id(callee) not in seen:
                    seen.add(id(callee))
                    parent[id(callee)] = (fn, site)
                    work.append(callee)
        return None


def transitive_lock_acquisitions(graph, max_depth=6):
    """For every function: set of lock ids it may acquire, directly or via
    callees (bounded depth to keep over-approximation from exploding
    through name collisions)."""
    program = graph.program
    direct = {id(fn): {a.lock_id for a in fn.locks}
              for fn in program.functions.values()}
    result = {k: set(v) for k, v in direct.items()}
    for _ in range(max_depth):
        changed = False
        for fn in program.functions.values():
            acc = result[id(fn)]
            before = len(acc)
            for callee, _site in graph.callees(fn):
                acc |= result.get(id(callee), set())
            if len(acc) != before:
                changed = True
        if not changed:
            break
    return result
