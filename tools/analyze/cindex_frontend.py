"""libclang (`clang.cindex`) frontend producing the analyzer IR.

Preferred when available: real AST, real name resolution, no heuristic
brace classification. Produces exactly the IR the textual frontend does
(ir.py) so the checks are frontend-agnostic. Every entry point is
defensive — any libclang hiccup surfaces as an exception that frontend.py
turns into a textual-frontend fallback under `--frontend auto`.
"""

import json
from pathlib import Path

from .ir import AllocSite, CallSite, FunctionDef, LockAcq, ProgramIR, TagSite
from .textual_frontend import (
    _ALLOC_C, _ALLOC_MEMBERS, _ALLOC_SMART, _RECV_TAG_ARG,
    _UNTIMED_RECV_NAMES, _allow_lines,
)

_INDEX = None


def _load_cindex():
    import clang.cindex as ci
    global _INDEX
    if _INDEX is None:
        try:
            _INDEX = ci.Index.create()
        except Exception:
            # Try common sonames before giving up; Config must be set
            # before the first Index.create() attempt wins.
            for name in ("libclang.so", "libclang-14.so.1",
                         "libclang.so.1", "libclang-cpp.so"):
                try:
                    ci.Config.loaded = False
                    ci.Config.set_library_file(name)
                    _INDEX = ci.Index.create()
                    break
                except Exception:
                    continue
    if _INDEX is None:
        raise RuntimeError("no usable libclang library")
    return ci


def available():
    try:
        _load_cindex()
        return True
    except Exception:
        return False


def _qualified_name(cursor):
    parts = []
    c = cursor
    while c is not None and c.kind is not None:
        if c.kind.name == "TRANSLATION_UNIT":
            break
        sp = c.spelling
        if sp:
            parts.append(sp)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _enclosing_class(cursor):
    c = cursor.semantic_parent
    class_kinds = {"CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"}
    if c is not None and c.kind.name in class_kinds:
        return _qualified_name(c)
    return ""


def _arg_text(arg):
    try:
        toks = [t.spelling for t in arg.get_tokens()]
        return " ".join(toks)
    except Exception:
        return ""


class _FunctionWalker:
    """Walks one function body, threading the held-lock set through
    compound statements the way MutexLock RAII scopes behave."""

    def __init__(self, fn, allow, rel):
        self.fn = fn
        self.allow = allow
        self.rel = rel

    def _allows(self, line):
        return self.allow.get(line, frozenset())

    def walk(self, cursor, held):
        if cursor.kind.name == "COMPOUND_STMT":
            local = list(held)
            for child in cursor.get_children():
                new_lock = self._lock_decl(child, local)
                if new_lock is None:
                    self.walk(child, local)
                else:
                    local.append(new_lock)
            return
        self._visit(cursor, held)
        for child in cursor.get_children():
            self.walk(child, held)

    def _lock_decl(self, stmt, held):
        """DECL_STMT declaring a MutexLock → lock id, recording the
        acquisition; None otherwise."""
        if stmt.kind.name != "DECL_STMT":
            return None
        for decl in stmt.get_children():
            if decl.kind.name != "VAR_DECL":
                continue
            tname = decl.type.spelling if decl.type is not None else ""
            if "MutexLock" not in tname:
                continue
            expr = self._init_lock_expr(decl)
            lock_id = self._lock_identity(expr)
            line = decl.location.line
            if "lock-order" not in self._allows(line):
                self.fn.locks.append(LockAcq(
                    lock_id=lock_id, expr=expr, line=line,
                    held_locks=tuple(held)))
            return lock_id
        return None

    def _init_lock_expr(self, decl):
        """The mutex expression inside `MutexLock name(EXPR)` — the first
        reference-like node of the initializer that is not the declared
        variable itself."""
        for node in decl.walk_preorder():
            k = node.kind.name
            if k == "ARRAY_SUBSCRIPT_EXPR":
                return _arg_text(node)
            if k in ("MEMBER_REF_EXPR", "DECL_REF_EXPR"):
                if node.spelling and node.spelling != decl.spelling \
                        and "MutexLock" not in (node.type.spelling or ""):
                    return _arg_text(node)
        return decl.spelling

    def _lock_identity(self, expr):
        norm = "".join(expr.split())
        for junk in ("common::", "rna::", "this->", "(", ")"):
            norm = norm.replace(junk, "")
        while "[" in norm:
            a = norm.index("[")
            b = norm.find("]", a)
            if b < 0:
                break
            norm = norm[:a] + "[]" + norm[b + 1:]
        if self.fn.cls and norm.endswith(("_", "_[]")):
            return f"{self.fn.cls}::{norm}"
        return f"{self.fn.qname}::{norm}"

    def _visit(self, cursor, held):
        kind = cursor.kind.name
        line = cursor.location.line
        if kind == "CXX_NEW_EXPR":
            if "no-heap-reachable" not in self._allows(line):
                self.fn.allocs.append(AllocSite(
                    kind="new", detail="new " + (cursor.type.spelling or ""),
                    line=line))
            return
        if kind not in ("CALL_EXPR", "MEMBER_REF_EXPR", "BINARY_OPERATOR"):
            return
        if kind == "BINARY_OPERATOR":
            self._tag_assign(cursor)
            return
        if kind != "CALL_EXPR":
            return
        name = cursor.spelling or ""
        if not name:
            return
        ref = cursor.referenced
        chain = (name,)
        is_member = False
        if ref is not None:
            is_member = ref.kind.name == "CXX_METHOD"
            q = _qualified_name(ref)
            if q:
                chain = tuple(q.split("::"))
        if "no-heap-reachable" not in self._allows(line):
            if is_member and name in _ALLOC_MEMBERS:
                owner = ref.semantic_parent.spelling if ref else ""
                if owner not in ("Arena", "BufferPool"):
                    self.fn.allocs.append(AllocSite(
                        kind="container", detail=f".{name}(", line=line))
            elif name in _ALLOC_SMART:
                self.fn.allocs.append(AllocSite(
                    kind="smart", detail=f"{name}<...>", line=line))
            elif name in _ALLOC_C:
                self.fn.allocs.append(AllocSite(
                    kind="malloc", detail=f"{name}(", line=line))
        if not (name in _UNTIMED_RECV_NAMES
                and "timed-recv" in self._allows(line)):
            self.fn.calls.append(CallSite(
                name=name, chain=chain, is_member=is_member, receiver="",
                line=line, held_locks=tuple(held)))
        if name in _RECV_TAG_ARG and is_member:
            args = list(cursor.get_arguments())
            idx = _RECV_TAG_ARG[name]
            if len(args) > idx and "tag-discipline" not in \
                    self._allows(line):
                self.fn.tags.append(TagSite(
                    role="recv", expr=_arg_text(args[idx]), line=line))

    def _tag_assign(self, cursor):
        toks = [t.spelling for t in cursor.get_tokens()]
        if "=" not in toks:
            return
        eq = toks.index("=")
        lhs = toks[:eq]
        if len(lhs) >= 2 and lhs[-1] == "tag" and lhs[-2] in (".", "->"):
            line = cursor.location.line
            if "tag-discipline" not in self._allows(line):
                self.fn.tags.append(TagSite(
                    role="send", expr=" ".join(toks[eq + 1:]), line=line))


_FUNC_KINDS = {
    "FUNCTION_DECL", "CXX_METHOD", "CONSTRUCTOR", "DESTRUCTOR",
    "FUNCTION_TEMPLATE",
}


def _compile_args(compile_db, root):
    args_by_file = {}
    if not compile_db:
        return args_by_file
    try:
        entries = json.loads(Path(compile_db).read_text())
    except Exception:
        return args_by_file
    for entry in entries:
        f = Path(entry.get("directory", "."), entry["file"]).resolve()
        raw = entry.get("arguments") or entry.get("command", "").split()
        args = [a for a in raw[1:]
                if a not in ("-c", "-o") and not a.endswith((".o", ".cpp"))]
        args_by_file[str(f)] = args
    return args_by_file


def build_ir(root, files, compile_db=None):
    ci = _load_cindex()
    root = Path(root).resolve()
    program = ProgramIR(frontend="cindex")
    args_by_file = _compile_args(compile_db, root)
    default_args = ["-std=c++17", "-I" + str(root)]
    seen_functions = set()
    for rel in files:
        path = root / rel
        args = args_by_file.get(str(path), default_args)
        tu = _INDEX.parse(
            str(path), args=args,
            options=ci.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
        allow_cache = {}
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind.name not in _FUNC_KINDS:
                continue
            if not cursor.is_definition():
                continue
            loc = cursor.location
            if loc.file is None:
                continue
            fpath = Path(loc.file.name).resolve()
            try:
                frel = fpath.relative_to(root).as_posix()
            except ValueError:
                continue
            ident = (frel, loc.line, cursor.spelling)
            if ident in seen_functions:
                continue  # same header parsed from several TUs
            seen_functions.add(ident)
            if frel not in allow_cache:
                allow_cache[frel] = _allow_lines(
                    fpath.read_text(errors="replace"))
            fn = FunctionDef(
                qname=_qualified_name(cursor), name=cursor.spelling,
                cls=_enclosing_class(cursor), file=frel, line=loc.line)
            body = [c for c in cursor.get_children()
                    if c.kind.name == "COMPOUND_STMT"]
            walker = _FunctionWalker(fn, allow_cache[frel], frel)
            for b in body:
                walker.walk(b, [])
            program.add(fn)
        program.files.append(rel)
    return program
