"""Hermetic C++ frontend: token/scope parser producing the analyzer IR.

Not a full C++ parser — a scope-tracking scanner that recognises the
constructs the invariant checks need: function definitions (with qualified
names from the namespace/class stack), call expressions, heap-allocation
sites, MutexLock RAII scopes, and fabric tag expressions. Lambdas are
attributed to their enclosing function (a lambda body runs on behalf of the
function that created it, which is exactly the attribution the whole-program
checks want). Fidelity is locked by tests/analyze_fixtures/.
"""

from .ir import AllocSite, CallSite, FunctionDef, LockAcq, ProgramIR, TagSite
from .lexer import match_backward, match_forward, tokenize

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "case", "default", "do", "else", "new", "delete", "throw", "goto",
    "static_assert", "decltype", "alignas", "co_await", "co_return",
    "co_yield", "noexcept", "and", "or", "not", "constexpr", "const",
    "static", "inline", "virtual", "explicit", "typename", "template",
    "using", "typedef", "public", "private", "protected", "friend",
}

# Identifiers that may sit (possibly with a parenthesised argument group)
# between a function's parameter list and its `{`.
_TRAILING_QUALIFIERS = {
    "const", "noexcept", "override", "final", "mutable", "volatile",
    "try", "&", "&&",
}

# Thread-safety annotation macros from rna/common/thread_annotations.hpp
# appear in the same trailing position.
def _is_qualifier_macro(name):
    return name.startswith("RNA_") or name in _TRAILING_QUALIFIERS


# `emplace` is deliberately absent: without types, `optional::emplace`
# (no allocation) is indistinguishable from `map::emplace`, and the former
# dominates this codebase's hot paths.
_ALLOC_MEMBERS = {
    "resize", "reserve", "push_back", "emplace_back", "assign",
    "insert", "append",
}
_ALLOC_CONTAINERS = {
    "vector", "string", "deque", "map", "unordered_map", "set",
    "unordered_set", "list",
}
_ALLOC_SMART = {"make_unique", "make_shared"}
_ALLOC_C = {"malloc", "calloc", "realloc", "strdup"}

_RECV_TAG_ARG = {
    # callee name -> 0-based index of the tag argument
    "RecvFor": 1, "Recv": 1, "TryRecv": 1,
    "GetFor": 0, "Get": 0, "TryGet": 0,
}

# Call names whose edge into the call graph an `analyze:allow(timed-recv)`
# comment suppresses — the documented lossless fast paths that wait
# forever by design (Shutdown() wakes them).
_UNTIMED_RECV_NAMES = {"Recv", "RecvAny", "Get", "GetAny"}


class _Frame:
    __slots__ = ("kind", "name", "func", "locks")

    def __init__(self, kind, name="", func=None):
        self.kind = kind      # namespace | class | function | lambda | block
        self.name = name
        self.func = func      # FunctionDef for kind == "function"
        self.locks = []       # [_ActiveLock] opened in this scope


class _ActiveLock:
    __slots__ = ("var", "lock_id", "held")

    def __init__(self, var, lock_id):
        self.var = var
        self.lock_id = lock_id
        self.held = True


def _normalize_lock_expr(tokens):
    """Lock expression -> normalized text; array indexes collapse to []."""
    out, i = [], 0
    while i < len(tokens):
        t = tokens[i]
        if t.text == "[":
            out.append("[]")
            i = match_forward(tokens, i, "[", "]")
            continue
        if t.text in ("common", "rna") and i + 1 < len(tokens) \
                and tokens[i + 1].text == "::":
            i += 2
            continue
        if t.text == "this" or (t.text == "->" and out == []):
            i += 1
            continue
        out.append(t.text)
        i += 1
    return "".join(out)


class _Parser:
    def __init__(self, relpath, tokens, allow_lines):
        self.relpath = relpath
        self.tokens = tokens
        self.allow_lines = allow_lines
        self.stack = []
        self.functions = []

    # -- scope helpers ------------------------------------------------------

    def _namespace_prefix(self):
        parts = []
        for f in self.stack:
            if f.kind in ("namespace", "class") and f.name:
                parts.append(f.name)
        return parts

    def _enclosing_class(self):
        parts = []
        for f in self.stack:
            if f.kind in ("namespace", "class") and f.name:
                parts.append(f.name)
            if f.kind == "function":
                # Out-of-class method bodies: the class is in the def name.
                break
        cls = [f.name for f in self.stack if f.kind == "class" and f.name]
        return "::".join(parts) if cls else ""

    def _current_function(self):
        for f in reversed(self.stack):
            if f.kind == "function":
                return f.func
        return None

    def _held_lock_ids(self):
        held = []
        for f in self.stack:
            for lk in f.locks:
                if lk.held:
                    held.append(lk.lock_id)
        return tuple(held)

    def _find_active_lock(self, var):
        for f in reversed(self.stack):
            for lk in reversed(f.locks):
                if lk.var == var:
                    return lk
        return None

    # -- `{` classification -------------------------------------------------

    def _walk_name_chain(self, j):
        """Walks a qualified name ending at token j; returns (chain, start)."""
        chain = [self.tokens[j].text]
        k = j - 1
        if k >= 0 and self.tokens[k].text == "~":
            chain[0] = "~" + chain[0]
            k -= 1
        while k >= 1 and self.tokens[k].text == "::" \
                and self.tokens[k - 1].kind == "id":
            chain.insert(0, self.tokens[k - 1].text)
            k -= 2
            # Skip template arguments on the qualifier: A<T>::name.
            if k >= 0 and self.tokens[k].text == ">":
                while k >= 0 and self.tokens[k].text != "<":
                    k -= 1
                k -= 1
        return chain, k + 1

    def _classify_brace(self, i):
        """Returns (kind, name_chain) for the `{` at token index i."""
        toks = self.tokens
        j = i - 1
        if j < 0:
            return "block", None
        prev = toks[j]
        if prev.text in ("=", ",", "(", "[", "{", "return", ";", "}") or \
                prev.kind in ("num", "str"):
            return "block", None
        if prev.text in ("do", "else", "try"):
            return "block", None
        if prev.kind == "id":
            # namespace X { / class X ... { / enum ... { / expr-brace T{...}
            chain, start = self._walk_name_chain(j)
            k = start - 1
            if k >= 0 and toks[k].text == "namespace":
                return "namespace", chain
            kind = self._class_like(i)
            if kind:
                return kind
            # `Foo{...}` aggregate init or `union {` etc: treat as block.
            return "block", None
        if prev.text == "namespace":  # anonymous namespace
            return "namespace", [""]
        if prev.text != ")" and not (prev.kind == "id"):
            # `) const {` handled below; lone `>` (trailing return) etc.
            if prev.text not in (")",):
                pass
        # Walk back over trailing qualifiers / annotation-macro groups /
        # constructor init lists to find the parameter list.
        k = j
        while k >= 0:
            t = toks[k]
            if t.text == ")":
                open_i = match_backward(toks, k)
                before = open_i - 1
                if before < 0:
                    return "block", None
                bt = toks[before]
                if bt.kind == "id" and _is_qualifier_macro(bt.text):
                    k = before - 1  # RNA_REQUIRES(mu) etc.
                    continue
                if bt.text == ")" and before >= 1 and \
                        toks[match_backward(toks, before) - 1].text \
                        == "operator":
                    # operator()(params)
                    return "function", ["operator()"]
                if bt.kind == "id" or bt.text in (">", "]"):
                    return self._classify_paren_group(open_i)
                if bt.text == "operator" or (
                        bt.kind == "punct" and before >= 1
                        and toks[before - 1].text == "operator"):
                    return "function", ["operator" + (
                        "" if bt.text == "operator" else bt.text)]
                return "block", None
            if t.kind == "id" and _is_qualifier_macro(t.text):
                k -= 1
                continue
            if t.text in (">", "*", "&") or t.kind == "id" or t.text == "::":
                # trailing return type tokens: -> Type {  — skip back.
                k -= 1
                continue
            if t.text == "->":
                k -= 1
                continue
            return "block", None
        return "block", None

    def _classify_paren_group(self, open_i):
        """A `( ... )` group right before `{` whose preceding token is an
        identifier / `>` / `]`: function def, control statement, ctor init
        list entry, or lambda."""
        toks = self.tokens
        before = open_i - 1
        bt = toks[before]
        if bt.text == "]":
            return "lambda", None
        if bt.text == ">":
            # Template-id name: Foo<T>(...) — walk back over the <...>.
            k = before
            while k >= 0 and toks[k].text != "<":
                k -= 1
            before = k - 1
            bt = toks[before]
            if bt.kind != "id":
                return "block", None
        if bt.kind != "id":
            return "block", None
        if bt.text in ("if", "for", "while", "switch", "catch"):
            return "block", None
        chain, start = self._walk_name_chain(before)
        # Constructor init list entry: `: member(init)` / `, member(init)`
        # — keep walking back to the real parameter list. A `:` right
        # after an access specifier (`public: int Get(...) {`) is class
        # punctuation, not an init list.
        def _is_init_sep(k):
            if k < 0 or toks[k].text not in (":", ","):
                return False
            if toks[k].text == ":" and k >= 1 and toks[k - 1].text in (
                    "public", "private", "protected"):
                return False
            return True

        k = start - 1
        while k >= 0 and toks[k].kind == "id" and \
                not _is_qualifier_macro(toks[k].text):
            k -= 1  # skip type names in `Type name(...)` declarations
        if _is_init_sep(k):
            back = self._rewind_ctor_init(k)
            if back is not None:
                return self._classify_paren_group(back)
            return "block", None
        if _is_init_sep(start - 1):
            back = self._rewind_ctor_init(start - 1)
            if back is not None:
                return self._classify_paren_group(back)
            return "block", None
        return "function", chain

    def _rewind_ctor_init(self, sep_i):
        """From a `:`/`,` before an init-list entry, finds the `(` of the
        constructor's parameter list (or None)."""
        toks = self.tokens
        k = sep_i
        while k >= 0:
            t = toks[k]
            if t.text == ":":
                # The ctor parameter list closes right before this `:`
                # (possibly with noexcept/macros between).
                k -= 1
                while k >= 0 and toks[k].kind == "id" and \
                        _is_qualifier_macro(toks[k].text):
                    k -= 1
                if k >= 0 and toks[k].text == ")":
                    return match_backward(toks, k)
                return None
            if t.text == ")":
                k = match_backward(toks, k) - 1
                continue
            if t.text == "}":
                k = match_backward(toks, k, "{", "}") - 1
                continue
            k -= 1
        return None

    def _class_like(self, brace_i):
        """Detects `class/struct/enum ... {` ending at brace_i."""
        toks = self.tokens
        k = brace_i - 1
        guard = 0
        while k >= 0 and guard < 64:
            t = toks[k]
            if t.text in (";", "}", "{"):
                return None
            if t.text == ")":
                k = match_backward(toks, k) - 1
                guard += 1
                continue
            if t.text == "enum":
                return ("block", None)  # enumerators hold no functions
            if t.text in ("class", "struct", "union"):
                # Name: first plain identifier after the keyword that is not
                # an attribute macro.
                m = k + 1
                while m < brace_i:
                    nt = toks[m]
                    if nt.kind == "id" and not _is_qualifier_macro(nt.text) \
                            and nt.text != "alignas":
                        return ("class", [nt.text])
                    if nt.text == "(":
                        m = match_forward(toks, m)
                        continue
                    if nt.text == ":":
                        break  # unnamed struct with bases — unlikely
                    m += 1
                return ("class", [""])
            k -= 1
            guard += 1
        return None

    # -- body scanning ------------------------------------------------------

    def _line_allows(self, line):
        return self.allow_lines.get(line, frozenset())

    def _record_alloc(self, fn, kind, detail, line):
        fn.allocs.append(AllocSite(kind=kind, detail=detail, line=line))

    def _expr_text(self, start, end):
        return " ".join(t.text for t in self.tokens[start:end]).strip()

    def _arg_ranges(self, open_i):
        """Splits the `( ... )` group at open_i into top-level argument
        token ranges [(start, end)...]."""
        toks = self.tokens
        end = match_forward(toks, open_i) - 1
        args, depth, start = [], 0, open_i + 1
        for k in range(open_i + 1, end):
            t = toks[k].text
            if t in "([{":
                depth += 1
            elif t in ")]}":
                depth -= 1
            elif t == "," and depth == 0:
                args.append((start, k))
                start = k + 1
        if end > start:
            args.append((start, end))
        return args

    def _scan_statement_token(self, i):
        """Inspects tokens[i] inside a function body; records IR facts."""
        toks = self.tokens
        fn = self._current_function()
        if fn is None:
            return
        t = toks[i]
        line = t.line
        if t.text == "new" and t.kind == "id":
            if "no-heap-reachable" not in self._line_allows(line):
                j = i + 1
                detail = " ".join(x.text for x in toks[j:j + 2])
                self._record_alloc(fn, "new", f"new {detail}".strip(), line)
            return
        if t.kind != "id" or t.text in _KEYWORDS:
            return
        nxt = toks[i + 1] if i + 1 < len(toks) else None

        # Member allocation calls: x.resize(...), v.push_back(...).
        if nxt is not None and nxt.text == "(" and i >= 1 \
                and toks[i - 1].text in (".", "->") \
                and t.text in _ALLOC_MEMBERS:
            if "no-heap-reachable" not in self._line_allows(line):
                self._record_alloc(fn, "container", f".{t.text}(", line)
            # fall through: it is also a call (unresolvable, external)

        # Smart-pointer factories and C allocators.
        if nxt is not None and (nxt.text == "(" or nxt.text == "<"):
            if t.text in _ALLOC_SMART:
                if "no-heap-reachable" not in self._line_allows(line):
                    self._record_alloc(fn, "smart", f"{t.text}<...>", line)
            elif t.text in _ALLOC_C and nxt.text == "(":
                if "no-heap-reachable" not in self._line_allows(line):
                    self._record_alloc(fn, "malloc", f"{t.text}(", line)

        # Sized container declarations: std::vector<float> name(...) — but
        # not copy-init (`= expr`) nor empty declarations.
        if t.text in _ALLOC_CONTAINERS and nxt is not None \
                and nxt.text == "<":
            close = self._skip_template_args(i + 1)
            if close is not None:
                m = close
                if m < len(toks) and toks[m].kind == "id":
                    after = toks[m + 1] if m + 1 < len(toks) else None
                    if after is not None and after.text == "(":
                        args = self._arg_ranges(m + 1)
                        if args and "no-heap-reachable" not in \
                                self._line_allows(toks[m].line):
                            self._record_alloc(
                                fn, "container",
                                f"std::{t.text}<...> {toks[m].text}(...)",
                                toks[m].line)

        # MutexLock RAII declarations: [common::]MutexLock name(expr);
        if t.text == "MutexLock" and nxt is not None and nxt.kind == "id":
            after = toks[i + 2] if i + 2 < len(toks) else None
            if after is not None and after.text == "(":
                args = self._arg_ranges(i + 2)
                if args:
                    expr_toks = toks[args[0][0]:args[0][1]]
                    lock_id = self._lock_identity(fn, expr_toks)
                    held = self._held_lock_ids()
                    if "lock-order" not in self._line_allows(line):
                        fn.locks.append(LockAcq(
                            lock_id=lock_id,
                            expr=self._expr_text(*args[0]),
                            line=line, held_locks=held))
                    self.stack[-1].locks.append(
                        _ActiveLock(nxt.text, lock_id))
            return

    def _skip_template_args(self, lt_i):
        """From `<` at lt_i, index just past the matching `>`; None if this
        is a comparison rather than template args."""
        toks = self.tokens
        depth, k = 0, lt_i
        while k < len(toks) and k < lt_i + 64:
            t = toks[k].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return k + 1
            elif t in (";", "{", ")", "&&", "||"):
                return None
            k += 1
        return None

    def _lock_identity(self, fn, expr_toks):
        norm = _normalize_lock_expr(expr_toks)
        # Member mutexes unify across all methods of the class; locals (and
        # captured locals in lambdas) unify within the defining function.
        if fn.cls and norm.endswith(("_", "_[]")):
            return f"{fn.cls}::{norm}"
        return f"{fn.qname}::{norm}"

    def _scan_call(self, i):
        """tokens[i] is an identifier followed by `(`: record a call."""
        toks = self.tokens
        fn = self._current_function()
        if fn is None:
            return
        t = toks[i]
        if t.text in _KEYWORDS or t.text.isupper():
            return  # control flow / macro invocation (args still scanned)
        if t.text.startswith("RNA_") or t.text.startswith("EXPECT_") \
                or t.text.startswith("ASSERT_"):
            return
        chain, start = self._walk_name_chain(i)
        is_member = start >= 1 and toks[start - 1].text in (".", "->")
        receiver = ""
        if is_member and start >= 2:
            r = toks[start - 2]
            receiver = r.text if r.kind == "id" else "(expr)"
        held = self._held_lock_ids()
        suppressed_recv = (
            chain[-1] in _UNTIMED_RECV_NAMES
            and "timed-recv" in self._line_allows(t.line))
        if not suppressed_recv:
            fn.calls.append(CallSite(
                name=chain[-1], chain=tuple(chain), is_member=is_member,
                receiver=receiver, line=t.line, held_locks=held))

        # Hand-over-hand MutexLock var usage: lk.Unlock() / lk.Lock().
        if is_member and chain[-1] in ("Unlock", "Lock") and receiver:
            active = self._find_active_lock(receiver)
            if active is not None:
                active.held = chain[-1] == "Lock"
                if active.held:
                    # Re-acquisition site: record ordering against currently
                    # held locks (excluding itself).
                    held2 = tuple(h for h in self._held_lock_ids()
                                  if h != active.lock_id)
                    fn.locks.append(LockAcq(
                        lock_id=active.lock_id, expr=receiver,
                        line=t.line, held_locks=held2))

        # Tag expressions on receives: fabric.RecvFor(rank, TAG, ...).
        if chain[-1] in _RECV_TAG_ARG and is_member:
            args = self._arg_ranges(i + 1)
            idx = _RECV_TAG_ARG[chain[-1]]
            if len(args) > idx and "tag-discipline" not in \
                    self._line_allows(t.line):
                fn.tags.append(TagSite(
                    role="recv", expr=self._expr_text(*args[idx]),
                    line=t.line))

    def _scan_tag_assign(self, i):
        """`.tag = EXPR ;` → send-side TagSite."""
        toks = self.tokens
        fn = self._current_function()
        if fn is None:
            return
        if toks[i].text != "tag" or i < 1 or toks[i - 1].text != ".":
            return
        if i + 1 >= len(toks) or toks[i + 1].text != "=":
            return
        j = i + 2
        depth = 0
        while j < len(toks):
            tt = toks[j].text
            if tt in "([{":
                depth += 1
            elif tt in ")]}":
                depth -= 1
            elif tt == ";" and depth == 0:
                break
            j += 1
        if "tag-discipline" not in self._line_allows(toks[i].line):
            fn.tags.append(TagSite(
                role="send", expr=self._expr_text(i + 2, j),
                line=toks[i].line))

    # -- main loop ----------------------------------------------------------

    def parse(self):
        toks = self.tokens
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.text == "{":
                kind, chain = self._classify_brace(i)
                if kind == "namespace":
                    # `namespace rna::collectives {` — keep the full path
                    # in one frame (one `{` pops one frame).
                    self.stack.append(_Frame(
                        "namespace", "::".join(c for c in chain if c)))
                elif kind == "class":
                    self.stack.append(_Frame("class", chain[-1]))
                elif kind == "function":
                    prefix = self._namespace_prefix()
                    qname = "::".join(prefix + chain)
                    cls = "::".join(prefix + chain[:-1]) if len(chain) > 1 \
                        else self._enclosing_class()
                    fn = FunctionDef(
                        qname=qname, name=chain[-1], cls=cls,
                        file=self.relpath, line=t.line)
                    self.functions.append(fn)
                    self.stack.append(_Frame("function", chain[-1], fn))
                elif kind == "lambda":
                    self.stack.append(_Frame("lambda"))
                else:
                    self.stack.append(_Frame("block"))
                i += 1
                continue
            if t.text == "}":
                if self.stack:
                    self.stack.pop()
                i += 1
                continue
            if t.kind == "id":
                nxt = toks[i + 1] if i + 1 < len(toks) else None
                self._scan_statement_token(i)
                self._scan_tag_assign(i)
                if nxt is not None and nxt.text == "(":
                    self._scan_call(i)
            i += 1
        return self.functions


def _allow_lines(text):
    """line number -> set of check names suppressed by analyze:allow(...)"""
    allows = {}
    for n, raw in enumerate(text.split("\n"), start=1):
        at = raw.find("analyze:allow(")
        if at < 0:
            continue
        inner = raw[at + len("analyze:allow("):]
        close = inner.find(")")
        if close < 0:
            continue
        names = frozenset(s.strip() for s in inner[:close].split(","))
        allows[n] = names
    return allows


def parse_file(relpath, text, program):
    allow = _allow_lines(text)
    tokens = tokenize(text)
    parser = _Parser(relpath, tokens, allow)
    for fn in parser.parse():
        program.add(fn)
    program.files.append(relpath)


def build_ir(sources):
    """sources: [(repo-relative path, text)] -> ProgramIR."""
    program = ProgramIR(frontend="textual")
    for relpath, text in sources:
        parse_file(relpath, text, program)
    return program
