"""Check configuration: entry points, boundaries, sinks.

Patterns are matched against fully qualified function names with
`fnmatch`-style wildcards. Fixtures mimic these shapes (e.g. a fixture
defines `rna::nn::FixtureNet::ForwardBackward`), so the self-tests
exercise the same configuration the real run uses.
"""

from fnmatch import fnmatchcase

# -- no-heap-reachable -------------------------------------------------------

# The compute hot paths: one model step, and the collective data plane.
HEAP_ENTRY_PATTERNS = (
    "rna::nn::*::ForwardBackward",
    "rna::nn::*::Evaluate",
    "rna::collectives::AllreduceFor",
    "rna::collectives::PartialAllreduceFor",
    "rna::collectives::FusedAllreduceFor",
    "rna::collectives::BroadcastFor",
    "rna::collectives::BarrierFor",
    "rna::collectives::RingPass::LaunchHop",
    "rna::collectives::RingPass::CompleteHop",
    "rna::collectives::TreePass::LaunchHop",
    "rna::collectives::TreePass::CompleteHop",
)

# Sanctioned allocation routers: traversal does not descend into these and
# allocation sites inside them are by-design (they ARE the allocators /
# own their cold paths). Tensor storage routes through Arena; Message
# payloads route through BufferPool; obs has pre-sized ring buffers with
# documented cold-path registration.
HEAP_BOUNDARY_PATTERNS = (
    "rna::tensor::Arena*",
    "rna::tensor::Tensor::*",
    "rna::tensor::Shape::*",
    "rna::net::BufferPool::*",
    "rna::net::Fabric::*",       # Send consults fault plan / stats, pooled
    "rna::net::Mailbox::*",
    "rna::obs::*",
    "rna::common::Log*",
    "rna::common::CheckFail*",
    # One-shot cache builders: Network::CachedParams/CachedGrads call these
    # exactly once per network (the cache is rebuilt only when empty), so
    # the pointer-list construction inside them is cold by contract even
    # though ZeroGrads reaches them from ForwardBackward.
    "rna::nn::*::Params",
    "rna::nn::*::Grads",
    # Error-feedback residuals grow once per (bucket, size) on the first
    # pass and are steady-state stable after warm-up (passes only call
    # EnsureSize when the buffer is too small); the wire codec itself
    # stages through BufferPool.
    "rna::collectives::ErrorFeedback::EnsureSize",
    # Streaming data plane: batch assembly allocates by design (each batch
    # owns fresh label/tensor storage), but it runs on the generator's
    # prefetch thread — off the compute hot path — and the consumer side
    # only moves the pre-built batch out of the queue. The worker's
    # one-shot arena warm-up batch is cold by the same pin-once contract
    # as the Params/Grads caches above.
    "rna::data::BatchGenerator::*",
    "rna::data::ShardView::MakeBatch*",
    "rna::train::WorkerContext::PinArenaCapacity",
)

# -- timed-recv --------------------------------------------------------------

# Every protocol/baseline entry point that must survive message loss.
RECV_ENTRY_PATTERNS = (
    "rna::core::RunFlatRna",
    "rna::core::RunHierarchicalRna",
    "rna::core::internal::*",
    "rna::baselines::Run*",
    "rna::ps::ParameterServer::*",
    "rna::ps::PsClient::*",
    "rna::train::*",
    "rna::collectives::*",
)

# The untimed blocking sinks. Reaching any of these from an entry point —
# through any wrapper chain — is a finding; the deadline variants
# (RecvFor/GetAnyFor/...) are the sanctioned transport.
RECV_SINK_PATTERNS = (
    "rna::net::Mailbox::Get",
    "rna::net::Mailbox::GetAny",
    "rna::net::Fabric::Recv",
    "rna::net::Fabric::RecvAny",
)

# Wrappers that ARE the untimed receive implementation (they call the
# sinks by definition and exist for tests/benches that want wait-forever
# semantics); the finding should point at protocol code reaching them, not
# at their own bodies.
RECV_SINK_OWNERS = (
    "rna::net::Mailbox::*",
    "rna::net::Fabric::*",
)

# -- tag-discipline ----------------------------------------------------------

TAGS_HEADER = "src/train/include/rna/train/tags.hpp"
FUSION_HEADER = "src/collectives/include/rna/collectives/fusion.hpp"
SCHEDULE_HEADER = "src/collectives/include/rna/collectives/schedule.hpp"
PS_HEADER = "src/ps/include/rna/ps/server.hpp"

# Guarantees the protocols rely on (see tags.hpp comments): ring tags must
# be round-unique for worlds at least this large, for at least this many
# rounds, and a fused call at a ring tag base must fit this many buckets
# inside one round's tag range.
TAG_MIN_WORLD = 1024
TAG_MIN_ROUNDS = 100_000
TAG_MIN_FUSED_BUCKETS_AT_W8 = 64

# Files whose tag expressions are checked (protocol + transport layers).
TAG_SCAN_PREFIXES = (
    "src/core/", "src/train/", "src/baselines/", "src/ps/",
    "src/collectives/",
)

# Identifiers that legitimise a tag expression: a named tag family or a
# plumbing parameter carrying a caller-validated base.
TAG_FAMILY_TOKENS = (
    "RingTag", "GroupCastTag", "BarrierTag", "TagOf", "FusionTagStride",
    "RingTagSpan", "TreeTagSpan",
)
TAG_PLUMBING_TOKENS = (
    "tag_base", "tag", "push_tag", "tag_lo", "tag_hi", "base",
)


def matches_any(qname, patterns):
    return any(fnmatchcase(qname, p) for p in patterns)
