"""Command-line driver for the invariant analyzer.

    python3 tools/analyze --root . --compile-db build/compile_commands.json
    python3 tools/analyze --self-test
    python3 tools/analyze --check lock-order --stats

Exit codes: 0 clean, 1 findings (or failed self-test), 2 usage/setup
errors. The committed suppression baseline (tools/analyze/baseline.txt)
is applied by default; stale baseline entries are reported so the file
shrinks back to empty as fixes land.
"""

import argparse
import sys
from pathlib import Path

from . import baseline as baseline_mod
from . import frontend, selftest
from .callgraph import CallGraph
from .checks import CHECKS


def _parse_args(argv):
    ap = argparse.ArgumentParser(
        prog="tools/analyze",
        description="whole-program invariant checks (arena discipline, "
                    "timed receives, lock order, tag discipline)")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json from the build tree; "
                    "without it, src/ is scanned directly")
    ap.add_argument("--frontend", default="auto",
                    choices=("auto", "textual", "cindex"),
                    help="auto prefers libclang and falls back to the "
                    "hermetic textual frontend")
    ap.add_argument("--baseline", default=None,
                    help="suppression baseline file (default: "
                    "tools/analyze/baseline.txt under --root)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="ignore the baseline file")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with the current findings")
    ap.add_argument("--check", action="append", dest="checks",
                    choices=sorted(CHECKS),
                    help="run only this check (repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite instead of analyzing")
    ap.add_argument("--fixtures", default=None,
                    help="fixture root for --self-test (default: "
                    "tests/analyze_fixtures under --root)")
    ap.add_argument("--stats", action="store_true",
                    help="print IR/call-graph statistics")
    return ap.parse_args(argv)


def main(argv=None):
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"analyze: --root {root} is not a directory", file=sys.stderr)
        return 2

    if args.self_test:
        fixtures = Path(args.fixtures) if args.fixtures \
            else root / "tests" / "analyze_fixtures"
        if not fixtures.is_dir():
            print(f"analyze: no fixtures at {fixtures}", file=sys.stderr)
            return 2
        fe = args.frontend if args.frontend != "auto" else "textual"
        rc = selftest.run_all(fixtures, frontend_name=fe)
        if rc == 0 and args.frontend == "auto" \
                and frontend.cindex_available():
            rc = selftest.run_all(fixtures, frontend_name="cindex")
        return rc

    if args.compile_db and not Path(args.compile_db).is_file():
        print(f"analyze: compile db {args.compile_db} not found — "
              "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON "
              "(the default presets do) or omit --compile-db",
              file=sys.stderr)
        return 2

    files = frontend.collect_sources(root, compile_db=args.compile_db)
    if not files:
        print("analyze: no sources found", file=sys.stderr)
        return 2
    try:
        program, used = frontend.build_program(
            root, files, frontend=args.frontend,
            compile_db=args.compile_db)
    except RuntimeError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    graph = CallGraph(program)

    if args.stats:
        ncalls = sum(len(f.calls) for f in program.functions.values())
        nlocks = sum(len(f.locks) for f in program.functions.values())
        nallocs = sum(len(f.allocs) for f in program.functions.values())
        ntags = sum(len(f.tags) for f in program.functions.values())
        print(f"analyze: frontend={used} files={len(program.files)} "
              f"functions={len(program.functions)} calls={ncalls} "
              f"allocs={nallocs} locks={nlocks} tags={ntags}")

    selected = args.checks or sorted(CHECKS)
    findings = []
    for name in selected:
        findings.extend(CHECKS[name](program, graph, root=root))
    findings.sort(key=lambda f: (f.file, f.line, f.check))

    baseline_path = Path(args.baseline) if args.baseline \
        else Path(__file__).resolve().parent / "baseline.txt"
    if args.update_baseline:
        baseline_mod.write(
            baseline_path, findings,
            header=["analyzer suppression baseline — keep empty; see "
                    "DESIGN.md 'Static analysis'"])
        print(f"analyze: wrote {len(findings)} keys to {baseline_path}")
        return 0
    keys = set() if args.no_baseline else baseline_mod.load(baseline_path)
    active, suppressed, stale = baseline_mod.apply(findings, keys)

    for f in active:
        print(f.render())
    for k in stale:
        print(f"analyze: stale baseline entry (fixed? remove it): {k}",
              file=sys.stderr)
    summary = (f"analyze: frontend={used} checks={','.join(selected)} "
               f"findings={len(active)}")
    if suppressed:
        summary += f" suppressed={len(suppressed)}"
    print(summary)
    return 1 if active else 0
