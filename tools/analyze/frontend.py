"""Source collection and frontend selection.

The analyzer prefers the libclang (`clang.cindex`) frontend when the
python bindings are importable and a library can be loaded; otherwise it
falls back to the hermetic textual frontend. Both produce the same IR
(ir.py), so the checks never know which one ran. `--frontend textual` is
the deterministic choice for CI gates; `--frontend cindex` hard-fails
when libclang is unavailable instead of silently downgrading.
"""

import json
from pathlib import Path

from . import textual_frontend

_SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")


def collect_sources(root, compile_db=None, subdirs=("src",)):
    """Returns sorted repo-relative paths of the files to analyze.

    With a compile_commands.json the TU list comes from the build system
    (so generated/excluded files follow the build's view of the project);
    headers under the scanned subdirs are always included because the
    whole-program checks need inline/template definitions that only live
    in headers. Without a DB (fixture roots), every source file under
    root is scanned.
    """
    root = Path(root).resolve()
    files = set()
    if compile_db:
        db_path = Path(compile_db)
        entries = json.loads(db_path.read_text())
        for entry in entries:
            f = Path(entry.get("directory", "."), entry["file"]).resolve()
            try:
                rel = f.relative_to(root)
            except ValueError:
                continue
            rel_posix = rel.as_posix()
            if subdirs and not rel_posix.startswith(
                    tuple(s.rstrip("/") + "/" for s in subdirs)):
                continue
            if f.is_file():
                files.add(rel_posix)
        scan_roots = [root / s for s in subdirs] if subdirs else [root]
        for base in scan_roots:
            if not base.is_dir():
                continue
            for p in base.rglob("*"):
                if p.suffix in (".hpp", ".h", ".hh") and p.is_file():
                    files.add(p.relative_to(root).as_posix())
    else:
        scan_roots = [root / s for s in subdirs] if subdirs else [root]
        found_any = any(base.is_dir() for base in scan_roots)
        if not found_any:
            scan_roots = [root]
        for base in scan_roots:
            if not base.is_dir():
                continue
            for p in base.rglob("*"):
                if p.suffix in _SOURCE_SUFFIXES and p.is_file():
                    files.add(p.relative_to(root).as_posix())
    return sorted(files)


def cindex_available():
    try:
        from . import cindex_frontend
        return cindex_frontend.available()
    except Exception:
        return False


def build_program(root, files, frontend="auto", compile_db=None):
    """-> (ProgramIR, frontend_used). `files` are repo-relative paths."""
    root = Path(root).resolve()
    if frontend not in ("auto", "textual", "cindex"):
        raise ValueError(f"unknown frontend {frontend!r}")
    if frontend in ("auto", "cindex"):
        try:
            from . import cindex_frontend
            if cindex_frontend.available():
                program = cindex_frontend.build_ir(
                    root, files, compile_db=compile_db)
                return program, "cindex"
            if frontend == "cindex":
                raise RuntimeError(
                    "libclang frontend requested but clang.cindex is not "
                    "usable (install python3-clang + libclang, or use "
                    "--frontend textual)")
        except RuntimeError:
            raise
        except Exception as exc:
            if frontend == "cindex":
                raise RuntimeError(f"libclang frontend failed: {exc}")
    sources = []
    for rel in files:
        p = root / rel
        sources.append((rel, p.read_text(errors="replace")))
    return textual_frontend.build_ir(sources), "textual"
