"""AST-grounded invariant analyzer for the RNA tree.

Whole-program checks the regex lint (tools/lint.py) cannot express:

  no-heap-reachable  no heap allocation is reachable from the compute /
                     collective hot paths unless routed through
                     tensor::Arena or net::BufferPool
  timed-recv         no path from a protocol entry point to an untimed
                     blocking receive, even through wrappers
  lock-order         the MutexLock acquisition-order graph is acyclic
                     (static deadlock detection)
  tag-discipline     Send/RecvFor tag expressions stay inside their
                     family's range; ranges are pairwise disjoint and
                     round-unique (evaluated from the real tags.hpp)

Two interchangeable frontends produce the same IR (ir.py): the libclang
cindex frontend (cindex_frontend.py) when python3-clang + libclang are
installed, and a hermetic token/scope C++ frontend (textual_frontend.py)
that needs nothing beyond the standard library. `--frontend auto` prefers
cindex and falls back. See DESIGN.md "Static analysis".
"""
