"""lock-order: the MutexLock acquisition-order graph must be acyclic.

Builds a directed graph over lock identities: an edge A -> B means some
thread may acquire B while holding A — either directly (nested MutexLock
scopes in one function) or interprocedurally (a function called with A
held transitively acquires B). A cycle in that graph is a potential
deadlock; this is the static complement to the runtime coverage TSan and
the chaos suite give, built on the same annotated Mutex/MutexLock
vocabulary PR 2 introduced.

Lock identities unify member mutexes per class (`Mailbox::mu_`) and local
mutexes per owning function; array-indexed locks collapse their index
(`model_mu[]`), so a self-edge on such an identity means "two instances of
the same lock family can nest" — a real deadlock unless every nesting
orders the instances, which must be justified with
analyze:allow(lock-order) at the acquisition site.
"""

from ..callgraph import transitive_lock_acquisitions
from ..ir import Finding


def _edges(program, graph):
    """(outer, inner) -> (file, line) witness."""
    edges = {}
    trans = transitive_lock_acquisitions(graph)
    for fn in program.functions.values():
        # Direct nesting: the acquisition records what was already held
        # (self-edges included — same lock family nested is a finding).
        for acq in fn.locks:
            for held in acq.held_locks:
                edges.setdefault((held, acq.lock_id), (fn.file, acq.line))
        # Interprocedural: calls made with locks held reach functions that
        # acquire more locks.
        for callee, site in graph.callees(fn):
            if not site.held_locks:
                continue
            for inner in trans.get(id(callee), ()):
                for held in site.held_locks:
                    if held != inner:
                        edges.setdefault((held, inner),
                                         (fn.file, site.line))
    return edges


def _cycles(edges):
    """Tarjan SCCs over the lock graph; returns non-trivial SCCs plus
    self-loops as lists of lock ids."""
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    index, low, on_stack = {}, {}, set()
    stack, sccs, counter = [], [], [0]

    def strongconnect(v):
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in adj.get(v, ()):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            sccs.append(comp)

    import sys
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        for v in adj:
            if v not in index:
                strongconnect(v)
    finally:
        sys.setrecursionlimit(old_limit)

    bad = [c for c in sccs if len(c) > 1]
    bad += [[a] for (a, b) in edges if a == b]
    return bad


def run(program, graph, root=None):
    edges = _edges(program, graph)
    findings = []
    for cycle in _cycles(edges):
        cycle = sorted(cycle)
        if len(cycle) == 1:
            witness = edges.get((cycle[0], cycle[0]))
            desc = (f"lock {cycle[0]} can be acquired while an instance of "
                    "it is already held (self-nesting lock family)")
        else:
            witness = None
            for a, b in zip(cycle, cycle[1:] + cycle[:1]):
                witness = edges.get((a, b)) or witness
            desc = ("lock acquisition cycle: " + " -> ".join(cycle) +
                    f" -> {cycle[0]}")
        file, line = witness if witness else ("<unknown>", 0)
        findings.append(Finding(
            check="lock-order", file=file, line=line,
            message=(desc + "; a consistent global order (or an "
                     "analyze:allow(lock-order) with the ordering "
                     "argument) is required"),
            key="lock-order|" + "|".join(cycle),
        ))
    return findings
