"""tag-discipline: fabric tag families must be collision-free by
construction, and every tag expression must come from a named family.

Two halves:

1. Numeric: the constants and constexpr tag functions are read from the
   real headers (tags.hpp, fusion.hpp, PsTags) and evaluated, then the
   range invariants the protocols rely on are verified — static tags
   pairwise distinct and below the round-indexed ranges, the barrier
   family's occupied set disjoint from every static tag, GroupCastTag
   rounds staying below kRingBase, RingTag round-uniqueness (stride wide
   enough for the supported world size, no int overflow over the
   supported round count), and FusionTagStride bucket disjointness
   (stride covers a ring pass; a fused call at a RingTag base fits a
   useful number of buckets inside one round's range).

2. Expression sites: every `msg.tag = ...` / receive tag argument in the
   protocol layers must reference a named tag (tags::k*, PsTags::k*), a
   tag family function, or a plumbing parameter that carries a
   caller-validated base. A bare numeric literal is an unaccounted tag —
   exactly how ad-hoc tags collide with a purged range later.
"""

import re
from pathlib import Path

from .. import config
from ..ir import Finding

_CONST_RE = re.compile(
    r"(?:inline\s+)?(?:static\s+)?constexpr\s+int\s+(k\w+)\s*=\s*([^;]+);")
_FUNC_RE = re.compile(
    r"(?:inline\s+)?(?:constexpr\s+)?int\s+(\w+)\s*\(\s*std::size_t\s+(\w+)"
    r"\s*\)\s*\{\s*return\s+([^;]+);", re.S)

_ALLOWED_EXPR = re.compile(r"^[\w\s()+\-*%<>]+$")


def _strip_casts(expr):
    return re.sub(r"static_cast<[^>]+>", "", expr)


def _evaluate(expr, env):
    expr = _strip_casts(expr).strip()
    if not _ALLOWED_EXPR.match(expr):
        raise ValueError(f"unsupported tag expression: {expr!r}")
    return eval(expr, {"__builtins__": {}}, dict(env))  # noqa: S307


def _strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


class TagModel:
    """Constants and unary int(size_t) tag functions from the headers."""

    def __init__(self):
        self.constants = {}   # name -> int
        self.functions = {}   # name -> python callable(int) -> int
        self.files = {}       # name -> (file, line)

    def load_header(self, relpath, text):
        clean = _strip_comments(text)
        for m in _CONST_RE.finditer(clean):
            name, expr = m.group(1), m.group(2)
            try:
                self.constants[name] = _evaluate(expr, self.constants)
            except Exception:
                continue
            self.files[name] = (relpath,
                                clean.count("\n", 0, m.start()) + 1)
        for m in _FUNC_RE.finditer(clean):
            name, param, expr = m.group(1), m.group(2), m.group(3)
            line = clean.count("\n", 0, m.start()) + 1
            env = dict(self.constants)

            def make(expr=expr, param=param, env=env):
                def fn(value):
                    scope = dict(env)
                    scope[param] = value
                    return _evaluate(expr, scope)
                return fn

            try:
                make()(0)  # probe
            except Exception:
                continue
            self.functions[name] = make()
            self.files[name] = (relpath, line)

    def known_names(self):
        return set(self.constants) | set(self.functions)


def _load_model(root):
    model = TagModel()
    loaded = []
    for rel in (config.TAGS_HEADER, config.FUSION_HEADER,
                config.SCHEDULE_HEADER, config.PS_HEADER):
        p = Path(root) / rel
        if p.is_file():
            model.load_header(rel, p.read_text(errors="replace"))
            loaded.append(rel)
    if not loaded:
        # Fixture mode: any tags-like headers directly under root.
        for p in sorted(Path(root).glob("*.hpp")):
            rel = p.name
            model.load_header(rel, p.read_text(errors="replace"))
            loaded.append(rel)
    return model, loaded


def _numeric_findings(model):
    findings = []
    c = model.constants
    f = model.functions

    def fail(name, message):
        file, line = model.files.get(name, ("tags.hpp", 1))
        findings.append(Finding(
            check="tag-discipline", file=file, line=line, message=message,
            key=f"tag-discipline|{file}|{name}|{message.split(';')[0]}"))

    ring_base = c.get("kRingBase")
    ring_stride = c.get("kRingStride")
    cast_base = c.get("kGroupCastBase")
    barrier = c.get("kBarrier")

    # Occupied set of the barrier family (tag and its +1 release), over a
    # full period of the round indexing.
    barrier_occupied = set()
    if "BarrierTag" in f:
        for r in range(16):
            v = f["BarrierTag"](r)
            barrier_occupied.update((v, v + 1))

    static = {n: v for n, v in c.items()
              if n not in ("kRingBase", "kRingStride", "kGroupCastBase",
                           "kJoinStateBase")}
    names = sorted(static)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if static[a] == static[b]:
                fail(a, f"static tags {a} and {b} share value "
                        f"{static[a]}; every control tag must be unique")
    for n, v in static.items():
        if n != "kBarrier" and v in barrier_occupied:
            fail(n, f"static tag {n}={v} lands inside the barrier "
                    f"family's occupied set {sorted(barrier_occupied)}")
        if cast_base is not None and v >= cast_base:
            fail(n, f"static tag {n}={v} collides with the round-indexed "
                    f"ranges (>= kGroupCastBase={cast_base})")

    if barrier is not None and barrier_occupied and cast_base is not None:
        if max(barrier_occupied) >= cast_base:
            fail("kBarrier", "barrier family overflows into the "
                             "round-indexed ranges")

    if "JoinStateTag" in f and cast_base is not None:
        top = f["JoinStateTag"](config.TAG_MIN_ROUNDS - 1)
        if top >= cast_base:
            fail("kJoinStateBase",
                 f"JoinStateTag({config.TAG_MIN_ROUNDS - 1})={top} "
                 f"reaches the group-cast range (kGroupCastBase="
                 f"{cast_base}); join-state rounds must stay below it")

    if "GroupCastTag" in f and ring_base is not None:
        top = f["GroupCastTag"](config.TAG_MIN_ROUNDS - 1)
        if top >= ring_base:
            fail("kGroupCastBase",
                 f"GroupCastTag({config.TAG_MIN_ROUNDS - 1})={top} "
                 f"reaches the ring range (kRingBase={ring_base}); "
                 "group-cast rounds must stay below it")

    if ring_stride is not None:
        # A ring pass of `world` members uses offsets [0, 2*world-2];
        # round-uniqueness needs stride >= 2*world-1.
        supported_world = (ring_stride + 1) // 2
        if supported_world < config.TAG_MIN_WORLD:
            fail("kRingStride",
                 f"kRingStride={ring_stride} only keeps ring tags "
                 f"round-unique up to world={supported_world}, below the "
                 f"required {config.TAG_MIN_WORLD}")
        if "RingTag" in f:
            top = f["RingTag"](config.TAG_MIN_ROUNDS - 1)
            if top + 2 * config.TAG_MIN_WORLD >= 2**31:
                fail("kRingStride",
                     f"RingTag({config.TAG_MIN_ROUNDS - 1}) overflows a "
                     "32-bit tag; shrink the stride or the round bound")

    if "FusionTagStride" in f:
        for world in (1, 2, 3, 8, 64, 1024, config.TAG_MIN_WORLD * 2):
            stride = f["FusionTagStride"](world)
            if stride < 2 * world - 1:
                fail("FusionTagStride",
                     f"FusionTagStride({world})={stride} is narrower than "
                     f"a ring pass's tag span ({2 * world - 1}); "
                     "concurrent buckets would collide")
        if ring_stride is not None:
            buckets = ring_stride // f["FusionTagStride"](8)
            if buckets < config.TAG_MIN_FUSED_BUCKETS_AT_W8:
                fail("FusionTagStride",
                     f"a fused call at a RingTag base only fits {buckets} "
                     f"buckets inside one round's range (need "
                     f"{config.TAG_MIN_FUSED_BUCKETS_AT_W8} at world=8)")

    # Schedule tag spans (schedule.hpp): every schedule must keep its pass
    # inside the fusion bucket stride (or concurrent fused buckets collide)
    # and inside one round's ring stride (or consecutive rounds collide).
    for span_name in ("RingTagSpan", "TreeTagSpan"):
        if span_name not in f:
            continue
        if "FusionTagStride" in f:
            for world in (1, 2, 3, 8, 64, 1024, config.TAG_MIN_WORLD * 2):
                span = f[span_name](world)
                stride = f["FusionTagStride"](world)
                if span > stride:
                    fail(span_name,
                         f"{span_name}({world})={span} exceeds "
                         f"FusionTagStride({world})={stride}; concurrent "
                         "fused buckets would collide under that schedule")
        if ring_stride is not None:
            span = f[span_name](config.TAG_MIN_WORLD)
            if span > ring_stride:
                fail(span_name,
                     f"{span_name}({config.TAG_MIN_WORLD})={span} exceeds "
                     f"kRingStride={ring_stride}; round-indexed tag bases "
                     f"are no longer round-unique at world="
                     f"{config.TAG_MIN_WORLD}")
    return findings


_NUMERIC_ONLY = re.compile(r"^[\d\s+\-*/%()xXa-fA-F]+$")


def _site_findings(program, model):
    findings = []
    known = model.known_names() | set(config.TAG_FAMILY_TOKENS)
    plumbing = set(config.TAG_PLUMBING_TOKENS)
    for fn in program.functions.values():
        if not fn.file.startswith(config.TAG_SCAN_PREFIXES) \
                and "/" in fn.file:
            continue
        for site in fn.tags:
            idents = set(re.findall(r"[A-Za-z_]\w*", site.expr))
            if idents & known or idents & plumbing:
                continue
            if any(i.startswith("k") and i[1:2].isupper() for i in idents):
                continue  # k-constant from a scoped enum / local header
            if _NUMERIC_ONLY.match(site.expr or ""):
                findings.append(Finding(
                    check="tag-discipline", file=fn.file, line=site.line,
                    message=(
                        f"raw numeric tag `{site.expr}` in {fn.qname} "
                        "({}); tags must come from rna/train/tags.hpp or "
                        "a named family so purges and round-uniqueness "
                        "account for them".format(
                            "send" if site.role == "send" else "receive")),
                    key=f"tag-discipline|{fn.file}|{fn.qname}|{site.expr}",
                ))
    return findings


def run(program, graph, root=None):
    if root is None:
        return []
    model, loaded = _load_model(root)
    if not model.known_names():
        return []
    return _numeric_findings(model) + _site_findings(program, model)
