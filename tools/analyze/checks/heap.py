"""no-heap-reachable: the compute/collective hot paths must not allocate.

Computes the call graph closure from nn::Network::ForwardBackward /
Evaluate and the collective hot paths, and flags every heap-allocation
site (operator new, malloc, allocating container calls, sized container
construction, make_unique/make_shared) in any reachable function that is
not a sanctioned allocation router (tensor::Arena, net::BufferPool, the
Tensor storage layer that routes through them). This is the whole-program
form of the retired `nn-raw-alloc` regex rule: a helper hiding a
`new float[]` three frames below ForwardBackward is flagged exactly like
a direct allocation.
"""

from .. import config
from ..ir import Finding


def _is_boundary(fn):
    return config.matches_any(fn.qname, config.HEAP_BOUNDARY_PATTERNS)


def run(program, graph, root=None):
    entries = [fn for fn in program.functions.values()
               if config.matches_any(fn.qname, config.HEAP_ENTRY_PATTERNS)]
    findings = []
    if not entries:
        return findings
    reachable = graph.reachable(entries, stop=_is_boundary)
    for fn in reachable:
        if _is_boundary(fn):
            continue
        for site in fn.allocs:
            path = graph.find_path(entries, fn, stop=_is_boundary)
            via = " -> ".join(p.name for p, _ in path) if path else fn.name
            findings.append(Finding(
                check="no-heap-reachable",
                file=fn.file, line=site.line,
                message=(
                    f"heap allocation `{site.detail}` in {fn.qname} is "
                    f"reachable from a hot-path entry ({via}); route it "
                    "through tensor::Arena or net::BufferPool, hoist it "
                    "out of the steady state, or justify with "
                    "analyze:allow(no-heap-reachable)"),
                key=f"no-heap-reachable|{fn.file}|{fn.qname}|{site.detail}",
            ))
    return findings
