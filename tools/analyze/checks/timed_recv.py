"""timed-recv: no path from a protocol entry point to an untimed receive.

Subsumes the retired `untimed-recv` regex rule and extends it across call
chains: the regex saw `fabric.Recv(...)` on a line; this check sees a
protocol entry point whose call-graph closure contains Mailbox::Get /
GetAny or Fabric::Recv / RecvAny — even when the receive hides behind a
helper in another file. The finding points at the call site on the path
(the frame the protocol author controls), not at the transport's own
wrapper bodies.
"""

from .. import config
from ..ir import Finding


def _is_sink(fn):
    return config.matches_any(fn.qname, config.RECV_SINK_PATTERNS)


def _is_sink_owner(fn):
    return config.matches_any(fn.qname, config.RECV_SINK_OWNERS)


def run(program, graph, root=None):
    entries = [fn for fn in program.functions.values()
               if config.matches_any(fn.qname, config.RECV_ENTRY_PATTERNS)
               and not _is_sink_owner(fn)]
    findings = []
    seen_keys = set()
    for entry in entries:
        # Traverse from each entry separately so the finding names the
        # protocol entry whose closure contains the untimed receive.
        reachable = graph.reachable([entry], stop=_is_sink_owner)
        for fn in reachable:
            if not _is_sink(fn):
                continue
            path = graph.find_path([entry], fn, stop=_is_sink_owner)
            if not path:
                continue
            # Traversal never descends into transport code, so the sink is
            # the path's final node; the frame before it is the culprit and
            # the sink element's line is the call site in that frame.
            if len(path) >= 2:
                culprit, culprit_line = path[-2][0], path[-1][1]
            else:
                culprit, culprit_line = entry, entry.line
            key = (f"timed-recv|{culprit.file}|{culprit.qname}|{fn.name}")
            if key in seen_keys:
                continue
            seen_keys.add(key)
            via = " -> ".join(p.name for p, _ in path)
            findings.append(Finding(
                check="timed-recv",
                file=culprit.file, line=culprit_line,
                message=(
                    f"untimed blocking receive {fn.qname} is reachable "
                    f"from protocol entry {entry.qname} ({via}); use the "
                    "deadline variants (RecvFor/RecvAnyFor/GetFor/"
                    "GetAnyFor) or a bounded-slice loop"),
                key=key,
            ))
    return findings
