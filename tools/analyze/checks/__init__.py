"""Check modules: each exposes run(program, graph, root) -> [Finding]."""

from . import heap, lock_order, tags, timed_recv

CHECKS = {
    "no-heap-reachable": heap.run,
    "timed-recv": timed_recv.run,
    "lock-order": lock_order.run,
    "tag-discipline": tags.run,
}
