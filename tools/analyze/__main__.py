"""Entry point: `python3 tools/analyze ...` or `python3 -m analyze ...`.

When invoked as a directory (`python3 tools/analyze`), there is no
package context, so bootstrap one before touching the relative imports.
"""

import sys

if __package__ in (None, ""):
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from analyze.cli import main
else:
    from .cli import main

sys.exit(main())
