"""A minimal C++ lexer for the textual frontend.

Produces a flat token stream with line numbers; comments, string and char
literal *contents*, and preprocessor directives are dropped (strings become
a single `str` token so expression shapes survive). This is not a general
C++ lexer — it covers the subset the RNA tree uses, and the analyzer's
self-tests (tests/analyze_fixtures/) lock the behaviours the checks rely
on.
"""

from dataclasses import dataclass

# Multi-char punctuators the parser cares about; everything else is split
# into single characters. `::` keeps qualified names in one walkable chain
# and `->` marks member calls.
_MULTI = ("::", "->")

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "punct" | "str" | "char"
    text: str
    line: int


def tokenize(text):
    """Lexes `text` into a list of Tokens."""
    tokens = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i += 2
            continue
        # Preprocessor directives: skip to end of line, honouring `\` line
        # continuations (the tree has no multi-line macros, but be safe).
        if c == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        # String / char literals (raw strings handled as a plain scan for
        # the closing delimiter; the tree only uses simple raw strings).
        if c == '"' or (c == "R" and nxt == '"'):
            start_line = line
            if c == "R":
                close = ')' + text[i + 2: text.index("(", i)] + '"'
                j = text.index("(", i) + 1
                end = text.find(close, j)
                end = n if end < 0 else end + len(close)
                line += text.count("\n", i, end)
                i = end
            else:
                i += 1
                while i < n:
                    if text[i] == "\\":
                        i += 2
                        continue
                    if text[i] == "\n":
                        line += 1
                    if text[i] == '"':
                        i += 1
                        break
                    i += 1
            tokens.append(Token("str", '""', start_line))
            continue
        if c == "'":
            # Char literal; digit separators (1'000) never follow an
            # identifier/number boundary handled here because numbers
            # consume them below.
            start_line = line
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == "'":
                    i += 1
                    break
                i += 1
            tokens.append(Token("char", "''", start_line))
            continue
        # Identifiers / keywords.
        if c in _ID_START:
            j = i
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line))
            i = j
            continue
        # Numbers (including 0x..., digit separators, suffixes, floats).
        if c in _DIGITS or (c == "." and nxt in _DIGITS):
            j = i
            while j < n and (text[j] in _ID_CONT or text[j] in ".'" or
                             (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j].replace("'", ""), line))
            i = j
            continue
        # Punctuation.
        for m in _MULTI:
            if text.startswith(m, i):
                tokens.append(Token("punct", m, line))
                i += len(m)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def match_forward(tokens, i, open_ch="(", close_ch=")"):
    """Index just past the group opened at tokens[i] (== open_ch)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def match_backward(tokens, i, open_ch="(", close_ch=")"):
    """Index of the opener matching the closer at tokens[i] (== close_ch)."""
    depth = 0
    while i >= 0:
        t = tokens[i].text
        if t == close_ch:
            depth += 1
        elif t == open_ch:
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return 0
