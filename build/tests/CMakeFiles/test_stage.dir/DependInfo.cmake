
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stage.cpp" "tests/CMakeFiles/test_stage.dir/test_stage.cpp.o" "gcc" "tests/CMakeFiles/test_stage.dir/test_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rna_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rna_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/rna_train.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rna_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/rna_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/rna_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rna_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rna_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rna_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/rna_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rna_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
