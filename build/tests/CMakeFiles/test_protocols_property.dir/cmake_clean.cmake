file(REMOVE_RECURSE
  "CMakeFiles/test_protocols_property.dir/test_protocols_property.cpp.o"
  "CMakeFiles/test_protocols_property.dir/test_protocols_property.cpp.o.d"
  "test_protocols_property"
  "test_protocols_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocols_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
