file(REMOVE_RECURSE
  "CMakeFiles/lstm_imbalance.dir/lstm_imbalance.cpp.o"
  "CMakeFiles/lstm_imbalance.dir/lstm_imbalance.cpp.o.d"
  "lstm_imbalance"
  "lstm_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
