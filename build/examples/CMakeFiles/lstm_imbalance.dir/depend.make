# Empty dependencies file for lstm_imbalance.
# This may be replaced when dependencies are built.
