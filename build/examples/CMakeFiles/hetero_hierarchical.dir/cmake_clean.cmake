file(REMOVE_RECURSE
  "CMakeFiles/hetero_hierarchical.dir/hetero_hierarchical.cpp.o"
  "CMakeFiles/hetero_hierarchical.dir/hetero_hierarchical.cpp.o.d"
  "hetero_hierarchical"
  "hetero_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
