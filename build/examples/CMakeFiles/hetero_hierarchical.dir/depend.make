# Empty dependencies file for hetero_hierarchical.
# This may be replaced when dependencies are built.
