# Empty compiler generated dependencies file for rna_train_cli.
# This may be replaced when dependencies are built.
