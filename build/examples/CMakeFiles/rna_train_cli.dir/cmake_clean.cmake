file(REMOVE_RECURSE
  "CMakeFiles/rna_train_cli.dir/rna_train_cli.cpp.o"
  "CMakeFiles/rna_train_cli.dir/rna_train_cli.cpp.o.d"
  "rna_train_cli"
  "rna_train_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_train_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
