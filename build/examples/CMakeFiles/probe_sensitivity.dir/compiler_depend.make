# Empty compiler generated dependencies file for probe_sensitivity.
# This may be replaced when dependencies are built.
