file(REMOVE_RECURSE
  "CMakeFiles/probe_sensitivity.dir/probe_sensitivity.cpp.o"
  "CMakeFiles/probe_sensitivity.dir/probe_sensitivity.cpp.o.d"
  "probe_sensitivity"
  "probe_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
