file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_transformer.dir/bench_fig8_transformer.cpp.o"
  "CMakeFiles/bench_fig8_transformer.dir/bench_fig8_transformer.cpp.o.d"
  "bench_fig8_transformer"
  "bench_fig8_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
