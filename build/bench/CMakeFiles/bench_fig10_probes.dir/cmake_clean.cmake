file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_probes.dir/bench_fig10_probes.cpp.o"
  "CMakeFiles/bench_fig10_probes.dir/bench_fig10_probes.cpp.o.d"
  "bench_fig10_probes"
  "bench_fig10_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
