# Empty dependencies file for bench_fig10_probes.
# This may be replaced when dependencies are built.
