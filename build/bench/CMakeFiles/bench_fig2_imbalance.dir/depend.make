# Empty dependencies file for bench_fig2_imbalance.
# This may be replaced when dependencies are built.
