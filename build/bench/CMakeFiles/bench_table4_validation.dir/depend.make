# Empty dependencies file for bench_table4_validation.
# This may be replaced when dependencies are built.
