file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rna.dir/bench_ablation_rna.cpp.o"
  "CMakeFiles/bench_ablation_rna.dir/bench_ablation_rna.cpp.o.d"
  "bench_ablation_rna"
  "bench_ablation_rna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
