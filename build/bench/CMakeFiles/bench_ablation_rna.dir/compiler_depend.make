# Empty compiler generated dependencies file for bench_ablation_rna.
# This may be replaced when dependencies are built.
