# Empty compiler generated dependencies file for bench_theorem52.
# This may be replaced when dependencies are built.
