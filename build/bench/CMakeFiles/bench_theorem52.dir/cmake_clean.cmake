file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem52.dir/bench_theorem52.cpp.o"
  "CMakeFiles/bench_theorem52.dir/bench_theorem52.cpp.o.d"
  "bench_theorem52"
  "bench_theorem52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
