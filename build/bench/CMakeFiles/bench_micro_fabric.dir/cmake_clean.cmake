file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fabric.dir/bench_micro_fabric.cpp.o"
  "CMakeFiles/bench_micro_fabric.dir/bench_micro_fabric.cpp.o.d"
  "bench_micro_fabric"
  "bench_micro_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
