# Empty dependencies file for bench_micro_fabric.
# This may be replaced when dependencies are built.
