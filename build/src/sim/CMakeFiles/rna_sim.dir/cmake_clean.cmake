file(REMOVE_RECURSE
  "CMakeFiles/rna_sim.dir/engine.cpp.o"
  "CMakeFiles/rna_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rna_sim.dir/protocols.cpp.o"
  "CMakeFiles/rna_sim.dir/protocols.cpp.o.d"
  "CMakeFiles/rna_sim.dir/workload.cpp.o"
  "CMakeFiles/rna_sim.dir/workload.cpp.o.d"
  "librna_sim.a"
  "librna_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
