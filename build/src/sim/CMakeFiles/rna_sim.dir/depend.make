# Empty dependencies file for rna_sim.
# This may be replaced when dependencies are built.
