file(REMOVE_RECURSE
  "librna_sim.a"
)
