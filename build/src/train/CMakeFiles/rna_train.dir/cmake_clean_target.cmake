file(REMOVE_RECURSE
  "librna_train.a"
)
