# Empty dependencies file for rna_train.
# This may be replaced when dependencies are built.
