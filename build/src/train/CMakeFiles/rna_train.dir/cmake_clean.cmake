file(REMOVE_RECURSE
  "CMakeFiles/rna_train.dir/checkpoint.cpp.o"
  "CMakeFiles/rna_train.dir/checkpoint.cpp.o.d"
  "CMakeFiles/rna_train.dir/config.cpp.o"
  "CMakeFiles/rna_train.dir/config.cpp.o.d"
  "CMakeFiles/rna_train.dir/monitor.cpp.o"
  "CMakeFiles/rna_train.dir/monitor.cpp.o.d"
  "CMakeFiles/rna_train.dir/partial_engine.cpp.o"
  "CMakeFiles/rna_train.dir/partial_engine.cpp.o.d"
  "CMakeFiles/rna_train.dir/stage.cpp.o"
  "CMakeFiles/rna_train.dir/stage.cpp.o.d"
  "CMakeFiles/rna_train.dir/worker.cpp.o"
  "CMakeFiles/rna_train.dir/worker.cpp.o.d"
  "librna_train.a"
  "librna_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
