file(REMOVE_RECURSE
  "CMakeFiles/rna_baselines.dir/adpsgd.cpp.o"
  "CMakeFiles/rna_baselines.dir/adpsgd.cpp.o.d"
  "CMakeFiles/rna_baselines.dir/eager.cpp.o"
  "CMakeFiles/rna_baselines.dir/eager.cpp.o.d"
  "CMakeFiles/rna_baselines.dir/horovod.cpp.o"
  "CMakeFiles/rna_baselines.dir/horovod.cpp.o.d"
  "CMakeFiles/rna_baselines.dir/psasync.cpp.o"
  "CMakeFiles/rna_baselines.dir/psasync.cpp.o.d"
  "CMakeFiles/rna_baselines.dir/sgp.cpp.o"
  "CMakeFiles/rna_baselines.dir/sgp.cpp.o.d"
  "librna_baselines.a"
  "librna_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
