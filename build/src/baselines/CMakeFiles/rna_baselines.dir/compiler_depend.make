# Empty compiler generated dependencies file for rna_baselines.
# This may be replaced when dependencies are built.
