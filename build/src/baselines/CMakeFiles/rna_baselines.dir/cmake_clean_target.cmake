file(REMOVE_RECURSE
  "librna_baselines.a"
)
