file(REMOVE_RECURSE
  "CMakeFiles/rna_tensor.dir/ops.cpp.o"
  "CMakeFiles/rna_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/rna_tensor.dir/tensor.cpp.o"
  "CMakeFiles/rna_tensor.dir/tensor.cpp.o.d"
  "librna_tensor.a"
  "librna_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
