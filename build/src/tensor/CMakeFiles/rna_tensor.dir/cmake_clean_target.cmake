file(REMOVE_RECURSE
  "librna_tensor.a"
)
