# Empty dependencies file for rna_tensor.
# This may be replaced when dependencies are built.
