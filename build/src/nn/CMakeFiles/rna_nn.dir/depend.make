# Empty dependencies file for rna_nn.
# This may be replaced when dependencies are built.
