file(REMOVE_RECURSE
  "librna_nn.a"
)
