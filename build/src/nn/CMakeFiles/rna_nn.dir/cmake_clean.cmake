file(REMOVE_RECURSE
  "CMakeFiles/rna_nn.dir/attention.cpp.o"
  "CMakeFiles/rna_nn.dir/attention.cpp.o.d"
  "CMakeFiles/rna_nn.dir/init.cpp.o"
  "CMakeFiles/rna_nn.dir/init.cpp.o.d"
  "CMakeFiles/rna_nn.dir/layer.cpp.o"
  "CMakeFiles/rna_nn.dir/layer.cpp.o.d"
  "CMakeFiles/rna_nn.dir/loss.cpp.o"
  "CMakeFiles/rna_nn.dir/loss.cpp.o.d"
  "CMakeFiles/rna_nn.dir/lstm.cpp.o"
  "CMakeFiles/rna_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/rna_nn.dir/network.cpp.o"
  "CMakeFiles/rna_nn.dir/network.cpp.o.d"
  "CMakeFiles/rna_nn.dir/norm.cpp.o"
  "CMakeFiles/rna_nn.dir/norm.cpp.o.d"
  "CMakeFiles/rna_nn.dir/optimizer.cpp.o"
  "CMakeFiles/rna_nn.dir/optimizer.cpp.o.d"
  "librna_nn.a"
  "librna_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
