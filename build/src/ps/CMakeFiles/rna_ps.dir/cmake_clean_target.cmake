file(REMOVE_RECURSE
  "librna_ps.a"
)
