# Empty compiler generated dependencies file for rna_ps.
# This may be replaced when dependencies are built.
