file(REMOVE_RECURSE
  "CMakeFiles/rna_ps.dir/server.cpp.o"
  "CMakeFiles/rna_ps.dir/server.cpp.o.d"
  "librna_ps.a"
  "librna_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
