# Empty compiler generated dependencies file for rna_data.
# This may be replaced when dependencies are built.
