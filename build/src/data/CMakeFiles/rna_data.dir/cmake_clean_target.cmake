file(REMOVE_RECURSE
  "librna_data.a"
)
