file(REMOVE_RECURSE
  "CMakeFiles/rna_data.dir/dataset.cpp.o"
  "CMakeFiles/rna_data.dir/dataset.cpp.o.d"
  "CMakeFiles/rna_data.dir/generators.cpp.o"
  "CMakeFiles/rna_data.dir/generators.cpp.o.d"
  "librna_data.a"
  "librna_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
