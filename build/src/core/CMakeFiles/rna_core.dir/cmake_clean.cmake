file(REMOVE_RECURSE
  "CMakeFiles/rna_core.dir/grouping.cpp.o"
  "CMakeFiles/rna_core.dir/grouping.cpp.o.d"
  "CMakeFiles/rna_core.dir/hierarchical.cpp.o"
  "CMakeFiles/rna_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/rna_core.dir/probe_policy.cpp.o"
  "CMakeFiles/rna_core.dir/probe_policy.cpp.o.d"
  "CMakeFiles/rna_core.dir/rna.cpp.o"
  "CMakeFiles/rna_core.dir/rna.cpp.o.d"
  "CMakeFiles/rna_core.dir/runner.cpp.o"
  "CMakeFiles/rna_core.dir/runner.cpp.o.d"
  "librna_core.a"
  "librna_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
