# Empty dependencies file for rna_core.
# This may be replaced when dependencies are built.
