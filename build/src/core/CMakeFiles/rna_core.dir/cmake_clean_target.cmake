file(REMOVE_RECURSE
  "librna_core.a"
)
