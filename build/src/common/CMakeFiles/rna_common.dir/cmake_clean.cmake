file(REMOVE_RECURSE
  "CMakeFiles/rna_common.dir/flags.cpp.o"
  "CMakeFiles/rna_common.dir/flags.cpp.o.d"
  "CMakeFiles/rna_common.dir/log.cpp.o"
  "CMakeFiles/rna_common.dir/log.cpp.o.d"
  "CMakeFiles/rna_common.dir/stats.cpp.o"
  "CMakeFiles/rna_common.dir/stats.cpp.o.d"
  "librna_common.a"
  "librna_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
