# Empty compiler generated dependencies file for rna_common.
# This may be replaced when dependencies are built.
