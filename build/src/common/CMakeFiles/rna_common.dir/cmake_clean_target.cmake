file(REMOVE_RECURSE
  "librna_common.a"
)
