file(REMOVE_RECURSE
  "librna_net.a"
)
