# Empty dependencies file for rna_net.
# This may be replaced when dependencies are built.
