file(REMOVE_RECURSE
  "CMakeFiles/rna_net.dir/fabric.cpp.o"
  "CMakeFiles/rna_net.dir/fabric.cpp.o.d"
  "librna_net.a"
  "librna_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
