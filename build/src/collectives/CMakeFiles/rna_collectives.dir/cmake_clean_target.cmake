file(REMOVE_RECURSE
  "librna_collectives.a"
)
