file(REMOVE_RECURSE
  "CMakeFiles/rna_collectives.dir/fusion.cpp.o"
  "CMakeFiles/rna_collectives.dir/fusion.cpp.o.d"
  "CMakeFiles/rna_collectives.dir/ring.cpp.o"
  "CMakeFiles/rna_collectives.dir/ring.cpp.o.d"
  "librna_collectives.a"
  "librna_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
