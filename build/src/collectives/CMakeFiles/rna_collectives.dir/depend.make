# Empty dependencies file for rna_collectives.
# This may be replaced when dependencies are built.
