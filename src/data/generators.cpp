#include "rna/data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "rna/common/check.hpp"

namespace rna::data {

LengthModel LengthModel::Scaled(double factor) const {
  RNA_CHECK_MSG(factor > 0.0, "scale factor must be positive");
  LengthModel m;
  m.mean = mean / factor;
  m.stddev = stddev / factor;
  m.min_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(min_len) / factor));
  m.max_len = std::max<std::size_t>(
      m.min_len + 1,
      static_cast<std::size_t>(static_cast<double>(max_len) / factor));
  return m;
}

std::size_t LengthModel::Sample(common::Rng& rng) const {
  // Log-normal parameterized by the desired arithmetic mean and stddev.
  // std::log(mean) below silently yields -inf/NaN lengths for a
  // non-positive mean; reject the misconfiguration instead.
  RNA_CHECK_MSG(mean > 0.0 && stddev >= 0.0,
                "length model needs mean > 0 and stddev >= 0");
  const double ratio = stddev / mean;
  const double sigma2 = std::log(1.0 + ratio * ratio);
  const double mu = std::log(mean) - 0.5 * sigma2;
  const double raw = rng.LogNormal(mu, std::sqrt(sigma2));
  const auto len = static_cast<std::size_t>(std::llround(raw));
  return std::clamp(len, min_len, max_len);
}

LengthModel VideoLengths(double scale) { return LengthModel{}.Scaled(scale); }

LengthModel SentenceLengths() {
  LengthModel m;
  m.mean = 24.0;
  m.stddev = 16.0;
  m.min_len = 3;
  m.max_len = 120;
  return m;
}

Dataset MakeGaussianClusters(std::size_t samples, std::size_t dim,
                             std::size_t classes, double spread,
                             std::uint64_t seed) {
  RNA_CHECK(classes >= 2 && dim >= 1 && samples >= classes);
  common::Rng rng(seed);

  // Random unit-ish directions as class centers, separated by construction.
  std::vector<std::vector<float>> centers(classes, std::vector<float>(dim));
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t d = 0; d < dim; ++d) {
      centers[c][d] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    // Normalize then scale so centers sit on a radius-2 sphere.
    double norm = 0.0;
    for (float v : centers[c]) norm += static_cast<double>(v) * v;
    norm = std::sqrt(std::max(norm, 1e-9));
    for (auto& v : centers[c]) v = static_cast<float>(v / norm * 2.0);
  }

  Dataset out;
  out.inputs = tensor::Tensor({samples, dim});
  out.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto c = static_cast<std::int32_t>(i % classes);
    out.labels[i] = c;
    float* row = out.inputs.Data() + i * dim;
    for (std::size_t d = 0; d < dim; ++d) {
      row[d] = centers[static_cast<std::size_t>(c)][d] +
               static_cast<float>(rng.Normal(0.0, spread));
    }
  }
  return out;
}

Dataset MakeTwoSpirals(std::size_t samples, std::size_t dim, double noise,
                       std::uint64_t seed) {
  RNA_CHECK(dim >= 2 && samples >= 2);
  common::Rng rng(seed);
  Dataset out;
  out.inputs = tensor::Tensor({samples, dim});
  out.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::int32_t label = static_cast<std::int32_t>(i % 2);
    const double t = rng.Uniform() * 3.0 * std::numbers::pi + 0.5;
    const double r = t / (3.0 * std::numbers::pi) * 2.0;
    const double phase = label == 0 ? 0.0 : std::numbers::pi;
    float* row = out.inputs.Data() + i * dim;
    row[0] = static_cast<float>(r * std::cos(t + phase) +
                                rng.Normal(0.0, noise));
    row[1] = static_cast<float>(r * std::sin(t + phase) +
                                rng.Normal(0.0, noise));
    for (std::size_t d = 2; d < dim; ++d) {
      row[d] = static_cast<float>(rng.Normal(0.0, noise));
    }
    out.labels[i] = label;
  }
  return out;
}

Dataset MakeSequenceDataset(std::size_t samples, std::size_t input_dim,
                            std::size_t classes, const LengthModel& lengths,
                            double noise, std::uint64_t seed) {
  RNA_CHECK(classes >= 2 && input_dim >= 1 && samples >= classes);
  common::Rng rng(seed);

  // Latent class patterns and per-class oscillation frequencies.
  std::vector<std::vector<float>> patterns(classes,
                                           std::vector<float>(input_dim));
  std::vector<double> freqs(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    for (auto& v : patterns[c]) v = static_cast<float>(rng.Normal(0.0, 1.0));
    freqs[c] = 0.15 + 0.25 * static_cast<double>(c) /
                          static_cast<double>(classes);
  }

  Dataset out;
  out.sequences.reserve(samples);
  out.labels.resize(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto c = static_cast<std::int32_t>(i % classes);
    out.labels[i] = c;
    const std::size_t len = lengths.Sample(rng);
    tensor::Tensor seq({len, input_dim});
    const auto& pattern = patterns[static_cast<std::size_t>(c)];
    const double freq = freqs[static_cast<std::size_t>(c)];
    for (std::size_t t = 0; t < len; ++t) {
      const auto signal =
          static_cast<float>(std::sin(freq * static_cast<double>(t)) + 0.5);
      float* row = seq.Data() + t * input_dim;
      for (std::size_t d = 0; d < input_dim; ++d) {
        row[d] = pattern[d] * signal + static_cast<float>(rng.Normal(0.0, noise));
      }
    }
    out.sequences.push_back(std::move(seq));
  }
  return out;
}

}  // namespace rna::data
