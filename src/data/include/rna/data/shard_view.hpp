#pragma once

// Zero-copy dataset views for the streaming data plane. A ShardView is a
// (dataset pointer, index list) pair: sample storage stays in the one
// immutable Dataset the run owns, and every worker's "shard" is just a list
// of global sample indices into it. This replaces the Dataset::Shard →
// Select deep copy that replicated the dataset ×world — at 1000-worker
// scale the per-worker footprint is now a few dozen bytes of indices, not a
// copy of every sample.
//
// Lifetime contract: the viewed Dataset must outlive the view. Every
// runner keeps the training/validation datasets alive by const reference
// for the whole run, so views handed to workers and monitors are safe.

#include <cstdint>
#include <span>
#include <vector>

#include "rna/data/dataset.hpp"

namespace rna::data {

class ShardView {
 public:
  ShardView() = default;

  /// View over every sample, in dataset order.
  static ShardView All(const Dataset& dataset);

  /// Round-robin shard: worker `rank` sees samples with index ≡ rank
  /// (mod world) — deterministic, disjoint, near-equal in count. When
  /// world > dataset.Size() the strided shard would be empty (the
  /// 1000-worker-world-over-a-small-dataset edge); instead of producing an
  /// unusable shard the view falls back to sharing every sample
  /// (SharedFallback() reports it), so overflow ranks train on the full
  /// dataset rather than aborting.
  static ShardView Strided(const Dataset& dataset, std::size_t rank,
                           std::size_t world);

  bool Valid() const { return data_ != nullptr; }
  std::size_t Size() const { return indices_.size(); }
  bool IsSequence() const { return data_->IsSequence(); }
  const Dataset& Owner() const { return *data_; }

  /// True when the strided shard was empty and the view shares all samples.
  bool SharedFallback() const { return shared_fallback_; }

  std::size_t GlobalIndex(std::size_t i) const { return indices_[i]; }
  std::int32_t Label(std::size_t i) const { return data_->labels[indices_[i]]; }

  /// The viewed sample's sequence tensor — the dataset's own storage, not a
  /// copy (tests pin the Data() pointer identity).
  const tensor::Tensor& Sequence(std::size_t i) const {
    return data_->sequences[indices_[i]];
  }
  std::size_t SequenceLength(std::size_t i) const {
    return Sequence(i).Rows();
  }

  /// Longest viewed sequence (nullptr for dense/empty views) — the
  /// worst-case sample the arena warm-up batch is built from.
  const tensor::Tensor* LongestSequence() const;

  /// Feature dimension of dense datasets.
  std::size_t InputDim() const { return data_->inputs.Cols(); }

  /// Assembles a batch from *local* view indices (each in [0, Size())).
  nn::Batch MakeBatch(std::span<const std::size_t> local) const;

  /// Batch of the contiguous local range [start, start + count) — the
  /// monitor's sliced eval without a scratch index vector per slice.
  nn::Batch MakeBatchRange(std::size_t start, std::size_t count) const;

  /// Bytes this view adds on top of the shared dataset (the index list).
  /// The zero-copy accounting in bench_data sums this across a 1000-worker
  /// world and holds it far below one dataset's sample bytes.
  std::size_t IndexBytes() const {
    return indices_.capacity() * sizeof(std::size_t);
  }

 private:
  ShardView(const Dataset* data, std::vector<std::size_t> indices,
            bool shared_fallback)
      : data_(data),
        indices_(std::move(indices)),
        shared_fallback_(shared_fallback) {}

  const Dataset* data_ = nullptr;
  std::vector<std::size_t> indices_;
  bool shared_fallback_ = false;
};

/// Total sample-payload bytes of a dataset (dense matrix or the sum of the
/// sequence tensors) — the denominator of the shared-storage accounting.
std::size_t DatasetSampleBytes(const Dataset& dataset);

}  // namespace rna::data
