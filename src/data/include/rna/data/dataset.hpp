#pragma once

// In-memory datasets with deterministic sharding — the data-parallel
// equivalent of each worker reading its own partition of ImageNet/UCF101.

#include <cstdint>
#include <span>
#include <vector>

#include "rna/common/rng.hpp"
#include "rna/nn/network.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::data {

struct Dataset {
  // Exactly one of `inputs` (dense N×D) or `sequences` (per-sample T_i×D)
  // is populated.
  tensor::Tensor inputs;
  std::vector<tensor::Tensor> sequences;
  std::vector<std::int32_t> labels;

  bool IsSequence() const { return !sequences.empty(); }
  std::size_t Size() const { return labels.size(); }

  /// Assembles a batch from sample indices.
  nn::Batch MakeBatch(std::span<const std::size_t> indices) const;

  /// Round-robin shard: worker `rank` keeps samples with index ≡ rank
  /// (mod world). Deterministic, disjoint, and near-equal in count.
  Dataset Shard(std::size_t rank, std::size_t world) const;

  /// Splits off the last `fraction` of samples as a validation set.
  std::pair<Dataset, Dataset> SplitHoldout(double fraction) const;

 private:
  Dataset Select(std::span<const std::size_t> indices) const;
};

/// How batches are assembled from the shard.
enum class SamplingMode {
  /// Uniform with replacement — mini-batch SGD's i.i.d. sampling.
  kUniform,
  /// Sequences of similar length are batched together (the standard
  /// bucketed batching for RNN/Transformer training). This is what makes
  /// per-batch compute follow the per-sample length distribution — the
  /// inherent load imbalance of Figure 2(b). Falls back to kUniform for
  /// dense datasets.
  kLengthBucketed,
};

/// Batch sampler over a dataset.
class BatchSampler {
 public:
  BatchSampler(const Dataset& dataset, std::size_t batch_size,
               std::uint64_t seed, SamplingMode mode = SamplingMode::kUniform);

  nn::Batch Next();

  std::size_t BatchSize() const { return batch_size_; }

 private:
  const Dataset* dataset_;
  std::size_t batch_size_;
  common::Rng rng_;
  SamplingMode mode_;
  std::vector<std::size_t> by_length_;  // sample indices sorted by length
};

}  // namespace rna::data
