#pragma once

// Synthetic dataset generators replacing the paper's real datasets (see the
// substitution table in DESIGN.md):
//   Gaussian clusters / two spirals  → CIFAR-10 / ImageNet classification
//   variable-length sequences        → UCF101 video features, WMT17 sentences
//
// The sequence-length model reproduces the shape of Figure 2(a): a clamped
// log-normal calibrated to the reported mean 186, stddev 97.7 and range
// [29, 1776] (optionally rescaled so tests stay fast).

#include <cstdint>

#include "rna/data/dataset.hpp"

namespace rna::data {

/// Clamped log-normal sequence-length model.
struct LengthModel {
  double mean = 186.0;
  double stddev = 97.7;
  std::size_t min_len = 29;
  std::size_t max_len = 1776;

  /// Returns a model with every parameter divided by `factor` (min length
  /// floored at 2) — used to scale the UCF101 distribution down for tests.
  LengthModel Scaled(double factor) const;

  std::size_t Sample(common::Rng& rng) const;
};

/// The paper's video-length distribution (Figure 2a), scaled down by
/// `scale` to keep CPU-only LSTM training tractable.
LengthModel VideoLengths(double scale = 8.0);

/// A sentence-length model for the Transformer stand-in (WMT17-like:
/// shorter, still heavy-tailed).
LengthModel SentenceLengths();

/// `classes` isotropic Gaussian blobs in `dim` dimensions. Class centers sit
/// on a scaled simplex; `spread` controls overlap (higher = harder).
Dataset MakeGaussianClusters(std::size_t samples, std::size_t dim,
                             std::size_t classes, double spread,
                             std::uint64_t seed);

/// Two interleaved spirals lifted into `dim` dimensions (first two carry the
/// signal, the rest are noise). A classic non-linearly-separable benchmark.
Dataset MakeTwoSpirals(std::size_t samples, std::size_t dim, double noise,
                       std::uint64_t seed);

/// Variable-length sequence classification. Each class c has a latent
/// pattern p_c; sample elements are x_t = p_c · s(t) + noise, where s(t) is a
/// class-specific slow oscillation, so the label is recoverable from the
/// sequence dynamics by an LSTM or attention model.
Dataset MakeSequenceDataset(std::size_t samples, std::size_t input_dim,
                            std::size_t classes, const LengthModel& lengths,
                            double noise, std::uint64_t seed);

}  // namespace rna::data
