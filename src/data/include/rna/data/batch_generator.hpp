#pragma once

// Streaming batch generation (marian-style): a BatchGenerator turns a
// ShardView into a deterministic stream of nn::Batch objects, assembling
// them on a background prefetch thread so batch assembly (index draws,
// sample copies into the batch) stays off the consumer's timed compute
// span. The consumer pops pre-assembled batches from a bounded
// BlockingQueue; the producer runs at most `prefetch_depth` batches ahead.
//
// Determinism contract: the emitted batch stream is a pure function of
// (view, options.seed, options) — in particular it is bitwise-identical
// with prefetching on or off, because the one producer assembles batches in
// stream order from a private Rng. This is what keeps the lockstep
// seed-reproducibility pins intact with prefetch enabled.
//
// Length-bucketed mode pre-assembles maxi-batch windows: it draws
// options.maxibatch × batch_size samples uniformly with replacement, sorts
// the window by sequence length, and cuts it into batches — so sequences of
// similar length share a batch (per-batch compute follows the length
// distribution, the paper's Fig. 2 imbalance) and a batch_size larger than
// the shard pads with *uniform* redraws instead of duplicating the longest
// sample (the old sampler's tail bias). Dense datasets fall back to
// uniform sampling.

#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "rna/common/queue.hpp"
#include "rna/common/rng.hpp"
#include "rna/data/shard_view.hpp"

namespace rna::data {

struct BatchGeneratorOptions {
  std::size_t batch_size = 16;
  std::uint64_t seed = 0;
  SamplingMode mode = SamplingMode::kUniform;
  /// Prefetch queue depth. 0 disables the background thread: Next()
  /// assembles synchronously (the comparison baseline and the low-footprint
  /// mode for enormous worlds).
  std::size_t prefetch_depth = 2;
  /// Bucketing window, in batches, sorted by length before cutting.
  std::size_t maxibatch = 8;
};

class BatchGenerator {
 public:
  /// The view must be non-empty; the viewed dataset must outlive the
  /// generator.
  BatchGenerator(ShardView view, const BatchGeneratorOptions& options);
  ~BatchGenerator();

  BatchGenerator(const BatchGenerator&) = delete;
  BatchGenerator& operator=(const BatchGenerator&) = delete;

  /// Next batch in the deterministic stream. With prefetching enabled this
  /// pops a pre-assembled batch (lazily starting the producer thread on
  /// first call); otherwise it assembles inline.
  nn::Batch Next();

  /// Closes the queue and joins the producer. Safe to call repeatedly;
  /// called by the destructor. A producer blocked on the full queue wakes
  /// and exits. Next() must not be called after Stop().
  void Stop();

  std::size_t BatchSize() const { return options_.batch_size; }
  const ShardView& View() const { return view_; }

  /// How batches reached the consumer — tests assert steady-state steps
  /// consume prefetched batches, not consumer-side assembly.
  std::size_t PrefetchedPops() const { return prefetched_pops_.load(); }
  std::size_t SynchronousAssemblies() const { return sync_assemblies_.load(); }

 private:
  void EnsureProducer();
  void ProducerLoop();
  /// Assembles the next batch in stream order. Runs on exactly one thread:
  /// the producer when prefetching, else the consumer inside Next().
  nn::Batch AssembleNext();
  void RefillWindow();

  ShardView view_;
  BatchGeneratorOptions options_;
  common::Rng rng_;  // touched only by the assembling thread
  // Pending batch index-lists of the current maxi-batch window (bucketed
  // mode); producer-side state like rng_.
  std::deque<std::vector<std::size_t>> window_;
  common::BlockingQueue<nn::Batch> queue_;
  std::thread producer_;
  bool producer_started_ = false;  // consumer-thread-only
  std::atomic<std::size_t> prefetched_pops_{0};
  std::atomic<std::size_t> sync_assemblies_{0};
};

}  // namespace rna::data
