#include "rna/data/batch_generator.hpp"

#include <algorithm>
#include <utility>

#include "rna/common/check.hpp"

namespace rna::data {

BatchGenerator::BatchGenerator(ShardView view,
                               const BatchGeneratorOptions& options)
    : view_(std::move(view)),
      options_(options),
      rng_(options.seed),
      queue_(options.prefetch_depth) {
  RNA_CHECK_MSG(view_.Valid() && view_.Size() > 0,
                "cannot generate batches from an empty view");
  RNA_CHECK_MSG(options_.batch_size > 0, "batch size must be positive");
  RNA_CHECK_MSG(options_.maxibatch > 0, "maxibatch window must be positive");
  if (!view_.IsSequence()) options_.mode = SamplingMode::kUniform;
}

BatchGenerator::~BatchGenerator() { Stop(); }

void BatchGenerator::Stop() {
  queue_.Close();
  if (producer_.joinable()) producer_.join();
}

void BatchGenerator::EnsureProducer() {
  if (producer_started_) return;
  producer_started_ = true;
  producer_ = std::thread([this] { ProducerLoop(); });
}

void BatchGenerator::ProducerLoop() {
  while (true) {
    nn::Batch batch = AssembleNext();
    // Push blocks while `prefetch_depth` batches sit unconsumed; a false
    // return means Stop() closed the queue.
    if (!queue_.Push(std::move(batch))) return;
  }
}

nn::Batch BatchGenerator::Next() {
  if (options_.prefetch_depth == 0) {
    sync_assemblies_.fetch_add(1, std::memory_order_relaxed);
    return AssembleNext();
  }
  EnsureProducer();
  std::optional<nn::Batch> batch = queue_.Pop();
  RNA_CHECK_MSG(batch.has_value(), "BatchGenerator used after Stop()");
  prefetched_pops_.fetch_add(1, std::memory_order_relaxed);
  return std::move(*batch);
}

void BatchGenerator::RefillWindow() {
  // Draw one maxi-batch of uniform-with-replacement samples, sort by
  // length (stable, so ties keep draw order and the stream stays a pure
  // function of the seed), and cut into batch-sized index lists.
  const std::size_t draws = options_.maxibatch * options_.batch_size;
  std::vector<std::size_t> pool(draws);
  for (auto& i : pool) i = rng_.UniformInt(view_.Size());
  std::stable_sort(pool.begin(), pool.end(),
                   [this](std::size_t a, std::size_t b) {
                     return view_.SequenceLength(a) < view_.SequenceLength(b);
                   });
  for (std::size_t b = 0; b < options_.maxibatch; ++b) {
    window_.emplace_back(pool.begin() + b * options_.batch_size,
                         pool.begin() + (b + 1) * options_.batch_size);
  }
}

nn::Batch BatchGenerator::AssembleNext() {
  if (options_.mode == SamplingMode::kLengthBucketed) {
    if (window_.empty()) RefillWindow();
    std::vector<std::size_t> indices = std::move(window_.front());
    window_.pop_front();
    return view_.MakeBatch(indices);
  }
  std::vector<std::size_t> indices(options_.batch_size);
  for (auto& i : indices) i = rng_.UniformInt(view_.Size());
  return view_.MakeBatch(indices);
}

}  // namespace rna::data
