#include "rna/data/dataset.hpp"

#include <algorithm>

#include "rna/common/check.hpp"

namespace rna::data {

nn::Batch Dataset::MakeBatch(std::span<const std::size_t> indices) const {
  nn::Batch batch;
  batch.labels.reserve(indices.size());
  if (IsSequence()) {
    batch.sequences.reserve(indices.size());
    for (std::size_t idx : indices) {
      RNA_CHECK(idx < Size());
      batch.sequences.push_back(sequences[idx]);
      batch.labels.push_back(labels[idx]);
    }
  } else {
    const std::size_t dim = inputs.Cols();
    batch.inputs = tensor::Tensor({indices.size(), dim});
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const std::size_t idx = indices[i];
      RNA_CHECK(idx < Size());
      const float* src = inputs.Data() + idx * dim;
      std::copy(src, src + dim, batch.inputs.Data() + i * dim);
      batch.labels.push_back(labels[idx]);
    }
  }
  return batch;
}

Dataset Dataset::Select(std::span<const std::size_t> indices) const {
  Dataset out;
  out.labels.reserve(indices.size());
  if (IsSequence()) {
    out.sequences.reserve(indices.size());
    for (std::size_t idx : indices) {
      out.sequences.push_back(sequences[idx]);
      out.labels.push_back(labels[idx]);
    }
  } else {
    const std::size_t dim = inputs.Cols();
    out.inputs = tensor::Tensor({indices.size(), dim});
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const float* src = inputs.Data() + indices[i] * dim;
      std::copy(src, src + dim, out.inputs.Data() + i * dim);
      out.labels.push_back(labels[indices[i]]);
    }
  }
  return out;
}

Dataset Dataset::Shard(std::size_t rank, std::size_t world) const {
  RNA_CHECK_MSG(world > 0 && rank < world, "invalid shard rank/world");
  std::vector<std::size_t> indices;
  for (std::size_t i = rank; i < Size(); i += world) indices.push_back(i);
  if (indices.empty() && Size() > 0) {
    // world > Size(): round-robin leaves this rank nothing, and an empty
    // shard aborts every sampler downstream. Fall back to sharing all
    // samples so overflow ranks train on the full dataset. (ShardView is
    // the zero-copy way to get this; Shard keeps the owning-copy API.)
    for (std::size_t i = 0; i < Size(); ++i) indices.push_back(i);
  }
  return Select(indices);
}

std::pair<Dataset, Dataset> Dataset::SplitHoldout(double fraction) const {
  RNA_CHECK_MSG(fraction > 0.0 && fraction < 1.0, "fraction must be in (0,1)");
  RNA_CHECK_MSG(Size() >= 2, "need at least 2 samples to split");
  auto holdout =
      static_cast<std::size_t>(static_cast<double>(Size()) * fraction);
  // floor() yields 0 for small datasets (Size=10 at fraction=0.05), and an
  // empty validation set crashes downstream eval; keep both sides >= 1.
  holdout = std::clamp<std::size_t>(holdout, 1, Size() - 1);
  const std::size_t train_n = Size() - holdout;
  std::vector<std::size_t> train_idx(train_n), val_idx(holdout);
  for (std::size_t i = 0; i < train_n; ++i) train_idx[i] = i;
  for (std::size_t i = 0; i < holdout; ++i) val_idx[i] = train_n + i;
  return {Select(train_idx), Select(val_idx)};
}

BatchSampler::BatchSampler(const Dataset& dataset, std::size_t batch_size,
                           std::uint64_t seed, SamplingMode mode)
    : dataset_(&dataset), batch_size_(batch_size), rng_(seed), mode_(mode) {
  RNA_CHECK_MSG(dataset.Size() > 0, "cannot sample an empty dataset");
  RNA_CHECK_MSG(batch_size > 0, "batch size must be positive");
  if (mode_ == SamplingMode::kLengthBucketed && dataset.IsSequence()) {
    by_length_.resize(dataset.Size());
    for (std::size_t i = 0; i < by_length_.size(); ++i) by_length_[i] = i;
    std::sort(by_length_.begin(), by_length_.end(),
              [&](std::size_t a, std::size_t b) {
                return dataset.sequences[a].Rows() < dataset.sequences[b].Rows();
              });
  } else {
    mode_ = SamplingMode::kUniform;
  }
}

nn::Batch BatchSampler::Next() {
  std::vector<std::size_t> indices(batch_size_);
  if (mode_ == SamplingMode::kLengthBucketed) {
    // A random window in length-sorted order: similar-length sequences end
    // up in the same batch, so batch time tracks the length distribution.
    const std::size_t n = dataset_->Size();
    const std::size_t span = n > batch_size_ ? n - batch_size_ + 1 : 1;
    const std::size_t start = rng_.UniformInt(span);
    for (std::size_t i = 0; i < batch_size_; ++i) {
      // Wrap within the length-sorted order: clamping to n-1 would pad a
      // batch_size > n batch with duplicates of the *longest* sequence
      // (by_length_ is ascending), systematically inflating batch compute.
      indices[i] = by_length_[(start + i) % n];
    }
  } else {
    for (auto& idx : indices) idx = rng_.UniformInt(dataset_->Size());
  }
  return dataset_->MakeBatch(indices);
}

}  // namespace rna::data
