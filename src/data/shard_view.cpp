#include "rna/data/shard_view.hpp"

#include <numeric>

#include "rna/common/check.hpp"

namespace rna::data {

ShardView ShardView::All(const Dataset& dataset) {
  std::vector<std::size_t> indices(dataset.Size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  return ShardView(&dataset, std::move(indices), /*shared_fallback=*/false);
}

ShardView ShardView::Strided(const Dataset& dataset, std::size_t rank,
                             std::size_t world) {
  RNA_CHECK_MSG(world > 0 && rank < world, "invalid shard rank/world");
  std::vector<std::size_t> indices;
  indices.reserve(dataset.Size() / world + 1);
  for (std::size_t i = rank; i < dataset.Size(); i += world) {
    indices.push_back(i);
  }
  if (indices.empty() && dataset.Size() > 0) {
    // world > Size(): round-robin leaves this rank nothing. Share every
    // sample instead — overflow ranks train on the full dataset.
    return ShardView(&dataset, All(dataset).indices_,
                     /*shared_fallback=*/true);
  }
  return ShardView(&dataset, std::move(indices), /*shared_fallback=*/false);
}

const tensor::Tensor* ShardView::LongestSequence() const {
  if (!IsSequence()) return nullptr;
  const tensor::Tensor* longest = nullptr;
  for (std::size_t i = 0; i < Size(); ++i) {
    const tensor::Tensor& seq = Sequence(i);
    if (longest == nullptr || seq.Rows() > longest->Rows()) longest = &seq;
  }
  return longest;
}

nn::Batch ShardView::MakeBatch(std::span<const std::size_t> local) const {
  nn::Batch batch;
  batch.labels.reserve(local.size());
  if (IsSequence()) {
    batch.sequences.reserve(local.size());
    for (std::size_t i : local) {
      RNA_CHECK(i < Size());
      batch.sequences.push_back(Sequence(i));
      batch.labels.push_back(Label(i));
    }
  } else {
    const std::size_t dim = InputDim();
    batch.inputs = tensor::Tensor({local.size(), dim});
    for (std::size_t out = 0; out < local.size(); ++out) {
      const std::size_t i = local[out];
      RNA_CHECK(i < Size());
      const float* src = data_->inputs.Data() + indices_[i] * dim;
      std::copy(src, src + dim, batch.inputs.Data() + out * dim);
      batch.labels.push_back(Label(i));
    }
  }
  return batch;
}

nn::Batch ShardView::MakeBatchRange(std::size_t start,
                                    std::size_t count) const {
  RNA_CHECK(start + count <= Size());
  nn::Batch batch;
  batch.labels.reserve(count);
  if (IsSequence()) {
    batch.sequences.reserve(count);
    for (std::size_t i = start; i < start + count; ++i) {
      batch.sequences.push_back(Sequence(i));
      batch.labels.push_back(Label(i));
    }
  } else {
    const std::size_t dim = InputDim();
    batch.inputs = tensor::Tensor({count, dim});
    for (std::size_t out = 0; out < count; ++out) {
      const float* src = data_->inputs.Data() + indices_[start + out] * dim;
      std::copy(src, src + dim, batch.inputs.Data() + out * dim);
      batch.labels.push_back(Label(start + out));
    }
  }
  return batch;
}

std::size_t DatasetSampleBytes(const Dataset& dataset) {
  if (!dataset.IsSequence()) return dataset.inputs.Size() * sizeof(float);
  std::size_t bytes = 0;
  for (const auto& seq : dataset.sequences) bytes += seq.Size() * sizeof(float);
  return bytes;
}

}  // namespace rna::data
