#include "rna/collectives/schedule.hpp"

#include <algorithm>

#include "rna/collectives/allreduce.hpp"
#include "rna/common/check.hpp"

namespace rna::collectives {

const char* ScheduleName(Schedule s) {
  switch (s) {
    case Schedule::kRing:
      return "ring";
    case Schedule::kTree:
      return "tree";
    case Schedule::kStragglar:
      return "stragglar";
  }
  return "unknown";
}

std::optional<Schedule> ParseSchedule(std::string_view name) {
  if (name == "ring") return Schedule::kRing;
  if (name == "tree") return Schedule::kTree;
  if (name == "stragglar") return Schedule::kStragglar;
  return std::nullopt;
}

TreePass::TreePass(const CollectiveContext& ctx,
                   const CollectiveOptions& options, std::span<float> data)
    : fabric_(&ctx.fabric),
      group_(&ctx.group),
      data_(data),
      tag_base_(options.tag_base),
      hop_timeout_(options.hop_timeout),
      format_(ToWireFormat(options.compression)),
      topk_fraction_(options.topk_fraction),
      exact_tail_(options.exact_tail),
      feedback_(options.compression == Compression::kNone ? nullptr
                                                          : options.feedback),
      feedback_offset_(options.feedback_offset),
      world_(ctx.group.Size()) {
  RNA_CHECK_MSG(world_ > 0 && ctx.my_index < world_, "bad group index");
  RNA_CHECK_MSG(exact_tail_ <= data_.size(),
                "exact tail larger than the buffer");
  if (format_ == net::wire::Format::kTopK) {
    RNA_CHECK_MSG(topk_fraction_ > 0.0 && topk_fraction_ <= 1.0,
                  "top-k fraction must be in (0, 1]");
  }
  if (feedback_ != nullptr &&
      feedback_->Size() < feedback_offset_ + data_.size()) {
    feedback_->EnsureSize(feedback_offset_ + data_.size());
  }
  if (world_ == 1) return;  // stage_ stays kDone
  pos_ = ctx.my_index;
  self_ = ctx.group.At(ctx.my_index);
  top_mask_ = 1;
  while (top_mask_ * 2 < world_) top_mask_ *= 2;
  level_ = 0;
  if (pos_ != 0) {
    level_ = pos_ & (~pos_ + 1);  // lowest set bit: the up-sweep round
  }
  stage_ = Stage::kReduce;
  reduce_mask_ = 1;
}

std::vector<float> TreePass::EncodeFrame() {
  std::span<float> residual{};
  if (feedback_ != nullptr) {
    residual = feedback_->Slice(feedback_offset_, data_.size());
  }
  const std::size_t k =
      format_ == net::wire::Format::kTopK
          ? net::wire::TopKCount(data_.size() - exact_tail_, topk_fraction_)
          : 0;
  return net::wire::Encode(fabric_->Pool(), format_, data_, residual, k,
                           exact_tail_);
}

void TreePass::SendFrame(std::size_t to_pos, int tag, bool last) {
  RNA_CHECK_MSG(frame_.has_value(), "tree frame missing");
  net::Message msg;
  msg.tag = tag;
  if (last) {
    msg.data = std::move(*frame_);
    frame_.reset();
  } else {
    msg.data = fabric_->Pool().Acquire(frame_->size());
    std::copy(frame_->begin(), frame_->end(), msg.data.begin());
  }
  fabric_->CountWire(format_, data_.size() * sizeof(float),
                     msg.data.size() * sizeof(float));
  fabric_->Send(self_, group_->At(to_pos), std::move(msg));
}

void TreePass::BeginBroadcast() {
  // Root: encode the finished sum once; every child (and their subtrees)
  // receives this exact frame, and the root self-applies the lossy
  // round-trip so all ranks end bitwise identical.
  frame_ = EncodeFrame();
  if (format_ != net::wire::Format::kRaw) {
    net::wire::Decode(format_, *frame_, data_, net::wire::Fold::kAssign,
                      exact_tail_);
  }
  bcast_mask_ = top_mask_;
  stage_ = Stage::kBcastSend;
}

void TreePass::LaunchHop() {
  if (failed_) return;
  for (;;) {
    switch (stage_) {
      case Stage::kReduce: {
        if (reduce_mask_ >= world_) {
          // Root folded every subtree; fan the result out.
          BeginBroadcast();
          continue;
        }
        if ((pos_ & reduce_mask_) != 0) {
          // My up-sweep round: send the partial sum and wait for the
          // broadcast to come back down.
          frame_ = EncodeFrame();
          SendFrame(pos_ - reduce_mask_,
                    tag_base_ + static_cast<int>(pos_), /*last=*/true);
          stage_ = Stage::kBcastRecv;
          continue;
        }
        if (pos_ + reduce_mask_ < world_) return;  // next op is a receive
        reduce_mask_ <<= 1;
        continue;
      }
      case Stage::kBcastRecv:
        return;  // next op is a receive
      case Stage::kBcastSend: {
        while (bcast_mask_ > 0) {
          if (pos_ + bcast_mask_ < world_) {
            SendFrame(pos_ + bcast_mask_,
                      tag_base_ +
                          static_cast<int>(world_ + pos_ + bcast_mask_),
                      /*last=*/bcast_mask_ == 1);
          }
          bcast_mask_ >>= 1;
        }
        if (frame_.has_value()) {
          // No child took ownership (tail position): return the frame.
          fabric_->Pool().Recycle(std::move(*frame_));
          frame_.reset();
        }
        stage_ = Stage::kDone;
        continue;
      }
      case Stage::kDone:
        return;
    }
  }
}

bool TreePass::CompleteHop() {
  if (failed_) return false;
  LaunchHop();
  if (Done()) return true;
  if (stage_ == Stage::kReduce) {
    const std::size_t child = pos_ + reduce_mask_;
    auto in = detail::RecvHop(*fabric_, self_,
                              tag_base_ + static_cast<int>(child),
                              hop_timeout_);
    if (!in.has_value()) {
      failed_ = true;
      return false;
    }
    net::wire::Decode(format_, in->data, data_, net::wire::Fold::kAdd,
                      exact_tail_);
    fabric_->Pool().Recycle(std::move(in->data));
    reduce_mask_ <<= 1;
    LaunchHop();
    return true;
  }
  RNA_CHECK_MSG(stage_ == Stage::kBcastRecv, "tree pass out of sequence");
  auto in = detail::RecvHop(*fabric_, self_,
                            tag_base_ + static_cast<int>(world_ + pos_),
                            hop_timeout_);
  if (!in.has_value()) {
    failed_ = true;
    return false;
  }
  net::wire::Decode(format_, in->data, data_, net::wire::Fold::kAssign,
                    exact_tail_);
  const bool has_children = level_ > 1 && pos_ + 1 < world_;
  if (has_children) {
    frame_ = std::move(in->data);
    bcast_mask_ = level_ >> 1;
  } else {
    fabric_->Pool().Recycle(std::move(in->data));
    bcast_mask_ = 0;
  }
  stage_ = Stage::kBcastSend;
  LaunchHop();
  return true;
}

}  // namespace rna::collectives
