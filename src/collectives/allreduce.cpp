#include "rna/collectives/allreduce.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::collectives {

Pass::Pass(const CollectiveContext& ctx, const CollectiveOptions& options,
           std::span<float> data)
    : impl_(options.schedule == Schedule::kTree
                ? std::variant<RingPass, TreePass>(
                      std::in_place_type<TreePass>, ctx, options, data)
                : std::variant<RingPass, TreePass>(
                      std::in_place_type<RingPass>, ctx, options, data)) {}

void Pass::LaunchHop() {
  std::visit([](auto& pass) { pass.LaunchHop(); }, impl_);
}

bool Pass::CompleteHop() {
  return std::visit([](auto& pass) { return pass.CompleteHop(); }, impl_);
}

bool Pass::Done() const {
  return std::visit([](const auto& pass) { return pass.Done(); }, impl_);
}

bool Pass::Failed() const {
  return std::visit([](const auto& pass) { return pass.Failed(); }, impl_);
}

bool AllreduceFor(const CollectiveContext& ctx,
                  const CollectiveOptions& options, std::span<float> data) {
  Pass pass(ctx, options, data);
  while (!pass.Done()) {
    pass.LaunchHop();
    if (!pass.CompleteHop()) return false;
  }
  return true;
}

void Allreduce(const CollectiveContext& ctx, const CollectiveOptions& options,
               std::span<float> data) {
  RNA_CHECK_MSG(AllreduceFor(ctx, options, data),
                "fabric shut down mid-collective");
}

PartialResult PartialAllreduceFor(const CollectiveContext& ctx,
                                  const CollectiveOptions& options,
                                  std::span<float> data, bool contributes) {
  // The contributor flag travels as one extra element appended to the
  // payload — carried bit-exact through every compression policy via the
  // wire formats' exact tail. A single pass reduces both gradient and Σw.
  // The working buffer comes from the fabric pool: a round-per-millisecond
  // protocol would otherwise allocate a gradient-sized vector per round.
  net::Fabric& fabric = ctx.fabric;
  std::vector<float> buffer = fabric.Pool().Acquire(data.size() + 1);
  if (contributes) {
    std::copy(data.begin(), data.end(), buffer.begin());
    buffer.back() = 1.0f;
  } else {
    // Null gradient: keep the communication graph, contribute zeros.
    std::fill(buffer.begin(), buffer.end(), 0.0f);
  }

  CollectiveOptions partial = options;
  partial.exact_tail = 1;

  PartialResult result;
  if (!AllreduceFor(ctx, partial, buffer)) {
    // Aborted mid-pass (member crash or shutdown): the partial sums are
    // meaningless — zero the output and tell the caller to skip the step.
    RNA_CHECK_MSG(options.hop_timeout > 0.0, "fabric shut down mid-collective");
    std::fill(data.begin(), data.end(), 0.0f);
    fabric.Pool().Recycle(std::move(buffer));
    result.ok = false;
    return result;
  }
  result.contributors = static_cast<std::size_t>(std::lround(buffer.back()));
  if (result.contributors > 0) {
    const float w = 1.0f / static_cast<float>(result.contributors);
    common::simd::ScaledCopy(
        data, std::span<const float>(buffer.data(), data.size()), w);
  } else {
    std::fill(data.begin(), data.end(), 0.0f);
  }
  fabric.Pool().Recycle(std::move(buffer));
  return result;
}

}  // namespace rna::collectives
