#include "rna/collectives/compression.hpp"

#include <algorithm>

#include "rna/common/check.hpp"

namespace rna::collectives {

const char* CompressionName(Compression c) {
  switch (c) {
    case Compression::kNone:
      return "none";
    case Compression::kFp16:
      return "fp16";
    case Compression::kInt8:
      return "int8";
    case Compression::kTopK:
      return "topk";
  }
  return "unknown";
}

std::optional<Compression> ParseCompression(std::string_view name) {
  if (name == "none") return Compression::kNone;
  if (name == "fp16") return Compression::kFp16;
  if (name == "int8") return Compression::kInt8;
  if (name == "topk") return Compression::kTopK;
  return std::nullopt;
}

net::wire::Format ToWireFormat(Compression c) {
  switch (c) {
    case Compression::kNone:
      return net::wire::Format::kRaw;
    case Compression::kFp16:
      return net::wire::Format::kFp16;
    case Compression::kInt8:
      return net::wire::Format::kInt8;
    case Compression::kTopK:
      return net::wire::Format::kTopK;
  }
  return net::wire::Format::kRaw;
}

void ErrorFeedback::EnsureSize(std::size_t n) {
  if (residual_.size() == n) return;
  if (n > residual_.size()) {
    residual_.resize(n, 0.0f);
  } else {
    residual_.assign(n, 0.0f);
  }
}

void ErrorFeedback::Clear() {
  std::fill(residual_.begin(), residual_.end(), 0.0f);
}

std::span<float> ErrorFeedback::Slice(std::size_t offset, std::size_t n) {
  RNA_CHECK_MSG(offset + n <= residual_.size(),
                "error-feedback slice out of range");
  return std::span<float>(residual_).subspan(offset, n);
}

}  // namespace rna::collectives
