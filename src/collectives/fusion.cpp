#include "rna/collectives/fusion.hpp"

#include <algorithm>
#include <optional>

#include "rna/common/check.hpp"

namespace rna::collectives {

std::size_t FusionPlan::MaxBucketElements() const {
  std::size_t peak = 0;
  for (const auto& b : buckets) peak = std::max(peak, b.elements);
  return peak;
}

FusionPlan FusionPlan::Build(std::span<const TensorSpec> specs,
                             std::size_t max_bucket_elements) {
  RNA_CHECK_MSG(max_bucket_elements > 0, "bucket size must be positive");
  FusionPlan plan;
  Bucket current;
  current.first_tensor = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::size_t n = specs[i].elements;
    const bool fits =
        current.tensor_count == 0 || current.elements + n <= max_bucket_elements;
    if (!fits) {
      plan.buckets.push_back(current);
      current = Bucket{};
      current.first_tensor = i;
    }
    current.elements += n;
    ++current.tensor_count;
  }
  if (current.tensor_count > 0) plan.buckets.push_back(current);
  return plan;
}

namespace {

void PackBucket(const FusionPlan::Bucket& bucket,
                std::span<const TensorSpec> specs,
                std::span<float* const> tensors, std::span<float> staging) {
  std::size_t offset = 0;
  for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
    const std::size_t idx = bucket.first_tensor + t;
    RNA_CHECK(idx < specs.size());
    std::copy(tensors[idx], tensors[idx] + specs[idx].elements,
              staging.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += specs[idx].elements;
  }
  RNA_CHECK(offset == bucket.elements);
}

void UnpackBucket(const FusionPlan::Bucket& bucket,
                  std::span<const TensorSpec> specs,
                  std::span<float* const> tensors,
                  std::span<const float> staging) {
  std::size_t offset = 0;
  for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
    const std::size_t idx = bucket.first_tensor + t;
    std::copy(staging.begin() + static_cast<std::ptrdiff_t>(offset),
              staging.begin() +
                  static_cast<std::ptrdiff_t>(offset + specs[idx].elements),
              tensors[idx]);
    offset += specs[idx].elements;
  }
}

}  // namespace

bool FusedAllreduceFor(const CollectiveContext& ctx,
                       const CollectiveOptions& options,
                       std::span<const TensorSpec> specs,
                       std::span<float* const> tensors,
                       const FusionPlan& plan) {
  RNA_CHECK_MSG(specs.size() == tensors.size(),
                "one buffer per tensor spec required");
  if (plan.buckets.empty()) return true;
  net::Fabric& fabric = ctx.fabric;
  const int stride = FusionTagStride(ctx.group.Size());
  const std::size_t peak = plan.MaxBucketElements();

  // Double-buffered staging from the pool: bucket b stages in staging[b%2],
  // so packing bucket b+1 never touches the buffer whose pass is in flight.
  std::vector<float> staging[2] = {fabric.Pool().Acquire(peak),
                                   fabric.Pool().Acquire(peak)};
  auto stage_span = [&](std::size_t b) {
    return std::span<float>(staging[b % 2].data(), plan.buckets[b].elements);
  };
  // Cumulative element offset of each bucket — the per-bucket window into
  // the caller's shared error-feedback buffer, so residuals track the same
  // tensor elements across calls regardless of bucket boundaries.
  auto pass_for = [&](std::size_t b, std::size_t element_offset) {
    CollectiveOptions bucket = options;
    bucket.tag_base = options.tag_base + static_cast<int>(b) * stride;
    bucket.feedback_offset = options.feedback_offset + element_offset;
    return Pass(ctx, bucket, stage_span(b));
  };
  auto finish = [&](bool ok) {
    fabric.Pool().Recycle(std::move(staging[0]));
    fabric.Pool().Recycle(std::move(staging[1]));
    return ok;
  };

  // Software pipeline: while bucket b's pass drains, bucket b+1 is already
  // packed and its first hop launched. Launching ahead is safe because the
  // buckets' tag ranges are disjoint and every member packs bucket b+1
  // before it could ever need our hop data.
  PackBucket(plan.buckets[0], specs, tensors, stage_span(0));
  std::size_t offset = 0;
  Pass current = pass_for(0, 0);
  current.LaunchHop();
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    std::optional<Pass> next;
    if (b + 1 < plan.buckets.size()) {
      PackBucket(plan.buckets[b + 1], specs, tensors, stage_span(b + 1));
      next.emplace(pass_for(b + 1, offset + plan.buckets[b].elements));
      next->LaunchHop();
    }
    while (!current.Done()) {
      if (!current.CompleteHop()) return finish(false);
      current.LaunchHop();
    }
    UnpackBucket(plan.buckets[b], specs, tensors, stage_span(b));
    offset += plan.buckets[b].elements;
    if (next.has_value()) current = std::move(*next);
  }
  return finish(true);
}

void FusedAllreduce(const CollectiveContext& ctx,
                    const CollectiveOptions& options,
                    std::span<const TensorSpec> specs,
                    std::span<float* const> tensors, const FusionPlan& plan) {
  RNA_CHECK_MSG(FusedAllreduceFor(ctx, options, specs, tensors, plan),
                "fabric shut down mid-collective");
}

}  // namespace rna::collectives
