#include "rna/collectives/fusion.hpp"

#include <algorithm>

#include "rna/common/check.hpp"

namespace rna::collectives {

std::size_t FusionPlan::MaxBucketElements() const {
  std::size_t peak = 0;
  for (const auto& b : buckets) peak = std::max(peak, b.elements);
  return peak;
}

FusionPlan FusionPlan::Build(std::span<const TensorSpec> specs,
                             std::size_t max_bucket_elements) {
  RNA_CHECK_MSG(max_bucket_elements > 0, "bucket size must be positive");
  FusionPlan plan;
  Bucket current;
  current.first_tensor = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::size_t n = specs[i].elements;
    const bool fits =
        current.tensor_count == 0 || current.elements + n <= max_bucket_elements;
    if (!fits) {
      plan.buckets.push_back(current);
      current = Bucket{};
      current.first_tensor = i;
    }
    current.elements += n;
    ++current.tensor_count;
  }
  if (current.tensor_count > 0) plan.buckets.push_back(current);
  return plan;
}

void FusedAllreduce(net::Fabric& fabric, const Group& group,
                    std::size_t my_index, std::span<const TensorSpec> specs,
                    std::span<float* const> tensors, const FusionPlan& plan,
                    int tag_base) {
  RNA_CHECK_MSG(specs.size() == tensors.size(),
                "one buffer per tensor spec required");
  // Each bucket's ring uses up to 2·world step tags; space the buckets out
  // accordingly so concurrent in-flight messages cannot collide.
  const int stride = static_cast<int>(2 * group.Size() + 2);

  std::vector<float> staging(plan.MaxBucketElements());
  for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
    const auto& bucket = plan.buckets[b];
    // Gather the bucket's tensors into the staging buffer.
    std::size_t offset = 0;
    for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
      const std::size_t idx = bucket.first_tensor + t;
      RNA_CHECK(idx < specs.size());
      std::copy(tensors[idx], tensors[idx] + specs[idx].elements,
                staging.begin() + static_cast<std::ptrdiff_t>(offset));
      offset += specs[idx].elements;
    }
    RNA_CHECK(offset == bucket.elements);

    RingAllreduce(fabric, group, my_index,
                  std::span<float>(staging.data(), bucket.elements),
                  tag_base + static_cast<int>(b) * stride);

    // Scatter the reduced values back.
    offset = 0;
    for (std::size_t t = 0; t < bucket.tensor_count; ++t) {
      const std::size_t idx = bucket.first_tensor + t;
      std::copy(staging.begin() + static_cast<std::ptrdiff_t>(offset),
                staging.begin() +
                    static_cast<std::ptrdiff_t>(offset + specs[idx].elements),
                tensors[idx]);
      offset += specs[idx].elements;
    }
  }
}

}  // namespace rna::collectives
