#include "rna/collectives/ring.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::collectives {

namespace {

/// Granularity of the wait-forever receive loop: bounded RecvFor slices
/// with an IsClosed check between them, so even "untimed" collectives never
/// sit in an unbounded blocking receive (the untimed-recv deadlock class).
constexpr common::Seconds kForeverSlice = 0.05;

std::optional<net::Message> RecvHop(net::Fabric& fabric, Rank self, int tag,
                                    common::Seconds timeout) {
  if (timeout > 0.0) return fabric.RecvFor(self, tag, timeout);
  for (;;) {
    auto msg = fabric.RecvFor(self, tag, kForeverSlice);
    if (msg.has_value() || fabric.IsClosed(self)) return msg;
  }
}

}  // namespace

std::size_t Group::IndexOf(Rank rank) const {
  const auto it = std::find(members.begin(), members.end(), rank);
  RNA_CHECK_MSG(it != members.end(), "rank is not a member of the group");
  return static_cast<std::size_t>(it - members.begin());
}

Group Group::Full(std::size_t world) {
  Group g;
  g.members.resize(world);
  for (std::size_t i = 0; i < world; ++i) g.members[i] = i;
  return g;
}

RingPass::RingPass(net::Fabric& fabric, const Group& group,
                   std::size_t my_index, std::span<float> data, int tag_base,
                   common::Seconds hop_timeout)
    : fabric_(&fabric),
      group_(&group),
      my_index_(my_index),
      data_(data),
      tag_base_(tag_base),
      hop_timeout_(hop_timeout),
      world_(group.Size()) {
  RNA_CHECK_MSG(world_ > 0 && my_index_ < world_, "bad group index");
  if (world_ == 1) return;  // total_steps_ stays 0: Done() immediately
  self_ = group.At(my_index_);
  right_ = group.At((my_index_ + 1) % world_);
  chunk_base_ = data_.size() / world_;
  chunk_extra_ = data_.size() % world_;
  total_steps_ = 2 * (world_ - 1);
}

std::size_t RingPass::OffsetOf(std::size_t c) const {
  // Chunk boundaries dividing the data into `world_` near-equal ranges:
  // the first `chunk_extra_` chunks carry one extra element. With
  // n < world the tail chunks are empty — their hop messages carry a
  // zero-length payload, which the fabric (and its fault rules) treat
  // like any other message.
  return c * chunk_base_ + std::min(c, chunk_extra_);
}

std::span<float> RingPass::Chunk(std::size_t c) const {
  return data_.subspan(OffsetOf(c), OffsetOf(c + 1) - OffsetOf(c));
}

int RingPass::TagOf(std::size_t step) const {
  // Reduce-scatter steps use tag_base + step; all-gather steps keep the
  // historical tag_base + world + gather_step layout (the tag at
  // tag_base + world − 1 is unused).
  const std::size_t reduce_steps = world_ - 1;
  if (step < reduce_steps) return tag_base_ + static_cast<int>(step);
  return tag_base_ + static_cast<int>(world_ + (step - reduce_steps));
}

void RingPass::LaunchHop() {
  if (Done() || failed_ || sent_) return;
  const std::size_t reduce_steps = world_ - 1;
  const bool reducing = step_ < reduce_steps;
  const std::size_t s = reducing ? step_ : step_ - reduce_steps;
  const std::size_t send_chunk =
      reducing ? (my_index_ + world_ - s) % world_
               : (my_index_ + 1 + world_ - s) % world_;
  const auto out = Chunk(send_chunk);
  net::Message msg;
  msg.tag = TagOf(step_);
  msg.data = fabric_->Pool().Acquire(out.size());
  std::copy(out.begin(), out.end(), msg.data.begin());
  fabric_->Send(self_, right_, std::move(msg));
  sent_ = true;
}

bool RingPass::CompleteHop() {
  if (failed_) return false;
  if (Done()) return true;
  LaunchHop();
  auto in = RecvHop(*fabric_, self_, TagOf(step_), hop_timeout_);
  if (!in.has_value()) {
    failed_ = true;
    return false;
  }
  const std::size_t reduce_steps = world_ - 1;
  const bool reducing = step_ < reduce_steps;
  const std::size_t s = reducing ? step_ : step_ - reduce_steps;
  const std::size_t recv_chunk =
      reducing ? (my_index_ + 2 * world_ - s - 1) % world_
               : (my_index_ + 2 * world_ - s) % world_;
  const auto target = Chunk(recv_chunk);
  RNA_CHECK_MSG(in->data.size() == target.size(),
                "collective chunk size mismatch");
  if (reducing) {
    common::simd::AddInto(target, in->data);
  } else {
    std::copy(in->data.begin(), in->data.end(), target.begin());
  }
  fabric_->Pool().Recycle(std::move(in->data));
  ++step_;
  sent_ = false;
  return true;
}

bool RingAllreduceFor(net::Fabric& fabric, const Group& group,
                      std::size_t my_index, std::span<float> data,
                      int tag_base, common::Seconds hop_timeout) {
  RingPass pass(fabric, group, my_index, data, tag_base, hop_timeout);
  while (!pass.Done()) {
    pass.LaunchHop();
    if (!pass.CompleteHop()) return false;
  }
  return true;
}

void RingAllreduce(net::Fabric& fabric, const Group& group,
                   std::size_t my_index, std::span<float> data, int tag_base) {
  RNA_CHECK_MSG(RingAllreduceFor(fabric, group, my_index, data, tag_base,
                                 /*hop_timeout=*/0.0),
                "fabric shut down mid-collective");
}

PartialResult RingPartialAllreduce(net::Fabric& fabric, const Group& group,
                                   std::size_t my_index, std::span<float> data,
                                   bool contributes, int tag_base,
                                   common::Seconds hop_timeout) {
  // The contributor flag travels as one extra element appended to the
  // payload, so a single ring pass reduces both gradient and Σw. The
  // working buffer comes from the fabric pool — a round-per-millisecond
  // protocol would otherwise allocate a gradient-sized vector per round.
  std::vector<float> buffer = fabric.Pool().Acquire(data.size() + 1);
  if (contributes) {
    std::copy(data.begin(), data.end(), buffer.begin());
    buffer.back() = 1.0f;
  } else {
    // Null gradient: keep the communication graph, contribute zeros.
    std::fill(buffer.begin(), buffer.end(), 0.0f);
  }

  PartialResult result;
  if (!RingAllreduceFor(fabric, group, my_index, buffer, tag_base,
                        hop_timeout)) {
    // Aborted mid-ring (member crash or shutdown): the partial sums are
    // meaningless — zero the output and tell the caller to skip the step.
    RNA_CHECK_MSG(hop_timeout > 0.0, "fabric shut down mid-collective");
    std::fill(data.begin(), data.end(), 0.0f);
    fabric.Pool().Recycle(std::move(buffer));
    result.ok = false;
    return result;
  }
  result.contributors =
      static_cast<std::size_t>(std::lround(buffer.back()));
  if (result.contributors > 0) {
    const float w = 1.0f / static_cast<float>(result.contributors);
    common::simd::ScaledCopy(
        data, std::span<const float>(buffer.data(), data.size()), w);
  } else {
    std::fill(data.begin(), data.end(), 0.0f);
  }
  fabric.Pool().Recycle(std::move(buffer));
  return result;
}

bool BroadcastFor(net::Fabric& fabric, const Group& group,
                  std::size_t my_index, std::size_t root_index,
                  std::span<float> data, int tag_base,
                  common::Seconds timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world && root_index < world, "bad group index");
  if (world == 1) return true;
  const Rank self = group.At(my_index);
  if (my_index == root_index) {
    for (std::size_t i = 0; i < world; ++i) {
      if (i == root_index) continue;
      net::Message msg;
      msg.tag = tag_base;
      msg.data = fabric.Pool().Acquire(data.size());
      std::copy(data.begin(), data.end(), msg.data.begin());
      fabric.Send(self, group.At(i), std::move(msg));
    }
  } else {
    auto in = RecvHop(fabric, self, tag_base, timeout);
    if (!in.has_value()) return false;
    RNA_CHECK_MSG(in->data.size() == data.size(), "broadcast size mismatch");
    std::copy(in->data.begin(), in->data.end(), data.begin());
    fabric.Pool().Recycle(std::move(in->data));
  }
  return true;
}

void Broadcast(net::Fabric& fabric, const Group& group, std::size_t my_index,
               std::size_t root_index, std::span<float> data, int tag_base) {
  RNA_CHECK_MSG(BroadcastFor(fabric, group, my_index, root_index, data,
                             tag_base, /*timeout=*/0.0),
                "fabric shut down mid-broadcast");
}

bool BarrierFor(net::Fabric& fabric, const Group& group, std::size_t my_index,
                int tag_base, common::Seconds timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world, "bad group index");
  if (world == 1) return true;
  const Rank self = group.At(my_index);
  const Rank leader = group.At(0);
  // One deadline covers the whole barrier, so a leader stuck waiting for a
  // dead member cannot stretch the wait to (world − 1) × timeout.
  const auto deadline =
      common::SteadyClock::now() + common::FromSeconds(timeout);
  auto recv_step = [&](int tag) {
    if (timeout <= 0.0) return RecvHop(fabric, self, tag, 0.0);
    const common::Seconds left =
        common::ToSeconds(deadline - common::SteadyClock::now());
    if (left <= 0.0) return std::optional<net::Message>{};
    return fabric.RecvFor(self, tag, left);
  };
  if (my_index == 0) {
    for (std::size_t i = 1; i < world; ++i) {
      if (!recv_step(tag_base).has_value()) return false;
    }
    for (std::size_t i = 1; i < world; ++i) {
      net::Message release;
      release.tag = tag_base + 1;
      fabric.Send(self, group.At(i), std::move(release));
    }
    return true;
  }
  net::Message arrive;
  arrive.tag = tag_base;
  fabric.Send(self, leader, std::move(arrive));
  return recv_step(tag_base + 1).has_value();
}

void Barrier(net::Fabric& fabric, const Group& group, std::size_t my_index,
             int tag_base) {
  RNA_CHECK_MSG(BarrierFor(fabric, group, my_index, tag_base,
                           /*timeout=*/0.0),
                "fabric shut down mid-barrier");
}

}  // namespace rna::collectives
