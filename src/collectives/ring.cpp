#include "rna/collectives/ring.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::collectives {

namespace {

/// Granularity of the wait-forever receive loop: bounded RecvFor slices
/// with an IsClosed check between them, so even "untimed" collectives never
/// sit in an unbounded blocking receive (the untimed-recv deadlock class).
constexpr common::Seconds kForeverSlice = 0.05;

}  // namespace

namespace detail {

std::optional<net::Message> RecvHop(net::Fabric& fabric, Rank self, int tag,
                                    common::Seconds timeout) {
  if (timeout > 0.0) return fabric.RecvFor(self, tag, timeout);
  for (;;) {
    auto msg = fabric.RecvFor(self, tag, kForeverSlice);
    if (msg.has_value() || fabric.IsClosed(self)) return msg;
  }
}

}  // namespace detail

std::size_t Group::IndexOf(Rank rank) const {
  const auto it = std::find(members.begin(), members.end(), rank);
  RNA_CHECK_MSG(it != members.end(), "rank is not a member of the group");
  return static_cast<std::size_t>(it - members.begin());
}

Group Group::Full(std::size_t world) {
  Group g;
  g.members.resize(world);
  for (std::size_t i = 0; i < world; ++i) g.members[i] = i;
  return g;
}

RingPass::RingPass(const CollectiveContext& ctx,
                   const CollectiveOptions& options, std::span<float> data)
    : fabric_(&ctx.fabric),
      group_(&ctx.group),
      data_(data),
      tag_base_(options.tag_base),
      hop_timeout_(options.hop_timeout),
      format_(ToWireFormat(options.compression)),
      topk_fraction_(options.topk_fraction),
      exact_tail_(options.exact_tail),
      feedback_(options.compression == Compression::kNone ? nullptr
                                                          : options.feedback),
      feedback_offset_(options.feedback_offset),
      straggler_(options.schedule == Schedule::kStragglar ? options.straggler
                                                          : kNoStraggler),
      world_(ctx.group.Size()) {
  RNA_CHECK_MSG(world_ > 0 && ctx.my_index < world_, "bad group index");
  RNA_CHECK_MSG(exact_tail_ <= data_.size(),
                "exact tail larger than the buffer");
  if (format_ == net::wire::Format::kTopK) {
    RNA_CHECK_MSG(topk_fraction_ > 0.0 && topk_fraction_ <= 1.0,
                  "top-k fraction must be in (0, 1]");
  }
  if (feedback_ != nullptr &&
      feedback_->Size() < feedback_offset_ + data_.size()) {
    feedback_->EnsureSize(feedback_offset_ + data_.size());
  }
  if (world_ == 1) return;  // total_steps_ stays 0: Done() immediately
  // The StragglAR-style permutation moves the straggler to the tail
  // *position*; everyone else keeps their relative order. Positions — not
  // member indices — own chunks and define neighbors, so the permutation
  // re-routes the ring without touching tags or membership.
  std::size_t pos = ctx.my_index;
  if (straggler_ < world_) {
    if (ctx.my_index == straggler_) {
      pos = world_ - 1;
    } else if (ctx.my_index > straggler_) {
      pos = ctx.my_index - 1;
    }
  }
  pos_ = pos;
  self_ = ctx.group.At(ctx.my_index);
  right_ = ctx.group.At(PosToIndex((pos_ + 1) % world_));
  chunk_base_ = data_.size() / world_;
  chunk_extra_ = data_.size() % world_;
  total_steps_ = 2 * (world_ - 1);
}

std::size_t RingPass::PosToIndex(std::size_t pos) const {
  if (straggler_ >= world_) return pos;
  if (pos == world_ - 1) return straggler_;
  return pos < straggler_ ? pos : pos + 1;
}

std::size_t RingPass::OffsetOf(std::size_t c) const {
  // Chunk boundaries dividing the data into `world_` near-equal ranges:
  // the first `chunk_extra_` chunks carry one extra element. With
  // n < world the tail chunks are empty — their hop messages carry a
  // zero-length payload, which the fabric (and its fault rules) treat
  // like any other message.
  return c * chunk_base_ + std::min(c, chunk_extra_);
}

std::span<float> RingPass::Chunk(std::size_t c) const {
  return data_.subspan(OffsetOf(c), OffsetOf(c + 1) - OffsetOf(c));
}

std::size_t RingPass::TailInChunk(std::size_t c) const {
  // How many of the buffer's last `exact_tail_` elements land in chunk c.
  if (exact_tail_ == 0) return 0;
  const std::size_t lo = OffsetOf(c);
  const std::size_t hi = OffsetOf(c + 1);
  const std::size_t tail_lo = data_.size() - exact_tail_;
  const std::size_t from = std::max(lo, tail_lo);
  return hi > from ? hi - from : 0;
}

int RingPass::TagOf(std::size_t step) const {
  // Reduce-scatter steps use tag_base + step; all-gather steps keep the
  // historical tag_base + world + gather_step layout (the tag at
  // tag_base + world − 1 is unused). See RingTagSpan in schedule.hpp.
  const std::size_t reduce_steps = world_ - 1;
  if (step < reduce_steps) return tag_base_ + static_cast<int>(step);
  return tag_base_ + static_cast<int>(world_ + (step - reduce_steps));
}

std::vector<float> RingPass::EncodeChunk(std::size_t c) {
  const auto out = Chunk(c);
  const std::size_t tail = TailInChunk(c);
  std::span<float> residual{};
  if (feedback_ != nullptr) {
    residual = feedback_->Slice(feedback_offset_ + OffsetOf(c), out.size());
  }
  const std::size_t k =
      format_ == net::wire::Format::kTopK
          ? net::wire::TopKCount(out.size() - tail, topk_fraction_)
          : 0;
  return net::wire::Encode(fabric_->Pool(), format_, out, residual, k, tail);
}

void RingPass::LaunchHop() {
  if (Done() || failed_ || sent_) return;
  const std::size_t reduce_steps = world_ - 1;
  const bool reducing = step_ < reduce_steps;
  const std::size_t s = reducing ? step_ : step_ - reduce_steps;
  const std::size_t send_chunk = reducing
                                     ? (pos_ + world_ - s) % world_
                                     : (pos_ + 1 + world_ - s) % world_;
  net::Message msg;
  msg.tag = TagOf(step_);
  if (!reducing && s > 0) {
    // All-gather forwards: pass the frame received last hop on verbatim.
    // Re-encoding would apply quantization loss once per hop instead of
    // once per chunk and break the all-ranks-identical guarantee.
    RNA_CHECK_MSG(forward_.has_value(), "gather forward frame missing");
    msg.data = std::move(*forward_);
    forward_.reset();
  } else {
    msg.data = EncodeChunk(send_chunk);
    if (!reducing && format_ != net::wire::Format::kRaw) {
      // First gather hop: the chunk owner broadcasts its reduced chunk.
      // Self-apply the lossy round-trip so the owner's copy is bitwise
      // what every other rank will decode.
      net::wire::Decode(format_, msg.data, Chunk(send_chunk),
                        net::wire::Fold::kAssign, TailInChunk(send_chunk));
    }
  }
  fabric_->CountWire(format_, Chunk(send_chunk).size() * sizeof(float),
                     msg.data.size() * sizeof(float));
  fabric_->Send(self_, right_, std::move(msg));
  sent_ = true;
}

bool RingPass::CompleteHop() {
  if (failed_) return false;
  if (Done()) return true;
  LaunchHop();
  auto in = detail::RecvHop(*fabric_, self_, TagOf(step_), hop_timeout_);
  if (!in.has_value()) {
    failed_ = true;
    return false;
  }
  const std::size_t reduce_steps = world_ - 1;
  const bool reducing = step_ < reduce_steps;
  const std::size_t s = reducing ? step_ : step_ - reduce_steps;
  const std::size_t recv_chunk = reducing
                                     ? (pos_ + 2 * world_ - s - 1) % world_
                                     : (pos_ + 2 * world_ - s) % world_;
  const auto target = Chunk(recv_chunk);
  net::wire::Decode(format_, in->data, target,
                    reducing ? net::wire::Fold::kAdd
                             : net::wire::Fold::kAssign,
                    TailInChunk(recv_chunk));
  if (!reducing && s + 1 < reduce_steps) {
    // This frame is this rank's next gather send; keep it intact.
    forward_ = std::move(in->data);
  } else {
    fabric_->Pool().Recycle(std::move(in->data));
  }
  ++step_;
  sent_ = false;
  return true;
}

bool BroadcastFor(net::Fabric& fabric, const Group& group,
                  std::size_t my_index, std::size_t root_index,
                  std::span<float> data, int tag_base,
                  common::Seconds timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world && root_index < world, "bad group index");
  if (world == 1) return true;
  const Rank self = group.At(my_index);
  if (my_index == root_index) {
    for (std::size_t i = 0; i < world; ++i) {
      if (i == root_index) continue;
      net::Message msg;
      msg.tag = tag_base;
      msg.data = fabric.Pool().Acquire(data.size());
      std::copy(data.begin(), data.end(), msg.data.begin());
      fabric.Send(self, group.At(i), std::move(msg));
    }
  } else {
    auto in = detail::RecvHop(fabric, self, tag_base, timeout);
    if (!in.has_value()) return false;
    RNA_CHECK_MSG(in->data.size() == data.size(), "broadcast size mismatch");
    std::copy(in->data.begin(), in->data.end(), data.begin());
    fabric.Pool().Recycle(std::move(in->data));
  }
  return true;
}

void Broadcast(net::Fabric& fabric, const Group& group, std::size_t my_index,
               std::size_t root_index, std::span<float> data, int tag_base) {
  RNA_CHECK_MSG(BroadcastFor(fabric, group, my_index, root_index, data,
                             tag_base, /*timeout=*/0.0),
                "fabric shut down mid-broadcast");
}

bool BarrierFor(net::Fabric& fabric, const Group& group, std::size_t my_index,
                int tag_base, common::Seconds timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world, "bad group index");
  if (world == 1) return true;
  const Rank self = group.At(my_index);
  const Rank leader = group.At(0);
  // One deadline covers the whole barrier, so a leader stuck waiting for a
  // dead member cannot stretch the wait to (world − 1) × timeout.
  const auto deadline =
      common::SteadyClock::now() + common::FromSeconds(timeout);
  auto recv_step = [&](int tag) {
    if (timeout <= 0.0) return detail::RecvHop(fabric, self, tag, 0.0);
    const common::Seconds left =
        common::ToSeconds(deadline - common::SteadyClock::now());
    if (left <= 0.0) return std::optional<net::Message>{};
    return fabric.RecvFor(self, tag, left);
  };
  if (my_index == 0) {
    for (std::size_t i = 1; i < world; ++i) {
      if (!recv_step(tag_base).has_value()) return false;
    }
    for (std::size_t i = 1; i < world; ++i) {
      net::Message release;
      release.tag = tag_base + 1;
      fabric.Send(self, group.At(i), std::move(release));
    }
    return true;
  }
  net::Message arrive;
  arrive.tag = tag_base;
  fabric.Send(self, leader, std::move(arrive));
  return recv_step(tag_base + 1).has_value();
}

void Barrier(net::Fabric& fabric, const Group& group, std::size_t my_index,
             int tag_base) {
  RNA_CHECK_MSG(BarrierFor(fabric, group, my_index, tag_base,
                           /*timeout=*/0.0),
                "fabric shut down mid-barrier");
}

}  // namespace rna::collectives
