#include "rna/collectives/ring.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"

namespace rna::collectives {

namespace {

/// Chunk boundaries dividing `n` elements into `parts` near-equal ranges.
std::vector<std::size_t> ChunkOffsets(std::size_t n, std::size_t parts) {
  std::vector<std::size_t> offsets(parts + 1);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < parts; ++i) {
    offsets[i] = pos;
    pos += base + (i < extra ? 1 : 0);
  }
  offsets[parts] = n;
  return offsets;
}

}  // namespace

std::size_t Group::IndexOf(Rank rank) const {
  const auto it = std::find(members.begin(), members.end(), rank);
  RNA_CHECK_MSG(it != members.end(), "rank is not a member of the group");
  return static_cast<std::size_t>(it - members.begin());
}

Group Group::Full(std::size_t world) {
  Group g;
  g.members.resize(world);
  for (std::size_t i = 0; i < world; ++i) g.members[i] = i;
  return g;
}

bool RingAllreduceFor(net::Fabric& fabric, const Group& group,
                      std::size_t my_index, std::span<float> data,
                      int tag_base, common::Seconds hop_timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(world > 0 && my_index < world, "bad group index");
  if (world == 1) return true;

  const Rank self = group.At(my_index);
  const Rank right = group.At((my_index + 1) % world);
  const auto offsets = ChunkOffsets(data.size(), world);
  auto chunk = [&](std::size_t c) {
    return data.subspan(offsets[c], offsets[c + 1] - offsets[c]);
  };
  auto recv_hop = [&](int tag) {
    return hop_timeout > 0.0 ? fabric.RecvFor(self, tag, hop_timeout)
                             : fabric.Recv(self, tag);
  };

  // Reduce-scatter: after world−1 steps this rank owns the fully reduced
  // chunk (my_index + 1) mod world.
  for (std::size_t step = 0; step + 1 < world; ++step) {
    const std::size_t send_chunk = (my_index + world - step) % world;
    const std::size_t recv_chunk = (my_index + 2 * world - step - 1) % world;
    auto out = chunk(send_chunk);
    net::Message msg;
    msg.tag = tag_base + static_cast<int>(step);
    msg.data.assign(out.begin(), out.end());
    fabric.Send(self, right, std::move(msg));

    auto in = recv_hop(tag_base + static_cast<int>(step));
    if (!in.has_value()) return false;
    auto target = chunk(recv_chunk);
    RNA_CHECK_MSG(in->data.size() == target.size(),
                  "collective chunk size mismatch");
    for (std::size_t i = 0; i < target.size(); ++i) target[i] += in->data[i];
  }

  // All-gather: circulate the reduced chunks.
  for (std::size_t step = 0; step + 1 < world; ++step) {
    const std::size_t send_chunk = (my_index + 1 + world - step) % world;
    const std::size_t recv_chunk = (my_index + 2 * world - step) % world;
    auto out = chunk(send_chunk);
    net::Message msg;
    msg.tag = tag_base + static_cast<int>(world + step);
    msg.data.assign(out.begin(), out.end());
    fabric.Send(self, right, std::move(msg));

    auto in = recv_hop(tag_base + static_cast<int>(world + step));
    if (!in.has_value()) return false;
    auto target = chunk(recv_chunk);
    RNA_CHECK_MSG(in->data.size() == target.size(),
                  "collective chunk size mismatch");
    std::copy(in->data.begin(), in->data.end(), target.begin());
  }
  return true;
}

void RingAllreduce(net::Fabric& fabric, const Group& group,
                   std::size_t my_index, std::span<float> data, int tag_base) {
  RNA_CHECK_MSG(RingAllreduceFor(fabric, group, my_index, data, tag_base,
                                 /*hop_timeout=*/0.0),
                "fabric shut down mid-collective");
}

PartialResult RingPartialAllreduce(net::Fabric& fabric, const Group& group,
                                   std::size_t my_index, std::span<float> data,
                                   bool contributes, int tag_base,
                                   common::Seconds hop_timeout) {
  // The contributor flag travels as one extra element appended to the
  // payload, so a single ring pass reduces both gradient and Σw.
  std::vector<float> buffer(data.size() + 1);
  if (contributes) {
    std::copy(data.begin(), data.end(), buffer.begin());
    buffer.back() = 1.0f;
  } else {
    // Null gradient: keep the communication graph, contribute zeros.
    buffer.back() = 0.0f;
  }

  PartialResult result;
  if (!RingAllreduceFor(fabric, group, my_index, buffer, tag_base,
                        hop_timeout)) {
    // Aborted mid-ring (member crash or shutdown): the partial sums are
    // meaningless — zero the output and tell the caller to skip the step.
    RNA_CHECK_MSG(hop_timeout > 0.0, "fabric shut down mid-collective");
    std::fill(data.begin(), data.end(), 0.0f);
    result.ok = false;
    return result;
  }
  result.contributors =
      static_cast<std::size_t>(std::lround(buffer.back()));
  if (result.contributors > 0) {
    const float w = 1.0f / static_cast<float>(result.contributors);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = buffer[i] * w;
  } else {
    std::fill(data.begin(), data.end(), 0.0f);
  }
  return result;
}

bool BroadcastFor(net::Fabric& fabric, const Group& group,
                  std::size_t my_index, std::size_t root_index,
                  std::span<float> data, int tag_base,
                  common::Seconds timeout) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world && root_index < world, "bad group index");
  if (world == 1) return true;
  const Rank self = group.At(my_index);
  if (my_index == root_index) {
    for (std::size_t i = 0; i < world; ++i) {
      if (i == root_index) continue;
      net::Message msg;
      msg.tag = tag_base;
      msg.data.assign(data.begin(), data.end());
      fabric.Send(self, group.At(i), std::move(msg));
    }
  } else {
    auto in = timeout > 0.0 ? fabric.RecvFor(self, tag_base, timeout)
                            : fabric.Recv(self, tag_base);
    if (!in.has_value()) return false;
    RNA_CHECK_MSG(in->data.size() == data.size(), "broadcast size mismatch");
    std::copy(in->data.begin(), in->data.end(), data.begin());
  }
  return true;
}

void Broadcast(net::Fabric& fabric, const Group& group, std::size_t my_index,
               std::size_t root_index, std::span<float> data, int tag_base) {
  RNA_CHECK_MSG(BroadcastFor(fabric, group, my_index, root_index, data,
                             tag_base, /*timeout=*/0.0),
                "fabric shut down mid-broadcast");
}

void Barrier(net::Fabric& fabric, const Group& group, std::size_t my_index,
             int tag_base) {
  const std::size_t world = group.Size();
  RNA_CHECK_MSG(my_index < world, "bad group index");
  if (world == 1) return;
  const Rank self = group.At(my_index);
  const Rank leader = group.At(0);
  if (my_index == 0) {
    for (std::size_t i = 1; i < world; ++i) {
      auto in = fabric.Recv(self, tag_base);
      RNA_CHECK_MSG(in.has_value(), "fabric shut down mid-barrier");
    }
    for (std::size_t i = 1; i < world; ++i) {
      net::Message release;
      release.tag = tag_base + 1;
      fabric.Send(self, group.At(i), std::move(release));
    }
  } else {
    net::Message arrive;
    arrive.tag = tag_base;
    fabric.Send(self, leader, std::move(arrive));
    auto release = fabric.Recv(self, tag_base + 1);
    RNA_CHECK_MSG(release.has_value(), "fabric shut down mid-barrier");
  }
}

}  // namespace rna::collectives
