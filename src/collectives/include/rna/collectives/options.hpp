#pragma once

// The single parameter surface for the allreduce family. Historically every
// collective entry point grew its own positional signature (fabric, group,
// my_index, data, tag_base, hop_timeout, ...); adding compression and
// schedules would have doubled them again. Instead a call site now names a
// CollectiveContext (who is communicating) plus CollectiveOptions (how:
// schedule, compression, tags, deadline) and passes them to one
// AllreduceFor implementation (allreduce.hpp).

#include <cstddef>
#include <vector>

#include "rna/collectives/compression.hpp"
#include "rna/collectives/schedule.hpp"
#include "rna/net/fabric.hpp"

namespace rna::collectives {

using net::Rank;

/// An ordered set of fabric endpoints forming one logical communicator.
/// For flat (non-hierarchical) training this is simply {0, 1, ..., N−1}.
struct Group {
  std::vector<Rank> members;

  std::size_t Size() const { return members.size(); }
  Rank At(std::size_t index) const { return members.at(index); }

  /// Index of a fabric rank inside the group; throws if absent.
  std::size_t IndexOf(Rank rank) const;

  static Group Full(std::size_t world);
};

/// Who is communicating: one caller's view of a cooperative collective.
/// The fabric and group must outlive every pass constructed from this.
struct CollectiveContext {
  net::Fabric& fabric;
  const Group& group;
  std::size_t my_index = 0;
};

/// Sentinel for CollectiveOptions::straggler: no persistent straggler.
inline constexpr std::size_t kNoStraggler = static_cast<std::size_t>(-1);

/// How a collective runs. Every member of a group must pass *identical*
/// options for the same logical operation (same schedule, compression,
/// fraction, tag_base, straggler) — exactly the MPI collective contract the
/// old positional arguments had, now in one named struct.
struct CollectiveOptions {
  Schedule schedule = Schedule::kRing;
  Compression compression = Compression::kNone;

  /// Fraction of elements kept per chunk under Compression::kTopK.
  double topk_fraction = 0.05;

  /// First tag of the pass's tag range (see RingTagSpan/TreeTagSpan for
  /// the width). Must not collide with other traffic in flight.
  int tag_base = 0;

  /// > 0 bounds every blocking receive of the pass; 0 or negative waits
  /// until the message arrives or the fabric shuts down.
  common::Seconds hop_timeout = 0.0;

  /// Group index of the controller-identified persistent straggler, or
  /// kNoStraggler. Only Schedule::kStragglar consumes it (the straggler is
  /// moved to the ring's tail position); all members must agree on it.
  std::size_t straggler = kNoStraggler;

  /// Number of trailing elements carried bit-exact through lossy
  /// compression (contributor counts, stop votes).
  std::size_t exact_tail = 0;

  /// Per-worker error-feedback residual for the lossy policies; may be
  /// null (residuals are then dropped — fp16/int8 tolerate it, kTopK
  /// converges much slower). The pass uses residual elements
  /// [feedback_offset, feedback_offset + data.size()) and grows the buffer
  /// if it is too small (growth zero-fills — pre-size once before the hot
  /// loop to keep residuals alive and the steady state allocation-free).
  ErrorFeedback* feedback = nullptr;

  /// Element offset into `feedback` where this buffer's residuals live —
  /// how fused buckets share one residual buffer across sub-passes.
  std::size_t feedback_offset = 0;
};

}  // namespace rna::collectives
