#pragma once

// Reduction schedules: the communication topology a collective pass moves
// chunks over. kRing is the paper's 2(N−1)-hop bandwidth-optimal ring;
// kTree is a binomial reduce-to-root + broadcast tree (2·log₂N latency,
// better for small buffers and large worlds); kStragglar re-orders the ring
// so a *persistent* straggler — identified by the controller's per-round
// verdicts — sits at the tail position where its slow hop overlaps the
// most other work ("Efficient AllReduce with Stragglers", PAPERS.md),
// instead of RNA's per-round skipping.
//
// The tag-span functions below are part of the tag-discipline model
// (tools/analyze reads this header): every schedule for a `world`-member
// group must keep all of its tags inside [tag_base, tag_base +
// span) so round strides and fusion strides provably cover them.

#include <cstddef>
#include <optional>
#include <string_view>

namespace rna::collectives {

enum class Schedule {
  kRing = 0,       ///< fixed-neighbor ring (historical path)
  kTree = 1,       ///< binomial reduce + broadcast tree
  kStragglar = 2,  ///< ring with the persistent straggler moved to the tail
};

/// Canonical lowercase name ("ring", "tree", "stragglar").
const char* ScheduleName(Schedule s);

/// Inverse of ScheduleName; std::nullopt for unknown names.
std::optional<Schedule> ParseSchedule(std::string_view name);

/// Tags a ring pass may touch: reduce steps at tag_base + [0, world−1),
/// gather steps at tag_base + world + [0, world−1). kStragglar permutes
/// positions, not tags, so it shares this span.
inline int RingTagSpan(std::size_t world) {
  return static_cast<int>(2 * world - 1);
}

/// Tags a tree pass may touch: reduce sends at tag_base + sender_pos
/// (pos in [1, world)), broadcast deliveries at tag_base + world +
/// receiver_pos. Never wider than a ring pass's fusion stride.
inline int TreeTagSpan(std::size_t world) {
  return static_cast<int>(2 * world);
}

}  // namespace rna::collectives
