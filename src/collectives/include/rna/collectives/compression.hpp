#pragma once

// Compression policy on the collective/fabric boundary. The collectives
// choose *what* to compress (one policy per pass, applied chunk by chunk);
// rna/net/wire.hpp owns *how* each format frames bytes. kNone routes
// through wire::Format::kRaw and is bitwise identical to the historical
// dense path; the lossy policies trade gradient fidelity for wire bytes,
// with kTopK relying on per-worker error-feedback residuals (this header's
// ErrorFeedback) to stay convergent.

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "rna/net/wire.hpp"

namespace rna::collectives {

enum class Compression {
  kNone = 0,  ///< dense fp32 payloads, today's byte stream
  kFp16 = 1,  ///< half-precision quantization, per-chunk scale (2× smaller)
  kInt8 = 2,  ///< 8-bit quantization, per-chunk scale (4× smaller)
  kTopK = 3,  ///< top-k sparsification + error feedback (k = fraction · n)
};

/// Canonical lowercase name ("none", "fp16", "int8", "topk").
const char* CompressionName(Compression c);

/// Inverse of CompressionName; std::nullopt for unknown names.
std::optional<Compression> ParseCompression(std::string_view name);

/// The wire format a policy encodes with.
net::wire::Format ToWireFormat(Compression c);

/// Per-worker error-feedback residual memory: the part of this worker's
/// gradient the last encode could not represent, folded into the next
/// round's values before encoding (v = g + residual). One instance per
/// communicating thread, sized to the transported buffer; the collectives
/// slice it per chunk so each element's residual is read and written by
/// exactly one encode per pass. EnsureSize is the only allocating call —
/// engines size it once before the hot loop and steady state is
/// allocation-free.
class ErrorFeedback {
 public:
  /// Grows/shrinks to `n` elements. Growth zero-fills the new suffix and
  /// keeps existing residuals (fused passes grow the shared buffer bucket
  /// by bucket); shrinking re-zeros everything (stale residuals from a
  /// different buffer layout must never leak in).
  void EnsureSize(std::size_t n);

  std::size_t Size() const { return residual_.size(); }

  /// Zeroes all residuals (e.g. after a failed round whose encodes were
  /// never delivered).
  void Clear();

  std::span<float> All() { return residual_; }
  std::span<float> Slice(std::size_t offset, std::size_t n);

 private:
  std::vector<float> residual_;
};

}  // namespace rna::collectives
