#pragma once

// Tensor Fusion (the Horovod feature the paper enables for its baseline,
// §7.3): deep-learning models expose many per-layer gradient tensors, and
// reducing each one separately pays the per-collective latency α once per
// tensor. Fusion packs consecutive tensors into buckets of bounded size and
// runs one ring allreduce per bucket, amortizing α while keeping peak
// staging memory bounded — the classic throughput/latency/memory knob.
//
// The fused path is *pipelined*: staging is double-buffered and each
// bucket's ring is a RingPass with its own tag range, so bucket k+1 is
// packed and its first hop launched while bucket k's ring is still in
// flight. Staging buffers come from the fabric's BufferPool.

#include <span>
#include <string>
#include <vector>

#include "rna/collectives/ring.hpp"

namespace rna::collectives {

struct TensorSpec {
  std::string name;
  std::size_t elements = 0;
};

/// A partition of a tensor list into contiguous fusion buckets.
struct FusionPlan {
  struct Bucket {
    std::size_t first_tensor = 0;  ///< index into the spec list
    std::size_t tensor_count = 0;
    std::size_t elements = 0;      ///< total elements in the bucket
  };
  std::vector<Bucket> buckets;

  std::size_t BucketCount() const { return buckets.size(); }
  std::size_t MaxBucketElements() const;

  /// Greedy contiguous packing: tensors are appended to the current bucket
  /// until adding the next one would exceed `max_bucket_elements`; a tensor
  /// larger than the limit gets a bucket of its own. Preserves order.
  static FusionPlan Build(std::span<const TensorSpec> specs,
                          std::size_t max_bucket_elements);
};

/// Tags consumed per bucket: each bucket's ring uses up to 2·world step
/// tags; buckets are spaced by this stride so concurrent in-flight buckets
/// cannot collide. A fused call owns [tag_base, tag_base +
/// BucketCount()·stride) — the range to purge after an aborted call.
inline int FusionTagStride(std::size_t world) {
  return static_cast<int>(2 * world + 2);
}

/// Cooperative fused sum-allreduce: every group member calls it with the
/// same specs/plan and its local per-tensor buffers. Each bucket is
/// gathered into a staging buffer, ring-allreduced (bucket i uses
/// tag_base + i·FusionTagStride(world)), and scattered back — so results
/// are bitwise identical to reducing one concatenated buffer.
void FusedAllreduce(net::Fabric& fabric, const Group& group,
                    std::size_t my_index, std::span<const TensorSpec> specs,
                    std::span<float* const> tensors, const FusionPlan& plan,
                    int tag_base);

/// Timed variant: every hop receive of every bucket's ring is bounded by
/// `hop_timeout` (0 or negative = wait forever), routed through the same
/// RingPass deadline machinery as RingAllreduceFor. Returns false when a
/// hop timed out or the fabric shut down; the tensors are then in an
/// unspecified partial state (completed buckets reduced, the failed and
/// later buckets not) and the caller must discard the round and purge the
/// call's tag range before those tags are reused.
bool FusedAllreduceFor(net::Fabric& fabric, const Group& group,
                       std::size_t my_index, std::span<const TensorSpec> specs,
                       std::span<float* const> tensors, const FusionPlan& plan,
                       int tag_base, common::Seconds hop_timeout);

}  // namespace rna::collectives
