#pragma once

// Tensor Fusion (the Horovod feature the paper enables for its baseline,
// §7.3): deep-learning models expose many per-layer gradient tensors, and
// reducing each one separately pays the per-collective latency α once per
// tensor. Fusion packs consecutive tensors into buckets of bounded size and
// runs one ring allreduce per bucket, amortizing α while keeping peak
// staging memory bounded — the classic throughput/latency/memory knob.
//
// The fused path is *pipelined*: staging is double-buffered and each
// bucket's ring is a RingPass with its own tag range, so bucket k+1 is
// packed and its first hop launched while bucket k's ring is still in
// flight. Staging buffers come from the fabric's BufferPool.

#include <span>
#include <string>
#include <vector>

#include "rna/collectives/allreduce.hpp"

namespace rna::collectives {

struct TensorSpec {
  std::string name;
  std::size_t elements = 0;
};

/// A partition of a tensor list into contiguous fusion buckets.
struct FusionPlan {
  struct Bucket {
    std::size_t first_tensor = 0;  ///< index into the spec list
    std::size_t tensor_count = 0;
    std::size_t elements = 0;      ///< total elements in the bucket
  };
  std::vector<Bucket> buckets;

  std::size_t BucketCount() const { return buckets.size(); }
  std::size_t MaxBucketElements() const;

  /// Greedy contiguous packing: tensors are appended to the current bucket
  /// until adding the next one would exceed `max_bucket_elements`; a tensor
  /// larger than the limit gets a bucket of its own. Preserves order.
  static FusionPlan Build(std::span<const TensorSpec> specs,
                          std::size_t max_bucket_elements);
};

/// Tags consumed per bucket: each bucket's pass uses at most 2·world step
/// tags (RingTagSpan/TreeTagSpan, schedule.hpp); buckets are spaced by this
/// stride so concurrent in-flight buckets cannot collide. A fused call owns
/// [tag_base, tag_base + BucketCount()·stride) — the range to purge after
/// an aborted call.
inline int FusionTagStride(std::size_t world) {
  return static_cast<int>(2 * world + 2);
}

/// Cooperative fused sum-allreduce: every group member calls it with the
/// same specs/plan/options and its local per-tensor buffers. Each bucket is
/// gathered into a staging buffer, allreduced under the options' schedule
/// and compression (bucket i's pass uses options.tag_base +
/// i·FusionTagStride(world)), and scattered back — with
/// Compression::kNone the results are bitwise identical to reducing one
/// concatenated buffer.
void FusedAllreduce(const CollectiveContext& ctx,
                    const CollectiveOptions& options,
                    std::span<const TensorSpec> specs,
                    std::span<float* const> tensors, const FusionPlan& plan);

/// Timed variant: every hop receive of every bucket's pass is bounded by
/// options.hop_timeout (0 or negative = wait forever), routed through the
/// same pass deadline machinery as AllreduceFor. Returns false when a hop
/// timed out or the fabric shut down; the tensors are then in an
/// unspecified partial state (completed buckets reduced, the failed and
/// later buckets not) and the caller must discard the round and purge the
/// call's tag range before those tags are reused.
bool FusedAllreduceFor(const CollectiveContext& ctx,
                       const CollectiveOptions& options,
                       std::span<const TensorSpec> specs,
                       std::span<float* const> tensors,
                       const FusionPlan& plan);

}  // namespace rna::collectives
