#pragma once

// The allreduce family behind one options struct: every schedule ×
// compression combination runs through `AllreduceFor(ctx, options, data)`.
// This replaces the old grown-by-accretion positional entry points
// (RingAllreduce / RingAllreduceFor / RingPartialAllreduce): call sites
// build a CollectiveOptions once and the same options select the wire
// format and topology everywhere — flat rings, hierarchical groups, fused
// buckets, Horovod's baseline.

#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "rna/collectives/options.hpp"
#include "rna/collectives/ring.hpp"

namespace rna::collectives {

/// One binomial-tree allreduce pass (Schedule::kTree): a reduce-to-root
/// up-sweep (log₂N rounds; at round `mask` every position with that bit
/// set sends its full partial sum to pos − mask) followed by a binomial
/// broadcast down-sweep. 2·⌈log₂N⌉ sequential hops instead of the ring's
/// 2(N−1) — the latency-optimal choice for small buffers or large worlds —
/// at the cost of full-buffer payloads per hop.
///
/// Compression applies once per rank: each rank encodes its reduce send
/// (with error feedback) and the root encodes the broadcast frame, which
/// is then forwarded verbatim down the tree, so all ranks end bitwise
/// identical. Same LaunchHop/CompleteHop driving contract as RingPass;
/// tags stay inside [tag_base, tag_base + TreeTagSpan(world)).
class TreePass {
 public:
  TreePass(const CollectiveContext& ctx, const CollectiveOptions& options,
           std::span<float> data);

  /// Performs every send that precedes the next blocking receive.
  void LaunchHop();

  /// Drives the pass through its next receive (and any sends that follow
  /// it). False when the receive timed out or the fabric shut down.
  bool CompleteHop();

  bool Done() const { return stage_ == Stage::kDone && !failed_; }
  bool Failed() const { return failed_; }

 private:
  enum class Stage { kReduce, kBcastRecv, kBcastSend, kDone };

  std::vector<float> EncodeFrame();
  void SendFrame(std::size_t to_pos, int tag, bool last);
  void BeginBroadcast();

  net::Fabric* fabric_;
  const Group* group_;
  std::span<float> data_;
  int tag_base_;
  common::Seconds hop_timeout_;
  net::wire::Format format_;
  double topk_fraction_;
  std::size_t exact_tail_;
  ErrorFeedback* feedback_;
  std::size_t feedback_offset_;

  std::size_t world_;
  std::size_t pos_ = 0;
  Rank self_ = 0;
  std::size_t top_mask_ = 0;    ///< highest power of two below world
  std::size_t level_ = 0;       ///< mask this position sends up at (0=root)
  Stage stage_ = Stage::kDone;
  std::size_t reduce_mask_ = 1;
  std::size_t bcast_mask_ = 0;
  /// The encoded frame being fanned out to children (root: fresh encode;
  /// inner nodes: the received frame, forwarded verbatim).
  std::optional<std::vector<float>> frame_;
  bool failed_ = false;
};

/// A schedule-polymorphic pass: RingPass for Schedule::kRing/kStragglar,
/// TreePass for Schedule::kTree, behind the LaunchHop/CompleteHop driving
/// interface fusion pipelines against.
class Pass {
 public:
  Pass(const CollectiveContext& ctx, const CollectiveOptions& options,
       std::span<float> data);

  void LaunchHop();
  bool CompleteHop();
  bool Done() const;
  bool Failed() const;

 private:
  std::variant<RingPass, TreePass> impl_;
};

/// In-place sum-allreduce: after the call every member's `data` holds the
/// elementwise sum across the group (for lossy compression: the identical
/// decoded reconstruction of it on every member). All members must pass
/// equal-size buffers and identical options; the pass's tags live in
/// [options.tag_base, options.tag_base + TreeTagSpan(world)).
///
/// Returns false when a hop timed out (options.hop_timeout > 0) or the
/// fabric shut down — i.e. a group member crashed mid-collective — leaving
/// `data` in an undefined partial state; the caller must abort the round,
/// discard the buffer, and purge the tag range. This is what keeps a
/// mid-collective crash from deadlocking every survivor in Recv.
bool AllreduceFor(const CollectiveContext& ctx,
                  const CollectiveOptions& options, std::span<float> data);

/// Throwing wrapper: terminates (RNA_CHECK) if the collective aborted.
/// For call sites with no abort path (tests, benches, setup).
void Allreduce(const CollectiveContext& ctx, const CollectiveOptions& options,
               std::span<float> data);

struct PartialResult {
  /// Number of ranks that contributed a real gradient (Σw).
  std::size_t contributors = 0;
  /// False when the collective aborted (member crash / timeout / shutdown);
  /// the data buffer is zeroed and contributors is 0 in that case.
  bool ok = true;
};

/// Partial allreduce (Algorithm 2): ranks with `contributes == false` send
/// a null gradient (their buffer is zeroed on entry). On exit every
/// member's buffer holds (Σ contributed gradients) / Σw — the weighted
/// average — or all zeros when nobody contributed. The contributor count
/// rides as one bit-exact tail element appended to the payload, so it
/// survives every compression policy. options.exact_tail is overridden
/// accordingly; options.hop_timeout > 0 bounds each hop receive, and on
/// timeout the result has ok == false (see AllreduceFor).
PartialResult PartialAllreduceFor(const CollectiveContext& ctx,
                                 const CollectiveOptions& options,
                                 std::span<float> data, bool contributes);

}  // namespace rna::collectives
