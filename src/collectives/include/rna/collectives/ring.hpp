#pragma once

// From-scratch ring collectives over the in-process fabric, built the way
// the paper describes Ring AllReduce (§2.2): N−1 reduce-scatter steps, each
// moving 1/N of the buffer to the left-to-right neighbor, then N−1
// all-gather steps. These primitives are *cooperative*: every member of the
// group must call the same operation with the same tag_base, exactly like an
// MPI collective.
//
// Data plane (see DESIGN.md "Data plane & memory"): hop payloads are
// acquired from the fabric's BufferPool and recycled by the receiver after
// folding, so a steady-state ring moves buffers instead of allocating them;
// the reduce-scatter accumulate and the W = 1/Σw re-weight run through the
// vectorized kernels in rna/common/simd.hpp (bitwise identical to their
// scalar references). Hops are exposed as a resumable RingPass state
// machine so fusion can pipeline several buckets' rings.
//
// `RingPartialAllreduce` is the partial-collective variant RNA is built on:
// each rank declares whether it contributes a real gradient; a contributor
// count rides along in the reduction, and the reduced sum is re-weighted by
// W = 1/Σw on every rank (Algorithm 2 in the paper). Non-contributors pass
// a null (zero) gradient, which preserves the communication graph.

#include <span>
#include <vector>

#include "rna/net/fabric.hpp"

namespace rna::collectives {

using net::Rank;

/// An ordered set of fabric endpoints forming one logical ring.
/// For flat (non-hierarchical) training this is simply {0, 1, ..., N−1}.
struct Group {
  std::vector<Rank> members;

  std::size_t Size() const { return members.size(); }
  Rank At(std::size_t index) const { return members.at(index); }

  /// Index of a fabric rank inside the group; throws if absent.
  std::size_t IndexOf(Rank rank) const;

  static Group Full(std::size_t world);
};

/// One ring allreduce pass as a resumable hop state machine: 2(N−1) hops,
/// each a LaunchHop() (send this step's chunk to the right neighbor, never
/// blocks) followed by a CompleteHop() (receive, fold, advance). Driving it
/// to completion hop by hop reproduces RingAllreduceFor exactly; launching
/// the first hop of pass k+1 before completing pass k is what lets
/// FusedAllreduceFor pipeline buckets (each pass owns a disjoint tag range).
///
/// The caller's `data` span and `group` must outlive the pass. A timeout or
/// fabric shutdown marks the pass Failed(); the data buffer is then in an
/// undefined partial state and the pass's tag range should be purged before
/// the tags are reused.
class RingPass {
 public:
  /// `hop_timeout` > 0 bounds every CompleteHop receive; 0 or negative
  /// waits until the message arrives or the fabric shuts down.
  RingPass(net::Fabric& fabric, const Group& group, std::size_t my_index,
           std::span<float> data, int tag_base, common::Seconds hop_timeout);

  /// Sends the current hop's chunk if it has not been sent yet. No-op when
  /// the pass is Done(), Failed(), or the hop is already in flight.
  void LaunchHop();

  /// Receives and folds the current hop (launching it first if needed).
  /// Returns false when the hop timed out or the fabric shut down — the
  /// pass is Failed() from then on. Returns true (without work) when Done().
  bool CompleteHop();

  bool Done() const { return step_ >= total_steps_; }
  bool Failed() const { return failed_; }

 private:
  std::size_t OffsetOf(std::size_t c) const;
  std::span<float> Chunk(std::size_t c) const;
  int TagOf(std::size_t step) const;

  net::Fabric* fabric_;
  const Group* group_;
  std::size_t my_index_;
  std::span<float> data_;
  int tag_base_;
  common::Seconds hop_timeout_;

  std::size_t world_;
  Rank self_ = 0;
  Rank right_ = 0;
  std::size_t chunk_base_ = 0;
  std::size_t chunk_extra_ = 0;
  std::size_t total_steps_ = 0;
  std::size_t step_ = 0;
  bool sent_ = false;
  bool failed_ = false;
};

/// In-place sum-allreduce: after the call every member's `data` holds the
/// elementwise sum across the group. `my_index` is this caller's position in
/// the group. All members must pass equal-size buffers and the same
/// tag_base; tag_base must not collide with other traffic in flight.
void RingAllreduce(net::Fabric& fabric, const Group& group,
                   std::size_t my_index, std::span<float> data, int tag_base);

/// Timed variant: each of the 2(N−1) hop receives waits at most
/// `hop_timeout` seconds (0 or negative = wait forever). Returns false when
/// a hop timed out or the fabric shut down — i.e. a group member crashed
/// mid-collective — leaving `data` in an undefined partial state; the
/// caller must abort the round and discard the buffer. This is what keeps a
/// mid-ring crash from deadlocking every survivor in Recv.
bool RingAllreduceFor(net::Fabric& fabric, const Group& group,
                      std::size_t my_index, std::span<float> data,
                      int tag_base, common::Seconds hop_timeout);

struct PartialResult {
  /// Number of ranks that contributed a real gradient (Σw).
  std::size_t contributors = 0;
  /// False when the collective aborted (member crash / timeout / shutdown);
  /// the data buffer is zeroed and contributors is 0 in that case.
  bool ok = true;
};

/// Partial allreduce (Algorithm 2): ranks with `contributes == false` send a
/// null gradient (their buffer is zeroed on entry). On exit every member's
/// buffer holds (Σ contributed gradients) / Σw — the weighted average — or
/// all zeros when nobody contributed. `hop_timeout` > 0 bounds each hop
/// receive; on timeout the result has ok == false (see RingAllreduceFor).
PartialResult RingPartialAllreduce(net::Fabric& fabric, const Group& group,
                                   std::size_t my_index, std::span<float> data,
                                   bool contributes, int tag_base,
                                   common::Seconds hop_timeout = 0.0);

/// Star broadcast from `root_index` to all other members.
void Broadcast(net::Fabric& fabric, const Group& group, std::size_t my_index,
               std::size_t root_index, std::span<float> data, int tag_base);

/// Timed broadcast receive (the root never blocks): false when the root's
/// message did not arrive within `timeout` (0 or negative = wait forever).
bool BroadcastFor(net::Fabric& fabric, const Group& group,
                  std::size_t my_index, std::size_t root_index,
                  std::span<float> data, int tag_base,
                  common::Seconds timeout);

/// Full barrier over the group (gather-to-first + release). Blocks until
/// every member arrives or the fabric shuts down.
void Barrier(net::Fabric& fabric, const Group& group, std::size_t my_index,
             int tag_base);

/// Timed barrier: `timeout` > 0 bounds the *whole* barrier (the leader's
/// gather and each follower's release wait share one deadline); 0 or
/// negative waits forever. Returns false when the deadline passed or the
/// fabric shut down — some members may then be left waiting on tag_base/
/// tag_base+1 traffic that never comes, so they must run with a timeout
/// too (that is the caller's migration contract: no untimed barrier on any
/// fault-exposed path).
bool BarrierFor(net::Fabric& fabric, const Group& group, std::size_t my_index,
                int tag_base, common::Seconds timeout);

}  // namespace rna::collectives
