#pragma once

// From-scratch ring collectives over the in-process fabric, built the way
// the paper describes Ring AllReduce (§2.2): N−1 reduce-scatter steps, each
// moving 1/N of the buffer to the left-to-right neighbor, then N−1
// all-gather steps. These primitives are *cooperative*: every member of the
// group must call the same operation with the same options, exactly like an
// MPI collective. The allreduce entry points live in allreduce.hpp; this
// header has the ring pass state machine plus the broadcast/barrier
// primitives.
//
// Data plane (see DESIGN.md "Data plane & memory"): hop payloads are
// acquired from the fabric's BufferPool and recycled by the receiver after
// folding, so a steady-state ring moves buffers instead of allocating them;
// the reduce-scatter accumulate and the W = 1/Σw re-weight run through the
// vectorized kernels in rna/common/simd.hpp (bitwise identical to their
// scalar references). Hops are exposed as a resumable RingPass state
// machine so fusion can pipeline several buckets' rings.

#include <optional>
#include <span>
#include <vector>

#include "rna/collectives/options.hpp"
#include "rna/net/fabric.hpp"

namespace rna::collectives {

namespace detail {
/// Receive with the collective deadline contract: `timeout` > 0 is a plain
/// timed receive; 0 or negative loops bounded RecvFor slices with an
/// IsClosed check between them, so even "untimed" collectives never sit in
/// an unbounded blocking receive.
std::optional<net::Message> RecvHop(net::Fabric& fabric, Rank self, int tag,
                                    common::Seconds timeout);
}  // namespace detail

/// One ring allreduce pass as a resumable hop state machine: 2(N−1) hops,
/// each a LaunchHop() (send this step's chunk to the right neighbor, never
/// blocks) followed by a CompleteHop() (receive, fold, advance). Driving it
/// to completion hop by hop is AllreduceFor with Schedule::kRing; launching
/// the first hop of pass k+1 before completing pass k is what lets
/// FusedAllreduceFor pipeline buckets (each pass owns a disjoint tag range,
/// see RingTagSpan in schedule.hpp).
///
/// Options consumed: compression (chunks are encoded through rna/net/wire
/// on every send — Compression::kNone keeps the historical dense payloads
/// bit for bit), topk_fraction, exact_tail, feedback, hop_timeout,
/// tag_base, and — when schedule == Schedule::kStragglar — `straggler`:
/// that member is moved to the ring's tail *position* (chunk ownership and
/// neighbors permute with it; tags do not), so its slow hops overlap the
/// most other work instead of stalling a fixed pair of neighbors.
///
/// The caller's `data` span, group, and feedback must outlive the pass. A
/// timeout or fabric shutdown marks the pass Failed(); the data buffer is
/// then in an undefined partial state and the pass's tag range should be
/// purged before the tags are reused.
class RingPass {
 public:
  RingPass(const CollectiveContext& ctx, const CollectiveOptions& options,
           std::span<float> data);

  /// Sends the current hop's chunk if it has not been sent yet. No-op when
  /// the pass is Done(), Failed(), or the hop is already in flight.
  void LaunchHop();

  /// Receives and folds the current hop (launching it first if needed).
  /// Returns false when the hop timed out or the fabric shut down — the
  /// pass is Failed() from then on. Returns true (without work) when Done().
  bool CompleteHop();

  bool Done() const { return step_ >= total_steps_; }
  bool Failed() const { return failed_; }

 private:
  std::size_t OffsetOf(std::size_t c) const;
  std::span<float> Chunk(std::size_t c) const;
  std::size_t TailInChunk(std::size_t c) const;
  int TagOf(std::size_t step) const;
  std::size_t PosToIndex(std::size_t pos) const;
  std::vector<float> EncodeChunk(std::size_t c);

  net::Fabric* fabric_;
  const Group* group_;
  std::span<float> data_;
  int tag_base_;
  common::Seconds hop_timeout_;
  net::wire::Format format_;
  double topk_fraction_;
  std::size_t exact_tail_;
  ErrorFeedback* feedback_;
  std::size_t feedback_offset_;
  std::size_t straggler_;  ///< group index at the tail, or kNoStraggler

  std::size_t world_;
  std::size_t pos_ = 0;  ///< my position in the (possibly permuted) ring
  Rank self_ = 0;
  Rank right_ = 0;
  std::size_t chunk_base_ = 0;
  std::size_t chunk_extra_ = 0;
  std::size_t total_steps_ = 0;
  std::size_t step_ = 0;
  bool sent_ = false;
  bool failed_ = false;
  /// All-gather frames are forwarded verbatim (never re-encoded, so lossy
  /// compression is applied exactly once per chunk); this stashes the frame
  /// received last hop until the next LaunchHop sends it on.
  std::optional<std::vector<float>> forward_;
};

/// Star broadcast from `root_index` to all other members.
void Broadcast(net::Fabric& fabric, const Group& group, std::size_t my_index,
               std::size_t root_index, std::span<float> data, int tag_base);

/// Timed broadcast receive (the root never blocks): false when the root's
/// message did not arrive within `timeout` (0 or negative = wait forever).
bool BroadcastFor(net::Fabric& fabric, const Group& group,
                  std::size_t my_index, std::size_t root_index,
                  std::span<float> data, int tag_base,
                  common::Seconds timeout);

/// Full barrier over the group (gather-to-first + release). Blocks until
/// every member arrives or the fabric shuts down.
void Barrier(net::Fabric& fabric, const Group& group, std::size_t my_index,
             int tag_base);

/// Timed barrier: `timeout` > 0 bounds the *whole* barrier (the leader's
/// gather and each follower's release wait share one deadline); 0 or
/// negative waits forever. Returns false when the deadline passed or the
/// fabric shut down — some members may then be left waiting on tag_base/
/// tag_base+1 traffic that never comes, so they must run with a timeout
/// too (that is the caller's migration contract: no untimed barrier on any
/// fault-exposed path).
bool BarrierFor(net::Fabric& fabric, const Group& group, std::size_t my_index,
                int tag_base, common::Seconds timeout);

}  // namespace rna::collectives
