#pragma once

// Named-metrics registry: counters (monotonic int64), gauges (last-set
// double) and timers (OnlineStats distributions). Unlike the trace ring
// buffers this side is mutex-guarded and safe to read live — it is the
// machine-readable side of observability (exported as JSONL for the
// BENCH_*.json trajectory), while spans are the human/Perfetto side.
//
// Like tracing, installation is process-global (SetActiveMetrics /
// Session): library code reports through the free helpers CountMetric /
// ObserveMetric / SetGauge, which are single-atomic-load no-ops when no
// registry is installed.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rna/common/mutex.hpp"
#include "rna/common/stats.hpp"
#include "rna/common/thread_annotations.hpp"

namespace rna::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Add(std::string_view name, std::int64_t delta = 1);
  void Set(std::string_view name, double value);
  void Observe(std::string_view name, double sample);

  /// 0 / 0.0 / empty stats for names never reported.
  std::int64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  common::OnlineStats StatsFor(std::string_view name) const;

  struct Row {
    std::string name;
    std::string kind;  ///< "counter" | "gauge" | "stats"
    std::int64_t count = 0;
    double value = 0.0;  ///< counter/gauge value; stats mean
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double stddev = 0.0;
  };

  /// Every metric, sorted by (kind, name).
  std::vector<Row> Rows() const;

  /// One JSON object per line, schema matching Row.
  void ExportJsonl(std::ostream& out) const;

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::int64_t, std::less<>> counters_
      RNA_GUARDED_BY(mu_);
  std::map<std::string, double, std::less<>> gauges_ RNA_GUARDED_BY(mu_);
  std::map<std::string, common::OnlineStats, std::less<>> stats_
      RNA_GUARDED_BY(mu_);
};

void SetActiveMetrics(MetricsRegistry* registry);
MetricsRegistry* ActiveMetrics();

/// No-ops when no registry is installed.
void CountMetric(std::string_view name, std::int64_t delta = 1);
void SetGauge(std::string_view name, double value);
void ObserveMetric(std::string_view name, double sample);

}  // namespace rna::obs
