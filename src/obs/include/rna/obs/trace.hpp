#pragma once

// Span tracing — the repo's single source of timing truth. Every headline
// number in the paper is a timing artifact (Figure 1's compute/wait/comm
// breakdown, Figure 3's per-worker round timeline, Table 5's overhead
// accounting), so protocol runners measure themselves through this API
// instead of ad-hoc stopwatches (tools/lint.py bans `common::Stopwatch` in
// runner code; see the raw-stopwatch rule).
//
// Model:
//   * A TraceRecorder owns a set of *tracks*, one per instrumented thread
//     (worker 3's comm thread, a group controller, the PS serve loop, …).
//     Each track is a fixed-capacity single-producer ring buffer of
//     timestamped spans — recording is lock-free and wait-free: one relaxed
//     load + one release store of the track's count, no allocation.
//   * ScopedTimer is the universal timing primitive: it always measures
//     (two steady_clock reads, exactly what the old stopwatches cost),
//     optionally accumulates into a caller's `Seconds` slot (this is how
//     WorkerTimeBreakdown is filled), and records a span iff a recorder is
//     installed. With no recorder the extra cost over a bare stopwatch is
//     one relaxed atomic load — the <2% disabled-overhead budget asserted
//     by bench_obs_overhead.
//   * Installation is process-global (SetActiveTrace / Session in
//     session.hpp): runners, WorkerContext, the fabric and the PS pick the
//     recorder up ambiently, so instrumentation needs no config plumbing.
//
// Thread-safety contract (checked by the PR-2 lint/TSan gates):
//   * RegisterTrack is mutex-guarded and rare (thread start).
//   * Record / ScopedTimer::Stop on one track must come from one thread at
//     a time (each thread registers its own track).
//   * Snapshot() requires producer quiescence: call it after the producing
//     threads joined (the join orders their plain ring writes before the
//     reads), or while producers are provably idle. Protocol runners
//     snapshot after the final join; live consumers use MetricsRegistry,
//     which is internally locked, instead.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"

namespace rna::obs {

/// Span taxonomy. kCompute / kWait / kComm are the Figure 1 decomposition
/// and sum into WorkerTimeBreakdown; the rest are structural.
enum class Category : std::uint8_t {
  kCompute,  ///< forward/backward + injected straggler delay
  kWait,     ///< blocked on barrier / trigger / peers / controller
  kComm,     ///< inside a collective / gossip exchange / PS call
  kRound,    ///< controller-side synchronization-round lifecycle
  kRpc,      ///< point-to-point request handling (PS serve, probe)
  kEval,     ///< monitor evaluation passes
  kFault,    ///< injected faults + recovery actions (retries, re-elections)
  kOther,    ///< totals, calibration, harness phases
};

const char* CategoryName(Category c);

/// One completed span. Names and arg keys must be static-duration strings
/// (string literals): spans live in pre-sized ring slots and never own
/// memory.
struct Span {
  const char* name = "";
  Category category = Category::kOther;
  common::Seconds start = 0.0;     ///< seconds since the recorder's epoch
  common::Seconds duration = 0.0;
  std::uint32_t track = 0;
  const char* arg_keys[2] = {nullptr, nullptr};
  double arg_vals[2] = {0.0, 0.0};
};

namespace internal {

/// Single-producer span ring. The producer alone advances `count`; readers
/// see a consistent prefix via the release/acquire pair, and whole-ring
/// consistency once the producer thread is joined.
struct TraceRing {
  explicit TraceRing(std::string track_name, std::size_t capacity)
      : name(std::move(track_name)), slots(capacity) {}

  const std::string name;
  std::vector<Span> slots;
  std::atomic<std::uint64_t> count{0};
};

}  // namespace internal

class TraceRecorder;

/// A cheap (two-pointer) handle to one track of one recorder. Null handles
/// (default-constructed, or registered while no recorder was active) are
/// valid and record nothing. A handle must not outlive its recorder.
class TrackHandle {
 public:
  TrackHandle() = default;

  bool Enabled() const { return ring_ != nullptr; }
  TraceRecorder* Recorder() const { return recorder_; }

 private:
  friend class TraceRecorder;
  friend class ScopedTimer;
  TrackHandle(TraceRecorder* recorder, internal::TraceRing* ring)
      : recorder_(recorder), ring_(ring) {}

  TraceRecorder* recorder_ = nullptr;
  internal::TraceRing* ring_ = nullptr;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultTrackCapacity = 1 << 14;

  explicit TraceRecorder(std::size_t track_capacity = kDefaultTrackCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Creates (or revives — see below) the track named `name` and hands out
  /// its producer handle. Thread-safe; meant for thread start, not hot
  /// paths. Re-registering an existing name returns the same ring, so a
  /// logical actor re-created across phases keeps appending to one track
  /// (the single-producer rule then applies to the actors sequentially).
  TrackHandle RegisterTrack(const std::string& name);

  /// Seconds since this recorder's construction (the trace epoch).
  common::Seconds Now() const { return SinceEpoch(common::SteadyClock::now()); }

  common::Seconds SinceEpoch(common::SteadyClock::time_point tp) const {
    return common::ToSeconds(tp - epoch_);
  }

  /// Lock-free append of a completed span (single producer per track).
  void Record(const TrackHandle& track, const Span& span);

  struct TrackView {
    std::string name;
    std::uint32_t id = 0;
    std::vector<Span> spans;        ///< oldest → newest surviving span
    std::uint64_t recorded = 0;     ///< total ever recorded on the track
    std::uint64_t dropped = 0;      ///< overwritten by ring wrap-around
  };

  /// Copies out every track. Requires producer quiescence (see header
  /// comment); spans are returned oldest-first per track.
  std::vector<TrackView> Snapshot() const;

  std::size_t TrackCount() const;
  std::uint64_t TotalRecorded() const;
  std::uint64_t TotalDropped() const;
  std::size_t TrackCapacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const common::SteadyClock::time_point epoch_;
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<internal::TraceRing>> tracks_
      RNA_GUARDED_BY(mu_);
};

/// Process-global recorder installation (see Session for the RAII form).
/// Passing nullptr disables tracing. The installed recorder must outlive
/// every thread that might still time spans against it.
void SetActiveTrace(TraceRecorder* recorder);
TraceRecorder* ActiveTrace();

/// Registers `name` on the active recorder; a null handle if none is
/// installed. The calling thread should own the returned track.
TrackHandle RegisterTrack(const std::string& name);

/// Canonical track naming for per-worker threads: "worker<rank>/<role>".
/// Figure queries (WorkerAccounts in export.hpp) parse this shape.
std::string WorkerTrack(std::size_t rank, const char* role);

/// The universal timing primitive (see the header comment for the cost
/// model). Measures from construction until Stop() / destruction; on stop
/// it adds the elapsed seconds to `accumulate` (if given) and records a
/// span on `track` (if enabled and the recorder is still the active one).
class ScopedTimer {
 public:
  ScopedTimer(const TrackHandle& track, Category category, const char* name,
              common::Seconds* accumulate = nullptr)
      : track_(track),
        acc_(accumulate),
        start_(common::SteadyClock::now()) {
    span_.name = name;
    span_.category = category;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { Stop(); }

  /// Attaches a numeric annotation (round id, contributor count, …). At
  /// most two; later calls overwrite the second slot. Keys must be string
  /// literals.
  void SetArg(const char* key, double value) {
    const std::size_t slot = span_.arg_keys[0] == nullptr ? 0
                             : span_.arg_keys[0] == key   ? 0
                             : 1;
    span_.arg_keys[slot] = key;
    span_.arg_vals[slot] = value;
  }

  /// Elapsed seconds so far, without stopping.
  common::Seconds Elapsed() const {
    return common::ToSeconds(common::SteadyClock::now() - start_);
  }

  /// Ends the measurement (idempotent): accumulates, records, and returns
  /// the elapsed seconds of the first Stop().
  common::Seconds Stop();

 private:
  TrackHandle track_;
  Span span_;
  common::Seconds* acc_ = nullptr;
  common::SteadyClock::time_point start_;
  bool stopped_ = false;
  common::Seconds elapsed_ = 0.0;
};

}  // namespace rna::obs
