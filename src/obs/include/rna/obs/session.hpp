#pragma once

// RAII observability session: owns one TraceRecorder + one MetricsRegistry
// and installs them as the process-global active instances for its
// lifetime. This is the only way user-facing code (CLI, benches, tests)
// should turn observability on:
//
//   rna::obs::Session session;          // tracing + metrics now active
//   auto result = rna::core::RunTraining(cfg);
//   session.ExportTrace("run.trace.json");    // Perfetto-loadable
//   session.ExportMetrics("run.metrics.jsonl");
//
// Exactly one Session may be live at a time (nested installation would
// silently split the trace); the constructor enforces that. Destruction
// uninstalls before the recorder dies, so stale ScopedTimers degrade to
// no-ops instead of dangling.

#include <string>

#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"

namespace rna::obs {

class Session {
 public:
  explicit Session(
      std::size_t track_capacity = TraceRecorder::kDefaultTrackCapacity);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  TraceRecorder& Trace() { return trace_; }
  const TraceRecorder& Trace() const { return trace_; }
  MetricsRegistry& Metrics() { return metrics_; }
  const MetricsRegistry& Metrics() const { return metrics_; }

  /// Chrome trace-event JSON to `path`. Requires producer quiescence (call
  /// after the run returns). Throws on I/O failure.
  void ExportTrace(const std::string& path) const;

  /// JSONL metrics dump to `path`. Throws on I/O failure.
  void ExportMetrics(const std::string& path) const;

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

}  // namespace rna::obs
