#pragma once

// Trace exporters and queries.
//
//  * ExportChromeTrace writes the Chrome trace-event JSON format ("X"
//    complete events + "M" thread_name metadata), loadable in Perfetto /
//    chrome://tracing — one lane per recorder track, spans annotated with
//    their numeric args (round ids, contributor counts, injected delay).
//  * ParseChromeTrace reads that format back (used by the round-trip test
//    and by offline figure tooling).
//  * WorkerAccounts is the Figure 1 query: per-worker compute/wait/comm
//    sums derived purely from spans, which the engine's reported
//    WorkerTimeBreakdown must agree with (cross-checked in test_obs).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "rna/obs/trace.hpp"

namespace rna::obs {

void ExportChromeTrace(const TraceRecorder& recorder, std::ostream& out);

/// Convenience: export straight to `path`; throws on I/O failure.
void ExportChromeTraceFile(const TraceRecorder& recorder,
                           const std::string& path);

/// One parsed trace event (subset of the Chrome schema this repo emits).
struct TraceEvent {
  std::string name;
  std::string cat;
  std::string ph;
  double ts = 0.0;   ///< microseconds
  double dur = 0.0;  ///< microseconds
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::map<std::string, double> args;       ///< numeric args
  std::map<std::string, std::string> sargs; ///< string args (metadata)
};

struct ParsedTrace {
  std::vector<TraceEvent> events;  ///< "X" complete events only
  std::map<std::int64_t, std::string> track_names;  ///< from "M" metadata
};

/// Strict parser for the exporter's output (general JSON value syntax,
/// trace-viewer schema). Throws std::runtime_error on malformed input.
ParsedTrace ParseChromeTrace(std::istream& in);

/// Per-logical-thread sums of the Figure 1 categories.
struct TimeAccount {
  common::Seconds compute = 0.0;
  common::Seconds wait = 0.0;
  common::Seconds comm = 0.0;
  std::uint64_t spans = 0;
};

/// Sums compute/wait/comm spans of every "worker<r>/<role>" track into one
/// account per rank (handles a worker's compute and comm threads being
/// separate tracks). Ranks >= world are ignored.
std::vector<TimeAccount> WorkerAccounts(
    const std::vector<TraceRecorder::TrackView>& tracks, std::size_t world);

/// Same query over a parsed (exported) trace, using the metadata track
/// names; used to regenerate figures from trace files.
std::vector<TimeAccount> WorkerAccounts(const ParsedTrace& trace,
                                        std::size_t world);

}  // namespace rna::obs
