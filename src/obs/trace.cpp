#include "rna/obs/trace.hpp"

#include <algorithm>

namespace rna::obs {

namespace {

std::atomic<TraceRecorder*> g_active_trace{nullptr};

}  // namespace

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kCompute:
      return "compute";
    case Category::kWait:
      return "wait";
    case Category::kComm:
      return "comm";
    case Category::kRound:
      return "round";
    case Category::kRpc:
      return "rpc";
    case Category::kEval:
      return "eval";
    case Category::kFault:
      return "fault";
    case Category::kOther:
      return "other";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t track_capacity)
    : capacity_(std::max<std::size_t>(1, track_capacity)),
      epoch_(common::SteadyClock::now()) {}

TrackHandle TraceRecorder::RegisterTrack(const std::string& name) {
  common::MutexLock lock(mu_);
  for (const auto& ring : tracks_) {
    if (ring->name == name) return TrackHandle(this, ring.get());
  }
  tracks_.push_back(std::make_unique<internal::TraceRing>(name, capacity_));
  return TrackHandle(this, tracks_.back().get());
}

void TraceRecorder::Record(const TrackHandle& track, const Span& span) {
  internal::TraceRing* ring = track.ring_;
  if (ring == nullptr) return;
  const std::uint64_t n = ring->count.load(std::memory_order_relaxed);
  ring->slots[n % ring->slots.size()] = span;
  ring->count.store(n + 1, std::memory_order_release);
}

std::vector<TraceRecorder::TrackView> TraceRecorder::Snapshot() const {
  common::MutexLock lock(mu_);
  std::vector<TrackView> views;
  views.reserve(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    const internal::TraceRing& ring = *tracks_[t];
    TrackView view;
    view.name = ring.name;
    view.id = static_cast<std::uint32_t>(t);
    view.recorded = ring.count.load(std::memory_order_acquire);
    const std::uint64_t cap = ring.slots.size();
    const std::uint64_t kept = std::min(view.recorded, cap);
    view.dropped = view.recorded - kept;
    view.spans.reserve(kept);
    for (std::uint64_t i = view.recorded - kept; i < view.recorded; ++i) {
      Span span = ring.slots[i % cap];
      span.track = view.id;
      view.spans.push_back(span);
    }
    views.push_back(std::move(view));
  }
  return views;
}

std::size_t TraceRecorder::TrackCount() const {
  common::MutexLock lock(mu_);
  return tracks_.size();
}

std::uint64_t TraceRecorder::TotalRecorded() const {
  common::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : tracks_) {
    total += ring->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::TotalDropped() const {
  common::MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& ring : tracks_) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    total += n > ring->slots.size() ? n - ring->slots.size() : 0;
  }
  return total;
}

void SetActiveTrace(TraceRecorder* recorder) {
  g_active_trace.store(recorder, std::memory_order_release);
}

TraceRecorder* ActiveTrace() {
  return g_active_trace.load(std::memory_order_acquire);
}

TrackHandle RegisterTrack(const std::string& name) {
  TraceRecorder* recorder = ActiveTrace();
  if (recorder == nullptr) return {};
  return recorder->RegisterTrack(name);
}

std::string WorkerTrack(std::size_t rank, const char* role) {
  return "worker" + std::to_string(rank) + "/" + role;
}

common::Seconds ScopedTimer::Stop() {
  if (stopped_) return elapsed_;
  stopped_ = true;
  const common::SteadyClock::time_point end = common::SteadyClock::now();
  elapsed_ = common::ToSeconds(end - start_);
  if (acc_ != nullptr) *acc_ += elapsed_;
  // Record only while the handle's recorder is still the installed one, so
  // a handle that accidentally outlives its Session degrades to a no-op
  // instead of touching a dead ring.
  if (track_.ring_ != nullptr && track_.recorder_ == ActiveTrace()) {
    span_.start = track_.recorder_->SinceEpoch(start_);
    span_.duration = elapsed_;
    track_.recorder_->Record(track_, span_);
  }
  return elapsed_;
}

}  // namespace rna::obs
