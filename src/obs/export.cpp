#include "rna/obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "rna/common/check.hpp"

namespace rna::obs {

namespace {

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

/// Microsecond timestamps with nanosecond resolution; plain %g for args.
void WriteFixed(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

void WriteArg(std::ostream& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void ExportChromeTrace(const TraceRecorder& recorder, std::ostream& out) {
  const std::vector<TraceRecorder::TrackView> tracks = recorder.Snapshot();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const auto& track : tracks) {
    comma();
    out << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track.id
        << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    WriteJsonString(out, track.name);
    out << "}}";
  }
  for (const auto& track : tracks) {
    for (const Span& span : track.spans) {
      comma();
      out << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << track.id << ",\"name\":";
      WriteJsonString(out, span.name);
      out << ",\"cat\":";
      WriteJsonString(out, CategoryName(span.category));
      out << ",\"ts\":";
      WriteFixed(out, span.start * 1e6);
      out << ",\"dur\":";
      WriteFixed(out, span.duration * 1e6);
      bool has_args = false;
      for (int a = 0; a < 2; ++a) {
        if (span.arg_keys[a] == nullptr) continue;
        out << (has_args ? "," : ",\"args\":{");
        has_args = true;
        WriteJsonString(out, span.arg_keys[a]);
        out << ":";
        WriteArg(out, span.arg_vals[a]);
      }
      if (has_args) out << "}";
      out << "}";
    }
  }
  out << "\n]}\n";
}

void ExportChromeTraceFile(const TraceRecorder& recorder,
                           const std::string& path) {
  std::ofstream out(path);
  RNA_CHECK_MSG(out.good(), "cannot open trace output file: " + path);
  ExportChromeTrace(recorder, out);
  out.flush();
  RNA_CHECK_MSG(out.good(), "failed writing trace output file: " + path);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader, strict enough for the trace-viewer
// schema this repo emits (and hand-written traces in tests).

namespace {

class JsonReader {
 public:
  explicit JsonReader(std::istream& in) : in_(in) {}

  // A tagged JSON value; numbers are doubles, as in JSON itself.
  struct Value {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    const Value* Find(const std::string& key) const {
      for (const auto& [k, v] : object) {
        if (k == key) return &v;
      }
      return nullptr;
    }
  };

  Value ParseDocument() {
    Value v = ParseValue();
    SkipSpace();
    if (in_.peek() != std::char_traits<char>::eof()) {
      Fail("trailing content after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("trace JSON parse error: " + what);
  }

  void SkipSpace() {
    while (std::isspace(in_.peek())) in_.get();
  }

  char Next() {
    const int c = in_.get();
    if (c == std::char_traits<char>::eof()) Fail("unexpected end of input");
    return static_cast<char>(c);
  }

  void Expect(char want) {
    const char c = Next();
    if (c != want) {
      Fail(std::string("expected '") + want + "', got '" + c + "'");
    }
  }

  Value ParseValue() {
    SkipSpace();
    const int c = in_.peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = ParseString();
        return v;
      }
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        ParseLiteral("null");
        return Value{};
      default:
        return ParseNumber();
    }
  }

  void ParseLiteral(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (Next() != *p) Fail(std::string("bad literal, expected ") + lit);
    }
  }

  Value ParseBool() {
    Value v;
    v.kind = Value::Kind::kBool;
    if (in_.peek() == 't') {
      ParseLiteral("true");
      v.boolean = true;
    } else {
      ParseLiteral("false");
      v.boolean = false;
    }
    return v;
  }

  Value ParseNumber() {
    std::string text;
    int c = in_.peek();
    while (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' ||
           std::isdigit(c)) {
      text.push_back(static_cast<char>(in_.get()));
      c = in_.peek();
    }
    if (text.empty()) Fail("expected a number");
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(text, &used);
    } catch (const std::exception&) {
      Fail("malformed number: " + text);
    }
    if (used != text.size()) Fail("malformed number: " + text);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      const char c = Next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = Next();
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          default:
            Fail(std::string("unsupported escape \\") + esc);
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Value ParseArray() {
    Expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    SkipSpace();
    if (in_.peek() == ']') {
      in_.get();
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      SkipSpace();
      const char c = Next();
      if (c == ']') return v;
      if (c != ',') Fail("expected ',' or ']' in array");
    }
  }

  Value ParseObject() {
    Expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    SkipSpace();
    if (in_.peek() == '}') {
      in_.get();
      return v;
    }
    for (;;) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      v.object.emplace_back(std::move(key), ParseValue());
      SkipSpace();
      const char c = Next();
      if (c == '}') return v;
      if (c != ',') Fail("expected ',' or '}' in object");
    }
  }

  std::istream& in_;
};

double NumberOr(const JsonReader::Value* v, double fallback) {
  return v != nullptr && v->kind == JsonReader::Value::Kind::kNumber
             ? v->number
             : fallback;
}

std::string StringOr(const JsonReader::Value* v, std::string fallback) {
  return v != nullptr && v->kind == JsonReader::Value::Kind::kString
             ? v->string
             : fallback;
}

}  // namespace

ParsedTrace ParseChromeTrace(std::istream& in) {
  JsonReader reader(in);
  const JsonReader::Value doc = reader.ParseDocument();
  if (doc.kind != JsonReader::Value::Kind::kObject) {
    throw std::runtime_error("trace JSON parse error: top level not an object");
  }
  const JsonReader::Value* events = doc.Find("traceEvents");
  if (events == nullptr ||
      events->kind != JsonReader::Value::Kind::kArray) {
    throw std::runtime_error(
        "trace JSON parse error: missing traceEvents array");
  }

  ParsedTrace trace;
  for (const JsonReader::Value& ev : events->array) {
    if (ev.kind != JsonReader::Value::Kind::kObject) {
      throw std::runtime_error("trace JSON parse error: event not an object");
    }
    TraceEvent event;
    event.ph = StringOr(ev.Find("ph"), "");
    event.name = StringOr(ev.Find("name"), "");
    event.cat = StringOr(ev.Find("cat"), "");
    event.ts = NumberOr(ev.Find("ts"), 0.0);
    event.dur = NumberOr(ev.Find("dur"), 0.0);
    event.pid = static_cast<std::int64_t>(NumberOr(ev.Find("pid"), 0.0));
    event.tid = static_cast<std::int64_t>(NumberOr(ev.Find("tid"), 0.0));
    if (const JsonReader::Value* args = ev.Find("args");
        args != nullptr && args->kind == JsonReader::Value::Kind::kObject) {
      for (const auto& [key, value] : args->object) {
        if (value.kind == JsonReader::Value::Kind::kNumber) {
          event.args[key] = value.number;
        } else if (value.kind == JsonReader::Value::Kind::kString) {
          event.sargs[key] = value.string;
        }
      }
    }
    if (event.ph == "M" && event.name == "thread_name") {
      const auto it = event.sargs.find("name");
      if (it != event.sargs.end()) trace.track_names[event.tid] = it->second;
      continue;
    }
    if (event.ph == "X") trace.events.push_back(std::move(event));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// Figure queries.

namespace {

/// "worker<r>/<role>" → rank, or npos for non-worker tracks.
std::size_t WorkerRankOf(const std::string& track_name) {
  constexpr std::string_view prefix = "worker";
  if (track_name.compare(0, prefix.size(), prefix) != 0) {
    return std::string::npos;
  }
  std::size_t pos = prefix.size();
  if (pos >= track_name.size() || !std::isdigit(track_name[pos])) {
    return std::string::npos;
  }
  std::size_t rank = 0;
  while (pos < track_name.size() && std::isdigit(track_name[pos])) {
    rank = rank * 10 + static_cast<std::size_t>(track_name[pos] - '0');
    ++pos;
  }
  if (pos >= track_name.size() || track_name[pos] != '/') {
    return std::string::npos;
  }
  return rank;
}

void Accumulate(TimeAccount& account, Category category,
                common::Seconds duration) {
  switch (category) {
    case Category::kCompute:
      account.compute += duration;
      break;
    case Category::kWait:
      account.wait += duration;
      break;
    case Category::kComm:
      account.comm += duration;
      break;
    default:
      return;  // structural spans don't count toward the breakdown
  }
  ++account.spans;
}

Category CategoryFromName(const std::string& name) {
  if (name == "compute") return Category::kCompute;
  if (name == "wait") return Category::kWait;
  if (name == "comm") return Category::kComm;
  if (name == "round") return Category::kRound;
  if (name == "rpc") return Category::kRpc;
  if (name == "eval") return Category::kEval;
  if (name == "fault") return Category::kFault;
  return Category::kOther;
}

}  // namespace

std::vector<TimeAccount> WorkerAccounts(
    const std::vector<TraceRecorder::TrackView>& tracks, std::size_t world) {
  std::vector<TimeAccount> accounts(world);
  for (const auto& track : tracks) {
    const std::size_t rank = WorkerRankOf(track.name);
    if (rank == std::string::npos || rank >= world) continue;
    for (const Span& span : track.spans) {
      Accumulate(accounts[rank], span.category, span.duration);
    }
  }
  return accounts;
}

std::vector<TimeAccount> WorkerAccounts(const ParsedTrace& trace,
                                        std::size_t world) {
  std::vector<TimeAccount> accounts(world);
  for (const TraceEvent& event : trace.events) {
    const auto name_it = trace.track_names.find(event.tid);
    if (name_it == trace.track_names.end()) continue;
    const std::size_t rank = WorkerRankOf(name_it->second);
    if (rank == std::string::npos || rank >= world) continue;
    Accumulate(accounts[rank], CategoryFromName(event.cat), event.dur * 1e-6);
  }
  return accounts;
}

}  // namespace rna::obs
