#include "rna/obs/metrics.hpp"

#include <atomic>
#include <ostream>

namespace rna::obs {

namespace {

std::atomic<MetricsRegistry*> g_active_metrics{nullptr};

// std::map<std::string, V, std::less<>> supports heterogeneous lookup but
// not heterogeneous insertion; this avoids an allocation on the hit path.
template <typename Map, typename Value>
auto& Slot(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), Value{}).first;
  }
  return it->second;
}

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

}  // namespace

void MetricsRegistry::Add(std::string_view name, std::int64_t delta) {
  common::MutexLock lock(mu_);
  Slot<decltype(counters_), std::int64_t>(counters_, name) += delta;
}

void MetricsRegistry::Set(std::string_view name, double value) {
  common::MutexLock lock(mu_);
  Slot<decltype(gauges_), double>(gauges_, name) = value;
}

void MetricsRegistry::Observe(std::string_view name, double sample) {
  common::MutexLock lock(mu_);
  Slot<decltype(stats_), common::OnlineStats>(stats_, name).Add(sample);
}

std::int64_t MetricsRegistry::CounterValue(std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

common::OnlineStats MetricsRegistry::StatsFor(std::string_view name) const {
  common::MutexLock lock(mu_);
  const auto it = stats_.find(name);
  return it == stats_.end() ? common::OnlineStats{} : it->second;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::Rows() const {
  common::MutexLock lock(mu_);
  std::vector<Row> rows;
  rows.reserve(counters_.size() + gauges_.size() + stats_.size());
  for (const auto& [name, value] : counters_) {
    Row row;
    row.name = name;
    row.kind = "counter";
    row.count = value;
    row.value = static_cast<double>(value);
    rows.push_back(std::move(row));
  }
  for (const auto& [name, value] : gauges_) {
    Row row;
    row.name = name;
    row.kind = "gauge";
    row.value = value;
    rows.push_back(std::move(row));
  }
  for (const auto& [name, stats] : stats_) {
    Row row;
    row.name = name;
    row.kind = "stats";
    row.count = static_cast<std::int64_t>(stats.Count());
    row.value = stats.Mean();
    row.min = stats.Min();
    row.max = stats.Max();
    row.sum = stats.Sum();
    row.stddev = stats.Stddev();
    rows.push_back(std::move(row));
  }
  return rows;
}

void MetricsRegistry::ExportJsonl(std::ostream& out) const {
  for (const Row& row : Rows()) {
    out << "{\"name\":";
    WriteJsonString(out, row.name);
    out << ",\"kind\":";
    WriteJsonString(out, row.kind);
    out << ",\"count\":" << row.count << ",\"value\":" << row.value;
    if (row.kind == "stats") {
      out << ",\"min\":" << row.min << ",\"max\":" << row.max
          << ",\"sum\":" << row.sum << ",\"stddev\":" << row.stddev;
    }
    out << "}\n";
  }
}

void SetActiveMetrics(MetricsRegistry* registry) {
  g_active_metrics.store(registry, std::memory_order_release);
}

MetricsRegistry* ActiveMetrics() {
  return g_active_metrics.load(std::memory_order_acquire);
}

void CountMetric(std::string_view name, std::int64_t delta) {
  if (MetricsRegistry* m = ActiveMetrics()) m->Add(name, delta);
}

void SetGauge(std::string_view name, double value) {
  if (MetricsRegistry* m = ActiveMetrics()) m->Set(name, value);
}

void ObserveMetric(std::string_view name, double sample) {
  if (MetricsRegistry* m = ActiveMetrics()) m->Observe(name, sample);
}

}  // namespace rna::obs
