#include "rna/obs/session.hpp"

#include <fstream>

#include "rna/common/check.hpp"
#include "rna/obs/export.hpp"

namespace rna::obs {

Session::Session(std::size_t track_capacity) : trace_(track_capacity) {
  RNA_CHECK_MSG(ActiveTrace() == nullptr && ActiveMetrics() == nullptr,
                "an obs::Session is already active in this process");
  SetActiveTrace(&trace_);
  SetActiveMetrics(&metrics_);
}

Session::~Session() {
  SetActiveTrace(nullptr);
  SetActiveMetrics(nullptr);
}

void Session::ExportTrace(const std::string& path) const {
  ExportChromeTraceFile(trace_, path);
}

void Session::ExportMetrics(const std::string& path) const {
  std::ofstream out(path);
  RNA_CHECK_MSG(out.good(), "cannot open metrics output file: " + path);
  metrics_.ExportJsonl(out);
  out.flush();
  RNA_CHECK_MSG(out.good(), "failed writing metrics output file: " + path);
}

}  // namespace rna::obs
