#include "rna/nn/layer.hpp"

#include <cmath>

#include "rna/common/check.hpp"
#include "rna/nn/init.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

void Layer::ZeroGrads() {
  for (Tensor* g : Grads()) g->Zero();
}

Dense::Dense(std::size_t in, std::size_t out, common::Rng& rng)
    : in_(in),
      out_(out),
      w_({in, out}),
      b_({out}),
      dw_({in, out}),
      db_({out}) {
  XavierUniform(w_, in, out, rng);
}

Tensor Dense::Forward(const Tensor& x) {
  RNA_CHECK_MSG(x.Cols() == in_, "Dense input width mismatch");
  cached_input_ = x;
  Tensor y({x.Rows(), out_});
  tensor::MatMul(x, w_, y);
  tensor::AddRowBroadcast(y, b_.Flat());
  return y;
}

Tensor Dense::Backward(const Tensor& dy) {
  RNA_CHECK_MSG(dy.Rows() == cached_input_.Rows() && dy.Cols() == out_,
                "Dense backward shape mismatch");
  // dW += Xᵀ·dY, db += column sums, dX = dY·Wᵀ.
  tensor::MatMulTN(cached_input_, dy, dw_, 1.0f, 1.0f);
  Tensor col_sums({out_});
  tensor::SumRows(dy, col_sums.Flat());
  tensor::Axpy(1.0f, col_sums.Flat(), db_.Flat());
  Tensor dx({cached_input_.Rows(), in_});
  tensor::MatMulNT(dy, w_, dx);
  return dx;
}

Tensor Relu::Forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (auto& v : y.Flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor Relu::Backward(const Tensor& dy) {
  RNA_CHECK(dy.SameShape(cached_input_));
  Tensor dx = dy;
  auto in = cached_input_.Flat();
  auto out = dx.Flat();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (in[i] <= 0.0f) out[i] = 0.0f;
  }
  return dx;
}

Tensor Tanh::Forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.Flat()) v = std::tanh(v);
  cached_output_ = y;
  return y;
}

Tensor Tanh::Backward(const Tensor& dy) {
  RNA_CHECK(dy.SameShape(cached_output_));
  Tensor dx = dy;
  auto out = cached_output_.Flat();
  auto d = dx.Flat();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= 1.0f - out[i] * out[i];
  return dx;
}

Tensor Sigmoid::Forward(const Tensor& x) {
  Tensor y = x;
  for (auto& v : y.Flat()) v = 1.0f / (1.0f + std::exp(-v));
  cached_output_ = y;
  return y;
}

Tensor Sigmoid::Backward(const Tensor& dy) {
  RNA_CHECK(dy.SameShape(cached_output_));
  Tensor dx = dy;
  auto out = cached_output_.Flat();
  auto d = dx.Flat();
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= out[i] * (1.0f - out[i]);
  return dx;
}

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  RNA_CHECK_MSG(rate >= 0.0 && rate < 1.0, "dropout rate must be in [0, 1)");
}

Tensor Dropout::Forward(const Tensor& x) {
  if (!training_ || rate_ == 0.0) {
    mask_ = Tensor();
    return x;
  }
  mask_ = Tensor(x.Shape());
  const auto keep = static_cast<float>(1.0 / (1.0 - rate_));
  auto m = mask_.Flat();
  for (auto& v : m) v = rng_.Bernoulli(rate_) ? 0.0f : keep;
  Tensor y(x.Shape());
  tensor::Hadamard(x.Flat(), m, y.Flat());
  return y;
}

Tensor Dropout::Backward(const Tensor& dy) {
  if (mask_.Empty()) return dy;
  RNA_CHECK(dy.SameShape(mask_));
  Tensor dx(dy.Shape());
  tensor::Hadamard(dy.Flat(), mask_.Flat(), dx.Flat());
  return dx;
}

}  // namespace rna::nn
