#include "rna/nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"

namespace rna::nn {

SgdMomentum::SgdMomentum(std::size_t param_count, SgdConfig config)
    : config_(config), velocity_(param_count, 0.0f) {}

void SgdMomentum::SetVelocity(std::span<const float> velocity) {
  RNA_CHECK(velocity.size() == velocity_.size());
  std::copy(velocity.begin(), velocity.end(), velocity_.begin());
}

Adam::Adam(std::size_t param_count, AdamConfig config)
    : config_(config), m_(param_count, 0.0f), v_(param_count, 0.0f) {}

void Adam::Step(std::span<float> params, std::span<const float> grad,
                double lr_scale) {
  RNA_CHECK(params.size() == m_.size());
  RNA_CHECK(grad.size() == m_.size());
  ++steps_;
  const auto b1 = static_cast<float>(config_.beta1);
  const auto b2 = static_cast<float>(config_.beta2);
  const auto wd = static_cast<float>(config_.weight_decay);
  const auto eps = static_cast<float>(config_.epsilon);
  const double bias1 =
      1.0 - std::pow(config_.beta1, static_cast<double>(steps_));
  const double bias2 =
      1.0 - std::pow(config_.beta2, static_cast<double>(steps_));
  const auto lr = static_cast<float>(config_.learning_rate * lr_scale *
                                     std::sqrt(bias2) / bias1);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grad[i] + wd * params[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    params[i] -= lr * m_[i] / (std::sqrt(v_[i]) + eps);
  }
}

void SgdMomentum::Step(std::span<float> params, std::span<const float> grad,
                       double lr_scale) {
  RNA_CHECK(params.size() == velocity_.size());
  RNA_CHECK(grad.size() == velocity_.size());
  const auto momentum = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);
  const auto lr = static_cast<float>(config_.learning_rate * lr_scale);
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grad[i] + wd * params[i];
    velocity_[i] = momentum * velocity_[i] + g;
    params[i] -= lr * velocity_[i];
  }
}

}  // namespace rna::nn
