#include "rna/nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               std::span<const std::int32_t> labels) {
  const std::size_t batch = logits.Rows();
  const std::size_t classes = logits.Cols();
  RNA_CHECK_MSG(labels.size() == batch, "labels/logits batch mismatch");

  LossResult result;
  tensor::Tensor probs = logits;
  tensor::SoftmaxRows(probs);

  result.dlogits = probs;
  double total_loss = 0.0;
  const auto inv_batch = static_cast<float>(1.0 / static_cast<double>(batch));
  for (std::size_t i = 0; i < batch; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    RNA_CHECK_MSG(label < classes, "label out of range");
    const float p = std::max(probs.At(i, label), 1e-12f);
    total_loss -= std::log(p);

    const float* row = probs.Data() + i * classes;
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    if (argmax == label) ++result.correct;

    result.dlogits.At(i, label) -= 1.0f;
  }
  tensor::Scale(result.dlogits.Flat(), inv_batch);
  result.loss = total_loss / static_cast<double>(batch);
  return result;
}

}  // namespace rna::nn
