#include "rna/nn/attention.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/nn/init.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

AttentionBlock::AttentionBlock(std::size_t input_dim, std::size_t attn_dim,
                               common::Rng& rng)
    : input_dim_(input_dim),
      attn_dim_(attn_dim),
      wq_({input_dim, attn_dim}),
      wk_({input_dim, attn_dim}),
      wv_({input_dim, attn_dim}),
      dwq_({input_dim, attn_dim}),
      dwk_({input_dim, attn_dim}),
      dwv_({input_dim, attn_dim}) {
  XavierUniform(wq_, input_dim, attn_dim, rng);
  XavierUniform(wk_, input_dim, attn_dim, rng);
  XavierUniform(wv_, input_dim, attn_dim, rng);
}

void AttentionBlock::ZeroGrads() {
  dwq_.Zero();
  dwk_.Zero();
  dwv_.Zero();
}

Tensor AttentionBlock::Forward(const Tensor& x) {
  RNA_CHECK_MSG(x.Cols() == input_dim_, "attention input width mismatch");
  const std::size_t steps = x.Rows();
  input_ = x;
  q_ = Tensor({steps, attn_dim_});
  k_ = Tensor({steps, attn_dim_});
  v_ = Tensor({steps, attn_dim_});
  tensor::MatMul(x, wq_, q_);
  tensor::MatMul(x, wk_, k_);
  tensor::MatMul(x, wv_, v_);

  attn_ = Tensor({steps, steps});
  const auto inv_sqrt =
      static_cast<float>(1.0 / std::sqrt(static_cast<double>(attn_dim_)));
  tensor::MatMulNT(q_, k_, attn_, inv_sqrt);
  tensor::SoftmaxRows(attn_);

  Tensor y({steps, attn_dim_});
  tensor::MatMul(attn_, v_, y);
  return y;
}

Tensor AttentionBlock::Backward(const Tensor& dy) {
  const std::size_t steps = input_.Rows();
  RNA_CHECK_MSG(dy.Rows() == steps && dy.Cols() == attn_dim_,
                "attention backward shape mismatch");
  const auto inv_sqrt =
      static_cast<float>(1.0 / std::sqrt(static_cast<double>(attn_dim_)));

  // Y = P·V  →  dP = dY·Vᵀ, dV = Pᵀ·dY.
  Tensor dp({steps, steps});
  tensor::MatMulNT(dy, v_, dp);
  Tensor dv({steps, attn_dim_});
  tensor::MatMulTN(attn_, dy, dv);

  // Row-softmax backward: dS_i = P_i ⊙ (dP_i − ⟨dP_i, P_i⟩).
  Tensor ds({steps, steps});
  for (std::size_t i = 0; i < steps; ++i) {
    const float* prow = attn_.Data() + i * steps;
    const float* dprow = dp.Data() + i * steps;
    double inner = 0.0;
    for (std::size_t j = 0; j < steps; ++j)
      inner += static_cast<double>(dprow[j]) * prow[j];
    float* dsrow = ds.Data() + i * steps;
    for (std::size_t j = 0; j < steps; ++j)
      dsrow[j] = prow[j] * (dprow[j] - static_cast<float>(inner));
  }

  // S = (Q·Kᵀ)/√A  →  dQ = dS·K/√A, dK = dSᵀ·Q/√A.
  Tensor dq({steps, attn_dim_});
  tensor::MatMul(ds, k_, dq, inv_sqrt);
  Tensor dk({steps, attn_dim_});
  tensor::MatMulTN(ds, q_, dk, inv_sqrt);

  // Projection gradients and the input gradient.
  tensor::MatMulTN(input_, dq, dwq_, 1.0f, 1.0f);
  tensor::MatMulTN(input_, dk, dwk_, 1.0f, 1.0f);
  tensor::MatMulTN(input_, dv, dwv_, 1.0f, 1.0f);

  Tensor dx({steps, input_dim_});
  tensor::MatMulNT(dq, wq_, dx);
  tensor::MatMulNT(dk, wk_, dx, 1.0f, 1.0f);
  tensor::MatMulNT(dv, wv_, dx, 1.0f, 1.0f);
  return dx;
}

MultiHeadAttention::MultiHeadAttention(std::size_t input_dim,
                                       std::size_t head_dim,
                                       std::size_t heads, common::Rng& rng)
    : input_dim_(input_dim), head_dim_(head_dim) {
  RNA_CHECK_MSG(heads >= 1, "need at least one attention head");
  heads_.reserve(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    heads_.emplace_back(input_dim, head_dim, rng);
  }
}

Tensor MultiHeadAttention::Forward(const Tensor& x) {
  const std::size_t steps = x.Rows();
  Tensor out({steps, OutDim()});
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    const Tensor head_out = heads_[h].Forward(x);
    for (std::size_t t = 0; t < steps; ++t) {
      const float* src = head_out.Data() + t * head_dim_;
      float* dst = out.Data() + t * OutDim() + h * head_dim_;
      std::copy(src, src + head_dim_, dst);
    }
  }
  return out;
}

Tensor MultiHeadAttention::Backward(const Tensor& dy) {
  const std::size_t steps = dy.Rows();
  RNA_CHECK_MSG(dy.Cols() == OutDim(), "multi-head backward width mismatch");
  Tensor dx({steps, input_dim_});
  Tensor head_dy({steps, head_dim_});
  for (std::size_t h = 0; h < heads_.size(); ++h) {
    for (std::size_t t = 0; t < steps; ++t) {
      const float* src = dy.Data() + t * OutDim() + h * head_dim_;
      std::copy(src, src + head_dim_, head_dy.Data() + t * head_dim_);
    }
    const Tensor head_dx = heads_[h].Backward(head_dy);
    tensor::Axpy(1.0f, head_dx.Flat(), dx.Flat());
  }
  return dx;
}

std::vector<Tensor*> MultiHeadAttention::Params() {
  std::vector<Tensor*> out;
  for (auto& head : heads_) {
    for (auto* p : head.Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> MultiHeadAttention::Grads() {
  std::vector<Tensor*> out;
  for (auto& head : heads_) {
    for (auto* g : head.Grads()) out.push_back(g);
  }
  return out;
}

void MultiHeadAttention::ZeroGrads() {
  for (auto& head : heads_) head.ZeroGrads();
}

}  // namespace rna::nn
