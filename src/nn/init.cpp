#include "rna/nn/init.hpp"

#include <cmath>

namespace rna::nn {

void XavierUniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                   common::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / (static_cast<double>(fan_in) + static_cast<double>(fan_out)));
  for (auto& x : w.Flat()) x = static_cast<float>(rng.Uniform(-limit, limit));
}

void HeNormal(tensor::Tensor& w, std::size_t fan_in, common::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& x : w.Flat()) x = static_cast<float>(rng.Normal(0.0, stddev));
}

}  // namespace rna::nn
