#include "rna/nn/lstm.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"
#include "rna/nn/init.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Allocates a fixed-size work vector once (long-lived so it survives arena
// scratch resets) and reuses it on every subsequent call.
inline void EnsureScratch(Tensor& t, std::size_t size) {
  if (t.Size() != size) t = Tensor({size}, tensor::Lifetime::kLong);
}

}  // namespace

LstmLayer::LstmLayer(std::size_t input_dim, std::size_t hidden_dim,
                     common::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_({input_dim, 4 * hidden_dim}),
      wh_({hidden_dim, 4 * hidden_dim}),
      b_({4 * hidden_dim}),
      dwx_({input_dim, 4 * hidden_dim}),
      dwh_({hidden_dim, 4 * hidden_dim}),
      db_({4 * hidden_dim}) {
  XavierUniform(wx_, input_dim, 4 * hidden_dim, rng);
  XavierUniform(wh_, hidden_dim, 4 * hidden_dim, rng);
  // Forget-gate bias starts at 1 so early training does not erase the cell.
  for (std::size_t h = 0; h < hidden_dim_; ++h) b_[hidden_dim_ + h] = 1.0f;
}

void LstmLayer::ZeroGrads() {
  dwx_.Zero();
  dwh_.Zero();
  db_.Zero();
}

Tensor LstmLayer::Forward(const Tensor& x) {
  RNA_CHECK_MSG(x.Cols() == input_dim_, "LSTM input width mismatch");
  const std::size_t steps = x.Rows();
  const std::size_t h_dim = hidden_dim_;
  RNA_CHECK_MSG(steps > 0, "LSTM needs a non-empty sequence");

  input_ = x;
  gate_i_ = Tensor({steps, h_dim});
  gate_f_ = Tensor({steps, h_dim});
  gate_g_ = Tensor({steps, h_dim});
  gate_o_ = Tensor({steps, h_dim});
  cell_ = Tensor({steps, h_dim});
  tanh_cell_ = Tensor({steps, h_dim});
  hidden_ = Tensor({steps, h_dim});

  // Precompute the input contribution for all steps in one matmul.
  Tensor zx({steps, 4 * h_dim});
  tensor::MatMul(x, wx_, zx);

  EnsureScratch(z_, 4 * h_dim);
  float* z = z_.Data();
  for (std::size_t t = 0; t < steps; ++t) {
    const float* zx_row = zx.Data() + t * 4 * h_dim;
    const float* h_prev = t > 0 ? hidden_.Data() + (t - 1) * h_dim : nullptr;
    const float* c_prev = t > 0 ? cell_.Data() + (t - 1) * h_dim : nullptr;

    // z = zx_row + h_prev · Wh + b
    for (std::size_t j = 0; j < 4 * h_dim; ++j) z[j] = zx_row[j] + b_[j];
    if (h_prev != nullptr) {
      // z += h_{t-1}(1×H) · Wh(H×4H)
      common::simd::MatMulNN(h_prev, wh_.Data(), z, 1, h_dim, 4 * h_dim,
                             1.0f, 1.0f);
    }

    float* gi = gate_i_.Data() + t * h_dim;
    float* gf = gate_f_.Data() + t * h_dim;
    float* gg = gate_g_.Data() + t * h_dim;
    float* go = gate_o_.Data() + t * h_dim;
    float* ct = cell_.Data() + t * h_dim;
    float* tct = tanh_cell_.Data() + t * h_dim;
    float* ht = hidden_.Data() + t * h_dim;
    for (std::size_t hh = 0; hh < h_dim; ++hh) {
      gi[hh] = SigmoidF(z[hh]);
      gf[hh] = SigmoidF(z[h_dim + hh]);
      gg[hh] = std::tanh(z[2 * h_dim + hh]);
      go[hh] = SigmoidF(z[3 * h_dim + hh]);
      const float cp = c_prev != nullptr ? c_prev[hh] : 0.0f;
      ct[hh] = gf[hh] * cp + gi[hh] * gg[hh];
      tct[hh] = std::tanh(ct[hh]);
      ht[hh] = go[hh] * tct[hh];
    }
  }

  Tensor h_final({1, h_dim});
  const float* last = hidden_.Data() + (steps - 1) * h_dim;
  for (std::size_t hh = 0; hh < h_dim; ++hh) h_final[hh] = last[hh];
  return h_final;
}

Tensor LstmLayer::ForwardSequence(const Tensor& x) {
  Forward(x);
  return hidden_;
}

Tensor LstmLayer::Backward(const Tensor& dh_final) {
  const std::size_t steps = input_.Rows();
  RNA_CHECK_MSG(dh_final.Size() == hidden_dim_,
                "LSTM dh_final width mismatch");
  // Gradient only on the last hidden state: a sequence gradient with one
  // non-zero row.
  Tensor dh_all({steps, hidden_dim_});
  float* last = dh_all.Data() + (steps - 1) * hidden_dim_;
  for (std::size_t hh = 0; hh < hidden_dim_; ++hh) last[hh] = dh_final[hh];
  return BackwardSequence(dh_all);
}

Tensor LstmLayer::BackwardSequence(const Tensor& dh_all) {
  const std::size_t steps = input_.Rows();
  const std::size_t h_dim = hidden_dim_;
  RNA_CHECK_MSG(dh_all.Rows() == steps && dh_all.Cols() == h_dim,
                "LSTM dh_all shape mismatch");

  Tensor dx({steps, input_dim_});
  EnsureScratch(dh_, h_dim);      // gradient flowing into h_t
  EnsureScratch(dc_, h_dim);      // gradient flowing into c_t
  EnsureScratch(dz_, 4 * h_dim);  // gradient on the pre-activation z_t
  dh_.Zero();
  dc_.Zero();
  float* dh = dh_.Data();
  float* dc = dc_.Data();
  float* dz = dz_.Data();

  for (std::size_t t = steps; t-- > 0;) {
    // Direct gradient on h_t from the layer above, plus the recurrent path.
    const float* dh_row = dh_all.Data() + t * h_dim;
    for (std::size_t hh = 0; hh < h_dim; ++hh) dh[hh] += dh_row[hh];

    const float* gi = gate_i_.Data() + t * h_dim;
    const float* gf = gate_f_.Data() + t * h_dim;
    const float* gg = gate_g_.Data() + t * h_dim;
    const float* go = gate_o_.Data() + t * h_dim;
    const float* tct = tanh_cell_.Data() + t * h_dim;
    const float* c_prev = t > 0 ? cell_.Data() + (t - 1) * h_dim : nullptr;
    const float* h_prev = t > 0 ? hidden_.Data() + (t - 1) * h_dim : nullptr;
    const float* xt = input_.Data() + t * input_dim_;

    for (std::size_t hh = 0; hh < h_dim; ++hh) {
      const float d_o = dh[hh] * tct[hh];
      const float d_c = dc[hh] + dh[hh] * go[hh] * (1.0f - tct[hh] * tct[hh]);
      const float d_i = d_c * gg[hh];
      const float d_g = d_c * gi[hh];
      const float d_f = d_c * (c_prev != nullptr ? c_prev[hh] : 0.0f);
      dc[hh] = d_c * gf[hh];  // flows to c_{t-1}

      dz[hh] = d_i * gi[hh] * (1.0f - gi[hh]);
      dz[h_dim + hh] = d_f * gf[hh] * (1.0f - gf[hh]);
      dz[2 * h_dim + hh] = d_g * (1.0f - gg[hh] * gg[hh]);
      dz[3 * h_dim + hh] = d_o * go[hh] * (1.0f - go[hh]);
    }

    // Parameter gradients: dWx += x_tᵀ·dz, dWh += h_{t-1}ᵀ·dz, db += dz.
    common::simd::MatMulTN(xt, dz, dwx_.Data(), input_dim_, 1, 4 * h_dim,
                           1.0f, 1.0f);
    if (h_prev != nullptr) {
      common::simd::MatMulTN(h_prev, dz, dwh_.Data(), h_dim, 1, 4 * h_dim,
                             1.0f, 1.0f);
    }
    tensor::Axpy(1.0f, dz_.Flat(), db_.Flat());

    // dx_t = dz · Wxᵀ ; dh_{t-1} = dz · Whᵀ.
    common::simd::MatMulNT(dz, wx_.Data(), dx.Data() + t * input_dim_, 1,
                           4 * h_dim, input_dim_, 1.0f, 0.0f);
    if (t > 0) {
      common::simd::MatMulNT(dz, wh_.Data(), dh, 1, 4 * h_dim, h_dim, 1.0f,
                             0.0f);
    } else {
      std::fill(dh, dh + h_dim, 0.0f);
    }
  }
  return dx;
}

}  // namespace rna::nn
