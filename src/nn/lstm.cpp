#include "rna/nn/lstm.hpp"

#include <cmath>

#include "rna/common/check.hpp"
#include "rna/nn/init.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

LstmLayer::LstmLayer(std::size_t input_dim, std::size_t hidden_dim,
                     common::Rng& rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      wx_({input_dim, 4 * hidden_dim}),
      wh_({hidden_dim, 4 * hidden_dim}),
      b_({4 * hidden_dim}),
      dwx_({input_dim, 4 * hidden_dim}),
      dwh_({hidden_dim, 4 * hidden_dim}),
      db_({4 * hidden_dim}) {
  XavierUniform(wx_, input_dim, 4 * hidden_dim, rng);
  XavierUniform(wh_, hidden_dim, 4 * hidden_dim, rng);
  // Forget-gate bias starts at 1 so early training does not erase the cell.
  for (std::size_t h = 0; h < hidden_dim_; ++h) b_[hidden_dim_ + h] = 1.0f;
}

void LstmLayer::ZeroGrads() {
  dwx_.Zero();
  dwh_.Zero();
  db_.Zero();
}

Tensor LstmLayer::Forward(const Tensor& x) {
  RNA_CHECK_MSG(x.Cols() == input_dim_, "LSTM input width mismatch");
  const std::size_t steps = x.Rows();
  const std::size_t h_dim = hidden_dim_;
  RNA_CHECK_MSG(steps > 0, "LSTM needs a non-empty sequence");

  input_ = x;
  gate_i_ = Tensor({steps, h_dim});
  gate_f_ = Tensor({steps, h_dim});
  gate_g_ = Tensor({steps, h_dim});
  gate_o_ = Tensor({steps, h_dim});
  cell_ = Tensor({steps, h_dim});
  tanh_cell_ = Tensor({steps, h_dim});
  hidden_ = Tensor({steps, h_dim});

  // Precompute the input contribution for all steps in one matmul.
  Tensor zx({steps, 4 * h_dim});
  tensor::MatMul(x, wx_, zx);

  std::vector<float> z(4 * h_dim);
  for (std::size_t t = 0; t < steps; ++t) {
    const float* zx_row = zx.Data() + t * 4 * h_dim;
    const float* h_prev = t > 0 ? hidden_.Data() + (t - 1) * h_dim : nullptr;
    const float* c_prev = t > 0 ? cell_.Data() + (t - 1) * h_dim : nullptr;

    // z = zx_row + h_prev · Wh + b
    for (std::size_t j = 0; j < 4 * h_dim; ++j) z[j] = zx_row[j] + b_[j];
    if (h_prev != nullptr) {
      const float* wh = wh_.Data();
      for (std::size_t hh = 0; hh < h_dim; ++hh) {
        const float hv = h_prev[hh];
        if (hv == 0.0f) continue;
        const float* wrow = wh + hh * 4 * h_dim;
        for (std::size_t j = 0; j < 4 * h_dim; ++j) z[j] += hv * wrow[j];
      }
    }

    float* gi = gate_i_.Data() + t * h_dim;
    float* gf = gate_f_.Data() + t * h_dim;
    float* gg = gate_g_.Data() + t * h_dim;
    float* go = gate_o_.Data() + t * h_dim;
    float* ct = cell_.Data() + t * h_dim;
    float* tct = tanh_cell_.Data() + t * h_dim;
    float* ht = hidden_.Data() + t * h_dim;
    for (std::size_t hh = 0; hh < h_dim; ++hh) {
      gi[hh] = SigmoidF(z[hh]);
      gf[hh] = SigmoidF(z[h_dim + hh]);
      gg[hh] = std::tanh(z[2 * h_dim + hh]);
      go[hh] = SigmoidF(z[3 * h_dim + hh]);
      const float cp = c_prev != nullptr ? c_prev[hh] : 0.0f;
      ct[hh] = gf[hh] * cp + gi[hh] * gg[hh];
      tct[hh] = std::tanh(ct[hh]);
      ht[hh] = go[hh] * tct[hh];
    }
  }

  Tensor h_final({1, h_dim});
  const float* last = hidden_.Data() + (steps - 1) * h_dim;
  for (std::size_t hh = 0; hh < h_dim; ++hh) h_final[hh] = last[hh];
  return h_final;
}

Tensor LstmLayer::ForwardSequence(const Tensor& x) {
  Forward(x);
  return hidden_;
}

Tensor LstmLayer::Backward(const Tensor& dh_final) {
  const std::size_t steps = input_.Rows();
  RNA_CHECK_MSG(dh_final.Size() == hidden_dim_,
                "LSTM dh_final width mismatch");
  // Gradient only on the last hidden state: a sequence gradient with one
  // non-zero row.
  Tensor dh_all({steps, hidden_dim_});
  float* last = dh_all.Data() + (steps - 1) * hidden_dim_;
  for (std::size_t hh = 0; hh < hidden_dim_; ++hh) last[hh] = dh_final[hh];
  return BackwardSequence(dh_all);
}

Tensor LstmLayer::BackwardSequence(const Tensor& dh_all) {
  const std::size_t steps = input_.Rows();
  const std::size_t h_dim = hidden_dim_;
  RNA_CHECK_MSG(dh_all.Rows() == steps && dh_all.Cols() == h_dim,
                "LSTM dh_all shape mismatch");

  Tensor dx({steps, input_dim_});
  std::vector<float> dh(h_dim, 0.0f);    // gradient flowing into h_t
  std::vector<float> dc(h_dim, 0.0f);    // gradient flowing into c_t
  std::vector<float> dz(4 * h_dim);

  for (std::size_t t = steps; t-- > 0;) {
    // Direct gradient on h_t from the layer above, plus the recurrent path.
    const float* dh_row = dh_all.Data() + t * h_dim;
    for (std::size_t hh = 0; hh < h_dim; ++hh) dh[hh] += dh_row[hh];

    const float* gi = gate_i_.Data() + t * h_dim;
    const float* gf = gate_f_.Data() + t * h_dim;
    const float* gg = gate_g_.Data() + t * h_dim;
    const float* go = gate_o_.Data() + t * h_dim;
    const float* tct = tanh_cell_.Data() + t * h_dim;
    const float* c_prev = t > 0 ? cell_.Data() + (t - 1) * h_dim : nullptr;
    const float* h_prev = t > 0 ? hidden_.Data() + (t - 1) * h_dim : nullptr;
    const float* xt = input_.Data() + t * input_dim_;

    for (std::size_t hh = 0; hh < h_dim; ++hh) {
      const float d_o = dh[hh] * tct[hh];
      const float d_c = dc[hh] + dh[hh] * go[hh] * (1.0f - tct[hh] * tct[hh]);
      const float d_i = d_c * gg[hh];
      const float d_g = d_c * gi[hh];
      const float d_f = d_c * (c_prev != nullptr ? c_prev[hh] : 0.0f);
      dc[hh] = d_c * gf[hh];  // flows to c_{t-1}

      dz[hh] = d_i * gi[hh] * (1.0f - gi[hh]);
      dz[h_dim + hh] = d_f * gf[hh] * (1.0f - gf[hh]);
      dz[2 * h_dim + hh] = d_g * (1.0f - gg[hh] * gg[hh]);
      dz[3 * h_dim + hh] = d_o * go[hh] * (1.0f - go[hh]);
    }

    // Parameter gradients: dWx += x_tᵀ·dz, dWh += h_{t-1}ᵀ·dz, db += dz.
    float* dwx = dwx_.Data();
    for (std::size_t d = 0; d < input_dim_; ++d) {
      const float xv = xt[d];
      if (xv == 0.0f) continue;
      float* row = dwx + d * 4 * h_dim;
      for (std::size_t j = 0; j < 4 * h_dim; ++j) row[j] += xv * dz[j];
    }
    if (h_prev != nullptr) {
      float* dwh = dwh_.Data();
      for (std::size_t hh = 0; hh < h_dim; ++hh) {
        const float hv = h_prev[hh];
        if (hv == 0.0f) continue;
        float* row = dwh + hh * 4 * h_dim;
        for (std::size_t j = 0; j < 4 * h_dim; ++j) row[j] += hv * dz[j];
      }
    }
    for (std::size_t j = 0; j < 4 * h_dim; ++j) db_[j] += dz[j];

    // dx_t = dz · Wxᵀ ; dh_{t-1} = dz · Whᵀ.
    float* dxt = dx.Data() + t * input_dim_;
    const float* wx = wx_.Data();
    for (std::size_t d = 0; d < input_dim_; ++d) {
      const float* wrow = wx + d * 4 * h_dim;
      double acc = 0.0;
      for (std::size_t j = 0; j < 4 * h_dim; ++j)
        acc += static_cast<double>(dz[j]) * wrow[j];
      dxt[d] = static_cast<float>(acc);
    }
    std::fill(dh.begin(), dh.end(), 0.0f);
    if (t > 0) {
      const float* wh = wh_.Data();
      for (std::size_t hh = 0; hh < h_dim; ++hh) {
        const float* wrow = wh + hh * 4 * h_dim;
        double acc = 0.0;
        for (std::size_t j = 0; j < 4 * h_dim; ++j)
          acc += static_cast<double>(dz[j]) * wrow[j];
        dh[hh] = static_cast<float>(acc);
      }
    }
  }
  return dx;
}

}  // namespace rna::nn
