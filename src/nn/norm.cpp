#include "rna/nn/norm.hpp"

#include <cmath>

#include "rna/common/check.hpp"

namespace rna::nn {

LayerNorm::LayerNorm(std::size_t dim, float epsilon)
    : dim_(dim),
      epsilon_(epsilon),
      gain_({dim}),
      bias_({dim}),
      dgain_({dim}),
      dbias_({dim}) {
  gain_.Fill(1.0f);
}

Tensor LayerNorm::Forward(const Tensor& x) {
  RNA_CHECK_MSG(x.Cols() == dim_, "LayerNorm width mismatch");
  const std::size_t rows = x.Rows();
  normalized_ = Tensor({rows, dim_});
  inv_std_ = Tensor({rows});
  Tensor y({rows, dim_});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = x.Data() + r * dim_;
    double mean = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) mean += row[i];
    mean /= static_cast<double>(dim_);
    double var = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const double d = row[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(dim_);
    const auto inv = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    inv_std_[r] = inv;
    float* nrow = normalized_.Data() + r * dim_;
    float* yrow = y.Data() + r * dim_;
    for (std::size_t i = 0; i < dim_; ++i) {
      nrow[i] = (row[i] - static_cast<float>(mean)) * inv;
      yrow[i] = gain_[i] * nrow[i] + bias_[i];
    }
  }
  return y;
}

Tensor LayerNorm::Backward(const Tensor& dy) {
  const std::size_t rows = normalized_.Rows();
  RNA_CHECK_MSG(dy.Rows() == rows && dy.Cols() == dim_,
                "LayerNorm backward shape mismatch");
  Tensor dx({rows, dim_});
  const auto n = static_cast<float>(dim_);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* dyrow = dy.Data() + r * dim_;
    const float* nrow = normalized_.Data() + r * dim_;
    float* dxrow = dx.Data() + r * dim_;
    // dL/dn̂ = dy ⊙ γ; dx = (1/σ)(dn̂ − mean(dn̂) − n̂·mean(dn̂ ⊙ n̂)).
    double sum_dn = 0.0, sum_dn_n = 0.0;
    for (std::size_t i = 0; i < dim_; ++i) {
      const float dn = dyrow[i] * gain_[i];
      sum_dn += dn;
      sum_dn_n += static_cast<double>(dn) * nrow[i];
      dgain_[i] += dyrow[i] * nrow[i];
      dbias_[i] += dyrow[i];
    }
    const auto mean_dn = static_cast<float>(sum_dn / n);
    const auto mean_dn_n = static_cast<float>(sum_dn_n / n);
    for (std::size_t i = 0; i < dim_; ++i) {
      const float dn = dyrow[i] * gain_[i];
      dxrow[i] = inv_std_[r] * (dn - mean_dn - nrow[i] * mean_dn_n);
    }
  }
  return dx;
}

}  // namespace rna::nn
