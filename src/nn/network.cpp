#include "rna/nn/network.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/tensor/ops.hpp"

namespace rna::nn {

const std::vector<tensor::Tensor*>& Network::CachedParams() {
  if (param_cache_.empty()) param_cache_ = Params();
  return param_cache_;
}

const std::vector<tensor::Tensor*>& Network::CachedGrads() {
  if (grad_cache_.empty()) grad_cache_ = Grads();
  return grad_cache_;
}

std::size_t Network::ParamCount() {
  if (cached_param_count_ == 0) {
    for (tensor::Tensor* p : CachedParams()) cached_param_count_ += p->Size();
  }
  return cached_param_count_;
}

void Network::ZeroGrads() {
  for (tensor::Tensor* g : CachedGrads()) g->Zero();
}

void Network::CopyParamsTo(std::span<float> out) {
  RNA_CHECK_MSG(out.size() == ParamCount(), "param buffer size mismatch");
  std::size_t offset = 0;
  for (tensor::Tensor* p : CachedParams()) {
    auto flat = p->Flat();
    std::copy(flat.begin(), flat.end(), out.begin() + offset);
    offset += flat.size();
  }
}

void Network::SetParamsFrom(std::span<const float> in) {
  RNA_CHECK_MSG(in.size() == ParamCount(), "param buffer size mismatch");
  std::size_t offset = 0;
  for (tensor::Tensor* p : CachedParams()) {
    auto flat = p->Flat();
    std::copy(in.begin() + offset, in.begin() + offset + flat.size(),
              flat.begin());
    offset += flat.size();
  }
}

void Network::CopyGradsTo(std::span<float> out) {
  RNA_CHECK_MSG(out.size() == ParamCount(), "grad buffer size mismatch");
  std::size_t offset = 0;
  for (tensor::Tensor* g : CachedGrads()) {
    auto flat = g->Flat();
    std::copy(flat.begin(), flat.end(), out.begin() + offset);
    offset += flat.size();
  }
}

// ---------------------------------------------------------------- MLP

MlpClassifier::MlpClassifier(std::vector<std::size_t> dims, std::uint64_t seed,
                             std::string name)
    : name_(std::move(name)) {
  RNA_CHECK_MSG(dims.size() >= 2, "MLP needs at least input and output dims");
  common::Rng rng(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Dense>(dims[i], dims[i + 1], rng));
    if (i + 2 < dims.size()) layers_.push_back(std::make_unique<Relu>());
  }
}

tensor::Tensor MlpClassifier::ForwardLogits(const Batch& batch) {
  RNA_CHECK_MSG(batch.sequences.empty(), "MLP takes dense inputs");
  tensor::Tensor x = batch.inputs;
  for (auto& layer : layers_) x = layer->Forward(x);
  return x;
}

BatchResult MlpClassifier::ForwardBackward(const Batch& batch) {
  ComputeScope scope(*this);
  ZeroGrads();
  tensor::Tensor logits = ForwardLogits(batch);
  LossResult lr = SoftmaxCrossEntropy(logits, batch.labels);
  tensor::Tensor grad = std::move(lr.dlogits);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return {lr.loss, lr.correct, batch.labels.size()};
}

BatchResult MlpClassifier::Evaluate(const Batch& batch) {
  ComputeScope scope(*this);
  tensor::Tensor logits = ForwardLogits(batch);
  LossResult lr = SoftmaxCrossEntropy(logits, batch.labels);
  return {lr.loss, lr.correct, batch.labels.size()};
}

std::vector<tensor::Tensor*> MlpClassifier::Params() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<tensor::Tensor*> MlpClassifier::Grads() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* g : layer->Grads()) out.push_back(g);
  }
  return out;
}

// ---------------------------------------------------------------- LSTM

LstmClassifier::LstmClassifier(std::size_t input_dim, std::size_t hidden_dim,
                               std::size_t classes, std::uint64_t seed,
                               double dropout_rate)
    : lstm_([&] {
        common::Rng rng(seed);
        return LstmLayer(input_dim, hidden_dim, rng);
      }()),
      dropout_(dropout_rate, seed ^ 0x9e3779b97f4a7c15ULL),
      head_([&] {
        common::Rng rng(seed + 1);
        return Dense(hidden_dim, classes, rng);
      }()) {}

BatchResult LstmClassifier::Run(const Batch& batch, bool train) {
  RNA_CHECK_MSG(!batch.sequences.empty(), "LSTM takes sequence inputs");
  RNA_CHECK(batch.sequences.size() == batch.labels.size());
  ComputeScope scope(*this);
  if (train) ZeroGrads();
  dropout_.SetTraining(train);

  BatchResult result;
  result.total = batch.labels.size();
  const auto inv_batch =
      static_cast<float>(1.0 / static_cast<double>(batch.labels.size()));

  for (std::size_t s = 0; s < batch.sequences.size(); ++s) {
    tensor::Tensor h = lstm_.Forward(batch.sequences[s]);
    tensor::Tensor hd = dropout_.Forward(h);
    tensor::Tensor logits = head_.Forward(hd);
    LossResult lr = SoftmaxCrossEntropy(logits, {batch.labels[s]});
    result.loss += lr.loss;
    result.correct += lr.correct;
    if (train) {
      // Per-sample loss is already mean-normalized inside SCE (batch of 1),
      // so scale by 1/B to make accumulated grads the batch average.
      tensor::Scale(lr.dlogits.Flat(), inv_batch);
      tensor::Tensor dh = head_.Backward(lr.dlogits);
      dh = dropout_.Backward(dh);
      lstm_.Backward(dh);
    }
  }
  result.loss /= static_cast<double>(batch.labels.size());
  return result;
}

BatchResult LstmClassifier::ForwardBackward(const Batch& batch) {
  return Run(batch, /*train=*/true);
}

BatchResult LstmClassifier::Evaluate(const Batch& batch) {
  return Run(batch, /*train=*/false);
}

std::vector<tensor::Tensor*> LstmClassifier::Params() {
  std::vector<tensor::Tensor*> out = lstm_.Params();
  for (auto* p : head_.Params()) out.push_back(p);
  return out;
}

std::vector<tensor::Tensor*> LstmClassifier::Grads() {
  std::vector<tensor::Tensor*> out = lstm_.Grads();
  for (auto* g : head_.Grads()) out.push_back(g);
  return out;
}

// ---------------------------------------------------------------- Deep LSTM

DeepLstmClassifier::DeepLstmClassifier(std::size_t input_dim,
                                       std::size_t hidden_dim,
                                       std::size_t layers,
                                       std::size_t classes,
                                       std::uint64_t seed)
    : head_([&] {
        common::Rng rng(seed + 999);
        return Dense(hidden_dim, classes, rng);
      }()) {
  RNA_CHECK_MSG(layers >= 1, "need at least one LSTM layer");
  common::Rng rng(seed);
  layers_.reserve(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    layers_.emplace_back(l == 0 ? input_dim : hidden_dim, hidden_dim, rng);
  }
}

BatchResult DeepLstmClassifier::Run(const Batch& batch, bool train) {
  RNA_CHECK_MSG(!batch.sequences.empty(), "deep LSTM takes sequence inputs");
  ComputeScope scope(*this);
  if (train) ZeroGrads();
  BatchResult result;
  result.total = batch.labels.size();
  const auto inv_batch =
      static_cast<float>(1.0 / static_cast<double>(batch.labels.size()));

  for (std::size_t s = 0; s < batch.sequences.size(); ++s) {
    // Forward: each layer consumes the full hidden sequence of the one
    // below; the head reads the top layer's final state.
    tensor::Tensor h = batch.sequences[s];
    for (auto& layer : layers_) h = layer.ForwardSequence(h);
    const std::size_t steps = h.Rows();
    const std::size_t hidden = h.Cols();
    tensor::Tensor h_final({1, hidden});
    const float* last = h.Data() + (steps - 1) * hidden;
    for (std::size_t i = 0; i < hidden; ++i) h_final[i] = last[i];

    tensor::Tensor logits = head_.Forward(h_final);
    LossResult lr = SoftmaxCrossEntropy(logits, {batch.labels[s]});
    result.loss += lr.loss;
    result.correct += lr.correct;
    if (train) {
      tensor::Scale(lr.dlogits.Flat(), inv_batch);
      tensor::Tensor dh_final = head_.Backward(lr.dlogits);  // 1×H
      // Seed the top layer's sequence gradient with the final-state grad,
      // then BPTT downward layer by layer.
      tensor::Tensor dh_all({steps, hidden});
      float* dst = dh_all.Data() + (steps - 1) * hidden;
      for (std::size_t i = 0; i < hidden; ++i) dst[i] = dh_final[i];
      for (std::size_t l = layers_.size(); l-- > 0;) {
        dh_all = layers_[l].BackwardSequence(dh_all);
      }
    }
  }
  result.loss /= static_cast<double>(batch.labels.size());
  return result;
}

BatchResult DeepLstmClassifier::ForwardBackward(const Batch& batch) {
  return Run(batch, /*train=*/true);
}

BatchResult DeepLstmClassifier::Evaluate(const Batch& batch) {
  return Run(batch, /*train=*/false);
}

std::vector<tensor::Tensor*> DeepLstmClassifier::Params() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* p : layer.Params()) out.push_back(p);
  }
  for (auto* p : head_.Params()) out.push_back(p);
  return out;
}

std::vector<tensor::Tensor*> DeepLstmClassifier::Grads() {
  std::vector<tensor::Tensor*> out;
  for (auto& layer : layers_) {
    for (auto* g : layer.Grads()) out.push_back(g);
  }
  for (auto* g : head_.Grads()) out.push_back(g);
  return out;
}

// ------------------------------------------------------------- Transformer

TransformerClassifier::TransformerClassifier(std::size_t input_dim,
                                             std::size_t model_dim,
                                             std::size_t heads,
                                             std::size_t classes,
                                             std::uint64_t seed)
    : proj_([&] {
        common::Rng rng(seed);
        return Dense(input_dim, model_dim, rng);
      }()),
      mha_([&] {
        RNA_CHECK_MSG(model_dim % heads == 0,
                      "model_dim must be divisible by heads");
        common::Rng rng(seed + 1);
        return MultiHeadAttention(model_dim, model_dim / heads, heads, rng);
      }()),
      norm_(model_dim),
      head_([&] {
        common::Rng rng(seed + 2);
        return Dense(model_dim, classes, rng);
      }()) {}

BatchResult TransformerClassifier::Run(const Batch& batch, bool train) {
  RNA_CHECK_MSG(!batch.sequences.empty(),
                "transformer takes sequence inputs");
  ComputeScope scope(*this);
  if (train) ZeroGrads();
  BatchResult result;
  result.total = batch.labels.size();
  const std::size_t model_dim = norm_.Dim();
  const auto inv_batch =
      static_cast<float>(1.0 / static_cast<double>(batch.labels.size()));

  for (std::size_t s = 0; s < batch.sequences.size(); ++s) {
    const tensor::Tensor& x = batch.sequences[s];
    const std::size_t steps = x.Rows();

    tensor::Tensor h0 = proj_.Forward(x);          // T×M
    tensor::Tensor attn = mha_.Forward(h0);        // T×M
    tensor::Tensor residual({steps, model_dim});
    tensor::Add(h0.Flat(), attn.Flat(), residual.Flat());
    tensor::Tensor normed = norm_.Forward(residual);

    tensor::Tensor pooled({1, model_dim});
    tensor::SumRows(normed, pooled.Flat());
    tensor::Scale(pooled.Flat(), 1.0f / static_cast<float>(steps));
    tensor::Tensor logits = head_.Forward(pooled);

    LossResult lr = SoftmaxCrossEntropy(logits, {batch.labels[s]});
    result.loss += lr.loss;
    result.correct += lr.correct;

    if (train) {
      tensor::Scale(lr.dlogits.Flat(), inv_batch);
      tensor::Tensor dpooled = head_.Backward(lr.dlogits);
      tensor::Tensor dnormed({steps, model_dim});
      const float scale = 1.0f / static_cast<float>(steps);
      for (std::size_t t = 0; t < steps; ++t) {
        for (std::size_t i = 0; i < model_dim; ++i) {
          dnormed.At(t, i) = dpooled[i] * scale;
        }
      }
      tensor::Tensor dresidual = norm_.Backward(dnormed);
      // Residual split: dL/dh0 = dresidual (skip path) + MHA backward.
      tensor::Tensor dh0 = mha_.Backward(dresidual);
      tensor::Axpy(1.0f, dresidual.Flat(), dh0.Flat());
      proj_.Backward(dh0);
    }
  }
  result.loss /= static_cast<double>(batch.labels.size());
  return result;
}

BatchResult TransformerClassifier::ForwardBackward(const Batch& batch) {
  return Run(batch, /*train=*/true);
}

BatchResult TransformerClassifier::Evaluate(const Batch& batch) {
  return Run(batch, /*train=*/false);
}

std::vector<tensor::Tensor*> TransformerClassifier::Params() {
  std::vector<tensor::Tensor*> out;
  for (auto* p : proj_.Params()) out.push_back(p);
  for (auto* p : mha_.Params()) out.push_back(p);
  for (auto* p : norm_.Params()) out.push_back(p);
  for (auto* p : head_.Params()) out.push_back(p);
  return out;
}

std::vector<tensor::Tensor*> TransformerClassifier::Grads() {
  std::vector<tensor::Tensor*> out;
  for (auto* g : proj_.Grads()) out.push_back(g);
  for (auto* g : mha_.Grads()) out.push_back(g);
  for (auto* g : norm_.Grads()) out.push_back(g);
  for (auto* g : head_.Grads()) out.push_back(g);
  return out;
}

// ---------------------------------------------------------------- Attention

AttentionClassifier::AttentionClassifier(std::size_t input_dim,
                                         std::size_t attn_dim,
                                         std::size_t classes,
                                         std::uint64_t seed)
    : attention_([&] {
        common::Rng rng(seed);
        return AttentionBlock(input_dim, attn_dim, rng);
      }()),
      head_([&] {
        common::Rng rng(seed + 1);
        return Dense(attn_dim, classes, rng);
      }()) {}

BatchResult AttentionClassifier::Run(const Batch& batch, bool train) {
  RNA_CHECK_MSG(!batch.sequences.empty(), "attention takes sequence inputs");
  RNA_CHECK(batch.sequences.size() == batch.labels.size());
  ComputeScope scope(*this);
  if (train) ZeroGrads();

  BatchResult result;
  result.total = batch.labels.size();
  const auto inv_batch =
      static_cast<float>(1.0 / static_cast<double>(batch.labels.size()));

  for (std::size_t s = 0; s < batch.sequences.size(); ++s) {
    const tensor::Tensor& x = batch.sequences[s];
    const std::size_t steps = x.Rows();
    tensor::Tensor y = attention_.Forward(x);  // T×A

    // Mean-pool over time.
    tensor::Tensor pooled({1, attention_.AttnDim()});
    tensor::SumRows(y, pooled.Flat());
    tensor::Scale(pooled.Flat(), 1.0f / static_cast<float>(steps));

    tensor::Tensor logits = head_.Forward(pooled);
    LossResult lr = SoftmaxCrossEntropy(logits, {batch.labels[s]});
    result.loss += lr.loss;
    result.correct += lr.correct;

    if (train) {
      tensor::Scale(lr.dlogits.Flat(), inv_batch);
      tensor::Tensor dpooled = head_.Backward(lr.dlogits);  // 1×A
      // Un-pool: every timestep row receives dpooled / T.
      tensor::Tensor dy({steps, attention_.AttnDim()});
      const float scale = 1.0f / static_cast<float>(steps);
      for (std::size_t t = 0; t < steps; ++t) {
        for (std::size_t a = 0; a < attention_.AttnDim(); ++a) {
          dy.At(t, a) = dpooled[a] * scale;
        }
      }
      attention_.Backward(dy);
    }
  }
  result.loss /= static_cast<double>(batch.labels.size());
  return result;
}

BatchResult AttentionClassifier::ForwardBackward(const Batch& batch) {
  return Run(batch, /*train=*/true);
}

BatchResult AttentionClassifier::Evaluate(const Batch& batch) {
  return Run(batch, /*train=*/false);
}

std::vector<tensor::Tensor*> AttentionClassifier::Params() {
  std::vector<tensor::Tensor*> out = attention_.Params();
  for (auto* p : head_.Params()) out.push_back(p);
  return out;
}

std::vector<tensor::Tensor*> AttentionClassifier::Grads() {
  std::vector<tensor::Tensor*> out = attention_.Grads();
  for (auto* g : head_.Grads()) out.push_back(g);
  return out;
}

}  // namespace rna::nn
