#pragma once

// Weight initialization schemes.

#include "rna/common/rng.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::nn {

/// Xavier/Glorot uniform: U(-limit, limit), limit = sqrt(6 / (fan_in + fan_out)).
void XavierUniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                   common::Rng& rng);

/// He normal: N(0, sqrt(2 / fan_in)); suited to ReLU stacks.
void HeNormal(tensor::Tensor& w, std::size_t fan_in, common::Rng& rng);

}  // namespace rna::nn
