#pragma once

// SGD with momentum and weight decay, operating on flat parameter/gradient
// buffers. Working on the flat staging format keeps the optimizer identical
// across synchronization protocols, and lets RNA apply its per-iteration
// Linear-Scaling-Rule learning-rate adjustment through `lr_scale`.

#include <cstddef>
#include <span>
#include <vector>

namespace rna::nn {

struct SgdConfig {
  double learning_rate = 0.1;
  double momentum = 0.9;
  double weight_decay = 0.0;
};

class SgdMomentum {
 public:
  SgdMomentum(std::size_t param_count, SgdConfig config);

  /// params -= lr_scale·lr · v, where v = momentum·v + grad + wd·params.
  void Step(std::span<float> params, std::span<const float> grad,
            double lr_scale = 1.0);

  void SetLearningRate(double lr) { config_.learning_rate = lr; }
  double LearningRate() const { return config_.learning_rate; }

  /// Multiplies the learning rate in place (used for decay schedules).
  void DecayLearningRate(double factor) { config_.learning_rate *= factor; }

  /// Momentum state, exposed for checkpointing.
  std::span<const float> Velocity() const { return velocity_; }
  void SetVelocity(std::span<const float> velocity);

 private:
  SgdConfig config_;
  std::vector<float> velocity_;
};

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

/// Adam with bias correction, on flat buffers like SgdMomentum (so it plugs
/// into the same staging path; `lr_scale` carries the Linear Scaling Rule).
class Adam {
 public:
  Adam(std::size_t param_count, AdamConfig config);

  void Step(std::span<float> params, std::span<const float> grad,
            double lr_scale = 1.0);

  std::size_t StepsTaken() const { return steps_; }

 private:
  AdamConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t steps_ = 0;
};

}  // namespace rna::nn
