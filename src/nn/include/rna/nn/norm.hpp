#pragma once

// Layer normalization (per-row), the normalization used by Transformer
// blocks: y = γ ⊙ (x − μ)/√(σ² + ε) + β with learned gain/bias.

#include <vector>

#include "rna/nn/layer.hpp"

namespace rna::nn {

class LayerNorm : public Layer {
 public:
  explicit LayerNorm(std::size_t dim, float epsilon = 1e-5f);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;
  std::vector<Tensor*> Params() override { return {&gain_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dgain_, &dbias_}; }

  std::size_t Dim() const { return dim_; }

 private:
  std::size_t dim_;
  float epsilon_;
  Tensor gain_, bias_, dgain_, dbias_;

  // Caches from the last Forward (arena scratch under a step scope — the
  // per-call inv_std_.resize() this replaces was the last heap allocation
  // in the nn hot path; tools/analyze's no-heap-reachable check keeps it
  // out).
  Tensor normalized_;  // (x − μ)/σ per row
  Tensor inv_std_;     // 1/σ per row
};

}  // namespace rna::nn
