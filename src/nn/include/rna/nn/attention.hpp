#pragma once

// Single-head scaled-dot-product self-attention over one sequence, with
// exact backpropagation. Stands in for the paper's Transformer workload:
// per-sample compute is quadratic in sequence length, so variable-length
// "sentences" produce the batch-time imbalance the paper studies on WMT17.

#include <vector>

#include "rna/common/rng.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::nn {

using tensor::Tensor;

class AttentionBlock {
 public:
  /// Projections Wq, Wk, Wv are D×A.
  AttentionBlock(std::size_t input_dim, std::size_t attn_dim,
                 common::Rng& rng);

  /// x: T×D → output T×A, where row t attends over the whole sequence.
  Tensor Forward(const Tensor& x);

  /// dy: T×A → returns dL/dX (T×D); accumulates projection gradients.
  Tensor Backward(const Tensor& dy);

  std::vector<Tensor*> Params() { return {&wq_, &wk_, &wv_}; }
  std::vector<Tensor*> Grads() { return {&dwq_, &dwk_, &dwv_}; }
  void ZeroGrads();

  std::size_t InputDim() const { return input_dim_; }
  std::size_t AttnDim() const { return attn_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t attn_dim_;
  Tensor wq_, wk_, wv_;
  Tensor dwq_, dwk_, dwv_;

  // Caches from the last Forward.
  Tensor input_;              // T×D
  Tensor q_, k_, v_;          // T×A
  Tensor attn_;               // T×T row-softmax weights
};

/// Multi-head self-attention: `heads` independent AttentionBlocks whose
/// outputs are concatenated along the feature axis (T×(heads·head_dim)).
class MultiHeadAttention {
 public:
  MultiHeadAttention(std::size_t input_dim, std::size_t head_dim,
                     std::size_t heads, common::Rng& rng);

  /// x: T×D → T×(heads·head_dim).
  Tensor Forward(const Tensor& x);

  /// dy: T×(heads·head_dim) → dL/dX (T×D); accumulates head gradients.
  Tensor Backward(const Tensor& dy);

  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();
  void ZeroGrads();

  std::size_t InputDim() const { return input_dim_; }
  std::size_t OutDim() const { return heads_.size() * head_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t head_dim_;
  std::vector<AttentionBlock> heads_;
};

}  // namespace rna::nn
