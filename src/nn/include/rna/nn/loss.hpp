#pragma once

// Softmax + cross-entropy head. Combined so the gradient is the numerically
// stable (softmax − one-hot) / batch form.

#include <cstdint>
#include <vector>

#include "rna/tensor/tensor.hpp"

namespace rna::nn {

struct LossResult {
  double loss = 0.0;              ///< mean cross-entropy over the batch
  std::size_t correct = 0;        ///< argmax hits
  tensor::Tensor dlogits;         ///< dL/dlogits, already divided by batch
};

/// logits: B×C; labels: B class indices in [0, C).
LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               const std::vector<std::int32_t>& labels);

}  // namespace rna::nn
