#pragma once

// Softmax + cross-entropy head. Combined so the gradient is the numerically
// stable (softmax − one-hot) / batch form.

#include <cstdint>
#include <initializer_list>
#include <span>

#include "rna/tensor/tensor.hpp"

namespace rna::nn {

struct LossResult {
  double loss = 0.0;              ///< mean cross-entropy over the batch
  std::size_t correct = 0;        ///< argmax hits
  tensor::Tensor dlogits;         ///< dL/dlogits, already divided by batch
};

/// logits: B×C; labels: B class indices in [0, C). Takes a span (not a
/// vector) so the per-sample `{label}` call sites in the classifiers stay
/// allocation-free on the training hot path.
LossResult SoftmaxCrossEntropy(const tensor::Tensor& logits,
                               std::span<const std::int32_t> labels);
inline LossResult SoftmaxCrossEntropy(
    const tensor::Tensor& logits, std::initializer_list<std::int32_t> labels) {
  return SoftmaxCrossEntropy(
      logits, std::span<const std::int32_t>(labels.begin(), labels.size()));
}

}  // namespace rna::nn
