#pragma once

// Feed-forward layer primitives with exact backpropagation. Gradients
// *accumulate* across Backward calls until ZeroGrads() — sequence models
// process one sample at a time and rely on this to form batch gradients.

#include <memory>
#include <vector>

#include "rna/common/rng.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::nn {

using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output and caches whatever Backward needs.
  virtual Tensor Forward(const Tensor& x) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must follow a matching Forward call.
  virtual Tensor Backward(const Tensor& dy) = 0;

  virtual std::vector<Tensor*> Params() { return {}; }
  virtual std::vector<Tensor*> Grads() { return {}; }

  void ZeroGrads();

  /// Toggles training-only behaviour (dropout). Default is training mode.
  virtual void SetTraining(bool training) { training_ = training; }

 protected:
  bool training_ = true;
};

/// Fully connected: Y = X·W + b.
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, common::Rng& rng);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;
  std::vector<Tensor*> Params() override { return {&w_, &b_}; }
  std::vector<Tensor*> Grads() override { return {&dw_, &db_}; }

  std::size_t InDim() const { return in_; }
  std::size_t OutDim() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_, b_, dw_, db_;
  Tensor cached_input_;
};

class Relu : public Layer {
 public:
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;

 private:
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;

 private:
  Tensor cached_output_;
};

class Sigmoid : public Layer {
 public:
  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;

 private:
  Tensor cached_output_;
};

/// Inverted dropout; identity in evaluation mode.
class Dropout : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);

  Tensor Forward(const Tensor& x) override;
  Tensor Backward(const Tensor& dy) override;

 private:
  double rate_;
  common::Rng rng_;
  Tensor mask_;
};

}  // namespace rna::nn
