#pragma once

// Single-sequence LSTM layer with exact backpropagation-through-time.
//
// Sequences are processed one at a time (the enclosing model loops over the
// batch and relies on gradient accumulation). This matches the paper's load
// imbalance story: with variable-length inputs the per-sample compute cost
// here is *genuinely* proportional to sequence length, reproducing the
// "inherent load imbalance" of LSTM-on-video training (Figure 2) physically
// rather than by simulation.

#include <vector>

#include "rna/common/rng.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::nn {

using tensor::Tensor;

class LstmLayer {
 public:
  /// Gate weights: Wx (D×4H), Wh (H×4H), b (4H), gate order [i, f, g, o].
  /// The forget-gate bias is initialized to 1.
  LstmLayer(std::size_t input_dim, std::size_t hidden_dim, common::Rng& rng);

  /// x: T×D. Returns the final hidden state h_T as a 1×H tensor and caches
  /// the full unrolled state for Backward.
  Tensor Forward(const Tensor& x);

  /// dh_final: 1×H (gradient w.r.t. h_T). Accumulates parameter gradients
  /// and returns dL/dX (T×D).
  Tensor Backward(const Tensor& dh_final);

  /// Like Forward, but returns the whole hidden sequence (T×H) — the input
  /// of the next layer in a stacked LSTM.
  Tensor ForwardSequence(const Tensor& x);

  /// BPTT with a gradient on *every* timestep's hidden state (dh_all: T×H);
  /// returns dL/dX (T×D).
  Tensor BackwardSequence(const Tensor& dh_all);

  std::vector<Tensor*> Params() { return {&wx_, &wh_, &b_}; }
  std::vector<Tensor*> Grads() { return {&dwx_, &dwh_, &db_}; }
  void ZeroGrads();

  std::size_t InputDim() const { return input_dim_; }
  std::size_t HiddenDim() const { return hidden_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t hidden_dim_;
  Tensor wx_, wh_, b_;
  Tensor dwx_, dwh_, db_;

  // Caches from the last Forward (all T×H except input_).
  Tensor input_;                      // T×D
  Tensor gate_i_, gate_f_, gate_g_, gate_o_;
  Tensor cell_, tanh_cell_, hidden_;  // c_t, tanh(c_t), h_t

  // Fixed-size (4H / H) per-step work vectors, allocated once with
  // Lifetime::kLong on first use so they survive arena scratch resets and
  // are reused across iterations.
  Tensor z_;         // pre-activation z_t
  Tensor dh_, dc_;   // gradients flowing into h_t / c_t
  Tensor dz_;        // gradient on z_t
};

}  // namespace rna::nn
