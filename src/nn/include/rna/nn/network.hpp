#pragma once

// Trainable models exposed behind one interface so the distributed training
// harness and all synchronization protocols are model-agnostic. Parameters
// and gradients can be flattened into contiguous float vectors — the staging
// format the collectives, parameter server and RNA all operate on (the
// analogue of the paper's CPU-side gradient buffers).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rna/common/rng.hpp"
#include "rna/nn/attention.hpp"
#include "rna/nn/layer.hpp"
#include "rna/nn/loss.hpp"
#include "rna/nn/lstm.hpp"
#include "rna/nn/norm.hpp"
#include "rna/tensor/arena.hpp"
#include "rna/tensor/tensor.hpp"

namespace rna::nn {

/// One mini-batch. Dense models use `inputs`; sequence models use
/// `sequences` (one T_i×D tensor per sample, lengths may differ).
struct Batch {
  tensor::Tensor inputs;                  // B×D (dense models)
  std::vector<tensor::Tensor> sequences;  // per-sample T_i×D (sequence models)
  std::vector<std::int32_t> labels;

  std::size_t Size() const {
    return sequences.empty() ? inputs.Rows() : sequences.size();
  }
};

struct BatchResult {
  double loss = 0.0;
  std::size_t correct = 0;
  std::size_t total = 0;

  double Accuracy() const {
    return total ? static_cast<double>(correct) / static_cast<double>(total)
                 : 0.0;
  }
};

class Network {
 public:
  virtual ~Network() = default;

  /// Runs forward + backward on the batch; gradients are *fresh* (zeroed at
  /// entry), averaged over the batch.
  virtual BatchResult ForwardBackward(const Batch& batch) = 0;

  /// Forward only (evaluation mode, dropout disabled).
  virtual BatchResult Evaluate(const Batch& batch) = 0;

  virtual std::vector<tensor::Tensor*> Params() = 0;
  virtual std::vector<tensor::Tensor*> Grads() = 0;
  virtual std::string Name() const = 0;

  std::size_t ParamCount();
  void ZeroGrads();

  // Flat staging-buffer interface.
  void CopyParamsTo(std::span<float> out);
  void SetParamsFrom(std::span<const float> in);
  void CopyGradsTo(std::span<float> out);

  /// Every Network owns a per-worker compute arena; ForwardBackward and
  /// Evaluate run under a step scope so all per-op temporaries are arena
  /// scratch, released in O(1) when the step ends. Disabling the arena
  /// restores per-call heap allocation — the naive pre-arena path the
  /// equivalence tests compare against.
  void EnableArena(bool enabled) { arena_enabled_ = enabled; }
  bool ArenaEnabled() const { return arena_enabled_; }
  tensor::Arena& ComputeArena() { return arena_; }

 protected:
  /// RAII wrapper the classifiers open around one compute step: activates
  /// the arena (when enabled) and resets its scratch region on exit.
  class ComputeScope {
   public:
    explicit ComputeScope(Network& net) {
      if (net.arena_enabled_) scope_.emplace(net.arena_);
    }

   private:
    std::optional<tensor::Arena::StepScope> scope_;
  };

  /// Params()/Grads() build fresh pointer vectors — fine at setup, not per
  /// step. The flat-copy interface uses these memoized lists instead (model
  /// structure is immutable after construction).
  const std::vector<tensor::Tensor*>& CachedParams();
  const std::vector<tensor::Tensor*>& CachedGrads();

 private:
  tensor::Arena arena_;
  bool arena_enabled_ = true;
  std::size_t cached_param_count_ = 0;
  std::vector<tensor::Tensor*> param_cache_;
  std::vector<tensor::Tensor*> grad_cache_;
};

/// MLP classifier: Dense/ReLU stack + softmax cross-entropy. The repo's
/// stand-in for the paper's ResNet50/VGG16 image classifiers (see DESIGN.md).
class MlpClassifier : public Network {
 public:
  /// dims = {input, hidden..., classes}.
  MlpClassifier(std::vector<std::size_t> dims, std::uint64_t seed,
                std::string name = "mlp");

  BatchResult ForwardBackward(const Batch& batch) override;
  BatchResult Evaluate(const Batch& batch) override;
  std::vector<tensor::Tensor*> Params() override;
  std::vector<tensor::Tensor*> Grads() override;
  std::string Name() const override { return name_; }

 private:
  tensor::Tensor ForwardLogits(const Batch& batch);

  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// LSTM sequence classifier: LSTM → Dropout → Dense head; the stand-in for
/// the paper's LSTM-on-UCF101 video workload.
class LstmClassifier : public Network {
 public:
  LstmClassifier(std::size_t input_dim, std::size_t hidden_dim,
                 std::size_t classes, std::uint64_t seed,
                 double dropout_rate = 0.2);

  BatchResult ForwardBackward(const Batch& batch) override;
  BatchResult Evaluate(const Batch& batch) override;
  std::vector<tensor::Tensor*> Params() override;
  std::vector<tensor::Tensor*> Grads() override;
  std::string Name() const override { return "lstm"; }

 private:
  BatchResult Run(const Batch& batch, bool train);

  LstmLayer lstm_;
  Dropout dropout_;
  Dense head_;
};

/// Stacked LSTM classifier: `layers` LSTM layers feeding full hidden
/// sequences upward, final hidden state → Dense head.
class DeepLstmClassifier : public Network {
 public:
  DeepLstmClassifier(std::size_t input_dim, std::size_t hidden_dim,
                     std::size_t layers, std::size_t classes,
                     std::uint64_t seed);

  BatchResult ForwardBackward(const Batch& batch) override;
  BatchResult Evaluate(const Batch& batch) override;
  std::vector<tensor::Tensor*> Params() override;
  std::vector<tensor::Tensor*> Grads() override;
  std::string Name() const override { return "deep-lstm"; }

 private:
  BatchResult Run(const Batch& batch, bool train);

  std::vector<LstmLayer> layers_;
  Dense head_;
};

/// A real (single-block) Transformer classifier: input projection →
/// multi-head self-attention with a residual connection → LayerNorm →
/// mean-pool → Dense head.
class TransformerClassifier : public Network {
 public:
  /// model_dim must be divisible by heads.
  TransformerClassifier(std::size_t input_dim, std::size_t model_dim,
                        std::size_t heads, std::size_t classes,
                        std::uint64_t seed);

  BatchResult ForwardBackward(const Batch& batch) override;
  BatchResult Evaluate(const Batch& batch) override;
  std::vector<tensor::Tensor*> Params() override;
  std::vector<tensor::Tensor*> Grads() override;
  std::string Name() const override { return "transformer"; }

 private:
  BatchResult Run(const Batch& batch, bool train);

  Dense proj_;
  MultiHeadAttention mha_;
  LayerNorm norm_;
  Dense head_;
};

/// Self-attention sequence classifier: attention → mean-pool → Dense head;
/// the stand-in for the paper's Transformer-on-WMT17 workload.
class AttentionClassifier : public Network {
 public:
  AttentionClassifier(std::size_t input_dim, std::size_t attn_dim,
                      std::size_t classes, std::uint64_t seed);

  BatchResult ForwardBackward(const Batch& batch) override;
  BatchResult Evaluate(const Batch& batch) override;
  std::vector<tensor::Tensor*> Params() override;
  std::vector<tensor::Tensor*> Grads() override;
  std::string Name() const override { return "attention"; }

 private:
  BatchResult Run(const Batch& batch, bool train);

  AttentionBlock attention_;
  Dense head_;
};

}  // namespace rna::nn
