#pragma once

// Range-sharded parameter server client: the model's flat parameter vector
// is split into `shards` contiguous ranges, each owned by an independent
// ParameterServer on its own fabric endpoint (first_server + s). A call
// stripes the per-shard requests first and then collects the replies in
// whatever order the shards answer — shard s's reply is recognized by its
// source rank — so a push/pull costs one mailbox round-trip of the largest
// shard rather than `shards` sequential ones.
//
// shards == 1 delegates every call to a plain PsClient, byte-identical on
// the wire to the unsharded protocol.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "rna/net/fabric.hpp"
#include "rna/ps/server.hpp"

namespace rna::ps {

/// Contiguous shard boundaries: shard `s` of `shards` owns
/// [ShardFirst, ShardLast) of a `dim`-float model; the first dim % shards
/// shards are one element larger.
inline std::size_t ShardFirst(std::size_t dim, std::size_t shards,
                              std::size_t s) {
  const std::size_t base = dim / shards;
  const std::size_t extra = dim % shards;
  return s * base + (s < extra ? s : extra);
}

inline std::size_t ShardLast(std::size_t dim, std::size_t shards,
                             std::size_t s) {
  return ShardFirst(dim, shards, s + 1);
}

class ShardedPsClient {
 public:
  /// Shard s of `shards` is served by fabric endpoint `first_server + s`;
  /// the full model is `dim` floats. `shards` is clamped to dim by the
  /// caller (a shard must own at least one element when dim >= shards).
  ShardedPsClient(net::Fabric& fabric, Rank self, Rank first_server,
                  std::size_t shards, std::size_t dim);

  /// Same semantics as PsClient::ConfigureRetry, applied per call: a retry
  /// attempt re-sends only the shards still missing a reply. At-least-once
  /// caveats (kAverage absorbs duplicates, kAddDelta does not) carry over.
  void ConfigureRetry(std::size_t budget, double first_timeout_s);

  std::size_t Shards() const { return shards_; }
  std::size_t Dim() const { return dim_; }

  void Push(std::span<const float> values, ApplyMode mode);
  std::vector<float> Pull();
  std::optional<std::vector<float>> TryPull();
  std::vector<float> PushPull(std::span<const float> values, ApplyMode mode);
  std::optional<std::vector<float>> TryPushPull(std::span<const float> values,
                                                ApplyMode mode);

 private:
  std::optional<std::vector<float>> TryCall(std::span<const float> values,
                                            ApplyMode mode, bool want_reply);

  net::Fabric* fabric_;
  Rank self_;
  Rank first_server_;
  std::size_t shards_;
  std::size_t dim_;
  PsClient single_;  ///< the shards == 1 fast path
  std::size_t retry_budget_ = 1;
  double retry_timeout_s_ = 0.05;
};

}  // namespace rna::ps
