#pragma once

// A ps-lite-style parameter server on the fabric: a server thread owning a
// flat parameter vector, and client handles exposing Push / Pull / PushPull.
// Requests from different clients are served independently in arrival
// order, which is exactly the asynchronous-across-groups behaviour the
// paper's hierarchical synchronization relies on (§4, §6): each group
// initiator PushPulls its group model whenever it finishes a round, with no
// cross-group barrier.

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "rna/common/mutex.hpp"
#include "rna/common/thread_annotations.hpp"
#include "rna/net/fabric.hpp"

namespace rna::ps {

using net::Rank;

/// How a pushed vector is folded into the server state.
enum class ApplyMode : std::int64_t {
  kAssign = 0,   ///< state = x
  kAddDelta = 1, ///< state += x            (gradient-push style)
  kAverage = 2,  ///< state = (state + x)/2 (model averaging, paper §6)
};

/// Message tags used on the server endpoint; replies are delivered to the
/// client's endpoint with kReply.
struct PsTags {
  static constexpr int kRequest = 9000;
  static constexpr int kReply = 9001;
};

class ParameterServer {
 public:
  /// The server owns fabric endpoint `rank` and a state vector of `dim`
  /// floats (initialized from `initial`).
  ParameterServer(net::Fabric& fabric, Rank rank,
                  std::vector<float> initial);
  ~ParameterServer();

  ParameterServer(const ParameterServer&) = delete;
  ParameterServer& operator=(const ParameterServer&) = delete;

  void Start();
  /// Stops the server thread (idempotent). The fabric must still be alive.
  /// With ConfigureParent, stop children before their parent (reverse tree
  /// id order) so an in-flight parent sync can still be answered.
  void Stop();

  /// Makes this server an interior node of a PS tree: after every
  /// `sync_every` applied payloads it PushPulls its whole state to the
  /// same-shard server at `parent` (kAverage) and adopts the merged
  /// result *before* replying, so a client always reads state that has
  /// been folded toward the root. Call before Start(). `retry_budget` /
  /// `retry_timeout_s` follow PsClient::ConfigureRetry semantics; on an
  /// exhausted budget the sync is skipped (counted, state kept local).
  void ConfigureParent(Rank parent, std::size_t sync_every,
                       std::size_t retry_budget = 1,
                       double retry_timeout_s = 0.05);

  Rank ServerRank() const { return rank_; }
  std::uint64_t RequestsServed() const { return requests_served_.load(); }

  /// Snapshot of the state, for tests.
  std::vector<float> Snapshot() const;

 private:
  void ServeLoop();
  void SyncWithParent();

  net::Fabric& fabric_;
  Rank rank_;
  mutable common::Mutex state_mu_;
  std::vector<float> state_ RNA_GUARDED_BY(state_mu_);
  std::int64_t version_ RNA_GUARDED_BY(state_mu_) = 0;
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  // Parent-sync wiring (ServeLoop-thread only after Start()).
  bool has_parent_ = false;
  Rank parent_ = 0;
  std::size_t parent_sync_every_ = 1;
  std::size_t parent_retry_budget_ = 1;
  double parent_retry_timeout_s_ = 0.05;
  std::size_t applied_since_parent_sync_ = 0;
};

/// Client handle bound to one fabric endpoint.
///
/// Fault tolerance: by default a reply-bearing call waits indefinitely (in
/// bounded slices, so every fabric wait has a deadline) — the legacy
/// lossless-fabric behavior. ConfigureRetry(budget >= 2, t) switches to
/// bounded retry with exponential backoff: the request is re-sent after t,
/// 2t, 4t, … seconds, `budget` attempts total, and the Try* calls return
/// std::nullopt when the budget is exhausted (the non-Try wrappers treat
/// that as fatal). Retries are at-least-once: a slow (rather than dropped)
/// request can be applied twice, which ApplyMode::kAverage absorbs (it
/// re-averages toward the same fixpoint) but kAddDelta does not — callers
/// that push deltas over a lossy fabric accept that gradient noise.
class PsClient {
 public:
  PsClient(net::Fabric& fabric, Rank self, Rank server)
      : fabric_(&fabric), self_(self), server_(server) {}

  /// Enables bounded retry (see class comment). budget is the total number
  /// of attempts; budget <= 1 keeps the wait-forever behavior.
  void ConfigureRetry(std::size_t budget, double first_timeout_s);

  /// Fold `values` into the server state; no reply payload.
  void Push(std::span<const float> values, ApplyMode mode);

  /// Fetch the current server state.
  std::vector<float> Pull();

  /// Like Pull, but returns std::nullopt when the retry budget is
  /// exhausted (e.g., an elastic joiner fetching its first model over a
  /// lossy fabric retries on the next token instead of dying).
  std::optional<std::vector<float>> TryPull();

  /// Atomically fold `values` in and return the post-update state — the
  /// PSPushPull() of the paper's hierarchical synchronization.
  std::vector<float> PushPull(std::span<const float> values, ApplyMode mode);

  /// Like PushPull, but returns std::nullopt instead of dying when the
  /// retry budget is exhausted (the caller skips this sync and moves on).
  std::optional<std::vector<float>> TryPushPull(std::span<const float> values,
                                                ApplyMode mode);

  /// Server-side version observed by the last Pull/PushPull.
  std::int64_t LastVersion() const { return last_version_; }

 private:
  std::vector<float> Call(std::span<const float> values, ApplyMode mode,
                          bool want_reply);
  std::optional<std::vector<float>> TryCall(std::span<const float> values,
                                            ApplyMode mode, bool want_reply);

  net::Fabric* fabric_;
  Rank self_;
  Rank server_;
  std::size_t retry_budget_ = 1;
  double retry_timeout_s_ = 0.05;
  std::int64_t last_version_ = 0;
};

}  // namespace rna::ps
