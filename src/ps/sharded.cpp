#include "rna/ps/sharded.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/obs/metrics.hpp"

namespace rna::ps {

ShardedPsClient::ShardedPsClient(net::Fabric& fabric, Rank self,
                                 Rank first_server, std::size_t shards,
                                 std::size_t dim)
    : fabric_(&fabric),
      self_(self),
      first_server_(first_server),
      shards_(shards),
      dim_(dim),
      single_(fabric, self, first_server) {
  RNA_CHECK_MSG(shards >= 1, "need at least one PS shard");
  RNA_CHECK_MSG(dim >= shards, "more PS shards than parameters");
}

void ShardedPsClient::ConfigureRetry(std::size_t budget,
                                     double first_timeout_s) {
  single_.ConfigureRetry(budget, first_timeout_s);
  retry_budget_ = budget == 0 ? 1 : budget;
  if (first_timeout_s > 0.0) retry_timeout_s_ = first_timeout_s;
}

std::optional<std::vector<float>> ShardedPsClient::TryCall(
    std::span<const float> values, ApplyMode mode, bool want_reply) {
  if (!values.empty()) {
    RNA_CHECK_MSG(values.size() == dim_,
                  "sharded PS payload dimension mismatch");
  }
  // A retried request can produce two replies; drain leftovers so a stale
  // reply from the previous call can never satisfy this one.
  while (auto stale = fabric_->TryRecv(self_, PsTags::kReply)) {
    fabric_->Pool().Recycle(std::move(stale->data));
    obs::CountMetric("ps.stale_replies_dropped");
  }

  std::vector<float> out(want_reply ? dim_ : 0);
  std::vector<bool> have(shards_, false);
  std::size_t got = 0;

  auto send_shard = [&](std::size_t s) {
    net::Message req;
    req.tag = PsTags::kRequest;
    req.meta = {static_cast<std::int64_t>(mode), want_reply ? 1 : 0,
                values.empty() ? 0 : 1};
    if (!values.empty()) {
      const std::size_t first = ShardFirst(dim_, shards_, s);
      const std::size_t last = ShardLast(dim_, shards_, s);
      req.data = fabric_->Pool().Acquire(last - first);
      std::copy(values.begin() + static_cast<std::ptrdiff_t>(first),
                values.begin() + static_cast<std::ptrdiff_t>(last),
                req.data.begin());
    }
    fabric_->Send(self_, first_server_ + s, std::move(req));
  };
  // Accepts a shard reply; duplicates (from a slow-then-retried request)
  // are recycled and ignored.
  auto accept = [&](net::Message& reply) {
    if (reply.src < first_server_ ||
        reply.src >= first_server_ + static_cast<Rank>(shards_)) {
      fabric_->Pool().Recycle(std::move(reply.data));
      return;
    }
    const auto s = static_cast<std::size_t>(reply.src - first_server_);
    if (have[s]) {
      fabric_->Pool().Recycle(std::move(reply.data));
      obs::CountMetric("ps.stale_replies_dropped");
      return;
    }
    const std::size_t first = ShardFirst(dim_, shards_, s);
    RNA_CHECK_MSG(reply.data.size() == ShardLast(dim_, shards_, s) - first,
                  "sharded PS reply dimension mismatch");
    std::copy(reply.data.begin(), reply.data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(first));
    fabric_->Pool().Recycle(std::move(reply.data));
    have[s] = true;
    ++got;
  };

  for (std::size_t attempt = 0; attempt < retry_budget_; ++attempt) {
    if (attempt > 0) obs::CountMetric("ps.retries");
    // Stripe: every (still-missing) shard's request goes out before any
    // reply is awaited, so the shards serve in parallel.
    for (std::size_t s = 0; s < shards_; ++s) {
      if (!have[s]) send_shard(s);
    }
    if (!want_reply) return std::vector<float>{};

    if (retry_budget_ <= 1) {
      // Legacy lossless-fabric mode: wait until every shard answered or
      // shutdown, in bounded slices so this thread always holds a
      // deadline.
      while (got < shards_) {
        auto reply = fabric_->RecvFor(self_, PsTags::kReply, 0.05);
        if (reply.has_value()) {
          accept(*reply);
        } else if (fabric_->IsClosed(self_)) {
          return std::nullopt;
        }
      }
      return out;
    }
    // Exponential backoff: t, 2t, 4t, ... per attempt; each shard reply
    // renews the window (the stripe is making progress).
    const double timeout =
        retry_timeout_s_ * static_cast<double>(std::uint64_t{1} << attempt);
    while (got < shards_) {
      auto reply = fabric_->RecvFor(self_, PsTags::kReply, timeout);
      if (!reply.has_value()) break;
      accept(*reply);
    }
    if (got == shards_) return out;
    if (fabric_->IsClosed(self_)) return std::nullopt;
  }
  obs::CountMetric("ps.call_failures");
  return std::nullopt;
}

void ShardedPsClient::Push(std::span<const float> values, ApplyMode mode) {
  if (shards_ == 1) return single_.Push(values, mode);
  RNA_CHECK_MSG(!values.empty(), "Push requires a payload");
  TryCall(values, mode, /*want_reply=*/false);
}

std::vector<float> ShardedPsClient::Pull() {
  if (shards_ == 1) return single_.Pull();
  auto result = TryPull();
  RNA_CHECK_MSG(result.has_value(),
                "PS call failed: fabric shut down or retry budget exhausted");
  return std::move(*result);
}

std::optional<std::vector<float>> ShardedPsClient::TryPull() {
  if (shards_ == 1) return single_.TryPull();
  return TryCall({}, ApplyMode::kAssign, /*want_reply=*/true);
}

std::vector<float> ShardedPsClient::PushPull(std::span<const float> values,
                                             ApplyMode mode) {
  if (shards_ == 1) return single_.PushPull(values, mode);
  auto result = TryPushPull(values, mode);
  RNA_CHECK_MSG(result.has_value(),
                "PS call failed: fabric shut down or retry budget exhausted");
  return std::move(*result);
}

std::optional<std::vector<float>> ShardedPsClient::TryPushPull(
    std::span<const float> values, ApplyMode mode) {
  if (shards_ == 1) return single_.TryPushPull(values, mode);
  RNA_CHECK_MSG(!values.empty(), "PushPull requires a payload");
  return TryCall(values, mode, /*want_reply=*/true);
}

}  // namespace rna::ps
