#include "rna/ps/server.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"

namespace rna::ps {

namespace {

// meta layout for requests: [0]=ApplyMode, [1]=want_reply, [2]=has_payload
// meta layout for replies:  [0]=version
constexpr std::size_t kMetaMode = 0;
constexpr std::size_t kMetaWantReply = 1;
constexpr std::size_t kMetaHasPayload = 2;

// Mode sentinel carried by the self-addressed stop poke; real requests in
// flight ahead of it are still served.
constexpr std::int64_t kStopSentinel = -1;

}  // namespace

ParameterServer::ParameterServer(net::Fabric& fabric, Rank rank,
                                 std::vector<float> initial)
    : fabric_(fabric), rank_(rank), state_(std::move(initial)) {}

ParameterServer::~ParameterServer() { Stop(); }

void ParameterServer::Start() {
  RNA_CHECK_MSG(!thread_.joinable(), "server already started");
  stop_.store(false);
  thread_ = std::thread([this] { ServeLoop(); });
}

void ParameterServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true);
  // A self-addressed stop poke: the server drains requests already queued
  // ahead of it, then exits when the poke is reached.
  net::Message poke;
  poke.tag = PsTags::kRequest;
  poke.meta = {kStopSentinel, 0, 0};
  fabric_.Send(rank_, rank_, std::move(poke));
  thread_.join();
}

std::vector<float> ParameterServer::Snapshot() const {
  common::MutexLock lock(state_mu_);
  return state_;
}

void ParameterServer::ServeLoop() {
  const obs::TrackHandle track = obs::RegisterTrack("ps");
  for (;;) {
    // Bounded waits only (the chaos lint gate bans untimed receives in
    // src/ps): wake periodically to notice stop/shutdown even if the
    // self-addressed stop poke is swallowed by an injected drop.
    auto req = fabric_.RecvFor(rank_, PsTags::kRequest, 0.05);
    if (!req.has_value()) {
      if (stop_.load() || fabric_.IsClosed(rank_)) return;
      continue;  // idle timeout
    }
    RNA_CHECK_MSG(req->meta.size() >= 3, "malformed PS request");
    if (req->meta[kMetaMode] == kStopSentinel) return;
    obs::ScopedTimer rpc_timer(track, obs::Category::kRpc, "serve_request");
    rpc_timer.SetArg("src", static_cast<double>(req->src));
    obs::CountMetric("ps.requests");
    const auto mode = static_cast<ApplyMode>(req->meta[kMetaMode]);
    const bool want_reply = req->meta[kMetaWantReply] != 0;
    const bool has_payload = req->meta[kMetaHasPayload] != 0;

    net::Message reply;
    reply.tag = PsTags::kReply;
    {
      common::MutexLock lock(state_mu_);
      if (has_payload) {
        RNA_CHECK_MSG(req->data.size() == state_.size(),
                      "PS payload dimension mismatch");
        switch (mode) {
          case ApplyMode::kAssign:
            std::copy(req->data.begin(), req->data.end(), state_.begin());
            break;
          case ApplyMode::kAddDelta:
            common::simd::AddInto(state_, req->data);
            break;
          case ApplyMode::kAverage:
            common::simd::AverageInto(state_, req->data);
            break;
        }
        ++version_;
      }
    }
    fabric_.Pool().Recycle(std::move(req->data));
    // Interior tree node: fold the updated state into the parent *before*
    // replying, so the caller reads state already averaged toward the
    // root and — under lockstep, where callers are gate-serialized — the
    // whole tree's request order stays deterministic.
    if (has_parent_ && has_payload &&
        ++applied_since_parent_sync_ >= parent_sync_every_) {
      applied_since_parent_sync_ = 0;
      SyncWithParent();
    }
    if (want_reply) {
      common::MutexLock lock(state_mu_);
      reply.meta = {version_};
      // Pooled reply payload: push requests recycled above keep the
      // freelist warm, so the pull-reply path stops allocating once the
      // protocol reaches steady state.
      reply.data = fabric_.Pool().Acquire(state_.size());
      std::copy(state_.begin(), state_.end(), reply.data.begin());
    }
    requests_served_.fetch_add(1);
    if (want_reply) fabric_.Send(rank_, req->src, std::move(reply));
  }
}

void ParameterServer::ConfigureParent(Rank parent, std::size_t sync_every,
                                      std::size_t retry_budget,
                                      double retry_timeout_s) {
  RNA_CHECK_MSG(!thread_.joinable(), "configure the parent before Start()");
  RNA_CHECK_MSG(parent != rank_, "a PS node cannot be its own parent");
  RNA_CHECK_MSG(sync_every >= 1, "parent sync period must be >= 1");
  has_parent_ = true;
  parent_ = parent;
  parent_sync_every_ = sync_every;
  parent_retry_budget_ = retry_budget == 0 ? 1 : retry_budget;
  parent_retry_timeout_s_ = retry_timeout_s;
}

void ParameterServer::SyncWithParent() {
  obs::CountMetric("ps.parent_syncs");
  std::vector<float> snapshot;
  {
    common::MutexLock lock(state_mu_);
    snapshot = state_;
  }
  // The server thread doubles as a PS client on its own endpoint: replies
  // carry PsTags::kReply, which ServeLoop never consumes, so the two
  // roles cannot steal each other's messages.
  PsClient up(fabric_, rank_, parent_);
  up.ConfigureRetry(parent_retry_budget_, parent_retry_timeout_s_);
  auto merged = up.TryPushPull(snapshot, ApplyMode::kAverage);
  if (!merged.has_value()) {
    // Budget exhausted (lossy fabric) or shutdown: keep serving the local
    // state; the next due sync folds it in.
    obs::CountMetric("ps.parent_sync_skipped");
    return;
  }
  common::MutexLock lock(state_mu_);
  state_ = std::move(*merged);
  ++version_;
}

void PsClient::ConfigureRetry(std::size_t budget, double first_timeout_s) {
  retry_budget_ = budget == 0 ? 1 : budget;
  if (first_timeout_s > 0.0) retry_timeout_s_ = first_timeout_s;
}

std::optional<std::vector<float>> PsClient::TryCall(
    std::span<const float> values, ApplyMode mode, bool want_reply) {
  // A retried request can produce two replies; drain leftovers so a stale
  // reply from the previous call can never satisfy this one.
  while (auto stale = fabric_->TryRecv(self_, PsTags::kReply)) {
    fabric_->Pool().Recycle(std::move(stale->data));
    obs::CountMetric("ps.stale_replies_dropped");
  }

  auto parse = [&](net::Message& reply) -> std::vector<float> {
    RNA_CHECK_MSG(!reply.meta.empty(), "malformed PS reply");
    last_version_ = reply.meta[0];
    return std::move(reply.data);
  };

  for (std::size_t attempt = 0; attempt < retry_budget_; ++attempt) {
    if (attempt > 0) obs::CountMetric("ps.retries");
    net::Message req;
    req.tag = PsTags::kRequest;
    req.meta = {static_cast<std::int64_t>(mode), want_reply ? 1 : 0,
                values.empty() ? 0 : 1};
    req.data = fabric_->Pool().Acquire(values.size());
    std::copy(values.begin(), values.end(), req.data.begin());
    fabric_->Send(self_, server_, std::move(req));
    if (!want_reply) return std::vector<float>{};

    if (retry_budget_ <= 1) {
      // Legacy lossless-fabric mode: wait until the reply or shutdown, in
      // bounded slices so this thread always holds a deadline.
      for (;;) {
        auto reply = fabric_->RecvFor(self_, PsTags::kReply, 0.05);
        if (reply.has_value()) return parse(*reply);
        if (fabric_->IsClosed(self_)) return std::nullopt;
      }
    }
    // Exponential backoff: t, 2t, 4t, ... per attempt.
    const double timeout =
        retry_timeout_s_ * static_cast<double>(std::uint64_t{1} << attempt);
    auto reply = fabric_->RecvFor(self_, PsTags::kReply, timeout);
    if (reply.has_value()) return parse(*reply);
    if (fabric_->IsClosed(self_)) return std::nullopt;
  }
  obs::CountMetric("ps.call_failures");
  return std::nullopt;
}

std::vector<float> PsClient::Call(std::span<const float> values,
                                  ApplyMode mode, bool want_reply) {
  auto result = TryCall(values, mode, want_reply);
  RNA_CHECK_MSG(result.has_value(),
                "PS call failed: fabric shut down or retry budget exhausted");
  return std::move(*result);
}

void PsClient::Push(std::span<const float> values, ApplyMode mode) {
  RNA_CHECK_MSG(!values.empty(), "Push requires a payload");
  Call(values, mode, /*want_reply=*/false);
}

std::vector<float> PsClient::Pull() {
  return Call({}, ApplyMode::kAssign, /*want_reply=*/true);
}

std::optional<std::vector<float>> PsClient::TryPull() {
  return TryCall({}, ApplyMode::kAssign, /*want_reply=*/true);
}

std::vector<float> PsClient::PushPull(std::span<const float> values,
                                      ApplyMode mode) {
  RNA_CHECK_MSG(!values.empty(), "PushPull requires a payload");
  return Call(values, mode, /*want_reply=*/true);
}

std::optional<std::vector<float>> PsClient::TryPushPull(
    std::span<const float> values, ApplyMode mode) {
  RNA_CHECK_MSG(!values.empty(), "PushPull requires a payload");
  return TryCall(values, mode, /*want_reply=*/true);
}

}  // namespace rna::ps
