#include "rna/sim/engine.hpp"

#include "rna/common/check.hpp"

namespace rna::sim {

void Engine::Schedule(Seconds delay, EventFn fn) {
  RNA_CHECK_MSG(delay >= 0.0, "cannot schedule into the past");
  ScheduleAt(now_ + delay, std::move(fn));
}

void Engine::ScheduleAt(Seconds when, EventFn fn) {
  RNA_CHECK_MSG(when >= now_, "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Engine::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event is copied out so the
  // handler may schedule new events safely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

void Engine::Run() {
  while (Step()) {
  }
}

void Engine::RunUntil(Seconds deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) Step();
  if (deadline > now_) now_ = deadline;
}

}  // namespace rna::sim
