#include "rna/sim/protocols.hpp"

#include <algorithm>
#include <functional>

#include "rna/common/check.hpp"

namespace rna::sim {

namespace {

/// Cross-iteration worker state shared by the RNA / eager models: the
/// compute thread runs batches back-to-back, buffering up to
/// `staleness_bound` gradients; when the buffer is full the oldest gradient
/// is overwritten (paper §3.3: stale data outside the bound is dropped).
struct PipelinedWorker {
  Seconds next_done = 0.0;    ///< completion time of the batch in flight
  std::size_t backlog = 0;    ///< gradients buffered and not yet reduced
  Seconds computed = 0.0;     ///< total compute time accrued
  std::size_t dropped = 0;    ///< gradients overwritten by the bound
};

/// Advances worker `w`'s compute thread to time `t`.
void AdvanceTo(PipelinedWorker& w, std::size_t worker_idx, Seconds t,
               std::size_t bound, const IterationTimeModel& model,
               common::Rng& rng, std::size_t* iteration_counter) {
  while (w.next_done <= t) {
    if (w.backlog == bound) {
      ++w.dropped;  // overwrite the oldest buffered gradient
    } else {
      ++w.backlog;
    }
    const Seconds dur = model.Sample(worker_idx, (*iteration_counter)++, rng);
    w.computed += dur;
    w.next_done += dur;
  }
}

}  // namespace

SimResult SimulateBsp(const SimConfig& config,
                      const IterationTimeModel& model) {
  RNA_CHECK(config.world > 0);
  common::Rng rng(config.seed);
  SimResult result;
  result.breakdown.resize(config.world);
  const Seconds ring =
      config.comm.RingAllreduce(config.world, config.model_bytes);

  Seconds now = 0.0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    Seconds slowest = 0.0;
    std::vector<Seconds> times(config.world);
    for (std::size_t w = 0; w < config.world; ++w) {
      times[w] = model.Sample(w, round, rng);
      slowest = std::max(slowest, times[w]);
    }
    for (std::size_t w = 0; w < config.world; ++w) {
      result.breakdown[w].compute += times[w];
      result.breakdown[w].wait += slowest - times[w];
      result.breakdown[w].comm += ring;
    }
    now += slowest + ring;
    result.gradients_applied += config.world;
  }
  result.total_time = now;
  result.rounds = config.rounds;
  return result;
}

SimResult SimulateRna(const SimConfig& config, const IterationTimeModel& model,
                      const RnaSimOptions& options) {
  RNA_CHECK(config.world > 0 && options.probe_choices > 0);
  common::Rng rng(config.seed);
  SimResult result;
  result.breakdown.resize(config.world);
  const Seconds ring =
      config.comm.RingAllreduce(config.world, config.model_bytes);

  std::vector<PipelinedWorker> workers(config.world);
  std::vector<std::size_t> iter_counters(config.world, 0);
  for (std::size_t w = 0; w < config.world; ++w) {
    const Seconds dur = model.Sample(w, iter_counters[w]++, rng);
    workers[w].next_done = dur;
    workers[w].computed = 0.0;  // accrued on completion via AdvanceTo
    // Account the in-flight batch's compute when it completes; AdvanceTo
    // adds durations as they are *started*, so pre-add the first one here.
    workers[w].computed = dur;
  }

  Seconds now = 0.0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    // Probe q random workers; each replies at the first moment it has a
    // gradient buffered. The earliest reply triggers the collective.
    const auto probed =
        rng.SampleWithoutReplacement(config.world,
                                     std::min(options.probe_choices,
                                              config.world));
    Seconds trigger = -1.0;
    for (std::size_t p : probed) {
      AdvanceTo(workers[p], p, now, options.staleness_bound, model, rng,
                &iter_counters[p]);
      const Seconds reply =
          workers[p].backlog > 0 ? now : workers[p].next_done;
      if (trigger < 0.0 || reply < trigger) trigger = reply;
    }
    trigger +=
        options.probe_overhead * static_cast<double>(probed.size());

    // Everyone joins the collective at `trigger`; workers with a buffered
    // gradient contribute, the rest pass null.
    for (std::size_t w = 0; w < config.world; ++w) {
      AdvanceTo(workers[w], w, trigger, options.staleness_bound, model, rng,
                &iter_counters[w]);
      if (workers[w].backlog > 0) {
        result.gradients_applied += workers[w].backlog;
        workers[w].backlog = 0;
      }
      result.gradients_dropped += workers[w].dropped;
      workers[w].dropped = 0;
      result.breakdown[w].comm += ring;
    }
    now = trigger + ring;
  }

  for (std::size_t w = 0; w < config.world; ++w) {
    // Compute overlaps communication; whatever of the accrued compute time
    // exceeds the horizon was speculative pipeline fill and is clipped.
    result.breakdown[w].compute = std::min(workers[w].computed, now);
    result.breakdown[w].wait =
        std::max(0.0, now - result.breakdown[w].compute);
  }
  result.total_time = now;
  result.rounds = config.rounds;
  return result;
}

SimResult SimulateEagerMajority(const SimConfig& config,
                                const IterationTimeModel& model,
                                std::size_t staleness_bound) {
  RNA_CHECK(config.world > 0);
  common::Rng rng(config.seed);
  SimResult result;
  result.breakdown.resize(config.world);
  const Seconds ring =
      config.comm.RingAllreduce(config.world, config.model_bytes);
  const std::size_t majority = config.world / 2 + 1;

  std::vector<PipelinedWorker> workers(config.world);
  std::vector<std::size_t> iter_counters(config.world, 0);
  for (std::size_t w = 0; w < config.world; ++w) {
    const Seconds dur = model.Sample(w, iter_counters[w]++, rng);
    workers[w].next_done = dur;
    workers[w].computed = dur;
  }

  Seconds now = 0.0;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    // The collective triggers when `majority` workers have a gradient:
    // the majority-th smallest "first gradient available" time.
    std::vector<Seconds> available(config.world);
    for (std::size_t w = 0; w < config.world; ++w) {
      AdvanceTo(workers[w], w, now, staleness_bound, model, rng,
                &iter_counters[w]);
      available[w] = workers[w].backlog > 0 ? now : workers[w].next_done;
    }
    std::vector<Seconds> sorted = available;
    std::nth_element(sorted.begin(), sorted.begin() + (majority - 1),
                     sorted.end());
    const Seconds trigger = sorted[majority - 1];

    for (std::size_t w = 0; w < config.world; ++w) {
      AdvanceTo(workers[w], w, trigger, staleness_bound, model, rng,
                &iter_counters[w]);
      if (workers[w].backlog > 0) {
        result.gradients_applied += workers[w].backlog;
        workers[w].backlog = 0;
      }
      result.gradients_dropped += workers[w].dropped;
      workers[w].dropped = 0;
      result.breakdown[w].comm += ring;
    }
    now = trigger + ring;
  }

  for (std::size_t w = 0; w < config.world; ++w) {
    result.breakdown[w].compute = std::min(workers[w].computed, now);
    result.breakdown[w].wait =
        std::max(0.0, now - result.breakdown[w].compute);
  }
  result.total_time = now;
  result.rounds = config.rounds;
  return result;
}

SimResult SimulateAdPsgd(const SimConfig& config,
                         const IterationTimeModel& model) {
  RNA_CHECK(config.world > 1);
  common::Rng rng(config.seed);
  SimResult result;
  result.breakdown.resize(config.world);
  const Seconds exchange = config.comm.PointToPoint(config.model_bytes);
  const std::size_t target_iterations = config.rounds * config.world;

  Engine engine;
  std::vector<Seconds> lock_free_at(config.world, 0.0);
  std::size_t completed = 0;
  Seconds finish_time = 0.0;

  // One self-scheduling loop per worker. The atomic pairwise average holds
  // both participants' model locks; a busy peer delays the exchange — the
  // synchronization overhead the paper attributes to AD-PSGD (§2.2, §9).
  std::function<void(std::size_t, std::size_t)> compute_done =
      [&](std::size_t w, std::size_t iter) {
        if (completed >= target_iterations) return;
        const Seconds now = engine.Now();
        std::size_t peer = rng.UniformInt(config.world - 1);
        if (peer >= w) ++peer;
        const Seconds start = std::max({now, lock_free_at[w],
                                        lock_free_at[peer]});
        const Seconds end = start + exchange;
        lock_free_at[w] = end;
        lock_free_at[peer] = end;
        result.breakdown[w].wait += start - now;
        result.breakdown[w].comm += exchange;
        ++completed;
        ++result.gradients_applied;
        finish_time = std::max(finish_time, end);
        if (completed >= target_iterations) return;
        const Seconds dur = model.Sample(w, iter + 1, rng);
        result.breakdown[w].compute += dur;
        engine.ScheduleAt(end + dur,
                          [&, w, iter] { compute_done(w, iter + 1); });
      };

  for (std::size_t w = 0; w < config.world; ++w) {
    const Seconds dur = model.Sample(w, 0, rng);
    result.breakdown[w].compute += dur;
    engine.ScheduleAt(dur, [&, w] { compute_done(w, 0); });
  }
  engine.Run();

  result.total_time = std::max(finish_time, engine.Now());
  result.rounds = config.rounds;
  return result;
}

SimResult SimulateHierarchicalRna(const SimConfig& config,
                                  const IterationTimeModel& model,
                                  const HierarchicalSimOptions& options) {
  RNA_CHECK(options.group_of.size() == config.world);
  std::size_t num_groups = 0;
  for (std::size_t g : options.group_of) num_groups = std::max(num_groups, g + 1);

  SimResult total;
  total.breakdown.resize(config.world);
  total.rounds = config.rounds;

  // Each group runs RNA independently (asynchronously w.r.t. the others),
  // paying an extra PS push/pull + intra-group broadcast per round.
  for (std::size_t g = 0; g < num_groups; ++g) {
    std::vector<std::size_t> members;
    for (std::size_t w = 0; w < config.world; ++w) {
      if (options.group_of[w] == g) members.push_back(w);
    }
    if (members.empty()) continue;

    // Restrict the iteration model to the group by index remapping.
    class RemappedModel : public IterationTimeModel {
     public:
      RemappedModel(const IterationTimeModel& inner,
                    std::vector<std::size_t> map)
          : inner_(inner), map_(std::move(map)) {}
      Seconds Sample(std::size_t worker, std::size_t iteration,
                     common::Rng& rng) const override {
        return inner_.Sample(map_.at(worker), iteration, rng);
      }

     private:
      const IterationTimeModel& inner_;
      std::vector<std::size_t> map_;
    };

    SimConfig group_config = config;
    group_config.world = members.size();
    group_config.seed = config.seed + 17 * (g + 1);
    RemappedModel group_model(model, members);
    SimResult r = SimulateRna(group_config, group_model, options.rna);

    // The PS push/pull and intra-group broadcast run asynchronously on the
    // communication threads (§4/§6: the PS averaging is executed
    // asynchronously, overlapped with compute), so they load the comm
    // breakdown but do not serialize rounds.
    const Seconds per_round_overhead =
        config.comm.PushPull(config.model_bytes) +
        config.comm.Broadcast(members.size(), config.model_bytes);

    total.gradients_applied += r.gradients_applied;
    total.gradients_dropped += r.gradients_dropped;
    total.total_time = std::max(total.total_time, r.total_time);
    for (std::size_t i = 0; i < members.size(); ++i) {
      total.breakdown[members[i]] = r.breakdown[i];
      total.breakdown[members[i]].comm +=
          per_round_overhead * static_cast<double>(r.rounds);
    }
  }
  return total;
}

std::vector<double> ProbeResponseTimes(std::size_t world, std::size_t choices,
                                       std::size_t rounds,
                                       const IterationTimeModel& tasks,
                                       Seconds probe_overhead,
                                       std::uint64_t seed) {
  RNA_CHECK(world > 0 && choices > 0 && choices <= world);
  common::Rng rng(seed);

  // Workers process tasks back-to-back; `next_done[w]` is the completion
  // time of the task in flight.
  std::vector<Seconds> next_done(world);
  std::vector<std::size_t> iter(world, 0);
  for (std::size_t w = 0; w < world; ++w) {
    next_done[w] = tasks.Sample(w, iter[w]++, rng);
  }

  std::vector<double> responses;
  responses.reserve(rounds);
  Seconds now = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto probed = rng.SampleWithoutReplacement(world, choices);
    Seconds earliest = -1.0;
    for (std::size_t p : probed) {
      while (next_done[p] <= now) {
        next_done[p] += tasks.Sample(p, iter[p]++, rng);
      }
      if (earliest < 0.0 || next_done[p] < earliest) earliest = next_done[p];
    }
    const Seconds response =
        (earliest - now) + probe_overhead * static_cast<double>(choices);
    responses.push_back(response);
    now = earliest + probe_overhead * static_cast<double>(choices);
  }
  return responses;
}

LongTailModel ProbeBenchmarkTasks() {
  // Log-normal with arithmetic mean 30 ms and log-σ 1.5
  // (arithmetic stddev = mean · sqrt(e^{σ²}−1) ≈ 87 ms), clamped to
  // [6 ms, 400 ms] — calibrated against §8.4's reported medians.
  return LongTailModel(0.030, 0.087, 0.006, 0.4);
}

const std::vector<ModelSpec>& PaperModels() {
  // base_iteration values calibrated so CopyModel (6 GB/s effective PCIe)
  // reproduces Table 5's copy-overhead percentages; LSTM matches the
  // Figure 2(b) mean batch time.
  static const std::vector<ModelSpec> kModels = {
      {"resnet50", 25'559'081, 0.550},
      {"vgg16", 138'357'544, 0.800},
      {"lstm", 34'663'525, 1.219},
      {"transformer", 61'362'176, 0.455},
  };
  return kModels;
}

const ModelSpec& FindModel(const std::string& name) {
  for (const auto& m : PaperModels()) {
    if (m.name == name) return m;
  }
  RNA_CHECK_MSG(false, "unknown model: " + name);
  // Unreachable; RNA_CHECK_MSG throws.
  return PaperModels().front();
}

}  // namespace rna::sim
