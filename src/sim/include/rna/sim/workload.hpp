#pragma once

// Per-iteration compute-time models. These reproduce the heterogeneity
// sources the paper studies:
//  * dynamic system heterogeneity — random injected slowdowns, as in the
//    paper's evaluation setup (§8.1: U(0, 50 ms) per process per iteration);
//  * mixed/deterministic heterogeneity — a consistently slower machine
//    group (§8.1: group B gets an extra U(50, 100 ms));
//  * inherent load imbalance — a clamped log-normal batch-time distribution
//    calibrated to the LSTM-on-UCF101 measurements of Figure 2(b)
//    (mean 1219 ms, stddev 760 ms, range [156 ms, 8 s]).

#include <cstdint>
#include <memory>
#include <vector>

#include "rna/common/clock.hpp"
#include "rna/common/rng.hpp"

namespace rna::sim {

using common::Seconds;

class IterationTimeModel {
 public:
  virtual ~IterationTimeModel() = default;

  /// Compute time for `worker`'s `iteration`-th mini-batch.
  virtual Seconds Sample(std::size_t worker, std::size_t iteration,
                         common::Rng& rng) const = 0;
};

/// base + U(delay_lo, delay_hi) — the paper's dynamic-heterogeneity setting.
class UniformSlowdownModel : public IterationTimeModel {
 public:
  UniformSlowdownModel(Seconds base, Seconds delay_lo, Seconds delay_hi);
  Seconds Sample(std::size_t worker, std::size_t iteration,
                 common::Rng& rng) const override;

 private:
  Seconds base_, lo_, hi_;
};

/// Fixed per-worker extra delay on top of a common base — the Figure 1
/// motivation setup (workers slowed by 0 / 10 / 40 ms).
class DeterministicSkewModel : public IterationTimeModel {
 public:
  DeterministicSkewModel(Seconds base, std::vector<Seconds> extra_per_worker);
  Seconds Sample(std::size_t worker, std::size_t iteration,
                 common::Rng& rng) const override;

 private:
  Seconds base_;
  std::vector<Seconds> extra_;
};

/// Two-population cluster: every worker gets base + U(0, fast_hi); workers
/// in the slow set additionally get U(slow_lo, slow_hi) — the paper's
/// "mixed heterogeneity" (§8.1).
class MixedGroupModel : public IterationTimeModel {
 public:
  MixedGroupModel(Seconds base, Seconds fast_hi, Seconds slow_lo,
                  Seconds slow_hi, std::vector<bool> is_slow);
  Seconds Sample(std::size_t worker, std::size_t iteration,
                 common::Rng& rng) const override;

  bool IsSlow(std::size_t worker) const { return is_slow_.at(worker); }

 private:
  Seconds base_, fast_hi_, slow_lo_, slow_hi_;
  std::vector<bool> is_slow_;
};

/// Mixed-hardware cluster (Table 2: K80 / 1080Ti / 2080Ti): worker w's
/// iteration costs base·multiplier[w] plus a uniform jitter — deterministic
/// tier spread with dynamic noise on top, the paper's baseline testbed.
class TieredJitterModel : public IterationTimeModel {
 public:
  TieredJitterModel(Seconds base, std::vector<double> multipliers,
                    Seconds jitter_lo, Seconds jitter_hi);
  Seconds Sample(std::size_t worker, std::size_t iteration,
                 common::Rng& rng) const override;

 private:
  Seconds base_;
  std::vector<double> multipliers_;
  Seconds jitter_lo_, jitter_hi_;
};

/// Clamped log-normal — inherent load imbalance from variable-length
/// inputs (Figure 2(b)).
class LongTailModel : public IterationTimeModel {
 public:
  LongTailModel(Seconds mean, Seconds stddev, Seconds min_t, Seconds max_t);
  Seconds Sample(std::size_t worker, std::size_t iteration,
                 common::Rng& rng) const override;

  /// The paper's measured LSTM batch-time distribution, scaled by `scale`
  /// (scale=1 reproduces Figure 2(b) magnitudes).
  static LongTailModel LstmUcf101(double scale = 1.0);

 private:
  Seconds mean_, stddev_, min_, max_;
};

}  // namespace rna::sim
