#pragma once

// Discrete-event / round-based *timing* models of the four synchronization
// protocols the paper evaluates. These capture when synchronization happens
// and who participates — not gradient values — and are used for the
// cluster-scale experiments (Figures 1, 8, 9, 10) where running the real
// threaded runtime would be prohibitively slow. The real-concurrency
// implementations live in rna::baselines / rna::core and are used for all
// convergence results.

#include <cstdint>
#include <vector>

#include "rna/sim/comm_model.hpp"
#include "rna/sim/engine.hpp"
#include "rna/sim/workload.hpp"

namespace rna::sim {

struct SimConfig {
  std::size_t world = 8;
  std::size_t rounds = 200;            ///< synchronization rounds to simulate
  std::size_t model_bytes = 100u << 20;
  CommModel comm;
  std::uint64_t seed = 1;
};

struct WorkerBreakdown {
  Seconds compute = 0.0;  ///< time spent in forward/backward
  Seconds wait = 0.0;     ///< blocked on the barrier / peers
  Seconds comm = 0.0;     ///< in the collective / exchange itself
};

struct SimResult {
  Seconds total_time = 0.0;
  std::size_t rounds = 0;
  std::size_t gradients_applied = 0;  ///< worker-gradients folded into the model
  std::size_t gradients_dropped = 0;  ///< overwritten by the staleness bound
  std::vector<WorkerBreakdown> breakdown;

  Seconds MeanRoundTime() const {
    return rounds ? total_time / static_cast<double>(rounds) : 0.0;
  }
  double GradientThroughput() const {
    return total_time > 0.0
               ? static_cast<double>(gradients_applied) / total_time
               : 0.0;
  }
};

/// Bulk-synchronous ring allreduce (Horovod): every round waits for the
/// slowest worker, then all pay the ring cost.
SimResult SimulateBsp(const SimConfig& config, const IterationTimeModel& model);

struct RnaSimOptions {
  std::size_t probe_choices = 2;      ///< q in the power-of-q-choices election
  std::size_t staleness_bound = 4;    ///< η: max gradients buffered per worker
  Seconds probe_overhead = 0.0002;    ///< controller RPC cost per probe
};

/// RNA: continuous cross-iteration compute, controller probes q random
/// workers, collective triggers on the first reply; absent workers
/// contribute null, buffered gradients are consumed in bulk.
SimResult SimulateRna(const SimConfig& config, const IterationTimeModel& model,
                      const RnaSimOptions& options = {});

/// eager-SGD majority collective: the round triggers when ⌊N/2⌋+1 workers
/// have a gradient buffered.
SimResult SimulateEagerMajority(const SimConfig& config,
                                const IterationTimeModel& model,
                                std::size_t staleness_bound = 4);

/// AD-PSGD gossip: each worker independently computes, then performs an
/// atomic pairwise model average with a random peer (both sides' model
/// locks held for the exchange). Simulated on the event engine; runs until
/// config.rounds × world worker-iterations have completed.
SimResult SimulateAdPsgd(const SimConfig& config,
                         const IterationTimeModel& model);

struct HierarchicalSimOptions {
  RnaSimOptions rna;
  /// Assignment of each worker to a group (values in [0, num_groups)).
  std::vector<std::size_t> group_of;
};

/// Hierarchical RNA (§4): each group runs RNA internally; per round the
/// group initiator PushPulls the group model through a PS and broadcasts it
/// back. Groups proceed asynchronously; the result aggregates all groups.
SimResult SimulateHierarchicalRna(const SimConfig& config,
                                  const IterationTimeModel& model,
                                  const HierarchicalSimOptions& options);

/// §8.4 / Figure 10 microbenchmark: `world` workers process tasks
/// back-to-back with durations drawn from `tasks`; each round the scheduler
/// probes `choices` random workers and the round's response time is the
/// earliest probed completion (plus per-probe messaging overhead). Returns
/// one response time per round.
std::vector<double> ProbeResponseTimes(std::size_t world, std::size_t choices,
                                       std::size_t rounds,
                                       const IterationTimeModel& tasks,
                                       Seconds probe_overhead,
                                       std::uint64_t seed);

/// The §8.4 workload: tasks with "randomized skewness ranging 10–50 ms".
/// Calibrated as a heavy-tailed log-normal (mean 30 ms) that reproduces the
/// reported medians (≈28 ms for random selection, ≈12 ms for two choices).
LongTailModel ProbeBenchmarkTasks();

}  // namespace rna::sim
