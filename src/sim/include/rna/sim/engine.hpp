#pragma once

// A minimal deterministic discrete-event simulation engine. Events fire in
// (time, insertion-order) order, so runs with a fixed seed are bit
// reproducible. Used for the cluster-scale experiments where wall-clock
// execution would be prohibitive (Figures 9 and 10) and for the AD-PSGD
// gossip timing model.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "rna/common/clock.hpp"

namespace rna::sim {

using common::Seconds;

class Engine {
 public:
  using EventFn = std::function<void()>;

  /// Schedules `fn` to run `delay` seconds from the current virtual time.
  void Schedule(Seconds delay, EventFn fn);

  /// Schedules at an absolute virtual time (must be >= Now()).
  void ScheduleAt(Seconds when, EventFn fn);

  Seconds Now() const { return now_; }
  bool Empty() const { return queue_.empty(); }
  std::size_t PendingEvents() const { return queue_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains.
  void Run();

  /// Runs events with time <= `deadline`; the clock ends at
  /// min(deadline, last event time).
  void RunUntil(Seconds deadline);

 private:
  struct Event {
    Seconds time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace rna::sim
