#pragma once

// Analytic communication and staging-copy cost models used by the
// discrete-event protocol simulators, plus the catalog of the paper's
// evaluation models (parameter counts from §7.2, per-iteration compute
// calibrated against Table 5's measured copy-overhead percentages).

#include <cstddef>
#include <string>
#include <vector>

#include "rna/common/clock.hpp"

namespace rna::sim {

using common::Seconds;

/// Classic α-β model: a message of S bytes costs α + S/B.
struct CommModel {
  Seconds alpha = 10e-6;          ///< per-message latency (s)
  double bandwidth = 1.25e9;      ///< link bandwidth, bytes/s (10 GbE default)

  Seconds PointToPoint(std::size_t bytes) const {
    return alpha + static_cast<double>(bytes) / bandwidth;
  }

  /// Ring allreduce of an S-byte buffer over N workers:
  /// 2(N−1) steps, each moving S/N bytes — the bandwidth-optimal schedule.
  Seconds RingAllreduce(std::size_t world, std::size_t bytes) const {
    if (world < 2) return 0.0;
    const double chunk = static_cast<double>(bytes) / static_cast<double>(world);
    return 2.0 * static_cast<double>(world - 1) * (alpha + chunk / bandwidth);
  }

  /// Star broadcast (root sends to all, links shared serially).
  Seconds Broadcast(std::size_t world, std::size_t bytes) const {
    if (world < 2) return 0.0;
    return static_cast<double>(world - 1) * alpha +
           static_cast<double>(bytes) / bandwidth;
  }

  /// PS push + pull round trip of the full model.
  Seconds PushPull(std::size_t bytes) const {
    return 2.0 * PointToPoint(bytes);
  }
};

/// Host↔device staging copies over PCIe (Table 5's "transmission cost").
/// RNA stages gradients to host memory before the CPU-side MPI allreduce
/// and copies the reduced result back, so each iteration pays two copies.
struct CopyModel {
  double pcie_bandwidth = 6.0e9;  ///< effective bytes/s

  Seconds HostDeviceCopy(std::size_t bytes) const {
    return static_cast<double>(bytes) / pcie_bandwidth;
  }

  /// Down + up copy for one gradient exchange.
  Seconds RoundTrip(std::size_t bytes) const {
    return 2.0 * HostDeviceCopy(bytes);
  }
};

/// The paper's evaluation models (§7.2). `base_iteration` is the mean
/// homogeneous compute time per iteration; values are calibrated so the
/// copy-overhead percentages of Table 5 are reproduced by CopyModel.
struct ModelSpec {
  std::string name;
  std::size_t parameters = 0;
  Seconds base_iteration = 0.0;

  std::size_t GradientBytes() const { return parameters * sizeof(float); }
};

/// ResNet50 (25,559,081 params), VGG16 (138M), LSTM (34,663,525),
/// Transformer (61,362,176) — in that order.
const std::vector<ModelSpec>& PaperModels();

const ModelSpec& FindModel(const std::string& name);

}  // namespace rna::sim
