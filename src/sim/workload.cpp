#include "rna/sim/workload.hpp"

#include <algorithm>
#include <cmath>

#include "rna/common/check.hpp"

namespace rna::sim {

UniformSlowdownModel::UniformSlowdownModel(Seconds base, Seconds delay_lo,
                                           Seconds delay_hi)
    : base_(base), lo_(delay_lo), hi_(delay_hi) {
  RNA_CHECK(base >= 0.0 && delay_lo >= 0.0 && delay_hi >= delay_lo);
}

Seconds UniformSlowdownModel::Sample(std::size_t /*worker*/,
                                     std::size_t /*iteration*/,
                                     common::Rng& rng) const {
  return base_ + rng.Uniform(lo_, hi_);
}

DeterministicSkewModel::DeterministicSkewModel(
    Seconds base, std::vector<Seconds> extra_per_worker)
    : base_(base), extra_(std::move(extra_per_worker)) {
  RNA_CHECK(base >= 0.0);
}

Seconds DeterministicSkewModel::Sample(std::size_t worker,
                                       std::size_t /*iteration*/,
                                       common::Rng& /*rng*/) const {
  RNA_CHECK_MSG(worker < extra_.size(), "worker outside skew table");
  return base_ + extra_[worker];
}

MixedGroupModel::MixedGroupModel(Seconds base, Seconds fast_hi,
                                 Seconds slow_lo, Seconds slow_hi,
                                 std::vector<bool> is_slow)
    : base_(base),
      fast_hi_(fast_hi),
      slow_lo_(slow_lo),
      slow_hi_(slow_hi),
      is_slow_(std::move(is_slow)) {
  RNA_CHECK(base >= 0.0 && fast_hi >= 0.0 && slow_hi >= slow_lo);
}

Seconds MixedGroupModel::Sample(std::size_t worker, std::size_t /*iteration*/,
                                common::Rng& rng) const {
  RNA_CHECK_MSG(worker < is_slow_.size(), "worker outside group table");
  Seconds t = base_ + rng.Uniform(0.0, fast_hi_);
  if (is_slow_[worker]) t += rng.Uniform(slow_lo_, slow_hi_);
  return t;
}

TieredJitterModel::TieredJitterModel(Seconds base,
                                     std::vector<double> multipliers,
                                     Seconds jitter_lo, Seconds jitter_hi)
    : base_(base),
      multipliers_(std::move(multipliers)),
      jitter_lo_(jitter_lo),
      jitter_hi_(jitter_hi) {
  RNA_CHECK(base > 0.0 && jitter_lo >= 0.0 && jitter_hi >= jitter_lo);
  for (double m : multipliers_) RNA_CHECK(m > 0.0);
}

Seconds TieredJitterModel::Sample(std::size_t worker, std::size_t /*iteration*/,
                                  common::Rng& rng) const {
  RNA_CHECK_MSG(worker < multipliers_.size(), "worker outside tier table");
  return base_ * multipliers_[worker] + rng.Uniform(jitter_lo_, jitter_hi_);
}

LongTailModel::LongTailModel(Seconds mean, Seconds stddev, Seconds min_t,
                             Seconds max_t)
    : mean_(mean), stddev_(stddev), min_(min_t), max_(max_t) {
  RNA_CHECK(mean > 0.0 && stddev > 0.0 && min_t > 0.0 && max_t > min_t);
}

Seconds LongTailModel::Sample(std::size_t /*worker*/, std::size_t /*iteration*/,
                              common::Rng& rng) const {
  const double ratio = stddev_ / mean_;
  const double sigma2 = std::log(1.0 + ratio * ratio);
  const double mu = std::log(mean_) - 0.5 * sigma2;
  return std::clamp(rng.LogNormal(mu, std::sqrt(sigma2)), min_, max_);
}

LongTailModel LongTailModel::LstmUcf101(double scale) {
  return LongTailModel(1.219 * scale, 0.760 * scale, 0.156 * scale,
                       8.0 * scale);
}

}  // namespace rna::sim
