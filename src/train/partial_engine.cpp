#include "rna/train/partial_engine.hpp"

#include <atomic>
#include <thread>

#include "rna/collectives/ring.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::train {

namespace {

class MajorityPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t world, common::Rng&) override {
    majority_ = world / 2 + 1;
  }
  bool ShouldTrigger(const std::vector<std::int64_t>& ready) override {
    std::size_t have = 0;
    for (auto c : ready) {
      if (c > 0) ++have;
    }
    return have >= majority_;
  }
  const char* Name() const override { return "majority"; }

 private:
  std::size_t majority_ = 1;
};

class SoloPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t, common::Rng&) override {}
  bool ShouldTrigger(const std::vector<std::int64_t>& ready) override {
    for (auto c : ready) {
      if (c > 0) return true;
    }
    return false;
  }
  const char* Name() const override { return "solo"; }
};

class FullPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t, common::Rng&) override {}
  bool ShouldTrigger(const std::vector<std::int64_t>& ready) override {
    for (auto c : ready) {
      if (c <= 0) return false;
    }
    return true;
  }
  const char* Name() const override { return "full"; }
};

}  // namespace

std::unique_ptr<TriggerPolicy> MakeMajorityPolicy() {
  return std::make_unique<MajorityPolicy>();
}
std::unique_ptr<TriggerPolicy> MakeSoloPolicy() {
  return std::make_unique<SoloPolicy>();
}
std::unique_ptr<TriggerPolicy> MakeFullPolicy() {
  return std::make_unique<FullPolicy>();
}

TrainResult RunPartialCollective(const TrainerConfig& config,
                                 const ModelFactory& factory,
                                 const data::Dataset& train_data,
                                 const data::Dataset& val_data,
                                 const TriggerPolicyFactory& policy_factory) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");
  const net::Rank controller = world;  // endpoint layout: [workers..., ctrl]
  net::Fabric fabric(world + 1);
  const collectives::Group group = collectives::Group::Full(world);

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  std::vector<float> init = InitialParams(config, factory);

  std::vector<std::unique_ptr<GradientStage>> stages;
  for (std::size_t w = 0; w < world; ++w) {
    stages.push_back(std::make_unique<GradientStage>(
        dim, config.staleness_bound, config.combine));
  }
  ParamBoard board(init);  // worker 0's published view, watched by monitor

  std::atomic<bool> stop{false};          // raised by the monitor
  std::atomic<bool> global_stop{false};   // raised by controller / comm exit
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> batches_applied{0};
  // Written by the controller thread only; the main thread reads it only
  // after controller_thread.join(), which orders those accesses (verified
  // under TSan by tests/test_race_stress.cpp).
  std::vector<std::size_t> round_contributors;

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> comm_times(world);
  std::vector<std::vector<float>> final_params(world);

  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // ---- communication threads -------------------------------------------
  std::vector<std::thread> comm_threads;
  comm_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    comm_threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "comm"));
      std::vector<float> params = init;
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      std::int64_t published = 0;
      std::vector<float> buffer(dim);
      // For ContributionMode::kStaleReuse: the gradient this worker last
      // put into a collective, re-sent once while no fresh one is ready
      // (re-sending indefinitely would apply the same stale direction every
      // round and diverge; eager-SGD bounds the staleness).
      std::vector<float> last_sent(dim, 0.0f);
      bool last_sent_valid = false;
      const bool stale_reuse =
          config.contribution == ContributionMode::kStaleReuse;
      for (;;) {
        obs::ScopedTimer wait_timer(track, obs::Category::kWait,
                                    "wait_trigger", &comm_times[w].wait);
        auto go = fabric.Recv(w, tags::kGo);
        wait_timer.Stop();
        if (!go.has_value() || go->meta.empty() || go->meta[0] < 0) break;
        const auto round = static_cast<std::size_t>(go->meta[0]);

        // Step LR schedule: every worker decays at the same round.
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }

        auto drained = stages[w]->Drain();
        const bool fresh = drained.has_value();
        bool contributes = fresh;
        if (fresh) {
          buffer = std::move(drained->grad);
          if (stale_reuse) {
            last_sent = buffer;
            last_sent_valid = true;
          }
        } else if (stale_reuse && last_sent_valid) {
          buffer = last_sent;  // eager-SGD: repeat the stale gradient once
          last_sent_valid = false;
          contributes = true;
        } else {
          std::fill(buffer.begin(), buffer.end(), 0.0f);  // null gradient
        }

        collectives::PartialResult reduced;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "partial_allreduce",
                                      &comm_times[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          reduced = collectives::RingPartialAllreduce(fabric, group, w, buffer,
                                                      contributes,
                                                      tags::RingTag(round));
          comm_timer.SetArg("contributors",
                            static_cast<double>(reduced.contributors));
        }

        if (reduced.contributors > 0) {
          double scale = 1.0;
          if (stale_reuse) {
            // eager-SGD averages over the fixed world size N: absent
            // workers dilute the update instead of re-weighting it.
            scale = static_cast<double>(reduced.contributors) /
                    static_cast<double>(world);
          } else if (config.lr_policy == LrScalePolicy::kLinear) {
            // RNA's Linear Scaling Rule: γ_k ∝ participating batch size.
            scale = static_cast<double>(reduced.contributors) /
                    static_cast<double>(world);
          }
          // The paper's W = 1/Σw re-weight, folded into the LR scale; one
          // rank reports it so the metric is per round, not per worker.
          if (w == 0) obs::ObserveMetric("round.reweight_scale", scale);
          optimizer.Step(params, buffer, scale);
        }
        if (w == 0) board.Publish(params, ++published);

        net::Message report;
        report.tag = tags::kRoundEnd;
        report.meta = {go->meta[0],
                       fresh ? static_cast<std::int64_t>(drained->count) : 0};
        fabric.Send(w, controller, std::move(report));
      }
      global_stop.store(true);
      final_params[w] = std::move(params);
    });
  }

  // ---- compute threads ---------------------------------------------------
  std::vector<std::thread> compute_threads;
  compute_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    compute_threads.emplace_back([&, w] {
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::int64_t seen = 0;
      // A private board per worker would be truer to the paper's per-worker
      // ReadOp; worker 0's board doubles as the monitor view, so non-zero
      // ranks read their own comm thread's params through the shared
      // collective result — which is identical on all ranks. To keep ranks
      // symmetric each compute thread re-reads from board (rank-0 view);
      // since replicas are bit-identical this is exact. The board itself is
      // mutex-guarded (RNA_GUARDED_BY in stage.hpp), so these cross-thread
      // reads race with Publish only through the lock.
      while (!global_stop.load(std::memory_order_relaxed)) {
        seen = board.ReadIfNewer(seen, &params);
        workers[w]->ComputeGradient(params, grad);
        const bool grew = stages[w]->Write(
            grad, static_cast<std::int64_t>(workers[w]->Iterations()));
        if (grew) {
          // Notify only on backlog growth so the controller's readiness
          // counts track the true buffered-gradient count.
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, controller, std::move(ready));
        }
      }
    });
  }

  // ---- controller ---------------------------------------------------------
  std::thread controller_thread([&] {
    const obs::TrackHandle track = obs::RegisterTrack("controller");
    common::Rng rng(config.seed + 9001);
    std::unique_ptr<TriggerPolicy> policy = policy_factory();
    std::vector<std::int64_t> ready(world, 0);

    auto broadcast_go = [&](std::int64_t round, std::int64_t last) {
      for (std::size_t w = 0; w < world; ++w) {
        net::Message go;
        go.tag = tags::kGo;
        go.meta = {round, last};
        fabric.Send(controller, w, std::move(go));
      }
    };

    for (std::size_t round = 0;
         round < config.max_rounds && !global_stop.load(); ++round) {
      policy->BeginRound(world, rng);
      {
        obs::ScopedTimer probe_timer(track, obs::Category::kWait,
                                     "probe_wait");
        probe_timer.SetArg("round", static_cast<double>(round));
        while (!stop.load() && !global_stop.load()) {
          // Drain the whole notification backlog each pass so the
          // controller mailbox stays small even with very fast compute
          // threads.
          while (auto note = fabric.TryRecv(controller, tags::kReady)) {
            ++ready[note->src];
          }
          if (policy->ShouldTrigger(ready)) break;
          auto note = fabric.RecvFor(controller, tags::kReady, 0.002);
          if (note.has_value()) ++ready[note->src];
        }
      }
      if (stop.load() || global_stop.load()) break;

      obs::ScopedTimer round_timer(track, obs::Category::kRound, "round");
      round_timer.SetArg("round", static_cast<double>(round));
      broadcast_go(static_cast<std::int64_t>(round), 0);
      const int both[] = {tags::kRoundEnd, tags::kReady};
      std::size_t contributors = 0;
      for (std::size_t reports = 0; reports < world;) {
        auto msg = fabric.RecvAny(controller, both);
        if (!msg.has_value()) return;  // fabric shut down
        if (msg->tag == tags::kReady) {
          ++ready[msg->src];
          continue;
        }
        ready[msg->src] -= msg->meta[1];
        batches_applied.fetch_add(static_cast<std::size_t>(msg->meta[1]));
        if (msg->meta[1] > 0) ++contributors;
        ++reports;
      }
      round_timer.SetArg("contributors", static_cast<double>(contributors));
      obs::CountMetric("round.count");
      obs::ObserveMetric("round.contributors",
                         static_cast<double>(contributors));
      round_contributors.push_back(contributors);
      rounds_done.fetch_add(1);
    }
    broadcast_go(-1, 1);  // exit signal: no collective, everyone leaves
  });

  controller_thread.join();
  for (auto& t : comm_threads) t.join();
  // comm exits flip global_stop; compute threads notice within an iteration.
  for (auto& t : compute_threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = batches_applied.load();
  for (auto& stage : stages) result.gradients_dropped += stage->Dropped();
  obs::CountMetric("stage.staleness_drops",
                   static_cast<std::int64_t>(result.gradients_dropped));
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors = std::move(round_contributors);

  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = comm_times[w].wait;
    result.breakdown[w].comm = comm_times[w].comm;
  }

  result.final_params = final_params[0];
  const nn::BatchResult final_eval = monitor.FullEval(final_params[0]);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), final_params[0], train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::train
