#include "rna/train/partial_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <numeric>
#include <span>
#include <thread>

#include "rna/collectives/allreduce.hpp"
#include "rna/collectives/ring.hpp"
#include "rna/common/check.hpp"
#include "rna/net/fabric.hpp"
#include "rna/net/fault.hpp"
#include "rna/obs/metrics.hpp"
#include "rna/obs/trace.hpp"
#include "rna/train/fault.hpp"
#include "rna/train/membership.hpp"
#include "rna/train/monitor.hpp"
#include "rna/train/stage.hpp"
#include "rna/train/tags.hpp"
#include "rna/train/worker.hpp"

namespace rna::train {

namespace {

// All three built-in policies read the ReadinessBoard's O(1) sharded
// aggregate instead of scanning a per-rank vector, so a trigger decision
// costs the same at world=10 and world=1000.

class MajorityPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t world, common::Rng&) override {
    majority_ = world / 2 + 1;
  }
  bool ShouldTrigger(const ReadinessBoard& ready) override {
    return ready.ReadyRanks() >= majority_;
  }
  const char* Name() const override { return "majority"; }

 private:
  std::size_t majority_ = 1;
};

class SoloPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t, common::Rng&) override {}
  bool ShouldTrigger(const ReadinessBoard& ready) override {
    return ready.ReadyRanks() > 0;
  }
  const char* Name() const override { return "solo"; }
};

class FullPolicy final : public TriggerPolicy {
 public:
  void BeginRound(std::size_t, common::Rng&) override {}
  bool ShouldTrigger(const ReadinessBoard& ready) override {
    return ready.ReadyRanks() == ready.Size();
  }
  const char* Name() const override { return "full"; }
};

}  // namespace

std::unique_ptr<TriggerPolicy> MakeMajorityPolicy() {
  return std::make_unique<MajorityPolicy>();
}
std::unique_ptr<TriggerPolicy> MakeSoloPolicy() {
  return std::make_unique<SoloPolicy>();
}
std::unique_ptr<TriggerPolicy> MakeFullPolicy() {
  return std::make_unique<FullPolicy>();
}

TrainResult RunPartialCollective(const TrainerConfig& config,
                                 const ModelFactory& factory,
                                 const data::Dataset& train_data,
                                 const data::Dataset& val_data,
                                 const TriggerPolicyFactory& policy_factory) {
  const std::size_t world = config.world;
  RNA_CHECK_MSG(world >= 1, "need at least one worker");
  const net::Rank controller = world;  // endpoint layout: [workers..., ctrl]
  net::Fabric fabric(world + 1);

  FaultRuntime faults(config);
  if (auto plan = BuildFaultPlan(config)) {
    fabric.InstallFaultPlan(std::move(plan));
  }
  const bool faulty = config.fault.Enabled();
  const bool lockstep = config.lockstep;
  // A mid-ring crash shows up as a hop timeout; survivors abort the round
  // instead of deadlocking in Recv. Zero keeps the untimed legacy receive
  // on the zero-fault path.
  const common::Seconds ring_timeout =
      faulty ? config.fault.collective_timeout_s : 0.0;
  // Reports can lag a full aborted collective, so the controller's report
  // deadline must exceed the ring's hop timeout.
  const common::Seconds report_budget =
      config.fault.collective_timeout_s + config.fault.probe_timeout_s;

  auto workers = MakeWorkers(config, factory, train_data);
  const std::size_t dim = workers[0]->Dim();
  std::vector<float> init = InitialParams(config, factory);

  std::vector<std::unique_ptr<GradientStage>> stages;
  for (std::size_t w = 0; w < world; ++w) {
    stages.push_back(std::make_unique<GradientStage>(
        dim, config.staleness_bound, config.combine));
  }
  ParamBoard board(init);  // lowest live rank's view, watched by monitor

  std::atomic<bool> stop{false};          // raised by the monitor
  std::atomic<bool> global_stop{false};   // raised by controller / comm exit
  std::atomic<std::size_t> rounds_done{0};
  std::atomic<std::size_t> batches_applied{0};
  // Written by the controller thread only; the main thread reads it only
  // after controller_thread.join(), which orders those accesses (verified
  // under TSan by tests/test_race_stress.cpp).
  std::vector<std::size_t> round_contributors;
  // Same single-writer discipline: the controller owns the membership
  // directory and its busy-time accumulator; the main thread reads both
  // after join().
  std::vector<net::Rank> all_ranks(world);
  std::iota(all_ranks.begin(), all_ranks.end(), net::Rank{0});
  MembershipDirectory directory(all_ranks, config.elastic);
  common::Seconds ctrl_busy = 0.0;
  std::size_t ctrl_msgs = 0;

  EvalMonitor monitor(config, factory, val_data);
  monitor.Start(board, stop, rounds_done);

  std::vector<WorkerTimeBreakdown> comm_times(world);
  std::vector<std::vector<float>> final_params(world);

  obs::ScopedTimer wall_timer(obs::RegisterTrack("main"),
                              obs::Category::kOther, "train_total");

  // ---- communication threads -------------------------------------------
  std::vector<std::thread> comm_threads;
  comm_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    comm_threads.emplace_back([&, w] {
      const obs::TrackHandle track =
          obs::RegisterTrack(obs::WorkerTrack(w, "comm"));
      std::vector<float> params = init;
      nn::SgdMomentum& optimizer = workers[w]->Optimizer();
      std::vector<float> buffer(dim);
      // For ContributionMode::kStaleReuse: the gradient this worker last
      // put into a collective, re-sent once while no fresh one is ready
      // (re-sending indefinitely would apply the same stale direction every
      // round and diverge; eager-SGD bounds the staleness).
      std::vector<float> last_sent(dim, 0.0f);
      bool last_sent_valid = false;
      const bool stale_reuse =
          config.contribution == ContributionMode::kStaleReuse;
      // Per-worker error-feedback residual for lossy compression; +1 for
      // the partial collective's contributor-flag tail. Pre-sized so the
      // hot loop never reallocates it.
      collectives::ErrorFeedback feedback;
      feedback.EnsureSize(dim + 1);
      bool died = false;  // fail-stop exit, distinct from session end
      bool left = false;  // clean elastic departure, also not session end
      for (;;) {
        std::optional<net::Message> go;
        {
          obs::ScopedTimer wait_timer(track, obs::Category::kWait,
                                      "wait_trigger", &comm_times[w].wait);
          if (faulty) {
            // Bounded waits: a dropped exit-Go must not strand this thread.
            while (!(go = fabric.RecvFor(w, tags::kGo, 0.05)).has_value()) {
              if (global_stop.load() || fabric.IsClosed(w) ||
                  !faults.Alive(w)) {
                break;
              }
            }
          } else {
            // Lossless fast path: without fault injection nothing can drop
            // the Go, and Shutdown() wakes the wait.
            go = fabric.Recv(w, tags::kGo);  // analyze:allow(timed-recv)
          }
        }
        if (!go.has_value()) {
          died = faulty && !faults.Alive(w);  // killed from the compute side
          break;
        }
        if (go->meta.empty() || go->meta[0] < 0) {
          // Session over — or, with meta[1]==2, a personal exit for this
          // rank's scheduled elastic leave (the rest of the world keeps
          // training).
          left = go->meta.size() > 1 && go->meta[1] == 2;
          break;
        }
        const auto round = static_cast<std::size_t>(go->meta[0]);

        if (faults.ShouldCrashInRound(w, round)) {
          // Fail-stop while holding the round hostage: this rank is in the
          // round's membership, so survivors must abort via ring timeout —
          // the scenario that deadlocked the pre-fault engine in Recv.
          faults.Kill(w);
          obs::ScopedTimer crash_span(track, obs::Category::kFault, "crash");
          crash_span.SetArg("round", static_cast<double>(round));
          net::Message bye;
          bye.tag = tags::kGoodbye;
          bye.meta = {go->meta[0]};
          fabric.Send(w, controller, std::move(bye));
          died = true;
          break;
        }
        if (faulty && !faults.Alive(w)) {
          died = true;  // compute-side crash already announced the goodbye
          break;
        }

        // Round membership travels in the Go: [round, verdict, member
        // count, members..., joiners...]; a legacy two-entry shape means
        // everyone. A rank in the joiner tail is not yet a ring member —
        // it receives the round leader's state transfer instead.
        collectives::Group group;
        std::vector<net::Rank> joiners;
        if (go->meta.size() > 2) {
          const auto member_count = static_cast<std::size_t>(go->meta[2]);
          for (std::size_t i = 3; i < go->meta.size(); ++i) {
            const auto r = static_cast<net::Rank>(go->meta[i]);
            if (i - 3 < member_count) {
              group.members.push_back(r);
            } else {
              joiners.push_back(r);
            }
          }
        } else {
          group = collectives::Group::Full(world);
        }
        if (std::find(joiners.begin(), joiners.end(), w) != joiners.end()) {
          // Joining rank: install the leader's replica (params ‖ velocity,
          // LR bit-cast into the meta) and acknowledge with a synced
          // report, so the controller activates this rank next round with
          // a state bitwise-identical to every member's.
          std::optional<net::Message> state;
          if (faulty) {
            state = fabric.RecvFor(w, tags::JoinStateTag(round),
                                   config.fault.collective_timeout_s);
          } else {
            state = fabric.Recv(  // analyze:allow(timed-recv)
                w, tags::JoinStateTag(round));
          }
          bool synced = false;
          if (state.has_value() && state->data.size() == 2 * dim &&
              state->meta.size() > 1) {
            std::copy(state->data.begin(), state->data.begin() + dim,
                      params.begin());
            optimizer.SetVelocity(
                std::span<const float>(state->data.data() + dim, dim));
            optimizer.SetLearningRate(std::bit_cast<double>(state->meta[1]));
            fabric.Pool().Recycle(std::move(state->data));
            synced = true;
            obs::CountMetric("elastic.join_syncs");
          }
          net::Message report;
          report.tag = tags::kRoundEnd;
          // meta: [round, consumed=0, aborted=0, synced flag]
          report.meta = {go->meta[0], 0, 0, synced ? 1 : 0};
          fabric.Send(w, controller, std::move(report));
          continue;
        }
        const auto member_it =
            std::find(group.members.begin(), group.members.end(), w);
        if (member_it == group.members.end()) continue;  // not in this round
        const std::size_t my_index =
            static_cast<std::size_t>(member_it - group.members.begin());

        // Step LR schedule: every worker decays at the same round.
        for (std::size_t milestone : config.lr_decay_rounds) {
          if (milestone == round) {
            optimizer.DecayLearningRate(config.lr_decay_factor);
          }
        }

        // Sweep stale chunks of earlier (possibly aborted) rounds so they
        // can never alias this round's unique tag range.
        if (faulty && round > 0) {
          fabric.Purge(w, tags::kRingBase, tags::RingTag(round) - 1);
        }

        auto drained = stages[w]->Drain();
        const bool fresh = drained.has_value();
        bool contributes = fresh;
        if (fresh) {
          buffer = std::move(drained->grad);
          if (stale_reuse) {
            last_sent = buffer;
            last_sent_valid = true;
          }
        } else if (stale_reuse && last_sent_valid) {
          buffer = last_sent;  // eager-SGD: repeat the stale gradient once
          last_sent_valid = false;
          contributes = true;
        } else {
          std::fill(buffer.begin(), buffer.end(), 0.0f);  // null gradient
        }

        collectives::CollectiveOptions opts;
        opts.schedule = config.schedule;
        opts.compression = config.compression;
        opts.topk_fraction = config.topk_fraction;
        opts.tag_base = tags::RingTag(round);
        opts.hop_timeout = ring_timeout;
        opts.feedback = &feedback;
        if (config.schedule == collectives::Schedule::kStragglar &&
            go->meta.size() > 1 && go->meta[1] > 0) {
          // The controller's verdict names a rank; the schedule wants the
          // straggler's position inside this round's membership. A verdict
          // for a rank outside the round (it was dropped between the
          // verdict and the Go) degrades to the plain ring.
          const auto straggler_rank =
              static_cast<net::Rank>(go->meta[1] - 1);
          const auto it = std::find(group.members.begin(),
                                    group.members.end(), straggler_rank);
          if (it != group.members.end()) {
            opts.straggler =
                static_cast<std::size_t>(it - group.members.begin());
          }
        }
        collectives::PartialResult reduced;
        {
          obs::ScopedTimer comm_timer(track, obs::Category::kComm,
                                      "partial_allreduce",
                                      &comm_times[w].comm);
          comm_timer.SetArg("round", static_cast<double>(round));
          reduced = collectives::PartialAllreduceFor(
              {fabric, group, my_index}, opts, buffer, contributes);
          comm_timer.SetArg("contributors",
                            static_cast<double>(reduced.contributors));
        }
        if (!reduced.ok) {
          obs::ScopedTimer abort_span(track, obs::Category::kFault,
                                      "collective_abort");
          abort_span.SetArg("round", static_cast<double>(round));
          obs::CountMetric("fault.collective_aborts");
        }

        if (reduced.ok && reduced.contributors > 0) {
          double scale = 1.0;
          if (stale_reuse) {
            // eager-SGD averages over the fixed world size N: absent
            // workers dilute the update instead of re-weighting it.
            scale = static_cast<double>(reduced.contributors) /
                    static_cast<double>(world);
          } else if (config.lr_policy == LrScalePolicy::kLinear) {
            // RNA's Linear Scaling Rule: γ_k ∝ participating batch size.
            // The denominator stays the original world: a dead worker is a
            // permanent null contributor under the paper's gradient rule.
            scale = static_cast<double>(reduced.contributors) /
                    static_cast<double>(world);
          }
          // The paper's W = 1/Σw re-weight, folded into the LR scale; the
          // publishing rank reports it so the metric is per round.
          if (my_index == 0) obs::ObserveMetric("round.reweight_scale", scale);
          optimizer.Step(params, buffer, scale);
        }
        // The lowest-ranked member publishes — rank 0 while it lives, its
        // successor after; the round number keeps versions monotonic
        // across a publisher change.
        if (my_index == 0) {
          board.Publish(params, static_cast<std::int64_t>(round) + 1);
        }
        if (my_index == 0 && !joiners.empty()) {
          // Round leader ships its post-step replica to each joining rank
          // (every member holds an identical one, so the choice of sender
          // does not matter): params ‖ velocity in the pooled payload, LR
          // in the meta. Re-sent every round a joiner stays syncing, so a
          // transfer lost to a fault is retried by the next leader.
          const std::span<const float> velocity = optimizer.Velocity();
          for (const net::Rank j : joiners) {
            net::Message state;
            state.tag = tags::JoinStateTag(round);
            state.meta = {go->meta[0],
                          std::bit_cast<std::int64_t>(
                              optimizer.LearningRate())};
            state.data = fabric.Pool().Acquire(2 * dim);
            std::copy(params.begin(), params.end(), state.data.begin());
            std::copy(velocity.begin(), velocity.end(),
                      state.data.begin() + dim);
            fabric.Send(w, j, std::move(state));
          }
        }

        net::Message report;
        report.tag = tags::kRoundEnd;
        // meta: [round, gradients consumed, aborted flag]
        report.meta = {go->meta[0],
                       fresh ? static_cast<std::int64_t>(drained->count) : 0,
                       reduced.ok ? 0 : 1};
        fabric.Send(w, controller, std::move(report));
      }
      // A leaver or a crash must not end the session; only the shared exit
      // Go (or a fabric shutdown) does.
      if (!died && !left) global_stop.store(true);
      final_params[w] = std::move(params);
    });
  }

  // ---- compute threads ---------------------------------------------------
  std::vector<std::thread> compute_threads;
  compute_threads.reserve(world);
  for (std::size_t w = 0; w < world; ++w) {
    compute_threads.emplace_back([&, w] {
      std::vector<float> params = init;
      std::vector<float> grad(dim);
      std::int64_t seen = 0;
      auto crash_now = [&](std::int64_t round_hint) {
        // Fail-stop announced from the compute side; the comm thread
        // notices Alive() == false and exits without a second goodbye.
        faults.Kill(w);
        obs::CountMetric("fault.worker.goodbyes");
        net::Message bye;
        bye.tag = tags::kGoodbye;
        bye.meta = {round_hint};
        fabric.Send(w, controller, std::move(bye));
      };
      if (lockstep) {
        // Deterministic pacing: compute exactly one batch per controller
        // step token; acknowledge with kReady (or kGoodbye on a scheduled
        // crash) so the controller can account for every token.
        for (;;) {
          std::optional<net::Message> token;
          while (!(token = fabric.RecvFor(w, tags::kStep, 0.05))
                      .has_value()) {
            if (global_stop.load() || fabric.IsClosed(w)) return;
          }
          if (token->meta.empty() || token->meta[0] < 0) return;
          if (!faults.Alive(w)) return;
          if (faulty && faults.BeforeIteration(w, workers[w]->Iterations()) ==
                            IterationFate::kCrash) {
            crash_now(token->meta[0]);
            return;
          }
          seen = board.ReadIfNewer(seen, &params);
          workers[w]->ComputeGradient(params, grad);
          stages[w]->Write(grad,
                           static_cast<std::int64_t>(workers[w]->Iterations()));
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, controller, std::move(ready));
        }
      }
      // Free-running: the paper's wall-clock-raced schedule. See the
      // engine-wide comment on board symmetry in stage.hpp.
      while (!global_stop.load(std::memory_order_relaxed)) {
        if (faulty) {
          if (!faults.Alive(w)) return;
          if (faults.BeforeIteration(w, workers[w]->Iterations()) ==
              IterationFate::kCrash) {
            crash_now(-1);
            return;
          }
        }
        seen = board.ReadIfNewer(seen, &params);
        workers[w]->ComputeGradient(params, grad);
        const bool grew = stages[w]->Write(
            grad, static_cast<std::int64_t>(workers[w]->Iterations()));
        if (grew) {
          // Notify only on backlog growth so the controller's readiness
          // counts track the true buffered-gradient count.
          net::Message ready;
          ready.tag = tags::kReady;
          fabric.Send(w, controller, std::move(ready));
        }
      }
    });
  }

  // ---- controller ---------------------------------------------------------
  std::thread controller_thread([&] {
    const obs::TrackHandle track = obs::RegisterTrack("controller");
    common::Rng rng(config.seed + 9001);
    std::unique_ptr<TriggerPolicy> policy = policy_factory();
    // Sharded readiness aggregate: every policy decision and the forced-
    // trigger scan read O(1) tallies instead of scanning the world.
    ReadinessBoard readiness(world);
    std::vector<std::size_t> miss_count(world, 0);
    std::vector<bool> responded(world, false);
    // Consecutive rounds each rank reported without contributing a
    // gradient — the controller's persistent-straggler evidence. Two or
    // more misses in a row makes a rank the round's straggler verdict,
    // which Schedule::kStragglar consumes to re-order the ring around it
    // (a one-round miss is noise; skipping already covers it).
    std::vector<std::size_t> skip_streak(world, 0);

    auto note_goodbye = [&](net::Rank src, std::size_t round) {
      if (!directory.Manages(src)) return;
      const MemberState was = directory.StateOf(src);
      if (was == MemberState::kDead || was == MemberState::kLeft) return;
      directory.OnDead(src);
      faults.Kill(src);
      readiness.Clear(src);
      obs::CountMetric("fault.controller.deaths");
      // A (near-)instant fault span on the controller track marks the
      // exclusion on the timeline.
      obs::ScopedTimer death_span(track, obs::Category::kFault,
                                  "worker_death");
      death_span.SetArg("rank", static_cast<double>(src));
      death_span.SetArg("round", static_cast<double>(round));
    };

    auto broadcast_exit = [&] {
      for (std::size_t w = 0; w < world; ++w) {
        net::Message go;
        go.tag = tags::kGo;
        go.meta = {-1, 1};
        fabric.Send(controller, w, std::move(go));
        net::Message step;
        step.tag = tags::kStep;
        step.meta = {-1};
        fabric.Send(controller, w, std::move(step));
      }
    };

    std::size_t round = 0;
    for (; round < config.max_rounds && !global_stop.load(); ++round) {
      std::vector<net::Rank> members;
      std::vector<net::Rank> joiners;
      {
        // Busy time is accounted in thread-CPU seconds, not wall time:
        // with hundreds of worker threads oversubscribing the cores, the
        // wall clock inside these sections measures preemption, and the
        // per-worker O(1) claim gated by bench_scale would drown in
        // scheduler noise. The ScopedTimer still records the wall span
        // for the trace.
        common::ScopedCpuAccumulator dispatch_cpu(&ctrl_busy);
        obs::ScopedTimer dispatch_timer(track, obs::Category::kOther,
                                        "ctrl_dispatch");
        dispatch_timer.SetArg("round", static_cast<double>(round));
        const auto delta = directory.BeginRound(round);
        for (const net::Rank r : delta.leaving) {
          // Clean elastic departure: a personal exit Go (meta[1]==2
          // distinguishes it from session end) plus an exit step token.
          // Not a death — no strike-out, no fault accounting.
          readiness.Clear(r);
          net::Message bye_go;
          bye_go.tag = tags::kGo;
          bye_go.meta = {-1, 2};
          fabric.Send(controller, r, std::move(bye_go));
          net::Message bye_step;
          bye_step.tag = tags::kStep;
          bye_step.meta = {-1};
          fabric.Send(controller, r, std::move(bye_step));
          ctrl_msgs += 2;
          obs::CountMetric("elastic.leaves");
        }
        members = directory.ActiveMembers();
        joiners = directory.SyncingMembers();
      }
      if (members.empty()) break;
      policy->BeginRound(world, rng);

      if (lockstep) {
        // Pace: one compute token per live rank, then account for every
        // token (kReady, kGoodbye, or — under faults — a deadline miss
        // from a hung worker, who stays a member and contributes null).
        // Syncing joiners get no token: their first batch waits for the
        // state transfer.
        {
          common::ScopedCpuAccumulator token_cpu(&ctrl_busy);
          obs::ScopedTimer token_timer(track, obs::Category::kOther,
                                       "ctrl_tokens");
          for (net::Rank m : members) {
            net::Message step;
            step.tag = tags::kStep;
            step.meta = {static_cast<std::int64_t>(round)};
            fabric.Send(controller, m, std::move(step));
          }
          ctrl_msgs += members.size();
          std::fill(responded.begin(), responded.end(), false);
        }
        std::size_t got = 0;
        const int ack_tags[] = {tags::kReady, tags::kGoodbye};
        obs::ScopedTimer step_timer(track, obs::Category::kWait, "step_wait");
        step_timer.SetArg("round", static_cast<double>(round));
        while (got < members.size() && !stop.load() && !global_stop.load()) {
          std::optional<net::Message> msg;
          if (faulty) {
            const common::Seconds left = report_budget - step_timer.Elapsed();
            if (left <= 0.0) break;
            msg = fabric.RecvAnyFor(controller, ack_tags, left);
            if (!msg.has_value()) break;  // deadline or shutdown
          } else {
            // Lossless fast path: every live member acks its step token,
            // and Shutdown() wakes the wait.
            msg = fabric.RecvAny(  // analyze:allow(timed-recv)
                controller, ack_tags);
            if (!msg.has_value()) return;  // fabric shut down
          }
          const net::Rank src = msg->src;
          common::ScopedCpuAccumulator handle_cpu(&ctrl_busy);
          obs::ScopedTimer handle_timer(track, obs::Category::kOther,
                                        "ctrl_handle");
          ++ctrl_msgs;
          if (msg->tag == tags::kGoodbye) {
            note_goodbye(src, round);
            if (!responded[src]) {
              responded[src] = true;
              ++got;
            }
            continue;
          }
          if (directory.IsActive(src)) readiness.Add(src, 1);
          if (!responded[src]) {
            responded[src] = true;
            ++got;
          }
        }
        step_timer.Stop();
        if (stop.load() || global_stop.load()) break;
        members = directory.ActiveMembers();  // goodbyes may have shrunk it
        if (members.empty()) break;
      } else {
        obs::ScopedTimer probe_timer(track, obs::Category::kWait,
                                     "probe_wait");
        probe_timer.SetArg("round", static_cast<double>(round));
        common::Seconds election_start = 0.0;
        while (!stop.load() && !global_stop.load()) {
          // Drain the whole notification backlog each pass so the
          // controller mailbox stays small even with very fast compute
          // threads.
          while (auto note = fabric.TryRecv(controller, tags::kReady)) {
            if (directory.IsActive(note->src)) readiness.Add(note->src, 1);
          }
          if (faulty) {
            while (auto bye = fabric.TryRecv(controller, tags::kGoodbye)) {
              note_goodbye(bye->src, round);
            }
            // A hung worker's late report from an earlier round: fold its
            // gradient accounting in, clear its death strikes.
            while (auto late = fabric.TryRecv(controller, tags::kRoundEnd)) {
              readiness.Add(late->src, -late->meta[1]);
              miss_count[late->src] = 0;
              const bool was_aborted =
                  late->meta.size() > 2 && late->meta[2] != 0;
              if (!was_aborted) {
                batches_applied.fetch_add(
                    static_cast<std::size_t>(late->meta[1]));
              }
            }
            if (directory.ActiveCount() == 0) break;
          }
          if (policy->ShouldTrigger(readiness)) break;
          if (faulty &&
              probe_timer.Elapsed() - election_start >
                  config.fault.probe_timeout_s) {
            if (readiness.ReadyRanks() > 0) {
              // Probed-and-silent workers are treated as absent (the
              // paper's null-gradient rule): force the round with whoever
              // is ready rather than waiting on the dead.
              obs::CountMetric("fault.forced_triggers");
              break;
            }
            // Nobody ready at all: hold a fresh election and keep waiting.
            policy->BeginRound(world, rng);
            obs::CountMetric("fault.reelections");
            election_start = probe_timer.Elapsed();
          }
          auto note = fabric.RecvFor(controller, tags::kReady, 0.002);
          if (note.has_value() && directory.IsActive(note->src)) {
            readiness.Add(note->src, 1);
          }
        }
        if (stop.load() || global_stop.load()) break;
        members = directory.ActiveMembers();
        if (members.empty()) break;
      }

      obs::ScopedTimer round_timer(track, obs::Category::kRound, "round");
      round_timer.SetArg("round", static_cast<double>(round));
      {
        common::ScopedCpuAccumulator go_cpu(&ctrl_busy);
        obs::ScopedTimer go_timer(track, obs::Category::kOther, "ctrl_go");
        // Go carries the round's membership so every member builds the
        // same ring, plus the straggler verdict in meta[1]: rank+1 of the
        // live member with the longest ≥2-round non-contribution streak,
        // or 0 when there is none. Every member sees the same verdict, so
        // Schedule::kStragglar's permutation is identical ring-wide.
        // meta[2] = member count M; meta[3..3+M) = the ring; any tail
        // beyond M lists syncing joiners — the leader (members[0]) sends
        // each one the model state after the collective, and the joiners
        // themselves learn which round to expect that state on.
        std::int64_t verdict = 0;
        std::size_t best_streak = 1;
        for (net::Rank m : members) {
          if (skip_streak[m] > best_streak) {
            best_streak = skip_streak[m];
            verdict = static_cast<std::int64_t>(m) + 1;
          }
        }
        if (verdict != 0) obs::CountMetric("round.straggler_verdicts");
        net::Message proto;
        proto.meta = {static_cast<std::int64_t>(round), verdict,
                      static_cast<std::int64_t>(members.size())};
        for (net::Rank r : members) {
          proto.meta.push_back(static_cast<std::int64_t>(r));
        }
        for (net::Rank j : joiners) {
          proto.meta.push_back(static_cast<std::int64_t>(j));
        }
        for (net::Rank m : members) {
          net::Message go;
          go.tag = tags::kGo;
          go.meta = proto.meta;
          fabric.Send(controller, m, std::move(go));
        }
        for (net::Rank j : joiners) {
          net::Message go;
          go.tag = tags::kGo;
          go.meta = proto.meta;
          fabric.Send(controller, j, std::move(go));
        }
        ctrl_msgs += members.size() + joiners.size();
      }
      const int want[] = {tags::kRoundEnd, tags::kReady, tags::kGoodbye};
      std::size_t contributors = 0;
      std::size_t reports = 0;
      // Members report after the collective; syncing joiners report after
      // (attempting to) install the transferred state.
      const std::size_t expected = members.size() + joiners.size();
      std::fill(responded.begin(), responded.end(), false);
      obs::ScopedTimer report_timer(track, obs::Category::kWait,
                                    "report_wait");
      while (reports < expected) {
        std::optional<net::Message> msg;
        if (faulty) {
          const common::Seconds left = report_budget - report_timer.Elapsed();
          if (left <= 0.0) break;
          msg = fabric.RecvAnyFor(controller, want, left);
          if (!msg.has_value()) break;  // deadline or shutdown
        } else {
          // Lossless fast path: every live member reports each round, and
          // Shutdown() wakes the wait.
          msg = fabric.RecvAny(  // analyze:allow(timed-recv)
              controller, want);
          if (!msg.has_value()) return;  // fabric shut down
        }
        const net::Rank src = msg->src;
        common::ScopedCpuAccumulator handle_cpu(&ctrl_busy);
        obs::ScopedTimer handle_timer(track, obs::Category::kOther,
                                      "ctrl_handle");
        ++ctrl_msgs;
        if (msg->tag == tags::kReady) {
          if (directory.IsActive(src)) readiness.Add(src, 1);
          continue;
        }
        if (msg->tag == tags::kGoodbye) {
          note_goodbye(src, round);
          const bool counted =
              std::find(members.begin(), members.end(), src) !=
                  members.end() ||
              std::find(joiners.begin(), joiners.end(), src) != joiners.end();
          if (counted && !responded[src]) {
            responded[src] = true;
            ++reports;
          }
          continue;
        }
        // kRoundEnd — possibly a late report of an earlier round.
        readiness.Add(src, -msg->meta[1]);
        miss_count[src] = 0;
        const bool aborted = msg->meta.size() > 2 && msg->meta[2] != 0;
        if (!aborted) {
          batches_applied.fetch_add(static_cast<std::size_t>(msg->meta[1]));
        }
        if (static_cast<std::size_t>(msg->meta[0]) != round) continue;
        if (!responded[src]) {
          responded[src] = true;
          ++reports;
        }
        if (directory.IsSyncing(src)) {
          // A joiner's sync ack: meta[3] == 1 means the state transfer
          // landed and the rank computes from the next round on. A zero
          // flag (leader's send lost on a lossy fabric) keeps it syncing;
          // the next round's Go re-lists it and the leader re-sends.
          if (msg->meta.size() > 3 && msg->meta[3] != 0) {
            directory.OnSynced(src);
            obs::CountMetric("elastic.joins");
          }
          continue;
        }
        if (!aborted && msg->meta[1] > 0) {
          ++contributors;
          skip_streak[src] = 0;
        } else {
          ++skip_streak[src];
        }
      }
      report_timer.Stop();
      if (reports < expected) {
        // Deadline expired with silent members: report silence means the
        // comm thread is gone (fail-stop), unlike step silence which is
        // just slow compute. Strike them; dead_after_misses strikes kills.
        auto strike = [&](net::Rank m) {
          const MemberState s = directory.StateOf(m);
          if (s == MemberState::kDead || s == MemberState::kLeft) return;
          if (responded[m]) return;
          if (++miss_count[m] >= config.fault.dead_after_misses) {
            note_goodbye(m, round);
            obs::CountMetric("fault.declared_dead");
          }
        };
        for (net::Rank m : members) strike(m);
        for (net::Rank j : joiners) strike(j);
        obs::CountMetric("fault.report_deadline_misses");
      }
      round_timer.SetArg("contributors", static_cast<double>(contributors));
      obs::CountMetric("round.count");
      obs::ObserveMetric("round.contributors",
                         static_cast<double>(contributors));
      round_contributors.push_back(contributors);
      rounds_done.fetch_add(1);
    }
    broadcast_exit();  // no collective, everyone leaves
  });

  controller_thread.join();
  for (auto& t : comm_threads) t.join();
  // comm exits flip global_stop; compute threads notice within an iteration.
  for (auto& t : compute_threads) t.join();
  const common::Seconds wall_s = wall_timer.Stop();
  monitor.Finish();

  TrainResult result;
  result.wall_seconds = wall_s;
  result.rounds = rounds_done.load();
  result.gradients_applied = batches_applied.load();
  for (auto& stage : stages) result.gradients_dropped += stage->Dropped();
  obs::CountMetric("stage.staleness_drops",
                   static_cast<std::int64_t>(result.gradients_dropped));
  result.reached_target = monitor.ReachedTarget();
  result.early_stopped = monitor.EarlyStopped();
  result.curve = monitor.Curve();
  result.round_contributors = std::move(round_contributors);
  result.live_workers = faults.LiveCount();
  result.workers_joined = directory.JoinedTotal();
  result.workers_left = directory.LeftTotal();
  result.controller_busy_seconds = ctrl_busy;
  result.controller_messages = ctrl_msgs;

  result.breakdown.resize(world);
  for (std::size_t w = 0; w < world; ++w) {
    result.breakdown[w] = workers[w]->Times();
    result.breakdown[w].wait = comm_times[w].wait;
    result.breakdown[w].comm = comm_times[w].comm;
  }

  // The lowest surviving *active* rank's replica is the result (all active
  // survivors hold identical parameters after their last shared
  // collective; a clean leaver's replica is frozen at its exit round).
  std::size_t reporter = 0;
  bool found = false;
  for (std::size_t w = 0; w < world && !found; ++w) {
    if (directory.IsActive(w) && faults.Alive(w)) {
      reporter = w;
      found = true;
    }
  }
  for (std::size_t w = 0; w < world && !found; ++w) {
    if (faults.Alive(w)) {
      reporter = w;
      found = true;
    }
  }
  result.final_params = final_params[reporter];
  const nn::BatchResult final_eval = monitor.FullEval(result.final_params);
  result.final_loss = final_eval.loss;
  result.final_accuracy = final_eval.Accuracy();
  result.final_train_loss =
      EvaluateDataset(workers[0]->Net(), result.final_params, train_data, 2048)
          .loss;
  return result;
}

}  // namespace rna::train
