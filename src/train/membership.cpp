#include "rna/train/membership.hpp"

#include <algorithm>

#include "rna/common/check.hpp"

namespace rna::train {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
}  // namespace

MembershipDirectory::MembershipDirectory(
    std::vector<net::Rank> ranks,
    const std::vector<ElasticSchedule>& schedule)
    : ranks_(std::move(ranks)) {
  net::Rank max_rank = 0;
  for (const net::Rank r : ranks_) max_rank = std::max(max_rank, r);
  index_of_rank_.assign(ranks_.empty() ? 0 : max_rank + 1, kNpos);
  entries_.reserve(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    Entry e;
    e.rank = ranks_[i];
    for (const ElasticSchedule& s : schedule) {
      if (s.rank == ranks_[i]) {
        e.join_at = s.join_at_round;
        e.leave_at = s.leave_at_round;
      }
    }
    e.state = e.join_at == 0 ? MemberState::kActive : MemberState::kPending;
    if (e.state == MemberState::kActive) ++active_count_;
    index_of_rank_[ranks_[i]] = i;
    entries_.push_back(e);
  }
}

std::size_t MembershipDirectory::IndexOf(net::Rank rank) const {
  RNA_CHECK_MSG(Manages(rank), "rank not managed by this directory");
  return index_of_rank_[rank];
}

bool MembershipDirectory::Manages(net::Rank rank) const {
  return rank < index_of_rank_.size() && index_of_rank_[rank] != kNpos;
}

void MembershipDirectory::Transition(Entry& e, MemberState to) {
  if (e.state == to) return;
  if (e.state == MemberState::kActive) --active_count_;
  if (to == MemberState::kActive) ++active_count_;
  e.state = to;
  ++epoch_;
}

MembershipDirectory::RoundDelta MembershipDirectory::BeginRound(
    std::size_t round) {
  RoundDelta delta;
  for (Entry& e : entries_) {
    if (e.state == MemberState::kPending && round >= e.join_at) {
      Transition(e, MemberState::kSyncing);
      delta.joining.push_back(e.rank);
    } else if (e.state == MemberState::kActive &&
               e.leave_at != ElasticSchedule::kNever && round >= e.leave_at) {
      Transition(e, MemberState::kLeft);
      ++left_total_;
      delta.leaving.push_back(e.rank);
    }
  }
  return delta;
}

void MembershipDirectory::OnSynced(net::Rank rank) {
  Entry& e = entries_[IndexOf(rank)];
  if (e.state != MemberState::kSyncing) return;
  Transition(e, MemberState::kActive);
  ++joined_total_;
}

void MembershipDirectory::OnDead(net::Rank rank) {
  if (!Manages(rank)) return;
  Entry& e = entries_[IndexOf(rank)];
  if (e.state == MemberState::kDead || e.state == MemberState::kLeft) return;
  Transition(e, MemberState::kDead);
}

MemberState MembershipDirectory::StateOf(net::Rank rank) const {
  return entries_[IndexOf(rank)].state;
}

std::vector<net::Rank> MembershipDirectory::ActiveMembers() const {
  std::vector<net::Rank> members;
  members.reserve(active_count_);
  for (const Entry& e : entries_) {
    if (e.state == MemberState::kActive) members.push_back(e.rank);
  }
  return members;
}

std::vector<net::Rank> MembershipDirectory::SyncingMembers() const {
  std::vector<net::Rank> members;
  for (const Entry& e : entries_) {
    if (e.state == MemberState::kSyncing) members.push_back(e.rank);
  }
  return members;
}

}  // namespace rna::train
