#include "rna/train/stage.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/common/simd.hpp"

namespace rna::train {

GradientStage::GradientStage(std::size_t dim, std::size_t staleness_bound,
                             LocalCombine combine)
    : dim_(dim), bound_(staleness_bound), combine_(combine) {
  RNA_CHECK_MSG(staleness_bound >= 1, "staleness bound must be >= 1");
}

bool GradientStage::Write(std::span<const float> grad,
                          std::int64_t iteration) {
  RNA_CHECK_MSG(grad.size() == dim_, "gradient dimension mismatch");
  common::MutexLock lock(mu_);
  bool grew = true;
  if (entries_.size() == bound_) {
    entries_.pop_front();  // overwrite the stalest gradient (bounded staleness)
    ++dropped_;
    grew = false;
  }
  entries_.push_back(Entry{{grad.begin(), grad.end()}, iteration});
  return grew;
}

std::optional<GradientStage::Drained> GradientStage::Drain() {
  std::deque<Entry> taken;
  {
    common::MutexLock lock(mu_);
    if (entries_.empty()) return std::nullopt;
    taken.swap(entries_);
  }

  Drained out;
  out.count = taken.size();
  out.oldest = taken.front().iteration;
  out.newest = taken.back().iteration;

  if (taken.size() == 1 || combine_ == LocalCombine::kLatest) {
    out.grad = std::move(taken.back().grad);
    if (combine_ == LocalCombine::kLatest && taken.size() > 1) {
      // Older buffered gradients are discarded unused.
      common::MutexLock lock(mu_);
      dropped_ += taken.size() - 1;
    }
    return out;
  }

  out.grad.assign(dim_, 0.0f);
  double weight_sum = 0.0;
  for (const Entry& e : taken) {
    // §3.3: weight (t − (k−τ) + 1) grows linearly with recency; the oldest
    // buffered gradient gets weight 1. kMean uses uniform weights.
    const double w =
        combine_ == LocalCombine::kWeightedAverage
            ? static_cast<double>(e.iteration - out.oldest + 1)
            : 1.0;
    weight_sum += w;
    common::simd::WeightedAccumulate(out.grad, e.grad,
                                     static_cast<float>(w));
  }
  common::simd::ScaleInto(out.grad, static_cast<float>(1.0 / weight_sum));
  return out;
}

bool GradientStage::HasGradient() const {
  common::MutexLock lock(mu_);
  return !entries_.empty();
}

std::size_t GradientStage::BufferedCount() const {
  common::MutexLock lock(mu_);
  return entries_.size();
}

std::size_t GradientStage::Dropped() const {
  common::MutexLock lock(mu_);
  return dropped_;
}

ParamBoard::ParamBoard(std::vector<float> initial)
    : params_(std::move(initial)) {}

void ParamBoard::Publish(std::span<const float> params, std::int64_t version) {
  common::MutexLock lock(mu_);
  RNA_CHECK_MSG(params.size() == params_.size(), "param dimension mismatch");
  if (version <= version_) return;  // stale publish, keep the newer state
  params_.assign(params.begin(), params.end());
  version_ = version;
}

std::int64_t ParamBoard::ReadIfNewer(std::int64_t last_seen,
                                     std::vector<float>* out) const {
  common::MutexLock lock(mu_);
  if (version_ > last_seen && out != nullptr) *out = params_;
  return version_;
}

std::vector<float> ParamBoard::Snapshot(std::int64_t* version) const {
  common::MutexLock lock(mu_);
  if (version != nullptr) *version = version_;
  return params_;
}

}  // namespace rna::train
