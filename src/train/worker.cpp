#include "rna/train/worker.hpp"

#include <thread>

#include "rna/common/check.hpp"

namespace rna::train {

WorkerContext::WorkerContext(std::size_t rank, const TrainerConfig& config,
                             const ModelFactory& factory,
                             const data::Dataset& train_data)
    : rank_(rank),
      net_(factory(config.model_seed)),
      dim_(net_->ParamCount()),
      shard_(data::ShardView::Strided(train_data, rank, config.world)),
      generator_(shard_,
                 data::BatchGeneratorOptions{
                     .batch_size = config.batch_size,
                     .seed = config.seed + 1000 + 31 * rank,
                     .mode = config.sampling,
                     .prefetch_depth = config.prefetch_batches,
                 }),
      optimizer_(dim_, config.sgd),
      delay_model_(config.delay_model.get()),
      delay_scale_(config.delay_scale),
      sleep_per_step_(config.sleep_per_step),
      sleep_per_step_sq_(config.sleep_per_step_sq),
      delay_rng_(config.seed + 2000 + 97 * rank) {}

common::Seconds WorkerContext::SampleDelay() {
  if (delay_model_ == nullptr) return 0.0;
  return delay_model_->Sample(rank_, times_.iterations, delay_rng_) *
         delay_scale_;
}

void WorkerContext::PinArenaCapacity(std::span<const float> params) {
  if (!net_->ArenaEnabled()) return;
  // Worst-case warm-up batch: batch_size copies of the shard's longest
  // sequence (the largest batch length-bucketed or uniform sampling can
  // ever emit), or the fixed dense batch shape. One ForwardBackward grows
  // the arena's short region to its true high-water mark, after which
  // ReserveExact() pins it — steady-state steps then perform zero chunk
  // allocations, and any regression throws instead of silently growing.
  nn::Batch batch;
  const std::size_t b = generator_.BatchSize();
  if (shard_.IsSequence()) {
    const tensor::Tensor* longest = shard_.LongestSequence();
    if (longest == nullptr) return;
    batch.sequences.assign(b, *longest);
  } else {
    if (shard_.Size() == 0) return;
    batch.inputs = tensor::Tensor({b, shard_.InputDim()});
    batch.inputs.Zero();
  }
  batch.labels.assign(b, 0);
  net_->SetParamsFrom(params);
  net_->ForwardBackward(batch);
  net_->ComputeArena().ReserveExact();
}

nn::BatchResult WorkerContext::ComputeGradient(std::span<const float> params,
                                               std::span<float> grad_out) {
  RNA_CHECK(params.size() == dim_ && grad_out.size() == dim_);
  if (!arena_pinned_) {
    // Calibration/warm-up happens on the first batch of whichever protocol
    // runs; the pin must not count toward compute stats or the trace.
    PinArenaCapacity(params);
    arena_pinned_ = true;
  }
  if (record_spans_ && !track_registered_ && obs::ActiveTrace() != nullptr) {
    track_ = obs::RegisterTrack(obs::WorkerTrack(rank_, "compute"));
    track_registered_ = true;
  }
  // Take the batch *before* opening the compute span: steady-state batch
  // assembly happens on the generator's prefetch thread, and whatever pop
  // latency remains is hand-off, not compute.
  nn::Batch batch = generator_.Next();
  obs::ScopedTimer timer(record_spans_ ? track_ : obs::TrackHandle{},
                         obs::Category::kCompute, "batch", &times_.compute);
  timer.SetArg("iter", static_cast<double>(times_.iterations));
  net_->SetParamsFrom(params);
  nn::BatchResult result = net_->ForwardBackward(batch);
  net_->CopyGradsTo(grad_out);

  common::Seconds delay = SampleDelay();
  if (sleep_per_step_ > 0.0 || sleep_per_step_sq_ > 0.0) {
    for (const auto& seq : batch.sequences) {
      const auto steps = static_cast<double>(seq.Rows());
      delay += sleep_per_step_ * steps + sleep_per_step_sq_ * steps * steps;
    }
  }
  timer.SetArg("delay_s", delay);
  common::SleepFor(delay);  // straggler injection models real time passing
  ++times_.iterations;
  return result;
}

common::Seconds WorkerContext::MeasureIterationTime(
    std::span<const float> params, std::size_t iters) {
  RNA_CHECK(iters > 0);
  std::vector<float> scratch(dim_);
  obs::ScopedTimer watch({}, obs::Category::kOther, "calibration");
  const std::size_t before = times_.iterations;
  common::Seconds compute_before = times_.compute;
  // Calibration batches should not count toward training statistics —
  // neither the breakdown accounts (restored below) nor the trace.
  record_spans_ = false;
  for (std::size_t i = 0; i < iters; ++i) {
    ComputeGradient(params, scratch);
  }
  record_spans_ = true;
  const common::Seconds elapsed = watch.Stop();
  times_.iterations = before;
  times_.compute = compute_before;
  return elapsed / static_cast<double>(iters);
}

std::vector<std::unique_ptr<WorkerContext>> MakeWorkers(
    const TrainerConfig& config, const ModelFactory& factory,
    const data::Dataset& train_data) {
  RNA_CHECK_MSG(config.world >= 1, "world must be >= 1");
  std::vector<std::unique_ptr<WorkerContext>> workers;
  workers.reserve(config.world);
  for (std::size_t r = 0; r < config.world; ++r) {
    workers.push_back(
        std::make_unique<WorkerContext>(r, config, factory, train_data));
  }
  return workers;
}

std::vector<float> InitialParams(const TrainerConfig& config,
                                 const ModelFactory& factory) {
  auto net = factory(config.model_seed);
  std::vector<float> params(net->ParamCount());
  net->CopyParamsTo(params);
  return params;
}

}  // namespace rna::train
