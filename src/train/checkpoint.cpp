#include "rna/train/checkpoint.hpp"

#include <cstdio>
#include <stdexcept>

#include "rna/common/check.hpp"

namespace rna::train {

namespace {

constexpr std::uint64_t kMagic = 0x524e414350543031ULL;  // "RNACPT01"

struct Header {
  std::uint64_t magic;
  std::uint64_t dim;
  std::uint64_t velocity_dim;
  std::uint64_t round;
};

class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {
    if (f_ == nullptr) {
      throw std::runtime_error("cannot open checkpoint file: " + path);
    }
  }
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

void SaveCheckpoint(const std::string& path, std::span<const float> params,
                    std::span<const float> velocity, std::uint64_t round) {
  RNA_CHECK_MSG(velocity.empty() || velocity.size() == params.size(),
                "velocity must be empty or match params");
  const std::string tmp = path + ".tmp";
  {
    File file(tmp, "wb");
    const Header header{kMagic, params.size(), velocity.size(), round};
    if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1 ||
        (params.size() > 0 &&
         std::fwrite(params.data(), sizeof(float), params.size(),
                     file.get()) != params.size()) ||
        (velocity.size() > 0 &&
         std::fwrite(velocity.data(), sizeof(float), velocity.size(),
                     file.get()) != velocity.size())) {
      throw std::runtime_error("checkpoint write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint rename failed: " + path);
  }
}

Checkpoint LoadCheckpoint(const std::string& path) {
  File file(path, "rb");
  Header header{};
  if (std::fread(&header, sizeof(header), 1, file.get()) != 1) {
    throw std::runtime_error("checkpoint truncated: " + path);
  }
  if (header.magic != kMagic) {
    throw std::runtime_error("not a checkpoint file: " + path);
  }
  if (header.velocity_dim != 0 && header.velocity_dim != header.dim) {
    throw std::runtime_error("corrupt checkpoint header: " + path);
  }
  Checkpoint ckpt;
  ckpt.round = header.round;
  ckpt.params.resize(header.dim);
  ckpt.velocity.resize(header.velocity_dim);
  if (header.dim > 0 &&
      std::fread(ckpt.params.data(), sizeof(float), header.dim, file.get()) !=
          header.dim) {
    throw std::runtime_error("checkpoint params truncated: " + path);
  }
  if (header.velocity_dim > 0 &&
      std::fread(ckpt.velocity.data(), sizeof(float), header.velocity_dim,
                 file.get()) != header.velocity_dim) {
    throw std::runtime_error("checkpoint velocity truncated: " + path);
  }
  return ckpt;
}

}  // namespace rna::train
