#include "rna/train/sharding.hpp"

#include <algorithm>

#include "rna/common/check.hpp"
#include "rna/ps/sharded.hpp"

namespace rna::train {

ReadinessBoard::ReadinessBoard(std::size_t world, std::size_t shard_size)
    : shard_size_(std::max<std::size_t>(1, shard_size)),
      counts_(world, 0),
      shard_ready_((world + shard_size_ - 1) / shard_size_, 0) {}

void ReadinessBoard::Add(std::size_t rank, std::int64_t delta) {
  RNA_CHECK(rank < counts_.size());
  const bool was_ready = counts_[rank] > 0;
  counts_[rank] += delta;
  const bool is_ready = counts_[rank] > 0;
  if (was_ready == is_ready) return;
  const std::size_t shard = rank / shard_size_;
  if (is_ready) {
    ++shard_ready_[shard];
    ++ready_ranks_;
  } else {
    --shard_ready_[shard];
    --ready_ranks_;
  }
}

void ReadinessBoard::Clear(std::size_t rank) {
  Add(rank, -counts_[rank]);
}

PsTree BuildPsTree(std::size_t num_groups, std::size_t fan_in) {
  PsTree tree;
  tree.leaf_of.assign(std::max<std::size_t>(num_groups, 1), 0);
  if (fan_in < 2 || num_groups <= fan_in) {
    // Flat layout: one root node serving every leader directly.
    tree.nodes.push_back(PsTreeNode{});
    for (std::size_t g = 0; g < num_groups; ++g) {
      tree.nodes[0].leaf_groups.push_back(g);
    }
    return tree;
  }

  // Build bottom-up: the leaf layer packs groups fan_in at a time, then
  // each layer packs the one below it until a single root remains. Nodes
  // are then emitted top-down so node 0 is the root and every parent index
  // precedes its children (servers start parents before children).
  std::vector<std::vector<std::size_t>> layers;  // leaf layer first
  std::size_t width = (num_groups + fan_in - 1) / fan_in;
  while (true) {
    layers.emplace_back(width);
    if (width == 1) break;
    width = (width + fan_in - 1) / fan_in;
  }

  // Assign node ids top-down: root layer is layers.back().
  std::size_t next_id = 0;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    for (auto& id : *it) id = next_id++;
  }
  tree.nodes.resize(next_id);
  for (std::size_t li = 0; li + 1 < layers.size(); ++li) {
    // layers[li] is below layers[li + 1]; child i hangs off parent i/fan_in.
    for (std::size_t i = 0; i < layers[li].size(); ++i) {
      const std::size_t child = layers[li][i];
      const std::size_t parent = layers[li + 1][i / fan_in];
      tree.nodes[child].parent = parent;
      tree.nodes[parent].child_nodes.push_back(child);
    }
  }
  const std::size_t root = layers.back()[0];
  RNA_CHECK(root == 0);
  tree.nodes[root].parent = root;
  for (std::size_t li = layers.size(); li-- > 0;) {
    for (const std::size_t id : layers[li]) {
      tree.nodes[id].depth = layers.size() - 1 - li;
    }
  }
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t leaf = layers[0][g / fan_in];
    tree.leaf_of[g] = leaf;
    tree.nodes[leaf].leaf_groups.push_back(g);
  }
  return tree;
}

std::size_t ShardBegin(std::size_t dim, std::size_t shards, std::size_t s) {
  RNA_CHECK(shards >= 1 && s < shards);
  // Delegates to the PS client's shard arithmetic so the engine's slice
  // bounds and the wire protocol can never drift apart.
  return ps::ShardFirst(dim, shards, s);
}

std::size_t ShardEnd(std::size_t dim, std::size_t shards, std::size_t s) {
  RNA_CHECK(shards >= 1 && s < shards);
  return ps::ShardLast(dim, shards, s);
}

}  // namespace rna::train
