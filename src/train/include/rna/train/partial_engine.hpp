#pragma once

// The partial-collective training engine (§3 of the paper, generalized):
//
//   * every worker runs a compute thread and a communication thread
//     (cross-iteration training, Figure 4);
//   * compute threads run mini-batches back-to-back against the newest
//     published parameters, buffering gradients in a GradientStage and
//     notifying the central controller ("instantaneous progress
//     information", §3);
//   * the controller decides *when to trigger* each synchronization round
//     through a pluggable TriggerPolicy, then broadcasts an external
//     activation forcing every communication thread into the partial ring
//     allreduce — ready or not; absent workers contribute null gradients;
//   * the reduced gradient is re-weighted by W = 1/Σw and applied with the
//     Linear-Scaling-Rule learning rate on every worker identically, so
//     replicas stay bit-identical.
//
// RNA's randomized power-of-two-choices election (rna::core) and
// eager-SGD's majority rule (rna::baselines) are both TriggerPolicies; the
// engine is also reused per group by hierarchical RNA.

#include <functional>
#include <memory>

#include "rna/data/dataset.hpp"
#include "rna/train/config.hpp"
#include "rna/train/metrics.hpp"
#include "rna/train/sharding.hpp"

namespace rna::train {

/// Decides when the controller fires the collective, given how many
/// unreduced gradients each worker currently has buffered.
class TriggerPolicy {
 public:
  virtual ~TriggerPolicy() = default;

  /// Called once at the start of each round (e.g., to sample fresh probes).
  virtual void BeginRound(std::size_t world, common::Rng& rng) = 0;

  /// `ready.Count(w)` = buffered-gradient count of worker w (as known from
  /// notifications); `ready.ReadyRanks()` is the O(1) sharded aggregate, so
  /// a policy decision never scans the world. Return true to trigger the
  /// collective now.
  virtual bool ShouldTrigger(const ReadinessBoard& ready) = 0;

  virtual const char* Name() const = 0;
};

using TriggerPolicyFactory = std::function<std::unique_ptr<TriggerPolicy>()>;

/// eager-SGD's rule: fire once ⌊N/2⌋+1 workers have a gradient buffered.
std::unique_ptr<TriggerPolicy> MakeMajorityPolicy();

/// solo collective (eager-SGD's aggressive variant): fire on the first
/// ready worker.
std::unique_ptr<TriggerPolicy> MakeSoloPolicy();

/// Wait for everyone (BSP-like trigger, but still cross-iteration) — used
/// as an ablation.
std::unique_ptr<TriggerPolicy> MakeFullPolicy();

/// Runs a full training job under the partial-collective engine.
TrainResult RunPartialCollective(const TrainerConfig& config,
                                 const ModelFactory& factory,
                                 const data::Dataset& train_data,
                                 const data::Dataset& val_data,
                                 const TriggerPolicyFactory& policy_factory);

}  // namespace rna::train
